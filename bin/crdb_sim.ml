(* crdb_sim: command-line explorer for the simulated multi-region CRDB.

   Subcommands:
     ycsb     run a YCSB workload against a chosen table locality
     tpcc     run TPC-C across N regions
     chaos    run a nemesis schedule with Jepsen-style history checking
     check    re-run the checkers over a dumped chaos history
     ddl      print the DDL statement lists (Table 2 machinery)
     regions  print the latency profiles
     splits   range-lifecycle demo: 100+ splits, traffic, merges
     report   deterministic audit scenario + end-of-run introspection report

   Examples:
     dune exec bin/crdb_sim.exe -- ycsb --variant global --workload a
     dune exec bin/crdb_sim.exe -- tpcc --regions 4 --duration 20
     dune exec bin/crdb_sim.exe -- chaos --seed 42 --survival region
     dune exec bin/crdb_sim.exe -- ddl --schema movr --op convert *)

module Crdb = Crdb_core.Crdb
module Ddl = Crdb.Ddl
module Engine = Crdb.Engine
module Hist = Crdb_stats.Hist
module Ycsb = Crdb_workload.Ycsb
module Tpcc = Crdb_workload.Tpcc
module Movr = Crdb_workload.Movr
open Cmdliner

let regions5 = Crdb.Latency.table1_regions

(* ---------------- observability flags ---------------- *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record spans across the transport, Raft, KV and transaction \
           layers and write a Chrome trace-event JSON file (load it in \
           about://tracing or ui.perfetto.dev).")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Print the metrics registry (counters and histograms) on exit.")

(* Call before the workload so spans are recorded. *)
let arm_obs t ~trace =
  if trace <> None then Crdb.Obs.enable_tracing (Crdb.obs t)

let finish_obs t ~trace ~metrics =
  let obs = Crdb.obs t in
  (match trace with
  | Some file -> (
      let tr = Crdb.Obs.trace obs in
      match open_out file with
      | oc ->
          output_string oc (Crdb.Trace.to_chrome_json tr);
          close_out oc;
          Format.printf "trace: %d records -> %s@." (Crdb.Trace.num_records tr)
            file
      | exception Sys_error msg ->
          Format.eprintf "crdb_sim: cannot write trace: %s@." msg;
          exit 1)
  | None -> ());
  if metrics then Format.printf "%a" Crdb.Metrics.pp (Crdb.Obs.metrics obs)

(* ---------------- ycsb ---------------- *)

let variant_of_string = function
  | "rbr" -> Ok Ycsb.Rbr_default
  | "computed" -> Ok Ycsb.Rbr_computed
  | "rehoming" -> Ok Ycsb.Rbr_rehoming
  | "regional" -> Ok Ycsb.Regional_table
  | "global" -> Ok Ycsb.Global_table
  | "dup" -> Ok Ycsb.Dup_indexes
  | s -> Error (`Msg (Printf.sprintf "unknown variant %S" s))

let variant_conv =
  Arg.conv
    ( variant_of_string,
      fun ppf v ->
        Format.pp_print_string ppf
          (match v with
          | Ycsb.Rbr_default -> "rbr"
          | Ycsb.Rbr_computed -> "computed"
          | Ycsb.Rbr_rehoming -> "rehoming"
          | Ycsb.Regional_table -> "regional"
          | Ycsb.Global_table -> "global"
          | Ycsb.Dup_indexes -> "dup") )

let workload_conv =
  Arg.conv
    ( (function
      | "a" | "A" -> Ok Ycsb.A
      | "b" | "B" -> Ok Ycsb.B
      | "d" | "D" -> Ok Ycsb.D
      | s -> Error (`Msg (Printf.sprintf "unknown workload %S" s))),
      fun ppf w ->
        Format.pp_print_string ppf
          (match w with Ycsb.A -> "a" | Ycsb.B -> "b" | Ycsb.D -> "d") )

let run_ycsb variant workload nregions clients ops keyspace locality stale
    trace metrics =
  let regions = List.filteri (fun i _ -> i < nregions) regions5 in
  let t = Crdb.start ~regions () in
  Crdb.exec t
    (Ddl.N_create_database
       { db = "ycsb"; primary = List.hd regions; regions = List.tl regions });
  Crdb.exec_all t (Ycsb.ddl variant ~db:"ycsb" ~regions);
  let db = Crdb.database t "ycsb" in
  Ycsb.load t db variant ~keyspace;
  arm_obs t ~trace;
  let read_mode =
    if stale then Ycsb.Bounded_stale 10_000_000 else Ycsb.Latest
  in
  let r =
    Ycsb.run t db ~clients_per_region:clients ~ops_per_client:ops ~locality
      ~workload ~keyspace ~read_mode ()
  in
  Format.printf "%d ops, %d errors, %d ms simulated@." r.Ycsb.ops r.Ycsb.errors
    (r.Ycsb.elapsed / 1000);
  Format.printf "%a@." (Hist.pp_row ~label:"read  local") r.Ycsb.read_local;
  Format.printf "%a@." (Hist.pp_row ~label:"read  remote") r.Ycsb.read_remote;
  Format.printf "%a@." (Hist.pp_row ~label:"write local") r.Ycsb.write_local;
  Format.printf "%a@." (Hist.pp_row ~label:"write remote") r.Ycsb.write_remote;
  finish_obs t ~trace ~metrics

let ycsb_cmd =
  let variant =
    Arg.(value & opt variant_conv Ycsb.Rbr_default
         & info [ "variant" ] ~doc:"Table locality: rbr|computed|rehoming|regional|global|dup")
  in
  let workload =
    Arg.(value & opt workload_conv Ycsb.A & info [ "workload" ] ~doc:"a|b|d")
  in
  let nregions = Arg.(value & opt int 3 & info [ "regions" ] ~doc:"Regions (2-5)") in
  let clients = Arg.(value & opt int 10 & info [ "clients" ] ~doc:"Clients per region") in
  let ops = Arg.(value & opt int 100 & info [ "ops" ] ~doc:"Ops per client") in
  let keyspace = Arg.(value & opt int 3000 & info [ "keys" ] ~doc:"Loaded keyspace") in
  let locality =
    Arg.(value & opt float 1.0 & info [ "locality" ] ~doc:"Locality of access (0-1)")
  in
  let stale = Arg.(value & flag & info [ "stale" ] ~doc:"Bounded-staleness reads") in
  Cmd.v (Cmd.info "ycsb" ~doc:"Run a YCSB workload")
    Term.(
      const run_ycsb $ variant $ workload $ nregions $ clients $ ops $ keyspace
      $ locality $ stale $ trace_arg $ metrics_arg)

(* ---------------- tpcc ---------------- *)

let run_tpcc nregions warehouses duration trace metrics =
  let regions = List.filteri (fun i _ -> i < nregions) Crdb.Latency.gcp_region_names in
  let t = Crdb.start ~regions () in
  Crdb.exec_all t (Tpcc.ddl ~db:"tpcc" ~regions ~warehouses_per_region:warehouses);
  let db = Crdb.database t "tpcc" in
  Tpcc.load t db ~warehouses_per_region:warehouses ~districts_per_warehouse:10
    ~customers_per_district:20 ();
  arm_obs t ~trace;
  let r =
    Tpcc.run t db ~warehouses_per_region:warehouses
      ~duration:(duration * 1_000_000) ~districts_per_warehouse:10
      ~customers_per_district:20 ()
  in
  Format.printf "tpmC = %.1f  efficiency = %.1f%%  errors = %d@." (Tpcc.tpmc r)
    (100.0 *. Tpcc.efficiency r ~warehouses:(warehouses * nregions))
    r.Tpcc.errors;
  Format.printf "%a@." (Hist.pp_row ~label:"new_order") r.Tpcc.new_order;
  Format.printf "%a@." (Hist.pp_row ~label:"payment") r.Tpcc.payment;
  finish_obs t ~trace ~metrics

let tpcc_cmd =
  let nregions = Arg.(value & opt int 4 & info [ "regions" ] ~doc:"Number of regions") in
  let warehouses =
    Arg.(value & opt int 2 & info [ "warehouses" ] ~doc:"Warehouses per region")
  in
  let duration = Arg.(value & opt int 20 & info [ "duration" ] ~doc:"Seconds (simulated)") in
  Cmd.v (Cmd.info "tpcc" ~doc:"Run TPC-C")
    Term.(const run_tpcc $ nregions $ warehouses $ duration $ trace_arg
          $ metrics_arg)

(* ---------------- chaos ---------------- *)

module Cluster = Crdb.Cluster
module Nemesis = Crdb_chaos.Nemesis
module Chaos_workload = Crdb_chaos.Workload
module Harness = Crdb_chaos.Harness
module Dump = Crdb_chaos.Dump
module Checker = Crdb_check.Checker
module Autopilot = Crdb_autopilot.Autopilot

let checker_conv =
  Arg.conv
    ( (function
      | "linearizability" | "lin" -> Ok `Linearizability
      | "serializability" | "ser" -> Ok `Serializability
      | s -> Error (`Msg (Printf.sprintf "unknown checker %S" s))),
      fun ppf c ->
        Format.pp_print_string ppf
          (match c with
          | `Linearizability -> "linearizability"
          | `Serializability -> "serializability") )

let cc_mode_conv =
  Arg.conv
    ( (function
      | "wound-wait" | "ww" -> Ok `Wound_wait
      | "epoch" | "epoch-occ" -> Ok `Epoch_occ
      | s -> Error (`Msg (Printf.sprintf "unknown concurrency-control mode %S" s))),
      fun ppf c ->
        Format.pp_print_string ppf
          (match c with `Wound_wait -> "wound-wait" | `Epoch_occ -> "epoch") )

let fault_kind_of_string = function
  | "kill-node" -> Ok Nemesis.K_kill_node
  | "kill-zone" -> Ok Nemesis.K_kill_zone
  | "kill-region" -> Ok Nemesis.K_kill_region
  | "partition" -> Ok Nemesis.K_partition
  | "clock-jump" -> Ok Nemesis.K_clock_jump
  | "lease-transfer" -> Ok Nemesis.K_lease_transfer
  | "split-range" -> Ok Nemesis.K_split_range
  | "merge-range" -> Ok Nemesis.K_merge_range
  | "rebalance" -> Ok Nemesis.K_rebalance
  | s -> Error (`Msg (Printf.sprintf "unknown fault kind %S" s))

let fault_kind_conv =
  Arg.conv
    ( fault_kind_of_string,
      fun ppf k ->
        Format.pp_print_string ppf
          (match k with
          | Nemesis.K_kill_node -> "kill-node"
          | Nemesis.K_kill_zone -> "kill-zone"
          | Nemesis.K_kill_region -> "kill-region"
          | Nemesis.K_partition -> "partition"
          | Nemesis.K_clock_jump -> "clock-jump"
          | Nemesis.K_lease_transfer -> "lease-transfer"
          | Nemesis.K_split_range -> "split-range"
          | Nemesis.K_merge_range -> "merge-range"
          | Nemesis.K_rebalance -> "rebalance") )

let survival_conv =
  Arg.conv
    ( (fun s ->
        match Crdb.Zoneconfig.survival_of_string s with
        | Some v -> Ok v
        | None -> Error (`Msg (Printf.sprintf "unknown survival goal %S" s))),
      fun ppf v ->
        Format.pp_print_string ppf (Crdb.Zoneconfig.survival_to_string v) )

let run_chaos_one ~seed ~nregions ~survival ~global ~duration ~faults
    ~fault_interval ~fault_duration ~no_quorum_guard ~clients ~ops ~keys
    ~write_ratio ~accounts ~unsafe_stale ~checker ~cc_mode ~txn
    ~unsafe_no_refresh ~unsafe_no_recovery ~max_conflict_timeouts ~autopilot
    ~min_auto_splits ~dump_history ~show_history ~report ~trace ~metrics =
  (* [--checker serializability] implies the transactional workload. *)
  let txn =
    if checker = `Serializability && txn.Chaos_workload.Txn_config.clients = 0
    then { txn with Chaos_workload.Txn_config.clients = 2 }
    else txn
  in
  let txn_clients = txn.Chaos_workload.Txn_config.clients in
  let workload =
    {
      Chaos_workload.default with
      Chaos_workload.seed;
      clients_per_region = clients;
      ops_per_client = ops;
      keys;
      write_ratio;
      accounts;
      unsafe_stale_reads = unsafe_stale;
      txn;
      unsafe_no_refresh;
      unsafe_no_recovery;
    }
  in
  let setup =
    {
      Harness.default with
      Harness.regions = nregions;
      survival;
      policy = (if global then Crdb.Cluster.Lead else Crdb.Cluster.Lag 3_000_000);
      cluster_seed = seed;
      nemesis_seed = seed;
      duration = duration * 1_000_000;
      nemesis =
        Some
          {
            Nemesis.default_random with
            Nemesis.kinds = faults;
            mean_interval = fault_interval * 1_000;
            mean_duration = fault_duration * 1_000;
            enforce_quorum = not no_quorum_guard;
          };
      workload;
      cluster_config =
        Some { Cluster.default with Cluster.autopilot; cc_mode };
    }
  in
  (* The autopilot races its background queues against the nemesis for the
     whole run: started from [arm], i.e. after range setup and before the
     workload and fault injection begin. *)
  let ap = ref None in
  let arm cl =
    if trace <> None then Crdb.Obs.enable_tracing (Cluster.obs cl);
    if autopilot then ap := Some (Autopilot.start cl)
  in
  let o = Harness.run ~arm setup in
  Option.iter Autopilot.stop !ap;
  let r = o.Harness.result in
  Format.printf "== seed %d ==@." seed;
  Format.printf "fault log:@.%s@." o.Harness.fault_log;
  Format.printf "ops: %d ok, %d failed, %d indeterminate@." r.Chaos_workload.ok
    r.Chaos_workload.failed r.Chaos_workload.info;
  if show_history then begin
    Format.printf "register history:@.%s@."
      (Crdb_check.History.to_string r.Chaos_workload.registers);
    Format.printf "bank history:@.%s@."
      (Crdb_check.History.to_string r.Chaos_workload.bank);
    if txn_clients > 0 then
      Format.printf "txn history:@.%s@."
        (Crdb_check.History.txns_to_string r.Chaos_workload.txns)
  end;
  Format.printf "registers linearizable: %s@."
    (Checker.verdict_to_string o.Harness.register_verdict);
  Format.printf "bank serializable: %s@."
    (Checker.verdict_to_string o.Harness.bank_verdict);
  if txn_clients > 0 then
    Format.printf "txns serializable: %s@."
      (Checker.verdict_to_string o.Harness.txn_verdict);
  (match dump_history with
  | Some file -> (
      let d =
        Dump.of_result ~bank_total:(Chaos_workload.bank_total workload) r
      in
      match open_out file with
      | oc ->
          output_string oc (Dump.serialize d);
          close_out oc;
          Format.printf "history dump -> %s@." file
      | exception Sys_error msg ->
          Format.eprintf "crdb_sim: cannot write history dump: %s@." msg;
          exit 2)
  | None -> ());
  let obs = Cluster.obs o.Harness.cluster in
  (match trace with
  | Some file -> (
      let tr = Crdb.Obs.trace obs in
      match open_out file with
      | oc ->
          output_string oc (Crdb.Trace.to_chrome_json tr);
          close_out oc;
          Format.printf "trace: %d records -> %s@." (Crdb.Trace.num_records tr) file
      | exception Sys_error msg ->
          Format.eprintf "crdb_sim: cannot write trace: %s@." msg;
          exit 1)
  | None -> ());
  if metrics then Format.printf "%a" Crdb.Metrics.pp (Crdb.Obs.metrics obs);
  let m = Crdb.Obs.metrics obs in
  let conflict_timeouts = Crdb.Metrics.total m "kv.conflict_timeouts" in
  Format.printf "conflicts: %d pushes, %d wounds, %d cleanups, %d timeouts@."
    (Crdb.Metrics.total m "kv.txn_pushes")
    (Crdb.Metrics.total m "kv.txn_wounds")
    (Crdb.Metrics.total m "kv.intent_cleanups")
    conflict_timeouts;
  let timeouts_ok =
    max_conflict_timeouts < 0 || conflict_timeouts <= max_conflict_timeouts
  in
  if not timeouts_ok then
    Format.eprintf
      "chaos: %d conflict timeouts exceed --max-conflict-timeouts %d@."
      conflict_timeouts max_conflict_timeouts;
  let autopilot_ok =
    match !ap with
    | None ->
        (* A split floor without the queues armed can only fail; refuse it
           loudly rather than letting a gate typo pass vacuously. *)
        if min_auto_splits > 0 then
          Format.eprintf "chaos: --min-auto-splits %d requires --autopilot@."
            min_auto_splits;
        min_auto_splits <= 0
    | Some ap ->
        let s = Autopilot.stats ap in
        let total_splits = Crdb.Metrics.total m "kv.splits" in
        let manual_splits = total_splits - s.Autopilot.auto_splits in
        Format.printf
          "autopilot: %d splits, %d merges, %d lease moves, %d replica \
           moves, %d cooldown skips (%d manual splits)@."
          s.Autopilot.auto_splits s.Autopilot.auto_merges
          s.Autopilot.lease_moves s.Autopilot.replica_moves s.Autopilot.skips
          manual_splits;
        let splits_ok = s.Autopilot.auto_splits >= min_auto_splits in
        if not splits_ok then
          Format.eprintf
            "chaos: %d autopilot splits below --min-auto-splits %d@."
            s.Autopilot.auto_splits min_auto_splits;
        (* With the gate armed the cluster must reshape itself: any split
           not decided by a queue means an operator (or nemesis) had to
           intervene. *)
        let manual_ok = min_auto_splits <= 0 || manual_splits = 0 in
        if not manual_ok then
          Format.eprintf "chaos: %d manual splits with the autopilot armed@."
            manual_splits;
        splits_ok && manual_ok
  in
  if report then begin
    (* End-of-run introspection: per-phase latency tables (the workload's
       transactions flush into the "txn" op class), WAN round trips, hottest
       ranges, and the structured event log — faults and heals included. *)
    Format.printf "@.== end-of-run report (seed %d) ==@." seed;
    Format.printf "%a"
      (fun ppf o -> Crdb.Report.pp ~timeline:false ppf o)
      obs;
    Format.printf "serializability verdict: %s@."
      (Checker.verdict_to_string
         (if txn_clients > 0 then o.Harness.txn_verdict
          else o.Harness.bank_verdict))
  end;
  Harness.passed o && timeouts_ok && autopilot_ok

let run_chaos seed seeds nregions survival global duration faults fault_interval
    fault_duration no_quorum_guard clients ops keys write_ratio accounts
    unsafe_stale checker cc_mode txn_clients txn_ops txn_keys txn_ranges
    txn_hot_keys unsafe_no_refresh unsafe_no_recovery max_conflict_timeouts
    autopilot min_auto_splits dump_history show_history report trace metrics =
  (* The five --txn-* flags assemble the one workload record. *)
  let txn =
    {
      Chaos_workload.Txn_config.clients = txn_clients;
      ops_per_client = txn_ops;
      keys = txn_keys;
      ranges = txn_ranges;
      hot_keys = txn_hot_keys;
    }
  in
  let all_ok = ref true in
  for s = seed to seed + seeds - 1 do
    let dump_history =
      match dump_history with
      | Some file when seeds > 1 -> Some (Printf.sprintf "%s.%d" file s)
      | d -> d
    in
    if
      not
        (run_chaos_one ~seed:s ~nregions ~survival ~global ~duration ~faults
           ~fault_interval ~fault_duration ~no_quorum_guard ~clients ~ops ~keys
           ~write_ratio ~accounts ~unsafe_stale ~checker ~cc_mode ~txn
           ~unsafe_no_refresh ~unsafe_no_recovery ~max_conflict_timeouts
           ~autopilot ~min_auto_splits ~dump_history ~show_history ~report
           ~trace ~metrics)
    then all_ok := false
  done;
  if not !all_ok then begin
    Format.eprintf "chaos: consistency violation detected@.";
    exit 1
  end

let chaos_cmd =
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Base seed (cluster, nemesis and workload)") in
  let seeds = Arg.(value & opt int 1 & info [ "seeds" ] ~doc:"Number of consecutive seeds to run") in
  let nregions = Arg.(value & opt int 3 & info [ "regions" ] ~doc:"Regions (2-5)") in
  let survival =
    Arg.(value & opt survival_conv Crdb.Zoneconfig.Region
         & info [ "survival" ] ~doc:"Survivability goal: zone|region")
  in
  let global = Arg.(value & flag & info [ "global" ] ~doc:"GLOBAL tables (future-time closed timestamps)") in
  let duration = Arg.(value & opt int 20 & info [ "duration" ] ~doc:"Nemesis window, simulated seconds") in
  let faults =
    Arg.(value & opt (list fault_kind_conv) Nemesis.all_kinds
         & info [ "faults" ]
             ~doc:
               "Comma-separated fault kinds: \
                kill-node,kill-zone,kill-region,partition,clock-jump,\
                lease-transfer,split-range,merge-range,rebalance")
  in
  let fault_interval =
    Arg.(value & opt int 2000 & info [ "fault-interval" ] ~doc:"Mean ms between fault injections")
  in
  let fault_duration =
    Arg.(value & opt int 4000 & info [ "fault-duration" ] ~doc:"Mean ms a fault stays active")
  in
  let no_quorum_guard =
    Arg.(value & flag
         & info [ "no-quorum-guard" ]
             ~doc:"Disable the min-healthy invariant (allow killing voter majorities beyond the survivability goal)")
  in
  let clients = Arg.(value & opt int 2 & info [ "clients" ] ~doc:"Register clients per region") in
  let ops = Arg.(value & opt int 20 & info [ "ops" ] ~doc:"Ops per register client") in
  let keys = Arg.(value & opt int 16 & info [ "keys" ] ~doc:"Register keyspace") in
  let write_ratio =
    Arg.(value & opt float 0.5 & info [ "write-ratio" ] ~doc:"Register write fraction (YCSB-A = 0.5)")
  in
  let accounts = Arg.(value & opt int 8 & info [ "accounts" ] ~doc:"Bank accounts (< 2 disables the bank workload)") in
  let unsafe_stale =
    Arg.(value & flag
         & info [ "unsafe-stale-reads" ]
             ~doc:"Deliberately broken mode: record bounded-stale reads as fresh; the checker must object")
  in
  let checker =
    Arg.(value & opt checker_conv `Linearizability
         & info [ "checker" ]
             ~doc:
               "Consistency checker emphasis: linearizability (register \
                history, the default) or serializability (enables the \
                multi-key transactional workload and the dependency-graph \
                cycle checker)")
  in
  let cc_mode =
    Arg.(value & opt cc_mode_conv `Wound_wait
         & info [ "cc-mode" ]
             ~doc:
               "Concurrency-control backend: wound-wait (pessimistic lock \
                tables, the default) or epoch (epoch-grouped optimistic \
                concurrency control: lock-free bodies, commit-time \
                validation at epoch boundaries)")
  in
  let txn_clients =
    Arg.(value & opt int 0
         & info [ "txn-clients" ]
             ~doc:"Multi-key transactional clients (0 disables; --checker serializability implies 2)")
  in
  let txn_ops = Arg.(value & opt int 12 & info [ "txn-ops" ] ~doc:"Transactions per transactional client") in
  let txn_keys = Arg.(value & opt int 12 & info [ "txn-keys" ] ~doc:"Transactional keyspace") in
  let txn_ranges =
    Arg.(value & opt int 3 & info [ "txn-ranges" ] ~doc:"Ranges the transactional keyspace is carved into")
  in
  let txn_hot_keys =
    Arg.(value & opt int 0
         & info [ "txn-hot-keys" ]
             ~doc:
               "Confine transactional clients to the first N keys, forcing \
                write-write conflicts that exercise wound-wait (0 keeps the \
                uniform picker)")
  in
  let max_conflict_timeouts =
    Arg.(value & opt int (-1)
         & info [ "max-conflict-timeouts" ]
             ~doc:
               "Fail the run if kv.conflict_timeouts exceeds this bound \
                (-1 disables the gate); healthy wound-wait runs expect 0")
  in
  let unsafe_no_refresh =
    Arg.(value & flag
         & info [ "unsafe-no-refresh" ]
             ~doc:
               "Deliberately broken mode: skip read-span refreshes on \
                timestamp pushes; the serializability checker must object")
  in
  let unsafe_no_recovery =
    Arg.(value & flag
         & info [ "unsafe-no-recovery" ]
             ~doc:
               "Deliberately broken mode: pushers abort STAGING records \
                without probing their declared in-flight writes, tearing \
                down implicitly committed transactions; the serializability \
                checker must object")
  in
  let autopilot =
    Arg.(value & flag
         & info [ "autopilot" ]
             ~doc:
               "Start the autopilot background queues (load-driven split / \
                merge / lease-and-replica rebalance) and race them against \
                the nemesis for the whole run")
  in
  let min_auto_splits =
    Arg.(value & opt int 0
         & info [ "min-auto-splits" ]
             ~doc:
               "With --autopilot, fail the run unless the split queue \
                performed at least N splits on its own and no manual splits \
                occurred (0 disables the gate)")
  in
  let dump_history =
    Arg.(value & opt (some string) None
         & info [ "dump-history" ] ~docv:"FILE"
             ~doc:
               "Serialize the recorded histories to FILE for offline \
                checking with 'crdb_sim check' (with --seeds N, one file \
                per seed, suffixed .SEED)")
  in
  let show_history = Arg.(value & flag & info [ "history" ] ~doc:"Print the full operation histories") in
  let report =
    Arg.(value & flag
         & info [ "report" ]
             ~doc:
               "Print the end-of-run introspection report: per-phase latency \
                table, WAN round trips, hottest ranges, cluster events \
                (faults, wounds, lease transfers) and the checker verdict")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Run a deterministic nemesis schedule with Jepsen-style history checking")
    Term.(
      const run_chaos $ seed $ seeds $ nregions $ survival $ global $ duration
      $ faults $ fault_interval $ fault_duration $ no_quorum_guard $ clients
      $ ops $ keys $ write_ratio $ accounts $ unsafe_stale $ checker $ cc_mode
      $ txn_clients $ txn_ops $ txn_keys $ txn_ranges $ txn_hot_keys
      $ unsafe_no_refresh $ unsafe_no_recovery $ max_conflict_timeouts
      $ autopilot $ min_auto_splits $ dump_history $ show_history $ report
      $ trace_arg $ metrics_arg)

(* ---------------- check (offline) ---------------- *)

let run_check file =
  let contents =
    match open_in_bin file with
    | ic ->
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
    | exception Sys_error msg ->
        Format.eprintf "crdb_sim: %s@." msg;
        exit 2
  in
  match Dump.deserialize contents with
  | Error msg ->
      Format.eprintf "crdb_sim: cannot load %s: %s@." file msg;
      exit 2
  | Ok d ->
      let verdicts = Dump.check d in
      List.iter
        (fun (label, v) ->
          Format.printf "%s: %s@." label (Checker.verdict_to_string v))
        verdicts;
      if not (List.for_all (fun (_, v) -> Checker.is_valid v) verdicts) then begin
        Format.eprintf "check: consistency violation detected@.";
        exit 1
      end

let check_cmd =
  let file =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FILE" ~doc:"History dump written by chaos --dump-history")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Re-run the consistency checkers over a dumped chaos history")
    Term.(const run_check $ file)

(* ---------------- ddl ---------------- *)

let run_ddl schema op =
  let regions = [ "us-east1"; "us-west1"; "europe-west2" ] in
  let movr_op =
    match op with
    | "new" -> Movr.New_schema
    | "convert" -> Movr.Convert_schema
    | "add" -> Movr.Add_region "asia-northeast1"
    | "drop" -> Movr.Drop_region "europe-west2"
    | other -> failwith ("unknown op " ^ other)
  in
  let stmts, legacy =
    match schema with
    | "movr" ->
        ( Movr.ddl ~db:"movr" ~regions movr_op,
          Movr.legacy_ddl ~db:"movr" ~regions movr_op )
    | "tpcc" ->
        let tables = Tpcc.tables ~regions ~warehouses_per_region:10 in
        let lop =
          match movr_op with
          | Movr.New_schema -> Crdb.Legacy.New_schema
          | Movr.Convert_schema -> Crdb.Legacy.Convert_schema
          | Movr.Add_region r -> Crdb.Legacy.Add_region r
          | Movr.Drop_region r -> Crdb.Legacy.Drop_region r
        in
        ( Tpcc.ddl ~db:"tpcc" ~regions ~warehouses_per_region:10,
          Crdb.Legacy.statements ~db:"tpcc" ~regions ~tables lop )
    | other -> failwith ("unknown schema " ^ other)
  in
  Format.printf "--- new declarative syntax (%d statements) ---@."
    (List.length stmts);
  List.iter (fun s -> Format.printf "%s;@." (Ddl.to_sql s)) stmts;
  Format.printf "@.--- legacy imperative equivalent (%d statements) ---@."
    (List.length legacy);
  List.iter (fun s -> Format.printf "%s;@." (Ddl.to_sql s)) legacy

let ddl_cmd =
  let schema = Arg.(value & opt string "movr" & info [ "schema" ] ~doc:"movr|tpcc") in
  let op = Arg.(value & opt string "new" & info [ "op" ] ~doc:"new|convert|add|drop") in
  Cmd.v (Cmd.info "ddl" ~doc:"Print DDL statement lists (Table 2)")
    Term.(const run_ddl $ schema $ op)

(* ---------------- regions ---------------- *)

let run_regions () =
  Format.printf "@[<v>%a@]@."
    (fun ppf () -> Crdb.Latency.pp_matrix Crdb.Latency.table1 regions5 ppf ())
    ();
  Format.printf "@.known GCP regions: %s@."
    (String.concat ", " Crdb.Latency.gcp_region_names)

let regions_cmd =
  Cmd.v (Cmd.info "regions" ~doc:"Print latency profiles")
    Term.(const run_regions $ const ())

(* ---------------- splits ---------------- *)

(* Range-lifecycle demo: grow a single range into (at least) --ranges
   ranges by repeatedly splitting at the store's median key, drive a
   uniform read/write workload whose every request re-resolves its key
   through the ordered span map, then merge pairs back down. *)
let run_splits target_ranges n_keys ops trace metrics =
  let regions = List.filteri (fun i _ -> i < 3) regions5 in
  let topology = Crdb.Topology.symmetric ~regions ~nodes_per_region:3 in
  let cl = Cluster.create ~topology ~latency:Crdb.Latency.table1 () in
  if trace <> None then Crdb.Obs.enable_tracing (Cluster.obs cl);
  let zone =
    Crdb.Zoneconfig.derive ~regions ~home:(List.hd regions)
      ~survival:Crdb.Zoneconfig.Zone ~placement:Crdb.Zoneconfig.Default
  in
  let rid =
    Cluster.add_range cl ~span:("user", "user~") ~zone
      ~policy:(Cluster.Lag 3_000_000)
  in
  Cluster.settle cl;
  let key i = Printf.sprintf "user%04d" i in
  Cluster.bulk_load cl (List.init n_keys (fun i -> (key i, "v" ^ string_of_int i)));
  (* Split every splittable range, breadth-first, until we reach the target. *)
  let rec split_loop rounds =
    let n = List.length (Cluster.ranges cl) in
    if rounds > 0 && n < target_ranges then begin
      List.iter
        (fun r ->
          if List.length (Cluster.ranges cl) < target_ranges then
            match Cluster.split_point cl r with
            | Some at -> ignore (Cluster.split_range cl r ~at)
            | None -> ())
        (Cluster.ranges cl);
      Cluster.run_for cl 2_000_000;
      split_loop (rounds - 1)
    end
  in
  split_loop 16;
  Cluster.run_for cl 5_000_000;
  let n_ranges = List.length (Cluster.ranges cl) in
  Format.printf "split %d keys into %d ranges (asked for %d)@." n_keys n_ranges
    target_ranges;
  (* Every key must route to a range whose span contains it. *)
  let distinct = Hashtbl.create 64 in
  for i = 0 to n_keys - 1 do
    let k = key i in
    let r = Cluster.range_of_key cl k in
    let s, e = Cluster.span_of cl r in
    if not (s <= k && k < e) then
      Format.printf "BAD ROUTE: %s -> r%d [%s,%s)@." k r s e;
    Hashtbl.replace distinct r ()
  done;
  Format.printf "routing: %d keys resolve onto %d distinct ranges@." n_keys
    (Hashtbl.length distinct);
  (* Uniform read/write traffic across all ranges. *)
  let gw = 0 in
  let errors = ref 0 in
  Cluster.run cl (fun () ->
      for i = 1 to ops do
        let k = key (i * 7 mod n_keys) in
        if i mod 2 = 0 then begin
          let ts = Cluster.now_ts cl gw in
          match
            Cluster.write_and_commit cl ~gateway:gw ~txn:(1000 + i) ~key:k
              ~value:(Some ("w" ^ string_of_int i)) ~ts ()
          with
          | Ok _ -> ()
          | Error _ -> incr errors
        end
        else
          let ts = Cluster.now_ts cl gw in
          let max_ts =
            Crdb.Timestamp.add_wall ts (Cluster.config cl).Cluster.max_offset
          in
          match Cluster.read cl ~gateway:gw ~txn:None ~key:k ~ts ~max_ts () with
          | Cluster.Read_value _ | Cluster.Read_uncertain _ -> ()
          | Cluster.Read_redirect | Cluster.Read_wounded _ | Cluster.Read_err _
            ->
              incr errors
      done);
  Format.printf "workload: %d ops, %d errors@." ops !errors;
  (* Merge adjacent pairs back down while configs allow it. *)
  let merged = ref 0 in
  List.iter
    (fun r ->
      if List.mem r (Cluster.ranges cl) && Cluster.merge_range cl r then
        incr merged)
    (List.filteri (fun i _ -> i mod 2 = 0) (Cluster.ranges cl));
  Cluster.run_for cl 2_000_000;
  Format.printf "merged %d pairs; %d ranges remain@." !merged
    (List.length (Cluster.ranges cl));
  let m = Crdb.Obs.metrics (Cluster.obs cl) in
  Format.printf "counters: kv.splits=%d kv.merges=%d kv.rebalances=%d@."
    (Crdb.Metrics.total m "kv.splits")
    (Crdb.Metrics.total m "kv.merges")
    (Crdb.Metrics.total m "kv.rebalances");
  (match trace with
  | Some file -> (
      let tr = Crdb.Obs.trace (Cluster.obs cl) in
      match open_out file with
      | oc ->
          output_string oc (Crdb.Trace.to_chrome_json tr);
          close_out oc;
          Format.printf "trace: %d records -> %s@." (Crdb.Trace.num_records tr)
            file
      | exception Sys_error msg -> Format.eprintf "trace: %s@." msg)
  | None -> ());
  if metrics then Format.printf "%a@." Crdb.Metrics.pp m;
  ignore rid;
  if !errors > 0 then exit 1

let splits_cmd =
  let ranges =
    Arg.(value & opt int 120 & info [ "ranges" ] ~doc:"Target range count")
  in
  let keys = Arg.(value & opt int 256 & info [ "keys" ] ~doc:"Keys to load") in
  let ops = Arg.(value & opt int 200 & info [ "ops" ] ~doc:"Read/write ops") in
  Cmd.v
    (Cmd.info "splits"
       ~doc:
         "Split one range into 100+, route traffic through the span map, \
          then merge back down")
    Term.(const run_splits $ ranges $ keys $ ops $ trace_arg $ metrics_arg)

(* ---------------- report ---------------- *)

(* Deterministic latency-audit scenario: a REGIONAL and a GLOBAL range on a
   3-region Table-1 cluster, a seeded mixed workload from every region (with
   a contended tail to exercise wound-wait), plus scripted range-lifecycle
   events (split, lease transfer, merge). Every observability source
   accumulates in simulated time, so the rendered report and the timeseries
   snapshot are byte-identical across runs of the same seed — check.sh
   diffs two runs. *)
let run_report seed out dump_ts =
  let regions = List.filteri (fun i _ -> i < 3) regions5 in
  let home = List.hd regions in
  let topology = Crdb.Topology.symmetric ~regions ~nodes_per_region:3 in
  let cl = Cluster.create ~topology ~latency:Crdb.Latency.table1 () in
  let zone =
    Crdb.Zoneconfig.derive ~regions ~home ~survival:Crdb.Zoneconfig.Zone
      ~placement:Crdb.Zoneconfig.Default
  in
  let reg =
    Cluster.add_range cl ~span:("k", "k~") ~zone ~policy:(Cluster.Lag 3_000_000)
  in
  ignore (Cluster.add_range cl ~span:("g", "g~") ~zone ~policy:Cluster.Lead);
  Cluster.settle cl;
  let mgr = Crdb.Txn.create_manager cl in
  let sim = Cluster.sim cl in
  let rng = Crdb_stdx.Rng.create ~seed in
  let key i = Printf.sprintf "k%02d" i in
  let gkey i = Printf.sprintf "g%02d" i in
  let gw r =
    (List.hd (Crdb.Topology.nodes_in_region (Cluster.topology cl) r))
      .Crdb.Topology.id
  in
  Cluster.run cl (fun () ->
      (* Seed both keyspaces. *)
      for i = 0 to 15 do
        ignore
          (Crdb.Txn.run mgr ~gateway:(gw home) (fun t ->
               Crdb.Txn.put t (key i) "seed"))
      done;
      for i = 0 to 3 do
        ignore (Crdb.Txn.run_blind_put mgr ~gateway:(gw home) (gkey i) "seed")
      done;
      (* Scripted range lifecycle: split, lease transfer, later a merge. *)
      ignore (Cluster.split_range cl reg ~at:(key 8));
      Crdb_sim.Proc.sleep sim 500_000;
      (match Cluster.leaseholder cl reg with
      | Some lh ->
          let target =
            List.find_map
              (fun n ->
                let id = n.Crdb.Topology.id in
                if id <> lh then Some id else None)
              (Crdb.Topology.nodes_in_region (Cluster.topology cl) home)
          in
          Option.iter (fun t -> Cluster.transfer_lease cl reg ~target:t) target
      | None -> ());
      Crdb_sim.Proc.sleep sim 500_000;
      (* Mixed workload: two clients per region; the last two ops of every
         writer contend on the two hottest keys in opposite lock orders. *)
      let clients =
        List.concat_map
          (fun r ->
            List.init 2 (fun c ->
                let crng = Crdb_stdx.Rng.split rng in
                Crdb_sim.Proc.async sim (fun () ->
                    let gwr = gw r in
                    for op = 1 to 12 do
                      Crdb_sim.Proc.sleep sim
                        (30_000 + Crdb_stdx.Rng.int crng 120_000);
                      let hot = op > 10 in
                      let i =
                        if hot then Crdb_stdx.Rng.int crng 2
                        else Crdb_stdx.Rng.int crng 16
                      in
                      ignore
                        (if (op + c) mod 3 = 0 then
                           Crdb.Txn.run_fresh_read mgr ~gateway:gwr (fun ro ->
                               ignore (Crdb.Txn.ro_get ro (gkey (i mod 4))))
                         else
                           Crdb.Txn.run mgr ~gateway:gwr (fun t ->
                               if hot then begin
                                 Crdb.Txn.put t (key i) "w";
                                 Crdb_sim.Proc.sleep sim 20_000;
                                 Crdb.Txn.put t (key (1 - i)) "w"
                               end
                               else if Crdb_stdx.Rng.int crng 2 = 0 then
                                 ignore (Crdb.Txn.get t (key i))
                               else Crdb.Txn.put t (key i) "w"))
                    done)))
          regions
      in
      List.iter Crdb_sim.Proc.await clients;
      ignore (Cluster.merge_range cl reg);
      Crdb_sim.Proc.sleep sim 500_000);
  let obs = Cluster.obs cl in
  let text = Crdb.Report.to_string obs in
  (match out with
  | Some file -> (
      match open_out file with
      | oc ->
          output_string oc text;
          close_out oc;
          Format.printf "report -> %s@." file
      | exception Sys_error msg ->
          Format.eprintf "crdb_sim: cannot write report: %s@." msg;
          exit 1)
  | None -> print_string text);
  match dump_ts with
  | Some file -> (
      match open_out file with
      | oc ->
          output_string oc (Crdb.Timeseries.to_json (Crdb.Obs.timeseries obs));
          close_out oc;
          Format.printf "timeseries -> %s@." file
      | exception Sys_error msg ->
          Format.eprintf "crdb_sim: cannot write timeseries: %s@." msg;
          exit 1)
  | None -> ()

let report_cmd =
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Workload seed") in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Write the report to FILE instead of stdout")
  in
  let dump_ts =
    Arg.(value & opt (some string) None
         & info [ "dump-timeseries" ] ~docv:"FILE"
             ~doc:
               "Write the windowed per-range timeseries snapshot (QPS, \
                write bytes, latency samples) as deterministic JSON")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Run a deterministic audit scenario and render the end-of-run \
          introspection report (phase latencies, WAN round trips, hottest \
          ranges, event timeline)")
    Term.(const run_report $ seed $ out $ dump_ts)

(* ---------------- default scenario ---------------- *)

(* A small deterministic GLOBAL-table workload touching every layer:
   follower reads on the read side, Raft replication plus commit waits on
   the write side. Runs when --trace/--metrics are passed with no
   subcommand. *)
let run_default trace metrics =
  let regions = List.filteri (fun i _ -> i < 3) regions5 in
  let t = Crdb.start ~regions () in
  Crdb.exec t
    (Ddl.N_create_database
       { db = "demo"; primary = List.hd regions; regions = List.tl regions });
  Crdb.exec_all t (Ycsb.ddl Ycsb.Global_table ~db:"demo" ~regions);
  let db = Crdb.database t "demo" in
  Ycsb.load t db Ycsb.Global_table ~keyspace:60;
  arm_obs t ~trace;
  let r =
    Ycsb.run t db ~clients_per_region:2 ~ops_per_client:10 ~locality:1.0
      ~workload:Ycsb.A ~keyspace:60 ~read_mode:Ycsb.Latest ()
  in
  Format.printf "default scenario: %d ops, %d errors, %d ms simulated@."
    r.Ycsb.ops r.Ycsb.errors
    (r.Ycsb.elapsed / 1000);
  finish_obs t ~trace ~metrics

let () =
  let default =
    Term.(
      ret
        (const (fun trace metrics ->
             if trace = None && not metrics then `Help (`Pager, None)
             else `Ok (run_default trace metrics))
        $ trace_arg $ metrics_arg))
  in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "crdb_sim" ~version:Crdb.version
             ~doc:"Simulated multi-region CockroachDB explorer")
          [
            ycsb_cmd;
            tpcc_cmd;
            chaos_cmd;
            check_cmd;
            ddl_cmd;
            regions_cmd;
            splits_cmd;
            report_cmd;
          ]))
