(* Survivability goals under failure (§2.2, §3.3).

   A database with SURVIVE ZONE FAILURE keeps all voters in each range's
   home region: it rides out a zone outage but loses write availability for
   rows homed in a failed region. SURVIVE REGION FAILURE spreads 5 voters
   across regions: writes keep working through a whole-region outage, at
   the cost of cross-region write latency. Stale reads survive in both
   cases from non-voting replicas.

   Run with:  dune exec examples/failover.exe *)

module Crdb = Crdb_core.Crdb
module Value = Crdb.Value
module Schema = Crdb.Schema
module Ddl = Crdb.Ddl
module Engine = Crdb.Engine
module Cluster = Crdb.Cluster
module Zoneconfig = Crdb.Zoneconfig
module Nemesis = Crdb_chaos.Nemesis

let regions = [ "us-east1"; "us-west1"; "europe-west2" ]
let svec s = Value.V_string s

let make ~survival =
  let t = Crdb.start ~regions () in
  Crdb.exec t
    (Ddl.N_create_database
       { db = "bank"; primary = "us-east1"; regions = List.tl regions });
  if survival = Zoneconfig.Region then
    Crdb.exec t (Ddl.N_survive { db = "bank"; survival });
  Crdb.exec t
    (Ddl.N_create_table
       {
         db = "bank";
         table =
           Schema.table ~name:"accounts"
             ~columns:
               [ Schema.column "id" Schema.T_string; Schema.column "balance" Schema.T_string ]
             ~pkey:[ "id" ]
             ~locality:(Schema.Regional_by_table None)
             ()
       });
  (t, Crdb.database t "bank")

let try_write t db ~gateway ~label =
  Crdb.run t (fun () ->
      let t0 = Crdb.sim_now t in
      match
        Engine.upsert db ~gateway ~table:"accounts"
          [ ("id", svec "acct-1"); ("balance", svec label) ]
      with
      | Ok () ->
          Format.printf "  write %-28s OK   (%.1f ms)@." label
            (float_of_int (Crdb.sim_now t - t0) /. 1000.0)
      | Error e ->
          Format.printf "  write %-28s FAIL (%a)@." label Engine.pp_exec_error e)

let try_stale_read t db ~gateway =
  Crdb.run t (fun () ->
      let t0 = Crdb.sim_now t in
      match
        (* A generous staleness bound: after a long outage, only timestamps
           the dead leaseholder had closed before failing remain servable. *)
        Engine.select_by_pk_stale db ~gateway ~table:"accounts"
          ~max_staleness:60_000_000 [ svec "acct-1" ]
      with
      | Ok (Some row) ->
          Format.printf "  stale read from us-west           OK   (%.1f ms, balance=%s)@."
            (float_of_int (Crdb.sim_now t - t0) /. 1000.0)
            (Value.to_display (List.assoc "balance" row))
      | Ok None -> Format.printf "  stale read: row missing@."
      | Error e -> Format.printf "  stale read FAIL (%a)@." Engine.pp_exec_error e)

let () =
  let west t = Crdb.gateway t ~region:"us-west1" () in

  Format.printf "=== SURVIVE ZONE FAILURE (default) ===@.";
  let t, db = make ~survival:Zoneconfig.Zone in
  try_write t db ~gateway:(west t) ~label:"before-failure";
  Crdb.run_for t 6_000_000;
  (* A zone outage in the home region: the range stays available. *)
  Nemesis.apply (Crdb.cluster t) (Nemesis.Kill_zone ("us-east1", "us-east1-a"));
  Crdb.run_for t 15_000_000;
  Format.printf "after losing zone us-east1-a:@.";
  try_write t db ~gateway:(west t) ~label:"after-zone-loss";
  (* Now the whole primary region goes down: writes stall, stale reads
     survive from the non-voting replicas. *)
  Nemesis.apply (Crdb.cluster t) (Nemesis.Kill_region "us-east1");
  Crdb.run_for t 15_000_000;
  Format.printf "after losing region us-east1 (zone survival cannot):@.";
  Crdb.run t (fun () ->
      let rid = List.hd (Engine.ranges_of_table db "accounts") in
      match Cluster.leaseholder (Crdb.cluster t) rid with
      | None -> Format.printf "  no leaseholder: fresh writes unavailable (as expected)@."
      | Some _ -> Format.printf "  unexpectedly still available@.");
  try_stale_read t db ~gateway:(west t);

  Format.printf "@.=== SURVIVE REGION FAILURE ===@.";
  let t, db = make ~survival:Zoneconfig.Region in
  try_write t db ~gateway:(west t) ~label:"before-failure";
  Crdb.run_for t 6_000_000;
  Nemesis.apply (Crdb.cluster t) (Nemesis.Kill_region "us-east1");
  Crdb.run_for t 20_000_000;
  Format.printf "after losing region us-east1 (region survival):@.";
  try_write t db ~gateway:(west t) ~label:"after-region-loss";
  try_stale_read t db ~gateway:(west t);
  (* Heal with restart semantics (volatile state lost, durable state kept):
     the lease then migrates back to the preferred region. *)
  Nemesis.apply (Crdb.cluster t) (Nemesis.Revive_region "us-east1");
  Crdb.run_for t 3_000_000;
  Cluster.rebalance_leases (Crdb.cluster t);
  Crdb.run_for t 5_000_000;
  let rid = List.hd (Engine.ranges_of_table db "accounts") in
  Format.printf "after healing, leaseholder is back in: %s@."
    (Option.value ~default:"?" (Cluster.leaseholder_region (Crdb.cluster t) rid))
