(* Tests for the autopilot background queues: load-driven splits, cold
   merges, lease spreading, anti-thrash hysteresis, and survival under
   node failures. *)

module Sim = Crdb_sim.Sim
module Topology = Crdb_net.Topology
module Latency = Crdb_net.Latency
module Transport = Crdb_net.Transport
module Ts = Crdb_hlc.Timestamp
module Zoneconfig = Crdb_kv.Zoneconfig
module Cluster = Crdb_kv.Cluster
module Autopilot = Crdb_autopilot.Autopilot
module Obs = Crdb_obs.Obs
module Events = Crdb_obs.Events

let check = Alcotest.check
let regions5 = Latency.table1_regions
let home = "us-east1"
let topo5 = Topology.symmetric ~regions:regions5 ~nodes_per_region:3

let zone_config ?(survival = Zoneconfig.Zone) ?(home = home) () =
  Zoneconfig.derive ~regions:regions5 ~home ~survival
    ~placement:Zoneconfig.Default

(* Aggressive knobs so the queues act within a few simulated seconds. *)
let autopilot_config ?(split_qps = 25.0) ?(cooldown = 1_000_000) () =
  {
    Cluster.default with
    Cluster.autopilot = true;
    autopilot_scan_interval = 200_000;
    autopilot_split_qps = split_qps;
    autopilot_cooldown = cooldown;
  }

let make_cluster ?config () =
  Cluster.create ?config ~topology:topo5 ~latency:Latency.table1 ()

let node_in cl region i =
  (List.nth (Topology.nodes_in_region (Cluster.topology cl) region) i)
    .Topology.id

let get cl ~gateway key =
  let ts = Cluster.now_ts cl gateway in
  let max_ts = Ts.add_wall ts (Cluster.config cl).Cluster.max_offset in
  let rec go ts attempts =
    match
      Cluster.read cl ~inline_bump:true ~gateway ~txn:None ~key ~ts ~max_ts ()
    with
    | Cluster.Read_value { value; _ } -> value
    | Cluster.Read_uncertain { value_ts } when attempts < 10 ->
        go value_ts (attempts + 1)
    | Cluster.Read_uncertain _ -> Alcotest.fail "uncertainty loop"
    | Cluster.Read_redirect -> Alcotest.fail "unexpected redirect"
    | Cluster.Read_wounded e | Cluster.Read_err e ->
        Alcotest.failf "read error: %s" e
  in
  go ts 0

let key i = Printf.sprintf "k%02d" i
let n_keys = 20

let load_keys cl =
  Cluster.bulk_load cl (List.init n_keys (fun i -> (key i, "value-" ^ key i)))

(* Closed-loop read traffic over the loaded keys: each round runs [ops]
   reads to completion while the sim (and the autopilot scans) advance. *)
let traffic cl ~gateway ~ops =
  Cluster.run cl (fun () ->
      for i = 1 to ops do
        ignore (get cl ~gateway (key (i mod n_keys)))
      done)

let test_split_queue_splits_hot_range () =
  let cl = make_cluster ~config:(autopilot_config ()) () in
  let _rid =
    Cluster.add_range cl ~span:("a", "z") ~zone:(zone_config ())
      ~policy:(Cluster.Lag 3_000_000)
  in
  Cluster.settle cl;
  load_keys cl;
  let ap = Autopilot.start cl in
  let gw = node_in cl home 0 in
  for _round = 1 to 5 do
    traffic cl ~gateway:gw ~ops:300;
    Cluster.run_for cl 500_000
  done;
  let stats = Autopilot.stats ap in
  check Alcotest.bool "split queue fired" true (stats.Autopilot.auto_splits >= 1);
  check Alcotest.bool "cluster reshaped into more ranges" true
    (List.length (Cluster.ranges cl) >= 2);
  let events = Obs.events (Cluster.obs cl) in
  check Alcotest.int "every split was the autopilot's (zero manual splits)"
    stats.Autopilot.auto_splits
    (Events.count events Events.Split);
  check Alcotest.int "each decision logged a split_queued event"
    stats.Autopilot.auto_splits
    (Events.count events Events.Split_queued);
  (* Every key still routes and reads after the reshaping. *)
  Cluster.run cl (fun () ->
      for i = 0 to n_keys - 1 do
        check
          Alcotest.(option string)
          ("post-split read " ^ key i)
          (Some ("value-" ^ key i))
          (get cl ~gateway:gw (key i))
      done);
  Autopilot.stop ap

let test_cooldown_suppresses_thrash () =
  (* A cooldown longer than the run: after the first split the queue keeps
     finding the (still hot) range but must skip it, logging the decision. *)
  let cl = make_cluster ~config:(autopilot_config ~cooldown:600_000_000 ()) () in
  let _rid =
    Cluster.add_range cl ~span:("a", "z") ~zone:(zone_config ())
      ~policy:(Cluster.Lag 3_000_000)
  in
  Cluster.settle cl;
  load_keys cl;
  let ap = Autopilot.start cl in
  let gw = node_in cl home 0 in
  for _round = 1 to 4 do
    traffic cl ~gateway:gw ~ops:300;
    Cluster.run_for cl 500_000
  done;
  let stats = Autopilot.stats ap in
  check Alcotest.bool "at most one split per cooled-down range" true
    (stats.Autopilot.auto_splits <= 2);
  check Alcotest.bool "due-but-cooled actions were skipped" true
    (stats.Autopilot.skips >= 1);
  check Alcotest.int "skips logged as queue_skipped events"
    stats.Autopilot.skips
    (Events.count (Obs.events (Cluster.obs cl)) Events.Queue_skipped);
  Autopilot.stop ap

let test_merge_queue_subsumes_cold_pair () =
  let cl = make_cluster ~config:(autopilot_config ()) () in
  let rid =
    Cluster.add_range cl ~span:("a", "z") ~zone:(zone_config ())
      ~policy:(Cluster.Lag 3_000_000)
  in
  Cluster.settle cl;
  Cluster.bulk_load cl [ ("b", "1"); ("p", "2") ];
  let right = Option.get (Cluster.split_range cl rid ~at:"m") in
  Cluster.run_for cl 3_000_000;
  check Alcotest.int "two ranges before" 2 (List.length (Cluster.ranges cl));
  let ap = Autopilot.start cl in
  (* No traffic: both halves are cold and tiny, so the merge queue folds
     them back without any operator call. *)
  Cluster.run_for cl 30_000_000;
  check Alcotest.int "merged back to one range" 1
    (List.length (Cluster.ranges cl));
  check Alcotest.bool "merge queue acted" true
    ((Autopilot.stats ap).Autopilot.auto_merges >= 1);
  check Alcotest.bool "subsumed range gone" false
    (List.mem right (Cluster.ranges cl));
  check Alcotest.bool "merge_queued event logged" true
    (Events.count (Obs.events (Cluster.obs cl)) Events.Merge_queued >= 1);
  Autopilot.stop ap

let test_lease_queue_spreads_load_without_pingpong () =
  (* Two hot ranges led by the same store: the lease queue must move one
     lease to a sibling, then hold steady — repeated ticks on the now
     balanced topology are no-ops. *)
  let config =
    (* Splits and merges off: this test isolates the lease queue (the
       ranges are briefly cold before traffic starts, which would
       otherwise legitimately trigger the merge queue). *)
    {
      (autopilot_config ~split_qps:10_000.0 ()) with
      Cluster.autopilot_merge_bytes = 0;
    }
  in
  let cl = make_cluster ~config () in
  let r1 =
    Cluster.add_range cl ~span:("a", "m") ~zone:(zone_config ())
      ~policy:(Cluster.Lag 3_000_000)
  in
  let r2 =
    Cluster.add_range cl ~span:("m", "z") ~zone:(zone_config ())
      ~policy:(Cluster.Lag 3_000_000)
  in
  Cluster.settle cl;
  Cluster.bulk_load cl [ ("b", "1"); ("c", "2"); ("n", "3"); ("o", "4") ];
  let n0 = node_in cl home 0 in
  Cluster.transfer_lease cl r1 ~target:n0;
  Cluster.transfer_lease cl r2 ~target:n0;
  Cluster.run_for cl 5_000_000;
  check Alcotest.(option int) "r1 starts on n0" (Some n0)
    (Cluster.leaseholder cl r1);
  check Alcotest.(option int) "r2 starts on n0" (Some n0)
    (Cluster.leaseholder cl r2);
  let ap = Autopilot.start cl in
  let gw = node_in cl home 1 in
  let both_spans_traffic () =
    Cluster.run cl (fun () ->
        for _ = 1 to 120 do
          ignore (get cl ~gateway:gw "b");
          ignore (get cl ~gateway:gw "c");
          ignore (get cl ~gateway:gw "n");
          ignore (get cl ~gateway:gw "o")
        done)
  in
  both_spans_traffic ();
  Cluster.run_for cl 5_000_000;
  let stats = Autopilot.stats ap in
  let moves_after_spread = stats.Autopilot.lease_moves in
  check Alcotest.bool "at least one load-driven lease move" true
    (moves_after_spread >= 1);
  check Alcotest.bool "the two leases ended on different stores" true
    (Cluster.leaseholder cl r1 <> Cluster.leaseholder cl r2);
  check Alcotest.int "moves logged as lease_moved events" moves_after_spread
    (Events.count (Obs.events (Cluster.obs cl)) Events.Lease_moved);
  (* More balanced traffic: the queue must not ping-pong leases back. *)
  both_spans_traffic ();
  Cluster.run_for cl 5_000_000;
  both_spans_traffic ();
  Cluster.run_for cl 5_000_000;
  check Alcotest.bool "no lease ping-pong under balanced load" true
    ((Autopilot.stats ap).Autopilot.lease_moves <= moves_after_spread + 1);
  Autopilot.stop ap

let test_idle_cluster_queues_are_noops () =
  (* Repeated ticks over an idle, balanced cluster must decide nothing:
     zero loads mean zero improvement, and mismatched zone configs make the
     pair unmergeable. A second window confirms convergence, not luck. *)
  let cl = make_cluster ~config:(autopilot_config ()) () in
  let r1 =
    Cluster.add_range cl ~span:("a", "m") ~zone:(zone_config ())
      ~policy:(Cluster.Lag 3_000_000)
  in
  let r2 =
    Cluster.add_range cl ~span:("m", "z")
      ~zone:(zone_config ~home:"europe-west2" ())
      ~policy:(Cluster.Lag 3_000_000)
  in
  Cluster.settle cl;
  Cluster.bulk_load cl [ ("b", "1"); ("n", "2") ];
  let lh1 = Cluster.leaseholder cl r1 and lh2 = Cluster.leaseholder cl r2 in
  let ap = Autopilot.start cl in
  Cluster.run_for cl 30_000_000;
  let first = Autopilot.stats ap in
  check Alcotest.int "no splits" 0 first.Autopilot.auto_splits;
  check Alcotest.int "no merges" 0 first.Autopilot.auto_merges;
  check Alcotest.int "no lease moves" 0 first.Autopilot.lease_moves;
  let replica_moves = first.Autopilot.replica_moves in
  Cluster.run_for cl 30_000_000;
  let second = Autopilot.stats ap in
  check Alcotest.int "still no splits" 0 second.Autopilot.auto_splits;
  check Alcotest.int "still no lease moves" 0 second.Autopilot.lease_moves;
  check Alcotest.int "replica placement converged" replica_moves
    second.Autopilot.replica_moves;
  check Alcotest.(option int) "r1 lease unmoved" lh1 (Cluster.leaseholder cl r1);
  check Alcotest.(option int) "r2 lease unmoved" lh2 (Cluster.leaseholder cl r2);
  Autopilot.stop ap

let test_killed_node_does_not_wedge_queues () =
  let cl = make_cluster ~config:(autopilot_config ()) () in
  let rid =
    Cluster.add_range cl ~span:("a", "z")
      ~zone:(zone_config ~survival:Zoneconfig.Region ())
      ~policy:(Cluster.Lag 3_000_000)
  in
  Cluster.settle cl;
  load_keys cl;
  let ap = Autopilot.start cl in
  let gw = node_in cl home 0 in
  traffic cl ~gateway:gw ~ops:300;
  (* Kill the current leaseholder mid-flight: its scheduled scans must keep
     firing harmlessly while dead, and the other stores' queues must keep
     operating on whatever leadership emerges. *)
  let lh = Option.get (Cluster.leaseholder cl rid) in
  Transport.kill_node (Cluster.net cl) lh;
  Cluster.run_for cl 20_000_000;
  let gw2 =
    let candidate = node_in cl "us-west1" 0 in
    if candidate = lh then node_in cl "us-west1" 1 else candidate
  in
  Cluster.run cl (fun () ->
      check
        Alcotest.(option string)
        "cluster serves reads after the kill" (Some "value-k03")
        (get cl ~gateway:gw2 (key 3)));
  (* Revive the node; the autopilot resumes scanning it. *)
  Cluster.restart_node cl lh;
  Cluster.run_for cl 10_000_000;
  Cluster.run cl (fun () ->
      check
        Alcotest.(option string)
        "and after the restart" (Some "value-k07")
        (get cl ~gateway:gw (key 7)));
  ignore (Autopilot.stats ap);
  Autopilot.stop ap

let suite =
  [
    Alcotest.test_case "split queue splits hot range" `Quick
      test_split_queue_splits_hot_range;
    Alcotest.test_case "cooldown suppresses thrash" `Quick
      test_cooldown_suppresses_thrash;
    Alcotest.test_case "merge queue subsumes cold pair" `Quick
      test_merge_queue_subsumes_cold_pair;
    Alcotest.test_case "lease queue spreads load without ping-pong" `Quick
      test_lease_queue_spreads_load_without_pingpong;
    Alcotest.test_case "idle cluster queues are no-ops" `Quick
      test_idle_cluster_queues_are_noops;
    Alcotest.test_case "killed node does not wedge queues" `Quick
      test_killed_node_does_not_wedge_queues;
  ]
