let () =
  Alcotest.run "crdb"
    [
      ("stdx", Test_stdx.suite);
      ("hlc", Test_hlc.suite);
      ("sim", Test_sim.suite);
      ("net", Test_net.suite);
      ("storage", Test_storage.suite);
      ("raft", Test_raft.suite);
      ("stats", Test_stats.suite);
      ("obs", Test_obs.suite);
      ("timeseries", Test_timeseries.suite);
      ("kv", Test_kv.suite);
      ("txnrec", Test_txnrec.suite);
      ("locks", Test_locks.suite);
      ("cc", Test_cc.suite);
      ("lifecycle", Test_lifecycle.suite);
      ("autopilot", Test_autopilot.suite);
      ("txn", Test_txn.suite);
      ("sql", Test_sql.suite);
      ("workload", Test_workload.suite);
      ("clock_skew", Test_clock_skew.suite);
      ("check", Test_check.suite);
      ("chaos", Test_chaos.suite);
      ("integration", Test_integration.suite);
    ]
