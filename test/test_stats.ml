(* Unit tests for the Hist percentile/summary additions. *)

module Hist = Crdb_stats.Hist

let check = Alcotest.check

let test_percentiles () =
  let h = Hist.create () in
  (* Insert out of order to exercise the lazy sort. *)
  List.iter (Hist.add h) (List.init 100 (fun i -> 100 - i));
  check Alcotest.int "count" 100 (Hist.count h);
  check Alcotest.int "p50" 50 (Hist.p50 h);
  check Alcotest.int "p90" 90 (Hist.p90 h);
  check Alcotest.int "p99" 99 (Hist.p99 h);
  check Alcotest.int "min" 1 (Hist.min_value h);
  check Alcotest.int "max" 100 (Hist.max_value h)

let test_percentiles_small () =
  let h = Hist.create () in
  Hist.add h 7;
  (* Nearest-rank on a single sample: every percentile is that sample. *)
  check Alcotest.int "p50 single" 7 (Hist.p50 h);
  check Alcotest.int "p90 single" 7 (Hist.p90 h);
  check Alcotest.int "p99 single" 7 (Hist.p99 h)

let test_empty () =
  let h = Hist.create () in
  check Alcotest.bool "empty" true (Hist.is_empty h);
  check Alcotest.int "p90 empty" 0 (Hist.p90 h);
  check Alcotest.int "p99 empty" 0 (Hist.p99 h)

let test_to_json () =
  let h = Hist.create () in
  List.iter (Hist.add h) [ 40; 10; 30; 20 ];
  check Alcotest.string "json shape"
    "{\"count\":4,\"mean\":25.0,\"min\":10,\"p50\":20,\"p90\":40,\"p99\":40,\"max\":40}"
    (Hist.to_json h)

let test_to_json_after_merge () =
  let a = Hist.create () and b = Hist.create () in
  List.iter (Hist.add a) [ 1; 2 ];
  List.iter (Hist.add b) [ 3; 4 ];
  Hist.merge_into ~dst:a b;
  check Alcotest.string "merged json"
    "{\"count\":4,\"mean\":2.5,\"min\":1,\"p50\":2,\"p90\":4,\"p99\":4,\"max\":4}"
    (Hist.to_json a)

let suite =
  [
    Alcotest.test_case "percentiles 1..100" `Quick test_percentiles;
    Alcotest.test_case "percentiles single" `Quick test_percentiles_small;
    Alcotest.test_case "empty histogram" `Quick test_empty;
    Alcotest.test_case "to_json" `Quick test_to_json;
    Alcotest.test_case "to_json after merge" `Quick test_to_json_after_merge;
  ]
