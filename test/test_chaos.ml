(* Tests for the chaos subsystem (lib/chaos) and the offline history
   checkers (lib/check): checker unit tests on hand-built histories,
   seeded random-nemesis runs under both survivability goals, the
   deliberately-broken mode the checker must catch, and crash-restart
   regression coverage for kill + revive as a process restart. *)

module Sim = Crdb_sim.Sim
module Proc = Crdb_sim.Proc
module Topology = Crdb_net.Topology
module Latency = Crdb_net.Latency
module Transport = Crdb_net.Transport
module Ts = Crdb_hlc.Timestamp
module Zoneconfig = Crdb_kv.Zoneconfig
module Cluster = Crdb_kv.Cluster
module Txn = Crdb_txn.Txn
module History = Crdb_check.History
module Checker = Crdb_check.Checker
module Nemesis = Crdb_chaos.Nemesis
module Workload = Crdb_chaos.Workload
module Harness = Crdb_chaos.Harness

let check = Alcotest.check
let regions3 = [ "us-east1"; "us-west1"; "europe-west2" ]
let home = "us-east1"

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Checker unit tests (hand-built histories)                           *)

let add h ~client ~at ~dur op outcome =
  let e = History.invoke h ~client ~now:at op in
  History.complete e ~now:(at + dur) outcome

let test_checker_linearizable () =
  let h = History.create () in
  add h ~client:0 ~at:0 ~dur:10 (History.Write { key = "x"; value = "a" }) History.Ok_write;
  add h ~client:1 ~at:20 ~dur:10 (History.Read { key = "x" }) (History.Ok_read (Some "a"));
  add h ~client:0 ~at:40 ~dur:10 (History.Write { key = "x"; value = "b" }) History.Ok_write;
  add h ~client:1 ~at:60 ~dur:10 (History.Read { key = "x" }) (History.Ok_read (Some "b"));
  (* Concurrent read may see either side of the overlapping write. *)
  let w = History.invoke h ~client:0 ~now:80 (History.Write { key = "x"; value = "c" }) in
  add h ~client:1 ~at:82 ~dur:2 (History.Read { key = "x" }) (History.Ok_read (Some "b"));
  History.complete w ~now:95 History.Ok_write;
  check Alcotest.bool "valid" true (Checker.is_valid (Checker.check_linearizable h))

let test_checker_stale_read_rejected () =
  let h = History.create () in
  add h ~client:0 ~at:0 ~dur:10 (History.Write { key = "x"; value = "a" }) History.Ok_write;
  add h ~client:0 ~at:20 ~dur:10 (History.Write { key = "x"; value = "b" }) History.Ok_write;
  (* Invoked strictly after w(b) completed, yet observes the older value. *)
  add h ~client:1 ~at:40 ~dur:10 (History.Read { key = "x" }) (History.Ok_read (Some "a"));
  match Checker.check_linearizable h with
  | Checker.Violation { message; counterexample } ->
      check Alcotest.bool "names the key" true
        (contains ~sub:"x" message);
      check Alcotest.bool "has a counterexample" true (counterexample <> "")
  | Checker.Valid _ | Checker.Inconclusive _ -> Alcotest.fail "expected violation"

let test_checker_info_write_optional () =
  (* An indeterminate write may either have taken effect or not; both
     completions of the history must be accepted. *)
  let observed_case result =
    let h = History.create () in
    add h ~client:0 ~at:0 ~dur:10 (History.Write { key = "x"; value = "a" }) History.Ok_write;
    add h ~client:0 ~at:20 ~dur:10
      (History.Write { key = "x"; value = "b" })
      (History.Info "rpc timeout");
    add h ~client:1 ~at:40 ~dur:10 (History.Read { key = "x" }) (History.Ok_read (Some result));
    Checker.is_valid (Checker.check_linearizable h)
  in
  check Alcotest.bool "info write took effect" true (observed_case "b");
  check Alcotest.bool "info write did not take effect" true (observed_case "a")

let test_checker_failed_write_no_effect () =
  (* A Failed write is guaranteed to have no effect: observing it is a
     violation. *)
  let h = History.create () in
  add h ~client:0 ~at:0 ~dur:10 (History.Write { key = "x"; value = "a" }) History.Ok_write;
  add h ~client:0 ~at:20 ~dur:10
    (History.Write { key = "x"; value = "b" })
    (History.Failed "aborted");
  add h ~client:1 ~at:40 ~dur:10 (History.Read { key = "x" }) (History.Ok_read (Some "b"));
  check Alcotest.bool "violation" false
    (Checker.is_valid (Checker.check_linearizable h))

let test_checker_bank () =
  let h = History.create () in
  add h ~client:0 ~at:0 ~dur:10
    (History.Transfer { src = "a"; dst = "b"; amount = 5 })
    History.Ok_transfer;
  add h ~client:1 ~at:20 ~dur:10 History.Snapshot
    (History.Ok_snapshot [ ("a", 95); ("b", 105) ]);
  check Alcotest.bool "conserved" true
    (Checker.is_valid (Checker.check_bank ~total:200 h));
  add h ~client:1 ~at:40 ~dur:10 History.Snapshot
    (History.Ok_snapshot [ ("a", 95); ("b", 104) ]);
  match Checker.check_bank ~total:200 h with
  | Checker.Violation { counterexample; _ } ->
      check Alcotest.bool "shows the snapshot" true
        (contains ~sub:"snapshot" counterexample)
  | Checker.Valid _ | Checker.Inconclusive _ -> Alcotest.fail "expected violation"

(* ------------------------------------------------------------------ *)
(* Random nemesis end-to-end                                           *)

let harness_setup ~survival ~seed =
  {
    Harness.default with
    Harness.survival;
    cluster_seed = seed;
    nemesis_seed = seed;
    workload = { Workload.default with Workload.seed };
  }

let run_seeds ~survival seeds =
  List.iter
    (fun seed ->
      let o = Harness.run (harness_setup ~survival ~seed) in
      if not (Harness.passed o) then
        Alcotest.failf "seed %d (%s): registers %s / bank %s\nfaults:\n%s" seed
          (Zoneconfig.survival_to_string survival)
          (Checker.verdict_to_string o.Harness.register_verdict)
          (Checker.verdict_to_string o.Harness.bank_verdict)
          o.Harness.fault_log)
    seeds

let test_random_nemesis_zone () = run_seeds ~survival:Zoneconfig.Zone [ 1; 2 ]
let test_random_nemesis_region () = run_seeds ~survival:Zoneconfig.Region [ 3; 4 ]

let test_nemesis_deterministic () =
  let run () =
    let o = Harness.run (harness_setup ~survival:Zoneconfig.Region ~seed:42) in
    (o.Harness.fault_log, History.to_string o.Harness.result.Workload.registers)
  in
  let log1, hist1 = run () in
  let log2, hist2 = run () in
  check Alcotest.string "identical fault logs" log1 log2;
  check Alcotest.string "identical histories" hist1 hist2;
  check Alcotest.bool "schedule non-trivial" true (String.length log1 > 0)

(* Range-lifecycle faults (splits, merges, rebalances) racing kills,
   partitions and lease transfers. These kinds are opt-in so the seeded
   schedules above stay stable. *)
let lifecycle_setup ~survival ~seed =
  let nemesis =
    {
      Nemesis.default_random with
      Nemesis.kinds = Nemesis.all_kinds @ Nemesis.lifecycle_kinds;
    }
  in
  { (harness_setup ~survival ~seed) with Harness.nemesis = Some nemesis }

let test_lifecycle_nemesis () =
  let logs =
    List.map
      (fun (survival, seed) ->
        let o = Harness.run (lifecycle_setup ~survival ~seed) in
        if not (Harness.passed o) then
          Alcotest.failf "lifecycle seed %d (%s): registers %s / bank %s\nfaults:\n%s"
            seed
            (Zoneconfig.survival_to_string survival)
            (Checker.verdict_to_string o.Harness.register_verdict)
            (Checker.verdict_to_string o.Harness.bank_verdict)
            o.Harness.fault_log;
        o.Harness.fault_log)
      [ (Zoneconfig.Zone, 1); (Zoneconfig.Region, 3) ]
  in
  (* The schedules must actually exercise the lifecycle, not just kills. *)
  let combined = String.concat "\n" logs in
  check Alcotest.bool "a split or merge or rebalance was injected" true
    (contains ~sub:"split_range(" combined
    || contains ~sub:"merge_range(" combined
    || contains ~sub:"rebalance(" combined)

let test_lifecycle_nemesis_deterministic () =
  let run () =
    let o = Harness.run (lifecycle_setup ~survival:Zoneconfig.Region ~seed:3) in
    (o.Harness.fault_log, History.to_string o.Harness.result.Workload.registers)
  in
  let log1, hist1 = run () in
  let log2, hist2 = run () in
  check Alcotest.string "identical fault logs" log1 log2;
  check Alcotest.string "identical histories" hist1 hist2

(* ------------------------------------------------------------------ *)
(* Multi-key serializability under chaos                               *)

(* Transactional clients racing the full fault mix, lifecycle kinds
   included: every transaction spans keys on different ranges while splits,
   merges, rebalances, kills, partitions and clock jumps fire. *)
let serializability_setup ~seed =
  let setup = lifecycle_setup ~survival:Zoneconfig.Region ~seed in
  {
    setup with
    Harness.workload =
      {
        setup.Harness.workload with
        Workload.txn = { Workload.Txn_config.default with Workload.Txn_config.clients = 2 };
      };
  }

let test_serializability_under_chaos () =
  List.iter
    (fun seed ->
      let o = Harness.run (serializability_setup ~seed) in
      if not (Harness.passed o) then
        Alcotest.failf "seed %d: registers %s / bank %s / txns %s\nfaults:\n%s" seed
          (Checker.verdict_to_string o.Harness.register_verdict)
          (Checker.verdict_to_string o.Harness.bank_verdict)
          (Checker.verdict_to_string o.Harness.txn_verdict)
          o.Harness.fault_log;
      check Alcotest.bool "transactions were recorded" true
        (History.num_txns o.Harness.result.Workload.txns > 0))
    [ 42; 101 ]

let test_unsafe_no_refresh_caught () =
  (* Deliberately broken transaction layer: timestamp pushes skip the
     read-span refresh, so transactions commit on stale reads. The
     dependency-graph checker must find a cycle. *)
  let setup = serializability_setup ~seed:303 in
  let setup =
    {
      setup with
      Harness.workload = { setup.Harness.workload with Workload.unsafe_no_refresh = true };
    }
  in
  let o = Harness.run setup in
  match o.Harness.txn_verdict with
  | Checker.Violation { message; counterexample } ->
      check Alcotest.bool "names an anomaly class" true
        (contains ~sub:"G2-item" message || contains ~sub:"lost update" message
        || contains ~sub:"G1c" message || contains ~sub:"G0" message);
      check Alcotest.bool "witness cycle rendered" true
        (contains ~sub:"cycle:" counterexample)
  | Checker.Valid _ | Checker.Inconclusive _ ->
      Alcotest.fail "skipped read refreshes were not caught"

(* Parallel commits racing kills: a conflict-heavy transactional workload
   (all clients on a few hot keys, so wound-wait and staged records collide
   constantly) with node kills and lease transfers. Coordinators die
   between staging and resolution; pushers must finish commit-status
   recovery — serializability clean, zero 10 s conflict timeouts. *)
let recovery_race_setup ~seed =
  let nemesis =
    {
      Nemesis.default_random with
      Nemesis.kinds = [ Nemesis.K_kill_node; Nemesis.K_lease_transfer ];
    }
  in
  {
    (harness_setup ~survival:Zoneconfig.Region ~seed) with
    Harness.nemesis = Some nemesis;
    workload =
      {
        Workload.default with
        Workload.seed;
        txn =
          {
            Workload.Txn_config.default with
            Workload.Txn_config.clients = 6;
            hot_keys = 4;
          };
      };
  }

let test_parallel_commit_recovery_races () =
  List.iter
    (fun seed ->
      let o = Harness.run (recovery_race_setup ~seed) in
      if not (Harness.passed o) then
        Alcotest.failf "seed %d: registers %s / bank %s / txns %s\nfaults:\n%s"
          seed
          (Checker.verdict_to_string o.Harness.register_verdict)
          (Checker.verdict_to_string o.Harness.bank_verdict)
          (Checker.verdict_to_string o.Harness.txn_verdict)
          o.Harness.fault_log;
      check Alcotest.int
        (Printf.sprintf "seed %d: no conflict timeouts" seed)
        0
        (Crdb_obs.Metrics.total
           (Crdb_obs.Obs.metrics (Cluster.obs o.Harness.cluster))
           "kv.conflict_timeouts"))
    [ 701; 702 ]

let test_unsafe_no_recovery_caught () =
  (* Deliberately broken recovery: pushers abort STAGING records without
     probing the declared in-flight writes, tearing down implicitly
     committed transactions whose clients were already acked. The
     serializability checker must object. Swept over seeds because the
     torn commit needs a pusher to actually catch a staged record. *)
  let caught =
    List.exists
      (fun seed ->
        let setup = recovery_race_setup ~seed in
        let setup =
          {
            setup with
            Harness.workload =
              {
                setup.Harness.workload with
                Workload.unsafe_no_recovery = true;
              };
          }
        in
        let o = Harness.run setup in
        not (Harness.passed o))
      [ 701; 702; 703; 704 ]
  in
  check Alcotest.bool "immediate STAGING aborts were caught" true caught

let test_serializability_deterministic () =
  (* Same seeded run twice: byte-identical transaction histories and
     verdicts; and re-checking one recorded history is pure. *)
  let run () =
    let o = Harness.run (serializability_setup ~seed:42) in
    ( o.Harness.fault_log,
      History.txns_to_string o.Harness.result.Workload.txns,
      Checker.verdict_to_string o.Harness.txn_verdict,
      o.Harness.result.Workload.txns )
  in
  let log1, hist1, verdict1, h1 = run () in
  let log2, hist2, verdict2, _ = run () in
  check Alcotest.string "identical fault logs" log1 log2;
  check Alcotest.string "identical txn histories" hist1 hist2;
  check Alcotest.string "identical verdicts" verdict1 verdict2;
  check Alcotest.string "re-check is byte-identical" verdict1
    (Checker.verdict_to_string (Checker.check_serializable h1));
  (* Also on a violating history: same counterexample, byte for byte. *)
  let broken_setup =
    let s = serializability_setup ~seed:303 in
    { s with Harness.workload = { s.Harness.workload with Workload.unsafe_no_refresh = true } }
  in
  let v1 = (Harness.run broken_setup).Harness.txn_verdict in
  let v2 = (Harness.run broken_setup).Harness.txn_verdict in
  check Alcotest.string "identical counterexamples" (Checker.verdict_to_string v1)
    (Checker.verdict_to_string v2)

let test_dump_roundtrip () =
  (* Dump -> load -> identical checker verdicts, and the reserialization is
     the identity. *)
  let setup = serializability_setup ~seed:42 in
  let o = Harness.run setup in
  let d =
    Crdb_chaos.Dump.of_result
      ~bank_total:(Workload.bank_total setup.Harness.workload)
      o.Harness.result
  in
  let s = Crdb_chaos.Dump.serialize d in
  match Crdb_chaos.Dump.deserialize s with
  | Error msg -> Alcotest.failf "dump did not load back: %s" msg
  | Ok d' ->
      check Alcotest.string "reserialization is the identity" s
        (Crdb_chaos.Dump.serialize d');
      List.iter2
        (fun (label, v) (label', v') ->
          check Alcotest.string "same checker" label label';
          check Alcotest.string
            (label ^ ": same verdict offline")
            (Checker.verdict_to_string v)
            (Checker.verdict_to_string v'))
        (Crdb_chaos.Dump.check d)
        (Crdb_chaos.Dump.check d');
      (* The offline verdicts match the harness's in-process ones. *)
      (match Crdb_chaos.Dump.check d' with
      | [ (_, regs); (_, bank); (_, txns) ] ->
          check Alcotest.string "registers verdict matches"
            (Checker.verdict_to_string o.Harness.register_verdict)
            (Checker.verdict_to_string regs);
          check Alcotest.string "bank verdict matches"
            (Checker.verdict_to_string o.Harness.bank_verdict)
            (Checker.verdict_to_string bank);
          check Alcotest.string "txns verdict matches"
            (Checker.verdict_to_string o.Harness.txn_verdict)
            (Checker.verdict_to_string txns)
      | _ -> Alcotest.fail "unexpected checker list")

let test_unsafe_stale_reads_caught () =
  (* Deliberately broken config: bounded-stale reads recorded as fresh.
     The linearizability checker must produce a counterexample. *)
  let setup = harness_setup ~survival:Zoneconfig.Region ~seed:42 in
  let setup =
    {
      setup with
      Harness.workload =
        { setup.Harness.workload with Workload.unsafe_stale_reads = true };
    }
  in
  let o = Harness.run setup in
  match o.Harness.register_verdict with
  | Checker.Violation { counterexample; _ } ->
      check Alcotest.bool "counterexample rendered" true (counterexample <> "")
  | Checker.Valid _ | Checker.Inconclusive _ ->
      Alcotest.fail "stale-as-fresh reads were not caught"

let test_quorum_guard_blocks_majority_kill () =
  (* With the min-healthy invariant on, a SURVIVE ZONE cluster must never
     lose its home region's write availability to kill faults: the guard
     refuses kills that would break a voter quorum. *)
  let o =
    Harness.run
      (harness_setup ~survival:Zoneconfig.Zone ~seed:5)
  in
  check Alcotest.bool "workload finished consistent" true (Harness.passed o);
  (* The guard admits at most one concurrent home-zone kill; region kills
     of the home region are impossible under Zone survival. *)
  check Alcotest.bool "no home region kill in log" false
    (contains ~sub:"kill_region(us-east1)" o.Harness.fault_log)

(* ------------------------------------------------------------------ *)
(* Scripted nemesis: bounded clock skew stays linearizable             *)

let test_clock_skew_script_linearizable () =
  (* Jump several clocks around within max_offset: histories must stay
     linearizable (uncertainty restarts absorb the skew, §6.1). *)
  let script =
    [
      (0, Nemesis.Clock_jump (0, 100_000));
      (1_000_000, Nemesis.Clock_jump (3, -100_000));
      (2_000_000, Nemesis.Clock_jump (6, 80_000));
      (8_000_000, Nemesis.Clock_jump (0, -90_000));
    ]
  in
  let setup =
    {
      (harness_setup ~survival:Zoneconfig.Zone ~seed:9) with
      Harness.nemesis = None;
      script = Some script;
    }
  in
  let o = Harness.run setup in
  check Alcotest.bool "passed" true (Harness.passed o);
  check Alcotest.bool "script ran" true
    (contains ~sub:"clock_jump" o.Harness.fault_log)

(* ------------------------------------------------------------------ *)
(* Crash-restart semantics (kill + revive as process restart)          *)

let make_cluster () =
  let topology = Topology.symmetric ~regions:regions3 ~nodes_per_region:3 in
  Cluster.create ~topology ~latency:Latency.table1 ()

let zone_range ?(survival = Zoneconfig.Zone) cl =
  let zone = Zoneconfig.derive ~regions:regions3 ~home ~survival ~placement:Zoneconfig.Default in
  let rid = Cluster.add_range cl ~span:("a", "z") ~zone ~policy:(Cluster.Lag 3_000_000) in
  Cluster.settle cl;
  rid

let test_restart_catches_up () =
  let cl = make_cluster () in
  let rid = zone_range cl in
  let mgr = Txn.create_manager cl in
  let lh = Option.get (Cluster.leaseholder cl rid) in
  (* Kill a home-region follower replica (not the leaseholder). *)
  let victim =
    List.find
      (fun n -> n <> lh)
      (List.map fst (Cluster.replica_nodes cl rid))
  in
  Cluster.run cl (fun () ->
      (match Txn.run mgr ~gateway:lh (fun t -> Txn.put t "k" "v1") with
      | Ok () -> ()
      | Error e -> Alcotest.failf "pre-kill write: %a" Txn.pp_error e);
      Transport.kill_node (Cluster.net cl) victim;
      Proc.sleep (Cluster.sim cl) 1_000_000;
      (* Commit while the victim is down: it must catch up on restart. *)
      (match Txn.run mgr ~gateway:lh (fun t -> Txn.put t "k" "v2") with
      | Ok () -> ()
      | Error e -> Alcotest.failf "during-outage write: %a" Txn.pp_error e);
      let write_ts = Cluster.now_ts cl lh in
      Proc.sleep (Cluster.sim cl) 5_000_000;
      check Alcotest.bool "victim still dead" false
        (Transport.is_alive (Cluster.net cl) victim);
      Cluster.restart_node cl victim;
      (* The restart wiped the replica's volatile closed-timestamp state:
         catching up to [write_ts] requires replaying replication. *)
      Proc.sleep (Cluster.sim cl) 10_000_000;
      check Alcotest.bool "revived" true (Transport.is_alive (Cluster.net cl) victim);
      check Alcotest.bool "restarted replica closed past the outage write" true
        (Ts.compare (Cluster.local_closed cl ~at:victim rid) write_ts >= 0);
      (* And it serves a follower read of the value committed while dead. *)
      let v =
        Txn.run_stale_exact mgr ~gateway:victim ~ts:write_ts (fun ro ->
            Txn.ro_get ro "k")
      in
      check Alcotest.(option string) "follower read after restart" (Some "v2") v)

let test_restart_leaseholder_recovers () =
  let cl = make_cluster () in
  let rid = zone_range cl in
  let mgr = Txn.create_manager cl in
  let lh = Option.get (Cluster.leaseholder cl rid) in
  Cluster.run cl (fun () ->
      (match Txn.run mgr ~gateway:lh (fun t -> Txn.put t "k" "v1") with
      | Ok () -> ()
      | Error e -> Alcotest.failf "write: %a" Txn.pp_error e);
      Transport.kill_node (Cluster.net cl) lh;
      Proc.sleep (Cluster.sim cl) 8_000_000;
      (* Another home replica won the election. *)
      let lh2 = Cluster.leaseholder cl rid in
      check Alcotest.bool "lease moved" true (lh2 <> None && lh2 <> Some lh);
      Cluster.restart_node cl lh;
      Proc.sleep (Cluster.sim cl) 8_000_000;
      (* The restarted ex-leaseholder rejoined as follower; writes work. *)
      let gw = Option.get (Cluster.leaseholder cl rid) in
      match Txn.run mgr ~gateway:gw (fun t -> Txn.put t "k" "v2") with
      | Ok () -> ()
      | Error e -> Alcotest.failf "post-restart write: %a" Txn.pp_error e)

(* Regression: a quiesced range whose leaseholder crash-restarts within the
   liveness-oracle grace period must elect a new leader. Without epoch-based
   liveness the quiesced followers keep believing the restarted process is
   still leader (the oracle reports the node live again) and suppress
   elections forever — the range stays leaderless until the horizon. *)
let test_quiesced_leader_restart () =
  let cl = make_cluster () in
  let rid = zone_range cl in
  let mgr = Txn.create_manager cl in
  let lh = Option.get (Cluster.leaseholder cl rid) in
  Cluster.run cl (fun () ->
      (match Txn.run mgr ~gateway:lh (fun t -> Txn.put t "k" "v1") with
      | Ok () -> ()
      | Error e -> Alcotest.failf "write: %a" Txn.pp_error e);
      (* Idle long enough for the range to quiesce. *)
      Proc.sleep (Cluster.sim cl) 5_000_000;
      (* Crash and restart faster than the liveness record lapses: the
         followers never see the node reported dead, only its epoch bump. *)
      Transport.kill_node (Cluster.net cl) lh;
      Proc.sleep (Cluster.sim cl) 1_000_000;
      Cluster.restart_node cl lh;
      Proc.sleep (Cluster.sim cl) 15_000_000;
      let lh2 = Cluster.leaseholder cl rid in
      check Alcotest.bool "a leader re-emerged" true (lh2 <> None);
      match Txn.run mgr ~gateway:(Option.get lh2) (fun t -> Txn.put t "k" "v2") with
      | Ok () -> ()
      | Error e -> Alcotest.failf "post-restart write: %a" Txn.pp_error e)

(* ------------------------------------------------------------------ *)
(* kill_zone / revive_region under both survivability goals            *)

let write_ok cl mgr ~gateway =
  Cluster.run cl (fun () ->
      match Txn.run mgr ~gateway (fun t -> Txn.put t "k" "v") with
      | Ok () -> true
      | Error _ -> false)

let test_zone_survival_outages () =
  let cl = make_cluster () in
  let rid = zone_range cl ~survival:Zoneconfig.Zone in
  let mgr = Txn.create_manager cl in
  let gw = (List.hd (Topology.nodes_in_region (Cluster.topology cl) "us-west1")).Topology.id in
  check Alcotest.bool "healthy" true (write_ok cl mgr ~gateway:gw);
  (* Zone outage in the home region: quorum of 3 voters survives. *)
  Transport.kill_zone (Cluster.net cl) ~region:home ~zone:(home ^ "-a");
  Cluster.run_for cl 10_000_000;
  check Alcotest.bool "writes survive zone loss" true (write_ok cl mgr ~gateway:gw);
  (* Whole home region down: zone survival cannot ride this out. *)
  Transport.kill_region (Cluster.net cl) home;
  Cluster.run_for cl 10_000_000;
  check Alcotest.(option string) "no leaseholder" None
    (Option.map (fun _ -> "lh") (Cluster.leaseholder cl rid));
  (* Revive the region with restart semantics: service returns. *)
  Nemesis.apply cl (Nemesis.Revive_region home);
  Cluster.run_for cl 10_000_000;
  check Alcotest.bool "writes back after revive_region" true
    (write_ok cl mgr ~gateway:gw)

let test_region_survival_outages () =
  let cl = make_cluster () in
  let rid = zone_range cl ~survival:Zoneconfig.Region in
  let mgr = Txn.create_manager cl in
  let gw = (List.hd (Topology.nodes_in_region (Cluster.topology cl) "us-west1")).Topology.id in
  check Alcotest.bool "healthy" true (write_ok cl mgr ~gateway:gw);
  (* Losing the whole home region keeps a 3/5 voter quorum. *)
  Transport.kill_region (Cluster.net cl) home;
  Cluster.run_for cl 12_000_000;
  check Alcotest.bool "writes survive region loss" true (write_ok cl mgr ~gateway:gw);
  (match Cluster.leaseholder_region cl rid with
  | Some r -> check Alcotest.bool "lease left the dead region" true (r <> home)
  | None -> Alcotest.fail "no leaseholder after region loss");
  Nemesis.apply cl (Nemesis.Revive_region home);
  Cluster.run_for cl 5_000_000;
  Cluster.rebalance_leases cl;
  Cluster.run_for cl 5_000_000;
  check Alcotest.(option string) "lease back home" (Some home)
    (Cluster.leaseholder_region cl rid)

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "checker: linearizable accepted" `Quick test_checker_linearizable;
    Alcotest.test_case "checker: stale read rejected" `Quick test_checker_stale_read_rejected;
    Alcotest.test_case "checker: info write optional" `Quick test_checker_info_write_optional;
    Alcotest.test_case "checker: failed write has no effect" `Quick
      test_checker_failed_write_no_effect;
    Alcotest.test_case "checker: bank conservation" `Quick test_checker_bank;
    Alcotest.test_case "random nemesis, survive zone" `Slow test_random_nemesis_zone;
    Alcotest.test_case "random nemesis, survive region" `Slow test_random_nemesis_region;
    Alcotest.test_case "nemesis determinism" `Slow test_nemesis_deterministic;
    Alcotest.test_case "lifecycle nemesis, splits and merges race kills" `Slow
      test_lifecycle_nemesis;
    Alcotest.test_case "lifecycle nemesis determinism" `Slow
      test_lifecycle_nemesis_deterministic;
    Alcotest.test_case "serializability under chaos" `Slow
      test_serializability_under_chaos;
    Alcotest.test_case "unsafe no-refresh caught" `Slow test_unsafe_no_refresh_caught;
    Alcotest.test_case "parallel-commit recovery races kills" `Slow
      test_parallel_commit_recovery_races;
    Alcotest.test_case "unsafe no-recovery caught" `Slow
      test_unsafe_no_recovery_caught;
    Alcotest.test_case "serializability determinism" `Slow
      test_serializability_deterministic;
    Alcotest.test_case "history dump round trip" `Slow test_dump_roundtrip;
    Alcotest.test_case "unsafe stale reads caught" `Slow test_unsafe_stale_reads_caught;
    Alcotest.test_case "quorum guard respects survival goal" `Slow
      test_quorum_guard_blocks_majority_kill;
    Alcotest.test_case "bounded clock skew linearizable" `Slow
      test_clock_skew_script_linearizable;
    Alcotest.test_case "restart catches up" `Quick test_restart_catches_up;
    Alcotest.test_case "restarted leaseholder recovers" `Quick
      test_restart_leaseholder_recovers;
    Alcotest.test_case "quiesced leader restart re-elects" `Quick
      test_quiesced_leader_restart;
    Alcotest.test_case "zone survival outages" `Quick test_zone_survival_outages;
    Alcotest.test_case "region survival outages" `Quick test_region_survival_outages;
  ]
