(* Tests for MVCC storage and the read-timestamp cache. *)

module Ts = Crdb_hlc.Timestamp
module Mvcc = Crdb_storage.Mvcc
module Tscache = Crdb_storage.Tscache

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest
let ts w = Ts.of_wall w

let commit_put store ~key ~txn ~at ~value =
  (match Mvcc.put_intent store ~key ~txn_id:txn ~ts:(ts at) ~value:(Some value) () with
  | Mvcc.Written -> ()
  | Mvcc.Write_blocked _ | Mvcc.Write_prevented -> Alcotest.fail "unexpected write block");
  Mvcc.resolve_intent store ~key ~txn_id:txn ~commit:(Some (ts at))

let read_value store ~key ~at =
  match Mvcc.read store ~key ~ts:(ts at) ~max_ts:(ts at) ~for_txn:None with
  | Mvcc.Value { value; _ } -> value
  | Mvcc.Uncertain _ -> Alcotest.fail "unexpected uncertainty"
  | Mvcc.Intent_blocked _ -> Alcotest.fail "unexpected intent"

let test_basic_versions () =
  let s = Mvcc.create () in
  commit_put s ~key:"k" ~txn:1 ~at:10 ~value:"v1";
  commit_put s ~key:"k" ~txn:2 ~at:20 ~value:"v2";
  check Alcotest.(option string) "before first" None (read_value s ~key:"k" ~at:5);
  check Alcotest.(option string) "at first" (Some "v1") (read_value s ~key:"k" ~at:10);
  check Alcotest.(option string) "between" (Some "v1") (read_value s ~key:"k" ~at:15);
  check Alcotest.(option string) "latest" (Some "v2") (read_value s ~key:"k" ~at:25);
  check Alcotest.bool "latest_ts" true (Ts.equal (Mvcc.latest_ts s ~key:"k") (ts 20))

let test_tombstone () =
  let s = Mvcc.create () in
  commit_put s ~key:"k" ~txn:1 ~at:10 ~value:"v1";
  (match Mvcc.put_intent s ~key:"k" ~txn_id:2 ~ts:(ts 20) ~value:None () with
  | Mvcc.Written -> ()
  | Mvcc.Write_blocked _ | Mvcc.Write_prevented -> Alcotest.fail "blocked");
  Mvcc.resolve_intent s ~key:"k" ~txn_id:2 ~commit:(Some (ts 20));
  check Alcotest.(option string) "deleted" None (read_value s ~key:"k" ~at:25);
  check Alcotest.(option string) "old still visible" (Some "v1")
    (read_value s ~key:"k" ~at:15)

let test_uncertainty () =
  let s = Mvcc.create () in
  commit_put s ~key:"k" ~txn:1 ~at:100 ~value:"v";
  (* Read at 50 with uncertainty window up to 150: must report uncertain. *)
  (match Mvcc.read s ~key:"k" ~ts:(ts 50) ~max_ts:(ts 150) ~for_txn:None with
  | Mvcc.Uncertain { value_ts } ->
      check Alcotest.bool "offending ts" true (Ts.equal value_ts (ts 100))
  | Mvcc.Value _ | Mvcc.Intent_blocked _ -> Alcotest.fail "expected uncertain");
  (* Window that ends before the write: no uncertainty. *)
  match Mvcc.read s ~key:"k" ~ts:(ts 50) ~max_ts:(ts 99) ~for_txn:None with
  | Mvcc.Value { value = None; _ } -> ()
  | Mvcc.Value _ | Mvcc.Uncertain _ | Mvcc.Intent_blocked _ ->
      Alcotest.fail "expected empty value"

let test_intent_blocking () =
  let s = Mvcc.create () in
  (match Mvcc.put_intent s ~key:"k" ~txn_id:1 ~ts:(ts 10) ~value:(Some "w") () with
  | Mvcc.Written -> ()
  | Mvcc.Write_blocked _ | Mvcc.Write_prevented -> Alcotest.fail "blocked");
  (* Foreign reader above the intent ts blocks. *)
  (match Mvcc.read s ~key:"k" ~ts:(ts 20) ~max_ts:(ts 20) ~for_txn:(Some 2) with
  | Mvcc.Intent_blocked i -> check Alcotest.int "owner" 1 i.Mvcc.txn_id
  | Mvcc.Value _ | Mvcc.Uncertain _ -> Alcotest.fail "expected block");
  (* Foreign reader below the intent ts does not block. *)
  (match Mvcc.read s ~key:"k" ~ts:(ts 5) ~max_ts:(ts 5) ~for_txn:(Some 2) with
  | Mvcc.Value { value = None; _ } -> ()
  | Mvcc.Value _ | Mvcc.Uncertain _ | Mvcc.Intent_blocked _ ->
      Alcotest.fail "expected no block");
  (* The owner reads its own intent. *)
  (match Mvcc.read s ~key:"k" ~ts:(ts 5) ~max_ts:(ts 5) ~for_txn:(Some 1) with
  | Mvcc.Value { value = Some "w"; _ } -> ()
  | Mvcc.Value _ | Mvcc.Uncertain _ | Mvcc.Intent_blocked _ ->
      Alcotest.fail "expected own intent");
  (* A second writer blocks. *)
  (match Mvcc.put_intent s ~key:"k" ~txn_id:2 ~ts:(ts 30) ~value:(Some "x") () with
  | Mvcc.Write_blocked i -> check Alcotest.int "blocker" 1 i.Mvcc.txn_id
  | Mvcc.Written | Mvcc.Write_prevented -> Alcotest.fail "expected write block");
  (* The same txn may bump its own intent. *)
  match Mvcc.put_intent s ~key:"k" ~txn_id:1 ~ts:(ts 40) ~value:(Some "w2") () with
  | Mvcc.Written -> ()
  | Mvcc.Write_blocked _ | Mvcc.Write_prevented -> Alcotest.fail "own intent rewrite blocked"

let test_abort_discards () =
  let s = Mvcc.create () in
  ignore (Mvcc.put_intent s ~key:"k" ~txn_id:1 ~ts:(ts 10) ~value:(Some "w") ());
  Mvcc.resolve_intent s ~key:"k" ~txn_id:1 ~commit:None;
  check Alcotest.(option string) "aborted write invisible" None
    (read_value s ~key:"k" ~at:20);
  check Alcotest.bool "no intent left" true (Mvcc.intent_on s ~key:"k" = None)

let test_has_committed_after () =
  let s = Mvcc.create () in
  commit_put s ~key:"k" ~txn:1 ~at:100 ~value:"v";
  check Alcotest.bool "in window" true
    (Mvcc.has_committed_after s ~key:"k" ~after:(ts 50) ~upto:(ts 150));
  check Alcotest.bool "window below" false
    (Mvcc.has_committed_after s ~key:"k" ~after:(ts 100) ~upto:(ts 150));
  check Alcotest.bool "window above" false
    (Mvcc.has_committed_after s ~key:"k" ~after:(ts 10) ~upto:(ts 99))

let test_scan () =
  let s = Mvcc.create () in
  commit_put s ~key:"a" ~txn:1 ~at:10 ~value:"1";
  commit_put s ~key:"b" ~txn:1 ~at:10 ~value:"2";
  commit_put s ~key:"c" ~txn:1 ~at:10 ~value:"3";
  commit_put s ~key:"d" ~txn:1 ~at:10 ~value:"4";
  let rows =
    Mvcc.scan s ~start_key:"b" ~end_key:"d" ~ts:(ts 20) ~max_ts:(ts 20)
      ~for_txn:None ~limit:None
  in
  check Alcotest.(list string) "keys in order" [ "b"; "c" ] (List.map fst rows);
  let limited =
    Mvcc.scan s ~start_key:"a" ~end_key:"z" ~ts:(ts 20) ~max_ts:(ts 20)
      ~for_txn:None ~limit:(Some 2)
  in
  check Alcotest.int "limit respected" 2 (List.length limited)

let prop_read_latest_below =
  QCheck.Test.make ~name:"mvcc read returns newest version <= ts" ~count:200
    QCheck.(pair (list (int_range 1 100)) (int_range 1 120))
    (fun (write_ts_list, read_at) ->
      let s = Mvcc.create () in
      let sorted = List.sort_uniq Int.compare write_ts_list in
      List.iter
        (fun at -> commit_put s ~key:"k" ~txn:at ~at ~value:(string_of_int at))
        sorted;
      let expected =
        List.fold_left
          (fun acc at -> if at <= read_at then Some (string_of_int at) else acc)
          None sorted
      in
      read_value s ~key:"k" ~at:read_at = expected)

let test_tscache () =
  let none = None in
  let c = Tscache.create ~low_water:(ts 10) in
  check Alcotest.bool "low water default" true
    (Ts.equal (Tscache.max_read c ~for_txn:none ~key:"k") (ts 10));
  Tscache.record_read c ~txn:None ~key:"k" ~ts:(ts 50);
  check Alcotest.bool "point read" true
    (Ts.equal (Tscache.max_read c ~for_txn:none ~key:"k") (ts 50));
  Tscache.record_read c ~txn:None ~key:"k" ~ts:(ts 30);
  check Alcotest.bool "no regression" true
    (Ts.equal (Tscache.max_read c ~for_txn:none ~key:"k") (ts 50));
  Tscache.bump_low_water c (ts 60);
  check Alcotest.bool "low water dominates" true
    (Ts.equal (Tscache.max_read c ~for_txn:none ~key:"other") (ts 60));
  Tscache.record_read_span c ~txn:None ~start_key:"a" ~end_key:"m" ~ts:(ts 100);
  check Alcotest.bool "span covers" true
    (Ts.equal (Tscache.max_read c ~for_txn:none ~key:"f") (ts 100));
  check Alcotest.bool "span excludes" true
    (Ts.equal (Tscache.max_read c ~for_txn:none ~key:"z") (ts 60));
  check Alcotest.bool "span query overlap" true
    (Ts.equal
       (Tscache.max_read_span c ~for_txn:none ~start_key:"l" ~end_key:"q")
       (ts 100));
  check Alcotest.bool "span query disjoint" true
    (Ts.equal
       (Tscache.max_read_span c ~for_txn:none ~start_key:"n" ~end_key:"q")
       (ts 60))

let test_tscache_self_exclusion () =
  let c = Tscache.create ~low_water:(ts 10) in
  (* A transaction's own reads never push its own writes... *)
  Tscache.record_read c ~txn:(Some 7) ~key:"k" ~ts:(ts 90);
  check Alcotest.bool "self excluded" true
    (Ts.equal (Tscache.max_read c ~for_txn:(Some 7) ~key:"k") (ts 10));
  check Alcotest.bool "others see it" true
    (Ts.equal (Tscache.max_read c ~for_txn:(Some 8) ~key:"k") (ts 90));
  (* ...but another transaction's reads below the max still constrain it. *)
  Tscache.record_read c ~txn:(Some 8) ~key:"k" ~ts:(ts 70);
  check Alcotest.bool "falls back to other txn's read" true
    (Ts.equal (Tscache.max_read c ~for_txn:(Some 7) ~key:"k") (ts 70));
  (* Anonymous reads are never excluded. *)
  Tscache.record_read c ~txn:None ~key:"k" ~ts:(ts 95);
  check Alcotest.bool "anonymous read dominates" true
    (Ts.equal (Tscache.max_read c ~for_txn:(Some 7) ~key:"k") (ts 95));
  (* Spans respect ownership too. *)
  Tscache.record_read_span c ~txn:(Some 7) ~start_key:"a" ~end_key:"z" ~ts:(ts 200);
  check Alcotest.bool "own span excluded" true
    (Ts.equal (Tscache.max_read c ~for_txn:(Some 7) ~key:"m") (ts 10));
  check Alcotest.bool "foreign span seen" true
    (Ts.equal (Tscache.max_read c ~for_txn:(Some 9) ~key:"m") (ts 200))

let suite =
  [
    Alcotest.test_case "basic versions" `Quick test_basic_versions;
    Alcotest.test_case "tombstone" `Quick test_tombstone;
    Alcotest.test_case "uncertainty" `Quick test_uncertainty;
    Alcotest.test_case "intent blocking" `Quick test_intent_blocking;
    Alcotest.test_case "abort discards" `Quick test_abort_discards;
    Alcotest.test_case "has_committed_after" `Quick test_has_committed_after;
    Alcotest.test_case "scan" `Quick test_scan;
    qcheck prop_read_latest_below;
    Alcotest.test_case "tscache" `Quick test_tscache;
    Alcotest.test_case "tscache self exclusion" `Quick test_tscache_self_exclusion;
  ]
