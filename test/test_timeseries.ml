(* Tests for the second-generation observability layer: the windowed
   ring-buffer timeseries (bucket rollover, sliding-window decay math,
   percentiles, deterministic snapshots), the structured event log, the
   phase-latency contexts, the end-of-run report, and the docs/METRICS.md
   catalog (doc-rot guard). *)

module Topology = Crdb_net.Topology
module Latency = Crdb_net.Latency
module Zoneconfig = Crdb_kv.Zoneconfig
module Cluster = Crdb_kv.Cluster
module Txn = Crdb_txn.Txn
module Obs = Crdb_obs.Obs
module Metrics = Crdb_obs.Metrics
module Timeseries = Crdb_obs.Timeseries
module Events = Crdb_obs.Events
module Phase = Crdb_obs.Phase
module Report = Crdb_obs.Report
module Trace = Crdb_obs.Trace

let check = Alcotest.check
let feq = Alcotest.(float 1e-9)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Timeseries: ring and window math (synthetic clock)                  *)

let make_ts ?(bucket_width = 1_000) ?(num_buckets = 4) now =
  Timeseries.create ~now:(fun () -> !now) ~bucket_width ~num_buckets ()

let test_ts_basic_window () =
  let now = ref 0 in
  let ts = make_ts now in
  (* Buckets of 1000us, 4 of them: retained span (and default window) 4000. *)
  check Alcotest.int "span" 4_000 (Timeseries.span ts);
  Timeseries.observe ts "qps" 1;
  now := 500;
  Timeseries.observe ts "qps" 1;
  now := 1_500;
  Timeseries.observe ts "qps" 1;
  (* Window covering everything: 3 samples, no decay. *)
  check feq "full window count" 3.0 (Timeseries.window_count ts "qps");
  (* rate = count / window-seconds = 3 / 0.004 *)
  check feq "rate over span" 750.0 (Timeseries.rate ts "qps")

let test_ts_fractional_decay () =
  let now = ref 0 in
  let ts = make_ts now in
  (* 4 samples in bucket [0, 1000). *)
  for _ = 1 to 4 do
    Timeseries.observe ts "qps" 1
  done;
  (* At now=1500 with window 1000, the window is [500, 1500]: the left edge
     splits the first bucket in half, so it contributes 4 * 0.5 = 2. *)
  now := 1_500;
  check feq "straddling bucket counts fractionally" 2.0
    (Timeseries.window_count ts ~window:1_000 "qps");
  (* Window [800, 1500]: only 200/1000 of the old bucket remains. *)
  check feq "narrower window decays further" 0.8
    (Timeseries.window_count ts ~window:700 "qps");
  (* Window [1400, 1500] ends past the old bucket entirely: nothing left. *)
  check feq "window past the bucket sees nothing" 0.0
    (Timeseries.window_count ts ~window:100 "qps");
  (* A sample in the current bucket: the bucket [1000, 2000) straddles the
     window's left edge 1400, so it too decays by (2000 - 1400) / 1000. *)
  Timeseries.observe ts "qps" 1;
  check feq "current straddling bucket decays by full width" 0.6
    (Timeseries.window_count ts ~window:100 "qps");
  (* Window [900, 1500]: the current bucket's start is inside the window so
     its sample counts fully (the bucket has not elapsed), and the old
     bucket still contributes its last 100/1000 slice: 1 + 4 * 0.1. *)
  check feq "current bucket counts fully once inside the window" 1.4
    (Timeseries.window_count ts ~window:600 "qps")

let test_ts_rollover_recycles_slots () =
  let now = ref 0 in
  let ts = make_ts now in
  Timeseries.observe ts "qps" 1;
  (* Advance beyond the retained span: epoch 0's slot (0 mod 4) is reused by
     epoch 4, wiping the old contents. *)
  now := 4_200;
  Timeseries.observe ts "qps" 1;
  check feq "old epoch evicted, only the new sample remains" 1.0
    (Timeseries.window_count ts "qps");
  (* The JSON snapshot must agree: exactly one bucket, starting at 4000. *)
  let json = Timeseries.to_json ts in
  check Alcotest.bool "snapshot has the recycled bucket" true
    (contains ~needle:"{\"start\":4000,\"count\":1,\"sum\":1}" json);
  check Alcotest.bool "snapshot dropped the evicted bucket" false
    (contains ~needle:"{\"start\":0," json)

let test_ts_sparse_samples () =
  let now = ref 0 in
  let ts = make_ts now in
  (* Samples only in epochs 0 and 2; epoch 1 and 3 never written. *)
  Timeseries.observe ts "w" 10;
  now := 2_500;
  Timeseries.observe ts "w" 30;
  now := 3_999;
  check feq "sum skips unused buckets" 40.0 (Timeseries.window_sum ts "w");
  (* sum_rate = 40 / 0.004s *)
  check feq "sum_rate" 10_000.0 (Timeseries.sum_rate ts "w");
  check feq "missing series reads as zero" 0.0
    (Timeseries.window_count ts "nope")

let test_ts_percentile_and_scopes () =
  let now = ref 0 in
  let ts = make_ts now in
  List.iter (Timeseries.record_sample ts ~range:7 "lat") [ 10; 20; 30; 40 ];
  now := 900;
  check
    Alcotest.(option int)
    "p50 over window" (Some 20)
    (Timeseries.percentile ts ~range:7 "lat" 50.0);
  check
    Alcotest.(option int)
    "p100 over window" (Some 40)
    (Timeseries.percentile ts ~range:7 "lat" 100.0);
  check
    Alcotest.(option int)
    "no samples -> None" None
    (Timeseries.percentile ts ~range:8 "lat" 50.0);
  (* Scoping: per-range series are independent; names/ranges enumerate. *)
  Timeseries.observe ts ~range:9 "lat" 1;
  Timeseries.observe ts "other" 1;
  check
    Alcotest.(list string)
    "names sorted" [ "lat"; "other" ] (Timeseries.names ts);
  check
    Alcotest.(list int)
    "ranges_of sorted" [ 7; 9 ] (Timeseries.ranges_of ts "lat")

let test_ts_snapshot_deterministic () =
  (* Two stores fed identically — including out-of-order series creation —
     must serialize byte-identically (sorted by name/range, buckets by
     epoch). *)
  let feed order =
    let now = ref 0 in
    let ts = make_ts now in
    List.iter
      (fun (name, range, v) ->
        Timeseries.observe ts ?range name v;
        now := !now + 400)
      order;
    Timeseries.to_json ts
  in
  let a =
    feed [ ("b", Some 2, 5); ("a", None, 1); ("b", Some 1, 3); ("a", None, 2) ]
  in
  let b =
    feed [ ("b", Some 2, 5); ("a", None, 1); ("b", Some 1, 3); ("a", None, 2) ]
  in
  check Alcotest.string "identical feeds -> identical snapshots" a b;
  check Alcotest.bool "series sorted by name" true
    (contains ~needle:"[{\"name\":\"a\"" a)

(* ------------------------------------------------------------------ *)
(* Events                                                              *)

let test_events_log () =
  let now = ref 0 in
  let ev = Events.create ~now:(fun () -> !now) () in
  Events.log ev ~node:1 ~range:4 ~attrs:[ ("at", "k08") ] Events.Split;
  now := 2_000_000;
  Events.log ev ~node:2 ~txn:9 Events.Wound;
  now := 3_000_000;
  Events.log ev Events.Fault ~attrs:[ ("fault", "kill_node(3)") ];
  check Alcotest.int "length" 3 (Events.length ev);
  check Alcotest.int "count of_kind" 1 (Events.count ev Events.Wound);
  (match Events.of_kind ev Events.Split with
  | [ e ] ->
      check Alcotest.int "split ts" 0 e.Events.ts;
      check Alcotest.(option int) "split node" (Some 1) e.Events.node;
      check Alcotest.(option int) "split range" (Some 4) e.Events.range
  | l -> Alcotest.failf "expected one split, got %d" (List.length l));
  let timeline = Format.asprintf "%a" Events.pp_timeline ev in
  List.iter
    (fun needle ->
      check Alcotest.bool (Printf.sprintf "timeline has %s" needle) true
        (contains ~needle timeline))
    [ "split"; "wound"; "fault"; "at=k08"; "txn=9"; "2.000s" ];
  let json = Events.to_json ev in
  check Alcotest.bool "json has kinds" true
    (contains ~needle:"\"kind\":\"wound\"" json);
  Events.clear ev;
  check Alcotest.int "clear" 0 (Events.length ev)

(* ------------------------------------------------------------------ *)
(* Phase contexts                                                      *)

let test_phase_ctx () =
  let ctx = Phase.make () in
  check Alcotest.bool "fresh ctx is not nil" false (Phase.is_nil ctx);
  check Alcotest.bool "nil is nil" true (Phase.is_nil Phase.nil);
  Phase.add ctx Phase.Routing 100;
  Phase.add ctx Phase.Routing 50;
  Phase.add ctx Phase.Commit_wait 900;
  Phase.add_wan ctx;
  Phase.add_wan ~n:2 ctx;
  check Alcotest.int "accumulates" 150 (Phase.total ctx Phase.Routing);
  check Alcotest.int "untouched phase is zero" 0 (Phase.total ctx Phase.Refresh);
  check Alcotest.int "wan rtts" 3 (Phase.wan_rtts ctx);
  (* Adds to nil are discarded. *)
  Phase.add Phase.nil Phase.Routing 999;
  Phase.add_wan Phase.nil;
  check Alcotest.int "nil discards" 0 (Phase.total Phase.nil Phase.Routing);
  (* Flush: one sample per phase (zeros included) + the WAN count. *)
  let m = Metrics.create () in
  Phase.flush ctx ~cls:"op" m;
  List.iter
    (fun p ->
      check Alcotest.int
        (Printf.sprintf "one sample for %s" (Phase.name p))
        1
        (Crdb_stats.Hist.count
           (Metrics.merged_hist m ("phase.op." ^ Phase.name p))))
    Phase.all_phases;
  check Alcotest.int "commit_wait sample value" 900
    (Crdb_stats.Hist.max_value (Metrics.merged_hist m "phase.op.commit_wait"))
  ;
  check Alcotest.int "wan hist sample" 3
    (Crdb_stats.Hist.max_value (Metrics.merged_hist m "wan_rtts.op"));
  Phase.reset ctx;
  check Alcotest.int "reset clears phases" 0 (Phase.total ctx Phase.Routing);
  check Alcotest.int "reset clears wan" 0 (Phase.wan_rtts ctx)

(* ------------------------------------------------------------------ *)
(* End-to-end: workload feeds phases/timeseries/events; report is       *)
(* deterministic per seed                                               *)

let regions = Latency.table1_regions
let home = "us-east1"

let run_workload () =
  let topo = Topology.symmetric ~regions ~nodes_per_region:3 in
  let cl = Cluster.create ~topology:topo ~latency:Latency.table1 () in
  let zone =
    Zoneconfig.derive ~regions ~home ~survival:Zoneconfig.Zone
      ~placement:Zoneconfig.Default
  in
  let rid =
    Cluster.add_range cl ~span:("a", "zzzz") ~zone ~policy:(Cluster.Lag 3_000_000)
  in
  Cluster.settle cl;
  let mgr = Txn.create_manager cl in
  let gw = (List.hd (Topology.nodes_in_region topo home)).Topology.id in
  let remote_gw =
    (List.hd (Topology.nodes_in_region topo "europe-west2")).Topology.id
  in
  Cluster.run cl (fun () ->
      for i = 0 to 3 do
        match
          Txn.run mgr ~gateway:gw (fun t ->
              Txn.put t (Printf.sprintf "k%d" i) (string_of_int i);
              ignore (Txn.get t "k0" : string option))
        with
        | Ok () -> ()
        | Error e -> Alcotest.failf "txn failed: %a" Txn.pp_error e
      done;
      (* One remote transaction so wan_rtts.txn has nonzero samples. *)
      (match
         Txn.run mgr ~gateway:remote_gw (fun t -> Txn.put t "k0" "remote")
       with
      | Ok () -> ()
      | Error e -> Alcotest.failf "remote txn failed: %a" Txn.pp_error e);
      (* A split + merge so the event log has lifecycle entries. *)
      ignore (Cluster.split_range cl rid ~at:"k2" : int option);
      Crdb_sim.Proc.sleep (Cluster.sim cl) 500_000;
      ignore (Cluster.merge_range cl rid : bool));
  cl

let test_workload_phases () =
  let cl = run_workload () in
  let m = Obs.metrics (Cluster.obs cl) in
  (* Every committed txn flushed one sample per phase into phase.txn.*. *)
  let n =
    Crdb_stats.Hist.count (Metrics.merged_hist m "phase.txn.routing")
  in
  check Alcotest.int "one phase sample per txn" 5 n;
  List.iter
    (fun p ->
      check Alcotest.int
        (Printf.sprintf "phase counts agree (%s)" (Phase.name p))
        n
        (Crdb_stats.Hist.count
           (Metrics.merged_hist m ("phase.txn." ^ Phase.name p))))
    Phase.all_phases;
  (* Writes replicate, so the replication phase saw real time. *)
  check Alcotest.bool "replication phase nonzero" true
    (Crdb_stats.Hist.max_value (Metrics.merged_hist m "phase.txn.replication")
    > 0);
  (* The remote gateway txn paid WAN round trips; home txns paid none. *)
  let wan = Metrics.merged_hist m "wan_rtts.txn" in
  check Alcotest.int "wan samples" 5 (Crdb_stats.Hist.count wan);
  check Alcotest.int "local txns pay no WAN" 0 (Crdb_stats.Hist.min_value wan);
  check Alcotest.bool "remote txn pays WAN" true
    (Crdb_stats.Hist.max_value wan >= 1)

let test_workload_timeseries_and_events () =
  let cl = run_workload () in
  let obs = Cluster.obs cl in
  let ts = Obs.timeseries obs in
  check Alcotest.bool "qps series exists" true
    (List.mem Report.qps_series (Timeseries.names ts));
  check Alcotest.bool "write-bytes series exists" true
    (List.mem Report.write_bytes_series (Timeseries.names ts));
  check Alcotest.bool "latency series exists" true
    (List.mem Report.latency_series (Timeseries.names ts));
  let rngs = Timeseries.ranges_of ts Report.qps_series in
  check Alcotest.bool "per-range qps populated" true (rngs <> []);
  let total =
    List.fold_left
      (fun acc r -> acc +. Timeseries.window_count ts ~range:r Report.qps_series)
      0.0 rngs
  in
  check Alcotest.bool "qps window sees the workload's requests" true
    (total > 0.0);
  let ev = Obs.events obs in
  check Alcotest.bool "split logged" true (Events.count ev Events.Split >= 1);
  check Alcotest.bool "merge logged" true (Events.count ev Events.Merge >= 1);
  check Alcotest.bool "lease acquisitions logged" true
    (Events.count ev Events.Lease_acquired >= 1)

let test_report_deterministic () =
  let a = Cluster.obs (run_workload ()) in
  let b = Cluster.obs (run_workload ()) in
  let ra = Report.to_string a and rb = Report.to_string b in
  check Alcotest.bool "report nonempty" true (String.length ra > 0);
  check Alcotest.string "byte-identical report across identical seeds" ra rb;
  check Alcotest.string "byte-identical timeseries snapshot"
    (Timeseries.to_json (Obs.timeseries a))
    (Timeseries.to_json (Obs.timeseries b));
  check Alcotest.string "byte-identical event json"
    (Events.to_json (Obs.events a))
    (Events.to_json (Obs.events b));
  (* The report mentions every section and the workload's op class. *)
  List.iter
    (fun needle ->
      check Alcotest.bool (Printf.sprintf "report has %s" needle) true
        (contains ~needle ra))
    [
      "Phase latency by op class";
      "WAN round trips";
      "Hottest ranges";
      "Cluster events";
      "txn:";
      "routing";
    ]

(* ------------------------------------------------------------------ *)
(* docs/METRICS.md catalog: every registry name must be documented      *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let metrics_md () =
  (* Under [dune runtest] the cwd is _build/default/test (the (deps) clause
     in test/dune stages the catalog next to it); under [dune exec] from the
     workspace root it is the root itself. *)
  let candidates = [ "../docs/METRICS.md"; "docs/METRICS.md" ] in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> read_file path
  | None -> Alcotest.fail "docs/METRICS.md not found from the test's cwd"

(* Dynamic histogram families are documented as patterns, not instances. *)
let normalize name =
  let has_prefix p = String.length name >= String.length p
                     && String.sub name 0 (String.length p) = p in
  if has_prefix "phase." then "phase.<class>.<phase>"
  else if has_prefix "wan_rtts." then "wan_rtts.<class>"
  else name

let test_catalog_covers_registry () =
  let doc = metrics_md () in
  let cl = run_workload () in
  let m = Obs.metrics (Cluster.obs cl) in
  let missing =
    List.filter
      (fun name ->
        not (contains ~needle:(Printf.sprintf "`%s`" (normalize name)) doc))
      (Metrics.names m)
  in
  check
    Alcotest.(list string)
    "every registry name is documented in docs/METRICS.md" [] missing;
  (* Timeseries, phases and event kinds are part of the catalog too. *)
  let ts = Obs.timeseries (Cluster.obs cl) in
  List.iter
    (fun name ->
      check Alcotest.bool (Printf.sprintf "series %s documented" name) true
        (contains ~needle:(Printf.sprintf "`%s`" name) doc))
    (Timeseries.names ts);
  List.iter
    (fun p ->
      check Alcotest.bool
        (Printf.sprintf "phase %s documented" (Phase.name p))
        true
        (contains ~needle:(Printf.sprintf "`%s`" (Phase.name p)) doc))
    Phase.all_phases;
  List.iter
    (fun k ->
      check Alcotest.bool
        (Printf.sprintf "event kind %s documented" (Events.kind_to_string k))
        true
        (contains ~needle:(Printf.sprintf "`%s`" (Events.kind_to_string k)) doc))
    [
      Events.Split;
      Events.Merge;
      Events.Rebalance;
      Events.Lease_transfer;
      Events.Lease_acquired;
      Events.Wound;
      Events.Abandoned_cleanup;
      Events.Fault;
      Events.Heal;
      Events.Split_queued;
      Events.Merge_queued;
      Events.Lease_moved;
      Events.Queue_skipped;
    ]

let suite =
  [
    Alcotest.test_case "timeseries: basic window" `Quick test_ts_basic_window;
    Alcotest.test_case "timeseries: fractional decay" `Quick
      test_ts_fractional_decay;
    Alcotest.test_case "timeseries: rollover recycles slots" `Quick
      test_ts_rollover_recycles_slots;
    Alcotest.test_case "timeseries: sparse samples" `Quick
      test_ts_sparse_samples;
    Alcotest.test_case "timeseries: percentile and scopes" `Quick
      test_ts_percentile_and_scopes;
    Alcotest.test_case "timeseries: deterministic snapshot" `Quick
      test_ts_snapshot_deterministic;
    Alcotest.test_case "events: log, timeline, json" `Quick test_events_log;
    Alcotest.test_case "phase: ctx accumulate/flush/reset" `Quick
      test_phase_ctx;
    Alcotest.test_case "workload: phase histograms" `Quick
      test_workload_phases;
    Alcotest.test_case "workload: timeseries + events" `Quick
      test_workload_timeseries_and_events;
    Alcotest.test_case "report: byte-identical per seed" `Quick
      test_report_deterministic;
    Alcotest.test_case "docs/METRICS.md covers the registry" `Quick
      test_catalog_covers_registry;
  ]
