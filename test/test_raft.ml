(* Tests for the Raft implementation, wired over a tiny in-memory network
   with fixed delivery delay and controllable node failures. *)

module Sim = Crdb_sim.Sim
module Rng = Crdb_stdx.Rng
module Raft = Crdb_raft.Raft

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* Commands are strings; snapshots carry the full applied command list. *)
type node = {
  id : int;
  mutable raft : (string, string list) Raft.t option;
  mutable applied : string list; (* newest first *)
  mutable alive : bool;
}

type harness = {
  sim : Sim.t;
  nodes : node array;
  mutable blocked : (int * int) list; (* directed pairs *)
  delay : int;
}

let deliver h src dst msg =
  let blocked = List.mem (src, dst) h.blocked in
  if h.nodes.(src).alive && not blocked then
    Sim.schedule h.sim ~after:h.delay (fun () ->
        let n = h.nodes.(dst) in
        if n.alive && not (List.mem (src, dst) h.blocked) then
          match n.raft with
          | Some r -> Raft.handle r ~from:src msg
          | None -> ())

let node_callbacks h node =
  {
    Raft.send = (fun dst msg -> deliver h node.id dst msg);
    on_apply = (fun ~index:_ cmd -> node.applied <- cmd :: node.applied);
    on_role = (fun _ -> ());
    on_config = (fun _ -> ());
    take_snapshot = (fun () -> node.applied);
    install_snapshot = (fun apps -> node.applied <- apps);
    is_node_live = (fun peer -> h.nodes.(peer).alive);
    node_epoch = (fun _ -> 0);
    on_discard = (fun _ -> ());
  }

let make_harness ?(delay = 1_000) ?(seed = 7) ?boundary ?(spare_nodes = [])
    ~voters ~learners () =
  let ids = voters @ learners in
  let n = List.fold_left max 0 (ids @ spare_nodes) + 1 in
  let h =
    {
      sim = Sim.create ();
      nodes = Array.init n (fun id -> { id; raft = None; applied = []; alive = true });
      blocked = [];
      delay;
    }
  in
  let peers =
    List.map (fun v -> (v, Raft.Voter)) voters
    @ List.map (fun l -> (l, Raft.Learner)) learners
  in
  let rng = Rng.create ~seed in
  List.iter
    (fun id ->
      let node = h.nodes.(id) in
      node.raft <-
        Some
          (Raft.create ~sim:h.sim ~rng:(Rng.split rng) ~id ~peers
             ~callbacks:(node_callbacks h node) ?boundary ()))
    ids;
  List.iter (fun id -> Raft.start (Option.get h.nodes.(id).raft)) ids;
  h

let raft h id = Option.get h.nodes.(id).raft
let applied h id = List.rev h.nodes.(id).applied

let leaders h =
  Array.to_list h.nodes
  |> List.filter_map (fun n ->
         match n.raft with
         | Some r when n.alive && Raft.is_leader r -> Some n.id
         | Some _ | None -> None)

let run_ms h ms = Sim.run ~until:(Sim.now h.sim + (ms * 1000)) h.sim

let find_leader h =
  match leaders h with
  | [ l ] -> l
  | [] -> Alcotest.fail "no leader elected"
  | ls -> Alcotest.failf "multiple leaders: %s" (String.concat "," (List.map string_of_int ls))

let test_initial_election () =
  let h = make_harness ~voters:[ 0; 1; 2 ] ~learners:[] () in
  run_ms h 500;
  let l = find_leader h in
  check Alcotest.int "lowest id campaigns first" 0 l;
  Array.iter
    (fun n ->
      match n.raft with
      | Some r -> check Alcotest.(option int) "all know leader" (Some l) (Raft.leader_id r)
      | None -> ())
    h.nodes

let test_replication () =
  let h = make_harness ~voters:[ 0; 1; 2 ] ~learners:[] () in
  run_ms h 500;
  let l = find_leader h in
  check Alcotest.bool "propose a" true (Raft.propose (raft h l) "a" <> None);
  check Alcotest.bool "propose b" true (Raft.propose (raft h l) "b" <> None);
  check Alcotest.(option int) "follower rejects" None (Raft.propose (raft h ((l + 1) mod 3)) "x");
  run_ms h 500;
  for id = 0 to 2 do
    check Alcotest.(list string) "applied in order" [ "a"; "b" ] (applied h id)
  done

let test_learner_applies_but_never_leads () =
  let h = make_harness ~voters:[ 0; 1; 2 ] ~learners:[ 3 ] () in
  run_ms h 500;
  let l = find_leader h in
  ignore (Raft.propose (raft h l) "a");
  run_ms h 500;
  check Alcotest.(list string) "learner applied" [ "a" ] (applied h 3);
  (* Kill all voters except one; the learner must never campaign. *)
  h.nodes.(l).alive <- false;
  run_ms h 20_000;
  check Alcotest.bool "learner still follower" false (Raft.is_leader (raft h 3))

let test_leader_failover () =
  let h = make_harness ~voters:[ 0; 1; 2 ] ~learners:[] () in
  run_ms h 500;
  let l1 = find_leader h in
  ignore (Raft.propose (raft h l1) "committed-before-crash");
  run_ms h 500;
  h.nodes.(l1).alive <- false;
  run_ms h 15_000;
  let l2 = find_leader h in
  check Alcotest.bool "new leader" true (l2 <> l1);
  ignore (Raft.propose (raft h l2) "after-crash");
  run_ms h 500;
  List.iter
    (fun id ->
      if id <> l1 then
        check Alcotest.(list string) "no committed entry lost"
          [ "committed-before-crash"; "after-crash" ]
          (applied h id))
    [ 0; 1; 2 ]

let test_quiescence () =
  let h = make_harness ~voters:[ 0; 1; 2 ] ~learners:[] () in
  run_ms h 500;
  let l = find_leader h in
  ignore (Raft.propose (raft h l) "a");
  (* After a few heartbeat intervals with no traffic, everyone quiesces. *)
  run_ms h 5_000;
  check Alcotest.bool "leader quiesced" true (Raft.quiesced (raft h l));
  for id = 0 to 2 do
    check Alcotest.bool "replica quiesced" true (Raft.quiesced (raft h id))
  done;
  (* No elections happen while quiesced and the leader is live. *)
  let term_before = Raft.term (raft h l) in
  run_ms h 30_000;
  check Alcotest.int "term stable while quiesced" term_before (Raft.term (raft h l));
  check Alcotest.int "still leader" l (find_leader h);
  (* A new proposal wakes the group. *)
  ignore (Raft.propose (raft h l) "b");
  run_ms h 500;
  for id = 0 to 2 do
    check Alcotest.(list string) "woke and committed" [ "a"; "b" ] (applied h id)
  done

let test_quiesced_leader_death_triggers_election () =
  let h = make_harness ~voters:[ 0; 1; 2 ] ~learners:[] () in
  run_ms h 500;
  let l = find_leader h in
  ignore (Raft.propose (raft h l) "a");
  run_ms h 5_000;
  check Alcotest.bool "quiesced" true (Raft.quiesced (raft h l));
  h.nodes.(l).alive <- false;
  (* The liveness oracle lets followers campaign at their next watchdog. *)
  run_ms h 15_000;
  let l2 = find_leader h in
  check Alcotest.bool "re-elected" true (l2 <> l)

let test_transfer_leadership () =
  let h = make_harness ~voters:[ 0; 1; 2 ] ~learners:[] () in
  run_ms h 500;
  let l = find_leader h in
  let target = (l + 1) mod 3 in
  Raft.transfer_leadership (raft h l) target;
  run_ms h 1_000;
  check Alcotest.int "leadership moved" target (find_leader h);
  ignore (Raft.propose (raft h target) "x");
  run_ms h 500;
  check Alcotest.(list string) "still works" [ "x" ] (applied h l)

let test_minority_partition () =
  let h = make_harness ~voters:[ 0; 1; 2 ] ~learners:[] () in
  run_ms h 500;
  let l = find_leader h in
  ignore (Raft.propose (raft h l) "a");
  run_ms h 500;
  (* Isolate the leader from both followers. *)
  let others = List.filter (fun i -> i <> l) [ 0; 1; 2 ] in
  h.blocked <-
    List.concat_map (fun o -> [ (l, o); (o, l) ]) others;
  (* Proposals on the isolated leader must not commit. *)
  ignore (Raft.propose (raft h l) "lost");
  run_ms h 20_000;
  let l2 =
    match leaders h |> List.filter (fun i -> i <> l) with
    | [ x ] -> x
    | _ -> Alcotest.fail "majority did not elect"
  in
  ignore (Raft.propose (raft h l2) "b");
  run_ms h 1_000;
  (* Heal; old leader steps down and converges, dropping "lost". *)
  h.blocked <- [];
  run_ms h 30_000;
  List.iter
    (fun id ->
      check Alcotest.(list string) "converged without lost write" [ "a"; "b" ]
        (applied h id))
    [ 0; 1; 2 ];
  check Alcotest.int "single leader after heal" l2 (find_leader h)

let test_config_change_adds_node () =
  let h = make_harness ~voters:[ 0; 1; 2 ] ~learners:[ 3 ] () in
  (* Node 3 exists but starts outside the group: recreate the group with just
     3 voters, then add 3 as a learner via reconfiguration. *)
  run_ms h 500;
  let l = find_leader h in
  ignore (Raft.propose (raft h l) "a");
  run_ms h 500;
  let new_config =
    [ (0, Raft.Voter); (1, Raft.Voter); (2, Raft.Voter); (3, Raft.Voter) ]
  in
  check Alcotest.bool "config proposed" true
    (Raft.propose_config (raft h l) new_config <> None);
  run_ms h 2_000;
  check Alcotest.int "peers grew" 4 (List.length (Raft.peers (raft h l)));
  check Alcotest.(list string) "new voter caught up" [ "a" ] (applied h 3);
  ignore (Raft.propose (raft h l) "b");
  run_ms h 1_000;
  check Alcotest.(list string) "replicates to new voter" [ "a"; "b" ] (applied h 3)

let test_snapshot_catch_up () =
  let h = make_harness ~voters:[ 0; 1; 2 ] ~learners:[] () in
  run_ms h 500;
  let l = find_leader h in
  (* Disconnect node 2, write a lot, reconnect: it catches up. *)
  let off = List.filter (fun i -> i <> 2) [ 0; 1; 2 ] in
  h.blocked <- List.concat_map (fun o -> [ (2, o); (o, 2) ]) off;
  for i = 1 to 20 do
    ignore (Raft.propose (raft h l) (Printf.sprintf "w%d" i));
    run_ms h 100
  done;
  h.blocked <- [];
  run_ms h 10_000;
  check Alcotest.int "caught up" 20 (List.length (applied h 2));
  check Alcotest.bool "same log" true (applied h 2 = applied h l)

let test_snapshot_boundary_excludes_uncommitted_tail () =
  (* A group born at a non-zero snapshot boundary (as split ranges are)
     seeds late-added peers by Install_snapshot. The snapshot must be
     stamped with the leader's applied index — the state-machine copy
     reflects exactly that prefix. Stamping the last log index would make
     the receiver mark an appended-but-uncommitted tail as applied, so
     those entries' effects would be missing from its state forever. *)
  let h =
    make_harness ~boundary:(3, 0) ~voters:[ 0; 1; 2 ] ~spare_nodes:[ 3 ]
      ~learners:[] ()
  in
  List.iter (fun id -> h.nodes.(id).applied <- [ "s3"; "s2"; "s1" ]) [ 0; 1; 2 ];
  run_ms h 500;
  let l = find_leader h in
  ignore (Raft.propose (raft h l) "a");
  run_ms h 500;
  check Alcotest.bool "add_peer accepted" true
    (Raft.add_peer (raft h l) 3 Raft.Voter <> None);
  run_ms h 500;
  (* Cut the two followers off, then append an entry that cannot commit:
     the snapshot that seeds the new peer now races an uncommitted tail. *)
  let others = List.filter (fun i -> i <> l && i <> 3) [ 0; 1; 2 ] in
  h.blocked <- List.concat_map (fun o -> [ (l, o); (o, l) ]) others;
  ignore (Raft.propose (raft h l) "c");
  (* Materialize the added peer the way the KV layer does: default (zero)
     boundary and the group's config, forcing Install_snapshot catch-up. *)
  let node = h.nodes.(3) in
  let peers =
    [ (0, Raft.Voter); (1, Raft.Voter); (2, Raft.Voter); (3, Raft.Voter) ]
  in
  node.raft <-
    Some
      (Raft.create ~sim:h.sim ~rng:(Rng.create ~seed:99) ~id:3 ~peers
         ~callbacks:(node_callbacks h node) ());
  Raft.start ~preferred:l (raft h 3);
  run_ms h 3_000;
  h.blocked <- [];
  run_ms h 5_000;
  check Alcotest.(list string) "snapshot-seeded peer converges on the leader"
    (applied h l) (applied h 3);
  check Alcotest.bool "uncommitted-at-snapshot entry reached the new peer" true
    (List.mem "c" (applied h 3))

(* Property: random workloads with a lossy, slow network never violate the
   prefix-consistency of applied logs. *)
let prop_applied_prefix_consistent =
  QCheck.Test.make ~name:"raft applied logs are prefix-consistent" ~count:15
    QCheck.(pair small_int (int_range 1 25))
    (fun (seed, n_cmds) ->
      let h = make_harness ~seed ~voters:[ 0; 1; 2 ] ~learners:[] () in
      let rng = Rng.create ~seed:(seed + 1) in
      run_ms h 500;
      for i = 1 to n_cmds do
        (* Propose at whichever node currently claims leadership. *)
        (match leaders h with
        | l :: _ -> ignore (Raft.propose (raft h l) (string_of_int i))
        | [] -> ());
        (* Occasionally bounce a random node. *)
        if Rng.int rng 10 = 0 then begin
          let victim = Rng.int rng 3 in
          h.nodes.(victim).alive <- false;
          Sim.schedule h.sim ~after:2_000_000 (fun () ->
              h.nodes.(victim).alive <- true)
        end;
        run_ms h (Rng.int rng 300)
      done;
      run_ms h 60_000;
      let logs = List.map (fun id -> applied h id) [ 0; 1; 2 ] in
      let is_prefix a b =
        let rec go = function
          | [], _ -> true
          | _, [] -> false
          | x :: xs, y :: ys -> x = y && go (xs, ys)
        in
        go (a, b)
      in
      List.for_all
        (fun a -> List.for_all (fun b -> is_prefix a b || is_prefix b a) logs)
        logs)

let suite =
  [
    Alcotest.test_case "initial election" `Quick test_initial_election;
    Alcotest.test_case "replication" `Quick test_replication;
    Alcotest.test_case "learner" `Quick test_learner_applies_but_never_leads;
    Alcotest.test_case "leader failover" `Quick test_leader_failover;
    Alcotest.test_case "quiescence" `Quick test_quiescence;
    Alcotest.test_case "quiesced leader death" `Quick
      test_quiesced_leader_death_triggers_election;
    Alcotest.test_case "transfer leadership" `Quick test_transfer_leadership;
    Alcotest.test_case "minority partition" `Quick test_minority_partition;
    Alcotest.test_case "config change" `Quick test_config_change_adds_node;
    Alcotest.test_case "snapshot catch up" `Quick test_snapshot_catch_up;
    Alcotest.test_case "snapshot boundary excludes uncommitted tail" `Quick
      test_snapshot_boundary_excludes_uncommitted_tail;
    qcheck prop_applied_prefix_consistent;
  ]
