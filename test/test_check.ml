(* Fixture tests for the multi-key serializability checker (lib/check):
   hand-crafted transaction histories exercising each anomaly class of the
   taxonomy — G0, G1a, G1c, G2-item, lost update — plus known-serializable
   histories (including with aborted and indeterminate transactions) that
   must pass, and serialization round trips. *)

module Ts = Crdb_hlc.Timestamp
module History = Crdb_check.History
module Checker = Crdb_check.Checker

let check = Alcotest.check

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let ts w = Ts.make ~wall:w ~logical:0
let committed w = History.T_committed { commit_ts = ts w }
let r key value = History.T_read { key; value }
let w key value = History.T_write { key; value }

let txn h ~tid ?(client = 0) ~at ~ops status =
  History.record_txn h ~tid ~client ~began:at ~ended:(at + 10) ~ops ~status

let expect_anomaly name expected h =
  match Checker.check_serializable_report h with
  | Some a, Checker.Violation { message; counterexample } ->
      check Alcotest.string
        (name ^ ": classification")
        (Checker.anomaly_to_string expected)
        (Checker.anomaly_to_string a);
      check Alcotest.bool (name ^ ": message names the class") true
        (contains ~sub:(Checker.anomaly_to_string expected) message);
      check Alcotest.bool (name ^ ": counterexample rendered") true
        (counterexample <> "")
  | _, v ->
      Alcotest.failf "%s: expected %s violation, got %s" name
        (Checker.anomaly_to_string expected)
        (Checker.verdict_to_string v)

let expect_valid name h =
  match Checker.check_serializable_report h with
  | None, Checker.Valid _ -> ()
  | _, v -> Alcotest.failf "%s: expected valid, got %s" name (Checker.verdict_to_string v)

(* ------------------------------------------------------------------ *)
(* Serializable histories                                              *)

let test_serializable_chain () =
  let h = History.create () in
  txn h ~tid:1 ~at:0 ~ops:[ r "x" None; w "x" "x1" ] (committed 10);
  txn h ~tid:2 ~at:20 ~ops:[ r "x" (Some "x1"); w "x" "x2"; w "y" "y2" ] (committed 30);
  txn h ~tid:3 ~at:40 ~ops:[ r "x" (Some "x2"); r "y" (Some "y2") ] (committed 50);
  expect_valid "chain" h

let test_serializable_with_aborted_and_indeterminate () =
  let h = History.create () in
  txn h ~tid:1 ~at:0 ~ops:[ w "x" "x1" ] (committed 10);
  (* Aborted write whose value nobody observed: correctly ignored. *)
  txn h ~tid:2 ~at:5 ~ops:[ w "x" "dead" ] History.T_aborted;
  (* Unobserved indeterminate: may or may not have committed; the checker
     must not invent dependencies for it. *)
  txn h ~tid:3 ~at:8
    ~ops:[ w "x" "maybe" ]
    (History.T_indeterminate { commit_ts = Some (ts 15) });
  txn h ~tid:4 ~at:20 ~ops:[ r "x" (Some "x1") ] (committed 25);
  (* Observed indeterminate: the read of "y5" proves tid 5 committed, and
     its recorded would-be timestamp places it in the version order. *)
  txn h ~tid:5 ~at:28
    ~ops:[ w "y" "y5" ]
    (History.T_indeterminate { commit_ts = Some (ts 30) });
  txn h ~tid:6 ~at:40 ~ops:[ r "y" (Some "y5") ] (committed 45);
  expect_valid "aborted+indeterminate" h

let test_empty_history () = expect_valid "empty" (History.create ())

(* ------------------------------------------------------------------ *)
(* Anomaly fixtures                                                    *)

let test_g0_write_cycle () =
  (* T1 and T2 install conflicting writes at the same timestamp with
     incoherent per-key winners: later readers see T2's x but T1's y, so
     the two version orders disagree — a pure write cycle. *)
  let h = History.create () in
  txn h ~tid:1 ~at:0 ~ops:[ w "x" "x1"; w "y" "y1" ] (committed 10);
  txn h ~tid:2 ~at:0 ~ops:[ w "x" "x2"; w "y" "y2" ] (committed 10);
  txn h ~tid:3 ~at:20 ~ops:[ r "x" (Some "x2") ] (committed 20);
  txn h ~tid:4 ~at:20 ~ops:[ r "y" (Some "y1") ] (committed 21);
  expect_anomaly "G0" Checker.G0 h

let test_g1a_aborted_read () =
  let h = History.create () in
  txn h ~tid:1 ~at:0 ~ops:[ w "x" "dead" ] History.T_aborted;
  txn h ~tid:2 ~at:20 ~ops:[ r "x" (Some "dead") ] (committed 25);
  expect_anomaly "G1a" Checker.G1a h

let test_g1c_circular_information_flow () =
  (* Each transaction reads the other's write: information flowed in a
     circle (wr edges both ways), with no anti-dependency involved. *)
  let h = History.create () in
  txn h ~tid:1 ~at:0 ~ops:[ r "y" (Some "y2"); w "x" "x1" ] (committed 10);
  txn h ~tid:2 ~at:0 ~ops:[ r "x" (Some "x1"); w "y" "y2" ] (committed 5);
  expect_anomaly "G1c" Checker.G1c h

let test_g2_item_write_skew () =
  (* Classic write skew: each transaction reads the key the other writes,
     and neither write is observed by the other — both proceeded from the
     initial state. Only anti-dependencies close the cycle. *)
  let h = History.create () in
  txn h ~tid:1 ~at:0 ~ops:[ r "x" None; w "y" "y1" ] (committed 20);
  txn h ~tid:2 ~at:0 ~ops:[ r "y" None; w "x" "x2" ] (committed 10);
  expect_anomaly "G2-item" Checker.G2_item h

let test_lost_update () =
  (* Two read-modify-writes of x both proceeded from the initial version:
     the first committer's update is silently overwritten. *)
  let h = History.create () in
  txn h ~tid:1 ~at:0 ~ops:[ r "x" None; w "x" "x1" ] (committed 10);
  txn h ~tid:2 ~at:0 ~ops:[ r "x" None; w "x" "x2" ] (committed 20);
  expect_anomaly "lost update" Checker.Lost_update h

let test_minimal_witness_cycle () =
  (* The counterexample names the shortest cycle and renders each member. *)
  let h = History.create () in
  txn h ~tid:1 ~at:0 ~ops:[ r "x" None; w "x" "x1" ] (committed 10);
  txn h ~tid:2 ~at:0 ~ops:[ r "x" None; w "x" "x2" ] (committed 20);
  match Checker.check_serializable h with
  | Checker.Violation { counterexample; _ } ->
      check Alcotest.bool "shows the cycle" true (contains ~sub:"cycle:" counterexample);
      check Alcotest.bool "names both transactions" true
        (contains ~sub:"T1" counterexample && contains ~sub:"T2" counterexample);
      check Alcotest.bool "labels the edge kinds" true
        (contains ~sub:"--rw(" counterexample || contains ~sub:"--ww(" counterexample)
  | v -> Alcotest.failf "expected violation, got %s" (Checker.verdict_to_string v)

(* ------------------------------------------------------------------ *)
(* Soundness corner cases                                              *)

let test_duplicate_value_inconclusive () =
  let h = History.create () in
  txn h ~tid:1 ~at:0 ~ops:[ w "x" "same" ] (committed 10);
  txn h ~tid:2 ~at:20 ~ops:[ w "x" "same" ] (committed 30);
  match Checker.check_serializable_report h with
  | None, Checker.Inconclusive msg ->
      check Alcotest.bool "explains the broken assumption" true
        (contains ~sub:"unique-value" msg)
  | _, v -> Alcotest.failf "expected inconclusive, got %s" (Checker.verdict_to_string v)

let test_unknown_value_inconclusive () =
  let h = History.create () in
  txn h ~tid:1 ~at:0 ~ops:[ r "x" (Some "phantom") ] (committed 10);
  match Checker.check_serializable_report h with
  | None, Checker.Inconclusive _ -> ()
  | _, v -> Alcotest.failf "expected inconclusive, got %s" (Checker.verdict_to_string v)

(* ------------------------------------------------------------------ *)
(* Serialization round trip                                            *)

let roundtrip name h =
  let s = History.serialize h in
  match History.deserialize s with
  | Error msg -> Alcotest.failf "%s: deserialize failed: %s" name msg
  | Ok h' ->
      check Alcotest.string (name ^ ": identical reserialization") s
        (History.serialize h');
      check Alcotest.string
        (name ^ ": identical verdict")
        (Checker.verdict_to_string (Checker.check_serializable h))
        (Checker.verdict_to_string (Checker.check_serializable h'))

let test_roundtrip_txns () =
  let h = History.create () in
  txn h ~tid:1 ~at:0 ~ops:[ r "x" None; w "x" "x1" ] (committed 10);
  txn h ~tid:2 ~at:0 ~ops:[ r "x" None; w "x" "x2" ] (committed 20);
  txn h ~tid:3 ~at:5 ~ops:[ w "y" "quoted \"value\" with\nnewline" ] History.T_aborted;
  txn h ~tid:4 ~at:8 ~ops:[ w "z" "zz" ] (History.T_indeterminate { commit_ts = None });
  txn h ~tid:5 ~at:9 ~ops:[ w "w" "ww" ]
    (History.T_indeterminate { commit_ts = Some (Ts.make ~wall:30 ~logical:7) });
  roundtrip "txns" h

let test_roundtrip_entries () =
  let h = History.create () in
  let e = History.invoke h ~client:0 ~now:0 (History.Write { key = "k"; value = "v 1" }) in
  History.complete e ~now:10 History.Ok_write;
  let e = History.invoke h ~client:1 ~now:5 (History.Read { key = "k" }) in
  History.complete e ~now:15 (History.Ok_read (Some "v 1"));
  let e = History.invoke h ~client:2 ~now:7 (History.Read { key = "k2" }) in
  History.complete e ~now:17 (History.Ok_read None);
  let e =
    History.invoke h ~client:1 ~now:20
      (History.Transfer { src = "a"; dst = "b"; amount = 7 })
  in
  History.complete e ~now:25 (History.Info "rpc timeout");
  let e = History.invoke h ~client:1 ~now:30 History.Snapshot in
  History.complete e ~now:35 (History.Ok_snapshot [ ("a", 93); ("b", 107) ]);
  (* A still-pending entry must survive the round trip too. *)
  ignore (History.invoke h ~client:3 ~now:40 (History.Read { key = "k" }) : History.entry);
  let s = History.serialize h in
  match History.deserialize s with
  | Error msg -> Alcotest.failf "deserialize failed: %s" msg
  | Ok h' ->
      check Alcotest.string "identical reserialization" s (History.serialize h');
      check Alcotest.string "identical rendering" (History.to_string h)
        (History.to_string h')

let test_deserialize_rejects_garbage () =
  (match History.deserialize "not a history" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad header accepted");
  match History.deserialize "crdb-history v1\nentry nope" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated entry accepted"

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "serializable chain accepted" `Quick test_serializable_chain;
    Alcotest.test_case "serializable with aborted and indeterminate" `Quick
      test_serializable_with_aborted_and_indeterminate;
    Alcotest.test_case "empty history accepted" `Quick test_empty_history;
    Alcotest.test_case "G0 write cycle" `Quick test_g0_write_cycle;
    Alcotest.test_case "G1a aborted read" `Quick test_g1a_aborted_read;
    Alcotest.test_case "G1c circular information flow" `Quick
      test_g1c_circular_information_flow;
    Alcotest.test_case "G2-item write skew" `Quick test_g2_item_write_skew;
    Alcotest.test_case "lost update" `Quick test_lost_update;
    Alcotest.test_case "minimal witness cycle rendered" `Quick test_minimal_witness_cycle;
    Alcotest.test_case "duplicate value inconclusive" `Quick
      test_duplicate_value_inconclusive;
    Alcotest.test_case "unknown value inconclusive" `Quick test_unknown_value_inconclusive;
    Alcotest.test_case "round trip: transactions" `Quick test_roundtrip_txns;
    Alcotest.test_case "round trip: entries" `Quick test_roundtrip_entries;
    Alcotest.test_case "deserialize rejects garbage" `Quick test_deserialize_rejects_garbage;
  ]
