(* Tests for the workload generators and drivers: YCSB, TPC-C, movr. *)

module Crdb = Crdb_core.Crdb
module Value = Crdb.Value
module Schema = Crdb.Schema
module Ddl = Crdb.Ddl
module Engine = Crdb.Engine
module Hist = Crdb_stats.Hist
module Ycsb = Crdb_workload.Ycsb
module Tpcc = Crdb_workload.Tpcc
module Movr = Crdb_workload.Movr

let check = Alcotest.check
let regions3 = [ "us-east1"; "us-west1"; "europe-west2" ]

let ycsb_cluster variant =
  let t = Crdb.start ~regions:regions3 () in
  Crdb.exec t
    (Ddl.N_create_database
       { db = "ycsb"; primary = "us-east1"; regions = List.tl regions3 });
  Crdb.exec_all t (Ycsb.ddl variant ~db:"ycsb" ~regions:regions3);
  let db = Crdb.database t "ycsb" in
  Ycsb.load t db variant ~keyspace:300;
  (t, db)

let test_ycsb_load_homes_keys () =
  let _t, db = ycsb_cluster Ycsb.Rbr_default in
  check Alcotest.int "all keys loaded" 300 (Engine.row_count db Ycsb.table_name);
  (* Key i is homed in region (i mod 3). *)
  List.iteri
    (fun i region ->
      check
        Alcotest.(option string)
        (Printf.sprintf "key %d home" i)
        (Some region)
        (Engine.region_of_row db ~table:Ycsb.table_name [ Ycsb.key_of i ]))
    regions3

let test_ycsb_run_a () =
  let t, db = ycsb_cluster Ycsb.Rbr_default in
  let r =
    Ycsb.run t db ~clients_per_region:3 ~ops_per_client:30 ~workload:Ycsb.A
      ~keyspace:300 ()
  in
  check Alcotest.int "all ops accounted" 270 r.Ycsb.ops;
  check Alcotest.int "no errors" 0 r.Ycsb.errors;
  (* 100% locality: everything local and fast. *)
  check Alcotest.int "no remote reads" 0 (Hist.count r.Ycsb.read_remote);
  check Alcotest.bool "reads sampled" true (Hist.count r.Ycsb.read_local > 50);
  check Alcotest.bool "local reads fast" true
    (Hist.percentile r.Ycsb.read_local 50.0 < 3_000);
  check Alcotest.bool "local writes fast" true
    (Hist.percentile r.Ycsb.write_local 50.0 < 10_000)

let test_ycsb_run_d_inserts () =
  let t, db = ycsb_cluster Ycsb.Rbr_computed in
  let before = Engine.row_count db Ycsb.table_name in
  let r =
    Ycsb.run t db ~clients_per_region:3 ~ops_per_client:40 ~workload:Ycsb.D
      ~keyspace:300 ()
  in
  let inserted = Engine.row_count db Ycsb.table_name - before in
  check Alcotest.bool "inserted rows" true (inserted > 0);
  check Alcotest.int "insert count matches writes" inserted
    (Hist.count r.Ycsb.write_local + Hist.count r.Ycsb.write_remote);
  (* Computed-region inserts skip the uniqueness fan-out: local latency. *)
  check Alcotest.bool "computed inserts local" true
    (Hist.percentile r.Ycsb.write_local 90.0 < 10_000)

let test_ycsb_locality_split () =
  let t, db = ycsb_cluster Ycsb.Rbr_default in
  let r =
    Ycsb.run t db ~clients_per_region:3 ~ops_per_client:40
      ~distribution:`Uniform ~locality:0.5 ~workload:Ycsb.B ~keyspace:300 ()
  in
  let local = Hist.count r.Ycsb.read_local + Hist.count r.Ycsb.write_local in
  let remote = Hist.count r.Ycsb.read_remote + Hist.count r.Ycsb.write_remote in
  (* Roughly half the traffic should be remote draws. *)
  check Alcotest.bool
    (Printf.sprintf "50%% locality split (%d local / %d remote)" local remote)
    true
    (float_of_int remote /. float_of_int (local + remote) > 0.35
    && float_of_int remote /. float_of_int (local + remote) < 0.65);
  (* Remote consistent reads pay a WAN round trip; local ones do not. *)
  check Alcotest.bool "remote reads slower" true
    (Hist.percentile r.Ycsb.read_remote 50.0
    > 10 * Hist.percentile r.Ycsb.read_local 50.0)

let test_ycsb_hot_shift_determinism () =
  (* The moving hot spot is a pure function of simulated time, so two runs
     with the same seed are indistinguishable — and the workload still
     completes cleanly while the hot set drifts. *)
  let run_once () =
    let t, db = ycsb_cluster Ycsb.Rbr_default in
    let r =
      Ycsb.run t db ~clients_per_region:3 ~ops_per_client:30
        ~hot_shift_every:2_000_000 ~workload:Ycsb.A ~keyspace:300 ()
    in
    ( r.Ycsb.ops,
      r.Ycsb.errors,
      r.Ycsb.elapsed,
      Hist.count (Ycsb.reads r),
      Hist.percentile (Ycsb.reads r) 50.0,
      Hist.count (Ycsb.writes r),
      Hist.percentile (Ycsb.writes r) 99.0 )
  in
  let ((ops, errors, _, _, _, _, _) as a) = run_once () in
  let b = run_once () in
  check Alcotest.int "all ops accounted" 270 ops;
  check Alcotest.int "no errors while the hot set drifts" 0 errors;
  check Alcotest.bool "identical results across same-seed runs" true (a = b)

let test_tpcc_smoke () =
  let regions = regions3 in
  let t = Crdb.start ~regions () in
  Crdb.exec_all t (Tpcc.ddl ~db:"tpcc" ~regions ~warehouses_per_region:1);
  let db = Crdb.database t "tpcc" in
  Tpcc.load t db ~warehouses_per_region:1 ~districts_per_warehouse:3
    ~customers_per_district:5 ~items:30 ();
  check Alcotest.int "items" 30 (Engine.row_count db "item");
  check Alcotest.int "warehouses" 3 (Engine.row_count db "warehouse");
  check Alcotest.int "stock" (3 * 30) (Engine.row_count db "stock");
  let r =
    Tpcc.run t db ~warehouses_per_region:1 ~terminals_per_warehouse:4
      ~duration:20_000_000 ~districts_per_warehouse:3 ~customers_per_district:5
      ~items:30 ()
  in
  check Alcotest.int "no errors" 0 r.Tpcc.errors;
  check Alcotest.bool "new orders committed" true (r.Tpcc.committed_new_orders > 10);
  check Alcotest.bool "efficiency high" true (Tpcc.efficiency r ~warehouses:3 > 0.9);
  (* Orders actually landed: order lines exist and districts advanced. *)
  check Alcotest.bool "order lines written" true (Engine.row_count db "orderline" > 20);
  check Alcotest.bool "orders written" true
    (Engine.row_count db "orders" >= r.Tpcc.committed_new_orders)

let test_tpcc_items_global () =
  let regions = regions3 in
  let t = Crdb.start ~regions () in
  Crdb.exec_all t (Tpcc.ddl ~db:"tpcc" ~regions ~warehouses_per_region:1);
  let db = Crdb.database t "tpcc" in
  let schema = Engine.table_schema db "item" in
  check Alcotest.bool "item is GLOBAL" true
    (schema.Schema.tbl_locality = Schema.Global);
  List.iter
    (fun name ->
      let s = Engine.table_schema db name in
      check Alcotest.bool (name ^ " is RBR") true
        (s.Schema.tbl_locality = Schema.Regional_by_row))
    [ "warehouse"; "district"; "customer"; "orders"; "orderline"; "stock" ]

let test_tpcc_warehouse_regions () =
  let regions = regions3 in
  let t = Crdb.start ~regions () in
  Crdb.exec_all t (Tpcc.ddl ~db:"tpcc" ~regions ~warehouses_per_region:2);
  let db = Crdb.database t "tpcc" in
  Tpcc.load t db ~warehouses_per_region:2 ~districts_per_warehouse:2
    ~customers_per_district:2 ~items:10 ();
  (* Warehouses 0-1 in region 0, 2-3 in region 1, 4-5 in region 2. *)
  check Alcotest.(option string) "wh0" (Some "us-east1")
    (Engine.region_of_row db ~table:"warehouse" [ Value.V_int 0 ]);
  check Alcotest.(option string) "wh3" (Some "us-west1")
    (Engine.region_of_row db ~table:"warehouse" [ Value.V_int 3 ]);
  check Alcotest.(option string) "wh5" (Some "europe-west2")
    (Engine.region_of_row db ~table:"warehouse" [ Value.V_int 5 ])

let test_movr_schema_and_load () =
  let t = Crdb.start ~regions:regions3 () in
  Crdb.exec_all t (Movr.ddl ~db:"movr" ~regions:regions3 Movr.New_schema);
  let db = Crdb.database t "movr" in
  check Alcotest.int "6 tables" 6 (List.length (Engine.table_names db));
  Movr.load t db ~users_per_city:5 ~vehicles_per_city:2;
  check Alcotest.int "users loaded" 45 (Engine.row_count db "users");
  check Alcotest.int "promos loaded" 10 (Engine.row_count db "promo_codes");
  (* Users of amsterdam live in europe. *)
  let gw = Crdb.gateway t ~region:"europe-west2" () in
  Crdb.run t (fun () ->
      match
        Engine.select_by_unique db ~gateway:gw ~table:"users" ~col:"email"
          (Value.V_string "user6.0@movr.com")
      with
      | Ok (Some row) ->
          check Alcotest.bool "city is amsterdam" true
            (List.assoc "city" row = Value.V_string "amsterdam")
      | Ok None -> Alcotest.fail "user not found"
      | Error e -> Alcotest.failf "lookup failed: %a" Engine.pp_exec_error e)

let test_table2_statement_counts () =
  (* The headline Table 2 "after" numbers reproduce exactly. *)
  check Alcotest.int "movr new schema = 12" 12
    (Ddl.count (Movr.ddl ~db:"movr" ~regions:regions3 Movr.New_schema));
  check Alcotest.int "movr convert = 14" 14
    (Ddl.count (Movr.ddl ~db:"movr" ~regions:regions3 Movr.Convert_schema));
  check Alcotest.int "movr add region = 1" 1
    (Ddl.count (Movr.ddl ~db:"movr" ~regions:regions3 (Movr.Add_region "x")));
  check Alcotest.int "tpcc new schema = 18" 18
    (Ddl.count (Tpcc.ddl ~db:"tpcc" ~regions:regions3 ~warehouses_per_region:10));
  check Alcotest.int "ycsb new table = 1" 1
    (Ddl.count (Ycsb.ddl Ycsb.Rbr_default ~db:"ycsb" ~regions:regions3));
  (* Legacy recipes are several times larger. *)
  check Alcotest.bool "legacy movr larger" true
    (Ddl.count (Movr.legacy_ddl ~db:"movr" ~regions:regions3 Movr.New_schema) > 24)

let test_movr_executable_ddl () =
  (* The full movr conversion flow executes: single-region schema, then the
     2-statement region addition plus localities. *)
  let t = Crdb.start ~regions:regions3 () in
  Crdb.exec t
    (Ddl.N_create_database { db = "movr"; primary = "us-east1"; regions = [] });
  (* Single-region tables first (all default locality). *)
  List.iter
    (fun (table : Schema.table) ->
      Crdb.exec t
        (Ddl.N_create_table
           {
             db = "movr";
             table =
               { table with Schema.tbl_locality = Schema.Regional_by_table None };
           }))
    (Movr.tables ~regions:regions3);
  let db = Crdb.database t "movr" in
  Movr.load t db ~users_per_city:3 ~vehicles_per_city:1;
  let rows_before = Engine.row_count db "users" in
  (* Convert to multi-region. *)
  Crdb.exec_all t (Movr.ddl ~db:"movr" ~regions:regions3 Movr.Convert_schema);
  check Alcotest.(list string) "regions added" regions3 (Engine.regions db);
  check Alcotest.int "rows survive conversion" rows_before
    (Engine.row_count db "users");
  check Alcotest.int "users now partitioned" 3
    (List.length (Engine.partition_ranges db "users"))

let suite =
  [
    Alcotest.test_case "ycsb load homes keys" `Quick test_ycsb_load_homes_keys;
    Alcotest.test_case "ycsb workload A" `Quick test_ycsb_run_a;
    Alcotest.test_case "ycsb workload D inserts" `Quick test_ycsb_run_d_inserts;
    Alcotest.test_case "ycsb locality split" `Quick test_ycsb_locality_split;
    Alcotest.test_case "ycsb hot shift determinism" `Quick
      test_ycsb_hot_shift_determinism;
    Alcotest.test_case "tpcc smoke" `Quick test_tpcc_smoke;
    Alcotest.test_case "tpcc items global" `Quick test_tpcc_items_global;
    Alcotest.test_case "tpcc warehouse regions" `Quick test_tpcc_warehouse_regions;
    Alcotest.test_case "movr schema and load" `Quick test_movr_schema_and_load;
    Alcotest.test_case "table2 statement counts" `Quick test_table2_statement_counts;
    Alcotest.test_case "movr executable conversion" `Quick test_movr_executable_ddl;
  ]
