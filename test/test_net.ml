(* Tests for topology, latency profiles and the message transport. *)

module Sim = Crdb_sim.Sim
module Proc = Crdb_sim.Proc
module Topology = Crdb_net.Topology
module Latency = Crdb_net.Latency
module Transport = Crdb_net.Transport

let check = Alcotest.check

let test_topology () =
  let t =
    Topology.symmetric
      ~regions:[ "us-east1"; "us-west1"; "europe-west2" ]
      ~nodes_per_region:3
  in
  check Alcotest.int "nodes" 9 (Topology.num_nodes t);
  check
    Alcotest.(list string)
    "regions"
    [ "us-east1"; "us-west1"; "europe-west2" ]
    (Topology.regions t);
  check Alcotest.int "per region" 3
    (List.length (Topology.nodes_in_region t "us-west1"));
  check
    Alcotest.(list string)
    "zones" [ "us-east1-a"; "us-east1-b"; "us-east1-c" ]
    (Topology.zones_in_region t "us-east1");
  check Alcotest.string "region_of" "us-west1" (Topology.region_of t 4);
  Alcotest.check_raises "unknown node"
    (Invalid_argument "Topology.node: unknown node 99") (fun () ->
      ignore (Topology.node t 99))

let test_table1_matrix () =
  let l = Latency.table1 in
  check Alcotest.int "UE-UW" 63_000 (Latency.rtt l "us-east1" "us-west1");
  check Alcotest.int "symmetric" 63_000 (Latency.rtt l "us-west1" "us-east1");
  check Alcotest.int "EW-AS" 274_000
    (Latency.rtt l "europe-west2" "australia-southeast1");
  check Alcotest.int "intra-region" 600 (Latency.rtt l "us-east1" "us-east1");
  check Alcotest.int "one way" 31_500 (Latency.one_way l "us-east1" "us-west1")

let test_gcp_profile_sane () =
  let l = Latency.gcp in
  check Alcotest.int "26+ regions" 27 (List.length Latency.gcp_region_names);
  List.iter
    (fun r1 ->
      List.iter
        (fun r2 ->
          if not (String.equal r1 r2) then begin
            let rtt = Latency.rtt l r1 r2 in
            check Alcotest.bool
              (Printf.sprintf "%s-%s in [5ms, 350ms]" r1 r2)
              true
              (rtt >= 5_000 && rtt <= 350_000);
            check Alcotest.int "symmetric" rtt (Latency.rtt l r2 r1)
          end)
        Latency.gcp_region_names)
    Latency.gcp_region_names;
  (* Continental sanity: crossing the Pacific beats staying in the US. *)
  check Alcotest.bool "us-us < us-asia" true
    (Latency.rtt l "us-east1" "us-west1"
    < Latency.rtt l "us-east1" "asia-northeast1")

let test_proximity_sort () =
  let l = Latency.table1 in
  let sorted = Latency.sort_by_proximity l "us-east1" Latency.table1_regions in
  check
    Alcotest.(list string)
    "order"
    [
      "us-east1";
      "us-west1";
      "europe-west2";
      "asia-northeast1";
      "australia-southeast1";
    ]
    sorted

let make_transport ?(jitter = 0.0) () =
  let sim = Sim.create () in
  let topology =
    Topology.symmetric ~regions:Latency.table1_regions ~nodes_per_region:3
  in
  let net =
    Transport.create ~jitter ~sim ~topology ~latency:Latency.table1 ()
  in
  (sim, net)

let test_send_delay () =
  let sim, net = make_transport () in
  (* Node 0 is us-east1-a; node 3 is us-west1-a. *)
  let arrival = ref (-1) in
  Transport.send net ~src:0 ~dst:3 (fun () -> arrival := Sim.now sim);
  Sim.run sim;
  check Alcotest.int "cross-region one-way" 31_500 !arrival;
  let arrival2 = ref (-1) in
  Transport.send net ~src:0 ~dst:1 (fun () -> arrival2 := Sim.now sim);
  Sim.run sim;
  check Alcotest.int "cross-zone one-way" (31_500 + 300) !arrival2

let test_rpc_roundtrip () =
  let sim, net = make_transport () in
  let elapsed =
    Proc.run_main sim (fun () ->
        let start = Sim.now sim in
        let reply =
          Transport.rpc net ~src:0 ~dst:3 (fun out -> Crdb_sim.Ivar.fill out "pong")
        in
        let v = Proc.await reply in
        check Alcotest.string "payload" "pong" v;
        Sim.now sim - start)
  in
  check Alcotest.int "full RTT" 63_000 elapsed

let test_kill_drops () =
  let sim, net = make_transport () in
  Transport.kill_node net 3;
  check Alcotest.bool "dead" false (Transport.is_alive net 3);
  check Alcotest.(option int) "dead_since" (Some 0) (Transport.dead_since net 3);
  let r =
    Proc.run_main sim (fun () ->
        let reply =
          Transport.rpc net ~src:0 ~dst:3 (fun out -> Crdb_sim.Ivar.fill out ())
        in
        Proc.await_timeout sim reply ~timeout:1_000_000)
  in
  check Alcotest.(option unit) "no reply" None r;
  Transport.revive_node net 3;
  check Alcotest.bool "revived" true (Transport.is_alive net 3)

let test_kill_in_flight () =
  let sim, net = make_transport () in
  let delivered = ref false in
  Transport.send net ~src:0 ~dst:3 (fun () -> delivered := true);
  (* Kill the destination while the message is in flight. *)
  Sim.schedule sim ~after:1_000 (fun () -> Transport.kill_node net 3);
  Sim.run sim;
  check Alcotest.bool "dropped at delivery" false !delivered

let test_partition () =
  let sim, net = make_transport () in
  Transport.partition_regions net "us-east1" "us-west1";
  let delivered = ref false in
  Transport.send net ~src:0 ~dst:3 (fun () -> delivered := true);
  Sim.run sim;
  check Alcotest.bool "partitioned" false !delivered;
  Transport.heal_partitions net;
  Transport.send net ~src:0 ~dst:3 (fun () -> delivered := true);
  Sim.run sim;
  check Alcotest.bool "healed" true !delivered

let test_heal_one_partition () =
  let sim, net = make_transport () in
  (* Insert one pair twice (dedupe) plus a second distinct pair. *)
  Transport.partition_regions net "us-east1" "us-west1";
  Transport.partition_regions net "us-west1" "us-east1";
  Transport.partition_regions net "us-east1" "europe-west2";
  (* Healing the deduped pair must clear it entirely... *)
  Transport.heal_partition net "us-west1" "us-east1";
  let delivered = ref false in
  Transport.send net ~src:0 ~dst:3 (fun () -> delivered := true);
  Sim.run sim;
  check Alcotest.bool "pair healed despite double insert" true !delivered;
  (* ... while leaving the other pair in force. *)
  let delivered_eu = ref false in
  Transport.send net ~src:0 ~dst:6 (fun () -> delivered_eu := true);
  Sim.run sim;
  check Alcotest.bool "other pair still partitioned" false !delivered_eu;
  Transport.heal_partitions net;
  Transport.send net ~src:0 ~dst:6 (fun () -> delivered_eu := true);
  Sim.run sim;
  check Alcotest.bool "heal-all clears the rest" true !delivered_eu

let test_kill_revive_zone () =
  let _sim, net = make_transport () in
  Transport.kill_zone net ~region:"us-east1" ~zone:"us-east1-a";
  check Alcotest.bool "zone node dead" false (Transport.is_alive net 0);
  check Alcotest.bool "sibling zone alive" true (Transport.is_alive net 1);
  Transport.revive_zone net ~region:"us-east1" ~zone:"us-east1-a";
  check Alcotest.bool "zone node back" true (Transport.is_alive net 0)

let test_kill_region () =
  let _sim, net = make_transport () in
  Transport.kill_region net "europe-west2";
  let dead =
    List.filter
      (fun n -> not (Transport.is_alive net n.Topology.id))
      (Array.to_list (Topology.nodes (Transport.topology net)))
  in
  check Alcotest.int "3 dead" 3 (List.length dead);
  List.iter
    (fun n -> check Alcotest.string "in region" "europe-west2" n.Topology.region)
    dead

let test_jitter_bounded () =
  let sim, net = make_transport ~jitter:0.1 () in
  for _ = 1 to 20 do
    let arrival = ref 0 in
    let start = Sim.now sim in
    Transport.send net ~src:0 ~dst:3 (fun () -> arrival := Sim.now sim - start);
    Sim.run sim;
    check Alcotest.bool "within jitter bound" true
      (!arrival >= 31_500 && !arrival < 34_650 + 1)
  done

let suite =
  [
    Alcotest.test_case "topology" `Quick test_topology;
    Alcotest.test_case "table1 matrix" `Quick test_table1_matrix;
    Alcotest.test_case "gcp profile" `Quick test_gcp_profile_sane;
    Alcotest.test_case "proximity sort" `Quick test_proximity_sort;
    Alcotest.test_case "send delay" `Quick test_send_delay;
    Alcotest.test_case "rpc roundtrip" `Quick test_rpc_roundtrip;
    Alcotest.test_case "kill drops" `Quick test_kill_drops;
    Alcotest.test_case "kill in flight" `Quick test_kill_in_flight;
    Alcotest.test_case "partition" `Quick test_partition;
    Alcotest.test_case "heal one partition" `Quick test_heal_one_partition;
    Alcotest.test_case "kill/revive zone" `Quick test_kill_revive_zone;
    Alcotest.test_case "kill region" `Quick test_kill_region;
    Alcotest.test_case "jitter bounded" `Quick test_jitter_bounded;
  ]
