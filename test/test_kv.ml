(* Tests for the KV layer: zone config derivation, the allocator, and full
   cluster behaviour (replication, leases, closed timestamps, failures). *)

module Sim = Crdb_sim.Sim
module Topology = Crdb_net.Topology
module Latency = Crdb_net.Latency
module Transport = Crdb_net.Transport
module Ts = Crdb_hlc.Timestamp
module Raft = Crdb_raft.Raft
module Zoneconfig = Crdb_kv.Zoneconfig
module Allocator = Crdb_kv.Allocator
module Cluster = Crdb_kv.Cluster

let check = Alcotest.check
let regions5 = Latency.table1_regions
let home = "us-east1"

(* ------------------------------------------------------------------ *)
(* Zone configs (§3.3)                                                 *)

let test_zone_survival_config () =
  let z =
    Zoneconfig.derive ~regions:regions5 ~home ~survival:Zoneconfig.Zone
      ~placement:Zoneconfig.Default
  in
  check Alcotest.int "3 voters" 3 z.Zoneconfig.num_voters;
  check Alcotest.int "3 + (N-1) replicas" 7 z.Zoneconfig.num_replicas;
  check Alcotest.int "non-voter constraint per other region" 4
    (List.length z.Zoneconfig.constraints);
  check
    Alcotest.(list (pair string int))
    "voters in home"
    [ (home, 3) ]
    z.Zoneconfig.voter_constraints;
  check Alcotest.(list string) "lease pref" [ home ] z.Zoneconfig.lease_preferences

let test_region_survival_config () =
  let z =
    Zoneconfig.derive ~regions:regions5 ~home ~survival:Zoneconfig.Region
      ~placement:Zoneconfig.Default
  in
  check Alcotest.int "5 voters" 5 z.Zoneconfig.num_voters;
  check Alcotest.int "max(2+(N-1), 5)" 6 z.Zoneconfig.num_replicas;
  check
    Alcotest.(list (pair string int))
    "2 voters in home"
    [ (home, 2) ]
    z.Zoneconfig.voter_constraints;
  (* 3-region minimum edge case. *)
  let z3 =
    Zoneconfig.derive
      ~regions:[ "a"; "b"; "c" ]
      ~home:"a" ~survival:Zoneconfig.Region ~placement:Zoneconfig.Default
  in
  check Alcotest.int "3 regions: 5 replicas" 5 z3.Zoneconfig.num_replicas

let test_restricted_config () =
  let z =
    Zoneconfig.derive ~regions:regions5 ~home ~survival:Zoneconfig.Zone
      ~placement:Zoneconfig.Restricted
  in
  check Alcotest.int "no non-voters" 3 z.Zoneconfig.num_replicas;
  check Alcotest.int "no constraints outside home" 0
    (List.length z.Zoneconfig.constraints)

let test_invalid_configs () =
  Alcotest.check_raises "region survival needs 3 regions"
    (Invalid_argument
       "Zoneconfig.derive: REGION survivability requires at least 3 regions")
    (fun () ->
      ignore
        (Zoneconfig.derive ~regions:[ "a"; "b" ] ~home:"a"
           ~survival:Zoneconfig.Region ~placement:Zoneconfig.Default));
  Alcotest.check_raises "restricted + region survival"
    (Invalid_argument
       "Zoneconfig.derive: PLACEMENT RESTRICTED cannot be combined with REGION \
        survivability") (fun () ->
      ignore
        (Zoneconfig.derive ~regions:regions5 ~home ~survival:Zoneconfig.Region
           ~placement:Zoneconfig.Restricted))

(* ------------------------------------------------------------------ *)
(* Allocator                                                           *)

let topo5 = Topology.symmetric ~regions:regions5 ~nodes_per_region:3

let test_allocator_zone_survival () =
  let zone =
    Zoneconfig.derive ~regions:regions5 ~home ~survival:Zoneconfig.Zone
      ~placement:Zoneconfig.Default
  in
  let placement =
    Allocator.place ~topology:topo5 ~latency:Latency.table1
      ~load:(fun _ -> 0)
      ~zone
  in
  check Alcotest.bool "satisfies" true
    (Allocator.satisfies ~topology:topo5 ~zone placement);
  let voters = List.filter (fun (_, k) -> k = Raft.Voter) placement in
  let voter_zones =
    List.map (fun (n, _) -> Topology.zone_of topo5 n) voters
    |> List.sort_uniq String.compare
  in
  check Alcotest.int "voters across 3 distinct zones" 3 (List.length voter_zones);
  List.iter
    (fun (n, _) -> check Alcotest.string "voter in home" home (Topology.region_of topo5 n))
    voters;
  let learner_regions =
    List.filter_map
      (fun (n, k) ->
        match k with Raft.Learner -> Some (Topology.region_of topo5 n) | Raft.Voter -> None)
      placement
    |> List.sort_uniq String.compare
  in
  check Alcotest.int "one non-voter per other region" 4 (List.length learner_regions);
  check Alcotest.bool "home has no learner" false (List.mem home learner_regions);
  match
    Allocator.preferred_leaseholder ~topology:topo5 ~live:(fun _ -> true) ~zone
      placement
  with
  | Some n -> check Alcotest.string "lease in home" home (Topology.region_of topo5 n)
  | None -> Alcotest.fail "no preferred leaseholder"

let test_allocator_region_survival () =
  let zone =
    Zoneconfig.derive ~regions:regions5 ~home ~survival:Zoneconfig.Region
      ~placement:Zoneconfig.Default
  in
  let placement =
    Allocator.place ~topology:topo5 ~latency:Latency.table1
      ~load:(fun _ -> 0)
      ~zone
  in
  check Alcotest.bool "satisfies" true
    (Allocator.satisfies ~topology:topo5 ~zone placement);
  let voters = List.filter (fun (_, k) -> k = Raft.Voter) placement in
  let home_voters =
    List.filter (fun (n, _) -> Topology.region_of topo5 n = home) voters
  in
  check Alcotest.int "2 voters in home" 2 (List.length home_voters);
  (* The 3 unpinned voters should go to the regions nearest to home. *)
  let other_voter_regions =
    List.filter_map
      (fun (n, _) ->
        let r = Topology.region_of topo5 n in
        if String.equal r home then None else Some r)
      voters
    |> List.sort_uniq String.compare
  in
  check Alcotest.bool "nearest region us-west1 holds a voter" true
    (List.mem "us-west1" other_voter_regions);
  (* Every region holds at least one replica (stale reads everywhere). *)
  let all_regions =
    List.map (fun (n, _) -> Topology.region_of topo5 n) placement
    |> List.sort_uniq String.compare
  in
  check Alcotest.int "replica in every region" 5 (List.length all_regions)

let test_allocator_balances_load () =
  let counts = Hashtbl.create 16 in
  let load n = match Hashtbl.find_opt counts n with Some c -> c | None -> 0 in
  for i = 1 to 15 do
    (* Homes rotate across regions, as REGIONAL BY ROW partitions do. *)
    let zone =
      Zoneconfig.derive ~regions:regions5
        ~home:(List.nth regions5 (i mod 5))
        ~survival:Zoneconfig.Zone ~placement:Zoneconfig.Default
    in
    let placement =
      Allocator.place ~topology:topo5 ~latency:Latency.table1 ~load ~zone
    in
    List.iter
      (fun (n, _) -> Hashtbl.replace counts n (load n + 1))
      placement
  done;
  (* 15 ranges x 7 replicas over 15 nodes: perfectly balanced = 7 each. *)
  Array.iter
    (fun node ->
      let c = load node.Topology.id in
      check Alcotest.bool "load balanced" true (c >= 5 && c <= 9))
    (Topology.nodes topo5)

let test_allocator_unsatisfiable () =
  let zone =
    {
      Zoneconfig.num_voters = 4;
      num_replicas = 4;
      constraints = [];
      voter_constraints = [ (home, 4) ];
      lease_preferences = [ home ];
    }
  in
  Alcotest.check_raises "too many voters for region"
    (Failure "Allocator: not enough nodes to satisfy configuration") (fun () ->
      ignore
        (Allocator.place ~topology:topo5 ~latency:Latency.table1
           ~load:(fun _ -> 0)
           ~zone))

(* ------------------------------------------------------------------ *)
(* Cluster                                                             *)

let zone_config ?(survival = Zoneconfig.Zone) ?(placement = Zoneconfig.Default)
    ?(home = home) () =
  Zoneconfig.derive ~regions:regions5 ~home ~survival ~placement

let make_cluster ?config () =
  let cl =
    Cluster.create ?config ~topology:topo5 ~latency:Latency.table1 ()
  in
  cl

let node_in cl region i =
  (List.nth (Topology.nodes_in_region (Cluster.topology cl) region) i).Topology.id

(* Write then commit a single key as one mini transaction. *)
let put cl ~gateway ~txn key value =
  let ts = Cluster.now_ts cl gateway in
  match Cluster.write cl ~gateway ~txn ~key ~value:(Some value) ~ts () with
  | Cluster.Write_wounded e | Cluster.Write_err e ->
      Alcotest.failf "write failed: %s" e
  | Cluster.Write_ok commit_ts ->
      Cluster.resolve cl ~gateway ~txn ~commit:(Some commit_ts) ~keys:[ key ]
        ~sync_all:true ();
      commit_ts

let get cl ~gateway ?txn key =
  (* Minimal read loop: ratchet the timestamp on uncertainty like a real
     transaction would (the fixed upper bound never changes, §6.1). *)
  let ts = Cluster.now_ts cl gateway in
  let max_ts = Ts.add_wall ts (Cluster.config cl).Cluster.max_offset in
  let rec go ts attempts =
    match Cluster.read cl ~inline_bump:true ~gateway ~txn ~key ~ts ~max_ts () with
    | Cluster.Read_value { value; _ } -> value
    | Cluster.Read_uncertain { value_ts } when attempts < 10 ->
        go value_ts (attempts + 1)
    | Cluster.Read_uncertain _ -> Alcotest.fail "uncertainty loop"
    | Cluster.Read_redirect -> Alcotest.fail "unexpected redirect"
    | Cluster.Read_wounded e | Cluster.Read_err e ->
        Alcotest.failf "read error: %s" e
  in
  go ts 0

let test_cluster_basic_write_read () =
  let cl = make_cluster () in
  let rid =
    Cluster.add_range cl ~span:("a", "z") ~zone:(zone_config ())
      ~policy:(Cluster.Lag 3_000_000)
  in
  Cluster.settle cl;
  (match Cluster.leaseholder_region cl rid with
  | Some r -> check Alcotest.string "leaseholder in home" home r
  | None -> Alcotest.fail "no leaseholder");
  let gateway = node_in cl home 0 in
  Cluster.run cl (fun () ->
      let _ = put cl ~gateway ~txn:1 "k1" "v1" in
      check Alcotest.(option string) "read back" (Some "v1") (get cl ~gateway "k1");
      check Alcotest.(option string) "missing key" None (get cl ~gateway "nope"))

let test_cluster_local_latency () =
  let cl = make_cluster () in
  ignore
    (Cluster.add_range cl ~span:("a", "z") ~zone:(zone_config ())
       ~policy:(Cluster.Lag 3_000_000));
  Cluster.settle cl;
  let sim = Cluster.sim cl in
  let local_gw = node_in cl home 0 in
  let remote_gw = node_in cl "australia-southeast1" 0 in
  Cluster.run cl (fun () ->
      let t0 = Sim.now sim in
      ignore (put cl ~gateway:local_gw ~txn:1 "k" "v");
      let local_elapsed = Sim.now sim - t0 in
      check Alcotest.bool
        (Printf.sprintf "local write < 10ms (was %dus)" local_elapsed)
        true (local_elapsed < 10_000);
      let t1 = Sim.now sim in
      let _ = get cl ~gateway:remote_gw "k" in
      let remote_elapsed = Sim.now sim - t1 in
      (* Remote consistent read ~ 1 RTT to the leaseholder (198ms). *)
      check Alcotest.bool
        (Printf.sprintf "remote read ~RTT (was %dus)" remote_elapsed)
        true
        (remote_elapsed > 180_000 && remote_elapsed < 260_000))

let test_follower_stale_read () =
  let cl = make_cluster () in
  ignore
    (Cluster.add_range cl ~span:("a", "z") ~zone:(zone_config ())
       ~policy:(Cluster.Lag 3_000_000));
  Cluster.settle cl;
  let gw = node_in cl home 0 in
  let remote = node_in cl "asia-northeast1" 1 in
  Cluster.run cl (fun () ->
      ignore (put cl ~gateway:gw ~txn:1 "k" "v");
      (* Wait out the close lag so the write's timestamp is closed. *)
      Crdb_sim.Proc.sleep (Cluster.sim cl) 4_000_000;
      let stale_ts = Ts.of_wall (Sim.now (Cluster.sim cl) - 3_500_000) in
      let t0 = Sim.now (Cluster.sim cl) in
      (match
         Cluster.read_follower cl ~at:remote ~txn:None ~key:"k" ~ts:stale_ts
           ~max_ts:stale_ts ()
       with
      | Cluster.Read_value { value; _ } ->
          check Alcotest.(option string) "stale value visible" (Some "v") value
      | Cluster.Read_uncertain _ | Cluster.Read_redirect
      | Cluster.Read_wounded _ | Cluster.Read_err _ ->
          Alcotest.fail "stale read not served");
      let elapsed = Sim.now (Cluster.sim cl) - t0 in
      check Alcotest.bool
        (Printf.sprintf "follower read local <3ms (was %dus)" elapsed)
        true (elapsed < 3_000);
      (* A present-time read is NOT closed on a Lag range: redirect. *)
      let now = Cluster.now_ts cl remote in
      match
        Cluster.read_follower cl ~at:remote ~txn:None ~key:"k" ~ts:now
          ~max_ts:now ()
      with
      | Cluster.Read_redirect -> ()
      | Cluster.Read_value _ | Cluster.Read_uncertain _
      | Cluster.Read_wounded _ | Cluster.Read_err _ ->
          Alcotest.fail "fresh read should redirect on Lag range")

let test_global_range_future_writes () =
  let cl = make_cluster () in
  let rid =
    Cluster.add_range cl ~span:("a", "z") ~zone:(zone_config ())
      ~policy:Cluster.Lead
  in
  Cluster.settle cl;
  let gw = node_in cl home 0 in
  let remote = node_in cl "europe-west2" 2 in
  let lead = Cluster.closed_lead_duration cl rid in
  check Alcotest.bool "lead > max_offset" true
    (lead > (Cluster.config cl).Cluster.max_offset);
  Cluster.run cl (fun () ->
      let before = Sim.now (Cluster.sim cl) in
      let commit_ts = put cl ~gateway:gw ~txn:1 "k" "v" in
      (* The write landed in the future. *)
      check Alcotest.bool "future timestamp" true
        (Ts.wall commit_ts > before + (lead / 2));
      (* After the lead passes, any replica serves a present-time read
         locally. *)
      Crdb_sim.Proc.sleep (Cluster.sim cl) (lead + 200_000);
      let ts = Cluster.now_ts cl remote in
      let max_ts = Ts.add_wall ts (Cluster.config cl).Cluster.max_offset in
      let t0 = Sim.now (Cluster.sim cl) in
      (match
         Cluster.read_follower cl ~at:remote ~txn:None ~key:"k" ~ts ~max_ts ()
       with
      | Cluster.Read_value { value; _ } ->
          check Alcotest.(option string) "present-time local read" (Some "v") value
      | Cluster.Read_uncertain _ -> Alcotest.fail "uncertain"
      | Cluster.Read_redirect -> Alcotest.fail "redirect"
      | Cluster.Read_wounded e | Cluster.Read_err e ->
          Alcotest.failf "err %s" e);
      let elapsed = Sim.now (Cluster.sim cl) - t0 in
      check Alcotest.bool
        (Printf.sprintf "global read local <3ms (was %dus)" elapsed)
        true (elapsed < 3_000))

let test_global_read_uncertainty () =
  let cl = make_cluster () in
  ignore
    (Cluster.add_range cl ~span:("a", "z") ~zone:(zone_config ())
       ~policy:Cluster.Lead);
  Cluster.settle cl;
  let gw = node_in cl home 0 in
  let remote = node_in cl "us-west1" 0 in
  Cluster.run cl (fun () ->
      let offset = (Cluster.config cl).Cluster.max_offset in
      let commit_ts = put cl ~gateway:gw ~txn:1 "k" "v" in
      (* Wait until present time sits just below the write's future
         timestamp: the write then falls inside the reader's uncertainty
         window and must force a restart (Fig. 2, read 4). *)
      let target = Ts.wall commit_ts - (offset / 2) in
      Crdb_sim.Proc.sleep (Cluster.sim cl) (target - Sim.now (Cluster.sim cl));
      let read_ts = Ts.of_wall (Sim.now (Cluster.sim cl)) in
      let max_ts = Ts.add_wall read_ts offset in
      match
        Cluster.read_follower cl ~at:remote ~txn:None ~key:"k" ~ts:read_ts
          ~max_ts ()
      with
      | Cluster.Read_uncertain { value_ts } ->
          check Alcotest.bool "uncertain at write ts" true
            (Ts.equal value_ts commit_ts)
      | Cluster.Read_value _ | Cluster.Read_redirect
      | Cluster.Read_wounded _ | Cluster.Read_err _ ->
          Alcotest.fail "expected uncertainty restart")

let test_tscache_pushes_writer () =
  let cl = make_cluster () in
  ignore
    (Cluster.add_range cl ~span:("a", "z") ~zone:(zone_config ())
       ~policy:(Cluster.Lag 3_000_000));
  Cluster.settle cl;
  let gw = node_in cl home 0 in
  Cluster.run cl (fun () ->
      ignore (put cl ~gateway:gw ~txn:1 "k" "v1");
      (* Read at a deliberately future timestamp. *)
      let read_ts = Ts.add_wall (Cluster.now_ts cl gw) 1_000_000 in
      (match Cluster.read cl ~gateway:gw ~txn:None ~key:"k" ~ts:read_ts ~max_ts:read_ts () with
      | Cluster.Read_value _ -> ()
      | _ -> Alcotest.fail "read failed");
      (* A subsequent write must land above the read. *)
      let w_ts = Cluster.now_ts cl gw in
      match
        Cluster.write cl ~gateway:gw ~txn:2 ~key:"k" ~value:(Some "v2") ~ts:w_ts ()
      with
      | Cluster.Write_ok pushed ->
          check Alcotest.bool "write pushed above read" true Ts.(pushed > read_ts);
          Cluster.resolve cl ~gateway:gw ~txn:2 ~commit:(Some pushed)
            ~keys:[ "k" ] ~sync_all:true ()
      | Cluster.Write_wounded e | Cluster.Write_err e ->
          Alcotest.failf "write failed: %s" e)

let test_write_write_conflict_queues () =
  let cl = make_cluster () in
  ignore
    (Cluster.add_range cl ~span:("a", "z") ~zone:(zone_config ())
       ~policy:(Cluster.Lag 3_000_000));
  Cluster.settle cl;
  let gw = node_in cl home 0 in
  let sim = Cluster.sim cl in
  Cluster.run cl (fun () ->
      (* Txn 1 writes but delays its commit; txn 2's write must wait. *)
      let ts1 = Cluster.now_ts cl gw in
      let w1 =
        match
          Cluster.write cl ~gateway:gw ~txn:1 ~key:"k" ~value:(Some "a") ~ts:ts1 ()
        with
        | Cluster.Write_ok ts -> ts
        | Cluster.Write_wounded e | Cluster.Write_err e ->
            Alcotest.failf "w1: %s" e
      in
      let t2_done = ref (-1) in
      Crdb_sim.Proc.spawn sim (fun () ->
          let ts2 = Cluster.now_ts cl gw in
          match
            Cluster.write cl ~gateway:gw ~txn:2 ~key:"k" ~value:(Some "b") ~ts:ts2 ()
          with
          | Cluster.Write_ok ts ->
              t2_done := Sim.now sim;
              Cluster.resolve cl ~gateway:gw ~txn:2 ~commit:(Some ts)
                ~keys:[ "k" ] ~sync_all:true ()
          | Cluster.Write_wounded e | Cluster.Write_err e ->
              Alcotest.failf "w2: %s" e);
      (* Hold the lock for 500ms. *)
      Crdb_sim.Proc.sleep sim 500_000;
      check Alcotest.int "txn2 still blocked" (-1) !t2_done;
      let commit_at = Sim.now sim in
      Cluster.resolve cl ~gateway:gw ~txn:1 ~commit:(Some w1) ~keys:[ "k" ]
        ~sync_all:true ();
      Crdb_sim.Proc.sleep sim 500_000;
      check Alcotest.bool "txn2 proceeded after resolve" true
        (!t2_done >= commit_at);
      check Alcotest.(option string) "latest wins" (Some "b") (get cl ~gateway:gw "k"))

let test_refresh () =
  let cl = make_cluster () in
  ignore
    (Cluster.add_range cl ~span:("a", "z") ~zone:(zone_config ())
       ~policy:(Cluster.Lag 3_000_000));
  Cluster.settle cl;
  let gw = node_in cl home 0 in
  Cluster.run cl (fun () ->
      let t0 = Cluster.now_ts cl gw in
      ignore (put cl ~gateway:gw ~txn:1 "k" "v1");
      let t1 = Cluster.now_ts cl gw in
      check Alcotest.bool "refresh fails over write" false
        (Cluster.refresh cl ~gateway:gw ~txn:9 ~key:"k" ~from_ts:t0 ~to_ts:t1 ());
      check Alcotest.bool "refresh ok on untouched window" true
        (Cluster.refresh cl ~gateway:gw ~txn:9 ~key:"k" ~from_ts:t1
           ~to_ts:(Ts.add_wall t1 1000) ()))

let test_zone_survival_loses_region () =
  let cl = make_cluster () in
  let rid =
    Cluster.add_range cl ~span:("a", "z") ~zone:(zone_config ())
      ~policy:(Cluster.Lag 3_000_000)
  in
  Cluster.settle cl;
  let gw = node_in cl "us-west1" 0 in
  Cluster.run cl (fun () -> ignore (put cl ~gateway:gw ~txn:1 "k" "v"));
  (* Let the write's timestamp get closed and propagate before the outage. *)
  Cluster.run_for cl 6_000_000;
  let kill_time = Sim.now (Cluster.sim cl) in
  Transport.kill_region (Cluster.net cl) home;
  Cluster.run_for cl 15_000_000;
  check Alcotest.(option int) "no leaseholder" None (Cluster.leaseholder cl rid);
  (* But stale follower reads still work from surviving regions, at
     timestamps the dead leaseholder had already closed. *)
  Cluster.run cl (fun () ->
      let stale_ts = Ts.of_wall (kill_time - 4_000_000) in
      match
        Cluster.read_follower cl ~at:gw ~txn:None ~key:"k" ~ts:stale_ts
          ~max_ts:stale_ts ()
      with
      | Cluster.Read_value { value; _ } ->
          check Alcotest.(option string) "stale read survives" (Some "v") value
      | Cluster.Read_uncertain _ | Cluster.Read_redirect
      | Cluster.Read_wounded _ | Cluster.Read_err _ ->
          Alcotest.fail "stale read should survive region loss")

let test_region_survival_survives_region () =
  let cl = make_cluster () in
  let rid =
    Cluster.add_range cl ~span:("a", "z")
      ~zone:(zone_config ~survival:Zoneconfig.Region ())
      ~policy:(Cluster.Lag 3_000_000)
  in
  Cluster.settle cl;
  let gw = node_in cl "us-west1" 0 in
  Cluster.run cl (fun () -> ignore (put cl ~gateway:gw ~txn:1 "k" "before"));
  Transport.kill_region (Cluster.net cl) home;
  (* Liveness expiry + election. *)
  Cluster.run_for cl 20_000_000;
  (match Cluster.leaseholder_region cl rid with
  | Some r -> check Alcotest.bool "leaseholder moved out of home" true (r <> home)
  | None -> Alcotest.fail "range must stay available");
  Cluster.run cl (fun () ->
      ignore (put cl ~gateway:gw ~txn:2 "k" "after");
      check Alcotest.(option string) "writes still served" (Some "after")
        (get cl ~gateway:gw "k"));
  (* Heal and rebalance: lease returns home. *)
  Transport.revive_region (Cluster.net cl) home;
  Cluster.run_for cl 2_000_000;
  Cluster.rebalance_leases cl;
  Cluster.run_for cl 5_000_000;
  match Cluster.leaseholder_region cl rid with
  | Some r -> check Alcotest.string "lease back home" home r
  | None -> Alcotest.fail "no leaseholder after heal"

let test_zone_failure_tolerated () =
  let cl = make_cluster () in
  let rid =
    Cluster.add_range cl ~span:("a", "z") ~zone:(zone_config ())
      ~policy:(Cluster.Lag 3_000_000)
  in
  Cluster.settle cl;
  let lh = Option.get (Cluster.leaseholder cl rid) in
  let zone = Topology.zone_of (Cluster.topology cl) lh in
  Transport.kill_zone (Cluster.net cl) ~region:home ~zone;
  Cluster.run_for cl 20_000_000;
  (match Cluster.leaseholder_region cl rid with
  | Some r -> check Alcotest.string "still home region" home r
  | None -> Alcotest.fail "zone survival must keep the range available");
  let gw = node_in cl home 1 in
  Cluster.run cl (fun () ->
      ignore (put cl ~gateway:gw ~txn:5 "k" "v");
      check Alcotest.(option string) "read after zone loss" (Some "v")
        (get cl ~gateway:gw "k"))

let test_negotiate () =
  let cl = make_cluster () in
  ignore
    (Cluster.add_range cl ~span:("a", "z") ~zone:(zone_config ())
       ~policy:(Cluster.Lag 3_000_000));
  Cluster.settle cl;
  let gw = node_in cl home 0 in
  let remote = node_in cl "europe-west2" 0 in
  Cluster.run cl (fun () ->
      ignore (put cl ~gateway:gw ~txn:1 "k" "v");
      Crdb_sim.Proc.sleep (Cluster.sim cl) 4_000_000;
      let safe = Cluster.negotiate cl ~at:remote ~keys:[ "k" ] in
      let now = Sim.now (Cluster.sim cl) in
      check Alcotest.bool "negotiated ts in the past but recent" true
        (Ts.wall safe > now - 4_500_000 && Ts.wall safe < now);
      (* A pending intent below the closed timestamp lowers the result. *)
      let ts = Cluster.now_ts cl gw in
      (match Cluster.write cl ~gateway:gw ~txn:7 ~key:"k" ~value:(Some "x") ~ts () with
      | Cluster.Write_ok _ -> ()
      | Cluster.Write_wounded e | Cluster.Write_err e ->
          Alcotest.failf "write: %s" e);
      Crdb_sim.Proc.sleep (Cluster.sim cl) 4_000_000;
      let safe2 = Cluster.negotiate cl ~at:remote ~keys:[ "k" ] in
      check Alcotest.bool "intent caps negotiation" true Ts.(safe2 < ts);
      Cluster.resolve cl ~gateway:gw ~txn:7 ~commit:None ~keys:[ "k" ]
        ~sync_all:true ())

let test_bulk_load_visible () =
  let cl = make_cluster () in
  ignore
    (Cluster.add_range cl ~span:("a", "z") ~zone:(zone_config ())
       ~policy:(Cluster.Lag 3_000_000));
  Cluster.settle cl;
  Cluster.bulk_load cl [ ("k1", "v1"); ("k2", "v2") ];
  let gw = node_in cl home 2 in
  Cluster.run cl (fun () ->
      check Alcotest.(option string) "loaded" (Some "v1") (get cl ~gateway:gw "k1");
      check Alcotest.(option string) "loaded" (Some "v2") (get cl ~gateway:gw "k2"))

let test_multi_range_routing () =
  let cl = make_cluster () in
  let r1 =
    Cluster.add_range cl ~span:("a", "m") ~zone:(zone_config ())
      ~policy:(Cluster.Lag 3_000_000)
  in
  let r2 =
    Cluster.add_range cl ~span:("m", "z")
      ~zone:(zone_config ~home:"europe-west2" ())
      ~policy:(Cluster.Lag 3_000_000)
  in
  Cluster.settle cl;
  check Alcotest.int "routes to r1" r1 (Cluster.range_of_key cl "apple");
  check Alcotest.int "routes to r2" r2 (Cluster.range_of_key cl "orange");
  (match Cluster.leaseholder_region cl r2 with
  | Some r -> check Alcotest.string "r2 homed in europe" "europe-west2" r
  | None -> Alcotest.fail "no leaseholder for r2");
  Alcotest.check_raises "unrouted key" Not_found (fun () ->
      ignore (Cluster.range_of_key cl "zz"));
  Alcotest.check_raises "overlap rejected"
    (Invalid_argument "Cluster.add_range: overlapping span") (fun () ->
      ignore
        (Cluster.add_range cl ~span:("b", "c") ~zone:(zone_config ())
           ~policy:(Cluster.Lag 3_000_000)))

let suite =
  [
    Alcotest.test_case "zone survival config" `Quick test_zone_survival_config;
    Alcotest.test_case "region survival config" `Quick test_region_survival_config;
    Alcotest.test_case "restricted config" `Quick test_restricted_config;
    Alcotest.test_case "invalid configs" `Quick test_invalid_configs;
    Alcotest.test_case "allocator zone survival" `Quick test_allocator_zone_survival;
    Alcotest.test_case "allocator region survival" `Quick
      test_allocator_region_survival;
    Alcotest.test_case "allocator load balance" `Quick test_allocator_balances_load;
    Alcotest.test_case "allocator unsatisfiable" `Quick test_allocator_unsatisfiable;
    Alcotest.test_case "basic write/read" `Quick test_cluster_basic_write_read;
    Alcotest.test_case "local latency" `Quick test_cluster_local_latency;
    Alcotest.test_case "follower stale read" `Quick test_follower_stale_read;
    Alcotest.test_case "global future writes" `Quick test_global_range_future_writes;
    Alcotest.test_case "global read uncertainty" `Quick test_global_read_uncertainty;
    Alcotest.test_case "tscache pushes writer" `Quick test_tscache_pushes_writer;
    Alcotest.test_case "write-write conflict" `Quick test_write_write_conflict_queues;
    Alcotest.test_case "refresh" `Quick test_refresh;
    Alcotest.test_case "zone survival loses region" `Quick
      test_zone_survival_loses_region;
    Alcotest.test_case "region survival survives" `Quick
      test_region_survival_survives_region;
    Alcotest.test_case "zone failure tolerated" `Quick test_zone_failure_tolerated;
    Alcotest.test_case "negotiate" `Quick test_negotiate;
    Alcotest.test_case "bulk load" `Quick test_bulk_load_visible;
    Alcotest.test_case "multi-range routing" `Quick test_multi_range_routing;
  ]
