(* Tests for the transaction layer: serializability, linearizability of
   global tables, commit waits, stale reads. *)

module Sim = Crdb_sim.Sim
module Proc = Crdb_sim.Proc
module Topology = Crdb_net.Topology
module Latency = Crdb_net.Latency
module Ts = Crdb_hlc.Timestamp
module Zoneconfig = Crdb_kv.Zoneconfig
module Cluster = Crdb_kv.Cluster
module Txn = Crdb_txn.Txn

let check = Alcotest.check
let regions5 = Latency.table1_regions
let home = "us-east1"
let topo5 = Topology.symmetric ~regions:regions5 ~nodes_per_region:3

let make ?(policy = Cluster.Lag 3_000_000) ?survival () =
  let cl = Cluster.create ~topology:topo5 ~latency:Latency.table1 () in
  let zone =
    Zoneconfig.derive ~regions:regions5 ~home
      ~survival:(Option.value survival ~default:Zoneconfig.Zone)
      ~placement:Zoneconfig.Default
  in
  let rid = Cluster.add_range cl ~span:("a", "zzzz") ~zone ~policy in
  Cluster.settle cl;
  ignore rid;
  (cl, Txn.create_manager cl)

let node_in cl region i =
  (List.nth (Topology.nodes_in_region (Cluster.topology cl) region) i)
    .Topology.id

let expect_ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "txn failed: %a" Txn.pp_error e

let test_basic_txn () =
  let cl, mgr = make () in
  let gw = node_in cl home 0 in
  Cluster.run cl (fun () ->
      expect_ok
        (Txn.run mgr ~gateway:gw (fun t ->
             Txn.put t "k1" "v1";
             Txn.put t "k2" "v2";
             (* Read own write inside the transaction. *)
             check Alcotest.(option string) "read own write" (Some "v1")
               (Txn.get t "k1")));
      expect_ok
        (Txn.run_fresh_read mgr ~gateway:gw (fun ro ->
             check Alcotest.(option string) "committed" (Some "v1")
               (Txn.ro_get ro "k1");
             check Alcotest.(option string) "committed" (Some "v2")
               (Txn.ro_get ro "k2"))))

let test_abort_leaves_no_trace () =
  let cl, mgr = make () in
  let gw = node_in cl home 0 in
  let exception Client_rollback in
  Cluster.run cl (fun () ->
      (match
         Txn.run mgr ~gateway:gw (fun t ->
             Txn.put t "k" "doomed";
             raise Client_rollback)
       with
      | exception Client_rollback -> ()
      | Ok _ | Error _ -> Alcotest.fail "body exception must propagate");
      Cluster.run_for cl 0;
      expect_ok
        (Txn.run_fresh_read mgr ~gateway:gw (fun ro ->
             check Alcotest.(option string) "rolled back" None (Txn.ro_get ro "k"))))

let test_delete () =
  let cl, mgr = make () in
  let gw = node_in cl home 0 in
  Cluster.run cl (fun () ->
      expect_ok (Txn.run mgr ~gateway:gw (fun t -> Txn.put t "k" "v"));
      expect_ok (Txn.run mgr ~gateway:gw (fun t -> Txn.delete t "k"));
      expect_ok
        (Txn.run_fresh_read mgr ~gateway:gw (fun ro ->
             check Alcotest.(option string) "deleted" None (Txn.ro_get ro "k"))))

let test_scan_txn () =
  let cl, mgr = make () in
  let gw = node_in cl home 0 in
  Cluster.run cl (fun () ->
      expect_ok
        (Txn.run mgr ~gateway:gw (fun t ->
             List.iter (fun i -> Txn.put t (Printf.sprintf "s%02d" i) (string_of_int i))
               [ 1; 2; 3; 4; 5 ]));
      expect_ok
        (Txn.run_fresh_read mgr ~gateway:gw (fun ro ->
             let rows = Txn.ro_scan ro ~start_key:"s02" ~end_key:"s05" () in
             check
               Alcotest.(list (pair string string))
               "scan rows"
               [ ("s02", "2"); ("s03", "3"); ("s04", "4") ]
               rows;
             let limited = Txn.ro_scan ro ~start_key:"s00" ~end_key:"s99" ~limit:2 () in
             check Alcotest.int "limit" 2 (List.length limited))))

(* Bank invariant under concurrency: serializability smoke test. *)
let test_bank_transfers () =
  let cl, mgr = make () in
  let rng = Crdb_stdx.Rng.create ~seed:11 in
  let accounts = List.init 8 (fun i -> Printf.sprintf "acct%d" i) in
  let initial = 100 in
  Cluster.run cl (fun () ->
      let gw = node_in cl home 0 in
      expect_ok
        (Txn.run mgr ~gateway:gw (fun t ->
             List.iter (fun a -> Txn.put t a (string_of_int initial)) accounts)));
  (* 24 concurrent transfers from all regions. *)
  let done_count = ref 0 in
  let total_txns = 24 in
  Cluster.run cl (fun () ->
      for i = 0 to total_txns - 1 do
        let region = List.nth regions5 (i mod 5) in
        let gw = node_in cl region (i mod 3) in
        Proc.spawn (Cluster.sim cl) (fun () ->
            let a = List.nth accounts (Crdb_stdx.Rng.int rng 8) in
            let b = List.nth accounts (Crdb_stdx.Rng.int rng 8) in
            let amount = 1 + Crdb_stdx.Rng.int rng 10 in
            (match
               Txn.run mgr ~gateway:gw (fun t ->
                   if not (String.equal a b) then begin
                     let bal_a = int_of_string (Option.get (Txn.get t a)) in
                     let bal_b = int_of_string (Option.get (Txn.get t b)) in
                     Txn.put t a (string_of_int (bal_a - amount));
                     Txn.put t b (string_of_int (bal_b + amount))
                   end)
             with
            | Ok () -> ()
            | Error e -> Alcotest.failf "transfer failed: %a" Txn.pp_error e);
            incr done_count)
      done;
      (* Wait for all transfers to finish. *)
      let rec wait () =
        if !done_count < total_txns then begin
          Proc.sleep (Cluster.sim cl) 100_000;
          wait ()
        end
      in
      wait ();
      let gw = node_in cl home 0 in
      expect_ok
        (Txn.run_fresh_read mgr ~gateway:gw (fun ro ->
             let total =
               List.fold_left
                 (fun acc a -> acc + int_of_string (Option.get (Txn.ro_get ro a)))
                 0 accounts
             in
             check Alcotest.int "money conserved" (8 * initial) total)))

(* Write skew must be prevented (serializable, not snapshot isolation). *)
let test_write_skew_prevented () =
  let cl, mgr = make () in
  Cluster.run cl (fun () ->
      let gw = node_in cl home 0 in
      expect_ok
        (Txn.run mgr ~gateway:gw (fun t ->
             Txn.put t "x" "1";
             Txn.put t "y" "1"));
      (* Two doctors-on-call transactions: each reads both and zeroes the
         other if the sum allows. Under serializability at most one zero. *)
      let attempt_zero ~gw ~read_key ~write_key finished =
        Proc.spawn (Cluster.sim cl) (fun () ->
            let r =
              Txn.run mgr ~gateway:gw (fun t ->
                  let x = int_of_string (Option.get (Txn.get t read_key)) in
                  let me = int_of_string (Option.get (Txn.get t write_key)) in
                  if x + me > 1 then Txn.put t write_key "0";
                  (* Make the transactions overlap in time. *)
                  Proc.sleep (Cluster.sim cl) 50_000)
            in
            Crdb_sim.Ivar.fill finished r)
      in
      let f1 = Crdb_sim.Ivar.create () and f2 = Crdb_sim.Ivar.create () in
      attempt_zero ~gw:(node_in cl home 1) ~read_key:"x" ~write_key:"y" f1;
      attempt_zero ~gw:(node_in cl home 2) ~read_key:"y" ~write_key:"x" f2;
      ignore (Proc.await f1);
      ignore (Proc.await f2);
      expect_ok
        (Txn.run_fresh_read mgr ~gateway:gw (fun ro ->
             let x = int_of_string (Option.get (Txn.ro_get ro "x")) in
             let y = int_of_string (Option.get (Txn.ro_get ro "y")) in
             check Alcotest.bool
               (Printf.sprintf "no write skew (x=%d y=%d)" x y)
               true
               (x + y >= 1))))

(* Single-key linearizability on a GLOBAL range: any read that starts after
   a write's client acknowledgement observes that write or a newer one, from
   any region, served locally. *)
let test_global_linearizability () =
  let cl, mgr = make ~policy:Cluster.Lead () in
  let sim = Cluster.sim cl in
  let gw_writer = node_in cl home 0 in
  let completions = ref [] in
  let reads = ref [] in
  let writer_done = ref false in
  Cluster.run cl (fun () ->
      Proc.spawn sim (fun () ->
          for v = 1 to 5 do
            expect_ok
              (Txn.run mgr ~gateway:gw_writer (fun t ->
                   Txn.put t "counter" (string_of_int v)));
            completions := (v, Sim.now sim) :: !completions;
            Proc.sleep sim 150_000
          done;
          writer_done := true);
      (* Readers from every region poll concurrently. *)
      List.iteri
        (fun i region ->
          Proc.spawn sim (fun () ->
              let gw = node_in cl region (i mod 3) in
              while not !writer_done do
                let start = Sim.now sim in
                (match
                   Txn.run_fresh_read mgr ~gateway:gw (fun ro ->
                       Txn.ro_get ro "counter")
                 with
                | Ok v ->
                    let v = match v with Some s -> int_of_string s | None -> 0 in
                    reads := (start, Sim.now sim, v, region) :: !reads
                | Error _ -> ());
                Proc.sleep sim 50_000
              done))
        regions5;
      let rec wait () =
        if not !writer_done then begin
          Proc.sleep sim 200_000;
          wait ()
        end
      in
      wait ());
  (* Validate. *)
  check Alcotest.bool "collected reads" true (List.length !reads > 20);
  List.iter
    (fun (start, _finish, v, region) ->
      let must_see =
        List.fold_left
          (fun acc (w, done_at) -> if done_at < start then max acc w else acc)
          0 !completions
      in
      if v < must_see then
        Alcotest.failf "stale read in %s: saw %d, expected >= %d" region v
          must_see)
    !reads;
  (* Remote reads are either served locally at once, or delayed by at most
     ~max_offset when a concurrent write falls in their uncertainty window
     (reader-side commit wait) — never by a WAN round trip beyond that. *)
  let offset = (Cluster.config cl).Cluster.max_offset in
  let remote_all = List.filter (fun (_, _, _, r) -> r <> home) !reads in
  let remote_fast =
    List.filter (fun (s, f, _, _) -> f - s < 5_000) remote_all
  in
  let remote_bounded =
    List.filter (fun (s, f, _, _) -> f - s <= offset + 50_000) remote_all
  in
  check Alcotest.bool
    (Printf.sprintf "half of remote reads immediate (%d/%d)"
       (List.length remote_fast) (List.length remote_all))
    true
    (List.length remote_fast * 2 >= List.length remote_all);
  check Alcotest.int "every remote read bounded by max_offset"
    (List.length remote_all) (List.length remote_bounded)

let test_global_write_commit_wait () =
  let cl, mgr = make ~policy:Cluster.Lead () in
  let sim = Cluster.sim cl in
  let gw = node_in cl home 0 in
  let rid = Cluster.range_of_key cl "k" in
  let lead = Cluster.closed_lead_duration cl rid in
  Cluster.run cl (fun () ->
      let t0 = Sim.now sim in
      expect_ok (Txn.run mgr ~gateway:gw (fun t -> Txn.put t "k" "v"));
      let elapsed = Sim.now sim - t0 in
      check Alcotest.bool
        (Printf.sprintf "commit wait ~lead (elapsed %dus, lead %dus)" elapsed lead)
        true
        (elapsed > (lead * 2 / 3) && elapsed < lead + 200_000);
      check Alcotest.bool "writer wait recorded" true
        ((Txn.stats mgr).Txn.writer_commit_wait_micros > 0))

let test_regional_write_no_commit_wait () =
  let cl, mgr = make ~policy:(Cluster.Lag 3_000_000) () in
  let sim = Cluster.sim cl in
  let gw = node_in cl home 0 in
  Cluster.run cl (fun () ->
      let t0 = Sim.now sim in
      expect_ok (Txn.run mgr ~gateway:gw (fun t -> Txn.put t "k" "v"));
      let elapsed = Sim.now sim - t0 in
      check Alcotest.bool
        (Printf.sprintf "local regional write fast (%dus)" elapsed)
        true (elapsed < 10_000))

let test_reader_commit_wait_capped () =
  let cl, mgr = make ~policy:Cluster.Lead () in
  let sim = Cluster.sim cl in
  let offset = (Cluster.config cl).Cluster.max_offset in
  let gw = node_in cl home 0 in
  let remote = node_in cl "us-west1" 0 in
  Cluster.run cl (fun () ->
      Proc.spawn sim (fun () ->
          expect_ok (Txn.run mgr ~gateway:gw (fun t -> Txn.put t "k" "v")));
      (* Probe with reads around the write's visibility transition; each
         read's latency must stay bounded by ~max_offset, never a WAN RTT. *)
      let max_latency = ref 0 in
      for _ = 1 to 40 do
        let t0 = Sim.now sim in
        (match
           Txn.run_fresh_read mgr ~gateway:remote (fun ro -> Txn.ro_get ro "k")
         with
        | Ok _ -> ()
        | Error _ -> ());
        let l = Sim.now sim - t0 in
        if l > !max_latency then max_latency := l;
        Proc.sleep sim 25_000
      done;
      check Alcotest.bool
        (Printf.sprintf "reader wait capped by max_offset (max %dus)" !max_latency)
        true
        (!max_latency <= offset + 20_000))

let test_stale_exact_read () =
  let cl, mgr = make () in
  let sim = Cluster.sim cl in
  let gw = node_in cl home 0 in
  let remote = node_in cl "australia-southeast1" 0 in
  Cluster.run cl (fun () ->
      expect_ok (Txn.run mgr ~gateway:gw (fun t -> Txn.put t "k" "v1"));
      Proc.sleep sim 5_000_000;
      (* Take the boundary timestamp from the writing gateway's own clock so
         per-node skew cannot reorder it against the second write. *)
      let mid = Cluster.now_ts cl gw in
      expect_ok (Txn.run mgr ~gateway:gw (fun t -> Txn.put t "k" "v2"));
      Proc.sleep sim 5_000_000;
      (* Read at a timestamp between the writes: sees v1, from the local
         replica, fast. *)
      let t0 = Sim.now sim in
      let v =
        Txn.run_stale_exact mgr ~gateway:remote ~ts:mid (fun ro ->
            Txn.ro_get ro "k")
      in
      check Alcotest.(option string) "historical value" (Some "v1") v;
      check Alcotest.bool "served locally" true (Sim.now sim - t0 < 3_000))

let test_stale_bounded_read () =
  let cl, mgr = make () in
  let sim = Cluster.sim cl in
  let gw = node_in cl home 0 in
  let remote = node_in cl "asia-northeast1" 0 in
  Cluster.run cl (fun () ->
      expect_ok (Txn.run mgr ~gateway:gw (fun t -> Txn.put t "k" "v1"));
      Proc.sleep sim 6_000_000;
      let t0 = Sim.now sim in
      let v, ts =
        Txn.run_stale_bounded mgr ~gateway:remote ~max_staleness:10_000_000
          ~keys:[ "k" ] (fun ro -> (Txn.ro_get ro "k", Txn.ro_ts ro))
      in
      check Alcotest.(option string) "value" (Some "v1") v;
      check Alcotest.bool "served locally" true (Sim.now sim - t0 < 3_000);
      (* The negotiated timestamp should be much fresher than the bound. *)
      check Alcotest.bool "negotiated fresh" true
        (Ts.wall ts > Sim.now sim - 5_000_000))

let test_conflict_restart_counted () =
  let cl, mgr = make () in
  let sim = Cluster.sim cl in
  let gw = node_in cl home 0 in
  Cluster.run cl (fun () ->
      expect_ok (Txn.run mgr ~gateway:gw (fun t -> Txn.put t "k" "0"));
      (* Two read-modify-write transactions on the same key, racing. *)
      let f1 = Crdb_sim.Ivar.create () and f2 = Crdb_sim.Ivar.create () in
      let incr_txn finished =
        Proc.spawn sim (fun () ->
            let r =
              Txn.run mgr ~gateway:gw (fun t ->
                  let v = int_of_string (Option.get (Txn.get t "k")) in
                  Proc.sleep sim 20_000;
                  Txn.put t "k" (string_of_int (v + 1)))
            in
            Crdb_sim.Ivar.fill finished r)
      in
      incr_txn f1;
      incr_txn f2;
      (match (Proc.await f1, Proc.await f2) with
      | Ok (), Ok () -> ()
      | _ -> Alcotest.fail "both increments must eventually succeed");
      expect_ok
        (Txn.run_fresh_read mgr ~gateway:gw (fun ro ->
             check Alcotest.(option string) "both increments applied" (Some "2")
               (Txn.ro_get ro "k"))))

(* The same GLOBAL-table commit wait, observed through lib/obs: the manager
   feeds per-gateway counters and a commit-wait histogram into the cluster's
   metrics registry. *)
let test_commit_wait_metrics () =
  let module Metrics = Crdb_obs.Metrics in
  let cl, mgr = make ~policy:Cluster.Lead () in
  let gw = node_in cl home 0 in
  Cluster.run cl (fun () ->
      expect_ok (Txn.run mgr ~gateway:gw (fun t -> Txn.put t "k" "v")));
  let m = Crdb_obs.Obs.metrics (Cluster.obs cl) in
  check Alcotest.int "txn.commits counted" 1 (Metrics.total m "txn.commits");
  check Alcotest.bool "txn.attempts counted" true
    (Metrics.total m "txn.attempts" >= 1);
  let h = Metrics.merged_hist m "txn.commit_wait" in
  check Alcotest.int "one commit-wait sample" 1 (Crdb_stats.Hist.count h);
  check Alcotest.bool "global write waited out the lead" true
    (Crdb_stats.Hist.max_value h > 0)

let suite =
  [
    Alcotest.test_case "basic txn" `Quick test_basic_txn;
    Alcotest.test_case "abort" `Quick test_abort_leaves_no_trace;
    Alcotest.test_case "delete" `Quick test_delete;
    Alcotest.test_case "scan" `Quick test_scan_txn;
    Alcotest.test_case "bank transfers" `Quick test_bank_transfers;
    Alcotest.test_case "write skew prevented" `Quick test_write_skew_prevented;
    Alcotest.test_case "global linearizability" `Quick test_global_linearizability;
    Alcotest.test_case "global commit wait" `Quick test_global_write_commit_wait;
    Alcotest.test_case "regional no commit wait" `Quick
      test_regional_write_no_commit_wait;
    Alcotest.test_case "reader wait capped" `Quick test_reader_commit_wait_capped;
    Alcotest.test_case "stale exact" `Quick test_stale_exact_read;
    Alcotest.test_case "stale bounded" `Quick test_stale_bounded_read;
    Alcotest.test_case "conflict restart" `Quick test_conflict_restart_counted;
    Alcotest.test_case "commit wait metrics" `Quick test_commit_wait_metrics;
  ]
