(* Tests for range-anchored transaction records and parallel-commit status
   recovery: the replicated record state machine (first-decision-wins),
   records following their anchor key through splits and merges, heartbeat
   liveness through the routed RPC path, push verdicts against STAGING
   records, QueryIntent prevention, and the commit-vs-wound race decided by
   anchor-range log order. *)

module Sim = Crdb_sim.Sim
module Proc = Crdb_sim.Proc
module Topology = Crdb_net.Topology
module Latency = Crdb_net.Latency
module Ts = Crdb_hlc.Timestamp
module Zoneconfig = Crdb_kv.Zoneconfig
module Cluster = Crdb_kv.Cluster
module Txnrec = Crdb_kv.Txnrec
module Obs = Crdb_obs.Obs
module Metrics = Crdb_obs.Metrics

let check = Alcotest.check
let regions5 = Latency.table1_regions
let home = "us-east1"
let topo5 = Topology.symmetric ~regions:regions5 ~nodes_per_region:3

let zone () =
  Zoneconfig.derive ~regions:regions5 ~home ~survival:Zoneconfig.Zone
    ~placement:Zoneconfig.Default

let make ?config ?(two_ranges = false) () =
  let cl = Cluster.create ?config ~topology:topo5 ~latency:Latency.table1 () in
  let policy = Cluster.Lag 3_000_000 in
  if two_ranges then begin
    ignore (Cluster.add_range cl ~span:("a", "m") ~zone:(zone ()) ~policy);
    ignore (Cluster.add_range cl ~span:("m", "zzzz") ~zone:(zone ()) ~policy)
  end
  else ignore (Cluster.add_range cl ~span:("a", "zzzz") ~zone:(zone ()) ~policy);
  Cluster.settle cl;
  cl

let node_in cl region i =
  (List.nth (Topology.nodes_in_region (Cluster.topology cl) region) i)
    .Topology.id

let no_conflict_timeouts cl =
  check Alcotest.int "no conflict timeouts" 0
    (Metrics.total (Obs.metrics (Cluster.obs cl)) "kv.conflict_timeouts")

let write_ok ?pri ?anchor cl ~gateway ~txn ~key ~value =
  let ts = Cluster.now_ts cl gateway in
  match
    Cluster.write cl ?pri ?anchor ~gateway ~txn ~key ~value:(Some value) ~ts ()
  with
  | Cluster.Write_ok ts -> ts
  | Cluster.Write_wounded e | Cluster.Write_err e ->
      Alcotest.failf "write %s: %s" key e

let status_is cl ~gateway ~txn ~key expected msg =
  let got = Cluster.txn_status cl ~gateway ~txn ~key () in
  check Alcotest.bool msg true (expected got)

(* ------------------------------------------------------------------ *)
(* Pure state machine: first decision wins                             *)

let test_record_state_machine () =
  let t = Txnrec.create () in
  let pri = Ts.of_wall 5 in
  let cts = Ts.of_wall 10 in
  (* Commit beats a late recovery-abort. *)
  Txnrec.apply t ~txn:1 ~key:"a" (Txnrec.U_register { pri; hb = 0 });
  (match Txnrec.status t ~txn:1 with
  | Some Txnrec.Pending -> ()
  | _ -> Alcotest.fail "register must create Pending");
  Txnrec.apply t ~txn:1 ~key:"a"
    (Txnrec.U_stage { pri; ts = cts; inflight = [ "a"; "b" ]; hb = 1 });
  (match Txnrec.status t ~txn:1 with
  | Some (Txnrec.Staging { inflight; _ }) ->
      check Alcotest.int "inflight declared" 2 (List.length inflight)
  | _ -> Alcotest.fail "stage must move to Staging");
  Txnrec.apply t ~txn:1 ~key:"a" (Txnrec.U_commit { ts = cts });
  Txnrec.apply t ~txn:1 ~key:"a" (Txnrec.U_recover_abort { reason = "late" });
  (match Txnrec.status t ~txn:1 with
  | Some (Txnrec.Committed ts) ->
      check Alcotest.bool "commit ts kept" true (Ts.equal ts cts)
  | _ -> Alcotest.fail "commit decision must be terminal");
  (* Recovery-abort beats a late commit. *)
  Txnrec.apply t ~txn:2 ~key:"b"
    (Txnrec.U_stage { pri; ts = cts; inflight = [ "b" ]; hb = 0 });
  Txnrec.apply t ~txn:2 ~key:"b" (Txnrec.U_recover_abort { reason = "lost" });
  Txnrec.apply t ~txn:2 ~key:"b" (Txnrec.U_commit { ts = cts });
  (match Txnrec.status t ~txn:2 with
  | Some (Txnrec.Aborted { wound = true; _ }) -> ()
  | _ -> Alcotest.fail "recovery abort must be terminal");
  (* A Staging record can no longer be wounded. *)
  Txnrec.apply t ~txn:3 ~key:"c"
    (Txnrec.U_stage { pri; ts = cts; inflight = []; hb = 0 });
  Txnrec.apply t ~txn:3 ~key:"c" (Txnrec.U_wound { reason = "older" });
  (match Txnrec.status t ~txn:3 with
  | Some (Txnrec.Staging _) -> ()
  | _ -> Alcotest.fail "wound must not touch Staging");
  (* Abandonment re-checks staleness at apply time. *)
  Txnrec.apply t ~txn:4 ~key:"d" (Txnrec.U_register { pri; hb = 10 });
  Txnrec.apply t ~txn:4 ~key:"d" (Txnrec.U_heartbeat { hb = 20 });
  Txnrec.apply t ~txn:4 ~key:"d"
    (Txnrec.U_abandon { reason = "stale"; if_hb_before = 15 });
  (match Txnrec.status t ~txn:4 with
  | Some Txnrec.Pending -> ()
  | _ -> Alcotest.fail "heartbeat that raced ahead must win");
  Txnrec.apply t ~txn:4 ~key:"d"
    (Txnrec.U_abandon { reason = "stale"; if_hb_before = 25 });
  match Txnrec.status t ~txn:4 with
  | Some (Txnrec.Aborted { wound = false; _ }) -> ()
  | _ -> Alcotest.fail "stale record must abandon"

(* ------------------------------------------------------------------ *)
(* Records ride their anchor key through the range lifecycle           *)

let test_record_follows_split () =
  let cl = make () in
  let gw = node_in cl home 0 in
  Cluster.run cl (fun () ->
      let pri = Cluster.now_ts cl gw in
      ignore (write_ok cl ~pri ~anchor:"x" ~gateway:gw ~txn:1 ~key:"x" ~value:"v");
      status_is cl ~gateway:gw ~txn:1 ~key:"x"
        (function Some Txnrec.Pending -> true | _ -> false)
        "record registered at anchor");
  let rid = Cluster.range_of_key cl "a" in
  (match Cluster.split_range cl rid ~at:"m" with
  | Some _ -> ()
  | None -> Alcotest.fail "split failed");
  Cluster.settle cl;
  check Alcotest.bool "anchor moved right" true
    (Cluster.range_of_key cl "x" <> rid);
  Cluster.run cl (fun () ->
      (* Status and heartbeat RPCs route by anchor key and find the record
         in the right-hand range. *)
      status_is cl ~gateway:gw ~txn:1 ~key:"x"
        (function Some Txnrec.Pending -> true | _ -> false)
        "record followed the split";
      (match Cluster.heartbeat_txn cl ~gateway:gw ~txn:1 ~key:"x" () with
      | Some Txnrec.Pending -> ()
      | _ -> Alcotest.fail "heartbeat must reach the moved record");
      (* The left-hand range no longer knows the transaction. *)
      status_is cl ~gateway:gw ~txn:1 ~key:"b"
        (function None -> true | _ -> false)
        "left range has no record")

let test_record_survives_merge () =
  let cl = make ~two_ranges:true () in
  let gw = node_in cl home 0 in
  Cluster.run cl (fun () ->
      let pri = Cluster.now_ts cl gw in
      ignore (write_ok cl ~pri ~anchor:"x" ~gateway:gw ~txn:1 ~key:"x" ~value:"v"));
  let left = Cluster.range_of_key cl "a" in
  check Alcotest.bool "merge succeeded" true (Cluster.merge_range cl left);
  Cluster.settle cl;
  check Alcotest.int "one range" left (Cluster.range_of_key cl "x");
  Cluster.run cl (fun () ->
      status_is cl ~gateway:gw ~txn:1 ~key:"x"
        (function Some Txnrec.Pending -> true | _ -> false)
        "record absorbed by the left range";
      match Cluster.commit_txn cl ~gateway:gw ~txn:1 ~key:"x"
              ~ts:(Cluster.now_ts cl gw) () with
      | Some (Txnrec.Committed _) -> ()
      | _ -> Alcotest.fail "commit must reach the absorbed record")

(* ------------------------------------------------------------------ *)
(* Heartbeats through the RPC path: liveness and abandonment           *)

let test_heartbeat_rpc_keeps_record_live () =
  let cl = make () in
  let sim = Cluster.sim cl in
  let gw = node_in cl home 0 in
  let interval = (Cluster.config cl).Cluster.txn_heartbeat_interval in
  Cluster.run cl (fun () ->
      let pri1 = Cluster.now_ts cl gw in
      ignore (write_ok cl ~pri:pri1 ~anchor:"k" ~gateway:gw ~txn:1 ~key:"k"
                ~value:"held");
      (* Coordinator heartbeats for 3 intervals, then stops. *)
      Proc.spawn sim (fun () ->
          for _ = 1 to 3 do
            Proc.sleep sim interval;
            ignore
              (Cluster.heartbeat_txn cl ~gateway:gw ~txn:1 ~key:"k" ()
                : Txnrec.status option)
          done);
      Proc.sleep sim 1_000;
      let pri2 = Cluster.now_ts cl gw in
      let young_done = ref false in
      Proc.spawn sim (fun () ->
          ignore
            (write_ok cl ~pri:pri2 ~anchor:"k" ~gateway:gw ~txn:2 ~key:"k"
               ~value:"young");
          young_done := true);
      (* While heartbeats flow the record is live: the younger writer stays
         parked past the bare liveness window. *)
      Proc.sleep sim (4 * interval);
      check Alcotest.bool "younger parked while heartbeats flow" false
        !young_done;
      status_is cl ~gateway:gw ~txn:1 ~key:"k"
        (function Some Txnrec.Pending -> true | _ -> false)
        "record still pending";
      (* Heartbeats stopped after 3 intervals: staleness is measured from
         the last one, and the pusher abandons the record. *)
      Proc.sleep sim (4 * interval);
      check Alcotest.bool "abandoned after heartbeats stop" true !young_done;
      status_is cl ~gateway:gw ~txn:1 ~key:"k"
        (function
          | Some (Txnrec.Aborted { wound = false; _ }) -> true | _ -> false)
        "record abandoned, not wounded");
  no_conflict_timeouts cl

(* ------------------------------------------------------------------ *)
(* Push verdicts against STAGING records                               *)

(* A fresh STAGING record is never wounded, even by an older pusher: its
   fate belongs to status recovery. The older transaction waits and gets
   through via cleanup once the coordinator finishes the commit. *)
let test_staging_not_wounded () =
  let cl = make () in
  let sim = Cluster.sim cl in
  let gw = node_in cl home 0 in
  Cluster.run cl (fun () ->
      let pri_old = Cluster.now_ts cl gw in
      Proc.sleep sim 1_000;
      let pri_young = Cluster.now_ts cl gw in
      let ts =
        write_ok cl ~pri:pri_young ~anchor:"k" ~gateway:gw ~txn:2 ~key:"k"
          ~value:"staged"
      in
      (match
         Cluster.stage_txn cl ~gateway:gw ~txn:2 ~key:"k" ~pri:pri_young ~ts
           ~inflight:[] ()
       with
      | Some (Txnrec.Staging _) -> ()
      | _ -> Alcotest.fail "stage must apply");
      let old_done = ref false in
      Proc.spawn sim (fun () ->
          ignore
            (write_ok cl ~pri:pri_old ~anchor:"k" ~gateway:gw ~txn:1 ~key:"k"
               ~value:"old");
          old_done := true);
      Proc.sleep sim 1_000_000;
      check Alcotest.bool "older pusher waits on fresh STAGING" false !old_done;
      status_is cl ~gateway:gw ~txn:2 ~key:"k"
        (function Some (Txnrec.Staging _) -> true | _ -> false)
        "staging record not wounded";
      (* Coordinator finishes: explicit commit, then the pusher cleans up
         the committed intent on its own. *)
      (match Cluster.commit_txn cl ~gateway:gw ~txn:2 ~key:"k" ~ts () with
      | Some (Txnrec.Committed _) -> ()
      | _ -> Alcotest.fail "explicit commit must apply");
      Proc.sleep sim 1_000_000;
      check Alcotest.bool "older got through after commit" true !old_done);
  check Alcotest.int "no wounds" 0
    (Metrics.total (Obs.metrics (Cluster.obs cl)) "kv.txn_wounds");
  no_conflict_timeouts cl

(* Gateway dies between staging and the final intent's replication, but
   every declared write did land: recovery must conclude COMMITTED. *)
let test_recovery_commits_complete_staging () =
  let cl = make ~two_ranges:true () in
  let sim = Cluster.sim cl in
  let gw = node_in cl home 0 in
  Cluster.run cl (fun () ->
      let pri = Cluster.now_ts cl gw in
      ignore (write_ok cl ~pri ~anchor:"b" ~gateway:gw ~txn:5 ~key:"b" ~value:"v1");
      let ts = write_ok cl ~pri ~anchor:"b" ~gateway:gw ~txn:5 ~key:"n" ~value:"v2" in
      (match
         Cluster.stage_txn cl ~gateway:gw ~txn:5 ~key:"b" ~pri ~ts
           ~inflight:[ "b"; "n" ] ()
       with
      | Some (Txnrec.Staging _) -> ()
      | _ -> Alcotest.fail "stage must apply");
      (* Coordinator silence from here on: no heartbeat, no explicit
         commit. A reader blocked on the intent runs status recovery once
         the record goes stale, probes both declared keys, finds both
         replicated, and finalizes COMMITTED. *)
      Proc.sleep sim 10_000;
      let read_ts = Cluster.now_ts cl gw in
      (match
         Cluster.read cl ~gateway:gw ~txn:None ~key:"n" ~ts:read_ts
           ~max_ts:read_ts ()
       with
      | Cluster.Read_value { value; _ } ->
          check Alcotest.(option string) "recovered to COMMITTED" (Some "v2")
            value
      | _ -> Alcotest.fail "reader must see the recovered value");
      status_is cl ~gateway:gw ~txn:5 ~key:"b"
        (function Some (Txnrec.Committed _) -> true | _ -> false)
        "record finalized Committed");
  no_conflict_timeouts cl

(* Same crash, but one declared write never replicated: recovery must
   conclude ABORTED, and the prevention left behind by QueryIntent keeps
   the missing write from ever applying later. *)
let test_recovery_aborts_incomplete_staging () =
  let cl = make ~two_ranges:true () in
  let sim = Cluster.sim cl in
  let gw = node_in cl home 0 in
  Cluster.run cl (fun () ->
      let pri = Cluster.now_ts cl gw in
      let ts = write_ok cl ~pri ~anchor:"b" ~gateway:gw ~txn:6 ~key:"b" ~value:"v1" in
      (* Declare a second in-flight write that never happened. *)
      (match
         Cluster.stage_txn cl ~gateway:gw ~txn:6 ~key:"b" ~pri ~ts
           ~inflight:[ "b"; "n" ] ()
       with
      | Some (Txnrec.Staging _) -> ()
      | _ -> Alcotest.fail "stage must apply");
      Proc.sleep sim 10_000;
      let read_ts = Cluster.now_ts cl gw in
      (match
         Cluster.read cl ~gateway:gw ~txn:None ~key:"b" ~ts:read_ts
           ~max_ts:read_ts ()
       with
      | Cluster.Read_value { value; _ } ->
          check Alcotest.(option string) "aborted txn left nothing" None value
      | _ -> Alcotest.fail "reader must get a value after recovery");
      status_is cl ~gateway:gw ~txn:6 ~key:"b"
        (function
          | Some (Txnrec.Aborted { wound = true; _ }) -> true | _ -> false)
        "record finalized Aborted by recovery";
      (* The declared-but-missing write arrives late (the pipelined
         proposal finally lands): prevention must reject it. *)
      match
        Cluster.write cl ~pri ~anchor:"b" ~gateway:gw ~txn:6 ~key:"n"
          ~value:(Some "late") ~ts ()
      with
      | Cluster.Write_err _ -> ()
      | Cluster.Write_ok _ -> Alcotest.fail "prevented write must not apply"
      | Cluster.Write_wounded _ -> Alcotest.fail "expected prevention error");
  no_conflict_timeouts cl

(* QueryIntent itself: Found for a replicated intent at the queried
   timestamp, Missing (with prevention) for an absent one. *)
let test_query_intent_verdicts () =
  let cl = make () in
  let gw = node_in cl home 0 in
  Cluster.run cl (fun () ->
      let pri = Cluster.now_ts cl gw in
      let ts = write_ok cl ~pri ~anchor:"k" ~gateway:gw ~txn:7 ~key:"k" ~value:"v" in
      (match Cluster.query_intent cl ~gateway:gw ~txn:7 ~key:"k" ~ts () with
      | `Found -> ()
      | `Missing | `Unknown -> Alcotest.fail "replicated intent must be Found");
      match Cluster.query_intent cl ~gateway:gw ~txn:7 ~key:"q" ~ts () with
      | `Missing -> ()
      | `Found | `Unknown -> Alcotest.fail "absent intent must be Missing")

(* ------------------------------------------------------------------ *)
(* Commit races wound: the anchor range's log decides                  *)

(* A coordinator committing and an older pusher wounding propose into the
   same anchor-range Raft log at (nearly) the same instant. Whichever
   applies first must win, both observers must agree with the applied
   record, and the intent's final state must match the verdict. Swept over
   several offsets around the push delay to land on both sides of the
   race. *)
let test_commit_vs_wound_race () =
  let outcomes = ref [] in
  List.iter
    (fun commit_after ->
      let cl = make () in
      let sim = Cluster.sim cl in
      let gw = node_in cl home 0 in
      Cluster.run cl (fun () ->
          let pri_old = Cluster.now_ts cl gw in
          Proc.sleep sim 1_000;
          let pri_young = Cluster.now_ts cl gw in
          let ts =
            write_ok cl ~pri:pri_young ~anchor:"k" ~gateway:gw ~txn:2 ~key:"k"
              ~value:"young"
          in
          (* The older transaction blocks and will propose U_wound one push
             delay after parking. *)
          let pusher =
            Proc.async sim (fun () ->
                Cluster.write cl ~pri:pri_old ~anchor:"k" ~gateway:gw ~txn:1
                  ~key:"k" ~value:(Some "old")
                  ~ts:(Cluster.now_ts cl gw) ())
          in
          Proc.sleep sim commit_after;
          let commit_view = Cluster.commit_txn cl ~gateway:gw ~txn:2 ~key:"k" ~ts () in
          (match Proc.await pusher with
          | Cluster.Write_ok _ -> ()
          | Cluster.Write_wounded e | Cluster.Write_err e ->
              Alcotest.failf "older writer must eventually win the key: %s" e);
          let final = Cluster.txn_status cl ~gateway:gw ~txn:2 ~key:"k" () in
          (match (commit_view, final) with
          | Some (Txnrec.Committed _), Some (Txnrec.Committed _) ->
              outcomes := `Commit_won :: !outcomes
          | Some (Txnrec.Aborted { wound = true; _ }),
            Some (Txnrec.Aborted { wound = true; _ }) ->
              outcomes := `Wound_won :: !outcomes
          | _ ->
              Alcotest.failf
                "coordinator and record disagree (commit_after=%dus)"
                commit_after);
          (* The key's history matches the verdict: a committed young value
             is visible below the old writer's timestamp iff commit won. *)
          let committed_young =
            match final with Some (Txnrec.Committed _) -> true | _ -> false
          in
          match
            Cluster.read cl ~gateway:gw ~txn:None ~key:"k" ~ts ~max_ts:ts ()
          with
          | Cluster.Read_value { value; _ } ->
              check
                Alcotest.(option string)
                (Printf.sprintf "value agrees with verdict (+%dus)" commit_after)
                (if committed_young then Some "young" else None)
                value
          | _ -> Alcotest.fail "read at commit ts must return"))
    [ 60_000; 90_000; 100_000; 110_000; 140_000 ];
  (* The sweep must actually exercise both orders of the race. *)
  check Alcotest.bool "commit won at least once" true
    (List.mem `Commit_won !outcomes);
  check Alcotest.bool "wound won at least once" true
    (List.mem `Wound_won !outcomes)

let suite =
  [
    Alcotest.test_case "record state machine, first decision wins" `Quick
      test_record_state_machine;
    Alcotest.test_case "record follows its anchor through a split" `Quick
      test_record_follows_split;
    Alcotest.test_case "record survives a merge" `Quick
      test_record_survives_merge;
    Alcotest.test_case "heartbeat RPCs keep the record live" `Quick
      test_heartbeat_rpc_keeps_record_live;
    Alcotest.test_case "fresh STAGING is never wounded" `Quick
      test_staging_not_wounded;
    Alcotest.test_case "recovery commits a complete staging" `Quick
      test_recovery_commits_complete_staging;
    Alcotest.test_case "recovery aborts an incomplete staging" `Quick
      test_recovery_aborts_incomplete_staging;
    Alcotest.test_case "query intent verdicts" `Quick
      test_query_intent_verdicts;
    Alcotest.test_case "commit vs wound decided by log order" `Quick
      test_commit_vs_wound_race;
  ]
