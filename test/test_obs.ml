(* Tests for lib/obs: deterministic tracing keyed to simulated time and the
   metrics registry, exercised both in isolation (synthetic clock) and
   end-to-end through a small transaction workload. *)

module Topology = Crdb_net.Topology
module Latency = Crdb_net.Latency
module Zoneconfig = Crdb_kv.Zoneconfig
module Cluster = Crdb_kv.Cluster
module Txn = Crdb_txn.Txn
module Obs = Crdb_obs.Obs
module Trace = Crdb_obs.Trace
module Metrics = Crdb_obs.Metrics

let check = Alcotest.check
let regions = Latency.table1_regions
let home = "us-east1"

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* Boot a one-range cluster, enable tracing, and commit a handful of
   transactions from the home region. Everything is seeded, so two calls
   must observe the exact same history. *)
let run_workload () =
  let topo = Topology.symmetric ~regions ~nodes_per_region:3 in
  let cl = Cluster.create ~topology:topo ~latency:Latency.table1 () in
  let zone =
    Zoneconfig.derive ~regions ~home ~survival:Zoneconfig.Zone
      ~placement:Zoneconfig.Default
  in
  ignore
    (Cluster.add_range cl ~span:("a", "zzzz") ~zone
       ~policy:(Cluster.Lag 3_000_000)
      : int);
  Cluster.settle cl;
  Obs.enable_tracing (Cluster.obs cl);
  let mgr = Txn.create_manager cl in
  let gw = (List.hd (Topology.nodes_in_region topo home)).Topology.id in
  Cluster.run cl (fun () ->
      for i = 0 to 3 do
        match
          Txn.run mgr ~gateway:gw (fun t ->
              Txn.put t (Printf.sprintf "k%d" i) (string_of_int i);
              ignore (Txn.get t "k0" : string option))
        with
        | Ok () -> ()
        | Error e -> Alcotest.failf "txn failed: %a" Txn.pp_error e
      done);
  cl

let test_trace_determinism () =
  let a = Cluster.obs (run_workload ()) in
  let b = Cluster.obs (run_workload ()) in
  check Alcotest.bool "trace recorded something" true
    (Trace.num_records (Obs.trace a) > 0);
  check Alcotest.int "same record count"
    (Trace.num_records (Obs.trace a))
    (Trace.num_records (Obs.trace b));
  check Alcotest.bool "byte-identical chrome export" true
    (String.equal
       (Trace.to_chrome_json (Obs.trace a))
       (Trace.to_chrome_json (Obs.trace b)));
  check Alcotest.bool "byte-identical metrics snapshot" true
    (String.equal
       (Metrics.to_json (Obs.metrics a))
       (Metrics.to_json (Obs.metrics b)))

let test_span_tree_covers_layers () =
  let obs = Cluster.obs (run_workload ()) in
  let json = Trace.to_chrome_json (Obs.trace obs) in
  List.iter
    (fun name ->
      check Alcotest.bool (Printf.sprintf "export contains %s" name) true
        (contains ~needle:(Printf.sprintf "\"name\":\"%s\"" name) json))
    [ "txn.run"; "txn.attempt"; "kv.write"; "raft.replicate"; "net.rpc" ];
  (* The tree renderer agrees with the JSON export about what was traced. *)
  let tree = Format.asprintf "%a" Trace.pp_tree (Obs.trace obs) in
  check Alcotest.bool "tree mentions txn.run" true
    (contains ~needle:"txn.run" tree)

let test_workload_metrics () =
  let obs = Cluster.obs (run_workload ()) in
  let m = Obs.metrics obs in
  check Alcotest.int "txn.commits" 4 (Metrics.total m "txn.commits");
  check Alcotest.bool "txn.attempts >= commits" true
    (Metrics.total m "txn.attempts" >= 4);
  check Alcotest.bool "net.msgs_sent > 0" true
    (Metrics.total m "net.msgs_sent" > 0);
  check Alcotest.bool "raft.appends_sent > 0" true
    (Metrics.total m "raft.appends_sent" > 0);
  check Alcotest.int "one commit-wait sample per commit" 4
    (Crdb_stats.Hist.count (Metrics.merged_hist m "txn.commit_wait"));
  check Alcotest.bool "names include net.delay" true
    (List.mem "net.delay" (Metrics.names m))

let test_disabled_tracing_is_noop () =
  let now = ref 0 in
  let t = Trace.create ~now:(fun () -> !now) () in
  let sp = Trace.span t ~node:0 "should.vanish" in
  Trace.annotate sp "k" "v";
  Trace.event t "also.vanishes";
  Trace.finish t sp;
  check Alcotest.(option int) "disabled span has no id" None (Trace.span_id sp);
  check Alcotest.int "nothing recorded" 0 (Trace.num_records t)

let test_synthetic_trace_export () =
  let now = ref 0 in
  let t = Trace.create ~now:(fun () -> !now) () in
  Trace.enable t;
  let root = Trace.span t ~node:1 "root.op" in
  now := 10;
  let child = Trace.span t ~parent:root ~node:1 ~txn:42 "child.op" in
  Trace.annotate child "key" "value";
  now := 25;
  Trace.finish t child;
  Trace.event t ~parent:root ~node:1 "tick" ~attrs:[ ("n", "1") ];
  now := 40;
  Trace.finish t root;
  check Alcotest.int "three records" 3 (Trace.num_records t);
  let json = Trace.to_chrome_json t in
  List.iter
    (fun needle ->
      check Alcotest.bool (Printf.sprintf "json has %s" needle) true
        (contains ~needle json))
    [
      "\"displayTimeUnit\"";
      "\"name\":\"root.op\"";
      "\"name\":\"child.op\"";
      "\"dur\":15";
      "\"ph\":\"i\"";
      "\"key\":\"value\"";
    ];
  Trace.clear t;
  check Alcotest.int "clear resets" 0 (Trace.num_records t)

let test_metrics_scoping () =
  let m = Metrics.create () in
  let a = Metrics.counter m ~node:0 "c" in
  let b = Metrics.counter m ~node:1 "c" in
  let a' = Metrics.counter m ~node:0 "c" in
  Metrics.inc a;
  Metrics.add b 2;
  Metrics.inc a';
  check Alcotest.int "same scope shares the cell" 2 (Metrics.value a);
  check Alcotest.int "total sums scopes" 4 (Metrics.total m "c");
  Crdb_stats.Hist.add (Metrics.histogram m ~node:0 "h") 5;
  Crdb_stats.Hist.add (Metrics.histogram m ~node:1 "h") 9;
  let merged = Metrics.merged_hist m "h" in
  check Alcotest.int "merged samples" 2 (Crdb_stats.Hist.count merged);
  check Alcotest.int "merged max" 9 (Crdb_stats.Hist.max_value merged);
  check Alcotest.bool "kind clash rejected" true
    (match Metrics.gauge m ~node:0 "c" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let suite =
  [
    Alcotest.test_case "trace determinism (same seed)" `Quick
      test_trace_determinism;
    Alcotest.test_case "span tree covers all layers" `Quick
      test_span_tree_covers_layers;
    Alcotest.test_case "workload metrics" `Quick test_workload_metrics;
    Alcotest.test_case "disabled tracing is a no-op" `Quick
      test_disabled_tracing_is_noop;
    Alcotest.test_case "synthetic trace export" `Quick
      test_synthetic_trace_export;
    Alcotest.test_case "metrics scoping" `Quick test_metrics_scoping;
  ]
