(* Tests for the SQL layer: values, DDL, localities, uniqueness checks,
   locality-optimized search, rehoming, region management, placement,
   duplicate indexes, legacy statement counting. *)

module Sim = Crdb_sim.Sim
module Proc = Crdb_sim.Proc
module Crdb = Crdb_core.Crdb
module Value = Crdb.Value
module Schema = Crdb.Schema
module Ddl = Crdb.Ddl
module Legacy = Crdb.Legacy
module Engine = Crdb.Engine
module Cluster = Crdb.Cluster
module Zoneconfig = Crdb.Zoneconfig
module Raft = Crdb_raft.Raft

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest
let regions3 = [ "us-east1"; "us-west1"; "europe-west2" ]

(* ------------------------------------------------------------------ *)
(* Values                                                              *)

let value_gen =
  QCheck.Gen.(
    oneof
      [
        return Value.V_null;
        map (fun i -> Value.V_int i) int;
        map (fun s -> Value.V_string s) (small_string ~gen:printable);
        map (fun s -> Value.V_region s) (small_string ~gen:(char_range 'a' 'z'));
      ])

let value_arb = QCheck.make ~print:Value.to_display value_gen

let prop_row_roundtrip =
  QCheck.Test.make ~name:"row encode/decode roundtrip" ~count:300
    (QCheck.list value_arb)
    (fun vs -> Value.decode_row (Value.encode_row vs) = vs)

let prop_int_key_order =
  QCheck.Test.make ~name:"int key encoding preserves order" ~count:300
    QCheck.(pair (int_range (-1000000) 1000000) (int_range (-1000000) 1000000))
    (fun (a, b) ->
      let ka = Value.encode_key_part (Value.V_int a)
      and kb = Value.encode_key_part (Value.V_int b) in
      Int.compare a b = String.compare ka kb
      || (a = b && String.equal ka kb))

let prop_string_key_no_separator =
  QCheck.Test.make ~name:"string key encoding never contains '/'" ~count:300
    QCheck.(string_gen QCheck.Gen.(char_range ' ' '~'))
    (fun s ->
      not (String.contains (Value.encode_key_part (Value.V_string s)) '/'))

(* ------------------------------------------------------------------ *)
(* Schema fixtures                                                     *)

let users_table =
  Schema.table ~name:"users"
    ~columns:
      [
        Schema.column "id" Schema.T_string;
        Schema.column "email" Schema.T_string;
        Schema.column "name" Schema.T_string;
      ]
    ~pkey:[ "id" ]
    ~indexes:[ { Schema.idx_name = "users_email"; idx_cols = [ "email" ]; idx_unique = true } ]
    ~locality:Schema.Regional_by_row ()

let promo_table =
  Schema.table ~name:"promo_codes"
    ~columns:
      [ Schema.column "code" Schema.T_string; Schema.column "descr" Schema.T_string ]
    ~pkey:[ "code" ] ~locality:Schema.Global ()

let fresh ?(regions = regions3) () =
  let t = Crdb.start ~regions () in
  Crdb.exec t
    (Ddl.N_create_database
       { db = "testdb"; primary = List.hd regions; regions = List.tl regions });
  t

let with_users ?regions () =
  let t = fresh ?regions () in
  Crdb.exec t (Ddl.N_create_table { db = "testdb"; table = users_table });
  (t, Crdb.database t "testdb")

let svec v = Value.V_string v

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "sql failed: %a" Engine.pp_exec_error e

let expect_aborted what = function
  | Error (Crdb.Txn.Aborted _) -> ()
  | Ok _ -> Alcotest.failf "%s: expected abort, got success" what
  | Error e -> Alcotest.failf "%s: expected abort, got %a" what Engine.pp_exec_error e

(* ------------------------------------------------------------------ *)
(* DDL and physical layout                                             *)

let test_create_database_layout () =
  let t, db = with_users () in
  check Alcotest.(list string) "regions" regions3 (Engine.regions db);
  check Alcotest.string "primary" "us-east1" (Engine.primary_region db);
  (* users is REGIONAL BY ROW: primary + unique secondary, 3 partitions
     each. *)
  let parts = Engine.partition_ranges db "users" in
  check Alcotest.int "3 primary partitions" 3 (List.length parts);
  check Alcotest.int "ranges: 2 indexes x 3 partitions" 6
    (List.length (Engine.ranges_of_table db "users"));
  List.iter
    (fun (partition, rid) ->
      match partition with
      | Some region ->
          check Alcotest.(option string) "leaseholder in partition region"
            (Some region)
            (Cluster.leaseholder_region (Crdb.cluster t) rid)
      | None -> Alcotest.fail "RBR partition must have a region")
    parts;
  (* crdb_region column auto-added, hidden. *)
  let schema = Engine.table_schema db "users" in
  match Schema.find_column schema Schema.region_column with
  | Some c -> check Alcotest.bool "hidden" true c.Schema.col_hidden
  | None -> Alcotest.fail "crdb_region not added"

let test_global_table_layout () =
  let t = fresh () in
  Crdb.exec t (Ddl.N_create_table { db = "testdb"; table = promo_table });
  let db = Crdb.database t "testdb" in
  let ranges = Engine.ranges_of_table db "promo_codes" in
  check Alcotest.int "single range" 1 (List.length ranges);
  let rid = List.hd ranges in
  (match Cluster.policy_of (Crdb.cluster t) rid with
  | Cluster.Lead -> ()
  | Cluster.Lag _ -> Alcotest.fail "GLOBAL tables must close future timestamps");
  check Alcotest.(option string) "leaseholder in primary" (Some "us-east1")
    (Cluster.leaseholder_region (Crdb.cluster t) rid)

let test_regional_by_table_in_region () =
  let t = fresh () in
  let west_table =
    Schema.table ~name:"west_coast"
      ~columns:[ Schema.column "id" Schema.T_int ]
      ~pkey:[ "id" ]
      ~locality:(Schema.Regional_by_table (Some "us-west1"))
      ()
  in
  Crdb.exec t (Ddl.N_create_table { db = "testdb"; table = west_table });
  let db = Crdb.database t "testdb" in
  let rid = List.hd (Engine.ranges_of_table db "west_coast") in
  check Alcotest.(option string) "homed in us-west1" (Some "us-west1")
    (Cluster.leaseholder_region (Crdb.cluster t) rid)

let test_ddl_errors () =
  let t = fresh () in
  (try
     Crdb.exec t
       (Ddl.N_create_database
          { db = "bad"; primary = "mars-north1"; regions = [] });
     Alcotest.fail "unknown region accepted"
   with Engine.Sql_error _ -> ());
  (try
     Crdb.exec t (Ddl.N_drop_region { db = "testdb"; region = "us-east1" });
     Alcotest.fail "dropped primary region"
   with Engine.Sql_error _ -> ());
  try
    Crdb.exec t
      (Ddl.N_placement { db = "testdb"; restricted = true });
    Crdb.exec t (Ddl.N_survive { db = "testdb"; survival = Zoneconfig.Region });
    Alcotest.fail "restricted + region survival accepted"
  with Engine.Sql_error _ -> ()

let test_survive_region_changes_zones () =
  let t, db = with_users () in
  Crdb.exec t (Ddl.N_survive { db = "testdb"; survival = Zoneconfig.Region });
  check Alcotest.bool "survival recorded" true
    (Engine.survival db = Zoneconfig.Region);
  Crdb.run_for t 3_000_000;
  List.iter
    (fun rid ->
      let zone = Cluster.zone_of (Crdb.cluster t) rid in
      check Alcotest.int "5 voters everywhere" 5 zone.Zoneconfig.num_voters)
    (Engine.ranges_of_table db "users")

(* ------------------------------------------------------------------ *)
(* DML: inserts, reads, automatic partitioning                         *)

let user ?(email_suffix = "@x.io") id =
  [
    ("id", svec id);
    ("email", svec (id ^ email_suffix));
    ("name", svec ("name-" ^ id));
  ]

let test_insert_automatic_region () =
  let t, db = with_users () in
  let west = Crdb.gateway t ~region:"us-west1" () in
  Crdb.run t (fun () -> ok (Engine.insert db ~gateway:west ~table:"users" (user "u1")));
  check
    Alcotest.(option string)
    "row homed where inserted" (Some "us-west1")
    (Engine.region_of_row db ~table:"users" [ svec "u1" ]);
  (* Visible from any region. *)
  let eu = Crdb.gateway t ~region:"europe-west2" () in
  Crdb.run t (fun () ->
      match ok (Engine.select_by_pk db ~gateway:eu ~table:"users" [ svec "u1" ]) with
      | Some row ->
          check Alcotest.bool "name present" true
            (List.assoc "name" row = svec "name-u1")
      | None -> Alcotest.fail "row not found across regions")

let test_global_unique_email () =
  let t, db = with_users () in
  let west = Crdb.gateway t ~region:"us-west1" () in
  let east = Crdb.gateway t ~region:"us-east1" () in
  Crdb.run t (fun () ->
      ok (Engine.insert db ~gateway:west ~table:"users" (user "u1"));
      (* Same email, different id and different region: must be rejected by
         the global uniqueness check despite living in another partition. *)
      expect_aborted "duplicate email"
        (Engine.insert db ~gateway:east ~table:"users"
           [ ("id", svec "u2"); ("email", svec "u1@x.io"); ("name", svec "n") ]);
      (* Duplicate id likewise. *)
      expect_aborted "duplicate id"
        (Engine.insert db ~gateway:east ~table:"users" (user ~email_suffix:"@y.io" "u1"));
      ok (Engine.insert db ~gateway:east ~table:"users" (user "u3")))

let test_select_by_unique_los () =
  let t, db = with_users () in
  let sim = Cluster.sim (Crdb.cluster t) in
  let west = Crdb.gateway t ~region:"us-west1" () in
  Crdb.run t (fun () ->
      ok (Engine.insert db ~gateway:west ~table:"users" (user "local1"));
      (* Local hit: LOS avoids the fan-out entirely. *)
      let t0 = Sim.now sim in
      (match
         ok (Engine.select_by_unique db ~gateway:west ~table:"users" ~col:"email"
               (svec "local1@x.io"))
       with
      | Some _ -> ()
      | None -> Alcotest.fail "unique lookup missed");
      let local_latency = Sim.now sim - t0 in
      check Alcotest.bool
        (Printf.sprintf "local unique lookup fast (%dus)" local_latency)
        true (local_latency < 10_000))

let test_los_vs_unoptimized () =
  let t, db = with_users () in
  let sim = Cluster.sim (Crdb.cluster t) in
  let west = Crdb.gateway t ~region:"us-west1" () in
  let east = Crdb.gateway t ~region:"us-east1" () in
  Crdb.run t (fun () ->
      ok (Engine.insert db ~gateway:west ~table:"users" (user "w1"));
      (* LOS on: local read of a local row never leaves the region. *)
      let t0 = Sim.now sim in
      ignore (ok (Engine.select_by_pk db ~gateway:west ~table:"users" [ svec "w1" ]));
      let with_los = Sim.now sim - t0 in
      (* LOS off: every lookup fans out to all partitions and waits for the
         slowest, like the paper's Unoptimized variant. *)
      Engine.set_locality_optimized_search db false;
      let t1 = Sim.now sim in
      ignore (ok (Engine.select_by_pk db ~gateway:west ~table:"users" [ svec "w1" ]));
      let without_los = Sim.now sim - t1 in
      Engine.set_locality_optimized_search db true;
      check Alcotest.bool
        (Printf.sprintf "LOS local (%dus) vs unoptimized (%dus)" with_los without_los)
        true
        (with_los < 10_000 && without_los > 100_000);
      (* Remote row with LOS: local miss, then fan-out. *)
      let t2 = Sim.now sim in
      ignore (ok (Engine.select_by_pk db ~gateway:east ~table:"users" [ svec "w1" ]));
      let remote = Sim.now sim - t2 in
      check Alcotest.bool
        (Printf.sprintf "LOS remote row ~RTT (%dus)" remote)
        true
        (remote > 50_000 && remote < 200_000))

let test_computed_region_single_partition_check () =
  let t = fresh () in
  let computed =
    Schema.table ~name:"orders"
      ~columns:
        [
          Schema.column "state" Schema.T_string;
          Schema.column "oid" Schema.T_string;
          Schema.column ~default:
            (Schema.D_computed
               ( [ "state" ],
                 fun vs ->
                   match vs with
                   | [ Value.V_string "CA" ] -> Value.V_region "us-west1"
                   | _ -> Value.V_region "us-east1" ))
            ~hidden:true Schema.region_column Schema.T_region;
        ]
      ~pkey:[ "state"; "oid" ] ~locality:Schema.Regional_by_row ()
  in
  Crdb.exec t (Ddl.N_create_table { db = "testdb"; table = computed });
  let db = Crdb.database t "testdb" in
  let sim = Cluster.sim (Crdb.cluster t) in
  let west = Crdb.gateway t ~region:"us-west1" () in
  Crdb.run t (fun () ->
      (* Insert of a CA row from us-west: the region is derivable from the
         key, so the uniqueness check is partition-local and fast (§4.1,
         option 3; Fig. 4b "Computed"). *)
      let t0 = Sim.now sim in
      ok
        (Engine.insert db ~gateway:west ~table:"orders"
           [ ("state", svec "CA"); ("oid", svec "o1") ]);
      let computed_latency = Sim.now sim - t0 in
      check Alcotest.bool
        (Printf.sprintf "computed-region insert local (%dus)" computed_latency)
        true
        (computed_latency < 10_000));
  (* Inspect raw store state only after [run] has drained the post-ack
     intent resolution of the parallel commit. *)
  check
    Alcotest.(option string)
    "row in computed region" (Some "us-west1")
    (Engine.region_of_row db ~table:"orders" [ svec "CA"; svec "o1" ]);
  (* Contrast: automatic-region table pays a cross-region uniqueness check
     on insert (Fig. 4b "Default"). *)
  let t2, db2 = with_users () in
  let sim2 = Cluster.sim (Crdb.cluster t2) in
  let west2 = Crdb.gateway t2 ~region:"us-west1" () in
  Crdb.run t2 (fun () ->
      let t0 = Sim.now sim2 in
      ok (Engine.insert db2 ~gateway:west2 ~table:"users" (user "u9"));
      let default_latency = Sim.now sim2 - t0 in
      check Alcotest.bool
        (Printf.sprintf "default insert pays remote check (%dus)" default_latency)
        true
        (default_latency > 50_000))

let test_uuid_pk_skips_checks () =
  let t = fresh () in
  let events =
    Schema.table ~name:"events"
      ~columns:
        [
          Schema.column ~default:Schema.D_gen_uuid "id" Schema.T_uuid;
          Schema.column "payload" Schema.T_string;
        ]
      ~pkey:[ "id" ] ~locality:Schema.Regional_by_row ()
  in
  Crdb.exec t (Ddl.N_create_table { db = "testdb"; table = events });
  let db = Crdb.database t "testdb" in
  let sim = Cluster.sim (Crdb.cluster t) in
  let eu = Crdb.gateway t ~region:"europe-west2" () in
  Crdb.run t (fun () ->
      let t0 = Sim.now sim in
      ok
        (Engine.insert db ~gateway:eu ~table:"events"
           [ ("payload", svec "hello") ]);
      let latency = Sim.now sim - t0 in
      check Alcotest.bool
        (Printf.sprintf "uuid insert local (%dus)" latency)
        true (latency < 10_000));
  (* Raw row count only stabilizes once [run] drains post-ack resolution. *)
  check Alcotest.int "row exists" 1 (Engine.row_count db "events")

let test_rehoming () =
  let t, db = with_users () in
  let west = Crdb.gateway t ~region:"us-west1" () in
  let eu = Crdb.gateway t ~region:"europe-west2" () in
  Crdb.run t (fun () -> ok (Engine.insert db ~gateway:west ~table:"users" (user "mover")));
  (* Rehoming off (default): updates from another region leave the row. *)
  Crdb.run t (fun () ->
      ignore
        (ok
           (Engine.update_by_pk db ~gateway:eu ~table:"users" [ svec "mover" ]
              ~set:[ ("name", svec "n2") ])));
  check Alcotest.(option string) "still in us-west1" (Some "us-west1")
    (Engine.region_of_row db ~table:"users" [ svec "mover" ]);
  (* Rehoming on: the row follows the writer (§2.3.2). *)
  Engine.set_auto_rehome_override db (Some true);
  Crdb.run t (fun () ->
      ignore
        (ok
           (Engine.update_by_pk db ~gateway:eu ~table:"users" [ svec "mover" ]
              ~set:[ ("name", svec "n3") ])));
  check Alcotest.(option string) "rehomed to europe" (Some "europe-west2")
    (Engine.region_of_row db ~table:"users" [ svec "mover" ]);
  (* The secondary index moved with the row: unique lookups still work. *)
  Crdb.run t (fun () ->
      match
        ok
          (Engine.select_by_unique db ~gateway:west ~table:"users" ~col:"email"
             (svec "mover@x.io"))
      with
      | Some row -> check Alcotest.bool "updated" true (List.assoc "name" row = svec "n3")
      | None -> Alcotest.fail "unique index lost after rehoming");
  Engine.set_auto_rehome_override db None

let test_delete_and_count () =
  let t, db = with_users () in
  let gw = Crdb.gateway t ~region:"us-east1" () in
  Crdb.run t (fun () ->
      ok (Engine.insert db ~gateway:gw ~table:"users" (user "d1"));
      ok (Engine.insert db ~gateway:gw ~table:"users" (user "d2")));
  check Alcotest.int "2 rows" 2 (Engine.row_count db "users");
  Crdb.run t (fun () ->
      check Alcotest.bool "deleted" true
        (ok (Engine.delete_by_pk db ~gateway:gw ~table:"users" [ svec "d1" ]));
      check Alcotest.bool "absent" false
        (ok (Engine.delete_by_pk db ~gateway:gw ~table:"users" [ svec "d1" ])));
  check Alcotest.int "1 row" 1 (Engine.row_count db "users")

let test_fk_against_global_parent () =
  let t = fresh () in
  Crdb.exec t (Ddl.N_create_table { db = "testdb"; table = promo_table });
  (* UUID primary key: no uniqueness fan-out (§4.1), so the insert latency
     isolates the FK check. *)
  let rides =
    Schema.table ~name:"rides"
      ~columns:
        [
          Schema.column ~default:Schema.D_gen_uuid "id" Schema.T_uuid;
          Schema.column "promo" Schema.T_string;
        ]
      ~pkey:[ "id" ] ~locality:Schema.Regional_by_row
      ~fks:
        [ { Schema.fk_cols = [ "promo" ]; fk_parent = "promo_codes"; fk_parent_cols = [ "code" ] } ]
      ()
  in
  Crdb.exec t (Ddl.N_create_table { db = "testdb"; table = rides });
  let db = Crdb.database t "testdb" in
  let east = Crdb.gateway t ~region:"us-east1" () in
  let eu = Crdb.gateway t ~region:"europe-west2" () in
  let sim = Cluster.sim (Crdb.cluster t) in
  Crdb.run t (fun () ->
      ok
        (Engine.insert db ~gateway:east ~table:"promo_codes"
           [ ("code", svec "SAVE10"); ("descr", svec "ten percent") ]));
  (* Wait out the global write's visibility lead. *)
  Crdb.run_for t 1_000_000;
  Crdb.run t (fun () ->
      expect_aborted "fk violation"
        (Engine.insert db ~gateway:eu ~table:"rides" [ ("promo", svec "NOPE") ]);
      (* Valid FK: the parent check reads the GLOBAL table locally, so the
         whole remote insert stays region-local (the §2.3.3 pattern). *)
      let t0 = Sim.now sim in
      ok (Engine.insert db ~gateway:eu ~table:"rides" [ ("promo", svec "SAVE10") ]);
      let latency = Sim.now sim - t0 in
      check Alcotest.bool
        (Printf.sprintf "fk check local via GLOBAL parent (%dus)" latency)
        true (latency < 10_000))

let test_select_prefix_scan () =
  let t = fresh () in
  let lines =
    Schema.table ~name:"lines"
      ~columns:
        [
          Schema.column "w" Schema.T_int;
          Schema.column "o" Schema.T_int;
          Schema.column "n" Schema.T_int;
          Schema.column "item" Schema.T_string;
          Schema.column ~hidden:true
            ~default:
              (Schema.D_computed
                 ( [ "w" ],
                   fun vs ->
                     match vs with
                     | [ Value.V_int w ] ->
                         Value.V_region (List.nth regions3 (w mod 3))
                     | _ -> Value.V_region "us-east1" ))
            Schema.region_column Schema.T_region;
        ]
      ~pkey:[ "w"; "o"; "n" ] ~locality:Schema.Regional_by_row ()
  in
  Crdb.exec t (Ddl.N_create_table { db = "testdb"; table = lines });
  let db = Crdb.database t "testdb" in
  let gw = Crdb.gateway t ~region:"us-west1" () in
  Crdb.run t (fun () ->
      for n = 1 to 5 do
        ok
          (Engine.insert db ~gateway:gw ~table:"lines"
             [ ("w", Value.V_int 1); ("o", Value.V_int 7); ("n", Value.V_int n);
               ("item", svec (Printf.sprintf "item%d" n)) ])
      done;
      ok
        (Engine.insert db ~gateway:gw ~table:"lines"
           [ ("w", Value.V_int 1); ("o", Value.V_int 8); ("n", Value.V_int 1);
             ("item", svec "other-order") ]);
      let rows =
        ok
          (Engine.select_prefix db ~gateway:gw ~table:"lines"
             ~prefix:[ Value.V_int 1; Value.V_int 7 ] ())
      in
      check Alcotest.int "5 lines of order 7" 5 (List.length rows);
      let limited =
        ok
          (Engine.select_prefix db ~gateway:gw ~table:"lines"
             ~prefix:[ Value.V_int 1; Value.V_int 7 ] ~limit:2 ())
      in
      check Alcotest.int "limit" 2 (List.length limited))

let test_stale_select () =
  let t, db = with_users () in
  let west = Crdb.gateway t ~region:"us-west1" () in
  let au_like = Crdb.gateway t ~region:"europe-west2" () in
  let sim = Cluster.sim (Crdb.cluster t) in
  Crdb.run t (fun () -> ok (Engine.insert db ~gateway:west ~table:"users" (user "s1")));
  Crdb.run_for t 6_000_000;
  Crdb.run t (fun () ->
      let t0 = Sim.now sim in
      (match
         ok (Engine.select_by_pk_stale db ~gateway:au_like ~table:"users" [ svec "s1" ])
       with
      | Some _ -> ()
      | None -> Alcotest.fail "stale read missed row");
      let latency = Sim.now sim - t0 in
      check Alcotest.bool
        (Printf.sprintf "stale select local (%dus)" latency)
        true (latency < 10_000))

(* ------------------------------------------------------------------ *)
(* Region management and locality changes                              *)

let test_add_drop_region () =
  (* A cluster with asia nodes, but a database initially using only 3. *)
  let t = Crdb.start ~regions:(regions3 @ [ "asia-northeast1" ]) () in
  Crdb.exec t
    (Ddl.N_create_database
       { db = "testdb"; primary = "us-east1"; regions = List.tl regions3 });
  Crdb.exec t (Ddl.N_create_table { db = "testdb"; table = users_table });
  let db = Crdb.database t "testdb" in
  check Alcotest.int "3 partitions" 3 (List.length (Engine.partition_ranges db "users"));
  Crdb.exec t (Ddl.N_add_region { db = "testdb"; region = "asia-northeast1" });
  check Alcotest.int "4 partitions after add" 4
    (List.length (Engine.partition_ranges db "users"));
  let asia = Crdb.gateway t ~region:"asia-northeast1" () in
  Crdb.run t (fun () -> ok (Engine.insert db ~gateway:asia ~table:"users" (user "a1")));
  check Alcotest.(option string) "row homed in asia" (Some "asia-northeast1")
    (Engine.region_of_row db ~table:"users" [ svec "a1" ]);
  (* Dropping a region with rows homed there fails with all-or-nothing
     semantics (§2.4.1)... *)
  (try
     Crdb.exec t (Ddl.N_drop_region { db = "testdb"; region = "asia-northeast1" });
     Alcotest.fail "drop of non-empty region must fail"
   with Engine.Sql_error _ -> ());
  check Alcotest.int "rollback keeps 4 partitions" 4
    (List.length (Engine.partition_ranges db "users"));
  (* ...and succeeds once the rows are gone. *)
  Crdb.run t (fun () ->
      ignore (ok (Engine.delete_by_pk db ~gateway:asia ~table:"users" [ svec "a1" ])));
  Crdb.exec t (Ddl.N_drop_region { db = "testdb"; region = "asia-northeast1" });
  check Alcotest.int "3 partitions after drop" 3
    (List.length (Engine.partition_ranges db "users"))

let test_alter_locality_to_global () =
  let t = fresh () in
  let reference =
    Schema.table ~name:"reference"
      ~columns:[ Schema.column "k" Schema.T_string; Schema.column "v" Schema.T_string ]
      ~pkey:[ "k" ] ~locality:(Schema.Regional_by_table None) ()
  in
  Crdb.exec t (Ddl.N_create_table { db = "testdb"; table = reference });
  let db = Crdb.database t "testdb" in
  let gw = Crdb.gateway t ~region:"us-east1" () in
  Crdb.run t (fun () ->
      ok (Engine.insert db ~gateway:gw ~table:"reference"
            [ ("k", svec "k1"); ("v", svec "v1") ]));
  Crdb.exec t
    (Ddl.N_set_locality
       { db = "testdb"; table = "reference"; locality = Schema.Global });
  Crdb.run_for t 2_000_000;
  let rid = List.hd (Engine.ranges_of_table db "reference") in
  (match Cluster.policy_of (Crdb.cluster t) rid with
  | Cluster.Lead -> ()
  | Cluster.Lag _ -> Alcotest.fail "converted table must close future time");
  (* Rows survived the conversion and now serve locally everywhere. *)
  let eu = Crdb.gateway t ~region:"europe-west2" () in
  let sim = Cluster.sim (Crdb.cluster t) in
  Crdb.run t (fun () ->
      let t0 = Sim.now sim in
      (match ok (Engine.select_by_pk db ~gateway:eu ~table:"reference" [ svec "k1" ]) with
      | Some row -> check Alcotest.bool "value" true (List.assoc "v" row = svec "v1")
      | None -> Alcotest.fail "row lost in conversion");
      check Alcotest.bool "global read local" true (Sim.now sim - t0 < 5_000))

let test_alter_locality_to_rbr () =
  let t = fresh () in
  let tbl =
    Schema.table ~name:"conv"
      ~columns:[ Schema.column "k" Schema.T_string ]
      ~pkey:[ "k" ] ~locality:(Schema.Regional_by_table None) ()
  in
  Crdb.exec t (Ddl.N_create_table { db = "testdb"; table = tbl });
  let db = Crdb.database t "testdb" in
  let gw = Crdb.gateway t ~region:"us-east1" () in
  Crdb.run t (fun () ->
      ok (Engine.insert db ~gateway:gw ~table:"conv" [ ("k", svec "k1") ]));
  Crdb.exec t
    (Ddl.N_set_locality
       { db = "testdb"; table = "conv"; locality = Schema.Regional_by_row });
  check Alcotest.int "partitioned" 3 (List.length (Engine.partition_ranges db "conv"));
  (* Backfilled rows land in the primary region. *)
  check Alcotest.(option string) "row in primary" (Some "us-east1")
    (Engine.region_of_row db ~table:"conv" [ svec "k1" ]);
  check Alcotest.int "row preserved" 1 (Engine.row_count db "conv")

let test_placement_restricted () =
  let t, db = with_users () in
  Crdb.exec t (Ddl.N_placement { db = "testdb"; restricted = true });
  Crdb.run_for t 5_000_000;
  (* Regional tables keep all replicas in the home region. *)
  List.iter
    (fun (partition, rid) ->
      match partition with
      | Some region ->
          List.iter
            (fun (node, _) ->
              check Alcotest.string "replica domiciled" region
                (Crdb.Topology.region_of (Crdb.topology t) node))
            (Cluster.replica_nodes (Crdb.cluster t) rid)
      | None -> ())
    (Engine.partition_ranges db "users")

(* ------------------------------------------------------------------ *)
(* Duplicate indexes (legacy baseline)                                 *)

let test_duplicate_indexes () =
  let t = fresh () in
  let dup =
    Schema.table ~name:"refdup"
      ~columns:[ Schema.column "k" Schema.T_string; Schema.column "v" Schema.T_string ]
      ~pkey:[ "k" ]
      ~locality:(Schema.Regional_by_table None)
      ~duplicate_indexes:true ()
  in
  Crdb.exec t (Ddl.N_create_table { db = "testdb"; table = dup });
  let db = Crdb.database t "testdb" in
  (* 1 primary + 3 duplicate covering indexes. *)
  check Alcotest.int "4 ranges" 4 (List.length (Engine.ranges_of_table db "refdup"));
  let gw = Crdb.gateway t ~region:"us-east1" () in
  let sim = Cluster.sim (Crdb.cluster t) in
  Crdb.run t (fun () ->
      let t0 = Sim.now sim in
      ok (Engine.upsert db ~gateway:gw ~table:"refdup"
            [ ("k", svec "k1"); ("v", svec "v1") ]);
      let write_latency = Sim.now sim - t0 in
      (* The write must reach a leaseholder in europe: at least one WAN
         round trip. *)
      check Alcotest.bool
        (Printf.sprintf "dup-index write pays WAN (%dus)" write_latency)
        true (write_latency > 80_000));
  (* Let the asynchronous intent resolutions reach the remote duplicate
     indexes; reads before that block on the intents (the Fig. 5 tail
     mechanism). *)
  Crdb.run_for t 500_000;
  Crdb.run t (fun () ->
      (* Reads in every region are local and consistent. *)
      List.iter
        (fun region ->
          let gw = Crdb.gateway t ~region () in
          let t0 = Sim.now sim in
          (match ok (Engine.select_by_pk db ~gateway:gw ~table:"refdup" [ svec "k1" ]) with
          | Some row -> check Alcotest.bool "consistent" true (List.assoc "v" row = svec "v1")
          | None -> Alcotest.fail "dup index read missed");
          let latency = Sim.now sim - t0 in
          check Alcotest.bool
            (Printf.sprintf "dup read local in %s (%dus)" region latency)
            true (latency < 10_000))
        regions3)

(* ------------------------------------------------------------------ *)
(* Legacy statement counting (Table 2 machinery)                       *)

let movr_like_tables =
  [
    users_table;
    Schema.table ~name:"vehicles"
      ~columns:[ Schema.column "id" Schema.T_string; Schema.column "city" Schema.T_string ]
      ~pkey:[ "id" ] ~locality:Schema.Regional_by_row ();
    promo_table;
  ]

let test_legacy_counts () =
  let before op =
    Ddl.count
      (Legacy.statements ~db:"movr" ~regions:regions3 ~tables:movr_like_tables op)
  in
  let new_schema = before Legacy.New_schema in
  let convert = before Legacy.Convert_schema in
  let add = before (Legacy.Add_region "asia-northeast1") in
  let drop = before (Legacy.Drop_region "europe-west2") in
  (* Shape of Table 2: the legacy recipes are much larger than the new
     syntax, and region add/drop touches every table. *)
  check Alcotest.bool "new schema large" true (new_schema > 10);
  check Alcotest.int "convert = new minus creates" new_schema
    (convert + 1 + List.length movr_like_tables);
  check Alcotest.bool "add touches all tables" true (add >= 3);
  check Alcotest.bool "drop touches all tables" true (drop >= 3);
  (* And the statements render as SQL. *)
  let sql =
    Legacy.describe
      (Legacy.statements ~db:"movr" ~regions:regions3 ~tables:movr_like_tables
         Legacy.New_schema)
  in
  check Alcotest.bool "renders SQL" true
    (String.length sql > 0
    && String.length sql - String.length (String.concat "" (String.split_on_char '\n' sql)) + 1
       = new_schema)

let suite =
  [
    qcheck prop_row_roundtrip;
    qcheck prop_int_key_order;
    qcheck prop_string_key_no_separator;
    Alcotest.test_case "create database layout" `Quick test_create_database_layout;
    Alcotest.test_case "global table layout" `Quick test_global_table_layout;
    Alcotest.test_case "regional by table in region" `Quick
      test_regional_by_table_in_region;
    Alcotest.test_case "ddl errors" `Quick test_ddl_errors;
    Alcotest.test_case "survive region zones" `Quick test_survive_region_changes_zones;
    Alcotest.test_case "insert automatic region" `Quick test_insert_automatic_region;
    Alcotest.test_case "global unique email" `Quick test_global_unique_email;
    Alcotest.test_case "unique lookup LOS" `Quick test_select_by_unique_los;
    Alcotest.test_case "LOS vs unoptimized" `Quick test_los_vs_unoptimized;
    Alcotest.test_case "computed region checks" `Quick
      test_computed_region_single_partition_check;
    Alcotest.test_case "uuid pk skips checks" `Quick test_uuid_pk_skips_checks;
    Alcotest.test_case "rehoming" `Quick test_rehoming;
    Alcotest.test_case "delete and count" `Quick test_delete_and_count;
    Alcotest.test_case "fk against global parent" `Quick test_fk_against_global_parent;
    Alcotest.test_case "select prefix scan" `Quick test_select_prefix_scan;
    Alcotest.test_case "stale select" `Quick test_stale_select;
    Alcotest.test_case "add/drop region" `Quick test_add_drop_region;
    Alcotest.test_case "alter locality to global" `Quick test_alter_locality_to_global;
    Alcotest.test_case "alter locality to rbr" `Quick test_alter_locality_to_rbr;
    Alcotest.test_case "placement restricted" `Quick test_placement_restricted;
    Alcotest.test_case "duplicate indexes" `Quick test_duplicate_indexes;
    Alcotest.test_case "legacy counts" `Quick test_legacy_counts;
  ]
