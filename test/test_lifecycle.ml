(* Tests for the range lifecycle: splits, merges, allocator-driven
   rebalancing, and routing through the ordered span map. *)

module Sim = Crdb_sim.Sim
module Topology = Crdb_net.Topology
module Latency = Crdb_net.Latency
module Transport = Crdb_net.Transport
module Ts = Crdb_hlc.Timestamp
module Raft = Crdb_raft.Raft
module Zoneconfig = Crdb_kv.Zoneconfig
module Allocator = Crdb_kv.Allocator
module Cluster = Crdb_kv.Cluster

let check = Alcotest.check
let regions5 = Latency.table1_regions
let home = "us-east1"
let topo5 = Topology.symmetric ~regions:regions5 ~nodes_per_region:3

let zone_config ?(survival = Zoneconfig.Zone) ?(placement = Zoneconfig.Default)
    ?(home = home) () =
  Zoneconfig.derive ~regions:regions5 ~home ~survival ~placement

let make_cluster ?config () =
  Cluster.create ?config ~topology:topo5 ~latency:Latency.table1 ()

let node_in cl region i =
  (List.nth (Topology.nodes_in_region (Cluster.topology cl) region) i).Topology.id

let put cl ~gateway ~txn key value =
  let ts = Cluster.now_ts cl gateway in
  match Cluster.write cl ~gateway ~txn ~key ~value:(Some value) ~ts () with
  | Cluster.Write_wounded e | Cluster.Write_err e ->
      Alcotest.failf "write failed: %s" e
  | Cluster.Write_ok commit_ts ->
      Cluster.resolve cl ~gateway ~txn ~commit:(Some commit_ts) ~keys:[ key ]
        ~sync_all:true ();
      commit_ts

let get cl ~gateway ?txn key =
  let ts = Cluster.now_ts cl gateway in
  let max_ts = Ts.add_wall ts (Cluster.config cl).Cluster.max_offset in
  let rec go ts attempts =
    match Cluster.read cl ~inline_bump:true ~gateway ~txn ~key ~ts ~max_ts () with
    | Cluster.Read_value { value; _ } -> value
    | Cluster.Read_uncertain { value_ts } when attempts < 10 ->
        go value_ts (attempts + 1)
    | Cluster.Read_uncertain _ -> Alcotest.fail "uncertainty loop"
    | Cluster.Read_redirect -> Alcotest.fail "unexpected redirect"
    | Cluster.Read_wounded e | Cluster.Read_err e ->
        Alcotest.failf "read error: %s" e
  in
  go ts 0

let scan_keys cl ~gateway ~start_key ~end_key =
  let ts = Cluster.now_ts cl gateway in
  let max_ts = Ts.add_wall ts (Cluster.config cl).Cluster.max_offset in
  match
    Cluster.scan cl ~gateway ~txn:None ~start_key ~end_key ~ts ~max_ts
      ~limit:None ()
  with
  | Cluster.Scan_rows rows -> List.map fst rows
  | Cluster.Scan_uncertain _ -> Alcotest.fail "scan uncertain"
  | Cluster.Scan_redirect -> Alcotest.fail "scan redirect"
  | Cluster.Scan_wounded e | Cluster.Scan_err e ->
      Alcotest.failf "scan error: %s" e

(* ------------------------------------------------------------------ *)
(* Split                                                               *)

let test_split_preserves_data () =
  let cl = make_cluster () in
  let rid =
    Cluster.add_range cl ~span:("a", "z") ~zone:(zone_config ())
      ~policy:(Cluster.Lag 3_000_000)
  in
  Cluster.settle cl;
  let gw = node_in cl home 0 in
  Cluster.run cl (fun () ->
      ignore (put cl ~gateway:gw ~txn:1 "apple" "red");
      ignore (put cl ~gateway:gw ~txn:2 "orange" "juicy"));
  let right =
    match Cluster.split_range cl rid ~at:"m" with
    | Some r -> r
    | None -> Alcotest.fail "split must succeed with a settled leaseholder"
  in
  Cluster.run_for cl 3_000_000;
  check Alcotest.int "left keeps its id" rid (Cluster.range_of_key cl "apple");
  check Alcotest.int "right half routes to the new range" right
    (Cluster.range_of_key cl "orange");
  check
    Alcotest.(pair string string)
    "left span shrinks" ("a", "m") (Cluster.span_of cl rid);
  check
    Alcotest.(pair string string)
    "right span" ("m", "z")
    (Cluster.span_of cl right);
  Cluster.run cl (fun () ->
      check Alcotest.(option string) "left data survives" (Some "red")
        (get cl ~gateway:gw "apple");
      check Alcotest.(option string) "right data survives" (Some "juicy")
        (get cl ~gateway:gw "orange");
      (* Writes keep working on both halves after the split. *)
      ignore (put cl ~gateway:gw ~txn:3 "banana" "yellow");
      ignore (put cl ~gateway:gw ~txn:4 "pear" "green");
      check Alcotest.(option string) "post-split left write" (Some "yellow")
        (get cl ~gateway:gw "banana");
      check Alcotest.(option string) "post-split right write" (Some "green")
        (get cl ~gateway:gw "pear"));
  Alcotest.check_raises "split key outside span rejected"
    (Invalid_argument "Cluster.split_range: split key outside span") (fun () ->
      ignore (Cluster.split_range cl rid ~at:"zz"))

let test_merge_subsumes_right () =
  let cl = make_cluster () in
  let rid =
    Cluster.add_range cl ~span:("a", "z") ~zone:(zone_config ())
      ~policy:(Cluster.Lag 3_000_000)
  in
  Cluster.settle cl;
  let gw = node_in cl home 0 in
  Cluster.run cl (fun () ->
      ignore (put cl ~gateway:gw ~txn:1 "apple" "red");
      ignore (put cl ~gateway:gw ~txn:2 "orange" "juicy"));
  let right = Option.get (Cluster.split_range cl rid ~at:"m") in
  Cluster.run_for cl 3_000_000;
  check Alcotest.int "two ranges before merge" 2
    (List.length (Cluster.ranges cl));
  check Alcotest.bool "merge succeeds" true (Cluster.merge_range cl rid);
  check Alcotest.int "one range after merge" 1 (List.length (Cluster.ranges cl));
  check
    Alcotest.(pair string string)
    "span restored" ("a", "z") (Cluster.span_of cl rid);
  check Alcotest.int "right keys route back to the left range" rid
    (Cluster.range_of_key cl "orange");
  check Alcotest.bool "subsumed range is gone" false
    (List.mem right (Cluster.ranges cl));
  Cluster.run_for cl 2_000_000;
  Cluster.run cl (fun () ->
      check Alcotest.(option string) "left data intact" (Some "red")
        (get cl ~gateway:gw "apple");
      check Alcotest.(option string) "absorbed data readable" (Some "juicy")
        (get cl ~gateway:gw "orange");
      ignore (put cl ~gateway:gw ~txn:3 "pear" "green");
      check Alcotest.(option string) "post-merge write" (Some "green")
        (get cl ~gateway:gw "pear"))

let test_merge_requires_matching_config () =
  let cl = make_cluster () in
  let r1 =
    Cluster.add_range cl ~span:("a", "m") ~zone:(zone_config ())
      ~policy:(Cluster.Lag 3_000_000)
  in
  ignore
    (Cluster.add_range cl ~span:("m", "z")
       ~zone:(zone_config ~home:"europe-west2" ())
       ~policy:(Cluster.Lag 3_000_000));
  Cluster.settle cl;
  check Alcotest.bool "mismatched zones refuse to merge" false
    (Cluster.merge_range cl r1)

let test_merge_requires_adjacency () =
  (* A range whose right edge is not another range's left edge has no merge
     partner: merging must be refused cleanly, leaving spans and routing
     untouched. Exercises both a keyspace gap and the rightmost range. *)
  let cl = make_cluster () in
  let r1 =
    Cluster.add_range cl ~span:("a", "m") ~zone:(zone_config ())
      ~policy:(Cluster.Lag 3_000_000)
  in
  let r2 =
    Cluster.add_range cl ~span:("q", "z") ~zone:(zone_config ())
      ~policy:(Cluster.Lag 3_000_000)
  in
  Cluster.settle cl;
  check Alcotest.bool "gap on the right refuses to merge" false
    (Cluster.merge_range cl r1);
  check Alcotest.bool "rightmost range refuses to merge" false
    (Cluster.merge_range cl r2);
  check
    Alcotest.(pair string string)
    "left span untouched" ("a", "m") (Cluster.span_of cl r1);
  check
    Alcotest.(pair string string)
    "right span untouched" ("q", "z") (Cluster.span_of cl r2);
  check Alcotest.int "both ranges still route" 2 (List.length (Cluster.ranges cl));
  (* Both ranges still serve traffic after the refused merges. *)
  let gw = node_in cl home 0 in
  Cluster.run cl (fun () ->
      ignore (put cl ~gateway:gw ~txn:1 "apple" "red");
      ignore (put cl ~gateway:gw ~txn:2 "rhubarb" "tart");
      check Alcotest.(option string) "left range write" (Some "red")
        (get cl ~gateway:gw "apple");
      check Alcotest.(option string) "right range write" (Some "tart")
        (get cl ~gateway:gw "rhubarb"))

let test_hundred_splits_route () =
  let cl = make_cluster () in
  let rid =
    Cluster.add_range cl ~span:("k", "k~") ~zone:(zone_config ())
      ~policy:(Cluster.Lag 3_000_000)
  in
  Cluster.settle cl;
  let n_keys = 150 in
  let key i = Printf.sprintf "k%03d" i in
  Cluster.bulk_load cl
    (List.init n_keys (fun i -> (key i, "v" ^ string_of_int i)));
  (* Split every splittable range until the span map holds > 100 ranges. *)
  let target = 101 in
  let rec split_loop rounds =
    if rounds > 0 && List.length (Cluster.ranges cl) < target then begin
      List.iter
        (fun r ->
          if List.length (Cluster.ranges cl) < target then
            match Cluster.split_point cl r with
            | Some at -> ignore (Cluster.split_range cl r ~at)
            | None -> ())
        (Cluster.ranges cl);
      Cluster.run_for cl 2_000_000;
      split_loop (rounds - 1)
    end
  in
  split_loop 10;
  let n_ranges = List.length (Cluster.ranges cl) in
  check Alcotest.bool
    (Printf.sprintf "at least %d ranges (got %d)" target n_ranges)
    true
    (n_ranges >= target);
  (* Every key routes to a range whose span actually contains it. *)
  for i = 0 to n_keys - 1 do
    let k = key i in
    let r = Cluster.range_of_key cl k in
    let s, e = Cluster.span_of cl r in
    check Alcotest.bool ("span contains " ^ k) true (s <= k && k < e)
  done;
  check Alcotest.int "original id still routes its leftmost key" rid
    (Cluster.range_of_key cl (key 0));
  Cluster.run_for cl 5_000_000;
  let gw = node_in cl home 1 in
  Cluster.run cl (fun () ->
      check Alcotest.(option string) "read across many splits" (Some "v17")
        (get cl ~gateway:gw (key 17));
      check Alcotest.(option string) "read near the right edge" (Some "v149")
        (get cl ~gateway:gw (key 149));
      (* A single scan stitches all fragments back together. *)
      let keys = scan_keys cl ~gateway:gw ~start_key:"k" ~end_key:"k~" in
      check Alcotest.int "scan sees every row across all ranges" n_keys
        (List.length keys);
      check Alcotest.(list string) "scan ordered"
        (List.init n_keys key) keys)

(* ------------------------------------------------------------------ *)
(* Live-size accounting and load-based split points                    *)

let test_live_bytes_through_split_merge () =
  let cl = make_cluster () in
  let rid =
    Cluster.add_range cl ~span:("a", "z") ~zone:(zone_config ())
      ~policy:(Cluster.Lag 3_000_000)
  in
  Cluster.settle cl;
  let gw = node_in cl home 0 in
  Cluster.run cl (fun () ->
      ignore (put cl ~gateway:gw ~txn:1 "apple" "red");
      ignore (put cl ~gateway:gw ~txn:2 "orange" "juicy"));
  (* key + latest live value bytes: apple/red = 8, orange/juicy = 11. *)
  check Alcotest.(option int) "live bytes after writes" (Some 19)
    (Cluster.live_bytes cl rid);
  let right = Option.get (Cluster.split_range cl rid ~at:"m") in
  Cluster.run_for cl 3_000_000;
  check Alcotest.(option int) "left half keeps its bytes" (Some 8)
    (Cluster.live_bytes cl rid);
  check Alcotest.(option int) "right half carries the rest" (Some 11)
    (Cluster.live_bytes cl right);
  check Alcotest.bool "merge back" true (Cluster.merge_range cl rid);
  check Alcotest.(option int) "merge restores the total" (Some 19)
    (Cluster.live_bytes cl rid);
  (* A deletion tombstones the key: it stops counting entirely. *)
  Cluster.run cl (fun () ->
      let ts = Cluster.now_ts cl gw in
      match
        Cluster.write cl ~gateway:gw ~txn:3 ~key:"apple" ~value:None ~ts ()
      with
      | Cluster.Write_ok commit_ts ->
          Cluster.resolve cl ~gateway:gw ~txn:3 ~commit:(Some commit_ts)
            ~keys:[ "apple" ] ~sync_all:true ()
      | Cluster.Write_wounded e | Cluster.Write_err e ->
          Alcotest.failf "delete failed: %s" e);
  check Alcotest.(option int) "tombstoned key leaves the gauge" (Some 11)
    (Cluster.live_bytes cl rid)

let test_load_split_point_tracks_traffic () =
  let cl = make_cluster () in
  let rid =
    Cluster.add_range cl ~span:("a", "z") ~zone:(zone_config ())
      ~policy:(Cluster.Lag 3_000_000)
  in
  Cluster.settle cl;
  Cluster.bulk_load cl [ ("b", "1"); ("c", "2"); ("t", "3"); ("u", "4") ];
  (* No requests yet: falls back to the keyspace median. *)
  check
    Alcotest.(option string)
    "no samples falls back to split_point"
    (Cluster.split_point cl rid)
    (Cluster.load_split_point cl rid);
  (* 20 of 21 recent requests hit "t": the weighted median must follow the
     traffic, not the (b,c,t,u) keyspace. *)
  let gw = node_in cl home 0 in
  Cluster.run cl (fun () ->
      for _ = 1 to 20 do
        ignore (get cl ~gateway:gw "t")
      done;
      ignore (get cl ~gateway:gw "b"));
  check
    Alcotest.(option string)
    "weighted median is the hot key" (Some "t")
    (Cluster.load_split_point cl rid);
  (* Splitting resets the sample, so the next decision reflects post-split
     traffic only. *)
  ignore (Option.get (Cluster.split_range cl rid ~at:"t"));
  check Alcotest.(list string) "samples cleared by the split" []
    (Cluster.sampled_keys cl rid)

(* ------------------------------------------------------------------ *)
(* Allocator diversity and rebalancing                                 *)

let test_allocator_skewed_diversity () =
  (* Region survival on a skewed topology: us-west1 has three zones while
     the remaining regions have one node each. The unpinned voters must
     spread across distinct *regions* even though piling into us-west1's
     zones would also avoid zone reuse. *)
  let topo =
    Topology.create
      [
        ("us-east1", "a"); ("us-east1", "b"); ("us-east1", "c");
        ("us-west1", "a"); ("us-west1", "b"); ("us-west1", "c");
        ("europe-west2", "a");
        ("asia-northeast1", "a");
        ("australia-southeast1", "a");
      ]
  in
  let zone =
    Zoneconfig.derive ~regions:regions5 ~home ~survival:Zoneconfig.Region
      ~placement:Zoneconfig.Default
  in
  let placement =
    Allocator.place ~topology:topo ~latency:Latency.table1
      ~load:(fun _ -> 0)
      ~zone
  in
  let voters = List.filter (fun (_, k) -> k = Raft.Voter) placement in
  check Alcotest.int "five voters" 5 (List.length voters);
  let unpinned_regions =
    List.filter_map
      (fun (n, _) ->
        let r = Topology.region_of topo n in
        if String.equal r home then None else Some r)
      voters
  in
  check Alcotest.int "three unpinned voters" 3 (List.length unpinned_regions);
  check Alcotest.int "unpinned voters in three distinct regions" 3
    (List.length (List.sort_uniq String.compare unpinned_regions))

let test_lease_preference_pinning () =
  let cl = make_cluster () in
  let pref = "europe-west2" in
  (* Region survival spreads voters across regions, so there is always a
     voter outside the preferred region to push the lease to. *)
  let rid =
    Cluster.add_range cl ~span:("a", "z")
      ~zone:(zone_config ~survival:Zoneconfig.Region ~home:pref ())
      ~policy:(Cluster.Lag 3_000_000)
  in
  Cluster.settle cl;
  (match Cluster.leaseholder_region cl rid with
  | Some r -> check Alcotest.string "lease starts in preferred region" pref r
  | None -> Alcotest.fail "no leaseholder after settle");
  (* Push the lease away, then let the lease rebalancer pin it back. *)
  let away =
    match
      List.find_opt
        (fun (n, k) ->
          k = Raft.Voter && Topology.region_of (Cluster.topology cl) n <> pref)
        (Cluster.replica_nodes cl rid)
    with
    | Some (n, _) -> n
    | None -> Alcotest.fail "expected a voter outside the preferred region"
  in
  Cluster.transfer_lease cl rid ~target:away;
  Cluster.run_for cl 5_000_000;
  Cluster.rebalance_leases cl;
  Cluster.run_for cl 5_000_000;
  match Cluster.leaseholder_region cl rid with
  | Some r -> check Alcotest.string "lease pinned back" pref r
  | None -> Alcotest.fail "no leaseholder after rebalance"

let test_rebalance_convergence () =
  let cl = make_cluster () in
  let rid =
    Cluster.add_range cl ~span:("a", "z") ~zone:(zone_config ())
      ~policy:(Cluster.Lag 3_000_000)
  in
  Cluster.settle cl;
  let lh = Option.get (Cluster.leaseholder cl rid) in
  (* Kill a home-region voter that is not the leaseholder; the allocator
     must walk the replica off the dead node, one move at a time. *)
  let victim =
    match
      List.find_opt
        (fun (n, k) -> k = Raft.Voter && n <> lh)
        (Cluster.replica_nodes cl rid)
    with
    | Some (n, _) -> n
    | None -> Alcotest.fail "expected a non-leaseholder voter"
  in
  Transport.kill_node (Cluster.net cl) victim;
  Cluster.run_for cl 20_000_000;
  let rec converge steps =
    if steps = 0 then Alcotest.fail "rebalance did not converge"
    else if Cluster.rebalance_step cl rid then begin
      Cluster.run_for cl 30_000_000;
      converge (steps - 1)
    end
  in
  converge 8;
  let placement = Cluster.replica_nodes cl rid in
  check Alcotest.bool "dead node no longer holds a replica" false
    (List.mem_assoc victim placement);
  check Alcotest.int "replica count preserved"
    (Cluster.zone_of cl rid).Zoneconfig.num_replicas
    (List.length placement);
  (* A second pass finds nothing to do once the placement is clean. *)
  check Alcotest.bool "placement locally optimal" false
    (Cluster.rebalance_step cl rid);
  (* The range still serves traffic afterwards. *)
  let gw = node_in cl home 0 in
  Cluster.run cl (fun () ->
      ignore (put cl ~gateway:gw ~txn:9 "k" "v");
      check Alcotest.(option string) "write after rebalance" (Some "v")
        (get cl ~gateway:gw "k"))

let suite =
  [
    Alcotest.test_case "split preserves data" `Quick test_split_preserves_data;
    Alcotest.test_case "merge subsumes right" `Quick test_merge_subsumes_right;
    Alcotest.test_case "merge requires matching config" `Quick
      test_merge_requires_matching_config;
    Alcotest.test_case "merge requires adjacency" `Quick
      test_merge_requires_adjacency;
    Alcotest.test_case "100+ splits route" `Quick test_hundred_splits_route;
    Alcotest.test_case "live bytes through split and merge" `Quick
      test_live_bytes_through_split_merge;
    Alcotest.test_case "load split point tracks traffic" `Quick
      test_load_split_point_tracks_traffic;
    Alcotest.test_case "allocator skewed diversity" `Quick
      test_allocator_skewed_diversity;
    Alcotest.test_case "lease preference pinning" `Quick
      test_lease_preference_pinning;
    Alcotest.test_case "rebalance convergence" `Quick test_rebalance_convergence;
  ]
