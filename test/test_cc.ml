(* Tests of the concurrency-control interface: the same conflict fixtures
   run against both Cc backends (wound-wait locks and epoch-grouped OCC),
   plus epoch-specific behavior — buffered reads, boundary validation,
   validation-failure retries, and the broken mode whose lost updates the
   validation step exists to prevent. *)

module Sim = Crdb_sim.Sim
module Proc = Crdb_sim.Proc
module Topology = Crdb_net.Topology
module Latency = Crdb_net.Latency
module Zoneconfig = Crdb_kv.Zoneconfig
module Cluster = Crdb_kv.Cluster
module Txn = Crdb_txn.Txn
module Cc = Crdb_txn.Cc
module Obs = Crdb_obs.Obs
module Metrics = Crdb_obs.Metrics

let check = Alcotest.check
let regions5 = Latency.table1_regions
let home = "us-east1"
let topo5 = Topology.symmetric ~regions:regions5 ~nodes_per_region:3

let zone () =
  Zoneconfig.derive ~regions:regions5 ~home ~survival:Zoneconfig.Zone
    ~placement:Zoneconfig.Default

let make ~mode () =
  let config = { Cluster.default with Cluster.cc_mode = mode } in
  let cl = Cluster.create ~config ~topology:topo5 ~latency:Latency.table1 () in
  ignore
    (Cluster.add_range cl ~span:("a", "zzzz") ~zone:(zone ())
       ~policy:(Cluster.Lag 3_000_000));
  Cluster.settle cl;
  (cl, Txn.create_manager cl)

let node_in cl region i =
  (List.nth (Topology.nodes_in_region (Cluster.topology cl) region) i)
    .Topology.id

let metric cl name = Metrics.total (Obs.metrics (Cluster.obs cl)) name

let no_conflict_timeouts cl =
  check Alcotest.int "no conflict timeouts" 0 (metric cl "kv.conflict_timeouts")

let expect_ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "txn failed: %a" Txn.pp_error e

let backends = [ ("wound-wait", `Wound_wait); ("epoch", `Epoch_occ) ]

(* ------------------------------------------------------------------ *)
(* Fixtures shared by both backends                                    *)

(* The manager reports the backend the cluster config selected. *)
let test_mode_dispatch () =
  List.iter
    (fun (_, mode) ->
      let _, mgr = make ~mode () in
      check Alcotest.bool "manager runs the configured backend" true
        (Txn.cc_mode mgr = mode))
    backends

(* The deadlock-prone interleaving: two transactions touch the same two
   keys in opposite order with a sleep in between. Wound-wait breaks the
   lock cycle by wounding; epoch OCC never builds one (bodies are
   lock-free) and resolves the conflict at validation. Both must finish
   fast with zero conflict timeouts. *)
let test_opposite_order_commits mode () =
  let cl, mgr = make ~mode () in
  let sim = Cluster.sim cl in
  let gw = node_in cl home 0 in
  Cluster.run cl (fun () ->
      let t0 = Sim.now sim in
      let body first second name t =
        Txn.put t first (name ^ "1");
        Proc.sleep sim 300_000;
        Txn.put t second (name ^ "2")
      in
      let a =
        Proc.async sim (fun () -> Txn.run mgr ~gateway:gw (body "ka" "kb" "t1"))
      in
      let b =
        Proc.async sim (fun () -> Txn.run mgr ~gateway:gw (body "kb" "ka" "t2"))
      in
      List.iter (fun r -> expect_ok (Proc.await r)) [ a; b ];
      check Alcotest.bool "conflict resolved fast" true
        (Sim.now sim - t0 < 8_000_000));
  no_conflict_timeouts cl

(* Read-your-writes inside one attempt: a put must be visible to later gets
   and scans of the same transaction, and a delete must hide the key — even
   under epoch OCC where nothing has been flushed to MVCC yet. *)
let test_read_your_writes mode () =
  let cl, mgr = make ~mode () in
  let gw = node_in cl home 0 in
  Cluster.run cl (fun () ->
      expect_ok
        (Txn.run mgr ~gateway:gw (fun t ->
             Txn.put t "ka" "1";
             Txn.put t "kb" "2";
             Txn.put t "kb" "2'";
             check Alcotest.(option string) "own put visible" (Some "2'")
               (Txn.get t "kb");
             Txn.delete t "ka";
             check Alcotest.(option string) "own delete visible" None
               (Txn.get t "ka");
             let rows = Txn.scan t ~start_key:"k" ~end_key:"kz" () in
             check
               Alcotest.(list (pair string string))
               "scan sees the buffered state" [ ("kb", "2'") ] rows));
      (* Committed state agrees with what the transaction observed. *)
      expect_ok
        (Txn.run mgr ~gateway:gw (fun t ->
             check Alcotest.(option string) "delete committed" None
               (Txn.get t "ka");
             check Alcotest.(option string) "put committed" (Some "2'")
               (Txn.get t "kb"))));
  no_conflict_timeouts cl

(* Six concurrent read-modify-write increments of one counter: whatever the
   backend does with the conflicts (lock queues and wounds, or epoch
   validation failures and retries), the committed history must serialize —
   the counter ends at exactly 6. *)
let test_serialized_increments mode () =
  let cl, mgr = make ~mode () in
  let sim = Cluster.sim cl in
  let gw = node_in cl home 0 in
  let n = 6 in
  Cluster.run cl (fun () ->
      let clients =
        List.init n (fun i ->
            Proc.async sim (fun () ->
                Proc.sleep sim (1_000 * i);
                Txn.run mgr ~gateway:gw (fun t ->
                    let v =
                      match Txn.get t "ctr" with
                      | Some s -> int_of_string s
                      | None -> 0
                    in
                    Proc.sleep sim 5_000;
                    Txn.put t "ctr" (string_of_int (v + 1)))))
      in
      List.iter (fun r -> expect_ok (Proc.await r)) clients;
      let final =
        expect_ok (Txn.run mgr ~gateway:gw (fun t -> Txn.get t "ctr"))
      in
      check Alcotest.(option string) "all increments serialized"
        (Some (string_of_int n)) final);
  no_conflict_timeouts cl

(* The locking-read API works under both backends: FOR SHARE / FOR UPDATE
   reads return the current value and the transaction still commits. (What
   the lock actually pins down is backend-specific and covered by the
   lock-table tests; here we pin the interface.) *)
let test_locking_reads_commit mode () =
  let cl, mgr = make ~mode () in
  let gw = node_in cl home 0 in
  Cluster.run cl (fun () ->
      expect_ok (Txn.run mgr ~gateway:gw (fun t -> Txn.put t "ka" "v0"));
      expect_ok
        (Txn.run mgr ~gateway:gw (fun t ->
             check Alcotest.(option string) "FOR SHARE reads the value"
               (Some "v0") (Txn.get_for_share t "ka");
             check Alcotest.(option string) "FOR UPDATE reads the value"
               (Some "v0")
               (Txn.get_for_update t "ka");
             Txn.put t "ka" "v1"));
      expect_ok
        (Txn.run mgr ~gateway:gw (fun t ->
             check Alcotest.(option string) "write after locking reads landed"
               (Some "v1") (Txn.get t "ka"))));
  no_conflict_timeouts cl

(* ------------------------------------------------------------------ *)
(* Epoch-specific behavior                                             *)

(* A conflicting pair inside one epoch: the loser's boundary validation
   fails (counted in txn.epoch_validation_failures), it restarts, and both
   increments still land. *)
let test_epoch_validation_failure_retries () =
  let cl, mgr = make ~mode:`Epoch_occ () in
  let sim = Cluster.sim cl in
  let gw = node_in cl home 0 in
  Cluster.run cl (fun () ->
      let incr_once () =
        Txn.run mgr ~gateway:gw (fun t ->
            let v =
              match Txn.get t "ctr" with Some s -> int_of_string s | None -> 0
            in
            Proc.sleep sim 2_000;
            Txn.put t "ctr" (string_of_int (v + 1)))
      in
      let a = Proc.async sim incr_once in
      let b = Proc.async sim incr_once in
      List.iter (fun r -> expect_ok (Proc.await r)) [ a; b ];
      let final =
        expect_ok (Txn.run mgr ~gateway:gw (fun t -> Txn.get t "ctr"))
      in
      check Alcotest.(option string) "both increments landed" (Some "2") final);
  check Alcotest.bool "the loser failed validation" true
    (metric cl "txn.epoch_validation_failures" >= 1);
  check Alcotest.bool "epochs ticked" true (metric cl "txn.epoch_ticks" >= 1);
  check Alcotest.bool "writers validated at boundaries" true
    (metric cl "txn.epoch_commits" >= 2);
  no_conflict_timeouts cl

(* Read-only transactions are valid at their snapshot and skip epoch
   coordination entirely: no boundary wait, no epoch commit counted. *)
let test_epoch_read_only_skips_boundary () =
  let cl, mgr = make ~mode:`Epoch_occ () in
  let sim = Cluster.sim cl in
  let gw = node_in cl home 0 in
  Cluster.run cl (fun () ->
      expect_ok (Txn.run mgr ~gateway:gw (fun t -> Txn.put t "ka" "v"));
      let writes = metric cl "txn.epoch_commits" in
      let t0 = Sim.now sim in
      expect_ok
        (Txn.run mgr ~gateway:gw (fun t ->
             check Alcotest.(option string) "reads the committed value"
               (Some "v") (Txn.get t "ka")));
      check Alcotest.bool "read-only commit did not wait for an epoch" true
        (Sim.now sim - t0
        < (Cluster.config cl).Cluster.epoch_interval);
      check Alcotest.int "no epoch commit for a read-only txn" writes
        (metric cl "txn.epoch_commits"));
  no_conflict_timeouts cl

(* Teeth: epoch validation is exactly the commit-time read refresh, so the
   deliberately broken unsafe_no_refresh mode turns concurrent increments
   into lost updates. If this fixture ever reaches 6, the broken mode
   stopped biting and the chaos gate that relies on it is vacuous. *)
let test_epoch_broken_mode_loses_updates () =
  let cl, mgr = make ~mode:`Epoch_occ () in
  let sim = Cluster.sim cl in
  let gw = node_in cl home 0 in
  Txn.set_options mgr
    { (Txn.options mgr) with Txn.Options.unsafe_no_refresh = true };
  let n = 6 in
  Cluster.run cl (fun () ->
      let clients =
        List.init n (fun i ->
            Proc.async sim (fun () ->
                Proc.sleep sim (1_000 * i);
                Txn.run mgr ~gateway:gw (fun t ->
                    let v =
                      match Txn.get t "ctr" with
                      | Some s -> int_of_string s
                      | None -> 0
                    in
                    Proc.sleep sim 5_000;
                    Txn.put t "ctr" (string_of_int (v + 1)))))
      in
      List.iter (fun r -> expect_ok (Proc.await r)) clients;
      let final =
        match expect_ok (Txn.run mgr ~gateway:gw (fun t -> Txn.get t "ctr")) with
        | Some s -> int_of_string s
        | None -> 0
      in
      check Alcotest.bool
        (Printf.sprintf "updates lost without validation (counter = %d)" final)
        true
        (final < n));
  check Alcotest.int "validation was skipped, so no failures counted" 0
    (metric cl "txn.epoch_validation_failures")

let backend_cases name f =
  List.map
    (fun (label, mode) ->
      Alcotest.test_case (Printf.sprintf "%s [%s]" name label) `Quick (f mode))
    backends

let suite =
  [
    Alcotest.test_case "manager dispatches the configured backend" `Quick
      test_mode_dispatch;
  ]
  @ backend_cases "opposite-order conflict commits" test_opposite_order_commits
  @ backend_cases "read-your-writes in one attempt" test_read_your_writes
  @ backend_cases "concurrent increments serialize" test_serialized_increments
  @ backend_cases "locking reads commit" test_locking_reads_commit
  @ [
      Alcotest.test_case "epoch validation failure retries and converges"
        `Quick test_epoch_validation_failure_retries;
      Alcotest.test_case "epoch read-only txns skip the boundary" `Quick
        test_epoch_read_only_skips_boundary;
      Alcotest.test_case "epoch unsafe_no_refresh loses updates" `Quick
        test_epoch_broken_mode_loses_updates;
    ]
