(* Tests for wound-wait conflict resolution: the lock table, the push/wound
   protocol, abandoned-intent recovery, and the consolidated Txn.Options.
   Every scenario that used to hang until the 10 s conflict timeout must now
   finish in bounded time with [kv.conflict_timeouts = 0]. *)

module Sim = Crdb_sim.Sim
module Proc = Crdb_sim.Proc
module Topology = Crdb_net.Topology
module Latency = Crdb_net.Latency
module Ts = Crdb_hlc.Timestamp
module Zoneconfig = Crdb_kv.Zoneconfig
module Cluster = Crdb_kv.Cluster
module Txnrec = Crdb_kv.Txnrec
module Txn = Crdb_txn.Txn
module Obs = Crdb_obs.Obs
module Metrics = Crdb_obs.Metrics

let check = Alcotest.check
let regions5 = Latency.table1_regions
let home = "us-east1"
let topo5 = Topology.symmetric ~regions:regions5 ~nodes_per_region:3

let zone () =
  Zoneconfig.derive ~regions:regions5 ~home ~survival:Zoneconfig.Zone
    ~placement:Zoneconfig.Default

(* One or two ranges over the test keyspace, leaseholders settled. *)
let make ?(two_ranges = false) () =
  let cl = Cluster.create ~topology:topo5 ~latency:Latency.table1 () in
  let policy = Cluster.Lag 3_000_000 in
  if two_ranges then begin
    ignore (Cluster.add_range cl ~span:("a", "m") ~zone:(zone ()) ~policy);
    ignore (Cluster.add_range cl ~span:("m", "zzzz") ~zone:(zone ()) ~policy)
  end
  else ignore (Cluster.add_range cl ~span:("a", "zzzz") ~zone:(zone ()) ~policy);
  Cluster.settle cl;
  (cl, Txn.create_manager cl)

let node_in cl region i =
  (List.nth (Topology.nodes_in_region (Cluster.topology cl) region) i)
    .Topology.id

let no_conflict_timeouts cl =
  check Alcotest.int "no conflict timeouts" 0
    (Metrics.total (Obs.metrics (Cluster.obs cl)) "kv.conflict_timeouts")

let expect_ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "txn failed: %a" Txn.pp_error e

let write_ok ?pri ?anchor cl ~gateway ~txn ~key ~value =
  let ts = Cluster.now_ts cl gateway in
  match
    Cluster.write cl ?pri ?anchor ~gateway ~txn ~key ~value:(Some value) ~ts ()
  with
  | Cluster.Write_ok ts -> ts
  | Cluster.Write_wounded e | Cluster.Write_err e ->
      Alcotest.failf "write %s: %s" key e

(* ------------------------------------------------------------------ *)
(* Deadlocks resolved by wounding                                      *)

(* Two transactions acquire locks in opposite order: a textbook deadlock
   that the old code could only break with the 10 s conflict timeout. *)
let test_two_txn_deadlock () =
  let cl, mgr = make () in
  let sim = Cluster.sim cl in
  let gw = node_in cl home 0 in
  Cluster.run cl (fun () ->
      let t0 = Sim.now sim in
      let body first second name t =
        Txn.put t first (name ^ "1");
        Proc.sleep sim 300_000;
        Txn.put t second (name ^ "2")
      in
      let a = Proc.async sim (fun () -> Txn.run mgr ~gateway:gw (body "ka" "kb" "t1")) in
      let b = Proc.async sim (fun () -> Txn.run mgr ~gateway:gw (body "kb" "ka" "t2")) in
      List.iter (fun r -> expect_ok (Proc.await r)) [ a; b ];
      let elapsed = Sim.now sim - t0 in
      check Alcotest.bool
        (Printf.sprintf "deadlock broken fast (took %dus)" elapsed)
        true
        (elapsed < 8_000_000));
  check Alcotest.bool "at least one wound" true ((Txn.stats mgr).Txn.wounds >= 1);
  no_conflict_timeouts cl

(* Three-transaction cycle whose lock edges span two ranges: wounding is
   driven by push RPCs routed to each blocker's anchor range, so deadlocks
   crossing range (and leaseholder) boundaries break the same way. *)
let test_three_txn_cycle_two_ranges () =
  let cl, mgr = make ~two_ranges:true () in
  let sim = Cluster.sim cl in
  let gw = node_in cl home 0 in
  Cluster.run cl (fun () ->
      let t0 = Sim.now sim in
      let body first second name t =
        Txn.put t first (name ^ "1");
        Proc.sleep sim 300_000;
        Txn.put t second (name ^ "2")
      in
      (* b, c live in the left range; n in the right: the waits-for cycle
         b -> n -> c -> b crosses the range boundary twice. *)
      let ts =
        [
          Proc.async sim (fun () -> Txn.run mgr ~gateway:gw (body "b" "n" "t1"));
          Proc.async sim (fun () -> Txn.run mgr ~gateway:gw (body "n" "c" "t2"));
          Proc.async sim (fun () -> Txn.run mgr ~gateway:gw (body "c" "b" "t3"));
        ]
      in
      List.iter (fun r -> expect_ok (Proc.await r)) ts;
      let elapsed = Sim.now sim - t0 in
      check Alcotest.bool
        (Printf.sprintf "cycle broken fast (took %dus)" elapsed)
        true
        (elapsed < 8_000_000));
  check Alcotest.bool "at least one wound" true ((Txn.stats mgr).Txn.wounds >= 1);
  no_conflict_timeouts cl

(* ------------------------------------------------------------------ *)
(* Priority: the older transaction always survives                     *)

let test_older_wins () =
  let cl, _ = make () in
  let sim = Cluster.sim cl in
  let gw = node_in cl home 0 in
  Cluster.run cl (fun () ->
      let pri_old = Cluster.now_ts cl gw in
      Proc.sleep sim 1_000;
      let pri_young = Cluster.now_ts cl gw in
      (* The younger transaction takes the lock first (its record anchors at
         the written key)... *)
      ignore
        (write_ok cl ~pri:pri_young ~anchor:"k" ~gateway:gw ~txn:2 ~key:"k"
           ~value:"young");
      (* ...and the older pushes straight through it. *)
      let t0 = Sim.now sim in
      let ts =
        write_ok cl ~pri:pri_old ~anchor:"k" ~gateway:gw ~txn:1 ~key:"k"
          ~value:"old"
      in
      check Alcotest.bool "older waited only one push delay" true
        (Sim.now sim - t0 < 1_000_000);
      (match Cluster.txn_status cl ~gateway:gw ~txn:2 ~key:"k" () with
      | Some (Txnrec.Aborted { wound = true; _ }) -> ()
      | _ -> Alcotest.fail "younger must be wounded");
      Cluster.resolve cl ~gateway:gw ~txn:1 ~commit:(Some ts) ~keys:[ "k" ]
        ~sync_all:true ();
      (* The mirror image: a younger waiter queues behind an older holder
         instead of wounding it. *)
      let pri_young2 = Cluster.now_ts cl gw in
      let held =
        write_ok cl ~pri:pri_old ~anchor:"k2" ~gateway:gw ~txn:4 ~key:"k2"
          ~value:"old2"
      in
      let young_done = ref false in
      Proc.spawn sim (fun () ->
          ignore
            (write_ok cl ~pri:pri_young2 ~anchor:"k2" ~gateway:gw ~txn:3
               ~key:"k2" ~value:"young2");
          young_done := true);
      Proc.sleep sim 1_000_000;
      check Alcotest.bool "younger still queued" false !young_done;
      (match Cluster.txn_status cl ~gateway:gw ~txn:4 ~key:"k2" () with
      | Some Txnrec.Pending -> ()
      | _ -> Alcotest.fail "older must stay pending");
      Cluster.resolve cl ~gateway:gw ~txn:4 ~commit:(Some held) ~keys:[ "k2" ]
        ~sync_all:true ();
      Proc.sleep sim 500_000;
      check Alcotest.bool "younger proceeded after release" true !young_done);
  no_conflict_timeouts cl

(* ------------------------------------------------------------------ *)
(* Abandoned transactions                                              *)

(* A transaction with a record that stops heartbeating is declared abandoned
   after the liveness window (3 heartbeat intervals) and its intents are
   cleaned up by whoever pushes it — far sooner than the 10 s timeout. *)
let test_abandoned_registered_txn () =
  let cl, _ = make () in
  let sim = Cluster.sim cl in
  let gw = node_in cl home 0 in
  let liveness = 3 * (Cluster.config cl).Cluster.txn_heartbeat_interval in
  Cluster.run cl (fun () ->
      let pri6 = Cluster.now_ts cl gw in
      ignore
        (write_ok cl ~pri:pri6 ~anchor:"k" ~gateway:gw ~txn:6 ~key:"k"
           ~value:"zombie");
      Proc.sleep sim 1_000;
      let pri7 = Cluster.now_ts cl gw in
      let t0 = Sim.now sim in
      ignore
        (write_ok cl ~pri:pri7 ~anchor:"k" ~gateway:gw ~txn:7 ~key:"k"
           ~value:"live");
      let elapsed = Sim.now sim - t0 in
      check Alcotest.bool
        (Printf.sprintf "cleanup near liveness window (took %dus)" elapsed)
        true
        (elapsed < liveness + 2_000_000);
      match Cluster.txn_status cl ~gateway:gw ~txn:6 ~key:"k" () with
      | Some (Txnrec.Aborted { wound = false; _ }) -> ()
      | _ -> Alcotest.fail "zombie must be aborted as abandoned");
  no_conflict_timeouts cl

(* A raw-API writer with no record at all gets a stub record (oldest
   priority, so never wounded) whose abandonment grace starts at the first
   push. *)
let test_abandoned_recordless_txn () =
  let cl, _ = make () in
  let sim = Cluster.sim cl in
  let gw = node_in cl home 0 in
  let liveness = 3 * (Cluster.config cl).Cluster.txn_heartbeat_interval in
  Cluster.run cl (fun () ->
      ignore (write_ok cl ~gateway:gw ~txn:8 ~key:"k" ~value:"raw");
      let pri9 = Cluster.now_ts cl gw in
      let t0 = Sim.now sim in
      ignore
        (write_ok cl ~pri:pri9 ~anchor:"k" ~gateway:gw ~txn:9 ~key:"k"
           ~value:"live");
      let elapsed = Sim.now sim - t0 in
      check Alcotest.bool
        (Printf.sprintf "stub cleaned up after grace (took %dus)" elapsed)
        true
        (elapsed < liveness + 2_000_000);
      check Alcotest.bool "grace period respected" true (elapsed >= liveness));
  no_conflict_timeouts cl

(* A transaction whose record committed but whose coordinator died before
   resolving: the pusher commit-resolves the orphan intent on its behalf. *)
let test_committed_record_resolves_intent () =
  let cl, _ = make () in
  let sim = Cluster.sim cl in
  let gw = node_in cl home 0 in
  Cluster.run cl (fun () ->
      let pri10 = Cluster.now_ts cl gw in
      let ts =
        write_ok cl ~pri:pri10 ~anchor:"k" ~gateway:gw ~txn:10 ~key:"k"
          ~value:"orphan"
      in
      (match Cluster.commit_txn cl ~gateway:gw ~txn:10 ~key:"k" ~ts () with
      | Some (Txnrec.Committed _) -> ()
      | _ -> Alcotest.fail "commit_txn must land Committed");
      (* No resolve: a non-transactional reader hits the intent, pushes,
         learns the record committed, and finishes the resolution itself. *)
      Proc.sleep sim 10_000;
      let t0 = Sim.now sim in
      let read_ts = Cluster.now_ts cl gw in
      (match
         Cluster.read cl ~gateway:gw ~txn:None ~key:"k" ~ts:read_ts
           ~max_ts:read_ts ()
       with
      | Cluster.Read_value { value; _ } ->
          check Alcotest.(option string) "committed value visible"
            (Some "orphan") value
      | _ -> Alcotest.fail "reader must see the committed value");
      check Alcotest.bool "resolved within a few push delays" true
        (Sim.now sim - t0 < 1_000_000));
  no_conflict_timeouts cl

(* ------------------------------------------------------------------ *)
(* Lock strength: SELECT FOR SHARE / FOR UPDATE                        *)

(* Shared locks are compatible with each other: the second FOR SHARE reader
   acquires immediately even while the first still holds, and both block
   nobody but writers. *)
let test_shared_shared_compatible () =
  let cl, mgr = make () in
  let sim = Cluster.sim cl in
  let gw = node_in cl home 0 in
  Cluster.run cl (fun () ->
      expect_ok (Txn.run mgr ~gateway:gw (fun t -> Txn.put t "k" "v0"));
      let t0 = Sim.now sim in
      let acquired = ref [] in
      let holder name =
        Proc.async sim (fun () ->
            Txn.run mgr ~gateway:gw (fun t ->
                ignore (Txn.get_for_share t "k");
                acquired := (name, Sim.now sim) :: !acquired;
                (* Hold the shared lock well past the other's acquire. *)
                Proc.sleep sim 400_000))
      in
      let a = holder "a" in
      Proc.sleep sim 50_000;
      let b = holder "b" in
      List.iter (fun r -> expect_ok (Proc.await r)) [ a; b ];
      List.iter
        (fun (name, at) ->
          check Alcotest.bool
            (Printf.sprintf "holder %s acquired without queueing" name)
            true
            (at - t0 < 300_000))
        !acquired);
  check Alcotest.int "no wounds between shared holders" 0
    (Txn.stats mgr).Txn.wounds;
  no_conflict_timeouts cl

(* The classic upgrade deadlock: both transactions take the shared lock,
   then both try to write the same key. Neither upgrade can proceed while
   the other's shared grip exists, so wound-wait must break the cycle —
   the older upgrades in place, the wounded younger retries and commits. *)
let test_upgrade_deadlock_wound_wait () =
  let cl, mgr = make () in
  let sim = Cluster.sim cl in
  let gw = node_in cl home 0 in
  Cluster.run cl (fun () ->
      expect_ok (Txn.run mgr ~gateway:gw (fun t -> Txn.put t "k" "0"));
      let t0 = Sim.now sim in
      let upgrader name =
        Proc.async sim (fun () ->
            Txn.run mgr ~gateway:gw (fun t ->
                ignore (Txn.get_for_share t "k");
                Proc.sleep sim 200_000;
                Txn.put t "k" name))
      in
      let a = upgrader "a" in
      Proc.sleep sim 1_000;
      let b = upgrader "b" in
      List.iter (fun r -> expect_ok (Proc.await r)) [ a; b ];
      let elapsed = Sim.now sim - t0 in
      check Alcotest.bool
        (Printf.sprintf "upgrade deadlock broken fast (took %dus)" elapsed)
        true
        (elapsed < 8_000_000);
      (* Both writes committed: the final value is whichever upgraded last. *)
      match expect_ok (Txn.run mgr ~gateway:gw (fun t -> Txn.get t "k")) with
      | Some ("a" | "b") -> ()
      | v ->
          Alcotest.failf "unexpected final value %s"
            (Option.value v ~default:"<none>"));
  (* The wound lands at the KV layer (the pusher wounds the younger's
     record and cleans its shared grip); the younger's attempt then dies on
     the commit-time refresh, so the coordinator counts a restart. *)
  check Alcotest.bool "the younger was wounded" true
    (Metrics.total (Obs.metrics (Cluster.obs cl)) "kv.txn_wounds" >= 1);
  check Alcotest.bool "the loser restarted and recommitted" true
    ((Txn.stats mgr).Txn.restarts >= 1);
  no_conflict_timeouts cl

(* A FOR UPDATE lock is exclusive: a concurrent writer queues behind it for
   the whole hold instead of sneaking its intent in. *)
let test_for_update_blocks_writer () =
  let cl, mgr = make () in
  let sim = Cluster.sim cl in
  let gw = node_in cl home 0 in
  Cluster.run cl (fun () ->
      expect_ok (Txn.run mgr ~gateway:gw (fun t -> Txn.put t "k" "v0"));
      let writer_done = ref false in
      let holder =
        Proc.async sim (fun () ->
            Txn.run mgr ~gateway:gw (fun t ->
                ignore (Txn.get_for_update t "k");
                Proc.sleep sim 500_000;
                check Alcotest.bool "writer still queued behind FOR UPDATE"
                  false !writer_done))
      in
      Proc.sleep sim 50_000;
      let writer =
        Proc.async sim (fun () ->
            let r = Txn.run mgr ~gateway:gw (fun t -> Txn.put t "k" "w") in
            writer_done := true;
            r)
      in
      List.iter (fun r -> expect_ok (Proc.await r)) [ holder; writer ];
      check Alcotest.bool "writer finished after release" true !writer_done);
  no_conflict_timeouts cl

(* ------------------------------------------------------------------ *)
(* API surface                                                         *)

let test_options_roundtrip () =
  let _, mgr = make () in
  check Alcotest.bool "defaults" true (Txn.options mgr = Txn.Options.default);
  Txn.set_options mgr
    { Txn.Options.default with Txn.Options.pipelined_writes = false };
  check Alcotest.bool "set_options applied" false
    (Txn.options mgr).Txn.Options.pipelined_writes;
  (* Single-field tweaks go through read-modify-write record updates. *)
  Txn.set_options mgr
    { (Txn.options mgr) with Txn.Options.unsafe_no_refresh = true };
  let o = Txn.options mgr in
  check Alcotest.bool "update set its field" true o.Txn.Options.unsafe_no_refresh;
  check Alcotest.bool "update preserved others" false
    o.Txn.Options.pipelined_writes;
  Txn.set_options mgr
    { (Txn.options mgr) with Txn.Options.pipelined_writes = true };
  Txn.set_options mgr
    { (Txn.options mgr) with Txn.Options.hold_locks_during_commit_wait = true };
  let o = Txn.options mgr in
  check Alcotest.bool "updates compose" true
    (o.Txn.Options.pipelined_writes
    && o.Txn.Options.hold_locks_during_commit_wait
    && o.Txn.Options.unsafe_no_refresh)

let test_config_default_idiom () =
  let cfg = { Cluster.default with Cluster.push_delay = 50_000; seed = 7 } in
  check Alcotest.int "override applied" 50_000 cfg.Cluster.push_delay;
  check Alcotest.int "other fields inherited"
    Cluster.default.Cluster.conflict_wait_timeout
    cfg.Cluster.conflict_wait_timeout;
  check Alcotest.bool "default_config is an alias" true
    (Cluster.default_config = Cluster.default);
  (* A faster push delay breaks the two-txn deadlock proportionally
     sooner. *)
  let cl = Cluster.create ~config:cfg ~topology:topo5 ~latency:Latency.table1 () in
  ignore
    (Cluster.add_range cl ~span:("a", "zzzz") ~zone:(zone ())
       ~policy:(Cluster.Lag 3_000_000));
  Cluster.settle cl;
  let mgr = Txn.create_manager cl in
  let sim = Cluster.sim cl in
  let gw = node_in cl home 0 in
  Cluster.run cl (fun () ->
      let body first second name t =
        Txn.put t first (name ^ "1");
        Proc.sleep sim 300_000;
        Txn.put t second (name ^ "2")
      in
      let a = Proc.async sim (fun () -> Txn.run mgr ~gateway:gw (body "ka" "kb" "t1")) in
      let b = Proc.async sim (fun () -> Txn.run mgr ~gateway:gw (body "kb" "ka" "t2")) in
      List.iter (fun r -> expect_ok (Proc.await r)) [ a; b ]);
  no_conflict_timeouts cl

let suite =
  [
    Alcotest.test_case "two-txn deadlock wounds and commits" `Quick
      test_two_txn_deadlock;
    Alcotest.test_case "three-txn cycle across two ranges" `Quick
      test_three_txn_cycle_two_ranges;
    Alcotest.test_case "older transaction always survives" `Quick
      test_older_wins;
    Alcotest.test_case "abandoned registered txn cleaned up" `Quick
      test_abandoned_registered_txn;
    Alcotest.test_case "recordless writer cleaned up after grace" `Quick
      test_abandoned_recordless_txn;
    Alcotest.test_case "committed record resolves orphan intent" `Quick
      test_committed_record_resolves_intent;
    Alcotest.test_case "shared locks are mutually compatible" `Quick
      test_shared_shared_compatible;
    Alcotest.test_case "upgrade deadlock resolved by wound-wait" `Quick
      test_upgrade_deadlock_wound_wait;
    Alcotest.test_case "FOR UPDATE blocks concurrent writers" `Quick
      test_for_update_blocks_writer;
    Alcotest.test_case "Txn.Options round trip" `Quick test_options_roundtrip;
    Alcotest.test_case "Cluster.default with-idiom" `Quick
      test_config_default_idiom;
  ]
