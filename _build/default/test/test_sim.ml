(* Tests for the discrete-event loop, ivars and effect-based processes. *)

module Sim = Crdb_sim.Sim
module Ivar = Crdb_sim.Ivar
module Proc = Crdb_sim.Proc

let check = Alcotest.check

let test_event_ordering () =
  let sim = Sim.create () in
  let order = ref [] in
  let record tag () = order := tag :: !order in
  Sim.schedule sim ~after:20 (record "c");
  Sim.schedule sim ~after:10 (record "a");
  Sim.schedule sim ~after:10 (record "b");
  Sim.run sim;
  check Alcotest.(list string) "time then FIFO" [ "a"; "b"; "c" ]
    (List.rev !order);
  check Alcotest.int "clock at last event" 20 (Sim.now sim)

let test_run_until () =
  let sim = Sim.create () in
  let fired = ref 0 in
  Sim.schedule sim ~after:10 (fun () -> incr fired);
  Sim.schedule sim ~after:100 (fun () -> incr fired);
  Sim.run ~until:50 sim;
  check Alcotest.int "only first fired" 1 !fired;
  check Alcotest.int "now advanced to limit" 50 (Sim.now sim);
  Sim.run sim;
  check Alcotest.int "second fires later" 2 !fired;
  check Alcotest.int "final time" 100 (Sim.now sim)

let test_timer_cancel () =
  let sim = Sim.create () in
  let fired = ref false in
  let tm = Sim.timer sim ~after:10 (fun () -> fired := true) in
  check Alcotest.bool "pending" true (Sim.timer_pending tm);
  Sim.cancel tm;
  Sim.run sim;
  check Alcotest.bool "cancelled timer does not fire" false !fired

let test_nested_schedule () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.schedule sim ~after:5 (fun () ->
      log := "outer" :: !log;
      Sim.schedule sim ~after:5 (fun () -> log := "inner" :: !log));
  Sim.run sim;
  check Alcotest.(list string) "nested" [ "outer"; "inner" ] (List.rev !log);
  check Alcotest.int "time" 10 (Sim.now sim)

let test_ivar () =
  let iv = Ivar.create () in
  let seen = ref [] in
  Ivar.on_fill iv (fun v -> seen := v :: !seen);
  check Alcotest.bool "empty" false (Ivar.is_full iv);
  Ivar.fill iv 42;
  check Alcotest.(option int) "peek" (Some 42) (Ivar.peek iv);
  check Alcotest.(list int) "waiter ran" [ 42 ] !seen;
  Ivar.on_fill iv (fun v -> seen := (v * 2) :: !seen);
  check Alcotest.(list int) "late waiter runs immediately" [ 84; 42 ] !seen;
  check Alcotest.bool "try_fill on full" false (Ivar.try_fill iv 0);
  Alcotest.check_raises "double fill" (Invalid_argument "Ivar.fill: already full")
    (fun () -> Ivar.fill iv 0)

let test_proc_sleep_sequencing () =
  let sim = Sim.create () in
  let log = ref [] in
  let result =
    Proc.run_main sim (fun () ->
        log := ("start", Sim.now sim) :: !log;
        Proc.sleep sim 100;
        log := ("mid", Sim.now sim) :: !log;
        Proc.sleep sim 50;
        log := ("end", Sim.now sim) :: !log;
        Sim.now sim)
  in
  check Alcotest.int "returns" 150 result;
  check
    Alcotest.(list (pair string int))
    "timeline"
    [ ("start", 0); ("mid", 100); ("end", 150) ]
    (List.rev !log)

let test_proc_await () =
  let sim = Sim.create () in
  let iv = Ivar.create () in
  Sim.schedule sim ~after:30 (fun () -> Ivar.fill iv "hello");
  let v, at =
    Proc.run_main sim (fun () ->
        let v = Proc.await iv in
        (v, Sim.now sim))
  in
  check Alcotest.string "value" "hello" v;
  check Alcotest.int "woke at fill time" 30 at

let test_proc_await_timeout () =
  let sim = Sim.create () in
  let iv : int Ivar.t = Ivar.create () in
  let r =
    Proc.run_main sim (fun () -> Proc.await_timeout sim iv ~timeout:100)
  in
  check Alcotest.(option int) "timed out" None r;
  let sim2 = Sim.create () in
  let iv2 = Ivar.create () in
  Sim.schedule sim2 ~after:10 (fun () -> Ivar.fill iv2 5);
  let r2 =
    Proc.run_main sim2 (fun () -> Proc.await_timeout sim2 iv2 ~timeout:100)
  in
  check Alcotest.(option int) "filled first" (Some 5) r2

let test_proc_parallel_rpcs () =
  let sim = Sim.create () in
  let total =
    Proc.run_main sim (fun () ->
        let worker d = Proc.async sim (fun () -> Proc.sleep sim d; d) in
        let ivs = List.map worker [ 30; 10; 20 ] in
        let results = Proc.await_all ivs in
        check Alcotest.int "parallel, not serial" 30 (Sim.now sim);
        List.fold_left ( + ) 0 results)
  in
  check Alcotest.int "all results" 60 total

let test_proc_await_any () =
  let sim = Sim.create () in
  let winner =
    Proc.run_main sim (fun () ->
        let mk d v = Proc.async sim (fun () -> Proc.sleep sim d; v) in
        Proc.await_any sim [ mk 50 "slow"; mk 5 "fast"; mk 20 "mid" ])
  in
  check Alcotest.string "fastest wins" "fast" winner

let test_run_main_deadlock () =
  let sim = Sim.create () in
  let iv : unit Ivar.t = Ivar.create () in
  Alcotest.check_raises "deadlock detected"
    (Failure "Proc.run_main: event queue drained before completion") (fun () ->
      Proc.run_main sim (fun () -> Proc.await iv))

let test_determinism () =
  let run () =
    let sim = Sim.create () in
    let rng = Crdb_stdx.Rng.create ~seed:99 in
    let log = ref [] in
    for i = 1 to 50 do
      Sim.schedule sim ~after:(Crdb_stdx.Rng.int rng 1000) (fun () ->
          log := (i, Sim.now sim) :: !log)
    done;
    Sim.run sim;
    !log
  in
  check Alcotest.bool "identical runs" true (run () = run ())

let suite =
  [
    Alcotest.test_case "event ordering" `Quick test_event_ordering;
    Alcotest.test_case "run until" `Quick test_run_until;
    Alcotest.test_case "timer cancel" `Quick test_timer_cancel;
    Alcotest.test_case "nested schedule" `Quick test_nested_schedule;
    Alcotest.test_case "ivar" `Quick test_ivar;
    Alcotest.test_case "proc sleep" `Quick test_proc_sleep_sequencing;
    Alcotest.test_case "proc await" `Quick test_proc_await;
    Alcotest.test_case "proc await_timeout" `Quick test_proc_await_timeout;
    Alcotest.test_case "proc parallel" `Quick test_proc_parallel_rpcs;
    Alcotest.test_case "proc await_any" `Quick test_proc_await_any;
    Alcotest.test_case "run_main deadlock" `Quick test_run_main_deadlock;
    Alcotest.test_case "determinism" `Quick test_determinism;
  ]
