test/test_storage.ml: Alcotest Crdb_hlc Crdb_storage Int List QCheck QCheck_alcotest
