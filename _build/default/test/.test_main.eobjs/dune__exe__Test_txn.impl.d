test/test_txn.ml: Alcotest Crdb_hlc Crdb_kv Crdb_net Crdb_sim Crdb_stdx Crdb_txn List Option Printf String
