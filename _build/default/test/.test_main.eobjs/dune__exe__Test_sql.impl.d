test/test_sql.ml: Alcotest Crdb_core Crdb_raft Crdb_sim Int List Printf QCheck QCheck_alcotest String
