test/test_net.ml: Alcotest Array Crdb_net Crdb_sim List Printf String
