test/test_main.ml: Alcotest Test_clock_skew Test_hlc Test_integration Test_kv Test_net Test_raft Test_sim Test_sql Test_stdx Test_storage Test_txn Test_workload
