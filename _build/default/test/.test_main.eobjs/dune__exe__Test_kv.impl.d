test/test_kv.ml: Alcotest Array Crdb_hlc Crdb_kv Crdb_net Crdb_raft Crdb_sim Hashtbl List Option Printf String
