test/test_raft.ml: Alcotest Array Crdb_raft Crdb_sim Crdb_stdx List Option Printf QCheck QCheck_alcotest String
