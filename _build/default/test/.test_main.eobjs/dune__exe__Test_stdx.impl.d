test/test_stdx.ml: Alcotest Array Crdb_stdx Fun Int List QCheck QCheck_alcotest
