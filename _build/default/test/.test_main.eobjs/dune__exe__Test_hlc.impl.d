test/test_hlc.ml: Alcotest Crdb_hlc List QCheck QCheck_alcotest
