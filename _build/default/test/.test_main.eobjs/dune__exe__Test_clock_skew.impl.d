test/test_clock_skew.ml: Alcotest Crdb_hlc Crdb_kv Crdb_net Crdb_sim Crdb_stdx Crdb_txn List Option String
