test/test_integration.ml: Alcotest Crdb_core Crdb_sim List Printf
