test/test_sim.ml: Alcotest Crdb_sim Crdb_stdx List
