test/test_workload.ml: Alcotest Crdb_core Crdb_stats Crdb_workload List Printf
