(* End-to-end integration tests combining layers: multi-region transaction
   atomicity, online region addition under load, and consistency of the
   duplicate-indexes topology. *)

module Sim = Crdb_sim.Sim
module Proc = Crdb_sim.Proc
module Crdb = Crdb_core.Crdb
module Value = Crdb.Value
module Schema = Crdb.Schema
module Ddl = Crdb.Ddl
module Engine = Crdb.Engine
module Cluster = Crdb.Cluster

let check = Alcotest.check
let regions3 = [ "us-east1"; "us-west1"; "europe-west2" ]
let svec s = Value.V_string s

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "sql failed: %a" Engine.pp_exec_error e

(* A transaction writing rows homed in two different regions is atomic:
   no reader ever observes one write without the other. *)
let test_cross_region_atomicity () =
  let t = Crdb.start ~regions:regions3 () in
  Crdb.exec t
    (Ddl.N_create_database
       { db = "pairs"; primary = "us-east1"; regions = List.tl regions3 });
  let table =
    Schema.table ~name:"entries"
      ~columns:
        [ Schema.column "id" Schema.T_string; Schema.column "v" Schema.T_int ]
      ~pkey:[ "id" ] ~locality:Schema.Regional_by_row ()
  in
  Crdb.exec t (Ddl.N_create_table { db = "pairs"; table });
  let db = Crdb.database t "pairs" in
  let east = Crdb.gateway t ~region:"us-east1" () in
  let west = Crdb.gateway t ~region:"us-west1" () in
  (* Seed a pair of rows, one homed in each region (explicit regions). *)
  Engine.bulk_insert db ~table:"entries" ~region:"us-east1"
    [ [ ("id", svec "left"); ("v", Value.V_int 0) ] ];
  Engine.bulk_insert db ~table:"entries" ~region:"us-west1"
    [ [ ("id", svec "right"); ("v", Value.V_int 0) ] ];
  Crdb.settle t;
  let sim = Cluster.sim (Crdb.cluster t) in
  let violations = ref 0 and observations = ref 0 in
  let reader_done = ref false in
  Crdb.run t (fun () ->
      (* Writer: keep bumping both rows to the same value, transactionally,
         until the reader has collected its samples. *)
      Proc.spawn sim (fun () ->
          let v = ref 0 in
          while not !reader_done do
            incr v;
            let v = !v in
            ok
              (Engine.in_txn db ~gateway:east (fun tc ->
                   ignore
                     (Engine.t_update_by_pk tc ~table:"entries" [ svec "left" ]
                        ~set:[ ("v", Value.V_int v) ]);
                   ignore
                     (Engine.t_update_by_pk tc ~table:"entries" [ svec "right" ]
                        ~set:[ ("v", Value.V_int v) ])));
            (* Leave windows between writes: under continuous conflicting
               writes a remote read-refresh loop can starve, as in any
               optimistic-refresh system. *)
            Proc.sleep sim 300_000
          done);
      (* Reader: both rows in one transaction must always agree. *)
      for _ = 1 to 20 do
        (match
           Engine.in_txn db ~gateway:west (fun tc ->
               let get id =
                 match Engine.t_select_by_pk tc ~table:"entries" [ svec id ] with
                 | Some row -> List.assoc "v" row
                 | None -> Alcotest.fail "row missing"
               in
               (get "left", get "right"))
         with
        | Ok (l, r) ->
            incr observations;
            if not (Value.equal l r) then incr violations
        | Error _ -> ());
        Proc.sleep sim 25_000
      done;
      reader_done := true);
  check Alcotest.bool "observed enough" true (!observations >= 15);
  check Alcotest.int "no torn transactions" 0 !violations

(* ADD REGION while a workload is running: no errors, rows keep flowing, and
   the new region immediately homes its own writes. *)
let test_add_region_under_load () =
  let all = regions3 @ [ "asia-northeast1" ] in
  let t = Crdb.start ~regions:all () in
  Crdb.exec t
    (Ddl.N_create_database
       { db = "live"; primary = "us-east1"; regions = [ "us-west1"; "europe-west2" ] });
  let table =
    Schema.table ~name:"events"
      ~columns:
        [
          Schema.column ~default:Schema.D_gen_uuid "id" Schema.T_uuid;
          Schema.column "src" Schema.T_string;
        ]
      ~pkey:[ "id" ] ~locality:Schema.Regional_by_row ()
  in
  Crdb.exec t (Ddl.N_create_table { db = "live"; table });
  let db = Crdb.database t "live" in
  let sim = Cluster.sim (Crdb.cluster t) in
  let errors = ref 0 and writes = ref 0 in
  let stop = ref false in
  let spawn_writer region =
    let gw = Crdb.gateway t ~region () in
    Proc.spawn sim (fun () ->
        while not !stop do
          (match
             Engine.insert db ~gateway:gw ~table:"events" [ ("src", svec region) ]
           with
          | Ok () -> incr writes
          | Error _ -> incr errors);
          Proc.sleep sim 40_000
        done)
  in
  (* Drive load from the three original regions... *)
  Crdb.run t (fun () ->
      List.iter spawn_writer regions3;
      Proc.sleep sim 1_000_000);
  (* ...add a region while they keep writing... *)
  Crdb.exec t (Ddl.N_add_region { db = "live"; region = "asia-northeast1" });
  check Alcotest.int "4 partitions now" 4
    (List.length (Engine.partition_ranges db "events"));
  (* ...then write from the new region too. *)
  Crdb.run t (fun () ->
      spawn_writer "asia-northeast1";
      Proc.sleep sim 2_000_000;
      stop := true;
      Proc.sleep sim 300_000);
  check Alcotest.int "no write errors through the schema change" 0 !errors;
  check Alcotest.bool "writes flowed" true (!writes > 50);
  check Alcotest.bool "rows landed" true
    (Engine.row_count db "events" >= !writes)

(* Duplicate indexes stay consistent with the primary: a committed write is
   eventually visible through every region's covering index, and reads are
   never able to observe two different committed values at the same time
   across regions for a quiesced key. *)
let test_duplicate_index_consistency () =
  let t = Crdb.start ~regions:regions3 () in
  Crdb.exec t
    (Ddl.N_create_database
       { db = "dup"; primary = "us-east1"; regions = List.tl regions3 });
  let table =
    Schema.table ~name:"ref"
      ~columns:
        [ Schema.column "k" Schema.T_string; Schema.column "v" Schema.T_string ]
      ~pkey:[ "k" ]
      ~locality:(Schema.Regional_by_table None)
      ~duplicate_indexes:true ()
  in
  Crdb.exec t (Ddl.N_create_table { db = "dup"; table });
  let db = Crdb.database t "dup" in
  let east = Crdb.gateway t ~region:"us-east1" () in
  Crdb.run t (fun () ->
      for v = 1 to 5 do
        ok
          (Engine.upsert db ~gateway:east ~table:"ref"
             [ ("k", svec "cfg"); ("v", svec (string_of_int v)) ])
      done);
  Crdb.run_for t 1_000_000;
  (* After quiescing, every region reads the same, final value locally. *)
  Crdb.run t (fun () ->
      List.iter
        (fun region ->
          let gw = Crdb.gateway t ~region () in
          let t0 = Sim.now (Cluster.sim (Crdb.cluster t)) in
          (match ok (Engine.select_by_pk db ~gateway:gw ~table:"ref" [ svec "cfg" ]) with
          | Some row ->
              check Alcotest.bool
                (Printf.sprintf "final value in %s" region)
                true
                (List.assoc "v" row = svec "5")
          | None -> Alcotest.fail "row missing");
          let latency = Sim.now (Cluster.sim (Crdb.cluster t)) - t0 in
          check Alcotest.bool
            (Printf.sprintf "local read in %s (%dus)" region latency)
            true (latency < 10_000))
        regions3)

(* Rehomed rows remain reachable through every access path: primary key,
   unique secondary index, and stale reads. *)
let test_rehoming_preserves_all_paths () =
  let t = Crdb.start ~regions:regions3 () in
  Crdb.exec t
    (Ddl.N_create_database
       { db = "moving"; primary = "us-east1"; regions = List.tl regions3 });
  let table =
    Schema.table ~name:"profiles"
      ~columns:
        [
          Schema.column "id" Schema.T_string;
          Schema.column "handle" Schema.T_string;
          Schema.column "bio" Schema.T_string;
        ]
      ~pkey:[ "id" ]
      ~indexes:
        [ { Schema.idx_name = "handle_key"; idx_cols = [ "handle" ]; idx_unique = true } ]
      ~locality:Schema.Regional_by_row ~auto_rehome:true ()
  in
  Crdb.exec t (Ddl.N_create_table { db = "moving"; table });
  let db = Crdb.database t "moving" in
  let east = Crdb.gateway t ~region:"us-east1" () in
  let eu = Crdb.gateway t ~region:"europe-west2" () in
  Crdb.run t (fun () ->
      ok
        (Engine.insert db ~gateway:east ~table:"profiles"
           [ ("id", svec "p1"); ("handle", svec "@ada"); ("bio", svec "v1") ]));
  (* The user moves to Europe; an update from there rehomes the row. *)
  Crdb.run t (fun () ->
      ignore
        (ok
           (Engine.update_by_pk db ~gateway:eu ~table:"profiles" [ svec "p1" ]
              ~set:[ ("bio", svec "v2") ])));
  check Alcotest.(option string) "rehomed" (Some "europe-west2")
    (Engine.region_of_row db ~table:"profiles" [ svec "p1" ]);
  (* Every path still finds exactly the new value, from either side. *)
  Crdb.run t (fun () ->
      List.iter
        (fun gw ->
          (match ok (Engine.select_by_pk db ~gateway:gw ~table:"profiles" [ svec "p1" ]) with
          | Some row -> check Alcotest.bool "pk path" true (List.assoc "bio" row = svec "v2")
          | None -> Alcotest.fail "pk lookup lost the row");
          match
            ok
              (Engine.select_by_unique db ~gateway:gw ~table:"profiles"
                 ~col:"handle" (svec "@ada"))
          with
          | Some row ->
              check Alcotest.bool "unique path" true (List.assoc "bio" row = svec "v2")
          | None -> Alcotest.fail "unique lookup lost the row")
        [ east; eu ]);
  (* The handle remains globally unique after the move. *)
  Crdb.run t (fun () ->
      match
        Engine.insert db ~gateway:east ~table:"profiles"
          [ ("id", svec "p2"); ("handle", svec "@ada"); ("bio", svec "x") ]
      with
      | Error (Crdb.Txn.Aborted _) -> ()
      | Ok () -> Alcotest.fail "uniqueness lost after rehoming"
      | Error e -> Alcotest.failf "unexpected: %a" Engine.pp_exec_error e);
  (* Stale reads find it on the nearest replica once closed. *)
  Crdb.run_for t 5_000_000;
  Crdb.run t (fun () ->
      match ok (Engine.select_by_pk_stale db ~gateway:east ~table:"profiles" [ svec "p1" ]) with
      | Some _ -> ()
      | None -> Alcotest.fail "stale path lost the row")

let suite =
  [
    Alcotest.test_case "cross-region atomicity" `Quick test_cross_region_atomicity;
    Alcotest.test_case "add region under load" `Quick test_add_region_under_load;
    Alcotest.test_case "duplicate index consistency" `Quick
      test_duplicate_index_consistency;
    Alcotest.test_case "rehoming preserves paths" `Quick
      test_rehoming_preserves_all_paths;
  ]
