(* Tests for hybrid logical clock timestamps and per-node clocks. *)

module Ts = Crdb_hlc.Timestamp
module Clock = Crdb_hlc.Clock

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

let ts_gen =
  QCheck.Gen.(
    map2
      (fun w l -> Ts.make ~wall:w ~logical:l)
      (int_bound 1_000_000) (int_bound 100))

let ts_arb = QCheck.make ~print:Ts.to_string ts_gen

let test_ordering () =
  let a = Ts.make ~wall:5 ~logical:0 and b = Ts.make ~wall:5 ~logical:1 in
  check Alcotest.bool "wall ties broken by logical" true Ts.(a < b);
  check Alcotest.bool "next greater" true Ts.(Ts.next a > a);
  check Alcotest.bool "prev smaller" true Ts.(Ts.prev b < b);
  check Alcotest.bool "prev of logical" true (Ts.equal (Ts.prev b) a);
  check Alcotest.bool "add_wall" true
    (Ts.equal (Ts.add_wall a 10) (Ts.make ~wall:15 ~logical:0))

let test_prev_zero_raises () =
  Alcotest.check_raises "prev zero"
    (Invalid_argument "Timestamp.prev: zero has no predecessor") (fun () ->
      ignore (Ts.prev Ts.zero))

let prop_total_order =
  QCheck.Test.make ~name:"timestamp compare is a total order" ~count:300
    (QCheck.triple ts_arb ts_arb ts_arb)
    (fun (a, b, c) ->
      Ts.compare a b = -Ts.compare b a
      && (if Ts.compare a b <= 0 && Ts.compare b c <= 0 then
            Ts.compare a c <= 0
          else true)
      && Ts.equal (Ts.max a b) (Ts.max b a)
      && Ts.equal (Ts.min a b) (Ts.min b a))

let prop_next_adjacent =
  QCheck.Test.make ~name:"no timestamp between t and next t" ~count:300 ts_arb
    (fun t ->
      let n = Ts.next t in
      Ts.(n > t) && Ts.equal (Ts.prev n) t)

let test_clock_monotonic () =
  let time = ref 0 in
  let c = Clock.create ~now_micros:(fun () -> !time) () in
  let a = Clock.now c in
  let b = Clock.now c in
  check Alcotest.bool "monotonic at same phys time" true Ts.(b > a);
  time := 100;
  let d = Clock.now c in
  check Alcotest.bool "advances with phys" true (Ts.wall d = 100)

let test_clock_update_ratchets () =
  let time = ref 50 in
  let c = Clock.create ~now_micros:(fun () -> !time) () in
  ignore (Clock.now c);
  let remote = Ts.make ~wall:500 ~logical:3 in
  Clock.update c remote;
  let after_update = Clock.now c in
  check Alcotest.bool "now above observed remote ts" true Ts.(after_update > remote)

let test_clock_skew () =
  let time = ref 1000 in
  let c = Clock.create ~skew_micros:(-200) ~now_micros:(fun () -> !time) () in
  check Alcotest.int "skewed phys" 800 (Clock.physical_now c);
  Clock.set_skew c 500;
  check Alcotest.int "skew updated" 1500 (Clock.physical_now c);
  let c2 = Clock.create ~skew_micros:(-5000) ~now_micros:(fun () -> !time) () in
  check Alcotest.int "clamped at zero" 0 (Clock.physical_now c2)

let prop_clock_never_regresses =
  QCheck.Test.make ~name:"clock reads never regress under updates" ~count:100
    QCheck.(list (pair bool ts_arb))
    (fun events ->
      let time = ref 0 in
      let c = Clock.create ~now_micros:(fun () -> !time) () in
      let last = ref Ts.zero in
      List.for_all
        (fun (advance, ts) ->
          if advance then time := !time + 10;
          Clock.update c ts;
          let now = Clock.now c in
          let ok = Ts.(now > !last) in
          last := now;
          ok)
        events)

let suite =
  [
    Alcotest.test_case "ordering" `Quick test_ordering;
    Alcotest.test_case "prev zero raises" `Quick test_prev_zero_raises;
    qcheck prop_total_order;
    qcheck prop_next_adjacent;
    Alcotest.test_case "clock monotonic" `Quick test_clock_monotonic;
    Alcotest.test_case "clock update ratchets" `Quick test_clock_update_ratchets;
    Alcotest.test_case "clock skew" `Quick test_clock_skew;
    qcheck prop_clock_never_regresses;
  ]
