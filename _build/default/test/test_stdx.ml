(* Unit and property tests for the stdx substrate: heap, vec, rng, zipf. *)

module Heap = Crdb_stdx.Heap
module Vec = Crdb_stdx.Vec
module Rng = Crdb_stdx.Rng

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

let test_heap_basic () =
  let h = Heap.create ~cmp:Int.compare in
  check Alcotest.bool "empty" true (Heap.is_empty h);
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3 ];
  check Alcotest.int "size" 5 (Heap.size h);
  check Alcotest.(option int) "peek" (Some 1) (Heap.peek h);
  let drained = List.init 5 (fun _ -> Heap.pop_exn h) in
  check Alcotest.(list int) "sorted drain" [ 1; 1; 3; 4; 5 ] drained;
  check Alcotest.(option int) "pop empty" None (Heap.pop h)

let test_heap_pop_exn_empty () =
  let h = Heap.create ~cmp:Int.compare in
  Alcotest.check_raises "raises" (Invalid_argument "Heap.pop_exn: empty heap")
    (fun () -> ignore (Heap.pop_exn h))

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:Int.compare in
      List.iter (Heap.push h) xs;
      let drained = List.init (List.length xs) (fun _ -> Heap.pop_exn h) in
      drained = List.sort Int.compare xs)

let test_vec () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v i
  done;
  check Alcotest.int "length" 100 (Vec.length v);
  check Alcotest.int "get" 42 (Vec.get v 42);
  check Alcotest.(option int) "last" (Some 99) (Vec.last v);
  Vec.set v 0 7;
  check Alcotest.int "set" 7 (Vec.get v 0);
  check Alcotest.(list int) "sub_list" [ 97; 98; 99 ] (Vec.sub_list v ~pos:97);
  Vec.truncate v 10;
  check Alcotest.int "truncate" 10 (Vec.length v);
  Alcotest.check_raises "oob"
    (Invalid_argument "Vec.get: index 10 out of bounds (len 10)") (fun () ->
      ignore (Vec.get v 10))

let test_rng_deterministic () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  let xs = List.init 50 (fun _ -> Rng.int a 1000) in
  let ys = List.init 50 (fun _ -> Rng.int b 1000) in
  check Alcotest.(list int) "same stream" xs ys;
  let c = Rng.create ~seed:8 in
  let zs = List.init 50 (fun _ -> Rng.int c 1000) in
  check Alcotest.bool "different seeds differ" true (xs <> zs)

let test_rng_split_independent () =
  let a = Rng.create ~seed:7 in
  let child = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.int a 100) in
  let ys = List.init 20 (fun _ -> Rng.int child 100) in
  check Alcotest.bool "streams diverge" true (xs <> ys)

let prop_rng_int_bounds =
  QCheck.Test.make ~name:"Rng.int within bounds" ~count:500
    QCheck.(pair small_int (int_range 1 10_000))
    (fun (seed, bound) ->
      let rng = Rng.create ~seed in
      let x = Rng.int rng bound in
      x >= 0 && x < bound)

let prop_rng_float_bounds =
  QCheck.Test.make ~name:"Rng.float within bounds" ~count:500 QCheck.small_int
    (fun seed ->
      let rng = Rng.create ~seed in
      let x = Rng.float rng 3.5 in
      x >= 0.0 && x < 3.5)

let test_exponential_mean () =
  let rng = Rng.create ~seed:42 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng ~mean:5.0
  done;
  let mean = !sum /. float_of_int n in
  check Alcotest.bool "mean close to 5" true (abs_float (mean -. 5.0) < 0.2)

let test_zipf_bounds_and_skew () =
  let rng = Rng.create ~seed:1 in
  let d = Rng.Zipf.create ~n:1000 () in
  let counts = Array.make 1000 0 in
  for _ = 1 to 50_000 do
    let k = Rng.Zipf.sample d rng in
    check Alcotest.bool "in range" true (k >= 0 && k < 1000);
    counts.(k) <- counts.(k) + 1
  done;
  (* Rank 0 must be much hotter than rank 500 under theta = 0.99. *)
  check Alcotest.bool "zipf skew" true (counts.(0) > 20 * (counts.(500) + 1))

let test_zipf_scrambled_spreads () =
  let rng = Rng.create ~seed:1 in
  let d = Rng.Zipf.create ~n:1000 () in
  let counts = Array.make 1000 0 in
  for _ = 1 to 50_000 do
    let k = Rng.Zipf.scrambled_sample d rng in
    counts.(k) <- counts.(k) + 1
  done;
  (* The hottest key should no longer be key 0. *)
  let hottest = ref 0 in
  Array.iteri (fun i c -> if c > counts.(!hottest) then hottest := i) counts;
  check Alcotest.bool "hot key scrambled away from 0" true (!hottest <> 0)

let test_shuffle_permutation () =
  let rng = Rng.create ~seed:3 in
  let arr = Array.init 100 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort Int.compare sorted;
  check Alcotest.(array int) "permutation" (Array.init 100 Fun.id) sorted

let suite =
  [
    Alcotest.test_case "heap basic" `Quick test_heap_basic;
    Alcotest.test_case "heap pop_exn empty" `Quick test_heap_pop_exn_empty;
    qcheck prop_heap_sorts;
    Alcotest.test_case "vec" `Quick test_vec;
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng split" `Quick test_rng_split_independent;
    qcheck prop_rng_int_bounds;
    qcheck prop_rng_float_bounds;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "zipf bounds+skew" `Quick test_zipf_bounds_and_skew;
    Alcotest.test_case "zipf scrambled" `Quick test_zipf_scrambled_spreads;
    Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
  ]
