(* §6.2.3: behaviour under clock skew.

   Single-key linearizability relies on clocks staying within
   max_clock_offset; serializability does not. These tests pin both claims:
   with skew inside the bound, global-table reads never miss completed
   writes; with a clock slower than the bound, a stale read becomes possible
   (the documented failure mode) — yet the bank invariant (serializability)
   still holds. *)

module Sim = Crdb_sim.Sim
module Proc = Crdb_sim.Proc
module Topology = Crdb_net.Topology
module Latency = Crdb_net.Latency
module Ts = Crdb_hlc.Timestamp
module Zoneconfig = Crdb_kv.Zoneconfig
module Cluster = Crdb_kv.Cluster
module Txn = Crdb_txn.Txn

let check = Alcotest.check
let regions5 = Latency.table1_regions
let topo5 = Topology.symmetric ~regions:regions5 ~nodes_per_region:3

let make ~policy =
  let cl = Cluster.create ~topology:topo5 ~latency:Latency.table1 () in
  let zone =
    Zoneconfig.derive ~regions:regions5 ~home:"us-east1"
      ~survival:Zoneconfig.Zone ~placement:Zoneconfig.Default
  in
  ignore (Cluster.add_range cl ~span:("a", "z") ~zone ~policy);
  Cluster.settle cl;
  (cl, Txn.create_manager cl)

let node_in cl region i =
  (List.nth (Topology.nodes_in_region (Cluster.topology cl) region) i)
    .Topology.id

let expect_ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "txn failed: %a" Txn.pp_error e

(* With every clock inside the tolerated bound, a read that begins after a
   write's acknowledgement must observe it — even from the most skewed
   node. *)
let test_bounded_skew_preserves_linearizability () =
  let cl, mgr = make ~policy:Cluster.Lead in
  let offset = (Cluster.config cl).Cluster.max_offset in
  let writer = node_in cl "us-east1" 0 in
  let reader = node_in cl "us-west1" 0 in
  (* Put the reader's clock at the slow edge of the tolerated bound. *)
  Cluster.set_clock_skew cl reader (-(offset / 2));
  Cluster.set_clock_skew cl writer (offset / 2);
  Cluster.run cl (fun () ->
      for v = 1 to 3 do
        expect_ok
          (Txn.run mgr ~gateway:writer (fun t ->
               Txn.put t "k" (string_of_int v)));
        (* The write has been acknowledged; any subsequent read must see it. *)
        let seen =
          expect_ok (Txn.run_fresh_read mgr ~gateway:reader (fun ro -> Txn.ro_get ro "k"))
        in
        check Alcotest.(option string) "read-after-ack sees the write"
          (Some (string_of_int v))
          seen
      done)

(* A clock slower than max_clock_offset can produce a stale read on a
   GLOBAL table — the §6.2.3 caveat. We do not assert that it always
   happens, only demonstrate the mechanism: with the violating skew the
   fresh write (still in its future window) escapes the reader's uncertainty
   interval. *)
let test_excessive_skew_can_go_stale () =
  let cl, mgr = make ~policy:Cluster.Lead in
  let offset = (Cluster.config cl).Cluster.max_offset in
  let writer = node_in cl "us-east1" 0 in
  let reader = node_in cl "us-west1" 0 in
  Cluster.set_clock_skew cl writer 0;
  Cluster.run cl (fun () ->
      expect_ok (Txn.run mgr ~gateway:writer (fun t -> Txn.put t "k" "v1"));
      expect_ok (Txn.run mgr ~gateway:writer (fun t -> Txn.put t "k" "v2")));
  (* Immediately after the v2 ack, read with a clock 3x beyond the bound. *)
  Cluster.set_clock_skew cl reader (-3 * offset);
  let seen =
    Cluster.run cl (fun () ->
        expect_ok (Txn.run_fresh_read mgr ~gateway:reader (fun ro -> Txn.ro_get ro "k")))
  in
  check Alcotest.bool "stale read is possible beyond the bound" true
    (seen = Some "v1" || seen = Some "v2");
  (* Within-bound reader is correct again. *)
  Cluster.set_clock_skew cl reader 0;
  Cluster.run_for cl 1_000_000;
  let seen =
    Cluster.run cl (fun () ->
        expect_ok (Txn.run_fresh_read mgr ~gateway:reader (fun ro -> Txn.ro_get ro "k")))
  in
  check Alcotest.(option string) "healthy clock reads fresh" (Some "v2") seen

(* Serializability does not depend on clocks (§6.2.3): even with a skew
   violation, concurrent transfers preserve the bank invariant. *)
let test_skew_does_not_break_serializability () =
  let cl, mgr = make ~policy:(Cluster.Lag 3_000_000) in
  let offset = (Cluster.config cl).Cluster.max_offset in
  (* Violate the bound on purpose on two gateways. *)
  Cluster.set_clock_skew cl (node_in cl "us-west1" 0) (-3 * offset);
  Cluster.set_clock_skew cl (node_in cl "europe-west2" 0) (2 * offset);
  let accounts = [ "a1"; "a2"; "a3"; "a4" ] in
  Cluster.run cl (fun () ->
      expect_ok
        (Txn.run mgr ~gateway:(node_in cl "us-east1" 0) (fun t ->
             List.iter (fun a -> Txn.put t a "100") accounts)));
  (* Let the funding fall behind even the most skewed clock's snapshot. *)
  Cluster.run_for cl 2_000_000;
  let rng = Crdb_stdx.Rng.create ~seed:5 in
  let remaining = ref 12 in
  let finished = Crdb_sim.Ivar.create () in
  Cluster.run cl (fun () ->
      for i = 0 to 11 do
        let region = List.nth regions5 (i mod 5) in
        let gw = node_in cl region 0 in
        Proc.spawn (Cluster.sim cl) (fun () ->
            let a = List.nth accounts (Crdb_stdx.Rng.int rng 4) in
            let b = List.nth accounts (Crdb_stdx.Rng.int rng 4) in
            (match
               Txn.run mgr ~gateway:gw (fun t ->
                   if not (String.equal a b) then begin
                     let va = int_of_string (Option.get (Txn.get t a)) in
                     let vb = int_of_string (Option.get (Txn.get t b)) in
                     Txn.put t a (string_of_int (va - 7));
                     Txn.put t b (string_of_int (vb + 7))
                   end)
             with
            | Ok () | Error _ -> ());
            decr remaining;
            if !remaining = 0 then Crdb_sim.Ivar.fill finished ())
      done;
      Proc.await finished;
      let total =
        List.fold_left
          (fun acc a ->
            acc
            + int_of_string
                (Option.get
                   (expect_ok
                      (Txn.run_fresh_read mgr ~gateway:(node_in cl "us-east1" 1)
                         (fun ro -> Txn.ro_get ro a)))))
          0 accounts
      in
      check Alcotest.int "invariant holds despite skew" 400 total)

let suite =
  [
    Alcotest.test_case "bounded skew linearizable" `Quick
      test_bounded_skew_preserves_linearizability;
    Alcotest.test_case "excessive skew can go stale" `Quick
      test_excessive_skew_can_go_stale;
    Alcotest.test_case "skew never breaks serializability" `Quick
      test_skew_does_not_break_serializability;
  ]
