(* Quickstart: boot a 3-region cluster, create a multi-region database with
   the declarative SQL abstractions, and watch where latency comes from.

   Run with:  dune exec examples/quickstart.exe *)

module Crdb = Crdb_core.Crdb
module Value = Crdb.Value
module Schema = Crdb.Schema
module Ddl = Crdb.Ddl
module Engine = Crdb.Engine

let regions = [ "us-east1"; "us-west1"; "europe-west2" ]
let svec s = Value.V_string s

let ok = function
  | Ok v -> v
  | Error e -> Format.kasprintf failwith "unexpected error: %a" Engine.pp_exec_error e

let () =
  (* 1. Boot a simulated cluster: 3 regions x 3 nodes, real GCP latencies. *)
  let t = Crdb.start ~regions () in

  (* 2. Declarative multi-region DDL (§2). *)
  Crdb.exec t
    (Ddl.N_create_database
       { db = "app"; primary = "us-east1"; regions = [ "us-west1"; "europe-west2" ] });
  Crdb.exec t
    (Ddl.N_create_table
       {
         db = "app";
         table =
           Schema.table ~name:"users"
             ~columns:
               [
                 Schema.column "id" Schema.T_string;
                 Schema.column "email" Schema.T_string;
               ]
             ~pkey:[ "id" ]
             ~indexes:
               [ { Schema.idx_name = "email_key"; idx_cols = [ "email" ]; idx_unique = true } ]
             ~locality:Schema.Regional_by_row ()
       });
  Crdb.exec t
    (Ddl.N_create_table
       {
         db = "app";
         table =
           Schema.table ~name:"settings"
             ~columns:
               [ Schema.column "name" Schema.T_string; Schema.column "value" Schema.T_string ]
             ~pkey:[ "name" ] ~locality:Schema.Global ()
       });
  let db = Crdb.database t "app" in
  Format.printf "regions: %s (primary %s)@."
    (String.concat ", " (Engine.regions db))
    (Engine.primary_region db);

  let eu = Crdb.gateway t ~region:"europe-west2" () in
  let us = Crdb.gateway t ~region:"us-east1" () in

  let time label f =
    let t0 = Crdb.sim_now t in
    let v = f () in
    Format.printf "%-52s %6.1f ms@." label
      (float_of_int (Crdb.sim_now t - t0) /. 1000.0);
    v
  in

  (* 3. REGIONAL BY ROW: rows live where they are written. *)
  Crdb.run t (fun () ->
      time "INSERT user from europe (homed in europe)" (fun () ->
          ok
            (Engine.insert db ~gateway:eu ~table:"users"
               [ ("id", svec "u-eu"); ("email", svec "amelie@example.com") ]));
      ignore
        (time "SELECT that user from europe (local partition)" (fun () ->
             ok (Engine.select_by_pk db ~gateway:eu ~table:"users" [ svec "u-eu" ])));
      ignore
        (time "SELECT the same user from us-east (LOS fans out)" (fun () ->
             ok (Engine.select_by_pk db ~gateway:us ~table:"users" [ svec "u-eu" ])));
      (* The email is globally unique even though partitions are per region. *)
      (match
         Engine.insert db ~gateway:us ~table:"users"
           [ ("id", svec "u-us"); ("email", svec "amelie@example.com") ]
       with
      | Error _ -> Format.printf "duplicate email correctly rejected across regions@."
      | Ok () -> failwith "uniqueness violated!");

      (* 4. GLOBAL table: slow writes, fast consistent reads everywhere. *)
      time "UPSERT into GLOBAL settings (commit-waits)" (fun () ->
          ok
            (Engine.upsert db ~gateway:us ~table:"settings"
               [ ("name", svec "theme"); ("value", svec "dark") ])));
  (* Give the GLOBAL write's future timestamp time to become current, and
     the REGIONAL writes time to fall behind the 3s closed-timestamp lag so
     stale reads can serve them from followers. *)
  Crdb.run_for t 4_000_000;
  Crdb.run t (fun () ->
      ignore
        (time "SELECT from GLOBAL settings in europe (local!)" (fun () ->
             ok (Engine.select_by_pk db ~gateway:eu ~table:"settings" [ svec "theme" ])));
      match
        time "Stale SELECT of a remote row (nearest replica)" (fun () ->
            ok (Engine.select_by_pk_stale db ~gateway:us ~table:"users" [ svec "u-eu" ]))
      with
      | Some _ -> Format.printf "stale read found the row on a local replica@."
      | None -> Format.printf "stale read missed (row newer than the negotiated ts)@.");
  Format.printf "done.@."
