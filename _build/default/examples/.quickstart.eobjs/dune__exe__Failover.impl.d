examples/failover.ml: Crdb_core Format List Option
