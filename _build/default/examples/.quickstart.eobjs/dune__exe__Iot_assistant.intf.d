examples/iot_assistant.mli:
