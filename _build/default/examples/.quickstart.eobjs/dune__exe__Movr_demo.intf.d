examples/movr_demo.mli:
