examples/quickstart.ml: Crdb_core Format String
