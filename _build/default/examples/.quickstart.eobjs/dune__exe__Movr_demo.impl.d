examples/movr_demo.ml: Crdb_core Crdb_stdx Crdb_workload Format List
