examples/iot_assistant.ml: Crdb_core Crdb_sim Crdb_stats Format List Printf
