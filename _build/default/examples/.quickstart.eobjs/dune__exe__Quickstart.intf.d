examples/quickstart.mli:
