examples/failover.mli:
