(* The §7.5.2 user-feedback workload: a personalized assistant storing IoT
   device events and roaming user profiles across three regions.

   - Devices stay in their region and need fast local writes:
       device_events is REGIONAL BY ROW with ZONE survival and a UUID
       primary key (no uniqueness fan-out on insert).
   - Users move around and need fast reads everywhere:
       user_profiles is GLOBAL — any region reads it locally, and the rare
       profile updates pay the future-time commit wait.

   Run with:  dune exec examples/iot_assistant.exe *)

module Crdb = Crdb_core.Crdb
module Value = Crdb.Value
module Schema = Crdb.Schema
module Ddl = Crdb.Ddl
module Engine = Crdb.Engine
module Hist = Crdb_stats.Hist
module Proc = Crdb_sim.Proc

let regions = [ "us-east1"; "us-west1"; "asia-northeast1" ]
let svec s = Value.V_string s

let ok = function
  | Ok v -> v
  | Error e -> Format.kasprintf failwith "error: %a" Engine.pp_exec_error e

let () =
  let t = Crdb.start ~regions () in
  Crdb.exec t
    (Ddl.N_create_database
       { db = "assistant"; primary = "us-east1"; regions = List.tl regions });
  Crdb.exec t
    (Ddl.N_create_table
       {
         db = "assistant";
         table =
           Schema.table ~name:"device_events"
             ~columns:
               [
                 Schema.column ~default:Schema.D_gen_uuid "event_id" Schema.T_uuid;
                 Schema.column "device_id" Schema.T_string;
                 Schema.column "payload" Schema.T_string;
               ]
             ~pkey:[ "event_id" ] ~locality:Schema.Regional_by_row ()
       });
  Crdb.exec t
    (Ddl.N_create_table
       {
         db = "assistant";
         table =
           Schema.table ~name:"user_profiles"
             ~columns:
               [
                 Schema.column "user_id" Schema.T_string;
                 Schema.column "preferences" Schema.T_string;
               ]
             ~pkey:[ "user_id" ] ~locality:Schema.Global ()
       });
  let db = Crdb.database t "assistant" in

  (* Seed a roaming user's profile. *)
  let us = Crdb.gateway t ~region:"us-east1" () in
  Crdb.run t (fun () ->
      ok
        (Engine.upsert db ~gateway:us ~table:"user_profiles"
           [ ("user_id", svec "ada"); ("preferences", svec "lights:warm") ]));
  Crdb.run_for t 1_000_000;

  (* Devices in every region write events while the user reads her profile
     from wherever she happens to be. *)
  let event_writes = Hist.create () in
  let profile_reads = Hist.create () in
  let sim = Crdb.Cluster.sim (Crdb.cluster t) in
  let remaining = ref (List.length regions * 2) in
  let finished = Crdb_sim.Ivar.create () in
  List.iter
    (fun region ->
      let gw = Crdb.gateway t ~region () in
      (* A device: writes 30 events back to back. *)
      Proc.spawn sim (fun () ->
          for i = 1 to 30 do
            let t0 = Crdb.sim_now t in
            ok
              (Engine.insert db ~gateway:gw ~table:"device_events"
                 [
                   ("device_id", svec (region ^ "-sensor"));
                   ("payload", svec (Printf.sprintf "reading-%d" i));
                 ]);
            Hist.add event_writes (Crdb.sim_now t - t0)
          done;
          decr remaining;
          if !remaining = 0 then Crdb_sim.Ivar.fill finished ());
      (* The roaming user: reads her profile 30 times from this region. *)
      Proc.spawn sim (fun () ->
          for _ = 1 to 30 do
            let t0 = Crdb.sim_now t in
            (match
               ok (Engine.select_by_pk db ~gateway:gw ~table:"user_profiles" [ svec "ada" ])
             with
            | Some _ -> ()
            | None -> failwith "profile missing");
            Hist.add profile_reads (Crdb.sim_now t - t0);
            Proc.sleep sim 20_000
          done;
          decr remaining;
          if !remaining = 0 then Crdb_sim.Ivar.fill finished ()))
    regions;
  Crdb.run t (fun () -> Proc.await finished);

  Format.printf "device events stored: %d@." (Engine.row_count db "device_events");
  Format.printf "%a@." (Hist.pp_row ~label:"device event writes (local, REGIONAL)") event_writes;
  Format.printf "%a@." (Hist.pp_row ~label:"profile reads everywhere (GLOBAL)") profile_reads;
  (* A profile update pays the global write price exactly once... *)
  Crdb.run t (fun () ->
      let t0 = Crdb.sim_now t in
      ok
        (Engine.upsert db ~gateway:us ~table:"user_profiles"
           [ ("user_id", svec "ada"); ("preferences", svec "lights:cool") ]);
      Format.printf "profile update (GLOBAL write, commit-wait): %.1f ms@."
        (float_of_int (Crdb.sim_now t - t0) /. 1000.0))
