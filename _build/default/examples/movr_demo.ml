(* movr: the paper's motivating ride-sharing application (Fig. 1).

   Five REGIONAL BY ROW tables partitioned by a region computed from the
   city, one GLOBAL reference table (promo_codes), a global UNIQUE email,
   and a foreign key from rides into the GLOBAL table — the full §2.3.3
   pattern: a regional facts table referencing a global dimension table.

   Run with:  dune exec examples/movr_demo.exe *)

module Crdb = Crdb_core.Crdb
module Value = Crdb.Value
module Ddl = Crdb.Ddl
module Engine = Crdb.Engine
module Movr = Crdb_workload.Movr

let regions = [ "us-east1"; "us-west1"; "europe-west2" ]
let svec s = Value.V_string s

let ok = function
  | Ok v -> v
  | Error e -> Format.kasprintf failwith "unexpected error: %a" Engine.pp_exec_error e

let time t label f =
  let t0 = Crdb.sim_now t in
  let v = f () in
  Format.printf "%-56s %6.1f ms@." label
    (float_of_int (Crdb.sim_now t - t0) /. 1000.0);
  v

let () =
  let t = Crdb.start ~regions () in
  (* The full multi-region schema is 12 declarative statements (Table 2). *)
  let stmts = Movr.ddl ~db:"movr" ~regions Movr.New_schema in
  Format.printf "creating the movr schema with %d statements:@." (List.length stmts);
  List.iter (fun s -> Format.printf "  %s@." (Ddl.to_sql s)) stmts;
  Crdb.exec_all t stmts;
  let db = Crdb.database t "movr" in
  Movr.load t db ~users_per_city:20 ~vehicles_per_city:10;
  Format.printf "@.loaded %d users, %d vehicles, %d promo codes@.@."
    (Engine.row_count db "users")
    (Engine.row_count db "vehicles")
    (Engine.row_count db "promo_codes");

  let sf = Crdb.gateway t ~region:"us-west1" () in
  let ams = Crdb.gateway t ~region:"europe-west2" () in

  Crdb.run t (fun () ->
      (* A new user signs up in San Francisco: the row is homed on the west
         coast because the region is computed from the city. *)
      time t "sign-up in san francisco" (fun () ->
          ok
            (Engine.insert db ~gateway:sf ~table:"users"
               [
                 ("city", svec "san francisco");
                 ("name", svec "Jane");
                 ("email", svec "jane@movr.com");
               ]));
      (match Engine.region_of_row db ~table:"users" [] with
      | _ -> ());
      (* Email uniqueness is enforced globally, from any region. *)
      (match
         Engine.insert db ~gateway:ams ~table:"users"
           [ ("city", svec "amsterdam"); ("name", svec "Jan"); ("email", svec "jane@movr.com") ]
       with
      | Error _ -> Format.printf "duplicate email rejected from amsterdam@."
      | Ok () -> failwith "email uniqueness violated");
      (* Look the user up by email without knowing the city: locality
         optimized search probes the local partition first. *)
      let jane =
        time t "lookup jane@movr.com from san francisco (LOS)" (fun () ->
            ok
              (Engine.select_by_unique db ~gateway:sf ~table:"users" ~col:"email"
                 (svec "jane@movr.com")))
      in
      let jane_id =
        match jane with
        | Some row -> List.assoc "id" row
        | None -> failwith "jane not found"
      in
      (* Start a ride with a promo code: the FK check reads the GLOBAL
         promo_codes table locally, so the whole write stays in-region. *)
      time t "start ride with promo (FK into GLOBAL table)" (fun () ->
          ok
            (Engine.insert db ~gateway:sf ~table:"rides"
               [
                 ("city", svec "san francisco");
                 ("rider_id", jane_id);
                 ("vehicle_id", Value.gen_uuid (Crdb_stdx.Rng.create ~seed:1));
                 ("promo_code", svec "promo_3");
               ]));
      (* An invalid promo code is caught — also without leaving the region. *)
      match
        Engine.insert db ~gateway:sf ~table:"rides"
          [
            ("city", svec "san francisco");
            ("rider_id", jane_id);
            ("vehicle_id", Value.gen_uuid (Crdb_stdx.Rng.create ~seed:2));
            ("promo_code", svec "bogus");
          ]
      with
      | Error _ -> Format.printf "invalid promo code rejected@."
      | Ok () -> failwith "fk violated");
  Format.printf "@.rides stored: %d@." (Engine.row_count db "rides")
