lib/stats/hist.ml: Array Crdb_stdx Format Int List
