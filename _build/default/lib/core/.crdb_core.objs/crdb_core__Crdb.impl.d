lib/core/crdb.ml: Crdb_hlc Crdb_kv Crdb_net Crdb_sim Crdb_sql Crdb_txn List Printf
