lib/core/crdb.mli: Crdb_hlc Crdb_kv Crdb_net Crdb_sql Crdb_txn
