(** Leaseholder read-timestamp cache.

    Records the maximum timestamp at which each key has been read so that
    later writes can be pushed above it, preventing a write from invalidating
    a read that already completed (§6.1). A low-water mark summarizes evicted
    (or never-recorded) entries; it also rises when a lease changes hands.

    Entries are tagged with the reading transaction so a transaction's own
    reads never push its own writes (as in CRDB): {!max_read} takes the
    writing transaction and excludes entries it owns. *)

type ts = Crdb_hlc.Timestamp.t
type t

val create : low_water:ts -> t
val low_water : t -> ts

val bump_low_water : t -> ts -> unit
(** Raise the low-water mark (monotonic; lower values are ignored). *)

val max_read : t -> for_txn:int option -> key:string -> ts
(** Max over the low-water mark and recorded reads of the key by {e other}
    transactions ([for_txn = None] excludes nothing). *)

val record_read : t -> txn:int option -> key:string -> ts:ts -> unit

val record_read_span :
  t -> txn:int option -> start_key:string -> end_key:string -> ts:ts -> unit
(** Record a scan over [\[start_key, end_key)]. *)

val max_read_span : t -> for_txn:int option -> start_key:string -> end_key:string -> ts
