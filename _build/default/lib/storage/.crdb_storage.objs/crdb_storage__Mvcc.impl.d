lib/storage/mvcc.ml: Crdb_hlc List Map String
