lib/storage/mvcc.mli: Crdb_hlc
