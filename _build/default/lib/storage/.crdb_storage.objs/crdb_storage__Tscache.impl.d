lib/storage/tscache.ml: Crdb_hlc Hashtbl List String
