lib/storage/tscache.mli: Crdb_hlc
