module Ts = Crdb_hlc.Timestamp

type ts = Ts.t
type entry = { e_ts : ts; e_txn : int option }

(* Per key we keep the two freshest entries with distinct owners: the global
   maximum plus the freshest entry owned by someone else, which is what a
   self-excluding query needs. Span reads are summarized as a bounded list;
   overflow collapses into the low-water mark (coarser entries only ever
   push writers higher, never lower, so safety is preserved). *)
type t = {
  mutable low : ts;
  points : (string, entry * entry option) Hashtbl.t;
  mutable spans : (string * string * entry) list;
}

let create ~low_water = { low = low_water; points = Hashtbl.create 64; spans = [] }
let low_water t = t.low
let bump_low_water t ts = if Ts.(ts > t.low) then t.low <- ts

let same_owner a b =
  match (a, b) with Some x, Some y -> x = y | _ -> false

let excluded ~for_txn e =
  match (for_txn, e.e_txn) with Some w, Some o -> w = o | _ -> false

(* Invariant (approximate): [second] is a fresh entry not owned by [best]'s
   owner; over-approximation of [second] is safe — it can only push writers
   higher. *)
let max_entry a b =
  match (a, b) with
  | None, e | e, None -> e
  | Some x, Some y -> if Ts.(x.e_ts >= y.e_ts) then Some x else Some y

let record_read t ~txn ~key ~ts =
  let fresh = { e_ts = ts; e_txn = txn } in
  match Hashtbl.find_opt t.points key with
  | None -> Hashtbl.replace t.points key (fresh, None)
  | Some (best, second) ->
      if same_owner best.e_txn txn then begin
        if Ts.(ts > best.e_ts) then Hashtbl.replace t.points key (fresh, second)
      end
      else if Ts.(ts > best.e_ts) then
        Hashtbl.replace t.points key (fresh, max_entry (Some best) second)
      else Hashtbl.replace t.points key (best, max_entry (Some fresh) second)

let span_max t ~for_txn key =
  List.fold_left
    (fun acc (s, e, entry) ->
      if
        String.compare key s >= 0
        && String.compare key e < 0
        && not (excluded ~for_txn entry)
      then Ts.max acc entry.e_ts
      else acc)
    Ts.zero t.spans

let max_read t ~for_txn ~key =
  let point =
    match Hashtbl.find_opt t.points key with
    | None -> Ts.zero
    | Some (best, second) ->
        if not (excluded ~for_txn best) then best.e_ts
        else (
          match second with
          | Some s when not (excluded ~for_txn s) -> s.e_ts
          | Some _ | None -> Ts.zero)
  in
  Ts.max t.low (Ts.max point (span_max t ~for_txn key))

let record_read_span t ~txn ~start_key ~end_key ~ts =
  t.spans <- (start_key, end_key, { e_ts = ts; e_txn = txn }) :: t.spans;
  if List.length t.spans > 256 then begin
    let keep, drop =
      let rec split i acc = function
        | [] -> (List.rev acc, [])
        | rest when i = 0 -> (List.rev acc, rest)
        | x :: rest -> split (i - 1) (x :: acc) rest
      in
      split 128 [] t.spans
    in
    List.iter (fun (_, _, e) -> bump_low_water t e.e_ts) drop;
    t.spans <- keep
  end

let max_read_span t ~for_txn ~start_key ~end_key =
  let spans_max =
    List.fold_left
      (fun acc (s, e, entry) ->
        if
          String.compare s end_key < 0
          && String.compare start_key e < 0
          && not (excluded ~for_txn entry)
        then Ts.max acc entry.e_ts
        else acc)
      Ts.zero t.spans
  in
  let points_max =
    Hashtbl.fold
      (fun key (best, second) acc ->
        if String.compare key start_key >= 0 && String.compare key end_key < 0
        then begin
          let c =
            if not (excluded ~for_txn best) then best.e_ts
            else
              match second with
              | Some s when not (excluded ~for_txn s) -> s.e_ts
              | Some _ | None -> Ts.zero
          in
          Ts.max acc c
        end
        else acc)
      t.points Ts.zero
  in
  Ts.max t.low (Ts.max spans_max points_max)
