(** Cluster topology: nodes tagged with a region and a zone.

    Mirrors CRDB's [--locality=region=...,zone=...] startup flags (§2.1): a
    node's locality is just a pair of strings, and the cluster's regions are
    the union of the node regions. *)

type node_id = int

type node = { id : node_id; region : string; zone : string }

type t

val create : (string * string) list -> t
(** [create localities] builds a cluster with one node per [(region, zone)]
    pair, with ids assigned in list order starting at 0. *)

val symmetric : regions:string list -> nodes_per_region:int -> t
(** [symmetric ~regions ~nodes_per_region] places each node of a region in
    its own zone ["<region>-<letter>"] — the paper's standard deployment of
    3 nodes across 3 zones per region. *)

val num_nodes : t -> int
val node : t -> node_id -> node
val nodes : t -> node array
val regions : t -> string list
(** Distinct regions in first-appearance order. *)

val zones_in_region : t -> string -> string list
val nodes_in_region : t -> string -> node list
val nodes_in_zone : t -> string -> string -> node list
val region_of : t -> node_id -> string
val zone_of : t -> node_id -> string

val pp : Format.formatter -> t -> unit
