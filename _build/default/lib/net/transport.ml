module Sim = Crdb_sim.Sim
module Ivar = Crdb_sim.Ivar
module Rng = Crdb_stdx.Rng

type t = {
  sim : Sim.t;
  topology : Topology.t;
  latency : Latency.t;
  jitter : float;
  rng : Rng.t;
  dead_since : (Topology.node_id, int) Hashtbl.t;
  mutable partitions : (string * string) list;
  mutable messages_sent : int;
}

let create ?(jitter = 0.05) ?rng ~sim ~topology ~latency () =
  let rng = match rng with Some r -> r | None -> Rng.create ~seed:0x5eed in
  {
    sim;
    topology;
    latency;
    jitter;
    rng;
    dead_since = Hashtbl.create 16;
    partitions = [];
    messages_sent = 0;
  }

let sim t = t.sim
let topology t = t.topology
let latency t = t.latency
let is_alive t id = not (Hashtbl.mem t.dead_since id)
let dead_since t id = Hashtbl.find_opt t.dead_since id

let base_delay t src dst =
  if src = dst then 25
  else
    let a = Topology.node t.topology src and b = Topology.node t.topology dst in
    if String.equal a.Topology.region b.Topology.region then
      if String.equal a.Topology.zone b.Topology.zone then
        Latency.intra_zone_rtt t.latency / 2
      else Latency.intra_region_rtt t.latency / 2
    else Latency.one_way t.latency a.Topology.region b.Topology.region

let delay t src dst =
  let base = base_delay t src dst in
  if t.jitter <= 0.0 then base
  else base + int_of_float (Rng.float t.rng (t.jitter *. float_of_int base))

let partitioned t src dst =
  let ra = Topology.region_of t.topology src
  and rb = Topology.region_of t.topology dst in
  List.exists
    (fun (a, b) ->
      (String.equal a ra && String.equal b rb)
      || (String.equal a rb && String.equal b ra))
    t.partitions

let send t ~src ~dst fn =
  if is_alive t src && not (partitioned t src dst) then begin
    t.messages_sent <- t.messages_sent + 1;
    let d = delay t src dst in
    Sim.schedule t.sim ~after:d (fun () ->
        (* Re-check at delivery time: the destination may have died, or a
           partition may have formed, while the message was in flight. *)
        if is_alive t dst && not (partitioned t src dst) then fn ())
  end

let rpc t ~src ~dst handler =
  let outer = Ivar.create () in
  send t ~src ~dst (fun () ->
      let inner = Ivar.create () in
      Ivar.on_fill inner (fun v ->
          send t ~src:dst ~dst:src (fun () -> ignore (Ivar.try_fill outer v)));
      handler inner);
  outer

let messages_sent t = t.messages_sent
let kill_node t id = if is_alive t id then Hashtbl.replace t.dead_since id (Sim.now t.sim)
let revive_node t id = Hashtbl.remove t.dead_since id

let kill_region t region =
  List.iter
    (fun n -> kill_node t n.Topology.id)
    (Topology.nodes_in_region t.topology region)

let revive_region t region =
  List.iter
    (fun n -> revive_node t n.Topology.id)
    (Topology.nodes_in_region t.topology region)

let kill_zone t ~region ~zone =
  List.iter
    (fun n -> kill_node t n.Topology.id)
    (Topology.nodes_in_zone t.topology region zone)

let partition_regions t a b = t.partitions <- (a, b) :: t.partitions
let heal_partitions t = t.partitions <- []
