(** Inter-region network latency profiles.

    A profile gives the round-trip time between any two regions, plus the
    (much smaller) intra-zone and intra-region RTTs. The five-region profile
    used throughout the paper's §7.1–7.3 experiments is {!table1}, embedding
    the paper's measured GCP matrix verbatim. Larger clusters (§7.4) use
    {!gcp}, which derives RTTs from great-circle distances between the real
    GCP region locations. *)

type t

val custom :
  ?intra_zone_rtt:int ->
  ?intra_region_rtt:int ->
  (string -> string -> int) ->
  t
(** [custom f] builds a profile from [f r1 r2], the RTT in microseconds
    between two distinct regions. [f] must be symmetric. Defaults:
    [intra_zone_rtt = 300]µs, [intra_region_rtt = 600]µs. *)

val rtt : t -> string -> string -> int
(** Round-trip time in microseconds between two regions (intra-region RTT if
    equal). *)

val one_way : t -> string -> string -> int
val intra_zone_rtt : t -> int
val intra_region_rtt : t -> int

val table1 : t
(** The paper's Table 1: measured GCP inter-region RTTs for
    {!table1_regions}. *)

val table1_regions : string list
(** [us-east1; us-west1; europe-west2; asia-northeast1;
    australia-southeast1] *)

val gcp : t
(** Distance-derived RTTs between any two of {!gcp_region_names}. *)

val gcp_region_names : string list
(** 27 GCP regions with known locations, ordered roughly west-to-east within
    each continent; used to build the 4/10/26-region clusters of §7.4. *)

val sort_by_proximity : t -> string -> string list -> string list
(** [sort_by_proximity t home regions] sorts [regions] by RTT from [home]
    (closest first, [home] itself first if present). *)

val pp_matrix : t -> string list -> Format.formatter -> unit -> unit
(** Render the RTT matrix for the given regions in the style of Table 1. *)
