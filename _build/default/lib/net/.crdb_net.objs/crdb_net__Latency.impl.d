lib/net/latency.ml: Float Format Int List Printf Stdlib String
