lib/net/topology.ml: Array Char Format List Printf String
