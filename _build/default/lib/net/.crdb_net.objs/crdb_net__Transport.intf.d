lib/net/transport.mli: Crdb_sim Crdb_stdx Latency Topology
