lib/net/transport.ml: Crdb_sim Crdb_stdx Hashtbl Latency List String Topology
