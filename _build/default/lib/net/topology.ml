type node_id = int
type node = { id : node_id; region : string; zone : string }
type t = { nodes : node array; regions : string list }

let create localities =
  let nodes =
    Array.of_list
      (List.mapi (fun id (region, zone) -> { id; region; zone }) localities)
  in
  let regions =
    Array.fold_left
      (fun acc n -> if List.mem n.region acc then acc else n.region :: acc)
      [] nodes
    |> List.rev
  in
  { nodes; regions }

let zone_letter i = String.make 1 (Char.chr (Char.code 'a' + i))

let symmetric ~regions ~nodes_per_region =
  let localities =
    List.concat_map
      (fun r ->
        List.init nodes_per_region (fun i -> (r, r ^ "-" ^ zone_letter i)))
      regions
  in
  create localities

let num_nodes t = Array.length t.nodes

let node t id =
  if id < 0 || id >= Array.length t.nodes then
    invalid_arg (Printf.sprintf "Topology.node: unknown node %d" id);
  t.nodes.(id)

let nodes t = t.nodes
let regions t = t.regions

let nodes_in_region t region =
  Array.to_list t.nodes |> List.filter (fun n -> String.equal n.region region)

let zones_in_region t region =
  nodes_in_region t region
  |> List.fold_left
       (fun acc n -> if List.mem n.zone acc then acc else n.zone :: acc)
       []
  |> List.rev

let nodes_in_zone t region zone =
  nodes_in_region t region |> List.filter (fun n -> String.equal n.zone zone)

let region_of t id = (node t id).region
let zone_of t id = (node t id).zone

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun r ->
      let ns = nodes_in_region t r in
      Format.fprintf ppf "%s: %d nodes (%s)@,"
        r (List.length ns)
        (String.concat ", " (List.map (fun n -> n.zone) ns)))
    t.regions;
  Format.fprintf ppf "@]"
