type t = {
  rtt_fn : string -> string -> int;
  intra_zone_rtt : int;
  intra_region_rtt : int;
}

let custom ?(intra_zone_rtt = 300) ?(intra_region_rtt = 600) rtt_fn =
  { rtt_fn; intra_zone_rtt; intra_region_rtt }

let rtt t r1 r2 = if String.equal r1 r2 then t.intra_region_rtt else t.rtt_fn r1 r2
let one_way t r1 r2 = rtt t r1 r2 / 2
let intra_zone_rtt t = t.intra_zone_rtt
let intra_region_rtt t = t.intra_region_rtt

(* ------------------------------------------------------------------ *)
(* Table 1 of the paper: measured GCP inter-region RTTs, milliseconds. *)

let table1_regions =
  [
    "us-east1";
    "us-west1";
    "europe-west2";
    "asia-northeast1";
    "australia-southeast1";
  ]

let table1_ms =
  [
    ("us-east1", "us-west1", 63);
    ("us-east1", "europe-west2", 87);
    ("us-east1", "asia-northeast1", 155);
    ("us-east1", "australia-southeast1", 198);
    ("us-west1", "europe-west2", 132);
    ("us-west1", "asia-northeast1", 90);
    ("us-west1", "australia-southeast1", 156);
    ("europe-west2", "asia-northeast1", 222);
    ("europe-west2", "australia-southeast1", 274);
    ("asia-northeast1", "australia-southeast1", 113);
  ]

let table1 =
  let find r1 r2 =
    let matches (a, b, _) =
      (String.equal a r1 && String.equal b r2)
      || (String.equal a r2 && String.equal b r1)
    in
    match List.find_opt matches table1_ms with
    | Some (_, _, ms) -> ms * 1000
    | None ->
        invalid_arg
          (Printf.sprintf "Latency.table1: unknown region pair %s/%s" r1 r2)
  in
  custom find

(* ------------------------------------------------------------------ *)
(* GCP regions with approximate datacenter coordinates (lat, lon).     *)

let gcp_locations =
  [
    ("us-east1", 33.2, -80.0);
    ("us-east4", 39.0, -77.5);
    ("us-central1", 41.2, -95.9);
    ("us-west1", 45.6, -121.2);
    ("us-west2", 34.0, -118.2);
    ("us-west3", 40.8, -111.9);
    ("us-west4", 36.2, -115.1);
    ("northamerica-northeast1", 45.5, -73.6);
    ("northamerica-northeast2", 43.7, -79.4);
    ("southamerica-east1", -23.5, -46.6);
    ("europe-west1", 50.4, 3.8);
    ("europe-west2", 51.5, -0.1);
    ("europe-west3", 50.1, 8.7);
    ("europe-west4", 53.4, 6.8);
    ("europe-west6", 47.4, 8.5);
    ("europe-north1", 60.5, 27.2);
    ("europe-central2", 52.2, 21.0);
    ("asia-east1", 24.1, 120.5);
    ("asia-east2", 22.3, 114.2);
    ("asia-northeast1", 35.7, 139.7);
    ("asia-northeast2", 34.7, 135.5);
    ("asia-northeast3", 37.6, 127.0);
    ("asia-south1", 19.1, 72.9);
    ("asia-southeast1", 1.4, 103.8);
    ("asia-southeast2", -6.2, 106.8);
    ("australia-southeast1", -33.9, 151.2);
    ("australia-southeast2", -37.8, 145.0);
  ]

let gcp_region_names = List.map (fun (r, _, _) -> r) gcp_locations

let deg_to_rad d = d *. Float.pi /. 180.0

let haversine_km (lat1, lon1) (lat2, lon2) =
  let earth_radius_km = 6371.0 in
  let dlat = deg_to_rad (lat2 -. lat1) and dlon = deg_to_rad (lon2 -. lon1) in
  let a =
    (sin (dlat /. 2.0) ** 2.0)
    +. (cos (deg_to_rad lat1) *. cos (deg_to_rad lat2) *. (sin (dlon /. 2.0) ** 2.0))
  in
  2.0 *. earth_radius_km *. atan2 (sqrt a) (sqrt (1.0 -. a))

(* Fiber paths are not great circles; ~1.45 ms of RTT per 100 km plus a fixed
   5 ms floor approximates the public GCP measurements reasonably well. *)
let distance_rtt_micros km = int_of_float ((km *. 14.5) +. 5_000.0)

let gcp =
  let loc r =
    match List.find_opt (fun (name, _, _) -> String.equal name r) gcp_locations with
    | Some (_, lat, lon) -> (lat, lon)
    | None -> invalid_arg (Printf.sprintf "Latency.gcp: unknown region %s" r)
  in
  custom (fun r1 r2 -> distance_rtt_micros (haversine_km (loc r1) (loc r2)))

let sort_by_proximity t home regions =
  let key r = if String.equal r home then -1 else rtt t home r in
  List.stable_sort (fun a b -> Int.compare (key a) (key b)) regions

let pp_matrix t regions ppf () =
  let width = 22 in
  Format.fprintf ppf "%-*s" width "";
  List.iter (fun r -> Format.fprintf ppf "%8s" (String.sub r 0 (Stdlib.min 7 (String.length r)))) regions;
  Format.fprintf ppf "@,";
  List.iteri
    (fun i r1 ->
      Format.fprintf ppf "%-*s" width r1;
      List.iteri
        (fun j r2 ->
          if j <= i then Format.fprintf ppf "%8s" (if i = j then "-" else "")
          else Format.fprintf ppf "%8d" (rtt t r1 r2 / 1000))
        regions;
      Format.fprintf ppf "@,")
    regions
