(** Per-node hybrid logical clocks.

    Each node owns one clock. The physical component is derived from an
    external time source (the simulator's global clock) plus a per-node skew,
    so that tests can exercise behaviour under bounded and unbounded clock
    skew. The HLC update rules guarantee that timestamps handed out by one
    clock are monotonically increasing and never behind any timestamp the
    node has observed from its peers. *)

type t

val create : ?skew_micros:int -> now_micros:(unit -> int) -> unit -> t
(** [create ~now_micros ()] is a clock reading physical time from
    [now_micros]. [skew_micros] (default 0, may be negative) offsets the
    physical reading to model imperfect clock synchronization. *)

val set_skew : t -> int -> unit
(** Change the skew at runtime (models clock drift or misconfiguration). *)

val skew : t -> int

val physical_now : t -> int
(** Skewed physical reading in microseconds, clamped at 0. *)

val now : t -> Timestamp.t
(** HLC read: the maximum of physical time and the last timestamp issued or
    observed, with the logical counter incremented on ties. *)

val update : t -> Timestamp.t -> unit
(** [update t ts] ratchets the clock forward upon observing a remote
    timestamp [ts], per the HLC receive rule. *)

val last : t -> Timestamp.t
(** The most recent timestamp issued or observed. *)
