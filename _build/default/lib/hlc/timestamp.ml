type t = { wall : int; logical : int }

let make ~wall ~logical =
  if wall < 0 || logical < 0 then invalid_arg "Timestamp.make: negative field";
  { wall; logical }

let of_wall wall = make ~wall ~logical:0
let zero = { wall = 0; logical = 0 }
let max_value = { wall = max_int; logical = max_int }

let compare a b =
  let c = Int.compare a.wall b.wall in
  if c <> 0 then c else Int.compare a.logical b.logical

let equal a b = compare a b = 0
let max a b = if compare a b >= 0 then a else b
let min a b = if compare a b <= 0 then a else b
let next t = { t with logical = t.logical + 1 }

let prev t =
  if t.logical > 0 then { t with logical = t.logical - 1 }
  else if t.wall > 0 then { wall = t.wall - 1; logical = max_int }
  else invalid_arg "Timestamp.prev: zero has no predecessor"

let add_wall t d = { wall = t.wall + d; logical = 0 }
let wall t = t.wall
let logical t = t.logical

let pp ppf t =
  if t.logical = 0 then
    Format.fprintf ppf "%d.%06d" (t.wall / 1_000_000) (t.wall mod 1_000_000)
  else
    Format.fprintf ppf "%d.%06d,%d" (t.wall / 1_000_000) (t.wall mod 1_000_000)
      t.logical

let to_string t = Format.asprintf "%a" pp t

(* Comparison operators specialized to [t]; defined last so the integer
   operators remain in scope above. *)
let ( <= ) a b = compare a b <= 0
let ( < ) a b = compare a b < 0
let ( >= ) a b = compare a b >= 0
let ( > ) a b = compare a b > 0
