lib/hlc/timestamp.ml: Format Int
