lib/hlc/timestamp.mli: Format
