lib/hlc/clock.mli: Timestamp
