lib/hlc/clock.ml: Timestamp
