type t = {
  now_micros : unit -> int;
  mutable skew_micros : int;
  mutable last : Timestamp.t;
}

let create ?(skew_micros = 0) ~now_micros () =
  { now_micros; skew_micros; last = Timestamp.zero }

let set_skew t skew = t.skew_micros <- skew
let skew t = t.skew_micros

let physical_now t =
  let p = t.now_micros () + t.skew_micros in
  if p < 0 then 0 else p

let now t =
  let phys = Timestamp.of_wall (physical_now t) in
  let ts =
    if Timestamp.(phys > t.last) then phys else Timestamp.next t.last
  in
  t.last <- ts;
  ts

let update t ts = if Timestamp.(ts > t.last) then t.last <- ts
let last t = t.last
