(** Hybrid logical clock timestamps.

    A timestamp is a pair of a wall-clock component in microseconds and a
    logical counter used to break ties between events that share a wall time.
    This is the MVCC version domain of the whole system: every value, intent,
    closed timestamp and transaction read/write timestamp is one of these. *)

type t = private { wall : int; logical : int }

val make : wall:int -> logical:int -> t
val of_wall : int -> t
(** [of_wall w] is the timestamp [(w, 0)]. *)

val zero : t
val max_value : t

val compare : t -> t -> int
val equal : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val max : t -> t -> t
val min : t -> t -> t

val next : t -> t
(** [next t] is the smallest timestamp strictly greater than [t]. *)

val prev : t -> t
(** [prev t] is the largest timestamp strictly smaller than [t].
    @raise Invalid_argument on [zero]. *)

val add_wall : t -> int -> t
(** [add_wall t d] advances the wall component by [d] microseconds and resets
    the logical counter, i.e. [(t.wall + d, 0)]. Used to build uncertainty
    bounds and closed-timestamp targets. *)

val wall : t -> int
val logical : t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string
