type zone_field =
  | Zf_num_replicas of int
  | Zf_num_voters of int
  | Zf_constraints of (string * int) list
  | Zf_voter_constraints of (string * int) list
  | Zf_lease_preferences of string list

type stmt =
  | N_create_database of { db : string; primary : string; regions : string list }
  | N_set_primary_region of { db : string; region : string }
  | N_add_region of { db : string; region : string }
  | N_drop_region of { db : string; region : string }
  | N_survive of { db : string; survival : Crdb_kv.Zoneconfig.survival }
  | N_placement of { db : string; restricted : bool }
  | N_create_table of { db : string; table : Schema.table }
  | N_set_locality of { db : string; table : string; locality : Schema.locality }
  | N_add_computed_region of {
      db : string;
      table : string;
      from_cols : string list;
      compute : Value.t list -> Value.t;
      sql_case : string;
    }
  | L_create_database of { db : string }
  | L_create_table of { db : string; table : Schema.table }
  | L_add_partition_column of { db : string; table : string }
  | L_partition_by of { db : string; table : string; index : string; regions : string list }
  | L_configure_zone of { db : string; target : string; fields : zone_field list }
  | L_create_duplicate_index of { db : string; table : string; region : string }
  | L_drop_index of { db : string; table : string; region : string }

let columns_sql (table : Schema.table) =
  String.concat ", "
    (List.filter_map
       (fun (c : Schema.column) ->
         if c.Schema.col_hidden then None
         else
           Some
             (Printf.sprintf "%s %s" c.Schema.col_name
                (match c.Schema.col_type with
                | Schema.T_int -> "INT"
                | Schema.T_string -> "STRING"
                | Schema.T_uuid -> "UUID"
                | Schema.T_region -> "crdb_internal_region")))
       table.Schema.tbl_columns)

let zone_field_sql = function
  | Zf_num_replicas n -> Printf.sprintf "num_replicas = %d" n
  | Zf_num_voters n -> Printf.sprintf "num_voters = %d" n
  | Zf_constraints cs ->
      Printf.sprintf "constraints = '{%s}'"
        (String.concat ", "
           (List.map (fun (r, n) -> Printf.sprintf "\"+region=%s\": %d" r n) cs))
  | Zf_voter_constraints cs ->
      Printf.sprintf "voter_constraints = '{%s}'"
        (String.concat ", "
           (List.map (fun (r, n) -> Printf.sprintf "\"+region=%s\": %d" r n) cs))
  | Zf_lease_preferences rs ->
      Printf.sprintf "lease_preferences = '[[%s]]'"
        (String.concat ", " (List.map (fun r -> "+region=" ^ r) rs))

let to_sql = function
  | N_create_database { db; primary; regions } ->
      Printf.sprintf "CREATE DATABASE %s PRIMARY REGION %S%s" db primary
        (match regions with
        | [] -> ""
        | rs ->
            " REGIONS "
            ^ String.concat ", " (List.map (Printf.sprintf "%S") rs))
  | N_set_primary_region { db; region } ->
      Printf.sprintf "ALTER DATABASE %s SET PRIMARY REGION %S" db region
  | N_add_region { db; region } ->
      Printf.sprintf "ALTER DATABASE %s ADD REGION %S" db region
  | N_drop_region { db; region } ->
      Printf.sprintf "ALTER DATABASE %s DROP REGION %S" db region
  | N_survive { db; survival } ->
      Printf.sprintf "ALTER DATABASE %s SURVIVE %s FAILURE" db
        (Crdb_kv.Zoneconfig.survival_to_string survival)
  | N_placement { db; restricted } ->
      Printf.sprintf "ALTER DATABASE %s PLACEMENT %s" db
        (if restricted then "RESTRICTED" else "DEFAULT")
  | N_create_table { db; table } ->
      Printf.sprintf "CREATE TABLE %s.%s (%s, PRIMARY KEY (%s)) LOCALITY %s" db
        table.Schema.tbl_name (columns_sql table)
        (String.concat ", " table.Schema.tbl_pkey)
        (Schema.locality_to_sql table.Schema.tbl_locality)
  | N_set_locality { db; table; locality } ->
      Printf.sprintf "ALTER TABLE %s.%s SET LOCALITY %s" db table
        (Schema.locality_to_sql locality)
  | N_add_computed_region { db; table; sql_case; _ } ->
      Printf.sprintf
        "ALTER TABLE %s.%s ADD COLUMN crdb_region crdb_internal_region AS (%s) STORED"
        db table sql_case
  | L_create_database { db } -> Printf.sprintf "CREATE DATABASE %s" db
  | L_create_table { db; table } ->
      Printf.sprintf "CREATE TABLE %s.%s (%s, PRIMARY KEY (%s))" db
        table.Schema.tbl_name (columns_sql table)
        (String.concat ", " table.Schema.tbl_pkey)
  | L_add_partition_column { db; table } ->
      Printf.sprintf
        "ALTER TABLE %s.%s ADD COLUMN partition_region STRING NOT NULL" db table
  | L_partition_by { db; table; index; regions } ->
      Printf.sprintf "ALTER %s %s.%s PARTITION BY LIST (partition_region) (%s)"
        (if String.equal index "primary" then "TABLE" else "INDEX")
        db table
        (String.concat ", "
           (List.map (fun r -> Printf.sprintf "PARTITION %s VALUES IN ('%s')" r r) regions))
  | L_configure_zone { db; target; fields } ->
      Printf.sprintf "ALTER %s CONFIGURE ZONE USING %s"
        (if String.equal target db then "DATABASE " ^ db else target)
        (String.concat ", " (List.map zone_field_sql fields))
  | L_create_duplicate_index { db; table; region } ->
      Printf.sprintf "CREATE INDEX idx_%s_%s ON %s.%s (...) STORING (...)"
        table region db table
  | L_drop_index { db; table; region } ->
      Printf.sprintf "DROP INDEX %s.%s@idx_%s_%s" db table table region

let count = List.length
