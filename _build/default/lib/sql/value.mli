(** SQL values and row encoding.

    Rows are stored in the KV layer as encoded strings; keys use an
    order-preserving encoding so that range scans over encoded keys agree
    with SQL ordering. *)

type t =
  | V_null
  | V_int of int
  | V_string of string
  | V_uuid of string
  | V_region of string  (** a [crdb_internal_region] enum value (§2.1) *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_display : t -> string

val encode_key_part : t -> string
(** Order-preserving, [/]-free encoding for use inside KV keys. *)

val encode_row : t list -> string
val decode_row : string -> t list
(** @raise Invalid_argument on malformed input. *)

val gen_uuid : Crdb_stdx.Rng.t -> t
(** [gen_random_uuid()] (§4.1, option 1). *)
