(** Key encoding: SQL rows and index entries to ordered KV keys.

    Layout: [/t<table-id>/i<index-no>/p<partition>/<key-part>...] where the
    partition component is the row's region for REGIONAL BY ROW objects and
    ["_"] otherwise. Index 0 is the primary index; duplicate-index copies of
    a table use index numbers starting at {!dup_index_base}. *)

type partition = string option
(** [Some region] for a REGIONAL BY ROW partition, [None] otherwise. *)

val row_key :
  table_id:int -> index_no:int -> partition:partition -> Value.t list -> string

val partition_span :
  table_id:int -> index_no:int -> partition:partition -> string * string
(** Covering span of one (index, partition) — one Range per span. *)

val prefix_span :
  table_id:int ->
  index_no:int ->
  partition:partition ->
  Value.t list ->
  string * string
(** Span of all keys whose key columns start with the given prefix values
    (e.g. all order lines of one order). *)

val dup_index_base : int
val primary_index : int
