type t =
  | V_null
  | V_int of int
  | V_string of string
  | V_uuid of string
  | V_region of string

let equal a b =
  match (a, b) with
  | V_null, V_null -> true
  | V_int x, V_int y -> x = y
  | V_string x, V_string y | V_uuid x, V_uuid y | V_region x, V_region y ->
      String.equal x y
  | (V_null | V_int _ | V_string _ | V_uuid _ | V_region _), _ -> false

let rank = function
  | V_null -> 0
  | V_int _ -> 1
  | V_string _ -> 2
  | V_uuid _ -> 3
  | V_region _ -> 4

let compare a b =
  match (a, b) with
  | V_int x, V_int y -> Int.compare x y
  | V_string x, V_string y | V_uuid x, V_uuid y | V_region x, V_region y ->
      String.compare x y
  | _ -> Int.compare (rank a) (rank b)

let pp ppf = function
  | V_null -> Format.pp_print_string ppf "NULL"
  | V_int i -> Format.pp_print_int ppf i
  | V_string s -> Format.fprintf ppf "'%s'" s
  | V_uuid u -> Format.fprintf ppf "'%s'" u
  | V_region r -> Format.fprintf ppf "'%s'" r

let to_display v = Format.asprintf "%a" pp v

(* Keys must sort like their values. Integers are encoded as fixed-width
   zero-padded decimals offset into the positive space; strings are escaped
   so that the key separator '/' never appears. *)
let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '/' -> Buffer.add_string buf "%2F"
      | '%' -> Buffer.add_string buf "%25"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let encode_key_part = function
  | V_null -> "~null~"
  | V_int i ->
      (* Offset so negatives sort before positives. *)
      Printf.sprintf "i%019d" (i + 1_000_000_000_000_000_000)
  | V_string s -> "s" ^ escape s
  | V_uuid u -> "u" ^ escape u
  | V_region r -> "r" ^ escape r

(* Row payloads: length-prefixed fields. *)
let encode_value = function
  | V_null -> "n:"
  | V_int i -> "i:" ^ string_of_int i
  | V_string s -> "s:" ^ s
  | V_uuid u -> "u:" ^ u
  | V_region r -> "r:" ^ r

let decode_value s =
  if String.length s < 2 then invalid_arg "Value.decode_row: short field";
  let body = String.sub s 2 (String.length s - 2) in
  match s.[0] with
  | 'n' -> V_null
  | 'i' -> (
      match int_of_string_opt body with
      | Some i -> V_int i
      | None -> invalid_arg "Value.decode_row: bad int")
  | 's' -> V_string body
  | 'u' -> V_uuid body
  | 'r' -> V_region body
  | _ -> invalid_arg "Value.decode_row: bad tag"

let encode_row values =
  let buf = Buffer.create 64 in
  List.iter
    (fun v ->
      let field = encode_value v in
      Buffer.add_string buf (string_of_int (String.length field));
      Buffer.add_char buf '|';
      Buffer.add_string buf field)
    values;
  Buffer.contents buf

let decode_row s =
  let len = String.length s in
  let rec go pos acc =
    if pos >= len then List.rev acc
    else
      match String.index_from_opt s pos '|' with
      | None -> invalid_arg "Value.decode_row: missing length separator"
      | Some bar ->
          let field_len =
            match int_of_string_opt (String.sub s pos (bar - pos)) with
            | Some n when n >= 0 -> n
            | Some _ | None -> invalid_arg "Value.decode_row: bad length"
          in
          if bar + 1 + field_len > len then
            invalid_arg "Value.decode_row: truncated field";
          let field = String.sub s (bar + 1) field_len in
          go (bar + 1 + field_len) (decode_value field :: acc)
  in
  go 0 []

let hex = "0123456789abcdef"

let gen_uuid rng =
  let buf = Buffer.create 36 in
  for i = 0 to 31 do
    if i = 8 || i = 12 || i = 16 || i = 20 then Buffer.add_char buf '-';
    Buffer.add_char buf hex.[Crdb_stdx.Rng.int rng 16]
  done;
  V_uuid (Buffer.contents buf)
