(** The SQL engine: executes the declarative multi-region DDL and plans DML
    with locality awareness.

    Physical layout (§3.3): every (index, partition) pair of a table is one
    Range. REGIONAL BY ROW tables get one partition per database region for
    the primary and every secondary index; REGIONAL BY TABLE and GLOBAL
    tables a single partition. Zone configurations and closed-timestamp
    policies are derived from the table locality, the database survivability
    goal, and the placement policy.

    Planner features: uniqueness checks for implicitly partitioned unique
    indexes with the §4.1 fast paths (UUID defaults, computed regions,
    explicit region prefixes), Locality Optimized Search (§4.2), automatic
    rehoming (§2.3.2), foreign-key checks against (typically GLOBAL) parent
    tables, and the legacy duplicate-indexes topology (§7.3.1).

    DML entry points must run inside a {!Crdb_sim.Proc} (e.g. under
    [Cluster.run]); DDL entry points must run {e outside} any process — they
    drive the simulation themselves while data moves. *)

module Cluster = Crdb_kv.Cluster
module Txn = Crdb_txn.Txn

type t
type db

val create : Cluster.t -> t
val cluster : t -> Cluster.t
val txn_manager : t -> Txn.manager

exception Sql_error of string

(** {2 DDL} *)

val exec : t -> Ddl.stmt -> unit
(** Execute one DDL statement (the new declarative syntax only — legacy
    [L_*] statements exist for counting and display).
    @raise Sql_error on invalid statements (e.g. dropping a non-empty
    region, REGION survivability with fewer than 3 regions). *)

val exec_all : t -> Ddl.stmt list -> unit

val database : t -> string -> db
(** @raise Sql_error if unknown. *)

val db_name : db -> string
val primary_region : db -> string
val regions : db -> string list
(** Public (readable-writable) regions, in addition order. *)

val survival : db -> Crdb_kv.Zoneconfig.survival
val table_names : db -> string list
val table_schema : db -> string -> Schema.table
val statements_executed : t -> int

(** Cluster settings for the §7.2 experiments. *)

val set_locality_optimized_search : db -> bool -> unit
val set_auto_rehome_override : db -> bool option -> unit
(** [Some false] disables rehoming even for tables declaring it; [Some true]
    forces it on; [None] (default) honors the table definition. *)

(** {2 DML} *)

type row = (string * Value.t) list

type exec_error = Txn.error

val pp_exec_error : Format.formatter -> exec_error -> unit

val insert :
  db -> gateway:int -> table:string -> row -> (unit, exec_error) result
(** INSERT with uniqueness and FK checks. Duplicate keys and FK violations
    return [Error (Aborted _)]. *)

val upsert :
  db -> gateway:int -> table:string -> row -> (unit, exec_error) result
(** Blind write without uniqueness checks (workload loading). *)

val bulk_insert : db -> table:string -> ?region:string -> row list -> unit
(** Administrative dataset loader: installs rows (and their index entries)
    directly in storage, bypassing transactions and checks, as an initial
    [IMPORT] would. Defaults and computed columns are still evaluated;
    [region] acts as the originating gateway region (default: primary).
    Call outside any process. *)

val select_by_pk :
  db -> gateway:int -> table:string -> Value.t list -> (row option, exec_error) result

val select_by_unique :
  db ->
  gateway:int ->
  table:string ->
  col:string ->
  Value.t ->
  (row option, exec_error) result
(** Point lookup through a unique secondary index (LOS applies). *)

val update_by_pk :
  db ->
  gateway:int ->
  table:string ->
  Value.t list ->
  set:row ->
  (bool, exec_error) result
(** [Ok false] if the row does not exist. May rehome the row (§2.3.2). *)

val delete_by_pk :
  db -> gateway:int -> table:string -> Value.t list -> (bool, exec_error) result

val select_prefix :
  db ->
  gateway:int ->
  table:string ->
  prefix:Value.t list ->
  ?limit:int ->
  unit ->
  (row list, exec_error) result
(** Scan rows whose primary key starts with [prefix] (must determine the
    partition, i.e. include the computed-region source columns for REGIONAL
    BY ROW tables). *)

val select_by_pk_stale :
  db ->
  gateway:int ->
  table:string ->
  ?max_staleness:int ->
  Value.t list ->
  (row option, exec_error) result
(** Bounded-staleness read ([with_max_staleness], default 10 s) served from
    the nearest replica. *)

(** {2 Multi-statement transactions} *)

type txn_ctx

val in_txn :
  db -> gateway:int -> (txn_ctx -> 'a) -> ('a, exec_error) result

val t_insert : txn_ctx -> table:string -> row -> unit
val t_select_by_pk : txn_ctx -> table:string -> Value.t list -> row option
val t_update_by_pk : txn_ctx -> table:string -> Value.t list -> set:row -> bool
val t_select_prefix :
  txn_ctx -> table:string -> prefix:Value.t list -> ?limit:int -> unit -> row list
val t_gateway_region : txn_ctx -> string

(** {2 Introspection} *)

val ranges_of_table : db -> string -> Cluster.range_id list
val partition_ranges :
  db -> string -> (string option * Cluster.range_id) list
(** Primary-index ranges with their partition regions. *)

val row_count : db -> string -> int
(** Committed rows of a table, counted on leaseholder replicas (test aid;
    bypasses the transaction layer). *)

val region_of_row : db -> table:string -> Value.t list -> string option
(** The partition currently holding the row with this primary key, if any
    (test aid; bypasses the transaction layer). *)
