(** Legacy imperative DDL recipes (the "Before" column of Table 2).

    Before the declarative abstractions, achieving the same multi-region
    behaviour required hand-written partitioning, zone configurations, and
    duplicate indexes (§3.2, §7.5.1). Given a schema annotated with its
    {e intended} localities, these builders emit the statement list a user
    would have had to write with the old syntax; [Ddl.count] over the result
    is the number Table 2 reports. The statements are display/count-only —
    the engine executes the new syntax. *)

type operation =
  | New_schema
  | Convert_schema
  | Add_region of string
  | Drop_region of string

val statements :
  db:string ->
  regions:string list ->
  tables:Schema.table list ->
  operation ->
  Ddl.stmt list

val describe : Ddl.stmt list -> string
(** The statements rendered as SQL, one per line. *)
