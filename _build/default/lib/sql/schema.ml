type col_type = T_int | T_string | T_uuid | T_region

type default =
  | D_none
  | D_gateway_region
  | D_gen_uuid
  | D_computed of string list * (Value.t list -> Value.t)

type column = {
  col_name : string;
  col_type : col_type;
  col_default : default;
  col_hidden : bool;
}

let column ?(default = D_none) ?(hidden = false) name ty =
  { col_name = name; col_type = ty; col_default = default; col_hidden = hidden }

type locality =
  | Regional_by_table of string option
  | Regional_by_row
  | Global

let locality_to_sql = function
  | Regional_by_table None -> "REGIONAL BY TABLE IN PRIMARY REGION"
  | Regional_by_table (Some r) -> Printf.sprintf "REGIONAL BY TABLE IN %S" r
  | Regional_by_row -> "REGIONAL BY ROW"
  | Global -> "GLOBAL"

type index = { idx_name : string; idx_cols : string list; idx_unique : bool }

type fk = {
  fk_cols : string list;
  fk_parent : string;
  fk_parent_cols : string list;
}

type table = {
  tbl_name : string;
  tbl_columns : column list;
  tbl_pkey : string list;
  tbl_indexes : index list;
  tbl_fks : fk list;
  tbl_locality : locality;
  tbl_auto_rehome : bool;
  tbl_duplicate_indexes : bool;
}

let table ?(indexes = []) ?(fks = []) ?(locality = Regional_by_table None)
    ?(auto_rehome = false) ?(duplicate_indexes = false) ~name ~columns ~pkey () =
  if pkey = [] then invalid_arg "Schema.table: empty primary key";
  List.iter
    (fun c ->
      if not (List.exists (fun col -> String.equal col.col_name c) columns) then
        invalid_arg (Printf.sprintf "Schema.table: pkey column %s undefined" c))
    pkey;
  {
    tbl_name = name;
    tbl_columns = columns;
    tbl_pkey = pkey;
    tbl_indexes = indexes;
    tbl_fks = fks;
    tbl_locality = locality;
    tbl_auto_rehome = auto_rehome;
    tbl_duplicate_indexes = duplicate_indexes;
  }

let region_column = "crdb_region"

let find_column t name =
  List.find_opt (fun c -> String.equal c.col_name name) t.tbl_columns

let with_region_column t =
  match find_column t region_column with
  | Some _ -> t
  | None ->
      {
        t with
        tbl_columns =
          t.tbl_columns
          @ [ column ~default:D_gateway_region ~hidden:true region_column T_region ];
      }

let column_values t row =
  List.iter
    (fun (name, _) ->
      if find_column t name = None then
        invalid_arg (Printf.sprintf "Schema: unknown column %s in %s" name t.tbl_name))
    row;
  List.map
    (fun c ->
      match List.assoc_opt c.col_name row with
      | Some v -> v
      | None -> Value.V_null)
    t.tbl_columns

let row_of_values t values =
  try List.combine (List.map (fun c -> c.col_name) t.tbl_columns) values
  with Invalid_argument _ ->
    invalid_arg
      (Printf.sprintf "Schema.row_of_values: arity mismatch for %s" t.tbl_name)

let region_computed_from t =
  match find_column t region_column with
  | Some { col_default = D_computed (cols, _); _ } -> Some cols
  | Some _ | None -> None

let compute_region t row =
  match find_column t region_column with
  | Some { col_default = D_computed (cols, f); _ } ->
      let args =
        List.map
          (fun c -> match List.assoc_opt c row with Some v -> v | None -> Value.V_null)
          cols
      in
      Some (f args)
  | Some _ | None -> None

let all_unique_indexes t =
  { idx_name = "primary"; idx_cols = t.tbl_pkey; idx_unique = true }
  :: List.filter (fun i -> i.idx_unique) t.tbl_indexes
