(** Table schemas: columns, indexes, localities, foreign keys (§2.3).

    A schema is purely descriptive; the physical layout (ranges, partitions,
    zone configs) is derived by {!Engine} per §3.3. *)

type col_type = T_int | T_string | T_uuid | T_region

type default =
  | D_none
  | D_gateway_region
      (** [DEFAULT gateway_region()] — automatic partitioning (§2.3.2) *)
  | D_gen_uuid  (** [DEFAULT gen_random_uuid()] (§4.1) *)
  | D_computed of string list * (Value.t list -> Value.t)
      (** computed column over the named columns (computed partitioning) *)

type column = {
  col_name : string;
  col_type : col_type;
  col_default : default;
  col_hidden : bool;  (** NOT VISIBLE, like the implicit [crdb_region] *)
}

val column : ?default:default -> ?hidden:bool -> string -> col_type -> column

type locality =
  | Regional_by_table of string option
      (** [IN <region>], or [None] = the database's primary region *)
  | Regional_by_row
  | Global

val locality_to_sql : locality -> string

type index = { idx_name : string; idx_cols : string list; idx_unique : bool }

type fk = {
  fk_cols : string list;
  fk_parent : string;
  fk_parent_cols : string list;
}

type table = {
  tbl_name : string;
  tbl_columns : column list;
  tbl_pkey : string list;
  tbl_indexes : index list;
  tbl_fks : fk list;
  tbl_locality : locality;
  tbl_auto_rehome : bool;  (** ON UPDATE rehome_row() (§2.3.2) *)
  tbl_duplicate_indexes : bool;
      (** legacy duplicate-indexes topology (§7.3.1 baseline) *)
}

val table :
  ?indexes:index list ->
  ?fks:fk list ->
  ?locality:locality ->
  ?auto_rehome:bool ->
  ?duplicate_indexes:bool ->
  name:string ->
  columns:column list ->
  pkey:string list ->
  unit ->
  table
(** Default locality: [Regional_by_table None]. *)

val region_column : string
(** ["crdb_region"], the implicit partitioning column. *)

val find_column : table -> string -> column option

val with_region_column : table -> table
(** Ensure the implicit hidden [crdb_region] column exists (added with
    [DEFAULT gateway_region()] when missing), as REGIONAL BY ROW requires. *)

val column_values : table -> (string * Value.t) list -> Value.t list
(** Order a row's bindings per the schema's column order; missing columns
    become [V_null]. @raise Invalid_argument on unknown column names. *)

val row_of_values : table -> Value.t list -> (string * Value.t) list

val region_computed_from : table -> string list option
(** If [crdb_region] is a computed column, the columns it derives from. *)

val compute_region : table -> (string * Value.t) list -> Value.t option
(** Evaluate the computed region for a row, if computed. *)

val all_unique_indexes : table -> index list
(** The primary key (as an index named ["primary"]) plus declared unique
    secondary indexes. *)
