(** DDL statements.

    One value of {!stmt} corresponds to one SQL statement a user would type;
    Table 2 of the paper counts exactly these. The [N_*] constructors are
    the new declarative multi-region syntax (§2); the [L_*] constructors are
    the legacy imperative equivalents (partitioning, zone configurations,
    duplicate indexes) that the paper's "before" column counts. *)

type zone_field =
  | Zf_num_replicas of int
  | Zf_num_voters of int
  | Zf_constraints of (string * int) list
  | Zf_voter_constraints of (string * int) list
  | Zf_lease_preferences of string list

type stmt =
  (* New declarative syntax (§2). *)
  | N_create_database of { db : string; primary : string; regions : string list }
  | N_set_primary_region of { db : string; region : string }
      (** converts a single-region database to multi-region (§7.5.1) *)
  | N_add_region of { db : string; region : string }
  | N_drop_region of { db : string; region : string }
  | N_survive of { db : string; survival : Crdb_kv.Zoneconfig.survival }
  | N_placement of { db : string; restricted : bool }
  | N_create_table of { db : string; table : Schema.table }
  | N_set_locality of { db : string; table : string; locality : Schema.locality }
  | N_add_computed_region of {
      db : string;
      table : string;
      from_cols : string list;
      compute : Value.t list -> Value.t;
      sql_case : string;  (** display form of the CASE expression *)
    }
  (* Legacy imperative syntax (§3.2, §7.3.1). *)
  | L_create_database of { db : string }
  | L_create_table of { db : string; table : Schema.table }
  | L_add_partition_column of { db : string; table : string }
  | L_partition_by of { db : string; table : string; index : string; regions : string list }
  | L_configure_zone of { db : string; target : string; fields : zone_field list }
  | L_create_duplicate_index of { db : string; table : string; region : string }
  | L_drop_index of { db : string; table : string; region : string }

val to_sql : stmt -> string
(** The SQL a user would have typed for this statement. *)

val count : stmt list -> int
(** Statement count (Table 2); one [stmt] = one statement. *)
