type operation =
  | New_schema
  | Convert_schema
  | Add_region of string
  | Drop_region of string

let zone_fields_for_partition ~region =
  [
    Ddl.Zf_num_voters 3;
    Ddl.Zf_voter_constraints [ (region, 3) ];
    Ddl.Zf_lease_preferences [ region ];
  ]

(* Converting one table to its multi-region layout with the old syntax. *)
let convert_table ~db ~regions (table : Schema.table) =
  let name = table.Schema.tbl_name in
  match table.Schema.tbl_locality with
  | Schema.Global ->
      (* Duplicate-indexes topology (§7.3.1): one covering index per
         non-primary region, plus a leaseholder pin for every copy. *)
      let extra_regions = List.tl regions in
      List.map (fun r -> Ddl.L_create_duplicate_index { db; table = name; region = r })
        extra_regions
      @ List.map
          (fun r ->
            Ddl.L_configure_zone
              {
                db;
                target = Printf.sprintf "INDEX %s.%s@%s" db name r;
                fields = zone_fields_for_partition ~region:r;
              })
          regions
  | Schema.Regional_by_row ->
      (* A partitioning column (when no natural one exists), list
         partitioning of the primary and of every secondary index, and a
         zone configuration per partition. *)
      let needs_column = Schema.region_computed_from table = None in
      (if needs_column then [ Ddl.L_add_partition_column { db; table = name } ]
       else [])
      @ [ Ddl.L_partition_by { db; table = name; index = "primary"; regions } ]
      @ List.map
          (fun (idx : Schema.index) ->
            Ddl.L_partition_by { db; table = name; index = idx.Schema.idx_name; regions })
          table.Schema.tbl_indexes
      @ List.map
          (fun r ->
            Ddl.L_configure_zone
              {
                db;
                target = Printf.sprintf "PARTITION %s OF TABLE %s.%s" r db name;
                fields = zone_fields_for_partition ~region:r;
              })
          regions
  | Schema.Regional_by_table home ->
      let region =
        match home with Some r -> r | None -> List.hd regions
      in
      [
        Ddl.L_configure_zone
          {
            db;
            target = Printf.sprintf "TABLE %s.%s" db name;
            fields = zone_fields_for_partition ~region;
          };
      ]

let statements ~db ~regions ~tables operation =
  match operation with
  | New_schema ->
      (Ddl.L_create_database { db }
      :: List.map (fun t -> Ddl.L_create_table { db; table = t }) tables)
      @ List.concat_map (convert_table ~db ~regions) tables
  | Convert_schema ->
      (* The tables already exist; everything else must still be written. *)
      List.concat_map (convert_table ~db ~regions) tables
  | Add_region region ->
      List.concat_map
        (fun (t : Schema.table) ->
          let name = t.Schema.tbl_name in
          match t.Schema.tbl_locality with
          | Schema.Regional_by_row ->
              [
                Ddl.L_partition_by
                  { db; table = name; index = "primary"; regions = regions @ [ region ] };
                Ddl.L_configure_zone
                  {
                    db;
                    target = Printf.sprintf "PARTITION %s OF TABLE %s.%s" region db name;
                    fields = zone_fields_for_partition ~region;
                  };
              ]
          | Schema.Global ->
              [
                Ddl.L_create_duplicate_index { db; table = name; region };
                Ddl.L_configure_zone
                  {
                    db;
                    target = Printf.sprintf "INDEX %s.%s@%s" db name region;
                    fields = zone_fields_for_partition ~region;
                  };
              ]
          | Schema.Regional_by_table _ ->
              [
                Ddl.L_configure_zone
                  {
                    db;
                    target = Printf.sprintf "TABLE %s.%s" db name;
                    fields = [ Ddl.Zf_num_replicas (List.length regions + 3) ];
                  };
              ])
        tables
  | Drop_region region ->
      List.concat_map
        (fun (t : Schema.table) ->
          let name = t.Schema.tbl_name in
          match t.Schema.tbl_locality with
          | Schema.Regional_by_row ->
              [
                Ddl.L_partition_by
                  {
                    db;
                    table = name;
                    index = "primary";
                    regions = List.filter (fun r -> r <> region) regions;
                  };
              ]
          | Schema.Global ->
              [
                Ddl.L_drop_index { db; table = name; region };
                Ddl.L_configure_zone
                  {
                    db;
                    target = Printf.sprintf "TABLE %s.%s" db name;
                    fields = [ Ddl.Zf_num_replicas (List.length regions + 2) ];
                  };
              ]
          | Schema.Regional_by_table _ ->
              [
                Ddl.L_configure_zone
                  {
                    db;
                    target = Printf.sprintf "TABLE %s.%s" db name;
                    fields = [ Ddl.Zf_num_replicas (List.length regions + 2) ];
                  };
              ])
        tables

let describe stmts = String.concat "\n" (List.map Ddl.to_sql stmts)
