type partition = string option

let primary_index = 0
let dup_index_base = 100

let escape_region r =
  String.concat "" (List.map (fun c ->
      match c with '/' -> "_" | c -> String.make 1 c)
      (List.init (String.length r) (String.get r)))

let partition_component = function
  | None -> "_"
  | Some region -> escape_region region

let object_prefix ~table_id ~index_no ~partition =
  Printf.sprintf "/t%04d/i%03d/p%s" table_id index_no
    (partition_component partition)

let row_key ~table_id ~index_no ~partition values =
  let prefix = object_prefix ~table_id ~index_no ~partition in
  List.fold_left
    (fun acc v -> acc ^ "/" ^ Value.encode_key_part v)
    prefix values

let partition_span ~table_id ~index_no ~partition =
  let prefix = object_prefix ~table_id ~index_no ~partition in
  (* All keys continue with '/' (0x2F); '0' (0x30) is the next byte. *)
  (prefix ^ "/", prefix ^ "0")

let prefix_span ~table_id ~index_no ~partition values =
  let prefix = row_key ~table_id ~index_no ~partition values in
  (prefix ^ "/", prefix ^ "0")
