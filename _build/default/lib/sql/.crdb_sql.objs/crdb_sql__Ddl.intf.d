lib/sql/ddl.mli: Crdb_kv Schema Value
