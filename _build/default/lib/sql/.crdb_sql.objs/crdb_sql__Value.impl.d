lib/sql/value.ml: Buffer Crdb_stdx Format Int List Printf String
