lib/sql/value.mli: Crdb_stdx Format
