lib/sql/legacy.ml: Ddl List Printf Schema String
