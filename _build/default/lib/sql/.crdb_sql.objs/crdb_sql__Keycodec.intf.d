lib/sql/keycodec.mli: Value
