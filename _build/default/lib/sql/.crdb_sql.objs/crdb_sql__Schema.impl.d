lib/sql/schema.ml: List Printf String Value
