lib/sql/engine.mli: Crdb_kv Crdb_txn Ddl Format Schema Value
