lib/sql/legacy.mli: Ddl Schema
