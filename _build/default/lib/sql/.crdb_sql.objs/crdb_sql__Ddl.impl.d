lib/sql/ddl.ml: Crdb_kv List Printf Schema String Value
