lib/sql/keycodec.ml: List Printf String Value
