lib/sql/engine.ml: Crdb_hlc Crdb_kv Crdb_net Crdb_sim Crdb_stdx Crdb_storage Crdb_txn Ddl Format Hashtbl Keycodec List Schema String Value
