lib/raft/raft.ml: Crdb_sim Crdb_stdx Hashtbl List
