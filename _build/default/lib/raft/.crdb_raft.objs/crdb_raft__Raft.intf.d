lib/raft/raft.mli: Crdb_sim Crdb_stdx
