type survival = Zone | Region
type placement = Default | Restricted

type t = {
  num_voters : int;
  num_replicas : int;
  constraints : (string * int) list;
  voter_constraints : (string * int) list;
  lease_preferences : string list;
}

let pp ppf t =
  let pp_constraints ppf cs =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
      (fun ppf (r, n) -> Format.fprintf ppf "+region=%s: %d" r n)
      ppf cs
  in
  Format.fprintf ppf
    "@[<v>num_voters = %d@,num_replicas = %d@,constraints = {%a}@,\
     voter_constraints = {%a}@,lease_preferences = [[%s]]@]"
    t.num_voters t.num_replicas pp_constraints t.constraints pp_constraints
    t.voter_constraints
    (String.concat "; " (List.map (fun r -> "+region=" ^ r) t.lease_preferences))

let derive ~regions ~home ~survival ~placement =
  if not (List.mem home regions) then
    invalid_arg (Printf.sprintf "Zoneconfig.derive: home %s not a database region" home);
  let n = List.length regions in
  let others = List.filter (fun r -> not (String.equal r home)) regions in
  match (survival, placement) with
  | Zone, Default ->
      {
        num_voters = 3;
        num_replicas = 3 + (n - 1);
        constraints = List.map (fun r -> (r, 1)) others;
        voter_constraints = [ (home, 3) ];
        lease_preferences = [ home ];
      }
  | Zone, Restricted ->
      {
        num_voters = 3;
        num_replicas = 3;
        constraints = [];
        voter_constraints = [ (home, 3) ];
        lease_preferences = [ home ];
      }
  | Region, Restricted ->
      invalid_arg
        "Zoneconfig.derive: PLACEMENT RESTRICTED cannot be combined with \
         REGION survivability"
  | Region, Default ->
      if n < 3 then
        invalid_arg
          "Zoneconfig.derive: REGION survivability requires at least 3 regions";
      let num_voters = 5 in
      let num_replicas = max (2 + (n - 1)) num_voters in
      {
        num_voters;
        num_replicas;
        (* At least one replica everywhere so stale reads are region-local. *)
        constraints = List.map (fun r -> (r, 1)) others;
        voter_constraints = [ (home, 2) ];
        lease_preferences = [ home ];
      }

let survival_of_string = function
  | "ZONE" | "zone" -> Some Zone
  | "REGION" | "region" -> Some Region
  | _ -> None

let survival_to_string = function Zone -> "ZONE" | Region -> "REGION"
