(** Zone configurations (§3.2, Listing 1) and their automatic derivation from
    table localities and survivability goals (§3.3).

    A zone configuration constrains, for one Range, the number of voting and
    total replicas, per-region replica counts, and the leaseholder region.
    Users of legacy CRDB wrote these by hand; the multi-region abstractions
    generate them. *)

type survival = Zone | Region

type placement = Default | Restricted
(** [Restricted] (§3.3.4): no replicas of regional tables outside the home
    region. Only valid with [Zone] survival. *)

type t = {
  num_voters : int;
  num_replicas : int;
  constraints : (string * int) list;
      (** minimum replicas (voting or not) per region *)
  voter_constraints : (string * int) list;  (** minimum voters per region *)
  lease_preferences : string list;  (** preferred leaseholder regions *)
}

val pp : Format.formatter -> t -> unit

val derive :
  regions:string list ->
  home:string ->
  survival:survival ->
  placement:placement ->
  t
(** [derive ~regions ~home ~survival ~placement] implements §3.3:

    - {b Zone survival}: 3 voters, all in [home] spread across zones; one
      non-voter in every other region (total [3 + (N-1)] replicas), unless
      [Restricted], in which case there are no non-voters at all.
    - {b Region survival}: 5 voters with 2 in [home];
      [max (2 + (N-1)) num_voters] total replicas with at least one in every
      region.

    The leaseholder is pinned to [home].
    @raise Invalid_argument on [Region] survival with fewer than 3 regions or
    with [Restricted] placement, or if [home] is not in [regions]. *)

val survival_of_string : string -> survival option
val survival_to_string : survival -> string
