lib/kv/liveness.ml: Crdb_net Crdb_sim
