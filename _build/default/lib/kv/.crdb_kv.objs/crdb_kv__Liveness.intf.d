lib/kv/liveness.mli: Crdb_net
