lib/kv/zoneconfig.mli: Format
