lib/kv/zoneconfig.ml: Format List Printf String
