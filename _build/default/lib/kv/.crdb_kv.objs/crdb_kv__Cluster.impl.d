lib/kv/cluster.ml: Allocator Array Buffer Crdb_hlc Crdb_net Crdb_raft Crdb_sim Crdb_stdx Crdb_storage Hashtbl Int List Liveness Map Option Printf String Zoneconfig
