lib/kv/allocator.mli: Crdb_net Crdb_raft Zoneconfig
