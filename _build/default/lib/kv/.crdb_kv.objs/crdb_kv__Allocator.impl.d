lib/kv/allocator.ml: Array Crdb_net Crdb_raft Hashtbl List Option String Zoneconfig
