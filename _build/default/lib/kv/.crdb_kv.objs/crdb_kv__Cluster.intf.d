lib/kv/cluster.mli: Crdb_hlc Crdb_net Crdb_raft Crdb_sim Crdb_stdx Crdb_storage Liveness Zoneconfig
