(** Replica placement.

    Turns a {!Zoneconfig.t} into a concrete assignment of replicas to nodes,
    following CRDB's allocator heuristics (§3.2): satisfy the per-region
    constraints, spread replicas across distinct failure domains (zones, then
    regions — the diversity score), and break remaining ties by load (fewest
    replicas already on the node). Unconstrained voters go to the regions
    closest to the leaseholder so that quorums are cheap, matching the
    paper's [L_raft] = "RTT to the nearest quorum". *)

type placement = (Crdb_net.Topology.node_id * Crdb_raft.Raft.peer_kind) list

val place :
  topology:Crdb_net.Topology.t ->
  latency:Crdb_net.Latency.t ->
  load:(Crdb_net.Topology.node_id -> int) ->
  zone:Zoneconfig.t ->
  placement
(** @raise Failure if the topology cannot satisfy the configuration (for
    example, a voter constraint on a region with no nodes). *)

val preferred_leaseholder :
  topology:Crdb_net.Topology.t ->
  live:(Crdb_net.Topology.node_id -> bool) ->
  zone:Zoneconfig.t ->
  placement ->
  Crdb_net.Topology.node_id option
(** The live voter to pin the lease to: in the first preferred region that
    has one, otherwise any live voter. *)

val satisfies :
  topology:Crdb_net.Topology.t -> zone:Zoneconfig.t -> placement -> bool
(** Check a placement against the configuration (used by tests and by
    [alter] to decide whether to move replicas). *)
