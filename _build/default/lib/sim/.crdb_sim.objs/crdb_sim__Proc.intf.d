lib/sim/proc.mli: Ivar Sim
