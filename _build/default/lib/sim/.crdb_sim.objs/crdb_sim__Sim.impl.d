lib/sim/sim.ml: Crdb_stdx Int
