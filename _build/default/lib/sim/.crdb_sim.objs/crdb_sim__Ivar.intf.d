lib/sim/ivar.mli:
