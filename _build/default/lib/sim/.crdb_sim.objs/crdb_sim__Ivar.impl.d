lib/sim/ivar.ml: List
