lib/sim/proc.ml: Effect Ivar List Sim
