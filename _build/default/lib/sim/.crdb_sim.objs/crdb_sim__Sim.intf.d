lib/sim/sim.mli:
