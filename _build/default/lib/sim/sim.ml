type event = { time : int; seq : int; fn : unit -> unit; mutable live : bool }

type t = {
  mutable now : int;
  mutable seq : int;
  queue : event Crdb_stdx.Heap.t;
}

type timer = event

let cmp_event a b =
  let c = Int.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let create () = { now = 0; seq = 0; queue = Crdb_stdx.Heap.create ~cmp:cmp_event }
let now t = t.now

let enqueue t ~at fn =
  let at = if at < t.now then t.now else at in
  let ev = { time = at; seq = t.seq; fn; live = true } in
  t.seq <- t.seq + 1;
  Crdb_stdx.Heap.push t.queue ev;
  ev

let schedule t ~after fn =
  let after = if after < 0 then 0 else after in
  ignore (enqueue t ~at:(t.now + after) fn)

let schedule_at t ~at fn = ignore (enqueue t ~at fn)

let timer t ~after fn =
  let after = if after < 0 then 0 else after in
  enqueue t ~at:(t.now + after) fn

let cancel ev = ev.live <- false
let timer_pending ev = ev.live

let step t =
  match Crdb_stdx.Heap.pop t.queue with
  | None -> false
  | Some ev ->
      t.now <- ev.time;
      if ev.live then begin
        ev.live <- false;
        ev.fn ()
      end;
      true

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some limit ->
      let continue = ref true in
      while !continue do
        match Crdb_stdx.Heap.peek t.queue with
        | Some ev when ev.time <= limit -> ignore (step t)
        | Some _ | None -> continue := false
      done;
      if t.now < limit then t.now <- limit

let run_for t d = run ~until:(t.now + d) t
let pending t = Crdb_stdx.Heap.size t.queue
