type 'a state = Empty of ('a -> unit) list | Full of 'a
type 'a t = { mutable state : 'a state }

let create () = { state = Empty [] }

let try_fill t v =
  match t.state with
  | Full _ -> false
  | Empty waiters ->
      t.state <- Full v;
      (* Waiters registered first run first. *)
      List.iter (fun f -> f v) (List.rev waiters);
      true

let fill t v =
  if not (try_fill t v) then invalid_arg "Ivar.fill: already full"

let is_full t = match t.state with Full _ -> true | Empty _ -> false
let peek t = match t.state with Full v -> Some v | Empty _ -> None

let on_fill t f =
  match t.state with
  | Full v -> f v
  | Empty waiters -> t.state <- Empty (f :: waiters)
