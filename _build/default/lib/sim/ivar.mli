(** Single-assignment synchronization variables.

    An ivar is either empty or holds a value forever. Coroutines block on
    empty ivars via {!Proc.await}; filling an ivar wakes every waiter. Ivars
    are the reply slots of every RPC in the simulated cluster. *)

type 'a t

val create : unit -> 'a t

val fill : 'a t -> 'a -> unit
(** @raise Invalid_argument if already full. *)

val try_fill : 'a t -> 'a -> bool
(** [try_fill t v] fills and returns [true], or returns [false] if full. *)

val is_full : 'a t -> bool
val peek : 'a t -> 'a option

val on_fill : 'a t -> ('a -> unit) -> unit
(** [on_fill t f] runs [f v] when [t] is filled with [v]; immediately if
    already full. Callbacks run synchronously inside [fill]. *)
