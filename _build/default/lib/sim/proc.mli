(** Simulated processes: direct-style coroutines over the event loop.

    A process is an ordinary OCaml function executed under an effect handler
    that interprets blocking operations ({!await}, {!sleep}) as event-loop
    suspensions. Protocol code (Raft, transaction coordination, ...) is
    written in direct style — [let reply = Proc.await reply_slot in ...] —
    instead of as callback state machines.

    Blocking operations must only be performed from inside a process started
    with {!spawn}, {!async} or {!run_main}. *)

val spawn : Sim.t -> (unit -> unit) -> unit
(** Start a process; it begins running at the current simulated instant
    (after already-queued events for that instant). *)

val async : Sim.t -> (unit -> 'a) -> 'a Ivar.t
(** Like {!spawn} but the process's result fills the returned ivar. An
    exception in the child escapes into the event loop; prefer
    {!async_catch} when the child can fail. *)

val async_catch : Sim.t -> (unit -> 'a) -> ('a, exn) result Ivar.t
(** Like {!async} but captures exceptions so the parent can re-raise them
    in its own context with {!await_catch}. *)

val await_catch : ('a, exn) result Ivar.t -> 'a
(** Await an {!async_catch} result, re-raising the child's exception. *)

val await : 'a Ivar.t -> 'a
(** Block until the ivar is filled and return its value. *)

val await_timeout : Sim.t -> 'a Ivar.t -> timeout:int -> 'a option
(** Block until the ivar fills or [timeout] microseconds elapse. *)

val await_all : 'a Ivar.t list -> 'a list
(** Block until every ivar is filled; results in input order. *)

val await_any : Sim.t -> 'a Ivar.t list -> 'a
(** Block until the first ivar fills (earliest fill wins deterministically). *)

val sleep : Sim.t -> int -> unit
(** Suspend for the given number of simulated microseconds. *)

val yield : Sim.t -> unit
(** Let other events scheduled for the current instant run first. *)

val run_main : Sim.t -> (unit -> 'a) -> 'a
(** [run_main sim f] spawns [f], drains the whole event queue, and returns
    [f]'s result.
    @raise Failure if the queue drains before [f] completes (deadlock). *)
