(** Deterministic discrete-event simulator.

    Simulated time is an integer number of microseconds starting at 0. Events
    scheduled for the same instant fire in scheduling order (FIFO), which,
    together with the explicit {!Crdb_stdx.Rng} streams, makes every run
    reproducible from its seed. *)

type t

val create : unit -> t

val now : t -> int
(** Current simulated time in microseconds. *)

val schedule : t -> after:int -> (unit -> unit) -> unit
(** [schedule t ~after f] runs [f] at [now t + max 0 after]. *)

val schedule_at : t -> at:int -> (unit -> unit) -> unit
(** [schedule_at t ~at f] runs [f] at absolute time [at] (clamped to now). *)

(** Cancellable timers. *)
type timer

val timer : t -> after:int -> (unit -> unit) -> timer
val cancel : timer -> unit
(** Cancelling an already-fired or already-cancelled timer is a no-op. *)

val timer_pending : timer -> bool

val step : t -> bool
(** Execute the next event. [false] if the queue was empty. *)

val run : ?until:int -> t -> unit
(** Drain the event queue; if [until] is given, stop (without executing them)
    at the first event scheduled strictly after [until], leaving it queued,
    and advance [now] to [until]. *)

val run_for : t -> int -> unit
(** [run_for t d] is [run t ~until:(now t + d)]. *)

val pending : t -> int
(** Number of queued events (including cancelled timers not yet reaped). *)
