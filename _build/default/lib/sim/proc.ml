open Effect
open Effect.Deep

type _ Effect.t += Await : 'a Ivar.t -> 'a Effect.t
type _ Effect.t += Sleep : (Sim.t * int) -> unit Effect.t

let spawn sim f =
  let handler =
    {
      retc = (fun () -> ());
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Await ivar ->
              Some
                (fun (k : (a, unit) continuation) ->
                  Ivar.on_fill ivar (fun v ->
                      Sim.schedule sim ~after:0 (fun () -> continue k v)))
          | Sleep (s, d) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  Sim.schedule s ~after:d (fun () -> continue k ()))
          | _ -> None);
    }
  in
  Sim.schedule sim ~after:0 (fun () -> match_with f () handler)

let async sim f =
  let result = Ivar.create () in
  spawn sim (fun () -> Ivar.fill result (f ()));
  result

let async_catch sim f =
  let result = Ivar.create () in
  spawn sim (fun () ->
      let r = match f () with v -> Ok v | exception e -> Error e in
      Ivar.fill result r);
  result

let await ivar = perform (Await ivar)

let await_catch ivar =
  match perform (Await ivar) with Ok v -> v | Error e -> raise e
let sleep sim d = perform (Sleep (sim, d))
let yield sim = sleep sim 0

let await_timeout sim ivar ~timeout =
  let wrapped = Ivar.create () in
  Ivar.on_fill ivar (fun v -> ignore (Ivar.try_fill wrapped (Some v)));
  Sim.schedule sim ~after:timeout (fun () ->
      ignore (Ivar.try_fill wrapped None));
  await wrapped

let await_all ivars = List.map await ivars

let await_any sim ivars =
  let wrapped = Ivar.create () in
  List.iter
    (fun iv -> Ivar.on_fill iv (fun v -> ignore (Ivar.try_fill wrapped v)))
    ivars;
  ignore sim;
  await wrapped

let run_main sim f =
  let result = ref None in
  spawn sim (fun () -> result := Some (f ()));
  Sim.run sim;
  match !result with
  | Some v -> v
  | None -> failwith "Proc.run_main: event queue drained before completion"
