lib/txn/txn.mli: Crdb_hlc Crdb_kv Crdb_net Format
