lib/txn/txn.ml: Crdb_hlc Crdb_kv Crdb_sim Format List String
