(** TPC-C adapted for multi-region evaluation (§7.4).

    The nine-table schema follows the paper's adaptation: [item] is GLOBAL
    (never updated after load) and the remaining eight tables are REGIONAL
    BY ROW with the region computed from the warehouse id — warehouses are
    assigned to regions in contiguous blocks. All five transaction types
    are implemented (simplified row contents, faithful access patterns);
    1% of new-order item accesses hit a remote warehouse, so roughly 10% of
    new-order transactions cross regions, matching §7.4.

    Terminals pace themselves with the spec's keying and think times scaled
    down by {!time_scale}, preserving the tpmC-per-warehouse ceiling
    structure that the paper's efficiency metric is defined against. *)

module Crdb = Crdb_core.Crdb
module Hist = Crdb_stats.Hist

val table_names : string list

val tables :
  regions:string list -> warehouses_per_region:int -> Crdb.Schema.table list
(** Schemas with their intended multi-region localities. *)

val ddl :
  db:string ->
  regions:string list ->
  warehouses_per_region:int ->
  Crdb.Ddl.stmt list
(** New-syntax DDL: CREATE DATABASE + 9 CREATE TABLE + 8 computed-region
    columns (Table 2's TPC-C "after" column). *)

val load :
  Crdb.t ->
  Crdb.Engine.db ->
  warehouses_per_region:int ->
  ?districts_per_warehouse:int ->
  ?customers_per_district:int ->
  ?items:int ->
  unit ->
  unit

val time_scale : int
(** Keying/think times are the spec's divided by this (5), so a warehouse's
    ceiling is [12.86 * time_scale] tpmC. Scaling shortens the simulation
    without changing the latency-to-ceiling structure much: transaction
    latencies (tens of ms) stay small next to the ~4-6 s scaled cycles. *)

type results = {
  new_order : Hist.t;
  payment : Hist.t;
  order_status : Hist.t;
  delivery : Hist.t;
  stock_level : Hist.t;
  all : Hist.t;
  by_region : (string * Hist.t) list;
  mutable committed_new_orders : int;
  mutable remote_new_orders : int;
  mutable errors : int;
  mutable elapsed : int;
  mutable busy_micros : int;
  mutable pause_micros : int;
}

val tpmc : results -> float
(** Committed new-order transactions per simulated minute. *)

val efficiency : results -> warehouses:int -> float
(** Fraction of the spec-paced terminal cycle retained (think time over
    think + transaction time): 1.0 means transactions are free, i.e. the
    spec's 12.86-per-warehouse ceiling. The paper's "efficiency as defined
    by TPC-C" is the equivalent ratio. *)

val run :
  Crdb.t ->
  Crdb.Engine.db ->
  warehouses_per_region:int ->
  ?terminals_per_warehouse:int ->
  ?duration:int ->
  ?districts_per_warehouse:int ->
  ?customers_per_district:int ->
  ?items:int ->
  ?seed:int ->
  unit ->
  results
(** Run the mix (45/43/4/4/4) for [duration] simulated microseconds
    (default 60 s) with closed-loop paced terminals (default 10 per
    warehouse). *)
