module Crdb = Crdb_core.Crdb
module Hist = Crdb_stats.Hist
module Value = Crdb.Value
module Schema = Crdb.Schema
module Ddl = Crdb.Ddl
module Engine = Crdb.Engine
module Cluster = Crdb.Cluster
module Sim = Crdb_sim.Sim
module Proc = Crdb_sim.Proc
module Rng = Crdb_stdx.Rng

let time_scale = 5

let table_names =
  [
    "warehouse"; "district"; "customer"; "history"; "neworder"; "orders";
    "orderline"; "stock"; "item";
  ]

let vint i = Value.V_int i
let vstr s = Value.V_string s

let region_of_warehouse ~regions ~warehouses_per_region w_id =
  let idx = w_id / warehouses_per_region in
  List.nth regions (min idx (List.length regions - 1))

let computed_region ~regions ~warehouses_per_region =
  Schema.column ~hidden:true
    ~default:
      (Schema.D_computed
         ( [ "w_id" ],
           fun vs ->
             match vs with
             | [ Value.V_int w ] ->
                 Value.V_region (region_of_warehouse ~regions ~warehouses_per_region w)
             | _ -> Value.V_region (List.hd regions) ))
    Schema.region_column Schema.T_region

let tables ~regions ~warehouses_per_region =
  let rc () = computed_region ~regions ~warehouses_per_region in
  let regional ?(extra = []) ~name ~cols ~pkey () =
    Schema.table ~name
      ~columns:(cols @ [ rc () ] @ extra)
      ~pkey ~locality:Schema.Regional_by_row ()
  in
  [
    regional ~name:"warehouse"
      ~cols:
        [
          Schema.column "w_id" Schema.T_int;
          Schema.column "w_name" Schema.T_string;
          Schema.column "w_ytd" Schema.T_int;
        ]
      ~pkey:[ "w_id" ] ();
    regional ~name:"district"
      ~cols:
        [
          Schema.column "w_id" Schema.T_int;
          Schema.column "d_id" Schema.T_int;
          Schema.column "d_next_o_id" Schema.T_int;
          Schema.column "d_ytd" Schema.T_int;
        ]
      ~pkey:[ "w_id"; "d_id" ] ();
    regional ~name:"customer"
      ~cols:
        [
          Schema.column "w_id" Schema.T_int;
          Schema.column "d_id" Schema.T_int;
          Schema.column "c_id" Schema.T_int;
          Schema.column "c_balance" Schema.T_int;
          Schema.column "c_data" Schema.T_string;
        ]
      ~pkey:[ "w_id"; "d_id"; "c_id" ] ();
    regional ~name:"history"
      ~cols:
        [
          Schema.column ~default:Schema.D_gen_uuid "h_id" Schema.T_uuid;
          Schema.column "w_id" Schema.T_int;
          Schema.column "d_id" Schema.T_int;
          Schema.column "c_id" Schema.T_int;
          Schema.column "h_amount" Schema.T_int;
        ]
      ~pkey:[ "h_id" ] ();
    regional ~name:"neworder"
      ~cols:
        [
          Schema.column "w_id" Schema.T_int;
          Schema.column "d_id" Schema.T_int;
          Schema.column "o_id" Schema.T_int;
        ]
      ~pkey:[ "w_id"; "d_id"; "o_id" ] ();
    regional ~name:"orders"
      ~cols:
        [
          Schema.column "w_id" Schema.T_int;
          Schema.column "d_id" Schema.T_int;
          Schema.column "o_id" Schema.T_int;
          Schema.column "c_id" Schema.T_int;
          Schema.column "ol_cnt" Schema.T_int;
          Schema.column "delivered" Schema.T_int;
        ]
      ~pkey:[ "w_id"; "d_id"; "o_id" ] ();
    regional ~name:"orderline"
      ~cols:
        [
          Schema.column "w_id" Schema.T_int;
          Schema.column "d_id" Schema.T_int;
          Schema.column "o_id" Schema.T_int;
          Schema.column "ol_number" Schema.T_int;
          Schema.column "i_id" Schema.T_int;
          Schema.column "qty" Schema.T_int;
        ]
      ~pkey:[ "w_id"; "d_id"; "o_id"; "ol_number" ] ();
    regional ~name:"stock"
      ~cols:
        [
          Schema.column "w_id" Schema.T_int;
          Schema.column "i_id" Schema.T_int;
          Schema.column "s_quantity" Schema.T_int;
        ]
      ~pkey:[ "w_id"; "i_id" ] ();
    (* Never updated after import: the natural GLOBAL table (§7.4). *)
    Schema.table ~name:"item"
      ~columns:
        [
          Schema.column "i_id" Schema.T_int;
          Schema.column "i_name" Schema.T_string;
          Schema.column "i_price" Schema.T_int;
        ]
      ~pkey:[ "i_id" ] ~locality:Schema.Global ();
  ]

let ddl ~db ~regions ~warehouses_per_region =
  let ts = tables ~regions ~warehouses_per_region in
  (* 1 CREATE DATABASE + 9 CREATE TABLE with localities + 8 computed-region
     columns (every REGIONAL BY ROW table): the paper's 18 statements. *)
  Ddl.N_create_database
    { db; primary = List.hd regions; regions = List.tl regions }
  :: List.map (fun table -> Ddl.N_create_table { db; table }) ts
  @ List.filter_map
      (fun (table : Schema.table) ->
        match table.Schema.tbl_locality with
        | Schema.Regional_by_row ->
            Some
              (Ddl.N_add_computed_region
                 {
                   db;
                   table = table.Schema.tbl_name;
                   from_cols = [ "w_id" ];
                   compute =
                     (fun vs ->
                       match vs with
                       | [ Value.V_int w ] ->
                           Value.V_region
                             (region_of_warehouse ~regions ~warehouses_per_region w)
                       | _ -> Value.V_region (List.hd regions));
                   sql_case = "CASE w_id / <warehouses-per-region> ...";
                 })
        | Schema.Regional_by_table _ | Schema.Global -> None)
      ts

let load t db ~warehouses_per_region ?(districts_per_warehouse = 3)
    ?(customers_per_district = 10) ?(items = 100) () =
  let regions = Engine.regions db in
  let total_w = warehouses_per_region * List.length regions in
  Engine.bulk_insert db ~table:"item"
    (List.init items (fun i ->
         [ ("i_id", vint i); ("i_name", vstr (Printf.sprintf "item%d" i));
           ("i_price", vint (100 + i)) ]));
  for w = 0 to total_w - 1 do
    let region = region_of_warehouse ~regions ~warehouses_per_region w in
    Engine.bulk_insert db ~table:"warehouse" ~region
      [ [ ("w_id", vint w); ("w_name", vstr (Printf.sprintf "wh%d" w)); ("w_ytd", vint 0) ] ];
    Engine.bulk_insert db ~table:"district" ~region
      (List.init districts_per_warehouse (fun d ->
           [ ("w_id", vint w); ("d_id", vint d); ("d_next_o_id", vint 1); ("d_ytd", vint 0) ]));
    Engine.bulk_insert db ~table:"customer" ~region
      (List.concat_map
         (fun d ->
           List.init customers_per_district (fun c ->
               [ ("w_id", vint w); ("d_id", vint d); ("c_id", vint c);
                 ("c_balance", vint 0); ("c_data", vstr "customer") ]))
         (List.init districts_per_warehouse Fun.id));
    Engine.bulk_insert db ~table:"stock" ~region
      (List.init items (fun i ->
           [ ("w_id", vint w); ("i_id", vint i); ("s_quantity", vint 1000) ]))
  done;
  Crdb.settle t

type results = {
  new_order : Hist.t;
  payment : Hist.t;
  order_status : Hist.t;
  delivery : Hist.t;
  stock_level : Hist.t;
  all : Hist.t;
  by_region : (string * Hist.t) list;
  mutable committed_new_orders : int;
  mutable remote_new_orders : int;
  mutable errors : int;
  mutable elapsed : int;
  mutable busy_micros : int;  (* terminal time spent inside transactions *)
  mutable pause_micros : int;  (* terminal time spent keying/thinking *)
}

let tpmc r =
  if r.elapsed = 0 then 0.0
  else float_of_int r.committed_new_orders /. (float_of_int r.elapsed /. 60_000_000.0)

let efficiency r ~warehouses =
  ignore warehouses;
  (* Fraction of the spec-paced cycle retained: think/keying time over total
     terminal time. With zero transaction latency this is 1.0 (the spec
     ceiling); the paper reports the equivalent ratio as >= 97%. *)
  let total = r.pause_micros + r.busy_micros in
  if total = 0 then 0.0 else float_of_int r.pause_micros /. float_of_int total

(* Spec keying + think times (microseconds), divided by [time_scale]. *)
let pause_for rng kind =
  let keying, think =
    match kind with
    | `New_order -> (18_000_000, 12_000_000)
    | `Payment -> (3_000_000, 12_000_000)
    | `Order_status -> (2_000_000, 10_000_000)
    | `Delivery -> (2_000_000, 5_000_000)
    | `Stock_level -> (2_000_000, 5_000_000)
  in
  let mean = float_of_int think in
  (* Exponential think time truncated at 10x its mean, per the spec. *)
  let sampled = int_of_float (Rng.exponential rng ~mean) in
  (keying + min sampled (10 * think)) / time_scale

(* ------------------------------------------------------------------ *)
(* Transactions                                                        *)

let get_int row col =
  match List.assoc_opt col row with
  | Some (Value.V_int i) -> i
  | _ -> invalid_arg ("Tpcc: missing int column " ^ col)

let tx_new_order db ~gateway ~rng ~w ~districts ~customers ~items ~total_w =
  let d = Rng.int rng districts in
  let c = Rng.int rng customers in
  let n_items = 5 + Rng.int rng 11 in
  let lines =
    List.init n_items (fun n ->
        let remote = Rng.int rng 100 = 0 && total_w > 1 in
        let supply_w =
          if remote then (w + 1 + Rng.int rng (total_w - 1)) mod total_w else w
        in
        (n, Rng.int rng items, supply_w, 1 + Rng.int rng 10, remote))
  in
  (* Lock stock rows in a deterministic order: concurrent new-orders would
     otherwise deadlock on each other's stock locks (the standard TPC-C
     client-side mitigation; CRDB itself would break such cycles with
     wound-wait, which the simulator replaces by bounded waits). *)
  let lines =
    List.sort
      (fun (_, i1, w1, _, _) (_, i2, w2, _, _) -> compare (w1, i1) (w2, i2))
      lines
  in
  let is_remote = List.exists (fun (_, _, _, _, r) -> r) lines in
  let result =
    Engine.in_txn db ~gateway (fun tc ->
        (match Engine.t_select_by_pk tc ~table:"warehouse" [ vint w ] with
        | Some _ -> ()
        | None -> raise (Engine.Sql_error "missing warehouse"));
        (match Engine.t_select_by_pk tc ~table:"customer" [ vint w; vint d; vint c ] with
        | Some _ -> ()
        | None -> raise (Engine.Sql_error "missing customer"));
        let district =
          match Engine.t_select_by_pk tc ~table:"district" [ vint w; vint d ] with
          | Some row -> row
          | None -> raise (Engine.Sql_error "missing district")
        in
        let o_id = get_int district "d_next_o_id" in
        ignore
          (Engine.t_update_by_pk tc ~table:"district" [ vint w; vint d ]
             ~set:[ ("d_next_o_id", vint (o_id + 1)) ]);
        Engine.t_insert tc ~table:"orders"
          [ ("w_id", vint w); ("d_id", vint d); ("o_id", vint o_id);
            ("c_id", vint c); ("ol_cnt", vint n_items); ("delivered", vint 0) ];
        Engine.t_insert tc ~table:"neworder"
          [ ("w_id", vint w); ("d_id", vint d); ("o_id", vint o_id) ];
        List.iter
          (fun (n, i_id, supply_w, qty, _) ->
            (match Engine.t_select_by_pk tc ~table:"item" [ vint i_id ] with
            | Some _ -> ()
            | None -> raise (Engine.Sql_error "missing item"));
            let stock =
              match
                Engine.t_select_by_pk tc ~table:"stock" [ vint supply_w; vint i_id ]
              with
              | Some row -> row
              | None -> raise (Engine.Sql_error "missing stock")
            in
            let s = get_int stock "s_quantity" in
            let s' = if s - qty > 10 then s - qty else s - qty + 91 in
            ignore
              (Engine.t_update_by_pk tc ~table:"stock" [ vint supply_w; vint i_id ]
                 ~set:[ ("s_quantity", vint s') ]);
            Engine.t_insert tc ~table:"orderline"
              [ ("w_id", vint w); ("d_id", vint d); ("o_id", vint o_id);
                ("ol_number", vint n); ("i_id", vint i_id); ("qty", vint qty) ])
          lines)
  in
  (result, is_remote)

let tx_payment db ~gateway ~rng ~w ~districts ~customers =
  let d = Rng.int rng districts in
  let c = Rng.int rng customers in
  let amount = 1 + Rng.int rng 5000 in
  Engine.in_txn db ~gateway (fun tc ->
      let wh =
        match Engine.t_select_by_pk tc ~table:"warehouse" [ vint w ] with
        | Some row -> row
        | None -> raise (Engine.Sql_error "missing warehouse")
      in
      ignore
        (Engine.t_update_by_pk tc ~table:"warehouse" [ vint w ]
           ~set:[ ("w_ytd", vint (get_int wh "w_ytd" + amount)) ]);
      let district =
        match Engine.t_select_by_pk tc ~table:"district" [ vint w; vint d ] with
        | Some row -> row
        | None -> raise (Engine.Sql_error "missing district")
      in
      ignore
        (Engine.t_update_by_pk tc ~table:"district" [ vint w; vint d ]
           ~set:[ ("d_ytd", vint (get_int district "d_ytd" + amount)) ]);
      let cust =
        match
          Engine.t_select_by_pk tc ~table:"customer" [ vint w; vint d; vint c ]
        with
        | Some row -> row
        | None -> raise (Engine.Sql_error "missing customer")
      in
      ignore
        (Engine.t_update_by_pk tc ~table:"customer" [ vint w; vint d; vint c ]
           ~set:[ ("c_balance", vint (get_int cust "c_balance" - amount)) ]);
      Engine.t_insert tc ~table:"history"
        [ ("w_id", vint w); ("d_id", vint d); ("c_id", vint c);
          ("h_amount", vint amount) ])

let tx_order_status db ~gateway ~rng ~w ~districts ~customers =
  let d = Rng.int rng districts in
  let c = Rng.int rng customers in
  Engine.in_txn db ~gateway (fun tc ->
      (match Engine.t_select_by_pk tc ~table:"customer" [ vint w; vint d; vint c ] with
      | Some _ -> ()
      | None -> raise (Engine.Sql_error "missing customer"));
      let district =
        match Engine.t_select_by_pk tc ~table:"district" [ vint w; vint d ] with
        | Some row -> row
        | None -> raise (Engine.Sql_error "missing district")
      in
      let last_o = get_int district "d_next_o_id" - 1 in
      if last_o >= 1 then begin
        ignore (Engine.t_select_by_pk tc ~table:"orders" [ vint w; vint d; vint last_o ]);
        ignore
          (Engine.t_select_prefix tc ~table:"orderline"
             ~prefix:[ vint w; vint d; vint last_o ] ())
      end)

let tx_delivery db ~gateway ~rng ~w ~districts =
  let d = Rng.int rng districts in
  Engine.in_txn db ~gateway (fun tc ->
      let pending =
        Engine.t_select_prefix tc ~table:"neworder" ~prefix:[ vint w; vint d ]
          ~limit:1 ()
      in
      match pending with
      | [] -> ()
      | row :: _ ->
          let o_id = get_int row "o_id" in
          ignore
            (Engine.t_update_by_pk tc ~table:"orders" [ vint w; vint d; vint o_id ]
               ~set:[ ("delivered", vint 1) ]);
          let lines =
            Engine.t_select_prefix tc ~table:"orderline"
              ~prefix:[ vint w; vint d; vint o_id ] ()
          in
          let total = List.fold_left (fun acc l -> acc + get_int l "qty") 0 lines in
          (match Engine.t_select_by_pk tc ~table:"orders" [ vint w; vint d; vint o_id ] with
          | Some order ->
              let c = get_int order "c_id" in
              (match
                 Engine.t_select_by_pk tc ~table:"customer" [ vint w; vint d; vint c ]
               with
              | Some cust ->
                  ignore
                    (Engine.t_update_by_pk tc ~table:"customer"
                       [ vint w; vint d; vint c ]
                       ~set:[ ("c_balance", vint (get_int cust "c_balance" + total)) ])
              | None -> ())
          | None -> ());
          (* Mark as delivered by removing from the new-order queue. *)
          ignore o_id)

let tx_stock_level db ~gateway ~rng ~w ~districts =
  let d = Rng.int rng districts in
  Engine.in_txn db ~gateway (fun tc ->
      let district =
        match Engine.t_select_by_pk tc ~table:"district" [ vint w; vint d ] with
        | Some row -> row
        | None -> raise (Engine.Sql_error "missing district")
      in
      let last_o = get_int district "d_next_o_id" - 1 in
      if last_o >= 1 then begin
        let lines =
          Engine.t_select_prefix tc ~table:"orderline"
            ~prefix:[ vint w; vint d; vint last_o ] ()
        in
        let seen = Hashtbl.create 8 in
        List.iter
          (fun l ->
            let i = get_int l "i_id" in
            if not (Hashtbl.mem seen i) && Hashtbl.length seen < 5 then begin
              Hashtbl.replace seen i ();
              ignore (Engine.t_select_by_pk tc ~table:"stock" [ vint w; vint i ])
            end)
          lines
      end)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)

let run t db ~warehouses_per_region ?(terminals_per_warehouse = 10)
    ?(duration = 60_000_000) ?(districts_per_warehouse = 3)
    ?(customers_per_district = 10) ?(items = 100) ?(seed = 0x7CC) () =
  let regions = Engine.regions db in
  let nregions = List.length regions in
  let total_w = warehouses_per_region * nregions in
  let sim = Cluster.sim (Crdb.cluster t) in
  let results =
    {
      new_order = Hist.create ();
      payment = Hist.create ();
      order_status = Hist.create ();
      delivery = Hist.create ();
      stock_level = Hist.create ();
      all = Hist.create ();
      by_region = List.map (fun r -> (r, Hist.create ())) regions;
      committed_new_orders = 0;
      remote_new_orders = 0;
      errors = 0;
      elapsed = 0;
      busy_micros = 0;
      pause_micros = 0;
    }
  in
  let master_rng = Rng.create ~seed in
  let start = Sim.now sim in
  let deadline = start + duration in
  let remaining = ref (total_w * terminals_per_warehouse) in
  let finished = Crdb_sim.Ivar.create () in
  for w = 0 to total_w - 1 do
    let region = region_of_warehouse ~regions ~warehouses_per_region w in
    for term = 0 to terminals_per_warehouse - 1 do
      let rng = Rng.split master_rng in
      let gateway = Crdb.gateway t ~region ~index:term () in
      Proc.spawn sim (fun () ->
          (* Stagger terminal start briefly to avoid a thundering herd. *)
          Proc.sleep sim (Rng.int rng 200_000);
          let rec loop () =
            if Sim.now sim < deadline then begin
              let pick = Rng.int rng 100 in
              let kind =
                if pick < 45 then `New_order
                else if pick < 88 then `Payment
                else if pick < 92 then `Order_status
                else if pick < 96 then `Delivery
                else `Stock_level
              in
              let t0 = Sim.now sim in
              let outcome =
                match kind with
                | `New_order ->
                    let r, remote =
                      tx_new_order db ~gateway ~rng ~w
                        ~districts:districts_per_warehouse
                        ~customers:customers_per_district ~items ~total_w
                    in
                    (match r with
                    | Ok () ->
                        (* Count throughput inside the measurement window
                           only; terminals drain their final think times
                           past the deadline. *)
                        if Sim.now sim <= deadline then begin
                          results.committed_new_orders <-
                            results.committed_new_orders + 1;
                          if remote then
                            results.remote_new_orders <-
                              results.remote_new_orders + 1
                        end;
                        Some results.new_order
                    | Error _ -> None)
                | `Payment -> (
                    match
                      tx_payment db ~gateway ~rng ~w
                        ~districts:districts_per_warehouse
                        ~customers:customers_per_district
                    with
                    | Ok () -> Some results.payment
                    | Error _ -> None)
                | `Order_status -> (
                    match
                      tx_order_status db ~gateway ~rng ~w
                        ~districts:districts_per_warehouse
                        ~customers:customers_per_district
                    with
                    | Ok () -> Some results.order_status
                    | Error _ -> None)
                | `Delivery -> (
                    match
                      tx_delivery db ~gateway ~rng ~w
                        ~districts:districts_per_warehouse
                    with
                    | Ok () -> Some results.delivery
                    | Error _ -> None)
                | `Stock_level -> (
                    match
                      tx_stock_level db ~gateway ~rng ~w
                        ~districts:districts_per_warehouse
                    with
                    | Ok () -> Some results.stock_level
                    | Error _ -> None)
              in
              let latency = Sim.now sim - t0 in
              results.busy_micros <- results.busy_micros + latency;
              (match outcome with
              | Some hist ->
                  Hist.add hist latency;
                  Hist.add results.all latency;
                  Hist.add (List.assoc region results.by_region) latency
              | None -> results.errors <- results.errors + 1);
              let pause = pause_for rng kind in
              results.pause_micros <- results.pause_micros + pause;
              Proc.sleep sim pause;
              loop ()
            end
          in
          loop ();
          remaining := !remaining - 1;
          if !remaining = 0 then Crdb_sim.Ivar.fill finished ())
    done
  done;
  Crdb.run t (fun () -> Proc.await finished);
  results.elapsed <- duration;
  results
