(** movr, the paper's motivating ride-sharing application (Fig. 1, §7.5.1).

    Six tables: five are REGIONAL BY ROW with the region computed from the
    row's city, and [promo_codes] — reference data with no locality of
    access — is GLOBAL. [users.email] carries a global UNIQUE constraint
    that does not include the partitioning column, the paper's headline
    §4.1 example. *)

module Crdb = Crdb_core.Crdb

val cities : (string * string) list
(** (city, region) assignments used by the computed-region columns. *)

val region_of_city : regions:string list -> string -> string

val tables : regions:string list -> Crdb.Schema.table list
val table_names : string list

type operation =
  | New_schema
  | Convert_schema
  | Add_region of string
  | Drop_region of string

val ddl : db:string -> regions:string list -> operation -> Crdb.Ddl.stmt list
(** New declarative syntax: 12 statements for a fresh 3-region schema
    (1 CREATE DATABASE + 6 CREATE TABLE + 5 computed-region columns), 2 for
    converting an existing multi-region database (2 ADD REGION), 1 each for
    region add/drop — Table 2's movr "after" column. *)

val legacy_ddl :
  db:string -> regions:string list -> operation -> Crdb.Ddl.stmt list
(** The imperative equivalent (Table 2's "before" column). *)

val load :
  Crdb.t -> Crdb.Engine.db -> users_per_city:int -> vehicles_per_city:int -> unit
