module Crdb = Crdb_core.Crdb
module Value = Crdb.Value
module Schema = Crdb.Schema
module Ddl = Crdb.Ddl
module Legacy = Crdb.Legacy
module Engine = Crdb.Engine

let cities =
  [
    ("new york", "us-east1");
    ("boston", "us-east1");
    ("washington dc", "us-east1");
    ("san francisco", "us-west1");
    ("seattle", "us-west1");
    ("los angeles", "us-west1");
    ("amsterdam", "europe-west2");
    ("paris", "europe-west2");
    ("rome", "europe-west2");
  ]

let region_of_city ~regions city =
  match List.assoc_opt city cities with
  | Some r when List.mem r regions -> r
  | Some _ | None -> List.hd regions

let city_region_column regions =
  Schema.column ~hidden:true
    ~default:
      (Schema.D_computed
         ( [ "city" ],
           fun vs ->
             match vs with
             | [ Value.V_string city ] ->
                 Value.V_region (region_of_city ~regions city)
             | _ -> Value.V_region (List.hd regions) ))
    Schema.region_column Schema.T_region

let table_names =
  [
    "users"; "vehicles"; "rides"; "vehicle_location_histories";
    "user_promo_codes"; "promo_codes";
  ]

let tables ~regions =
  let rc () = city_region_column regions in
  [
    Schema.table ~name:"users"
      ~columns:
        [
          Schema.column ~default:Schema.D_gen_uuid "id" Schema.T_uuid;
          Schema.column "city" Schema.T_string;
          Schema.column "name" Schema.T_string;
          Schema.column "email" Schema.T_string;
          rc ();
        ]
      ~pkey:[ "id" ]
      ~indexes:
        [ { Schema.idx_name = "users_email_key"; idx_cols = [ "email" ]; idx_unique = true } ]
      ~locality:Schema.Regional_by_row ();
    Schema.table ~name:"vehicles"
      ~columns:
        [
          Schema.column ~default:Schema.D_gen_uuid "id" Schema.T_uuid;
          Schema.column "city" Schema.T_string;
          Schema.column "type" Schema.T_string;
          Schema.column "owner_id" Schema.T_uuid;
          rc ();
        ]
      ~pkey:[ "id" ] ~locality:Schema.Regional_by_row ();
    Schema.table ~name:"rides"
      ~columns:
        [
          Schema.column ~default:Schema.D_gen_uuid "id" Schema.T_uuid;
          Schema.column "city" Schema.T_string;
          Schema.column "rider_id" Schema.T_uuid;
          Schema.column "vehicle_id" Schema.T_uuid;
          Schema.column "promo_code" Schema.T_string;
          rc ();
        ]
      ~pkey:[ "id" ]
      ~fks:
        [
          {
            Schema.fk_cols = [ "promo_code" ];
            fk_parent = "promo_codes";
            fk_parent_cols = [ "code" ];
          };
        ]
      ~locality:Schema.Regional_by_row ();
    Schema.table ~name:"vehicle_location_histories"
      ~columns:
        [
          Schema.column ~default:Schema.D_gen_uuid "id" Schema.T_uuid;
          Schema.column "city" Schema.T_string;
          Schema.column "ride_id" Schema.T_uuid;
          Schema.column "lat" Schema.T_int;
          Schema.column "long" Schema.T_int;
          rc ();
        ]
      ~pkey:[ "id" ] ~locality:Schema.Regional_by_row ();
    Schema.table ~name:"user_promo_codes"
      ~columns:
        [
          Schema.column "user_id" Schema.T_uuid;
          Schema.column "code" Schema.T_string;
          Schema.column "city" Schema.T_string;
          Schema.column "usage_count" Schema.T_int;
          rc ();
        ]
      ~pkey:[ "user_id"; "code" ] ~locality:Schema.Regional_by_row ();
    Schema.table ~name:"promo_codes"
      ~columns:
        [
          Schema.column "code" Schema.T_string;
          Schema.column "description" Schema.T_string;
          Schema.column "expiration" Schema.T_int;
        ]
      ~pkey:[ "code" ] ~locality:Schema.Global ();
  ]

type operation =
  | New_schema
  | Convert_schema
  | Add_region of string
  | Drop_region of string

let computed_region_stmts ~db ~regions =
  List.filter_map
    (fun (table : Schema.table) ->
      match table.Schema.tbl_locality with
      | Schema.Regional_by_row ->
          Some
            (Ddl.N_add_computed_region
               {
                 db;
                 table = table.Schema.tbl_name;
                 from_cols = [ "city" ];
                 compute =
                   (fun vs ->
                     match vs with
                     | [ Value.V_string city ] ->
                         Value.V_region (region_of_city ~regions city)
                     | _ -> Value.V_region (List.hd regions));
                 sql_case =
                   "CASE WHEN city IN ('new york', ...) THEN 'us-east1' ... END";
               })
      | Schema.Regional_by_table _ | Schema.Global -> None)
    (tables ~regions)

let ddl ~db ~regions op =
  match op with
  | New_schema ->
      (* 1 CREATE DATABASE + 6 CREATE TABLE + 5 computed columns = 12. *)
      Ddl.N_create_database
        { db; primary = List.hd regions; regions = List.tl regions }
      :: List.map (fun table -> Ddl.N_create_table { db; table }) (tables ~regions)
      @ computed_region_stmts ~db ~regions
  | Convert_schema ->
      (* The single-region schema exists: make the database multi-region
         (SET PRIMARY REGION + 2 ADD REGION — §7.5.1's "only 2 additional
         statements" on top of the fresh-schema localities), then set each
         table's locality and computed region. *)
      Ddl.N_set_primary_region { db; region = List.hd regions }
      :: List.map (fun r -> Ddl.N_add_region { db; region = r }) (List.tl regions)
      @ List.map
          (fun (table : Schema.table) ->
            Ddl.N_set_locality
              {
                db;
                table = table.Schema.tbl_name;
                locality = table.Schema.tbl_locality;
              })
          (tables ~regions)
      @ computed_region_stmts ~db ~regions
  | Add_region r -> [ Ddl.N_add_region { db; region = r } ]
  | Drop_region r -> [ Ddl.N_drop_region { db; region = r } ]

let legacy_ddl ~db ~regions op =
  let tables = tables ~regions in
  let lop =
    match op with
    | New_schema -> Legacy.New_schema
    | Convert_schema -> Legacy.Convert_schema
    | Add_region r -> Legacy.Add_region r
    | Drop_region r -> Legacy.Drop_region r
  in
  Legacy.statements ~db ~regions ~tables lop

let load t db ~users_per_city ~vehicles_per_city =
  let regions = Engine.regions db in
  let usable = List.filter (fun (_, r) -> List.mem r regions) cities in
  let rng = Crdb_stdx.Rng.create ~seed:0x30FF in
  Engine.bulk_insert db ~table:"promo_codes"
    (List.init 10 (fun i ->
         [
           ("code", Value.V_string (Printf.sprintf "promo_%d" i));
           ("description", Value.V_string "discount");
           ("expiration", Value.V_int (1000000 + i));
         ]));
  List.iteri
    (fun ci (city, region) ->
      Engine.bulk_insert db ~table:"users" ~region
        (List.init users_per_city (fun i ->
             [
               ("id", Value.gen_uuid rng);
               ("city", Value.V_string city);
               ("name", Value.V_string (Printf.sprintf "user-%d-%d" ci i));
               ("email", Value.V_string (Printf.sprintf "user%d.%d@movr.com" ci i));
             ]));
      Engine.bulk_insert db ~table:"vehicles" ~region
        (List.init vehicles_per_city (fun i ->
             [
               ("id", Value.gen_uuid rng);
               ("city", Value.V_string city);
               ("type", Value.V_string (if i mod 2 = 0 then "bike" else "scooter"));
               ("owner_id", Value.gen_uuid rng);
             ])))
    usable;
  Crdb.settle t
