lib/workload/movr.mli: Crdb_core
