lib/workload/tpcc.mli: Crdb_core Crdb_stats
