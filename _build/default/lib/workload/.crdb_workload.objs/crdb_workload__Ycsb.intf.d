lib/workload/ycsb.mli: Crdb_core Crdb_stats
