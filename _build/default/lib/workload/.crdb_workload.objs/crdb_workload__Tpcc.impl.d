lib/workload/tpcc.ml: Crdb_core Crdb_sim Crdb_stats Crdb_stdx Fun Hashtbl List Printf
