lib/workload/ycsb.ml: Crdb_core Crdb_sim Crdb_stats Crdb_stdx Fun List Printf String
