lib/workload/movr.ml: Crdb_core Crdb_stdx List Printf
