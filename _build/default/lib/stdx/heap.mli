(** Imperative binary min-heap.

    The heap is parameterized by a comparison function supplied at creation
    time. Elements comparing smaller are popped first. All operations are
    amortized [O(log n)] except [peek] and [size] which are [O(1)]. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] is an empty heap ordered by [cmp]. *)

val size : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** [peek h] is the minimum element without removing it. *)

val pop : 'a t -> 'a option
(** [pop h] removes and returns the minimum element. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument if the heap is empty. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** [to_list h] is the elements in unspecified order; does not modify [h]. *)
