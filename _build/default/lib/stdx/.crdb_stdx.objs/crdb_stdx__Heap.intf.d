lib/stdx/heap.mli:
