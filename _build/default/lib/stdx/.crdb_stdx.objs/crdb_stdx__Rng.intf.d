lib/stdx/rng.mli:
