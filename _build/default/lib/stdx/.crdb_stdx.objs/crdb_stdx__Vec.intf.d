lib/stdx/vec.mli:
