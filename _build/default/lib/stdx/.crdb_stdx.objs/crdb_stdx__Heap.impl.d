lib/stdx/heap.ml: Array
