lib/stdx/vec.ml: Array Printf
