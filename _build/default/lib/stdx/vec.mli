(** Growable arrays (OCaml 5.1 lacks [Dynarray]). *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val get : 'a t -> int -> 'a
(** @raise Invalid_argument if out of bounds. *)

val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> unit
val last : 'a t -> 'a option
val truncate : 'a t -> int -> unit
(** [truncate t n] keeps the first [n] elements. *)

val clear : 'a t -> unit
val to_list : 'a t -> 'a list
val sub_list : 'a t -> pos:int -> 'a list
(** Elements from [pos] (inclusive) to the end. *)

val iter : ('a -> unit) -> 'a t -> unit
