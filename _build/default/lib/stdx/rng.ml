type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = mix64 (Int64.of_int seed) }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = int64 t }

(* Mask to 62 bits so the Int64 -> int conversion stays non-negative. *)
let nonneg_int_of_int64 v = Int64.to_int (Int64.logand v 0x3FFF_FFFF_FFFF_FFFFL)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  nonneg_int_of_int64 (int64 t) mod bound

(* 53 random bits mapped into [0, 1). *)
let unit_float t =
  let bits = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  bits *. (1.0 /. 9007199254740992.0)

let float t bound = unit_float t *. bound
let bool t = Int64.logand (int64 t) 1L = 1L
let bernoulli t p = unit_float t < p

let exponential t ~mean =
  let u = 1.0 -. unit_float t in
  -.mean *. log u

let uniform_in t lo hi = lo +. (unit_float t *. (hi -. lo))

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

module Zipf = struct
  type dist = {
    n : int;
    theta : float;
    alpha : float;
    zetan : float;
    eta : float;
    zeta2 : float;
  }

  let zeta n theta =
    let sum = ref 0.0 in
    for i = 1 to n do
      sum := !sum +. (1.0 /. (float_of_int i ** theta))
    done;
    !sum

  let create ~n ?(theta = 0.99) () =
    if n <= 0 then invalid_arg "Zipf.create: n must be positive";
    let zetan = zeta n theta in
    let zeta2 = zeta 2 theta in
    let alpha = 1.0 /. (1.0 -. theta) in
    let eta =
      (1.0 -. ((2.0 /. float_of_int n) ** (1.0 -. theta)))
      /. (1.0 -. (zeta2 /. zetan))
    in
    { n; theta; alpha; zetan; eta; zeta2 }

  (* Gray/Sundaresan rejection-free zipfian sampler, as used by YCSB. *)
  let sample d t =
    let u = unit_float t in
    let uz = u *. d.zetan in
    if uz < 1.0 then 0
    else if uz < 1.0 +. (0.5 ** d.theta) then 1
    else
      let rank =
        float_of_int d.n *. (((d.eta *. u) -. d.eta +. 1.0) ** d.alpha)
      in
      let rank = int_of_float rank in
      if rank >= d.n then d.n - 1 else rank

  let scrambled_sample d t =
    let rank = sample d t in
    (* Offset before hashing: mix64 0 = 0 would leave rank 0 in place. *)
    nonneg_int_of_int64 (mix64 (Int64.add (Int64.of_int rank) golden_gamma))
    mod d.n
end
