type 'a t = { mutable arr : 'a array; mutable len : int }

let create () = { arr = [||]; len = 0 }
let length t = t.len
let is_empty t = t.len = 0

let check t i name =
  if i < 0 || i >= t.len then
    invalid_arg (Printf.sprintf "Vec.%s: index %d out of bounds (len %d)" name i t.len)

let get t i =
  check t i "get";
  t.arr.(i)

let set t i x =
  check t i "set";
  t.arr.(i) <- x

let push t x =
  let cap = Array.length t.arr in
  if t.len = cap then begin
    let new_cap = if cap = 0 then 16 else cap * 2 in
    let arr = Array.make new_cap x in
    Array.blit t.arr 0 arr 0 t.len;
    t.arr <- arr
  end;
  t.arr.(t.len) <- x;
  t.len <- t.len + 1

let last t = if t.len = 0 then None else Some t.arr.(t.len - 1)

let truncate t n =
  if n < 0 then invalid_arg "Vec.truncate: negative length";
  if n < t.len then t.len <- n

let clear t = t.len <- 0

let to_list t =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (t.arr.(i) :: acc) in
  loop (t.len - 1) []

let sub_list t ~pos =
  let pos = if pos < 0 then 0 else pos in
  let rec loop i acc = if i < pos then acc else loop (i - 1) (t.arr.(i) :: acc) in
  loop (t.len - 1) []

let iter f t =
  for i = 0 to t.len - 1 do
    f t.arr.(i)
  done
