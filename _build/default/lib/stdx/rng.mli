(** Deterministic pseudo-random number generation (splitmix64).

    Every stochastic component of the simulator draws from an explicit [Rng.t]
    so that whole-cluster runs are reproducible from a single seed. *)

type t

val create : seed:int -> t

val split : t -> t
(** [split t] is a new independent generator derived from [t]'s stream, used
    to give subsystems their own streams without coupling their draws. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean. *)

val uniform_in : t -> float -> float -> float
(** [uniform_in t lo hi] is uniform in [\[lo, hi)]. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element. @raise Invalid_argument on empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

(** YCSB-style scrambled Zipfian distribution over [\[0, n)]. *)
module Zipf : sig
  type dist

  val create : n:int -> ?theta:float -> unit -> dist
  (** [create ~n ()] uses the YCSB default skew [theta = 0.99]. *)

  val sample : dist -> t -> int

  val scrambled_sample : dist -> t -> int
  (** Zipfian rank hashed over the key space, as in YCSB's
      ScrambledZipfianGenerator: hot keys are spread across the space. *)
end
