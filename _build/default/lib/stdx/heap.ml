type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable arr : 'a array;
  mutable len : int;
}

let create ~cmp = { cmp; arr = [||]; len = 0 }
let size h = h.len
let is_empty h = h.len = 0

let grow h x =
  let cap = Array.length h.arr in
  if h.len = cap then begin
    let new_cap = if cap = 0 then 16 else cap * 2 in
    let arr = Array.make new_cap x in
    Array.blit h.arr 0 arr 0 h.len;
    h.arr <- arr
  end

let swap h i j =
  let t = h.arr.(i) in
  h.arr.(i) <- h.arr.(j);
  h.arr.(j) <- t

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.cmp h.arr.(i) h.arr.(parent) < 0 then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.len && h.cmp h.arr.(l) h.arr.(!smallest) < 0 then smallest := l;
  if r < h.len && h.cmp h.arr.(r) h.arr.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h x =
  grow h x;
  h.arr.(h.len) <- x;
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let peek h = if h.len = 0 then None else Some h.arr.(0)

let pop_exn h =
  if h.len = 0 then invalid_arg "Heap.pop_exn: empty heap";
  let top = h.arr.(0) in
  h.len <- h.len - 1;
  if h.len > 0 then begin
    h.arr.(0) <- h.arr.(h.len);
    sift_down h 0
  end;
  top

let pop h = if h.len = 0 then None else Some (pop_exn h)
let clear h = h.len <- 0

let to_list h =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (h.arr.(i) :: acc) in
  loop (h.len - 1) []
