(* Benchmark harness: one experiment per table and figure of the paper's
   evaluation (§7), plus ablations of design choices and Bechamel
   microbenchmarks of the core data structures.

   Usage:   dune exec bench/main.exe [-- EXPERIMENT...]
   where EXPERIMENT is any of: table1 fig3 fig4a fig4b fig4c fig5 fig6
   table2 ablations conflicts splits latency-audit commit-path autopilot
   chaos micro.
   With no arguments, everything runs.

   Workload volumes are scaled down from the paper's GCP runs (the paper's
   absolute numbers come from 3-node-per-region clusters and millions of
   requests); the latency *structure* — who is local, who pays which RTT,
   where tails come from — is what the simulator reproduces. See
   EXPERIMENTS.md for the side-by-side reading. *)

module Crdb = Crdb_core.Crdb
module Value = Crdb.Value
module Ddl = Crdb.Ddl
module Engine = Crdb.Engine
module Cluster = Crdb.Cluster
module Txn = Crdb.Txn
module Latency = Crdb.Latency
module Hist = Crdb_stats.Hist
module Ycsb = Crdb_workload.Ycsb
module Tpcc = Crdb_workload.Tpcc
module Movr = Crdb_workload.Movr
module Autopilot = Crdb_autopilot.Autopilot

let regions5 = Latency.table1_regions
let regions3 = [ "us-east1"; "europe-west2"; "asia-northeast1" ]
let printf = Format.printf

(* Machine-readable mirror of every histogram the pretty-printers show,
   keyed "section / subsection / label" and written to BENCH_results.json
   when the harness exits. *)
let bench_results : (string * Hist.t) list ref = ref []
let current_section = ref ""
let current_subsection = ref ""

let record label hist =
  if not (Hist.is_empty hist) then begin
    let parts =
      List.filter
        (fun s -> s <> "")
        [ !current_section; !current_subsection; String.trim label ]
    in
    let base = String.concat " / " parts in
    let taken k = List.mem_assoc k !bench_results in
    let key =
      if not (taken base) then base
      else
        let rec next i =
          let k = Printf.sprintf "%s #%d" base i in
          if taken k then next (i + 1) else k
        in
        next 2
    in
    bench_results := (key, hist) :: !bench_results
  end

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_bench_results file =
  let oc = open_out file in
  output_string oc "{\n";
  let entries = List.rev !bench_results in
  List.iteri
    (fun i (key, hist) ->
      Printf.fprintf oc "  \"%s\": %s%s\n" (json_escape key)
        (Hist.to_json hist)
        (if i = List.length entries - 1 then "" else ","))
    entries;
  output_string oc "}\n";
  close_out oc;
  printf "@.[%d latency summaries -> %s]@." (List.length entries) file

let section title =
  current_section := title;
  current_subsection := "";
  printf "@.==================================================================@.";
  printf "%s@." title;
  printf "==================================================================@."

let subsection title =
  current_subsection := title;
  printf "@.---- %s ----@." title

let row label hist =
  record label hist;
  printf "%a@." (Hist.pp_row ~label) hist

let box label hist =
  record label hist;
  if Hist.is_empty hist then printf "%-36s (no samples)@." label
  else begin
    let b = Hist.boxplot hist in
    printf "%-36s |-%a [%a %a %a] %a-| (n=%d)@." label Hist.pp_ms
      b.Hist.whisker_lo Hist.pp_ms b.Hist.p25 Hist.pp_ms b.Hist.p50 Hist.pp_ms
      b.Hist.p75 Hist.pp_ms b.Hist.whisker_hi (Hist.count hist)
  end

let cdf_percentiles = [ 50.0; 75.0; 90.0; 95.0; 99.0; 99.9; 100.0 ]

let cdf_row label hist =
  record label hist;
  if Hist.is_empty hist then printf "%-22s (no samples)@." label
  else begin
    printf "%-22s" label;
    List.iter
      (fun (p, v) -> printf " p%-4g=%a" p Hist.pp_ms v)
      (Hist.cdf hist cdf_percentiles);
    printf "@."
  end

let merge hists =
  let h = Hist.create () in
  List.iter (fun src -> Hist.merge_into ~dst:h src) hists;
  h

(* ------------------------------------------------------------------ *)
(* Table 1: inter-region round-trip times                              *)

let run_table1 () =
  section "Table 1: inter-region round-trip times (ms)";
  printf "@[<v>%a@]@." (fun ppf () -> Latency.pp_matrix Latency.table1 regions5 ppf ()) ();
  printf
    "The simulator's transport uses exactly this matrix for the 5-region@.\
     experiments (one-way delay = RTT/2, 5%% jitter); larger clusters use@.\
     a distance-derived profile over the real GCP region locations.@."

(* ------------------------------------------------------------------ *)
(* Fig. 3: transaction latency for REGIONAL and GLOBAL tables          *)

let setup_ycsb ?(regions = regions5) ?(max_offset = 250_000)
    ?(autopilot = false) variant ~keyspace =
  let config =
    { Cluster.default_config with Cluster.max_offset; Cluster.autopilot }
  in
  let t = Crdb.start ~config ~regions () in
  Crdb.exec t
    (Ddl.N_create_database
       { db = "ycsb"; primary = List.hd regions; regions = List.tl regions });
  Crdb.exec_all t (Ycsb.ddl variant ~db:"ycsb" ~regions);
  let db = Crdb.database t "ycsb" in
  Ycsb.load t db variant ~keyspace;
  (t, db)

let split_primary results ~primary =
  let pick per_region want_primary =
    merge
      (List.filter_map
         (fun (r, h) ->
           if String.equal r primary = want_primary then Some h else None)
         per_region)
  in
  ( pick results.Ycsb.by_region_read true,
    pick results.Ycsb.by_region_read false,
    pick results.Ycsb.by_region_write true,
    pick results.Ycsb.by_region_write false )

let run_fig3 () =
  section "Fig. 3: transaction latency, REGIONAL vs GLOBAL tables";
  printf
    "YCSB-A (50/50), Zipf keys, 5 regions x 10 clients, max_offset=250ms,@.\
     primary = us-east1. Paper: GLOBAL reads <3ms anywhere with 500-600ms@.\
     writes; REGIONAL <3ms locally, 100-200ms remote; stale remote reads <3ms.@.";
  let keyspace = 5_000 and ops = 120 in
  let configs =
    [
      ("Global", Ycsb.Global_table, Ycsb.Latest);
      ("Regional (Latest)", Ycsb.Regional_table, Ycsb.Latest);
      ("Regional (Stale)", Ycsb.Regional_table, Ycsb.Bounded_stale 10_000_000);
    ]
  in
  List.iter
    (fun (label, variant, read_mode) ->
      let t, db = setup_ycsb variant ~keyspace in
      let r =
        Ycsb.run t db ~clients_per_region:10 ~ops_per_client:ops
          ~workload:Ycsb.A ~keyspace ~read_mode ()
      in
      let rp, rn, wp, wn = split_primary r ~primary:"us-east1" in
      subsection label;
      box "  read  / primary region" rp;
      box "  read  / non-primary" rn;
      box "  write / primary region" wp;
      box "  write / non-primary" wn;
      if r.Ycsb.errors > 0 then printf "  (%d errors)@." r.Ycsb.errors)
    configs

(* ------------------------------------------------------------------ *)
(* Fig. 4a: locality optimized search and automatic rehoming           *)

let run_fig4a () =
  section "Fig. 4a: LOS and auto-rehoming (YCSB-B, disjoint keys)";
  printf
    "3 regions, uniform keys, localities 95%% and 50%%. Paper: Unoptimized@.\
     fans out on every op (150-200ms); Default stays local via LOS; Rehoming@.\
     converges to all-local under disjoint access; Baseline is manual@.\
     partitioning (region derivable from the key).@.";
  let keyspace = 3_000 in
  let variants =
    [
      (* The rehoming variant runs longer: convergence needs enough remote
         updates to move each client's pool (the paper ran 10 minutes). *)
      ("Baseline (manual partitioning)", Ycsb.Rbr_computed, true, 400);
      ("Unoptimized (no LOS)", Ycsb.Rbr_default, false, 400);
      ("Default (LOS)", Ycsb.Rbr_default, true, 400);
      ("Rehoming (LOS + rehome)", Ycsb.Rbr_rehoming, true, 2000);
    ]
  in
  List.iter
    (fun locality ->
      subsection (Printf.sprintf "locality of access = %.0f%%" (locality *. 100.));
      List.iter
        (fun (label, variant, los, ops) ->
          let t, db = setup_ycsb ~regions:regions3 variant ~keyspace in
          Engine.set_locality_optimized_search db los;
          let r =
            Ycsb.run t db ~clients_per_region:10 ~ops_per_client:ops
              ~distribution:`Uniform ~locality ~remote_pool:6 ~workload:Ycsb.B
              ~keyspace ()
          in
          printf "%s@." label;
          row "    read  local" r.Ycsb.read_local;
          row "    read  remote" r.Ycsb.read_remote;
          row "    write local" r.Ycsb.write_local;
          row "    write remote" r.Ycsb.write_remote)
        variants)
    [ 0.95; 0.5 ]

(* ------------------------------------------------------------------ *)
(* Fig. 4b: uniqueness constraint checks on INSERT                     *)

let run_fig4b () =
  section "Fig. 4b: uniqueness checks (YCSB-D inserts, 100% locality)";
  printf
    "Paper: Computed avoids the uniqueness fan-out entirely (local inserts,@.\
     same as Baseline); Default pays one point lookup per remote region@.\
     (latency spikes at the inter-region RTTs).@.";
  let keyspace = 3_000 and ops = 100 in
  let variants =
    [
      ("Computed (region from key)", Ycsb.Rbr_computed);
      ("Default (gateway region)", Ycsb.Rbr_default);
      ("Baseline (manual partitioning)", Ycsb.Rbr_computed);
    ]
  in
  List.iter
    (fun (label, variant) ->
      let t, db = setup_ycsb ~regions:regions3 variant ~keyspace in
      let r =
        Ycsb.run t db ~clients_per_region:10 ~ops_per_client:ops
          ~distribution:`Uniform ~locality:1.0 ~workload:Ycsb.D ~keyspace ()
      in
      subsection label;
      row "  INSERT (all regions)" r.Ycsb.write_local;
      List.iter
        (fun (region, h) ->
          if not (Hist.is_empty h) then
            row (Printf.sprintf "  INSERT @ %s" region) h)
        r.Ycsb.by_region_write;
      row "  SELECT" (Ycsb.reads r))
    variants

(* ------------------------------------------------------------------ *)
(* Fig. 4c: auto-rehoming under contention                             *)

let run_fig4c () =
  section "Fig. 4c: auto-rehoming under contention (YCSB-B, 50% locality)";
  printf
    "Remote accesses of the first c regions target a shared key range.@.\
     Paper: c=1 re-homes everything into one local-latency band; c=2,3@.\
     thrash and approach the non-rehoming Default.@.";
  let keyspace = 3_000 and ops = 400 in
  let run_one label variant ~contending =
    let t, db = setup_ycsb ~regions:regions3 variant ~keyspace in
    let r =
      Ycsb.run t db ~clients_per_region:10 ~ops_per_client:ops
        ~distribution:`Uniform ~locality:0.5 ~remote_pool:10
        ~sharing:contending ~workload:Ycsb.B ~keyspace ()
    in
    subsection label;
    row "  read  local" r.Ycsb.read_local;
    row "  read  remote" r.Ycsb.read_remote;
    row "  write local" r.Ycsb.write_local;
    row "  write remote" r.Ycsb.write_remote
  in
  run_one "Rehoming, c=1" Ycsb.Rbr_rehoming ~contending:1;
  run_one "Rehoming, c=2" Ycsb.Rbr_rehoming ~contending:2;
  run_one "Rehoming, c=3" Ycsb.Rbr_rehoming ~contending:3;
  run_one "Default (no rehoming), c=3" Ycsb.Rbr_default ~contending:3

(* ------------------------------------------------------------------ *)
(* Fig. 5: latency CDFs — GLOBAL vs duplicate indexes vs REGIONAL      *)

let run_fig5 () =
  section "Fig. 5: read/write latency CDFs (GLOBAL vs duplicate indexes)";
  printf
    "Workload of Fig. 3. Paper: all configs read <3ms below p90; in the@.\
     tail, GLOBAL read latency is bounded by max_clock_offset (tighter for@.\
     smaller offsets) while duplicate indexes' tail is unbounded (reads@.\
     block on WAN write transactions); GLOBAL writes 250-600ms by offset;@.\
     duplicate-index writes spike into the seconds under contention.@.";
  let keyspace = 2_000 and ops = 150 in
  let run_one label variant ~max_offset ~read_mode =
    let t, db = setup_ycsb variant ~max_offset ~keyspace in
    let r =
      Ycsb.run t db ~clients_per_region:10 ~ops_per_client:ops ~workload:Ycsb.A
        ~keyspace ~read_mode ()
    in
    (label, r)
  in
  let runs =
    [
      run_one "Global 250ms" Ycsb.Global_table ~max_offset:250_000 ~read_mode:Ycsb.Latest;
      run_one "Global 50ms" Ycsb.Global_table ~max_offset:50_000 ~read_mode:Ycsb.Latest;
      run_one "Global 10ms" Ycsb.Global_table ~max_offset:10_000 ~read_mode:Ycsb.Latest;
      run_one "Duplicate indexes" Ycsb.Dup_indexes ~max_offset:250_000 ~read_mode:Ycsb.Latest;
      run_one "Regional (Latest)" Ycsb.Regional_table ~max_offset:250_000 ~read_mode:Ycsb.Latest;
      run_one "Regional (Stale)" Ycsb.Regional_table ~max_offset:250_000
        ~read_mode:(Ycsb.Bounded_stale 10_000_000);
    ]
  in
  subsection "reads";
  List.iter (fun (label, r) -> cdf_row label (Ycsb.reads r)) runs;
  subsection "writes";
  List.iter (fun (label, r) -> cdf_row label (Ycsb.writes r)) runs

(* ------------------------------------------------------------------ *)
(* Fig. 6: TPC-C scalability                                           *)

let fig6_regions = function
  | 4 -> [ "us-east1"; "us-east4"; "us-central1"; "us-west1" ]
  | 10 ->
      [
        "us-east1"; "us-east4"; "us-central1"; "us-west1"; "europe-west1";
        "europe-west2"; "europe-west3"; "asia-east1"; "asia-northeast1";
        "asia-southeast1";
      ]
  | n -> List.filteri (fun i _ -> i < n) Latency.gcp_region_names

let setup_tpcc ~regions ~warehouses_per_region =
  let t = Crdb.start ~regions () in
  Crdb.exec_all t (Tpcc.ddl ~db:"tpcc" ~regions ~warehouses_per_region);
  let db = Crdb.database t "tpcc" in
  Tpcc.load t db ~warehouses_per_region ~districts_per_warehouse:10
    ~customers_per_district:20 ~items:100 ();
  (t, db)

let pp_region_latencies r =
  List.iter
    (fun (region, h) ->
      if not (Hist.is_empty h) then
        printf "    %-26s p50=%a  p90=%a@." region Hist.pp_ms
          (Hist.percentile h 50.0) Hist.pp_ms (Hist.percentile h 90.0))
    r.Tpcc.by_region

let run_fig6 () =
  section "Fig. 6: multi-region TPC-C scalability";
  printf
    "2 warehouses/region, 10 paced terminals/warehouse (think times = spec@.\
     / %d, so the per-warehouse ceiling is %.1f tpmC). Paper: throughput@.\
     scales linearly with regions at >=97%% efficiency; p50 per region stays@.\
     local; PLACEMENT RESTRICTED does not raise latency.@."
    Tpcc.time_scale
    (12.86 *. float_of_int Tpcc.time_scale);
  let warehouses_per_region = 2 in
  List.iter
    (fun nregions ->
      let regions = fig6_regions nregions in
      let t, db = setup_tpcc ~regions ~warehouses_per_region in
      let r =
        Tpcc.run t db ~warehouses_per_region ~duration:60_000_000
          ~districts_per_warehouse:10 ~customers_per_district:20 ()
      in
      let warehouses = warehouses_per_region * nregions in
      subsection (Printf.sprintf "%d regions (%d warehouses)" nregions warehouses);
      printf "  tpmC = %.1f   efficiency = %.1f%%   errors = %d@." (Tpcc.tpmc r)
        (100.0 *. Tpcc.efficiency r ~warehouses)
        r.Tpcc.errors;
      printf "  new-order txns: %d (%.1f%% touched a remote warehouse)@."
        r.Tpcc.committed_new_orders
        (if r.Tpcc.committed_new_orders = 0 then 0.0
         else
           100.0
           *. float_of_int r.Tpcc.remote_new_orders
           /. float_of_int r.Tpcc.committed_new_orders);
      row "  new_order" r.Tpcc.new_order;
      row "  payment" r.Tpcc.payment;
      if nregions = 10 then begin
        printf "  per-region p50/p90 (all transaction types):@.";
        pp_region_latencies r
      end)
    [ 4; 10; 26 ];
  subsection "10 regions, PLACEMENT RESTRICTED";
  let regions = fig6_regions 10 in
  let t, db = setup_tpcc ~regions ~warehouses_per_region in
  Crdb.exec t (Ddl.N_placement { db = "tpcc"; restricted = true });
  let r =
    Tpcc.run t db ~warehouses_per_region ~duration:60_000_000
      ~districts_per_warehouse:10 ~customers_per_district:20 ()
  in
  printf "  tpmC = %.1f   efficiency = %.1f%%@." (Tpcc.tpmc r)
    (100.0 *. Tpcc.efficiency r ~warehouses:(warehouses_per_region * 10));
  pp_region_latencies r

(* ------------------------------------------------------------------ *)
(* Table 2: DDL statements before/after the new syntax                 *)

let run_table2 () =
  section "Table 2: DDL statements for multi-region schema operations";
  printf
    "Counts are derived by constructing the actual statement lists (the new@.\
     declarative syntax is also executed against live clusters in the test@.\
     suite and the other experiments). Paper reference (Bef./Aft.):@.\
     movr 28/12 28/14 15/1 9/1; TPC-C 44/18 44/20 20/1 11/1; YCSB 5/1 5/1 2/1 2/1.@.";
  let movr_regions = [ "us-east1"; "us-west1"; "europe-west2" ] in
  let ops =
    [
      ("New multi-region schema", Movr.New_schema);
      ("Converting single-region schema", Movr.Convert_schema);
      ("Adding a region", Movr.Add_region "asia-northeast1");
      ("Dropping a region", Movr.Drop_region "europe-west2");
    ]
  in
  printf "@.%-36s %8s %8s@." "movr" "Before" "After";
  List.iter
    (fun (label, op) ->
      printf "%-36s %8d %8d@." label
        (Ddl.count (Movr.legacy_ddl ~db:"movr" ~regions:movr_regions op))
        (Ddl.count (Movr.ddl ~db:"movr" ~regions:movr_regions op)))
    ops;
  let legacy_of = function
    | Movr.New_schema -> Crdb.Legacy.New_schema
    | Movr.Convert_schema -> Crdb.Legacy.Convert_schema
    | Movr.Add_region r -> Crdb.Legacy.Add_region r
    | Movr.Drop_region r -> Crdb.Legacy.Drop_region r
  in
  let tpcc_tables = Tpcc.tables ~regions:movr_regions ~warehouses_per_region:10 in
  let tpcc_after = function
    | Movr.New_schema ->
        Ddl.count (Tpcc.ddl ~db:"tpcc" ~regions:movr_regions ~warehouses_per_region:10)
    | Movr.Convert_schema -> 1 + 2 + 9 + 8 (* SET PRIMARY + 2 ADD REGION + 9 SET LOCALITY + 8 computed *)
    | Movr.Add_region _ | Movr.Drop_region _ -> 1
  in
  printf "@.%-36s %8s %8s@." "TPC-C" "Before" "After";
  List.iter
    (fun (label, op) ->
      printf "%-36s %8d %8d@." label
        (Ddl.count
           (Crdb.Legacy.statements ~db:"tpcc" ~regions:movr_regions
              ~tables:tpcc_tables (legacy_of op)))
        (tpcc_after op))
    ops;
  let ycsb_tables = [ Ycsb.schema Ycsb.Rbr_default ~regions:movr_regions ] in
  printf "@.%-36s %8s %8s@." "YCSB" "Before" "After";
  List.iter
    (fun (label, op) ->
      printf "%-36s %8d %8d@." label
        (Ddl.count
           (Crdb.Legacy.statements ~db:"ycsb" ~regions:movr_regions
              ~tables:ycsb_tables (legacy_of op)))
        1)
    ops;
  printf "@.Sample of the legacy statements replaced by a single ALTER:@.";
  let sample =
    Crdb.Legacy.statements ~db:"movr" ~regions:movr_regions
      ~tables:(Movr.tables ~regions:movr_regions)
      (Crdb.Legacy.Add_region "asia-northeast1")
  in
  List.iteri (fun i stmt -> if i < 4 then printf "  %s@." (Ddl.to_sql stmt)) sample

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)

let run_ablations () =
  section "Ablations of design choices";
  subsection "closed-timestamp lead for GLOBAL tables (§6.2.1)";
  List.iter
    (fun max_offset ->
      let t, db = setup_ycsb Ycsb.Global_table ~max_offset ~keyspace:100 in
      let rid = List.hd (Engine.ranges_of_table db Ycsb.table_name) in
      let lead = Cluster.closed_lead_duration (Crdb.cluster t) rid in
      let gw = Crdb.gateway t ~region:"us-east1" () in
      let lat = Hist.create () in
      Crdb.run t (fun () ->
          for i = 1 to 20 do
            let t0 = Crdb.sim_now t in
            (match
               Engine.upsert db ~gateway:gw ~table:Ycsb.table_name
                 [
                   ("ycsb_key", Value.V_string (Printf.sprintf "zw%04d" i));
                   ("field0", Value.V_string "v");
                 ]
             with
            | Ok () -> ()
            | Error _ -> ());
            Hist.add lat (Crdb.sim_now t - t0)
          done);
      printf "  max_offset=%3dms: lead=%a ms, measured GLOBAL write p50=%a ms@."
        (max_offset / 1000) Hist.pp_ms lead Hist.pp_ms (Hist.percentile lat 50.0))
    [ 250_000; 50_000; 10_000 ];
  subsection "commit-wait lock release (CRDB early-release vs Spanner-style)";
  List.iter
    (fun (label, hold) ->
      let keyspace = 50 in
      let t, db = setup_ycsb Ycsb.Global_table ~keyspace in
      let mgr = Engine.txn_manager (Crdb.engine t) in
      Txn.set_options mgr
        { (Txn.options mgr) with
          Txn.Options.hold_locks_during_commit_wait = hold };
      let r =
        Ycsb.run t db ~clients_per_region:5 ~ops_per_client:60 ~workload:Ycsb.A
          ~keyspace ()
      in
      let reads = Ycsb.reads r in
      printf "  %-34s read p50=%a p99=%a max=%a@." label Hist.pp_ms
        (Hist.percentile reads 50.0) Hist.pp_ms (Hist.percentile reads 99.0)
        Hist.pp_ms (Hist.max_value reads))
    [ ("release during commit wait", false); ("hold through commit wait", true) ];
  subsection "write pipelining (multi-statement TPC-C new-order)";
  List.iter
    (fun (label, pipelined) ->
      let t, db = setup_tpcc ~regions:regions3 ~warehouses_per_region:2 in
      let mgr = Engine.txn_manager (Crdb.engine t) in
      Txn.set_options mgr
        { (Txn.options mgr) with Txn.Options.pipelined_writes = pipelined };
      let r =
        Tpcc.run t db ~warehouses_per_region:2 ~duration:15_000_000
          ~districts_per_warehouse:10 ~customers_per_district:20 ()
      in
      printf "  %-34s new_order p50=%a p90=%a@." label Hist.pp_ms
        (Hist.percentile r.Tpcc.new_order 50.0)
        Hist.pp_ms
        (Hist.percentile r.Tpcc.new_order 90.0))
    [ ("pipelined (CRDB)", true); ("unpipelined", false) ]

(* ------------------------------------------------------------------ *)
(* Range lifecycle: latency before vs after 100+ splits                *)

let run_splits () =
  section "Range lifecycle: read/write latency, 1 range vs 120 ranges";
  printf
    "3 regions, one table span, uniform keys. Every request re-resolves@.\
     its key through the ordered span map, so splitting the span into@.\
     120 ranges must not change the latency structure (routing is a@.\
     binary search, not a scan of the range list).@.";
  let n_keys = 256 and ops = 240 in
  let run_phase ~label ~target_ranges =
    let regions = regions3 in
    let topology =
      Crdb.Topology.symmetric ~regions ~nodes_per_region:3
    in
    let cl = Cluster.create ~topology ~latency:Latency.table1 () in
    let zone =
      Crdb.Zoneconfig.derive ~regions ~home:(List.hd regions)
        ~survival:Crdb.Zoneconfig.Zone ~placement:Crdb.Zoneconfig.Default
    in
    ignore
      (Cluster.add_range cl ~span:("user", "user~") ~zone
         ~policy:(Cluster.Lag 3_000_000));
    Cluster.settle cl;
    let key i = Printf.sprintf "user%04d" i in
    Cluster.bulk_load cl
      (List.init n_keys (fun i -> (key i, "v" ^ string_of_int i)));
    let rec split_loop rounds =
      if rounds > 0 && List.length (Cluster.ranges cl) < target_ranges then begin
        List.iter
          (fun r ->
            if List.length (Cluster.ranges cl) < target_ranges then
              match Cluster.split_point cl r with
              | Some at -> ignore (Cluster.split_range cl r ~at)
              | None -> ())
          (Cluster.ranges cl);
        Cluster.run_for cl 2_000_000;
        split_loop (rounds - 1)
      end
    in
    split_loop 16;
    Cluster.run_for cl 5_000_000;
    let read_h = Hist.create () and write_h = Hist.create () in
    let gw = 0 in
    let errors = ref 0 in
    let sim = Cluster.sim cl in
    Cluster.run cl (fun () ->
        for i = 1 to ops do
          let k = key (i * 7 mod n_keys) in
          let t0 = Crdb_sim.Sim.now sim in
          if i mod 2 = 0 then begin
            let ts = Cluster.now_ts cl gw in
            (match
               Cluster.write_and_commit cl ~gateway:gw ~txn:(1000 + i) ~key:k
                 ~value:(Some "w") ~ts ()
             with
            | Ok _ -> ()
            | Error _ -> incr errors);
            Hist.add write_h (Crdb_sim.Sim.now sim - t0)
          end
          else begin
            let ts = Cluster.now_ts cl gw in
            let max_ts =
              Crdb.Timestamp.add_wall ts (Cluster.config cl).Cluster.max_offset
            in
            (match
               Cluster.read cl ~gateway:gw ~txn:None ~key:k ~ts ~max_ts ()
             with
            | Cluster.Read_value _ | Cluster.Read_uncertain _ -> ()
            | Cluster.Read_redirect | Cluster.Read_wounded _
            | Cluster.Read_err _ ->
                incr errors);
            Hist.add read_h (Crdb_sim.Sim.now sim - t0)
          end
        done);
    subsection
      (Printf.sprintf "%s (%d ranges)" label (List.length (Cluster.ranges cl)));
    row "  read" read_h;
    row "  write" write_h;
    if !errors > 0 then printf "  (%d errors)@." !errors
  in
  run_phase ~label:"single range" ~target_ranges:1;
  run_phase ~label:"after splits" ~target_ranges:120

(* ------------------------------------------------------------------ *)
(* Wound-wait vs timeout-only conflict resolution                      *)

let run_conflicts () =
  section "Conflict resolution: wound-wait vs 10s-timeout baseline";
  printf
    "6 clients hammer 4 hot keys with two-key transactions that acquire@.\
     locks in random order (deadlock-prone); the hot range's leaseholder@.\
     is killed mid-run, orphaning in-flight intents. The baseline sets@.\
     push_delay = conflict_wait_timeout, disabling pushes: every deadlock@.\
     and orphaned intent costs the full 10s timeout. Wound-wait pushes@.\
     after 100ms and wounds the younger transaction instead.@.";
  let run_one ~label ~push_delay =
    let regions = regions3 in
    let topology = Crdb.Topology.symmetric ~regions ~nodes_per_region:3 in
    let config = { Cluster.default with Cluster.push_delay } in
    let cl = Cluster.create ~config ~topology ~latency:Latency.table1 () in
    let zone =
      Crdb.Zoneconfig.derive ~regions ~home:(List.hd regions)
        ~survival:Crdb.Zoneconfig.Zone ~placement:Crdb.Zoneconfig.Default
    in
    let rid =
      Cluster.add_range cl ~span:("hot", "hot~") ~zone
        ~policy:(Cluster.Lag 3_000_000)
    in
    Cluster.settle cl;
    let mgr = Txn.create_manager cl in
    let sim = Cluster.sim cl in
    let rng = Crdb_stdx.Rng.create ~seed:7 in
    let lat = Hist.create () in
    let key i = Printf.sprintf "hot%02d" i in
    let nclients = 6 and ops = 8 and hot = 4 in
    let ok = ref 0 and failed = ref 0 in
    let home_nodes =
      Crdb.Topology.nodes_in_region (Cluster.topology cl) (List.hd regions)
    in
    Cluster.run cl (fun () ->
        Crdb_sim.Proc.spawn sim (fun () ->
            Crdb_sim.Proc.sleep sim 2_000_000;
            match Cluster.leaseholder cl rid with
            | Some lh ->
                Crdb.Transport.kill_node (Cluster.net cl) lh;
                Crdb_sim.Proc.sleep sim 4_000_000;
                Crdb.Transport.revive_node (Cluster.net cl) lh
            | None -> ());
        let clients =
          List.init nclients (fun c ->
              let crng = Crdb_stdx.Rng.split rng in
              Crdb_sim.Proc.async sim (fun () ->
                  let gw =
                    (List.nth home_nodes (c mod List.length home_nodes))
                      .Crdb.Topology.id
                  in
                  for _ = 1 to ops do
                    Crdb_sim.Proc.sleep sim
                      (50_000 + Crdb_stdx.Rng.int crng 100_000);
                    let a = Crdb_stdx.Rng.int crng hot in
                    let b = (a + 1 + Crdb_stdx.Rng.int crng (hot - 1)) mod hot in
                    let t0 = Crdb_sim.Sim.now sim in
                    (match
                       Txn.run mgr ~gateway:gw (fun t ->
                           Txn.put t (key a) "x";
                           Crdb_sim.Proc.sleep sim 20_000;
                           Txn.put t (key b) "y")
                     with
                    | Ok () -> incr ok
                    | Error _ -> incr failed);
                    Hist.add lat (Crdb_sim.Sim.now sim - t0)
                  done))
        in
        List.iter Crdb_sim.Proc.await clients);
    subsection label;
    row "  txn latency" lat;
    let m = Crdb.Obs.metrics (Cluster.obs cl) in
    printf "  %d ok, %d failed; %d pushes, %d wounds, %d conflict timeouts@."
      !ok !failed
      (Crdb.Metrics.total m "kv.txn_pushes")
      (Crdb.Metrics.total m "kv.txn_wounds")
      (Crdb.Metrics.total m "kv.conflict_timeouts")
  in
  run_one ~label:"timeout-only baseline (pushes disabled)"
    ~push_delay:Cluster.default.Cluster.conflict_wait_timeout;
  run_one ~label:"wound-wait (100ms push delay)"
    ~push_delay:Cluster.default.Cluster.push_delay

(* ------------------------------------------------------------------ *)
(* Concurrency-control backends: wound-wait vs epoch-grouped OCC       *)

let run_cc_modes () =
  section "Concurrency control: wound-wait locks vs epoch-grouped OCC";
  printf
    "The same conflict-heavy workload (6 clients, two-key transactions@.\
     over 4 hot keys, random acquisition order) under both Cc backends.@.\
     Wound-wait takes locks as it goes and resolves deadlocks by pushing;@.\
     epoch OCC runs lock-free bodies, parks committers until the next@.\
     epoch boundary (25ms ticker) and validates reads there, so conflicts@.\
     cost a restart instead of a lock wait.@.";
  let run_one ~label ~cc_mode =
    let regions = regions3 in
    let topology = Crdb.Topology.symmetric ~regions ~nodes_per_region:3 in
    let config = { Cluster.default with Cluster.cc_mode } in
    let cl = Cluster.create ~config ~topology ~latency:Latency.table1 () in
    let zone =
      Crdb.Zoneconfig.derive ~regions ~home:(List.hd regions)
        ~survival:Crdb.Zoneconfig.Zone ~placement:Crdb.Zoneconfig.Default
    in
    let _rid =
      Cluster.add_range cl ~span:("hot", "hot~") ~zone
        ~policy:(Cluster.Lag 3_000_000)
    in
    Cluster.settle cl;
    let mgr = Txn.create_manager cl in
    let sim = Cluster.sim cl in
    let rng = Crdb_stdx.Rng.create ~seed:11 in
    let lat = Hist.create () in
    let key i = Printf.sprintf "hot%02d" i in
    let nclients = 6 and ops = 8 and hot = 4 in
    let ok = ref 0 and failed = ref 0 in
    let home_nodes =
      Crdb.Topology.nodes_in_region (Cluster.topology cl) (List.hd regions)
    in
    Cluster.run cl (fun () ->
        let clients =
          List.init nclients (fun c ->
              let crng = Crdb_stdx.Rng.split rng in
              Crdb_sim.Proc.async sim (fun () ->
                  let gw =
                    (List.nth home_nodes (c mod List.length home_nodes))
                      .Crdb.Topology.id
                  in
                  for _ = 1 to ops do
                    Crdb_sim.Proc.sleep sim
                      (50_000 + Crdb_stdx.Rng.int crng 100_000);
                    let a = Crdb_stdx.Rng.int crng hot in
                    let b = (a + 1 + Crdb_stdx.Rng.int crng (hot - 1)) mod hot in
                    let t0 = Crdb_sim.Sim.now sim in
                    (match
                       Txn.run mgr ~gateway:gw (fun t ->
                           let _ = Txn.get t (key a) in
                           Txn.put t (key a) "x";
                           Crdb_sim.Proc.sleep sim 20_000;
                           Txn.put t (key b) "y")
                     with
                    | Ok () -> incr ok
                    | Error _ -> incr failed);
                    Hist.add lat (Crdb_sim.Sim.now sim - t0)
                  done))
        in
        List.iter Crdb_sim.Proc.await clients);
    subsection label;
    row "  txn latency" lat;
    let m = Crdb.Obs.metrics (Cluster.obs cl) in
    let s = Txn.stats mgr in
    printf
      "  %d ok, %d failed; %d restarts (%d wounds); %d pushes, %d conflict \
       timeouts@."
      !ok !failed s.Txn.restarts s.Txn.wounds
      (Crdb.Metrics.total m "kv.txn_pushes")
      (Crdb.Metrics.total m "kv.conflict_timeouts");
    if cc_mode = `Epoch_occ then
      printf "  %d epoch ticks, %d epoch commits, %d validation failures@."
        (Crdb.Metrics.total m "txn.epoch_ticks")
        (Crdb.Metrics.total m "txn.epoch_commits")
        (Crdb.Metrics.total m "txn.epoch_validation_failures")
  in
  run_one ~label:"wound-wait" ~cc_mode:`Wound_wait;
  run_one ~label:"epoch OCC (25ms epochs)" ~cc_mode:`Epoch_occ

(* ------------------------------------------------------------------ *)
(* Latency audit: measured WAN round trips vs the §6 model             *)

let run_latency_audit () =
  section "Latency audit: phase decomposition vs the paper's latency model";
  printf
    "Table-1 topology (5 regions x 3 nodes), a REGIONAL range homed in@.\
     us-east1 (SURVIVE ZONE) and a GLOBAL range over the same placement.@.\
     Every operation threads a phase context through kv/txn/net; the model@.\
     prices each op class in WAN round trips (one cross-region RPC, or a@.\
     consensus round whose quorum needs a remote voter). Measured p50 WAN@.\
     RTTs must match the prediction within +/-1.@.";
  let regions = regions5 in
  let home = List.hd regions (* us-east1 *) and remote = "europe-west2" in
  let topology = Crdb.Topology.symmetric ~regions ~nodes_per_region:3 in
  let cl = Cluster.create ~topology ~latency:Latency.table1 () in
  let zone =
    Crdb.Zoneconfig.derive ~regions ~home ~survival:Crdb.Zoneconfig.Zone
      ~placement:Crdb.Zoneconfig.Default
  in
  ignore
    (Cluster.add_range cl ~span:("reg", "reg~") ~zone
       ~policy:(Cluster.Lag 3_000_000));
  ignore (Cluster.add_range cl ~span:("glob", "glob~") ~zone ~policy:Cluster.Lead);
  Cluster.settle cl;
  let mgr = Txn.create_manager cl in
  let sim = Cluster.sim cl in
  let m = Crdb.Obs.metrics (Cluster.obs cl) in
  let gw r =
    (List.hd (Crdb.Topology.nodes_in_region (Cluster.topology cl) r))
      .Crdb.Topology.id
  in
  let gw_home = gw home and gw_remote = gw remote in
  let key p i = Printf.sprintf "%s%02d" p (i mod 10) in
  (* Op classes: (name, predicted WAN RTTs, gateway, body). The txn_commit
     class is a single-write read-write transaction from a remote gateway:
     one WAN RTT for the intent write, one for the commit-time intent
     resolution (the commit record itself is a local transition; with 3
     voters in the home region the consensus quorum never leaves it). *)
  let classes =
    [
      ( "local_read", 0, gw_home,
        fun phases i ->
          Txn.run mgr ~gateway:gw_home ~phases (fun t ->
              ignore (Txn.get t (key "reg" i))) );
      ( "local_write", 0, gw_home,
        fun phases i ->
          Txn.run mgr ~gateway:gw_home ~phases (fun t ->
              Txn.put t (key "reg" i) "v") );
      ( "global_read", 0, gw_remote,
        fun phases i ->
          Txn.run_fresh_read mgr ~gateway:gw_remote ~phases (fun ro ->
              ignore (Txn.ro_get ro (key "glob" i))) );
      ( "global_write", 1, gw_remote,
        fun phases i ->
          Txn.run_blind_put mgr ~gateway:gw_remote ~phases (key "glob" i) "v" );
      ( "txn_commit", 2, gw_remote,
        fun phases i ->
          Txn.run mgr ~gateway:gw_remote ~phases (fun t ->
              Txn.put t (key "reg" i) "v") );
    ]
  in
  let ops = 24 in
  let e2e = List.map (fun (cls, _, _, _) -> (cls, Hist.create ())) classes in
  Cluster.run cl (fun () ->
      (* Load both keyspaces (scratch phase context: loads are not audited). *)
      let scratch = Crdb.Phase.make () in
      for i = 0 to 9 do
        (match
           Txn.run mgr ~gateway:gw_home ~phases:scratch (fun t ->
               Txn.put t (key "reg" i) "seed")
         with
        | Ok () -> ()
        | Error _ -> ());
        match Txn.run_blind_put mgr ~gateway:gw_home ~phases:scratch
                (key "glob" i) "seed"
        with
        | Ok () -> ()
        | Error _ -> ()
      done;
      Crdb_sim.Proc.sleep sim 1_000_000;
      List.iter
        (fun (cls, _, _, body) ->
          (* One unmeasured warmup op per class to warm routing caches. *)
          (match body scratch 0 with Ok _ -> () | Error _ -> ());
          let phases = Crdb.Phase.make () in
          let h = List.assoc cls e2e in
          for i = 1 to ops do
            Crdb_sim.Proc.sleep sim 100_000;
            let t0 = Crdb_sim.Sim.now sim in
            (match body phases i with Ok _ -> () | Error _ -> ());
            Hist.add h (Crdb_sim.Sim.now sim - t0);
            Crdb.Phase.flush phases ~cls m;
            Crdb.Phase.reset phases
          done)
        classes);
  let predicted = List.map (fun (cls, p, _, _) -> (cls, p)) classes in
  subsection "end-to-end latency per op class";
  List.iter (fun (cls, h) -> row (Printf.sprintf "  %s" cls) h) e2e;
  subsection "phase decomposition";
  printf "%a" Crdb.Report.pp_phase_table m;
  subsection "WAN round trips: measured vs model";
  printf "%a" (Crdb.Report.pp_wan_table ~predicted) m;
  (* Machine-readable mirror: the wan_rtts histogram per class, the
     prediction encoded in the label so the JSON is self-describing. *)
  List.iter
    (fun (cls, pred) ->
      let wan = Crdb.Metrics.merged_hist m ("wan_rtts." ^ cls) in
      record (Printf.sprintf "wan_rtts %s (predicted=%d)" cls pred) wan;
      let measured = Hist.p50 wan in
      if abs (measured - pred) > 1 then
        printf "  !! %s: measured p50 %d vs predicted %d (off by >1)@." cls
          measured pred)
    predicted;
  List.iter
    (fun (cls, _) ->
      List.iter
        (fun ph ->
          let h =
            Crdb.Metrics.merged_hist m
              (Printf.sprintf "phase.%s.%s" cls (Crdb.Phase.name ph))
          in
          if not (Hist.is_empty h) && Hist.max_value h > 0 then
            record (Printf.sprintf "phase %s %s" cls (Crdb.Phase.name ph)) h)
        Crdb.Phase.all_phases)
    predicted

(* ------------------------------------------------------------------ *)
(* Commit path: sequential vs pipelined writes vs parallel commits     *)

let run_commit_path () =
  section "Commit path: sequential vs pipelined vs parallel commits";
  printf
    "A two-key write transaction from a us-east1 gateway against two@.\
     ranges whose leaseholders are also in us-east1 but which SURVIVE@.\
     REGION failure: the consensus quorum needs a vote from@.\
     europe-west2 (87ms RTT), so every replicated write — intent,@.\
     commit record, STAGING record — costs one WAN round trip of@.\
     replication. Sequential: each intent replicates before the next@.\
     is sent, then the record, >= 3 WAN RTTs in series. Pipelined:@.\
     the intents replicate concurrently, the record still waits for@.\
     both, ~2. Parallel: the STAGING record replicates alongside the@.\
     intents — the commit point is reached in ~1 WAN RTT (the §5@.\
     headline). The harness exits nonzero unless parallel p50 is ~1@.\
     WAN RTT and sequential p50 is >= 3.@.";
  let home = "us-east1" in
  let rtt = Latency.rtt Latency.table1 home "europe-west2" in
  let ops = 24 in
  let run_one ~label ~pipelined_writes ~parallel_commits =
    let topology =
      Crdb.Topology.symmetric ~regions:regions3 ~nodes_per_region:3
    in
    let cl = Cluster.create ~topology ~latency:Latency.table1 () in
    let zone =
      Crdb.Zoneconfig.derive ~regions:regions3 ~home
        ~survival:Crdb.Zoneconfig.Region ~placement:Crdb.Zoneconfig.Default
    in
    ignore
      (Cluster.add_range cl ~span:("a", "a~") ~zone
         ~policy:(Cluster.Lag 3_000_000));
    ignore
      (Cluster.add_range cl ~span:("b", "b~") ~zone
         ~policy:(Cluster.Lag 3_000_000));
    Cluster.settle cl;
    let mgr = Txn.create_manager cl in
    Txn.set_options mgr
      { Txn.Options.default with pipelined_writes; parallel_commits };
    let sim = Cluster.sim cl in
    let m = Crdb.Obs.metrics (Cluster.obs cl) in
    let gw =
      (List.hd (Crdb.Topology.nodes_in_region (Cluster.topology cl) home))
        .Crdb.Topology.id
    in
    let lat = Hist.create () in
    let failed = ref 0 in
    let phases = Crdb.Phase.make () in
    Cluster.run cl (fun () ->
        (* One unmeasured warmup transaction to warm the routing caches. *)
        (match
           Txn.run mgr ~gateway:gw (fun t ->
               Txn.put t "a_warm" "v";
               Txn.put t "b_warm" "v")
         with
        | Ok () | Error _ -> ());
        for i = 1 to ops do
          Crdb_sim.Proc.sleep sim 200_000;
          let ka = Printf.sprintf "a%03d" i
          and kb = Printf.sprintf "b%03d" i in
          let t0 = Crdb_sim.Sim.now sim in
          (match
             Txn.run mgr ~gateway:gw ~phases (fun t ->
                 Txn.put t ka "v";
                 Txn.put t kb "v")
           with
          | Ok () -> ()
          | Error _ -> incr failed);
          Hist.add lat (Crdb_sim.Sim.now sim - t0);
          Crdb.Phase.flush phases ~cls:label m;
          Crdb.Phase.reset phases
        done);
    subsection
      (Printf.sprintf "%s (pipelined=%b parallel=%b)" label pipelined_writes
         parallel_commits);
    row "  commit latency" lat;
    record (Printf.sprintf "wan_rtts %s" label)
      (Crdb.Metrics.merged_hist m ("wan_rtts." ^ label));
    printf "  p50 = %.2f WAN RTTs (%d failed)@."
      (float_of_int (Hist.p50 lat) /. float_of_int rtt)
      !failed;
    if !failed > 0 then
      failwith (Printf.sprintf "commit-path: %d %s transactions failed"
                  !failed label);
    Hist.p50 lat
  in
  let seq = run_one ~label:"sequential" ~pipelined_writes:false
      ~parallel_commits:false in
  let pipe = run_one ~label:"pipelined" ~pipelined_writes:true
      ~parallel_commits:false in
  let par = run_one ~label:"parallel" ~pipelined_writes:true
      ~parallel_commits:true in
  let in_rtts us = float_of_int us /. float_of_int rtt in
  printf
    "@.  commit-point p50: sequential %.2f / pipelined %.2f / parallel %.2f \
     WAN RTTs@."
    (in_rtts seq) (in_rtts pipe) (in_rtts par);
  if in_rtts par > 1.5 then
    failwith "commit-path: parallel commit p50 is not ~1 WAN RTT";
  if in_rtts seq < 2.5 then
    failwith "commit-path: sequential commit p50 is under 3 WAN RTTs";
  if not (par < pipe && pipe < seq) then
    failwith
      "commit-path: expected parallel < pipelined < sequential commit p50"

(* ------------------------------------------------------------------ *)
(* Autopilot: background queues vs a static cluster                    *)

let run_autopilot () =
  section "Autopilot: moving hot spot, background queues off vs on";
  printf
    "YCSB-A, zipf keys with the hot set rotating every 5s of simulated@.\
     time, 5 regions x 20 clients, zero manual splits. Off: every@.\
     regional partition stays a single range, so one range absorbs the@.\
     whole zipf head wherever it drifts. On: the split / merge / lease@.\
     queues reshape the keyspace under load, spreading leaseholders and@.\
     pulling the hottest range's share of total QPS back down. Latency@.\
     in the simulator is RTT-structural (no CPU saturation model), so@.\
     the convergence evidence is the share / range series; the latency@.\
     rows check the queues reshape without hurting the tail.@.";
  let keyspace = 5_000 and ops = 150 in
  let sample_every = 2_000_000 in
  let run_phase ~autopilot =
    let t, db = setup_ycsb ~autopilot Ycsb.Regional_table ~keyspace in
    let cl = Crdb.cluster t in
    let sim = Cluster.sim cl in
    let ts = Crdb_obs.Obs.timeseries (Cluster.obs cl) in
    (* Share of the cluster's total windowed QPS served by its hottest
       range: the convergence signal the split queue is judged on. *)
    let hottest_share () =
      let rates =
        List.map
          (fun rid ->
            Crdb_obs.Timeseries.rate ts ~range:rid ~window:5_000_000
              "kv.range.qps")
          (Cluster.ranges cl)
      in
      let total = List.fold_left ( +. ) 0.0 rates in
      if total <= 0.0 then 0.0
      else List.fold_left Float.max 0.0 rates /. total
    in
    let samples = ref [] in
    let monitoring = ref true in
    let t0 = Crdb_sim.Sim.now sim in
    let rec monitor () =
      if !monitoring then begin
        samples :=
          ( Crdb_sim.Sim.now sim - t0,
            List.length (Cluster.ranges cl),
            hottest_share () )
          :: !samples;
        Crdb_sim.Sim.schedule sim ~after:sample_every monitor
      end
    in
    Crdb_sim.Sim.schedule sim ~after:1 monitor;
    let ap = if autopilot then Some (Autopilot.start cl) else None in
    let r =
      Ycsb.run t db ~clients_per_region:20 ~ops_per_client:ops
        ~workload:Ycsb.A ~hot_shift_every:5_000_000 ~keyspace ()
    in
    monitoring := false;
    Option.iter Autopilot.stop ap;
    ( r,
      List.rev !samples,
      Option.map Autopilot.stats ap,
      List.length (Cluster.ranges cl) )
  in
  let r_off, s_off, _, ranges_off = run_phase ~autopilot:false in
  let r_on, s_on, stats_on, ranges_on = run_phase ~autopilot:true in
  subsection "latency (all regions)";
  cdf_row "reads  (autopilot off)" (Ycsb.reads r_off);
  cdf_row "reads  (autopilot on)" (Ycsb.reads r_on);
  cdf_row "writes (autopilot off)" (Ycsb.writes r_off);
  cdf_row "writes (autopilot on)" (Ycsb.writes r_on);
  subsection "ranges / hottest-range QPS share over time";
  let fmt_sample = function
    | Some (_, n, share) ->
        Printf.sprintf "%3d ranges  %3.0f%% hot" n (100. *. share)
    | None -> ""
  in
  printf "  %7s  %-22s %-22s@." "" "autopilot off" "autopilot on";
  let n_rows = max (List.length s_off) (List.length s_on) in
  for i = 0 to n_rows - 1 do
    let dt =
      match (List.nth_opt s_on i, List.nth_opt s_off i) with
      | Some (dt, _, _), _ | None, Some (dt, _, _) -> dt
      | None, None -> 0
    in
    printf "  %6.1fs  %-22s %-22s@."
      (float_of_int dt /. 1e6)
      (fmt_sample (List.nth_opt s_off i))
      (fmt_sample (List.nth_opt s_on i))
  done;
  (* BENCH_results.json only carries histograms, so the time series go in
     as distributions of the sampled values: min = starting point, max =
     where the run ended up, the spread = how far the queues moved it. *)
  let series label samples f =
    let h = Hist.create () in
    List.iter (fun s -> Hist.add h (f s)) samples;
    record label h
  in
  series "ranges over time (off)" s_off (fun (_, n, _) -> n);
  series "ranges over time (on)" s_on (fun (_, n, _) -> n);
  series "hottest-range share x1000 (off)" s_off (fun (_, _, sh) ->
      int_of_float (1000. *. sh));
  series "hottest-range share x1000 (on)" s_on (fun (_, _, sh) ->
      int_of_float (1000. *. sh));
  printf "@.  final ranges: off=%d on=%d (no manual splits in either run)@."
    ranges_off ranges_on;
  match stats_on with
  | Some s ->
      printf
        "  autopilot decisions: %d splits, %d merges, %d lease moves,@.\
        \  %d replica moves, %d cooldown skips@."
        s.Autopilot.auto_splits s.Autopilot.auto_merges s.Autopilot.lease_moves
        s.Autopilot.replica_moves s.Autopilot.skips
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Chaos smoke: nemesis schedule + history checking                    *)

let run_chaos () =
  section "Chaos smoke: random nemesis + Jepsen-style history checking";
  printf
    "3 regions, register (YCSB-A style) + bank + multi-key transactional@.\
     workloads, random fault schedule (kills, partitions, bounded clock@.\
     jumps, lease transfers) respecting the survivability goal's quorum@.\
     invariant. Histories are checked offline: per-key linearizability,@.\
     bank-balance conservation, and multi-key serializability (dependency-@.\
     graph cycle detection).@.";
  List.iter
    (fun (label, survival, seed) ->
      let setup =
        {
          Crdb_chaos.Harness.default with
          Crdb_chaos.Harness.survival;
          cluster_seed = seed;
          nemesis_seed = seed;
          workload =
            {
              Crdb_chaos.Workload.default with
              txn =
                {
                  Crdb_chaos.Workload.Txn_config.default with
                  Crdb_chaos.Workload.Txn_config.clients = 2;
                };
            };
        }
      in
      let o = Crdb_chaos.Harness.run setup in
      let r = o.Crdb_chaos.Harness.result in
      subsection (Printf.sprintf "%s, seed %d" label seed);
      printf "  faults injected:@.";
      List.iter
        (fun line -> printf "    %s@." line)
        (String.split_on_char '\n' o.Crdb_chaos.Harness.fault_log);
      printf "  ops: %d ok, %d failed, %d indeterminate@."
        r.Crdb_chaos.Workload.ok r.Crdb_chaos.Workload.failed
        r.Crdb_chaos.Workload.info;
      printf "  registers: %s@."
        (Crdb_check.Checker.verdict_to_string o.Crdb_chaos.Harness.register_verdict);
      printf "  bank:      %s@."
        (Crdb_check.Checker.verdict_to_string o.Crdb_chaos.Harness.bank_verdict);
      printf "  txns:      %s@."
        (Crdb_check.Checker.verdict_to_string o.Crdb_chaos.Harness.txn_verdict))
    [
      ("SURVIVE ZONE", Crdb.Zoneconfig.Zone, 11);
      ("SURVIVE REGION", Crdb.Zoneconfig.Region, 42);
    ]

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks                                            *)

let run_micro () =
  section "Microbenchmarks (Bechamel): core data structures";
  let open Bechamel in
  let clock_time = ref 0 in
  let clock =
    Crdb_hlc.Clock.create
      ~now_micros:(fun () ->
        incr clock_time;
        !clock_time)
      ()
  in
  let mvcc = Crdb_storage.Mvcc.create () in
  for i = 0 to 999 do
    Crdb_storage.Mvcc.put_version mvcc
      ~key:(Printf.sprintf "key%04d" i)
      ~ts:(Crdb_hlc.Timestamp.of_wall (i + 1))
      ~value:(Some "v")
  done;
  let rng = Crdb_stdx.Rng.create ~seed:42 in
  let zipf = Crdb_stdx.Rng.Zipf.create ~n:100_000 () in
  let heap = Crdb_stdx.Heap.create ~cmp:Int.compare in
  let sim = Crdb_sim.Sim.create () in
  let tests =
    [
      Test.make ~name:"hlc_now"
        (Staged.stage (fun () -> ignore (Crdb_hlc.Clock.now clock)));
      Test.make ~name:"mvcc_read"
        (Staged.stage (fun () ->
             ignore
               (Crdb_storage.Mvcc.read mvcc ~key:"key0500"
                  ~ts:(Crdb_hlc.Timestamp.of_wall 2000)
                  ~max_ts:(Crdb_hlc.Timestamp.of_wall 2000)
                  ~for_txn:None)));
      Test.make ~name:"zipf_sample"
        (Staged.stage (fun () ->
             ignore (Crdb_stdx.Rng.Zipf.scrambled_sample zipf rng)));
      Test.make ~name:"heap_push_pop"
        (Staged.stage (fun () ->
             Crdb_stdx.Heap.push heap (Crdb_stdx.Rng.int rng 100000);
             ignore (Crdb_stdx.Heap.pop heap)));
      Test.make ~name:"sim_event"
        (Staged.stage (fun () ->
             Crdb_sim.Sim.schedule sim ~after:1 (fun () -> ());
             ignore (Crdb_sim.Sim.step sim)));
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None () in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg [ instance ] test in
      let results = Analyze.all ols instance raw in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) -> printf "  %-24s %10.1f ns/op@." name est
          | Some [] | None -> printf "  %-24s (no estimate)@." name)
        results)
    tests

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("table1", run_table1);
    ("fig3", run_fig3);
    ("fig4a", run_fig4a);
    ("fig4b", run_fig4b);
    ("fig4c", run_fig4c);
    ("fig5", run_fig5);
    ("fig6", run_fig6);
    ("table2", run_table2);
    ("ablations", run_ablations);
    ("conflicts", run_conflicts);
    ("cc-modes", run_cc_modes);
    ("splits", run_splits);
    ("latency-audit", run_latency_audit);
    ("commit-path", run_commit_path);
    ("autopilot", run_autopilot);
    ("chaos", run_chaos);
    ("micro", run_micro);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst experiments
  in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f ->
          let t0 = Unix.gettimeofday () in
          f ();
          printf "@.[%s completed in %.1fs wall clock]@." name
            (Unix.gettimeofday () -. t0)
      | None ->
          printf "unknown experiment %S (available: %s)@." name
            (String.concat ", " (List.map fst experiments)))
    requested;
  write_bench_results "BENCH_results.json"
