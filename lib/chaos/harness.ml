module Proc = Crdb_sim.Proc
module Topology = Crdb_net.Topology
module Latency = Crdb_net.Latency
module Cluster = Crdb_kv.Cluster
module Zoneconfig = Crdb_kv.Zoneconfig
module Txn = Crdb_txn.Txn
module Checker = Crdb_check.Checker

type setup = {
  regions : int;
  survival : Zoneconfig.survival;
  policy : Cluster.policy;
  cluster_seed : int;
  nemesis_seed : int;
  nemesis : Nemesis.random_config option;
  script : (int * Nemesis.fault) list option;
  duration : int;
  workload : Workload.config;
  cluster_config : Cluster.config option;
}

let default =
  {
    regions = 3;
    survival = Zoneconfig.Region;
    policy = Cluster.Lag 3_000_000;
    cluster_seed = 42;
    nemesis_seed = 42;
    nemesis = Some Nemesis.default_random;
    script = None;
    duration = 20_000_000;
    workload = Workload.default;
    cluster_config = None;
  }

type outcome = {
  cluster : Cluster.t;
  fault_log : string;
  result : Workload.result;
  register_verdict : Checker.verdict;
  bank_verdict : Checker.verdict;
  txn_verdict : Checker.verdict;
}

let passed o =
  Checker.is_valid o.register_verdict
  && Checker.is_valid o.bank_verdict
  && Checker.is_valid o.txn_verdict

(* Build a cluster over the paper's Table 1 regions, run the workload with
   the configured nemesis schedule alongside it, heal, audit, check. [arm]
   runs between range setup and the workload (e.g. to enable tracing). *)
let run ?(arm = fun (_ : Cluster.t) -> ()) s =
  let regions = List.filteri (fun i _ -> i < s.regions) Latency.table1_regions in
  let topology = Topology.symmetric ~regions ~nodes_per_region:3 in
  let base = Option.value s.cluster_config ~default:Cluster.default in
  let base =
    if s.workload.Workload.unsafe_no_recovery then
      { base with Cluster.unsafe_no_recovery = true }
    else base
  in
  let cl =
    Cluster.create
      ~config:{ base with Cluster.seed = s.cluster_seed }
      ~topology ~latency:Latency.table1 ()
  in
  Workload.setup ~policy:s.policy cl ~survival:s.survival s.workload;
  arm cl;
  let mgr = Txn.create_manager cl in
  if s.workload.Workload.unsafe_no_refresh then
    Txn.set_options mgr
      { (Txn.options mgr) with Txn.Options.unsafe_no_refresh = true };
  let result, fault_log =
    Cluster.run cl (fun () ->
        let nem =
          match (s.script, s.nemesis) with
          | Some script, _ -> Some (Nemesis.run_script cl script)
          | None, Some config ->
              Some
                (Nemesis.run_random ~config cl ~seed:s.nemesis_seed
                   ~duration:s.duration ())
          | None, None -> None
        in
        let r = Workload.run cl mgr s.workload in
        (match nem with
        | Some n ->
            Nemesis.stop n;
            Nemesis.heal_all n
        | None -> ());
        (* Let replication catch up and leases move home before the audit. *)
        Proc.sleep (Cluster.sim cl) 5_000_000;
        Cluster.rebalance_leases cl;
        Proc.sleep (Cluster.sim cl) 2_000_000;
        Workload.finale cl mgr s.workload r;
        (r, match nem with Some n -> Nemesis.log_to_string n | None -> ""))
  in
  let register_verdict = Checker.check_linearizable result.Workload.registers in
  let bank_verdict =
    if s.workload.Workload.accounts > 1 then
      Checker.check_bank ~total:(Workload.bank_total s.workload) result.Workload.bank
    else Checker.Valid { ops = 0 }
  in
  let txn_verdict =
    if s.workload.Workload.txn.Workload.Txn_config.clients > 0 then
      Checker.check_serializable result.Workload.txns
    else Checker.Valid { ops = 0 }
  in
  { cluster = cl; fault_log; result; register_verdict; bank_verdict; txn_verdict }
