(** Declarative fault injection (the "nemesis") for chaos runs.

    A nemesis drives the cluster's failure-injection surfaces — transport
    kills and partitions, clock skew, lease transfers — either from a timed
    script or from a seeded random schedule, as a {!Crdb_sim.Proc} coroutine
    inside the simulator. Every injected or healed fault is appended to a
    deterministic fault log and emitted as a [chaos.inject]/[chaos.heal]
    trace event plus a [chaos.injected]/[chaos.healed] metric, so one seed
    reproduces one byte-identical schedule. *)

module Cluster = Crdb_kv.Cluster

type fault =
  | Kill_node of int
  | Revive_node of int  (** process-restart semantics: volatile state lost *)
  | Kill_zone of string * string  (** region, zone *)
  | Revive_zone of string * string
  | Kill_region of string
  | Revive_region of string
  | Partition_regions of string * string
  | Heal_partition of string * string
  | Heal_all_partitions
  | Clock_jump of int * int  (** node, new absolute skew in microseconds *)
  | Lease_transfer of Cluster.range_id * int  (** range, target node *)
  | Split_range of Cluster.range_id * string  (** range, split key *)
  | Merge_range of Cluster.range_id
      (** subsume the range's right-hand neighbor *)
  | Rebalance of Cluster.range_id
      (** one allocator-driven replica move (add-then-remove) *)

val fault_to_string : fault -> string

val is_heal : fault -> bool
(** Revivals and partition heals count as heals; a clock jump or lease
    transfer is always an injection. *)

val apply : Cluster.t -> fault -> unit
(** Apply one fault immediately, without recording it. Revivals use
    {!Cluster.restart_node} (crash-restart semantics). *)

val kill_is_safe : Cluster.t -> int list -> bool
(** Would every range keep a live voter quorum if these nodes also died?
    The min-healthy invariant used by random schedules: under SURVIVE ZONE
    it forbids killing the home region, under SURVIVE REGION a second
    concurrent region failure. *)

type t
(** A running (or finished) schedule: handle to its fault log. *)

val run_script : Cluster.t -> (int * fault) list -> t
(** Spawn a coroutine that injects each fault at its offset (microseconds
    from now; entries are sorted first). Scripted heals are explicit
    entries. *)

type kind =
  | K_kill_node
  | K_kill_zone
  | K_kill_region
  | K_partition
  | K_clock_jump
  | K_lease_transfer
  | K_split_range
  | K_merge_range
  | K_rebalance

val all_kinds : kind list
(** The original six kinds. The range-lifecycle kinds are excluded on
    purpose — the kinds list length feeds the schedule RNG, so including
    them would reshuffle every existing seeded schedule; enable them via
    [kinds] (e.g. [all_kinds @ lifecycle_kinds]) to race splits, merges and
    rebalances against kills, partitions and lease transfers. *)

val lifecycle_kinds : kind list
(** [[K_split_range; K_merge_range; K_rebalance]]. *)

type random_config = {
  mean_interval : int;  (** µs between injections (uniform around mean) *)
  mean_duration : int;  (** µs a fault stays active before healing *)
  kinds : kind list;  (** enabled fault kinds *)
  max_clock_skew : int;  (** bound for [Clock_jump] draws *)
  enforce_quorum : bool;  (** apply {!kill_is_safe} before any kill *)
}

val default_random : random_config
(** 2 s between faults, 4 s outages, every kind, ±100 ms jumps (within the
    default 250 ms [max_offset]), quorum guard on. *)

val run_random :
  ?config:random_config -> Cluster.t -> seed:int -> duration:int -> unit -> t
(** Spawn a coroutine drawing faults from a dedicated RNG seeded with
    [seed] (independent of the cluster's stream) until [duration]
    microseconds have elapsed, then heal everything it left in force. One
    fault is active at a time; each is healed after a random hold. *)

val stop : t -> unit
(** Ask the schedule to stop at its next wake-up (it will not inject
    further faults; call {!heal_all} to clean up immediately). *)

val await : t -> unit
(** Block (inside a process) until the schedule's coroutine has finished. *)

val heal_all : t -> unit
(** Revive every dead node (restart semantics), heal all partitions, and
    restore every clock to its baseline skew. Recorded in the fault log. *)

val log : t -> (int * fault) list
(** The [(simulated time, fault)] log, oldest first. *)

val log_to_string : t -> string
(** Deterministic rendering, one line per fault — byte-identical for a
    given seed and workload. *)
