module History = Crdb_check.History
module Checker = Crdb_check.Checker

type t = {
  bank_total : int;
  registers : History.t;
  bank : History.t;
  txns : History.t;
}

let header = "crdb-chaos-dump v1"

let of_result ~bank_total (r : Workload.result) =
  { bank_total; registers = r.Workload.registers; bank = r.Workload.bank; txns = r.Workload.txns }

let serialize d =
  let buf = Buffer.create 8192 in
  let section name h =
    Buffer.add_string buf (Printf.sprintf "section %s\n" name);
    Buffer.add_string buf (History.serialize h);
    Buffer.add_string buf (Printf.sprintf "end %s\n" name)
  in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "bank_total %d\n" d.bank_total);
  section "registers" d.registers;
  section "bank" d.bank;
  section "txns" d.txns;
  Buffer.contents buf

exception Parse of string

let deserialize s =
  let lines = String.split_on_char '\n' s in
  try
    match lines with
    | hd :: rest when String.trim hd = header ->
        let bank_total = ref 0 in
        let sections = Hashtbl.create 4 in
        let current = ref None in
        let acc = Buffer.create 4096 in
        List.iter
          (fun line ->
            let trimmed = String.trim line in
            match (!current, String.split_on_char ' ' trimmed) with
            | None, [ "" ] -> ()
            | None, [ "bank_total"; n ] -> (
                match int_of_string_opt n with
                | Some v -> bank_total := v
                | None -> raise (Parse ("bad bank_total " ^ n)))
            | None, [ "section"; name ] ->
                if Hashtbl.mem sections name then
                  raise (Parse ("duplicate section " ^ name));
                Buffer.clear acc;
                current := Some name
            | None, _ -> raise (Parse ("unexpected line " ^ trimmed))
            | Some name, [ "end"; name' ] when name = name' ->
                (match History.deserialize (Buffer.contents acc) with
                | Ok h -> Hashtbl.replace sections name h
                | Error msg ->
                    raise (Parse (Printf.sprintf "section %s: %s" name msg)));
                current := None
            | Some _, _ ->
                Buffer.add_string acc line;
                Buffer.add_char acc '\n')
          rest;
        (match !current with
        | Some name -> raise (Parse ("unterminated section " ^ name))
        | None -> ());
        let find name =
          match Hashtbl.find_opt sections name with
          | Some h -> h
          | None -> raise (Parse ("missing section " ^ name))
        in
        Ok
          {
            bank_total = !bank_total;
            registers = find "registers";
            bank = find "bank";
            txns = find "txns";
          }
    | hd :: _ ->
        Error (Printf.sprintf "bad header %S (expected %S)" (String.trim hd) header)
    | [] -> Error "empty input"
  with Parse msg -> Error msg

let check d =
  [
    ("registers linearizable", Checker.check_linearizable d.registers);
    ("bank serializable", Checker.check_bank ~total:d.bank_total d.bank);
    ("txns serializable", Checker.check_serializable d.txns);
  ]
