module Sim = Crdb_sim.Sim
module Proc = Crdb_sim.Proc
module Rng = Crdb_stdx.Rng
module Topology = Crdb_net.Topology
module Transport = Crdb_net.Transport
module Cluster = Crdb_kv.Cluster
module Zoneconfig = Crdb_kv.Zoneconfig
module Txn = Crdb_txn.Txn
module History = Crdb_check.History

module Txn_config = struct
  type t = {
    clients : int;
    ops_per_client : int;
    keys : int;
    ranges : int;
    hot_keys : int;
  }

  let default = { clients = 0; ops_per_client = 12; keys = 12; ranges = 3; hot_keys = 0 }
end

type config = {
  seed : int;
  clients_per_region : int;
  ops_per_client : int;
  keys : int;
  write_ratio : float;
  think_time : int;
  max_attempts : int;
  accounts : int;
  bank_clients : int;
  bank_ops_per_client : int;
  initial_balance : int;
  unsafe_stale_reads : bool;
  txn : Txn_config.t;
  unsafe_no_refresh : bool;
  unsafe_no_recovery : bool;
}

let default =
  {
    seed = 1;
    clients_per_region = 2;
    ops_per_client = 20;
    keys = 16;
    write_ratio = 0.5;
    think_time = 150_000;
    max_attempts = 3;
    accounts = 8;
    bank_clients = 3;
    bank_ops_per_client = 12;
    initial_balance = 100;
    unsafe_stale_reads = false;
    txn = Txn_config.default;
    unsafe_no_refresh = false;
    unsafe_no_recovery = false;
  }

let key_of i = Printf.sprintf "key%03d" i
let account_of i = Printf.sprintf "acct%02d" i
let txn_key_of i = Printf.sprintf "tk%02d" i
let bank_total cfg = cfg.accounts * cfg.initial_balance

(* One range for the registers and one for the bank accounts, replicated
   according to the survivability goal, leaseholder pinned to the first
   region. Registers start empty (the checker's initial value is [nil]);
   accounts are preloaded with the initial balance. *)
let setup ?(policy = Cluster.Lag 3_000_000) cl ~survival cfg =
  let regions = Topology.regions (Cluster.topology cl) in
  let home = List.hd regions in
  let zone = Zoneconfig.derive ~regions ~home ~survival ~placement:Zoneconfig.Default in
  let _bank = Cluster.add_range cl ~span:("acct", "acct~") ~zone ~policy in
  let _regs = Cluster.add_range cl ~span:("key", "key~") ~zone ~policy in
  (* The transactional keyspace is deliberately carved into several ranges so
     every multi-key transaction crosses range (and thus leaseholder)
     boundaries; only materialized when transactional clients are enabled so
     existing seeded histories stay byte-identical. *)
  if cfg.txn.Txn_config.clients > 0 then begin
    let tc = cfg.txn in
    let nranges = max 1 (min tc.Txn_config.ranges tc.Txn_config.keys) in
    let per = max 1 (tc.Txn_config.keys / nranges) in
    for r = 0 to nranges - 1 do
      let start_key = if r = 0 then "tk" else txn_key_of (r * per) in
      let end_key = if r = nranges - 1 then "tk~" else txn_key_of ((r + 1) * per) in
      ignore (Cluster.add_range cl ~span:(start_key, end_key) ~zone ~policy)
    done
  end;
  Cluster.settle cl;
  Cluster.bulk_load cl
    (List.init cfg.accounts (fun i -> (account_of i, string_of_int cfg.initial_balance)))

type result = {
  registers : History.t;
  bank : History.t;
  txns : History.t;
  mutable ok : int;
  mutable failed : int;
  mutable info : int;
}

let err_string = function
  | Txn.Aborted m -> "aborted: " ^ m
  | Txn.Unavailable m -> "unavailable: " ^ m

(* Clients reconnect like real drivers: each op goes to a currently-live
   gateway in the client's home region, falling back to any live node. *)
let pick_gateway cl rng region =
  let net = Cluster.net cl in
  let topo = Cluster.topology cl in
  let alive nodes =
    List.filter (fun n -> Transport.is_alive net n.Topology.id) nodes
  in
  let candidates =
    match alive (Topology.nodes_in_region topo region) with
    | _ :: _ as l -> l
    | [] -> alive (Array.to_list (Topology.nodes topo))
  in
  match candidates with
  | [] -> 0
  | l -> (List.nth l (Rng.int rng (List.length l))).Topology.id

let record r outcome =
  match outcome with
  | History.Ok_read _ | History.Ok_write | History.Ok_transfer | History.Ok_snapshot _ ->
      r.ok <- r.ok + 1
  | History.Failed _ -> r.failed <- r.failed + 1
  | History.Info _ -> r.info <- r.info + 1

let register_client cl mgr cfg r ~client ~region rng zipf =
  let sim = Cluster.sim cl in
  let h = r.registers in
  for i = 0 to cfg.ops_per_client - 1 do
    Proc.sleep sim ((cfg.think_time / 2) + Rng.int rng (max 1 cfg.think_time));
    let key = key_of (Rng.Zipf.scrambled_sample zipf rng mod cfg.keys) in
    let gateway = pick_gateway cl rng region in
    if Rng.float rng 1.0 < cfg.write_ratio then begin
      let value = Printf.sprintf "c%d-%d" client i in
      let e =
        History.invoke h ~client ~now:(Sim.now sim) (History.Write { key; value })
      in
      let outcome =
        match
          Txn.run mgr ~gateway ~max_attempts:cfg.max_attempts (fun tx ->
              Txn.put tx key value)
        with
        | Ok () -> History.Ok_write
        | Error (Txn.Aborted _ as err) -> History.Failed (err_string err)
        | Error (Txn.Unavailable _ as err) -> History.Info (err_string err)
        | exception Txn.Fatal m -> History.Info ("fatal: " ^ m)
      in
      record r outcome;
      History.complete e ~now:(Sim.now sim) outcome
    end
    else begin
      let e = History.invoke h ~client ~now:(Sim.now sim) (History.Read { key }) in
      let outcome =
        if cfg.unsafe_stale_reads then
          (* Deliberately broken mode for checker validation: serve the read
             at a bounded-stale timestamp but record it as a fresh read. *)
          match
            Txn.run_stale_bounded mgr ~gateway ~max_staleness:5_000_000
              ~keys:[ key ] (fun ro -> Txn.ro_get ro key)
          with
          | v -> History.Ok_read v
          | exception Txn.Fatal m -> History.Failed ("fatal: " ^ m)
        else
          match
            Txn.run_fresh_read mgr ~gateway ~max_attempts:cfg.max_attempts
              (fun ro -> Txn.ro_get ro key)
          with
          | Ok v -> History.Ok_read v
          | Error err -> History.Failed (err_string err)
          | exception Txn.Fatal m -> History.Failed ("fatal: " ^ m)
      in
      record r outcome;
      History.complete e ~now:(Sim.now sim) outcome
    end
  done

let balance_of = function Some s -> int_of_string s | None -> 0

let bank_client cl mgr cfg r ~client ~region rng =
  let sim = Cluster.sim cl in
  let h = r.bank in
  let accounts = List.init cfg.accounts account_of in
  for i = 0 to cfg.bank_ops_per_client - 1 do
    Proc.sleep sim ((cfg.think_time / 2) + Rng.int rng (max 1 cfg.think_time));
    let gateway = pick_gateway cl rng region in
    if i mod 4 = 3 then begin
      let e = History.invoke h ~client ~now:(Sim.now sim) History.Snapshot in
      let outcome =
        match
          Txn.run_fresh_read mgr ~gateway ~max_attempts:cfg.max_attempts
            (fun ro -> List.map (fun a -> (a, balance_of (Txn.ro_get ro a))) accounts)
        with
        | Ok rows -> History.Ok_snapshot rows
        | Error err -> History.Failed (err_string err)
        | exception Txn.Fatal m -> History.Failed ("fatal: " ^ m)
      in
      record r outcome;
      History.complete e ~now:(Sim.now sim) outcome
    end
    else begin
      let src = Rng.int rng cfg.accounts in
      let dst = (src + 1 + Rng.int rng (cfg.accounts - 1)) mod cfg.accounts in
      let amount = 1 + Rng.int rng 20 in
      let e =
        History.invoke h ~client ~now:(Sim.now sim)
          (History.Transfer { src = account_of src; dst = account_of dst; amount })
      in
      let outcome =
        match
          Txn.run mgr ~gateway ~max_attempts:cfg.max_attempts (fun tx ->
              let b_src = balance_of (Txn.get tx (account_of src)) in
              let b_dst = balance_of (Txn.get tx (account_of dst)) in
              Txn.put tx (account_of src) (string_of_int (b_src - amount));
              Txn.put tx (account_of dst) (string_of_int (b_dst + amount)))
        with
        | Ok () -> History.Ok_transfer
        | Error (Txn.Aborted _ as err) -> History.Failed (err_string err)
        | Error (Txn.Unavailable _ as err) -> History.Info (err_string err)
        | exception Txn.Fatal m -> History.Info ("fatal: " ^ m)
      in
      record r outcome;
      History.complete e ~now:(Sim.now sim) outcome
    end
  done

let txn_status_of_outcome = function
  | Txn.Attempt_committed ts -> History.T_committed { commit_ts = ts }
  | Txn.Attempt_aborted _ -> History.T_aborted
  | Txn.Attempt_indeterminate (_, ts) -> History.T_indeterminate { commit_ts = Some ts }

(* Multi-key read-write transactions for the serializability checker: each
   picks 2-4 distinct keys guaranteed to span at least two ranges, reads all
   of them, then overwrites a strict subset with values unique to the
   attempt ([a<txn_id>.<key>]) so the checker can infer which version every
   read observed. Every physical attempt — including retried and
   indeterminate ones — is recorded via [on_attempt]. *)
let txn_client cl mgr cfg r ~client ~region rng =
  let sim = Cluster.sim cl in
  let h = r.txns in
  let tc = cfg.txn in
  let nranges = max 1 (min tc.Txn_config.ranges tc.Txn_config.keys) in
  let per = max 1 (tc.Txn_config.keys / nranges) in
  let in_bucket b =
    let lo = b * per in
    let hi =
      if b = nranges - 1 then tc.Txn_config.keys else min tc.Txn_config.keys (lo + per)
    in
    lo + Rng.int rng (max 1 (hi - lo))
  in
  (* Conflict-heavy mode: confine every transaction to the first
     [hot_keys] keys so writers pile onto the same locks (wound-wait
     exercise). Off ([= 0]) by default, leaving the code path — and thus
     seeded histories — untouched. *)
  let pick_hot_keys () =
    let hot = min tc.Txn_config.hot_keys tc.Txn_config.keys in
    let nkeys = min hot (2 + Rng.int rng 3) in
    let rec fill acc n =
      if n <= 0 then List.rev acc
      else
        let k = Rng.int rng hot in
        if List.mem k acc then fill acc n else fill (k :: acc) (n - 1)
    in
    List.map txn_key_of (fill [] nkeys)
  in
  let pick_keys () =
    let nkeys = min tc.Txn_config.keys (2 + Rng.int rng 3) in
    let b1 = Rng.int rng nranges in
    let b2 =
      if nranges > 1 then (b1 + 1 + Rng.int rng (nranges - 1)) mod nranges else b1
    in
    let first = in_bucket b1 in
    let second =
      let k = in_bucket b2 in
      if k = first then (k + 1) mod tc.Txn_config.keys else k
    in
    let rec fill acc n =
      if n <= 0 then List.rev acc
      else
        let k = Rng.int rng tc.Txn_config.keys in
        if List.mem k acc then fill acc n else fill (k :: acc) (n - 1)
    in
    List.map txn_key_of (fill [ second; first ] (nkeys - 2))
  in
  for _ = 0 to tc.Txn_config.ops_per_client - 1 do
    Proc.sleep sim ((cfg.think_time / 2) + Rng.int rng (max 1 cfg.think_time));
    let gateway = pick_gateway cl rng region in
    let keys =
      if tc.Txn_config.hot_keys >= 2 then pick_hot_keys () else pick_keys ()
    in
    (* Strictly fewer writes than reads: every transaction carries at least
       one read-only key, the source of pure anti-dependencies. *)
    let nwrites = 1 + Rng.int rng (List.length keys - 1) in
    let ops = ref [] in
    let began = ref 0 in
    let outcome =
      Txn.run mgr ~gateway ~max_attempts:cfg.max_attempts
        ~on_attempt:(fun t o ->
          History.record_txn h ~tid:(Txn.txn_id t) ~client ~began:!began
            ~ended:(Sim.now sim) ~ops:(List.rev !ops)
            ~status:(txn_status_of_outcome o))
        (fun tx ->
          ops := [];
          began := Sim.now sim;
          List.iter
            (fun key ->
              let value = Txn.get tx key in
              ops := History.T_read { key; value } :: !ops)
            keys;
          List.iteri
            (fun j key ->
              if j < nwrites then begin
                let value = Printf.sprintf "a%d.%s" (Txn.txn_id tx) key in
                Txn.put tx key value;
                ops := History.T_write { key; value } :: !ops
              end)
            keys)
    in
    (match outcome with
    | Ok () -> r.ok <- r.ok + 1
    | Error (Txn.Aborted _) -> r.failed <- r.failed + 1
    | Error (Txn.Unavailable _) -> r.info <- r.info + 1)
  done

(* Run every client to completion; call inside [Cluster.run]. Client procs
   are spawned in a fixed order with RNG streams split off one base stream,
   so a (cluster seed, workload seed) pair fully determines the history. *)
let run cl mgr cfg =
  let sim = Cluster.sim cl in
  let regions = Topology.regions (Cluster.topology cl) in
  let r =
    {
      registers = History.create ();
      bank = History.create ();
      txns = History.create ();
      ok = 0;
      failed = 0;
      info = 0;
    }
  in
  let base = Rng.create ~seed:cfg.seed in
  let zipf = Rng.Zipf.create ~n:cfg.keys () in
  let next_client = ref 0 in
  let procs = ref [] in
  List.iter
    (fun region ->
      for _ = 1 to cfg.clients_per_region do
        let client = !next_client in
        incr next_client;
        let rng = Rng.split base in
        procs :=
          Proc.async sim (fun () ->
              register_client cl mgr cfg r ~client ~region rng zipf)
          :: !procs
      done)
    regions;
  for b = 0 to (if cfg.accounts > 1 then cfg.bank_clients else 0) - 1 do
    let client = 1000 + b in
    let region = List.nth regions (b mod List.length regions) in
    let rng = Rng.split base in
    procs := Proc.async sim (fun () -> bank_client cl mgr cfg r ~client ~region rng) :: !procs
  done;
  (* Transactional clients are split off the base stream last, so enabling
     them leaves every pre-existing client's stream untouched. *)
  for tcl = 0 to (if cfg.txn.Txn_config.keys > 1 then cfg.txn.Txn_config.clients else 0) - 1 do
    let client = 2000 + tcl in
    let region = List.nth regions (tcl mod List.length regions) in
    let rng = Rng.split base in
    procs := Proc.async sim (fun () -> txn_client cl mgr cfg r ~client ~region rng) :: !procs
  done;
  ignore (Proc.await_all (List.rev !procs) : unit list);
  r

(* Post-chaos audit, run after the nemesis has healed everything: one fresh
   read of every register and one final bank snapshot, from a gateway in
   the home region. Anchors the checkers on the final converged state. *)
let finale cl mgr cfg r =
  let sim = Cluster.sim cl in
  let regions = Topology.regions (Cluster.topology cl) in
  let rng = Rng.create ~seed:(cfg.seed lxor 0x0f1e2d3c) in
  let gateway = pick_gateway cl rng (List.hd regions) in
  for k = 0 to cfg.keys - 1 do
    let key = key_of k in
    let e =
      History.invoke r.registers ~client:9999 ~now:(Sim.now sim) (History.Read { key })
    in
    let outcome =
      match
        Txn.run_fresh_read mgr ~gateway ~max_attempts:cfg.max_attempts (fun ro ->
            Txn.ro_get ro key)
      with
      | Ok v -> History.Ok_read v
      | Error err -> History.Failed (err_string err)
      | exception Txn.Fatal m -> History.Failed ("fatal: " ^ m)
    in
    record r outcome;
    History.complete e ~now:(Sim.now sim) outcome
  done;
  if cfg.txn.Txn_config.clients > 0 then begin
    (* One final read of every transactional key, recorded as a transaction:
       it anchors the serialization graph on the converged state, giving the
       checker anti-dependency edges out of the last committed writers. *)
    let keys = List.init cfg.txn.Txn_config.keys txn_key_of in
    let ops = ref [] in
    let began = ref 0 in
    ignore
      (Txn.run mgr ~gateway ~max_attempts:cfg.max_attempts
         ~on_attempt:(fun t o ->
           History.record_txn r.txns ~tid:(Txn.txn_id t) ~client:9999
             ~began:!began ~ended:(Sim.now sim) ~ops:(List.rev !ops)
             ~status:(txn_status_of_outcome o))
         (fun tx ->
           ops := [];
           began := Sim.now sim;
           List.iter
             (fun key ->
               let value = Txn.get tx key in
               ops := History.T_read { key; value } :: !ops)
             keys)
        : (unit, Txn.error) Stdlib.result)
  end;
  if cfg.accounts > 1 then begin
    let accounts = List.init cfg.accounts account_of in
    let e = History.invoke r.bank ~client:9999 ~now:(Sim.now sim) History.Snapshot in
    let outcome =
      match
        Txn.run_fresh_read mgr ~gateway ~max_attempts:cfg.max_attempts (fun ro ->
            List.map (fun a -> (a, balance_of (Txn.ro_get ro a))) accounts)
      with
      | Ok rows -> History.Ok_snapshot rows
      | Error err -> History.Failed (err_string err)
      | exception Txn.Fatal m -> History.Failed ("fatal: " ^ m)
    in
    record r outcome;
    History.complete e ~now:(Sim.now sim) outcome
  end
