(** Offline history dumps: everything a chaos run recorded, serialized so a
    later process can re-run the checkers without re-running the simulation
    ([crdb_sim chaos --dump-history] / [crdb_sim check]).

    The format is line-based and versioned: a header, the conserved bank
    total, then one section per history framed by [section NAME]/[end NAME]
    lines, each containing {!Crdb_check.History.serialize} output verbatim.
    The round trip is the identity on every history, so the offline verdicts
    are byte-identical to the in-process ones. *)

module History = Crdb_check.History
module Checker = Crdb_check.Checker

type t = {
  bank_total : int;  (** conserved bank sum, for {!Checker.check_bank} *)
  registers : History.t;
  bank : History.t;
  txns : History.t;
}

val of_result : bank_total:int -> Workload.result -> t

val serialize : t -> string
val deserialize : string -> (t, string) result

val check : t -> (string * Checker.verdict) list
(** Run every checker over its history: registers through
    {!Checker.check_linearizable}, bank through {!Checker.check_bank}, txns
    through {!Checker.check_serializable}; labelled like the [crdb_sim
    chaos] output. *)
