module Sim = Crdb_sim.Sim
module Proc = Crdb_sim.Proc
module Ivar = Crdb_sim.Ivar
module Rng = Crdb_stdx.Rng
module Topology = Crdb_net.Topology
module Transport = Crdb_net.Transport
module Cluster = Crdb_kv.Cluster
module Clock = Crdb_hlc.Clock
module Raft = Crdb_raft.Raft
module Obs = Crdb_obs.Obs
module Trace = Crdb_obs.Trace
module Metrics = Crdb_obs.Metrics

type fault =
  | Kill_node of int
  | Revive_node of int
  | Kill_zone of string * string
  | Revive_zone of string * string
  | Kill_region of string
  | Revive_region of string
  | Partition_regions of string * string
  | Heal_partition of string * string
  | Heal_all_partitions
  | Clock_jump of int * int
  | Lease_transfer of Cluster.range_id * int
  | Split_range of Cluster.range_id * string
  | Merge_range of Cluster.range_id
  | Rebalance of Cluster.range_id

let fault_to_string = function
  | Kill_node n -> Printf.sprintf "kill_node(n%d)" n
  | Revive_node n -> Printf.sprintf "revive_node(n%d)" n
  | Kill_zone (r, z) -> Printf.sprintf "kill_zone(%s/%s)" r z
  | Revive_zone (r, z) -> Printf.sprintf "revive_zone(%s/%s)" r z
  | Kill_region r -> Printf.sprintf "kill_region(%s)" r
  | Revive_region r -> Printf.sprintf "revive_region(%s)" r
  | Partition_regions (a, b) -> Printf.sprintf "partition(%s|%s)" a b
  | Heal_partition (a, b) -> Printf.sprintf "heal_partition(%s|%s)" a b
  | Heal_all_partitions -> "heal_partitions"
  | Clock_jump (n, s) -> Printf.sprintf "clock_jump(n%d, %+dus)" n s
  | Lease_transfer (rid, n) -> Printf.sprintf "lease_transfer(r%d -> n%d)" rid n
  | Split_range (rid, at) -> Printf.sprintf "split_range(r%d @ %S)" rid at
  | Merge_range rid -> Printf.sprintf "merge_range(r%d)" rid
  | Rebalance rid -> Printf.sprintf "rebalance(r%d)" rid

let is_heal = function
  | Revive_node _ | Revive_zone _ | Revive_region _ | Heal_partition _
  | Heal_all_partitions ->
      true
  | Kill_node _ | Kill_zone _ | Kill_region _ | Partition_regions _
  | Clock_jump _ | Lease_transfer _ | Split_range _ | Merge_range _
  | Rebalance _ ->
      false

(* Revivals go through [Cluster.restart_node] so that coming back means a
   process restart (volatile state lost, durable state retained), not a
   network heal. *)
let apply cl fault =
  let net = Cluster.net cl in
  let topo = Cluster.topology cl in
  let restart_all nodes =
    List.iter (fun n -> Cluster.restart_node cl n.Topology.id) nodes
  in
  match fault with
  | Kill_node n -> Transport.kill_node net n
  | Revive_node n -> Cluster.restart_node cl n
  | Kill_zone (region, zone) -> Transport.kill_zone net ~region ~zone
  | Revive_zone (region, zone) -> restart_all (Topology.nodes_in_zone topo region zone)
  | Kill_region r -> Transport.kill_region net r
  | Revive_region r -> restart_all (Topology.nodes_in_region topo r)
  | Partition_regions (a, b) -> Transport.partition_regions net a b
  | Heal_partition (a, b) -> Transport.heal_partition net a b
  | Heal_all_partitions -> Transport.heal_partitions net
  | Clock_jump (n, skew) -> Cluster.set_clock_skew cl n skew
  | Lease_transfer (rid, target) -> Cluster.transfer_lease cl rid ~target
  (* Lifecycle faults are best-effort: the range may have disappeared (or
     lost its leaseholder) between scheduling and injection. *)
  | Split_range (rid, at) ->
      if List.mem rid (Cluster.ranges cl) then begin
        let s, e = Cluster.span_of cl rid in
        if String.compare at s > 0 && String.compare at e < 0 then
          ignore (Cluster.split_range cl rid ~at : Cluster.range_id option)
      end
  | Merge_range rid ->
      if List.mem rid (Cluster.ranges cl) then
        ignore (Cluster.merge_range cl rid : bool)
  | Rebalance rid ->
      if List.mem rid (Cluster.ranges cl) then
        ignore (Cluster.rebalance_step cl rid : bool)

(* ------------------------------------------------------------------ *)
(* Safety invariant                                                    *)

(* Would killing [extra_dead] leave every range a live voter quorum? This is
   the configurable min-healthy invariant: under SURVIVE ZONE it forbids
   killing two home zones at once (or the home region); under SURVIVE REGION
   it forbids a second concurrent region failure. *)
let kill_is_safe cl extra_dead =
  let net = Cluster.net cl in
  List.for_all
    (fun rid ->
      let voters =
        List.filter_map
          (fun (node, kind) -> match kind with Raft.Voter -> Some node | Raft.Learner -> None)
          (Cluster.replica_nodes cl rid)
      in
      let live =
        List.length
          (List.filter
             (fun n -> Transport.is_alive net n && not (List.mem n extra_dead))
             voters)
      in
      2 * live > List.length voters)
    (Cluster.ranges cl)

(* ------------------------------------------------------------------ *)
(* Scheduler                                                           *)

type t = {
  cl : Cluster.t;
  mutable log : (int * fault) list; (* newest first *)
  mutable stopped : bool;
  base_skews : int array;
  done_ : unit Ivar.t;
  c_injected : Metrics.counter;
  c_healed : Metrics.counter;
}

let make cl =
  let topo = Cluster.topology cl in
  let m = Obs.metrics (Cluster.obs cl) in
  {
    cl;
    log = [];
    stopped = false;
    base_skews =
      Array.init (Topology.num_nodes topo) (fun n -> Clock.skew (Cluster.clock cl n));
    done_ = Ivar.create ();
    c_injected = Metrics.counter m "chaos.injected";
    c_healed = Metrics.counter m "chaos.healed";
  }

let inject t fault =
  let now = Sim.now (Cluster.sim t.cl) in
  t.log <- (now, fault) :: t.log;
  let heal = is_heal fault in
  Metrics.inc (if heal then t.c_healed else t.c_injected);
  (* Structured event (mirrored to the legacy chaos.inject/heal trace
     instants by [Obs.log_event]). *)
  Obs.log_event (Cluster.obs t.cl)
    ~attrs:[ ("fault", fault_to_string fault) ]
    (if heal then Crdb_obs.Events.Heal else Crdb_obs.Events.Fault);
  apply t.cl fault

let stop t = t.stopped <- true
let log t = List.rev t.log

let log_to_string t =
  String.concat "\n"
    (List.map
       (fun (at, fault) ->
         Printf.sprintf "%10d %-6s %s" at
           (if is_heal fault then "heal" else "inject")
           (fault_to_string fault))
       (log t))

let await t = Proc.await t.done_

(* Undo everything a schedule may have left in force: revive every dead node
   (with restart semantics), drop all partitions, restore baseline skews. *)
let heal_all t =
  let net = Cluster.net t.cl in
  let topo = Cluster.topology t.cl in
  Transport.heal_partitions net;
  for n = 0 to Topology.num_nodes topo - 1 do
    if not (Transport.is_alive net n) then inject t (Revive_node n);
    if Clock.skew (Cluster.clock t.cl n) <> t.base_skews.(n) then
      inject t (Clock_jump (n, t.base_skews.(n)))
  done

(* ------------------------------------------------------------------ *)
(* Timed scripts                                                       *)

let run_script cl script =
  let t = make cl in
  let sim = Cluster.sim cl in
  let start = Sim.now sim in
  let script = List.sort (fun (a, _) (b, _) -> Int.compare a b) script in
  Proc.spawn sim (fun () ->
      List.iter
        (fun (at, fault) ->
          let due = start + at in
          if due > Sim.now sim then Proc.sleep sim (due - Sim.now sim);
          if not t.stopped then inject t fault)
        script;
      Ivar.fill t.done_ ());
  t

(* ------------------------------------------------------------------ *)
(* Seeded random schedules                                             *)

type kind =
  | K_kill_node
  | K_kill_zone
  | K_kill_region
  | K_partition
  | K_clock_jump
  | K_lease_transfer
  | K_split_range
  | K_merge_range
  | K_rebalance

(* The range-lifecycle kinds are deliberately NOT part of [all_kinds]: the
   kinds array length feeds the schedule RNG, so adding them here would
   silently reshuffle every existing seeded schedule. Suites that want
   splits/merges/rebalances racing the other faults opt in explicitly. *)
let all_kinds =
  [ K_kill_node; K_kill_zone; K_kill_region; K_partition; K_clock_jump; K_lease_transfer ]

let lifecycle_kinds = [ K_split_range; K_merge_range; K_rebalance ]

type random_config = {
  mean_interval : int;
  mean_duration : int;
  kinds : kind list;
  max_clock_skew : int;
  enforce_quorum : bool;
}

let default_random =
  {
    mean_interval = 2_000_000;
    mean_duration = 4_000_000;
    kinds = all_kinds;
    max_clock_skew = 100_000;
    enforce_quorum = true;
  }

(* Pick a concrete fault (plus its heal, if any) for the drawn kind, or
   [None] when no candidate passes the min-healthy invariant. Candidate
   enumeration is in fixed (id, region, zone) order so identical seeds yield
   identical schedules. *)
let pick_fault t rng cfg kind =
  let cl = t.cl in
  let net = Cluster.net cl in
  let topo = Cluster.topology cl in
  let safe nodes = (not cfg.enforce_quorum) || kill_is_safe cl nodes in
  let regions = Topology.regions topo in
  let pick_list l = if l = [] then None else Some (List.nth l (Rng.int rng (List.length l))) in
  match kind with
  | K_kill_node ->
      let candidates =
        List.filter
          (fun n -> Transport.is_alive net n && safe [ n ])
          (List.init (Topology.num_nodes topo) Fun.id)
      in
      Option.map
        (fun n -> (Kill_node n, Some (Revive_node n)))
        (pick_list candidates)
  | K_kill_zone ->
      let candidates =
        List.concat_map
          (fun r ->
            List.filter_map
              (fun z ->
                let nodes =
                  List.map (fun n -> n.Topology.id) (Topology.nodes_in_zone topo r z)
                in
                if List.exists (Transport.is_alive net) nodes && safe nodes then
                  Some (r, z)
                else None)
              (Topology.zones_in_region topo r))
          regions
      in
      Option.map
        (fun (r, z) -> (Kill_zone (r, z), Some (Revive_zone (r, z))))
        (pick_list candidates)
  | K_kill_region ->
      let candidates =
        List.filter
          (fun r ->
            let nodes =
              List.map (fun n -> n.Topology.id) (Topology.nodes_in_region topo r)
            in
            List.exists (Transport.is_alive net) nodes && safe nodes)
          regions
      in
      Option.map
        (fun r -> (Kill_region r, Some (Revive_region r)))
        (pick_list candidates)
  | K_partition ->
      if List.length regions < 2 then None
      else begin
        let a = List.nth regions (Rng.int rng (List.length regions)) in
        let rest = List.filter (fun r -> not (String.equal r a)) regions in
        let b = List.nth rest (Rng.int rng (List.length rest)) in
        Some (Partition_regions (a, b), Some (Heal_partition (a, b)))
      end
  | K_clock_jump ->
      let n = Rng.int rng (Topology.num_nodes topo) in
      let skew = Rng.int rng ((2 * cfg.max_clock_skew) + 1) - cfg.max_clock_skew in
      Some (Clock_jump (n, skew), Some (Clock_jump (n, t.base_skews.(n))))
  | K_lease_transfer -> (
      match pick_list (Cluster.ranges cl) with
      | None -> None
      | Some rid ->
          let lh = Cluster.leaseholder cl rid in
          let targets =
            List.filter_map
              (fun (node, k) ->
                match k with
                | Raft.Voter when Transport.is_alive net node && Some node <> lh ->
                    Some node
                | Raft.Voter | Raft.Learner -> None)
              (Cluster.replica_nodes cl rid)
          in
          Option.map
            (fun target -> (Lease_transfer (rid, target), None))
            (pick_list targets))
  | K_split_range -> (
      match pick_list (Cluster.ranges cl) with
      | None -> None
      | Some rid ->
          Option.map
            (fun at -> (Split_range (rid, at), None))
            (Cluster.split_point cl rid))
  | K_merge_range ->
      (* Only ranges whose right-hand neighbor exists and matches (same zone
         and policy) are candidates; [merge_range] rechecks at injection. *)
      let mergeable rid =
        let _, e = Cluster.span_of cl rid in
        List.exists
          (fun other ->
            other <> rid
            && String.equal (fst (Cluster.span_of cl other)) e
            && Cluster.zone_of cl other = Cluster.zone_of cl rid
            && Cluster.policy_of cl other = Cluster.policy_of cl rid)
          (Cluster.ranges cl)
      in
      Option.map
        (fun rid -> (Merge_range rid, None))
        (pick_list (List.filter mergeable (Cluster.ranges cl)))
  | K_rebalance ->
      Option.map (fun rid -> (Rebalance rid, None)) (pick_list (Cluster.ranges cl))

let run_random ?(config = default_random) cl ~seed ~duration () =
  let t = make cl in
  let sim = Cluster.sim cl in
  let rng = Rng.create ~seed in
  let kinds = Array.of_list config.kinds in
  let deadline = Sim.now sim + duration in
  Proc.spawn sim (fun () ->
      while (not t.stopped) && Sim.now sim < deadline do
        let gap =
          (config.mean_interval / 2) + Rng.int rng (max 1 config.mean_interval)
        in
        Proc.sleep sim gap;
        if (not t.stopped) && Sim.now sim < deadline && Array.length kinds > 0 then begin
          let kind = kinds.(Rng.int rng (Array.length kinds)) in
          match pick_fault t rng config kind with
          | None -> ()
          | Some (fault, heal) ->
              inject t fault;
              let hold =
                (config.mean_duration / 2) + Rng.int rng (max 1 config.mean_duration)
              in
              Proc.sleep sim hold;
              if not t.stopped then
                match heal with Some h -> inject t h | None -> ()
        end
      done;
      (* Leave the cluster healthy: a schedule never ends mid-outage. *)
      heal_all t;
      Ivar.fill t.done_ ());
  t
