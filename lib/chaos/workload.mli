(** Chaos workloads: register and bank clients that record every operation
    into a {!Crdb_check.History} for offline checking.

    The register workload is a YCSB-A-style mix (scrambled-Zipfian keys,
    configurable read/write ratio) of single-key serializable transactions;
    its history feeds {!Crdb_check.Checker.check_linearizable}. The bank
    workload runs transfers between preloaded accounts plus periodic
    full-table snapshots; its history feeds
    {!Crdb_check.Checker.check_bank}. Clients pick a live gateway in their
    home region per operation (reconnecting around kills), classify
    unknown-outcome errors as [Info], and are fully deterministic given the
    cluster seed and the workload seed. *)

module Cluster = Crdb_kv.Cluster
module History = Crdb_check.History

(** Configuration of the multi-key transactional workload, the one the
    serializability checker consumes. One record instead of five loose
    fields so harnesses and CLIs thread it around as a unit. *)
module Txn_config : sig
  type t = {
    clients : int;
        (** multi-key transactional clients; 0 (the default) disables the
            workload and leaves all pre-existing seeded histories
            unchanged *)
    ops_per_client : int;
    keys : int;  (** transactional keyspace ([tk00] ...) *)
    ranges : int;
        (** ranges the transactional keyspace is carved into, so every
            transaction spans range boundaries *)
    hot_keys : int;
        (** when [>= 2], transactional clients pick all their keys from the
            first [hot_keys] keys, forcing write-write conflicts that
            exercise the conflict-resolution machinery; 0 (the default)
            keeps the uniform key picker and leaves seeded histories
            unchanged *)
  }

  val default : t
  (** [{ clients = 0; ops_per_client = 12; keys = 12; ranges = 3;
      hot_keys = 0 }] *)
end

type config = {
  seed : int;
  clients_per_region : int;
  ops_per_client : int;
  keys : int;  (** register keyspace ([key000] ...) *)
  write_ratio : float;  (** YCSB-A = 0.5 *)
  think_time : int;  (** mean µs between a client's operations *)
  max_attempts : int;  (** transaction retry budget under chaos *)
  accounts : int;  (** bank accounts; < 2 disables the bank workload *)
  bank_clients : int;
  bank_ops_per_client : int;
  initial_balance : int;
  unsafe_stale_reads : bool;
      (** deliberately broken mode: serve register reads at a bounded-stale
          timestamp but record them as fresh — the linearizability checker
          must catch this *)
  txn : Txn_config.t;  (** the multi-key transactional workload *)
  unsafe_no_refresh : bool;
      (** deliberately broken mode: transactions skip read-span refreshes on
          timestamp pushes (see {!Crdb_txn.Txn.Options}) — the
          serializability checker must catch this *)
  unsafe_no_recovery : bool;
      (** deliberately broken mode: pushers finding a STAGING record abort
          it immediately without probing the declared in-flight writes (see
          {!Cluster.config}) — implicitly committed transactions get torn
          down and the serializability checker must catch it *)
}

val default : config

val key_of : int -> string
val account_of : int -> string
val txn_key_of : int -> string

val bank_total : config -> int
(** The conserved quantity: [accounts * initial_balance]. *)

val setup :
  ?policy:Cluster.policy -> Cluster.t -> survival:Crdb_kv.Zoneconfig.survival -> config -> unit
(** Create the register and bank ranges (zone config derived from
    [survival], leaseholder in the first region), settle the cluster, and
    preload the account balances. *)

type result = {
  registers : History.t;
  bank : History.t;
  txns : History.t;  (** whole-transaction records of the multi-key workload *)
  mutable ok : int;
  mutable failed : int;
  mutable info : int;
}

val run : Cluster.t -> Crdb_txn.Txn.manager -> config -> result
(** Run every client to completion and return the recorded histories.
    Call inside {!Cluster.run}, typically with a nemesis schedule running
    concurrently. *)

val finale : Cluster.t -> Crdb_txn.Txn.manager -> config -> result -> unit
(** Post-chaos audit (call after healing): a fresh read of every register
    and a final bank snapshot, appended to the same histories. *)
