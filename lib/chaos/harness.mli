(** One-call chaos runs: cluster + workload + nemesis + checkers.

    The harness is what the [crdb_sim chaos] subcommand, the bench smoke
    entry and the test suites share: build a Table-1 cluster, run the
    register/bank workload with a nemesis schedule injected alongside it,
    heal everything, append the post-chaos audit, and return both checker
    verdicts with the deterministic fault log. Identical [setup] values
    (seeds included) produce byte-identical fault logs and verdicts. *)

module Cluster = Crdb_kv.Cluster
module Checker = Crdb_check.Checker

type setup = {
  regions : int;  (** first N of the paper's Table 1 regions, 3 nodes each *)
  survival : Crdb_kv.Zoneconfig.survival;
  policy : Cluster.policy;
  cluster_seed : int;
  nemesis_seed : int;
  nemesis : Nemesis.random_config option;  (** random schedule (if no script) *)
  script : (int * Nemesis.fault) list option;  (** timed script, wins over random *)
  duration : int;  (** µs the random nemesis stays active *)
  workload : Workload.config;
  cluster_config : Cluster.config option;
      (** base KV config; [seed] is overridden by [cluster_seed]. [None]
          means {!Cluster.default} *)
}

val default : setup
(** 3 regions, SURVIVE REGION, lagging closed timestamps, random nemesis of
    every fault kind for 20 s, the default workload. *)

type outcome = {
  cluster : Cluster.t;
  fault_log : string;
  result : Workload.result;
  register_verdict : Checker.verdict;
  bank_verdict : Checker.verdict;
  txn_verdict : Checker.verdict;
      (** {!Checker.check_serializable} over the multi-key transactional
          history; trivially valid when [txn.clients = 0] *)
}

val passed : outcome -> bool
(** All verdicts valid. *)

val run : ?arm:(Cluster.t -> unit) -> setup -> outcome
(** Execute the run. [arm] is called after range setup and before the
    workload (e.g. [Obs.enable_tracing]). *)
