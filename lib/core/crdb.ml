module Value = Crdb_sql.Value
module Schema = Crdb_sql.Schema
module Ddl = Crdb_sql.Ddl
module Legacy = Crdb_sql.Legacy
module Engine = Crdb_sql.Engine
module Txn = Crdb_txn.Txn
module Cluster = Crdb_kv.Cluster
module Zoneconfig = Crdb_kv.Zoneconfig
module Topology = Crdb_net.Topology
module Latency = Crdb_net.Latency
module Transport = Crdb_net.Transport
module Timestamp = Crdb_hlc.Timestamp
module Obs = Crdb_obs.Obs
module Trace = Crdb_obs.Trace
module Metrics = Crdb_obs.Metrics
module Events = Crdb_obs.Events
module Timeseries = Crdb_obs.Timeseries
module Phase = Crdb_obs.Phase
module Report = Crdb_obs.Report

let version = "0.1.0"

type t = { cl : Cluster.t; eng : Engine.t }

let start ?config ?latency ?(nodes_per_region = 3) ~regions () =
  let latency =
    match latency with
    | Some l -> l
    | None ->
        if List.for_all (fun r -> List.mem r Latency.table1_regions) regions
        then Latency.table1
        else Latency.gcp
  in
  let topology = Topology.symmetric ~regions ~nodes_per_region in
  let cl = Cluster.create ?config ~topology ~latency () in
  { cl; eng = Engine.create cl }

let cluster t = t.cl
let engine t = t.eng
let obs t = Cluster.obs t.cl
let topology t = Cluster.topology t.cl
let sim_now t = Crdb_sim.Sim.now (Cluster.sim t.cl)
let exec t stmt = Engine.exec t.eng stmt
let exec_all t stmts = Engine.exec_all t.eng stmts
let database t name = Engine.database t.eng name

let gateway t ~region ?(index = 0) () =
  match Topology.nodes_in_region (topology t) region with
  | [] -> invalid_arg (Printf.sprintf "Crdb.gateway: no nodes in %s" region)
  | nodes -> (List.nth nodes (index mod List.length nodes)).Topology.id

let run t f = Cluster.run t.cl f
let run_for t d = Cluster.run_for t.cl d
let settle t = Cluster.settle t.cl
