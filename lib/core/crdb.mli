(** Public façade: a simulated multi-region CockroachDB cluster.

    This module ties the substrates together and re-exports the layers a
    user programs against. A typical session:

    {[
      let t =
        Crdb.start ~regions:[ "us-east1"; "us-west1"; "europe-west2" ] ()
      in
      Crdb.exec t
        (Ddl.N_create_database
           { db = "movr"; primary = "us-east1";
             regions = [ "us-west1"; "europe-west2" ] });
      Crdb.exec t (Ddl.N_create_table { db = "movr"; table = users_schema });
      let db = Crdb.database t "movr" in
      let gw = Crdb.gateway t ~region:"us-west1" () in
      Crdb.run t (fun () ->
          Engine.insert db ~gateway:gw ~table:"users" row |> Result.get_ok)
    ]} *)

module Value = Crdb_sql.Value
module Schema = Crdb_sql.Schema
module Ddl = Crdb_sql.Ddl
module Legacy = Crdb_sql.Legacy
module Engine = Crdb_sql.Engine
module Txn = Crdb_txn.Txn
module Cluster = Crdb_kv.Cluster
module Zoneconfig = Crdb_kv.Zoneconfig
module Topology = Crdb_net.Topology
module Latency = Crdb_net.Latency
module Transport = Crdb_net.Transport
module Timestamp = Crdb_hlc.Timestamp
module Obs = Crdb_obs.Obs
module Trace = Crdb_obs.Trace
module Metrics = Crdb_obs.Metrics
module Events = Crdb_obs.Events
module Timeseries = Crdb_obs.Timeseries
module Phase = Crdb_obs.Phase
module Report = Crdb_obs.Report

val version : string

type t

val start :
  ?config:Cluster.config ->
  ?latency:Latency.t ->
  ?nodes_per_region:int ->
  regions:string list ->
  unit ->
  t
(** Boot a cluster with [nodes_per_region] (default 3) nodes per region.
    The default latency profile is the paper's Table 1 matrix when every
    region appears in it, otherwise the distance-derived GCP profile. *)

val cluster : t -> Cluster.t
val engine : t -> Engine.t

val obs : t -> Obs.t
(** The cluster's observability context ({!Cluster.obs}): metrics are always
    collected; call [Obs.enable_tracing (Crdb.obs t)] before the workload to
    also record spans, then export with [Trace.to_chrome_json]. *)

val topology : t -> Topology.t
val sim_now : t -> int

val exec : t -> Ddl.stmt -> unit
val exec_all : t -> Ddl.stmt list -> unit
val database : t -> string -> Engine.db

val gateway : t -> region:string -> ?index:int -> unit -> Topology.node_id
(** The [index]-th node (default 0) of a region, to use as a client
    gateway. *)

val run : t -> (unit -> 'a) -> 'a
(** Run a client workload (a {!Crdb_sim.Proc} process) to completion. *)

val run_for : t -> int -> unit
(** Advance simulated time (microseconds). *)

val settle : t -> unit
