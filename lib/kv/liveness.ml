module Transport = Crdb_net.Transport
module Sim = Crdb_sim.Sim

type t = { net : Transport.t; expiry : int }

let create ?(expiry = 4_500_000) net = { net; expiry }

let believed_live t node =
  match Transport.dead_since t.net node with
  | None -> true
  | Some died_at -> Sim.now (Transport.sim t.net) - died_at < t.expiry

let actually_alive t node = Transport.is_alive t.net node
let epoch t node = Transport.epoch t.net node
let expiry t = t.expiry
