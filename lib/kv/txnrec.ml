module Ts = Crdb_hlc.Timestamp

type status =
  | Pending
  | Staging of { ts : Ts.t; inflight : string list }
  | Committed of Ts.t
  | Aborted of { reason : string; wound : bool }

type record = {
  tr_id : int;
  tr_key : string;
  tr_pri : Ts.t;
  mutable tr_status : status;
  mutable tr_hb : int;
}

type update =
  | U_register of { pri : Ts.t; hb : int }
  | U_heartbeat of { hb : int }
  | U_stage of { pri : Ts.t; ts : Ts.t; inflight : string list; hb : int }
  | U_commit of { ts : Ts.t }
  | U_wound of { reason : string }
  | U_abandon of { reason : string; if_hb_before : int }
  | U_recover_abort of { reason : string }
  | U_coord_abort of { reason : string }

type t = { tbl : (int, record) Hashtbl.t }

let create () = { tbl = Hashtbl.create 16 }
let find t ~txn = Hashtbl.find_opt t.tbl txn

let ensure t ~txn ~key ~pri ~hb =
  match Hashtbl.find_opt t.tbl txn with
  | Some r -> r
  | None ->
      let r =
        { tr_id = txn; tr_key = key; tr_pri = pri; tr_status = Pending;
          tr_hb = hb }
      in
      Hashtbl.replace t.tbl txn r;
      r

(* First decision wins: Committed and Aborted are terminal. Every guard
   below re-checks the applied state, so an update that lost the log-order
   race degrades to a no-op rather than overwriting the winner. *)
let apply t ~txn ~key upd =
  match upd with
  | U_register { pri; hb } -> ignore (ensure t ~txn ~key ~pri ~hb : record)
  | U_heartbeat { hb } -> (
      match find t ~txn with
      | Some ({ tr_status = Pending | Staging _; _ } as r) ->
          r.tr_hb <- max r.tr_hb hb
      | Some _ | None -> ())
  | U_stage { pri; ts; inflight; hb } -> (
      let r = ensure t ~txn ~key ~pri ~hb in
      match r.tr_status with
      | Pending | Staging _ ->
          r.tr_status <- Staging { ts; inflight };
          r.tr_hb <- max r.tr_hb hb
      | Committed _ | Aborted _ -> ())
  | U_commit { ts } -> (
      match find t ~txn with
      | Some ({ tr_status = Pending | Staging _; _ } as r) ->
          r.tr_status <- Committed ts
      | Some _ -> ()
      | None ->
          (* A commit decision for a record this table never saw (the
             record was cleaned up, or the finalize raced a lifecycle
             event): persist the decision so later pushes resolve the
             intents instead of declaring the transaction abandoned. *)
          let r = ensure t ~txn ~key ~pri:Ts.zero ~hb:0 in
          r.tr_status <- Committed ts)
  | U_wound { reason } -> (
      match find t ~txn with
      | Some ({ tr_status = Pending; _ } as r) ->
          r.tr_status <- Aborted { reason; wound = true }
      | Some _ | None -> ())
  | U_abandon { reason; if_hb_before } -> (
      match find t ~txn with
      | Some ({ tr_status = Pending; _ } as r) when r.tr_hb <= if_hb_before ->
          r.tr_status <- Aborted { reason; wound = false }
      | Some _ | None -> ())
  | U_recover_abort { reason } -> (
      match find t ~txn with
      | Some ({ tr_status = Staging _; _ } as r) ->
          r.tr_status <- Aborted { reason; wound = true }
      | Some _ | None -> ())
  | U_coord_abort { reason } -> (
      let r = ensure t ~txn ~key ~pri:Ts.zero ~hb:0 in
      match r.tr_status with
      | Pending | Staging _ -> r.tr_status <- Aborted { reason; wound = false }
      | Committed _ | Aborted _ -> ())

let status t ~txn =
  match find t ~txn with Some r -> Some r.tr_status | None -> None

let priority t ~txn =
  match find t ~txn with Some r -> Some (r.tr_pri, r.tr_id) | None -> None

let older (a_ts, a_id) (b_ts, b_id) =
  Ts.(a_ts < b_ts) || (Ts.equal a_ts b_ts && a_id < b_id)

let pending t =
  Hashtbl.fold
    (fun _ r acc ->
      match r.tr_status with
      | Pending | Staging _ -> acc + 1
      | Committed _ | Aborted _ -> acc)
    t.tbl 0

let records t = Hashtbl.fold (fun _ r acc -> r :: acc) t.tbl []

let copy_record r =
  { tr_id = r.tr_id; tr_key = r.tr_key; tr_pri = r.tr_pri;
    tr_status = r.tr_status; tr_hb = r.tr_hb }

let copy t =
  let dst = create () in
  Hashtbl.iter (fun id r -> Hashtbl.replace dst.tbl id (copy_record r)) t.tbl;
  dst

let replace_with t src =
  Hashtbl.reset t.tbl;
  Hashtbl.iter (fun id r -> Hashtbl.replace t.tbl id (copy_record r)) src.tbl

let split_move t ~into ~at =
  let moved =
    Hashtbl.fold
      (fun id r acc -> if r.tr_key >= at then (id, r) :: acc else acc)
      t.tbl []
  in
  List.iter
    (fun (id, r) ->
      Hashtbl.remove t.tbl id;
      Hashtbl.replace into.tbl id r)
    moved

let absorb t ~from =
  Hashtbl.iter (fun id r -> Hashtbl.replace t.tbl id (copy_record r)) from.tbl

let clear t = Hashtbl.reset t.tbl
