module Ts = Crdb_hlc.Timestamp

type status =
  | Pending
  | Committed of Ts.t
  | Aborted of { reason : string; wound : bool }

type record = {
  tr_id : int;
  tr_pri : Ts.t;
  mutable tr_status : status;
  mutable tr_hb : int;
}

type t = { tbl : (int, record) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

let register t ~txn ~priority ~now =
  if not (Hashtbl.mem t.tbl txn) then
    Hashtbl.replace t.tbl txn
      { tr_id = txn; tr_pri = priority; tr_status = Pending; tr_hb = now }

let heartbeat t ~txn ~now =
  match Hashtbl.find_opt t.tbl txn with
  | Some ({ tr_status = Pending; _ } as r) -> r.tr_hb <- now
  | Some _ | None -> ()

let status t ~txn =
  Option.map (fun r -> r.tr_status) (Hashtbl.find_opt t.tbl txn)

let priority t ~txn =
  Option.map (fun r -> (r.tr_pri, r.tr_id)) (Hashtbl.find_opt t.tbl txn)

let try_commit t ~txn ~ts =
  match Hashtbl.find_opt t.tbl txn with
  | None -> Ok ()
  | Some r -> (
      match r.tr_status with
      | Pending ->
          r.tr_status <- Committed ts;
          Ok ()
      | Committed _ -> Ok ()
      | Aborted { reason; _ } -> Error reason)

let abort t ~txn ~reason =
  match Hashtbl.find_opt t.tbl txn with
  | None ->
      Hashtbl.replace t.tbl txn
        { tr_id = txn; tr_pri = Ts.zero; tr_status = Aborted { reason; wound = false }; tr_hb = 0 }
  | Some r -> (
      match r.tr_status with
      | Pending -> r.tr_status <- Aborted { reason; wound = false }
      | Committed _ | Aborted _ -> ())

type verdict = Wait | Wound of string | Cleanup of Ts.t option

(* Lexicographic (priority ts, txn id): lower = older = wins. *)
let older (ats, aid) (bts, bid) = Ts.(ats < bts) || (Ts.equal ats bts && aid < bid)

let push t ~blocker ~pusher ~now ~liveness =
  match Hashtbl.find_opt t.tbl blocker with
  | None ->
      (* Non-registered blocker (raw API / 1PC): stub record with the oldest
         possible priority, so it can only ever be cleaned up by
         abandonment. The grace period starts at this first push. *)
      Hashtbl.replace t.tbl blocker
        { tr_id = blocker; tr_pri = Ts.zero; tr_status = Pending; tr_hb = now };
      Wait
  | Some r -> (
      match r.tr_status with
      | Committed ts -> Cleanup (Some ts)
      | Aborted _ -> Cleanup None
      | Pending ->
          if now - r.tr_hb > liveness then begin
            r.tr_status <-
              Aborted { reason = "abandoned (coordinator dead)"; wound = false };
            Cleanup None
          end
          else begin
            match pusher with
            | Some p when older p (r.tr_pri, r.tr_id) ->
                let reason =
                  Printf.sprintf "wounded by older txn %d" (snd p)
                in
                r.tr_status <- Aborted { reason; wound = true };
                Wound reason
            | Some _ | None -> Wait
          end)

let pending t =
  Hashtbl.fold
    (fun _ r acc -> match r.tr_status with Pending -> acc + 1 | _ -> acc)
    t.tbl 0
