module Ivar = Crdb_sim.Ivar
module Ts = Crdb_hlc.Timestamp

type outcome = Acquired | Wounded of string | Pusher_aborted | Timed_out

type lock = {
  lk_txn : int;
  mutable lk_ts : Ts.t;
  lk_pri : Ts.t;
  lk_anchor : string;
}

let holder l = l.lk_txn
let lock_ts l = l.lk_ts
let lock_pri l = l.lk_pri
let lock_anchor l = l.lk_anchor

type t = {
  locks : (string, lock) Hashtbl.t;
  queues : (string, unit Ivar.t list ref) Hashtbl.t;
  mutable nwaiters : int;
}

let create () = { locks = Hashtbl.create 16; queues = Hashtbl.create 16; nwaiters = 0 }
let find t ~key = Hashtbl.find_opt t.locks key

let foreign t ~key ~txn ~max_ts =
  match Hashtbl.find_opt t.locks key with
  | Some l when Some l.lk_txn <> txn && Ts.(l.lk_ts <= max_ts) -> Some l
  | Some _ | None -> None

let foreign_in_span t ~start_key ~end_key ~txn ~max_ts =
  Hashtbl.fold
    (fun key l acc ->
      match acc with
      | Some _ -> acc
      | None ->
          if
            key >= start_key && key < end_key && Some l.lk_txn <> txn
            && Ts.(l.lk_ts <= max_ts)
          then Some (key, l)
          else None)
    t.locks None

let acquire t ?(pri = Ts.zero) ?(anchor = "") ~key ~txn ~ts () =
  match Hashtbl.find_opt t.locks key with
  | Some l ->
      assert (l.lk_txn = txn);
      l.lk_ts <- Ts.max l.lk_ts ts;
      false
  | None ->
      Hashtbl.replace t.locks key
        { lk_txn = txn; lk_ts = ts; lk_pri = pri; lk_anchor = anchor };
      true

let wake t ~key =
  match Hashtbl.find_opt t.queues key with
  | None -> ()
  | Some q ->
      let ws = !q in
      Hashtbl.remove t.queues key;
      t.nwaiters <- t.nwaiters - List.length ws;
      (* Parking prepends, so [ws] is newest-first: wake oldest-first or a
         sustained stream of fresh writers starves the earliest waiter
         forever (its re-acquire always loses to a younger one woken
         ahead of it). *)
      List.iter (fun iv -> Ivar.fill iv ()) (List.rev ws)

let release t ~key ~txn =
  (match Hashtbl.find_opt t.locks key with
  | Some l when l.lk_txn = txn -> Hashtbl.remove t.locks key
  | Some _ | None -> ());
  wake t ~key

let park t ~key =
  let iv = Ivar.create () in
  (match Hashtbl.find_opt t.queues key with
  | Some q -> q := iv :: !q
  | None -> Hashtbl.replace t.queues key (ref [ iv ]));
  t.nwaiters <- t.nwaiters + 1;
  iv

let unpark t ~key iv =
  match Hashtbl.find_opt t.queues key with
  | None -> ()
  | Some q ->
      if List.memq iv !q then begin
        q := List.filter (fun i -> i != iv) !q;
        t.nwaiters <- t.nwaiters - 1;
        if !q = [] then Hashtbl.remove t.queues key
      end

let waiters t = t.nwaiters
let clear_locks t = Hashtbl.reset t.locks

let wake_all t =
  let qs = Hashtbl.fold (fun _ q acc -> !q @ acc) t.queues [] in
  Hashtbl.reset t.queues;
  t.nwaiters <- 0;
  List.iter (fun iv -> Ivar.fill iv ()) qs

let reset t =
  Hashtbl.reset t.locks;
  wake_all t

let split_move t ~into ~at =
  let moved_locks =
    Hashtbl.fold (fun k l acc -> if k >= at then (k, l) :: acc else acc) t.locks []
  in
  List.iter
    (fun (k, l) ->
      Hashtbl.remove t.locks k;
      Hashtbl.replace into.locks k l)
    moved_locks;
  let moved_queues =
    Hashtbl.fold (fun k q acc -> if k >= at then (k, q) :: acc else acc) t.queues []
  in
  List.iter
    (fun (k, q) ->
      Hashtbl.remove t.queues k;
      let n = List.length !q in
      t.nwaiters <- t.nwaiters - n;
      into.nwaiters <- into.nwaiters + n;
      match Hashtbl.find_opt into.queues k with
      | Some q' -> q' := !q @ !q'
      | None -> Hashtbl.replace into.queues k q)
    moved_queues

let absorb t ~from =
  Hashtbl.iter (fun k l -> Hashtbl.replace t.locks k l) from.locks;
  Hashtbl.reset from.locks
