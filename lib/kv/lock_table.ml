module Ivar = Crdb_sim.Ivar
module Ts = Crdb_hlc.Timestamp

type outcome = Acquired | Wounded of string | Pusher_aborted | Timed_out
type strength = Shared | Exclusive

type lock = {
  lk_txn : int;
  mutable lk_ts : Ts.t;
  lk_pri : Ts.t;
  lk_anchor : string;
  mutable lk_strength : strength;
}

let holder l = l.lk_txn
let lock_ts l = l.lk_ts
let lock_pri l = l.lk_pri
let lock_anchor l = l.lk_anchor
let lock_strength l = l.lk_strength

(* Invariant per key: either one Exclusive holder, or any number of Shared
   holders. Upgrades mutate [lk_strength] in place once the upgrader is the
   sole holder. *)
type t = {
  locks : (string, lock list ref) Hashtbl.t;
  queues : (string, unit Ivar.t list ref) Hashtbl.t;
  mutable nwaiters : int;
}

let create () = { locks = Hashtbl.create 16; queues = Hashtbl.create 16; nwaiters = 0 }

let holders t ~key =
  match Hashtbl.find_opt t.locks key with Some ls -> !ls | None -> []

let find t ~key ~txn =
  List.find_opt (fun l -> l.lk_txn = txn) (holders t ~key)

let foreign t ~key ~txn ~max_ts =
  (* Readers (and refreshes) only conflict with Exclusive holders: a Shared
     lock guards against writers, never against other readers. *)
  List.find_opt
    (fun l ->
      l.lk_strength = Exclusive && Some l.lk_txn <> txn && Ts.(l.lk_ts <= max_ts))
    (holders t ~key)

let foreign_in_span t ~start_key ~end_key ~txn ~max_ts =
  Hashtbl.fold
    (fun key ls acc ->
      match acc with
      | Some _ -> acc
      | None ->
          if key >= start_key && key < end_key then
            match
              List.find_opt
                (fun l ->
                  l.lk_strength = Exclusive && Some l.lk_txn <> txn
                  && Ts.(l.lk_ts <= max_ts))
                !ls
            with
            | Some l -> Some (key, l)
            | None -> None
          else None)
    t.locks None

let foreign_for t ~key ~txn ~strength =
  (* What blocks an acquirer of [strength]: an Exclusive request conflicts
     with any foreign holder; a Shared request only with a foreign
     Exclusive holder. *)
  List.find_opt
    (fun l ->
      l.lk_txn <> txn
      && (strength = Exclusive || l.lk_strength = Exclusive))
    (holders t ~key)

let acquire t ?(pri = Ts.zero) ?(anchor = "") ?(strength = Exclusive) ~key ~txn
    ~ts () =
  let ls =
    match Hashtbl.find_opt t.locks key with
    | Some ls -> ls
    | None ->
        let ls = ref [] in
        Hashtbl.replace t.locks key ls;
        ls
  in
  match List.find_opt (fun l -> l.lk_txn = txn) !ls with
  | Some l ->
      l.lk_ts <- Ts.max l.lk_ts ts;
      (if strength = Exclusive && l.lk_strength = Shared then begin
         (* Upgrade: the caller must have established it is the sole
            holder (foreign Shared holders were pushed away first). *)
         assert (List.for_all (fun o -> o.lk_txn = txn) !ls);
         l.lk_strength <- Exclusive
       end);
      false
  | None ->
      assert (foreign_for t ~key ~txn ~strength = None);
      ls :=
        { lk_txn = txn; lk_ts = ts; lk_pri = pri; lk_anchor = anchor;
          lk_strength = strength }
        :: !ls;
      true

let wake t ~key =
  match Hashtbl.find_opt t.queues key with
  | None -> ()
  | Some q ->
      let ws = !q in
      Hashtbl.remove t.queues key;
      t.nwaiters <- t.nwaiters - List.length ws;
      (* Parking prepends, so [ws] is newest-first: wake oldest-first or a
         sustained stream of fresh writers starves the earliest waiter
         forever (its re-acquire always loses to a younger one woken
         ahead of it). *)
      List.iter (fun iv -> Ivar.fill iv ()) (List.rev ws)

let release t ~key ~txn =
  (match Hashtbl.find_opt t.locks key with
  | Some ls ->
      ls := List.filter (fun l -> l.lk_txn <> txn) !ls;
      if !ls = [] then Hashtbl.remove t.locks key
  | None -> ());
  wake t ~key

let park t ~key =
  let iv = Ivar.create () in
  (match Hashtbl.find_opt t.queues key with
  | Some q -> q := iv :: !q
  | None -> Hashtbl.replace t.queues key (ref [ iv ]));
  t.nwaiters <- t.nwaiters + 1;
  iv

let unpark t ~key iv =
  match Hashtbl.find_opt t.queues key with
  | None -> ()
  | Some q ->
      if List.memq iv !q then begin
        q := List.filter (fun i -> i != iv) !q;
        t.nwaiters <- t.nwaiters - 1;
        if !q = [] then Hashtbl.remove t.queues key
      end

let waiters t = t.nwaiters
let clear_locks t = Hashtbl.reset t.locks

let wake_all t =
  let qs = Hashtbl.fold (fun _ q acc -> !q @ acc) t.queues [] in
  Hashtbl.reset t.queues;
  t.nwaiters <- 0;
  List.iter (fun iv -> Ivar.fill iv ()) qs

let reset t =
  Hashtbl.reset t.locks;
  wake_all t

let split_move t ~into ~at =
  let moved_locks =
    Hashtbl.fold (fun k ls acc -> if k >= at then (k, ls) :: acc else acc) t.locks []
  in
  List.iter
    (fun (k, ls) ->
      Hashtbl.remove t.locks k;
      Hashtbl.replace into.locks k ls)
    moved_locks;
  let moved_queues =
    Hashtbl.fold (fun k q acc -> if k >= at then (k, q) :: acc else acc) t.queues []
  in
  List.iter
    (fun (k, q) ->
      Hashtbl.remove t.queues k;
      let n = List.length !q in
      t.nwaiters <- t.nwaiters - n;
      into.nwaiters <- into.nwaiters + n;
      match Hashtbl.find_opt into.queues k with
      | Some q' -> q' := !q @ !q'
      | None -> Hashtbl.replace into.queues k q)
    moved_queues

let absorb t ~from =
  Hashtbl.iter (fun k ls -> Hashtbl.replace t.locks k ls) from.locks;
  Hashtbl.reset from.locks
