(** Node liveness oracle.

    Models CRDB's node-liveness range without its message traffic: a dead
    node is still {e believed} live until [expiry] microseconds after its
    death (the liveness record takes that long to lapse). Followers of
    quiesced ranges consult this before campaigning, and lease placement
    avoids dead nodes. *)

type t

val create : ?expiry:int -> Crdb_net.Transport.t -> t
(** Default expiry: 4.5 simulated seconds, CRDB's default liveness TTL. *)

val believed_live : t -> Crdb_net.Topology.node_id -> bool
(** True while the node is up, and for [expiry] after it goes down. *)

val actually_alive : t -> Crdb_net.Topology.node_id -> bool

val epoch : t -> Crdb_net.Topology.node_id -> int
(** The node's liveness epoch (incarnation counter): bumped by each restart.
    A quiesced follower must stop trusting a leader whose epoch has moved on
    since the range quiesced — the restarted process no longer leads. *)

val expiry : t -> int
