(** Per-replica lock table: unreplicated locks plus conflict waiters.

    Owns the state that used to live in two ad-hoc hashtables on every
    replica ([r_locks] / [r_resolve_waiters]): the in-memory locks taken by
    transactional writers (and SELECT FOR UPDATE / FOR SHARE readers) on the
    leaseholder, and the queues of operations parked on a key until its lock
    is released or its intent resolved. Lock waiters and intent waiters
    share one queue per key — a wakeup is only a hint to re-evaluate, so a
    spurious wakeup costs one re-check and the caller parks again.

    Each key is held either by a single [Exclusive] lock (transactional
    writers, FOR UPDATE) or by any number of compatible [Shared] locks (FOR
    SHARE); a Shared holder may upgrade to Exclusive once it is the sole
    holder. Conflicts between acquirers resolve through the same wound-wait
    push protocol as write-write conflicts.

    The table is pure bookkeeping: pushing, wounding and timeouts live in
    [Cluster.wait_on_conflict]; the typed [outcome] every conflicting
    evaluation receives is defined here so all layers share it. *)

module Ivar = Crdb_sim.Ivar
module Ts = Crdb_hlc.Timestamp

type outcome =
  | Acquired
      (** the conflict cleared (or routing changed) — re-evaluate the op *)
  | Wounded of string
      (** the *waiting* transaction was wounded by an older pusher while
          parked: restartable, surfaced as [Txn.Wounded] *)
  | Pusher_aborted
      (** the waiting transaction was aborted for another reason (e.g.
          abandonment) while parked *)
  | Timed_out  (** last-resort backstop: [conflict_wait_timeout] elapsed *)

type strength =
  | Shared
      (** SELECT FOR SHARE: compatible with other Shared holders, blocks
          Exclusive acquirers *)
  | Exclusive
      (** transactional writes and SELECT FOR UPDATE: blocks everyone *)

type lock

val holder : lock -> int
val lock_ts : lock -> Ts.t

val lock_pri : lock -> Ts.t
(** The holder's wound-wait priority timestamp, stamped at {!acquire} so a
    pusher can address the holder's record without a global registry. *)

val lock_anchor : lock -> string
(** The holder's anchor key (where its transaction record lives); [""] for
    recordless writers. *)

val lock_strength : lock -> strength

type t

val create : unit -> t

(** {1 Locks} *)

val holders : t -> key:string -> lock list
(** All locks on [key]: one Exclusive, or any number of Shared. *)

val find : t -> key:string -> txn:int -> lock option
(** [txn]'s own grip on [key], if any. *)

val foreign : t -> key:string -> txn:int option -> max_ts:Ts.t -> lock option
(** An Exclusive lock on [key] held by a different transaction at a
    timestamp [<= max_ts] (the visibility rule readers use; Shared locks
    never block plain reads). *)

val foreign_in_span :
  t -> start_key:string -> end_key:string -> txn:int option -> max_ts:Ts.t -> (string * lock) option
(** Any foreign Exclusive lock on a key in [[start_key, end_key)], for scans
    and span refreshes; the key identifies where to park. *)

val foreign_for :
  t -> key:string -> txn:int -> strength:strength -> lock option
(** What blocks [txn] from acquiring at [strength]: an Exclusive request
    conflicts with any foreign holder (including Shared ones it must push
    away before upgrading), a Shared request only with a foreign Exclusive
    holder. *)

val acquire :
  t -> ?pri:Ts.t -> ?anchor:string -> ?strength:strength -> key:string ->
  txn:int -> ts:Ts.t -> unit -> bool
(** Take or ratchet the lock ([strength] defaults to [Exclusive]). Returns
    [true] if the grip was newly created (the caller must [release] it if
    its proposal fails), [false] if the transaction already held the key and
    only the timestamp was ratcheted — requesting [Exclusive] over an
    existing [Shared] grip upgrades it in place. The caller must have
    established there is no conflicting foreign holder ({!foreign_for});
    for an upgrade it must be the sole holder. *)

val release : t -> key:string -> txn:int -> unit
(** Drop [txn]'s grip on [key] if it holds one (other Shared holders keep
    theirs), then wake all waiters on [key]. *)

val wake : t -> key:string -> unit
(** Wake all waiters on [key] without touching the lock (intent resolved). *)

(** {1 Waiters} *)

val park : t -> key:string -> unit Ivar.t
(** Enqueue a fresh waiter on [key] and return its wakeup ivar. *)

val unpark : t -> key:string -> unit Ivar.t -> unit
(** Remove a specific waiter (no-op if a wake already consumed it). *)

val waiters : t -> int
(** Total parked waiters across all keys (queue-depth gauge). *)

(** {1 Lifecycle} *)

val clear_locks : t -> unit
(** Snapshot install: replicated state replaced wholesale, so in-memory
    locks are stale; waiters stay parked (their conflicts re-resolve). *)

val reset : t -> unit
(** Node restart: locks die with the process and every waiter is woken so
    its RPC can fail over instead of waiting on a dead node. *)

val wake_all : t -> unit
(** Wake every waiter (range subsumed by a merge). *)

val split_move : t -> into:t -> at:string -> unit
(** Move locks and waiters on keys [>= at] to the right-hand table. *)

val absorb : t -> from:t -> unit
(** Merge: copy the right-hand leader's locks into the left table. *)
