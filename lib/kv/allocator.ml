module Topology = Crdb_net.Topology
module Latency = Crdb_net.Latency
module Raft = Crdb_raft.Raft

type placement = (Topology.node_id * Raft.peer_kind) list

(* Pick [count] nodes from [candidates], preferring failure domains not yet
   used, then lower load. Diversity follows the locality hierarchy: reusing
   a zone is strictly worse than reusing only the region, which is worse
   than a fresh region (the paper's diversity-maximizing allocator). [used]
   accumulates the (region, zone) pairs of every replica placed so far. *)
let pick_diverse ~count ~load ~used candidates =
  let rec go count used acc candidates =
    if count = 0 then List.rev acc
    else
      match candidates with
      | [] -> failwith "Allocator: not enough nodes to satisfy configuration"
      | _ ->
          let score (n : Topology.node) =
            let zone_reuse =
              List.length
                (List.filter
                   (fun (r, z) ->
                     String.equal r n.region && String.equal z n.zone)
                   used)
            in
            let region_reuse =
              List.length
                (List.filter (fun (r, _) -> String.equal r n.region) used)
            in
            (zone_reuse, region_reuse, load n.id, n.id)
          in
          let best =
            List.fold_left
              (fun acc n ->
                match acc with
                | None -> Some n
                | Some b -> if score n < score b then Some n else Some b)
              None candidates
          in
          let best = Option.get best in
          let rest = List.filter (fun (n : Topology.node) -> n.id <> best.id) candidates in
          go (count - 1) ((best.Topology.region, best.Topology.zone) :: used) (best :: acc) rest
  in
  go count used [] candidates

let place ~topology ~latency ~load ~zone =
  let open Zoneconfig in
  let taken = Hashtbl.create 16 in
  let adjusted_load id =
    (* Count replicas of this very range placed so far as infinitely loaded
       so no node is picked twice. *)
    if Hashtbl.mem taken id then max_int / 2 else load id
  in
  let region_count region placed =
    List.length
      (List.filter
         (fun (id, _) -> String.equal (Topology.region_of topology id) region)
         placed)
  in
  let used_localities placed =
    List.map
      (fun (id, _) ->
        (Topology.region_of topology id, Topology.zone_of topology id))
      placed
  in
  let home =
    match zone.lease_preferences with
    | home :: _ -> home
    | [] -> (
        match zone.voter_constraints with
        | (r, _) :: _ -> r
        | [] -> List.hd (Topology.regions topology))
  in
  (* 1. Voters pinned by voter_constraints. *)
  let placed = ref [] in
  let add kind (n : Topology.node) =
    Hashtbl.replace taken n.id ();
    placed := !placed @ [ (n.id, kind) ]
  in
  List.iter
    (fun (region, count) ->
      let candidates =
        Topology.nodes_in_region topology region
        |> List.filter (fun (n : Topology.node) -> not (Hashtbl.mem taken n.id))
      in
      let chosen =
        pick_diverse ~count ~load:adjusted_load ~used:(used_localities !placed)
          candidates
      in
      List.iter (add Raft.Voter) chosen)
    zone.voter_constraints;
  (* 2. Remaining voters: one per region, nearest regions to home first. *)
  let voters_placed () =
    List.length (List.filter (fun (_, k) -> k = Raft.Voter) !placed)
  in
  let regions_by_proximity =
    Latency.sort_by_proximity latency home (Topology.regions topology)
  in
  let voters_in region =
    List.length
      (List.filter
         (fun (id, k) ->
           k = Raft.Voter && String.equal (Topology.region_of topology id) region)
         !placed)
  in
  let rec fill_voters regions =
    if voters_placed () < zone.num_voters then
      match regions with
      | [] ->
          (* Every region already holds a voter: place the remainder one at a
             time in the regions with the fewest voters (diversity), so no
             single region can reach a quorum-breaking share. *)
          let rec top_up_voters () =
            if voters_placed () < zone.num_voters then begin
              let region =
                Topology.regions topology
                |> List.filter (fun r ->
                       List.exists
                         (fun (n : Topology.node) -> not (Hashtbl.mem taken n.id))
                         (Topology.nodes_in_region topology r))
                |> List.map (fun r -> (voters_in r, r))
                |> List.sort compare
                |> function
                | [] -> failwith "Allocator: not enough nodes to satisfy configuration"
                | (_, r) :: _ -> r
              in
              let candidates =
                Topology.nodes_in_region topology region
                |> List.filter (fun (n : Topology.node) -> not (Hashtbl.mem taken n.id))
              in
              let chosen =
                pick_diverse ~count:1 ~load:adjusted_load
                  ~used:(used_localities !placed) candidates
              in
              List.iter (add Raft.Voter) chosen;
              top_up_voters ()
            end
          in
          top_up_voters ()
      | region :: rest ->
          let has_voter =
            List.exists
              (fun (id, k) ->
                k = Raft.Voter
                && String.equal (Topology.region_of topology id) region)
              !placed
          in
          if not has_voter then begin
            let candidates =
              Topology.nodes_in_region topology region
              |> List.filter (fun (n : Topology.node) ->
                     not (Hashtbl.mem taken n.id))
            in
            match candidates with
            | [] -> ()
            | _ ->
                let chosen =
                  pick_diverse ~count:1 ~load:adjusted_load
                    ~used:(used_localities !placed) candidates
                in
                List.iter (add Raft.Voter) chosen
          end;
          fill_voters rest
  in
  fill_voters regions_by_proximity;
  if voters_placed () < zone.num_voters then
    failwith "Allocator: not enough nodes to satisfy configuration";
  (* 3. Non-voters demanded by constraints. *)
  List.iter
    (fun (region, count) ->
      let missing = count - region_count region !placed in
      if missing > 0 then begin
        let candidates =
          Topology.nodes_in_region topology region
          |> List.filter (fun (n : Topology.node) -> not (Hashtbl.mem taken n.id))
        in
        let chosen =
          pick_diverse ~count:missing ~load:adjusted_load
            ~used:(used_localities !placed) candidates
        in
        List.iter (add Raft.Learner) chosen
      end)
    zone.constraints;
  (* 4. Any remaining replicas: spread across the emptiest regions. *)
  let rec top_up () =
    if List.length !placed < zone.num_replicas then begin
      let region =
        Topology.regions topology
        |> List.map (fun r -> (region_count r !placed, r))
        |> List.sort compare |> List.hd |> snd
      in
      let candidates =
        Topology.nodes_in_region topology region
        |> List.filter (fun (n : Topology.node) -> not (Hashtbl.mem taken n.id))
      in
      let candidates =
        match candidates with
        | [] ->
            Array.to_list (Topology.nodes topology)
            |> List.filter (fun (n : Topology.node) -> not (Hashtbl.mem taken n.id))
        | cs -> cs
      in
      let chosen =
        pick_diverse ~count:1 ~load:adjusted_load ~used:(used_localities !placed)
          candidates
      in
      List.iter (add Raft.Learner) chosen;
      top_up ()
    end
  in
  top_up ();
  !placed

(* ------------------------------------------------------------------ *)
(* Rebalancing *)

(* Score a whole placement; lower is better. Lexicographic over
   (constraint violations, diversity penalty, total load): the rebalancer
   never trades a constraint for load. Dead replicas count as violations so
   the pass replaces them. The diversity penalty is pairwise over replicas
   and follows the locality hierarchy — a zone shared by two replicas costs
   more than a merely shared region. *)
let placement_score ~topology ~live ~load ~zone placement =
  let open Zoneconfig in
  let voters = List.filter (fun (_, k) -> k = Raft.Voter) placement in
  let in_region region (id, _) =
    String.equal (Topology.region_of topology id) region
  in
  let missing want have = max 0 (want - have) in
  let violations =
    List.fold_left
      (fun acc (region, count) ->
        acc + missing count (List.length (List.filter (in_region region) voters)))
      0 zone.voter_constraints
    + List.fold_left
        (fun acc (region, count) ->
          acc
          + missing count (List.length (List.filter (in_region region) placement)))
        0 zone.constraints
    + List.length (List.filter (fun (id, _) -> not (live id)) placement)
  in
  let rec pairs = function
    | [] -> []
    | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
  in
  let diversity =
    List.fold_left
      (fun acc ((a, _), (b, _)) ->
        let ra = Topology.region_of topology a
        and rb = Topology.region_of topology b in
        if not (String.equal ra rb) then acc
        else if
          String.equal (Topology.zone_of topology a) (Topology.zone_of topology b)
        then acc + 3
        else acc + 1)
      0 (pairs placement)
  in
  let total_load = List.fold_left (fun acc (id, _) -> acc + load id) 0 placement in
  (violations, diversity, total_load)

type move = {
  victim : Topology.node_id;
  replacement : Topology.node_id;
  kind : Raft.peer_kind;
}

let rebalance_move ~topology ~live ~load ~zone placement =
  let current = placement_score ~topology ~live ~load ~zone placement in
  let nodes = Array.to_list (Topology.nodes topology) in
  let best = ref None in
  List.iter
    (fun (victim, kind) ->
      List.iter
        (fun (n : Topology.node) ->
          if live n.id && not (List.mem_assoc n.id placement) then begin
            let candidate =
              List.map
                (fun (id, k) -> if id = victim then (n.id, k) else (id, k))
                placement
            in
            let s = placement_score ~topology ~live ~load ~zone candidate in
            let better =
              match !best with
              | None -> s < current
              | Some (bs, _) -> s < bs
            in
            if better then
              best := Some (s, { victim; replacement = n.id; kind })
          end)
        nodes)
    placement;
  Option.map snd !best

let preferred_leaseholder ~topology ~live ~zone placement =
  let voters = List.filter (fun (_, k) -> k = Raft.Voter) placement in
  let in_region region =
    List.find_opt
      (fun (id, _) ->
        String.equal (Topology.region_of topology id) region && live id)
      voters
  in
  let rec by_preference = function
    | [] -> List.find_opt (fun (id, _) -> live id) voters
    | region :: rest -> (
        match in_region region with Some v -> Some v | None -> by_preference rest)
  in
  Option.map fst (by_preference zone.Zoneconfig.lease_preferences)

(* Position of a node's region in the zone's lease-preference list;
   [max_int] when it sits in no preferred region. Lower ranks strictly
   dominate load below, mirroring [placement_score]'s lexicographic
   (violations, diversity, load) philosophy. *)
let lease_preference_rank ~topology ~zone id =
  let region = Topology.region_of topology id in
  let rec find i = function
    | [] -> max_int
    | r :: rest -> if String.equal r region then i else find (i + 1) rest
  in
  find 0 zone.Zoneconfig.lease_preferences

let preferred_leaseholder_by_load ~topology ~live ~load ~zone placement =
  let voters =
    List.filter (fun (id, k) -> k = Raft.Voter && live id) placement
  in
  let score id = (lease_preference_rank ~topology ~zone id, load id, id) in
  List.fold_left
    (fun best (id, _) ->
      match best with
      | None -> Some id
      | Some b -> if score id < score b then Some id else best)
    None voters

let satisfies ~topology ~zone placement =
  let open Zoneconfig in
  let voters = List.filter (fun (_, k) -> k = Raft.Voter) placement in
  let in_region region (id, _) =
    String.equal (Topology.region_of topology id) region
  in
  List.length voters = zone.num_voters
  && List.length placement = zone.num_replicas
  && List.for_all
       (fun (region, count) ->
         List.length (List.filter (in_region region) voters) >= count)
       zone.voter_constraints
  && List.for_all
       (fun (region, count) ->
         List.length (List.filter (in_region region) placement) >= count)
       zone.constraints
