(** The distributed KV layer: Ranges, replicas, leases and closed timestamps.

    A cluster owns the simulator, one HLC clock per node, the transport, and
    a set of Ranges. Each Range covers a contiguous key span, is replicated
    with Raft according to its {!Zoneconfig.t}, and closes timestamps under
    one of two policies:

    - [Lag d]: the leaseholder closes [now - d] (default 3 s), enabling
      follower reads of sufficiently stale data (§5);
    - [Lead]: the leaseholder closes {e future} time
      [L_raft + L_replicate + max_offset + publication interval] ahead, the
      GLOBAL-table policy (§6.2.1). Writes are pushed above the closed
      target, i.e. into the future.

    Closed timestamps travel both inside Raft entries and over a node-level
    side channel (one batched message per node pair per interval, CRDB's v2
    closed-timestamp transport); followers only adopt a side-channel update
    once they have applied the prefix of the log it covers.

    All read/write operations must run inside a {!Crdb_sim.Proc} coroutine;
    they perform real RPCs over the transport and take simulated time. *)

module Ts = Crdb_hlc.Timestamp

type policy = Lag of int | Lead

type config = {
  max_offset : int;  (** uncertainty interval / max tolerated clock skew *)
  close_lag : int;  (** [Lag] policy duration, default 3 s *)
  publish_interval : int;  (** side-channel period, default 100 ms *)
  raft_election_timeout : int;
  raft_heartbeat_interval : int;
  conflict_wait_timeout : int;
      (** last-resort backstop: how long a read or write may stay parked on a
          conflicting lock or intent before giving up entirely (default
          10 s). With the push/wound protocol active, conflicts normally
          resolve within a few [push_delay]s and this never fires on healthy
          runs; every expiry bumps the per-node [kv.conflict_timeouts]
          counter *)
  push_delay : int;
      (** how long a conflict waiter waits before (re-)pushing the blocking
          transaction's record — the grace period a live blocker gets to
          finish on its own (default 100 ms) *)
  txn_heartbeat_interval : int;
      (** how often transaction coordinators heartbeat their record (default
          1 s); a Pending record silent for 3x this interval is declared
          abandoned and pushers clean up its intents *)
  jitter : float;
  seed : int;
  autopilot : bool;
      (** whether chaos/bench harnesses should start the background queues
          ([Crdb_autopilot.Autopilot], which lives above this layer); the
          knobs below configure them *)
  autopilot_scan_interval : int;
      (** period of each store's autopilot scan loop (default 500 ms) *)
  autopilot_split_qps : float;
      (** windowed [kv.range.qps] rate above which the split queue fires *)
  autopilot_split_bytes : int;
      (** live size ({!live_bytes}) above which the split queue fires *)
  autopilot_merge_qps : float;
      (** combined QPS of two adjacent ranges below which the merge queue
          may subsume the right neighbor *)
  autopilot_merge_bytes : int;
      (** combined live size ceiling for merges; kept well under
          [autopilot_split_bytes] so split and merge cannot oscillate *)
  autopilot_cooldown : int;
      (** minimum simulated time between autopilot actions on the same
          range — the hysteresis that prevents ping-pong thrash *)
  autopilot_min_improvement : float;
      (** fraction by which a lease move must reduce the losing store's
          leaseholder load before the rebalance queue acts *)
  cc_mode : [ `Wound_wait | `Epoch_occ ];
      (** which concurrency-control backend [Txn.create_manager] wires up:
          the pessimistic lock-table/wound-wait protocol (the default) or
          epoch-grouped OCC, where writes are buffered at the gateway and
          validated/flushed at an epoch boundary. The KV layer itself is
          mode-agnostic; the knob lives here so one config value describes
          the whole cluster. *)
  epoch_interval : int;
      (** [`Epoch_occ] only: period of the cluster-wide epoch ticker that
          advances the commit boundary (default 25 ms) *)
  unsafe_no_recovery : bool;
      (** deliberately broken mode for checker validation: pushes treat
          every STAGING record as immediately recoverable (no liveness
          grace) and recovery aborts without verifying the declared
          in-flight writes, so an implicitly committed transaction can have
          its acked writes vanish. The serializability checker must catch
          the fallout. *)
}

val default : config
(** 250 ms max offset (CRDB Dedicated's default, §7.1), 3 s close lag,
    100 ms publication, 3 s / 1 s Raft timers, 100 ms push delay, 1 s txn
    heartbeats, 5% jitter.

    Build custom configurations with record update syntax, overriding only
    what the scenario needs:
    {[
      Cluster.create ~config:{ Cluster.default with seed = 42; push_delay = 50_000 } ...
    ]} *)

val default_config : config
(** Alias of {!default}, kept for existing callers; prefer
    [{ Cluster.default with ... }]. *)

type t

val create :
  ?config:config ->
  topology:Crdb_net.Topology.t ->
  latency:Crdb_net.Latency.t ->
  unit ->
  t

val sim : t -> Crdb_sim.Sim.t
val net : t -> Crdb_net.Transport.t

val obs : t -> Crdb_obs.Obs.t
(** The cluster-wide observability context: [kv.*], [raft.*] and [net.*]
    metrics accumulate here unconditionally; enable tracing via
    [Crdb_obs.Obs.enable_tracing] to also record spans. *)

val topology : t -> Crdb_net.Topology.t
val config : t -> config
val clock : t -> Crdb_net.Topology.node_id -> Crdb_hlc.Clock.t
val liveness : t -> Liveness.t
val rng : t -> Crdb_stdx.Rng.t
val now_ts : t -> Crdb_net.Topology.node_id -> Ts.t
(** Current HLC reading at a node. *)

val set_clock_skew : t -> Crdb_net.Topology.node_id -> int -> unit

(** {2 Range administration} *)

type range_id = int

val add_range :
  t -> span:string * string -> zone:Zoneconfig.t -> policy:policy -> range_id
(** Create a Range covering [\[start, end)], place replicas with the
    allocator and start its Raft group (leaseholder in the preferred
    region). Spans must not overlap existing ranges. *)

val alter_range : t -> range_id -> zone:Zoneconfig.t -> policy:policy -> unit
(** Re-derive placement for a new configuration, reconfigure the group and
    move the lease if needed (online locality/survivability change). *)

val drop_range : t -> range_id -> unit
(** Remove the range and its replicas (table/partition dropped). *)

val split_range : t -> range_id -> at:string -> range_id option
(** Split the range at [at] (which must lie strictly inside its span),
    forking its MVCC state, zone config, policy, timestamp cache and closed
    timestamps into a new right-hand range covering [\[at, end)]. The split
    is atomic in simulated time; the left leaseholder's node is preferred
    for the right range's lease. Returns the right range's id, or [None]
    when the range currently has no leaseholder to fork from.
    @raise Invalid_argument if [at] is outside the span. *)

val merge_range : t -> range_id -> bool
(** Merge the range with its right-hand neighbor (the range starting
    exactly at its end key), subsuming the neighbor: MVCC state is
    absorbed, the timestamp cache low water and closed timestamp ratchet
    over the subsumed range's, and waiters parked there are woken to retry
    against the merged range. [false] (and no effect) when there is no
    adjacent neighbor, the zone configs or policies differ, or either side
    lacks a live leaseholder. *)

val split_point : t -> range_id -> string option
(** The median live key of the range (a reasonable split point), or [None]
    when it holds fewer than two keys or has no leaseholder. *)

val live_bytes : t -> range_id -> int option
(** Live size of the range: key + latest live value bytes of the
    leaseholder's store ({!Crdb_storage.Mvcc.live_bytes}); [None] when the
    range has no live leader. The gauge behind [kv.range.bytes]. *)

val load_split_point : t -> range_id -> string option
(** Load-based split point: the weighted median of the request keys
    recently served through the range (a bounded per-range sample fed by
    every leaseholder op), i.e. the key that halves recent {e traffic}
    rather than the keyspace. Falls back to {!split_point} when the sample
    is too thin; always strictly inside the span. *)

val sampled_keys : t -> range_id -> string list
(** The raw bounded request-key sample behind {!load_split_point}
    (introspection for tests; unordered, duplicates retained). *)

val ranges_in_span :
  t -> start_key:string -> end_key:string -> range_id list
(** All live ranges overlapping [\[start_key, end_key)], ascending by span.
    Resolve spans through this at use time rather than caching range ids:
    splits and merges invalidate cached ids. *)

val rebalance_step : t -> range_id -> bool
(** One allocator-driven rebalance step: if a single-replica substitution
    improves the placement score (constraint violations, then failure-domain
    diversity, then load), add the replacement through a single-step Raft
    membership change and remove the victim once the replacement has caught
    up (add-then-remove, one replica at a time). When the victim is the
    leaseholder itself, the lease is transferred away instead and the move
    is left to a later pass. [true] iff a step was initiated. *)

val settle : t -> unit
(** Run the simulation briefly so that elections complete and initial closed
    timestamps propagate. Call after bulk range creation. *)

val run : t -> (unit -> 'a) -> 'a
(** [run t f] executes [f] as a process and steps the simulation until it
    completes (the cluster's periodic publishers keep the event queue
    non-empty forever, so draining the queue is not a termination
    condition) and all {!spawn_background} tasks have drained — so raw
    replica state inspected between [run] calls is quiescent even when
    clients are acked before post-commit work (intent resolution under
    parallel commits) finishes. @raise Failure on deadlock. *)

val spawn_background : t -> (unit -> unit) -> unit
(** Spawn a task that runs concurrently but is drained by {!run} before it
    returns: post-client-ack work whose completion tests must be able to
    rely on without polling. *)

val run_for : t -> int -> unit
(** Advance the simulation by the given number of microseconds. *)

val range_of_key : t -> string -> range_id
(** @raise Not_found if no range covers the key. *)

val ranges : t -> range_id list
val span_of : t -> range_id -> string * string
val policy_of : t -> range_id -> policy
val zone_of : t -> range_id -> Zoneconfig.t
val replica_nodes : t -> range_id -> (Crdb_net.Topology.node_id * Crdb_raft.Raft.peer_kind) list
val leaseholder : t -> range_id -> Crdb_net.Topology.node_id option
(** Current valid leaseholder, if any (excludes dead nodes and leaders with
    expired leases). *)

val leaseholder_region : t -> range_id -> string option

val nearest_replica :
  t -> range_id -> from:Crdb_net.Topology.node_id -> Crdb_net.Topology.node_id option
(** Replica with the lowest RTT from [from] ([from] itself if it holds
    one); used for follower reads. Dead nodes are skipped. *)

val rebalance_leases : t -> unit
(** Transfer leadership of every range back to its preferred region when a
    live voter exists there (run after failures heal). *)

val transfer_lease : t -> range_id -> target:Crdb_net.Topology.node_id -> unit
(** Ask the current leaseholder to hand the lease (Raft leadership) to
    [target], which must hold a voting replica; no-op when there is no live
    leader, the target holds no replica, or it already leads. The transfer
    is deferred until the target's log is caught up. *)

val restart_node : t -> Crdb_net.Topology.node_id -> unit
(** Revive a killed node with {e process-restart} semantics: disk-backed
    state (Raft term/vote/log, applied MVCC data) survives, while volatile
    state is discarded — every local replica's lock table, parked conflict
    waiters and side-channel closed-timestamp bookkeeping are reset, and
    Raft resumes as a follower that must re-learn the leader and catch up
    via log replication before its closed timestamps advance again. Pair
    with [Transport.kill_node] to model a crash-restart cycle. *)

val bulk_load : t -> ?ts:Ts.t -> (string * string) list -> unit
(** Install committed versions directly in every replica of the covering
    ranges. Administrative fast path for benchmark dataset loading. *)

val closed_lead_duration : t -> range_id -> int
(** The [Lead] policy's lead: [L_raft + L_replicate + max_offset +
    publish_interval] for this range's current placement (§6.2.1). *)

(** {2 Operations} (call within a process)

    Every operation accepts an optional [phases] context
    ({!Crdb_obs.Phase.ctx}, default the discarding {!Crdb_obs.Phase.nil})
    that accumulates the request's time into named phases — routing,
    lease_wait, lock_wait, replication — and counts the WAN round trips it
    incurs (cross-region RPCs, plus replication rounds whose quorum reaches
    outside the leaseholder's region). Successful leaseholder operations and
    follower-read hits also feed the per-range [kv.range.qps] /
    [kv.range.write_bytes] / [kv.range.latency] timeseries in the cluster's
    {!Crdb_obs.Timeseries} store. *)

type fate = [ `Live | `Wounded of string | `Aborted ]
(** How the requesting transaction itself has fared, as known to its own
    gateway: the coordinator learns of a wound from heartbeat RPC responses
    and cancels its in-flight requests by answering [`Wounded]/[`Aborted]
    from the [fate] closure it threads into its operations. Checked at the
    head of every evaluation and on every conflict-wait tick. *)

val live_fate : unit -> fate
(** The default: the requester considers itself alive. *)

type write_ack = [ `Applied | `Prevented | `Dropped ]
(** Resolution of a pipelined write, delivered through the [applied] ivar:
    the intent applied on the leaseholder; commit-status recovery barred it
    from ever applying (the transaction's commit must fail); or its
    proposal was discarded from the log without committing (indeterminate —
    the transaction must restart with an ambiguous outcome). *)

type read_result =
  | Read_value of { value : string option; ts : Ts.t }
  | Read_uncertain of { value_ts : Ts.t }
      (** caller must ratchet its timestamp to [value_ts] and refresh *)
  | Read_redirect  (** follower cannot serve; go to the leaseholder *)
  | Read_wounded of string
      (** the reading transaction was wound-aborted by an older conflicting
          transaction while it waited; restart with the same priority *)
  | Read_err of string  (** unavailable after retries / timeout *)

val read :
  t ->
  ?inline_bump:bool ->
  ?span:Crdb_obs.Trace.span ->
  ?phases:Crdb_obs.Phase.ctx ->
  ?pri:Ts.t ->
  ?fate:(unit -> fate) ->
  gateway:Crdb_net.Topology.node_id ->
  txn:int option ->
  key:string ->
  ts:Ts.t ->
  max_ts:Ts.t ->
  unit ->
  read_result
(** Consistent read at the leaseholder. Blocks while a conflicting lock or
    intent (with timestamp [<= max_ts]) is held; records the read in the
    timestamp cache. With [inline_bump] (CRDB's server-side retry, valid
    only when the transaction has no earlier reads to refresh), uncertainty
    restarts are absorbed at the leaseholder instead of being returned. *)

val read_follower :
  t ->
  ?span:Crdb_obs.Trace.span ->
  ?phases:Crdb_obs.Phase.ctx ->
  at:Crdb_net.Topology.node_id ->
  txn:int option ->
  key:string ->
  ts:Ts.t ->
  max_ts:Ts.t ->
  unit ->
  read_result
(** Read on [at]'s local replica without contacting the leaseholder.
    Requires the replica's closed timestamp to cover [max_ts]; otherwise
    [Read_redirect]. Blocked intents also redirect (§5.1.1). No timestamp
    cache update is needed: the timestamps are already closed. *)

type scan_result =
  | Scan_rows of (string * string) list  (** key, value pairs in key order *)
  | Scan_uncertain of { value_ts : Ts.t }
  | Scan_redirect
  | Scan_wounded of string  (** see {!read_result.Read_wounded} *)
  | Scan_err of string

val scan :
  t ->
  ?span:Crdb_obs.Trace.span ->
  ?phases:Crdb_obs.Phase.ctx ->
  ?pri:Ts.t ->
  ?fate:(unit -> fate) ->
  gateway:Crdb_net.Topology.node_id ->
  txn:int option ->
  start_key:string ->
  end_key:string ->
  ts:Ts.t ->
  max_ts:Ts.t ->
  limit:int option ->
  unit ->
  scan_result
(** Leaseholder scan over [[start_key, end_key)]. The request is split into
    per-range fragments resolved left to right through the routing map at
    use time, so the result is complete even after the span has been split
    into (or merged from) many ranges. *)

val scan_follower :
  t ->
  ?span:Crdb_obs.Trace.span ->
  ?phases:Crdb_obs.Phase.ctx ->
  at:Crdb_net.Topology.node_id ->
  txn:int option ->
  start_key:string ->
  end_key:string ->
  ts:Ts.t ->
  max_ts:Ts.t ->
  limit:int option ->
  unit ->
  scan_result

type write_result =
  | Write_ok of Ts.t
      (** the possibly-pushed provisional commit timestamp: above the
          timestamp cache, above the newest committed version, and above the
          range's closed timestamp target *)
  | Write_wounded of string
      (** the writing transaction was wound-aborted by an older conflicting
          transaction; it must restart (keeping its priority) and must not
          lay further intents *)
  | Write_err of string

val write :
  t ->
  ?applied:write_ack Crdb_sim.Ivar.t ->
  ?span:Crdb_obs.Trace.span ->
  ?phases:Crdb_obs.Phase.ctx ->
  ?pri:Ts.t ->
  ?anchor:string ->
  ?fate:(unit -> fate) ->
  gateway:Crdb_net.Topology.node_id ->
  txn:int ->
  key:string ->
  value:string option ->
  ts:Ts.t ->
  unit ->
  write_result
(** Lay a write intent through consensus. On [Write_ok ts], the transaction
    must commit at or above [ts] (for [Lead] ranges it lands in the future),
    and must hold all its locks until {!resolve}.

    [pri] and [anchor] stamp the writer's wound-wait priority and record
    location onto the lock and intent so pushers can find its record; when
    [key = anchor] the apply also registers the transaction record —
    registration rides the first write instead of costing a consensus round
    of its own. Omitting [anchor] marks a raw (recordless) writer.

    With [applied] (write pipelining), the call returns once the intent is
    proposed; [applied] fills at the gateway once the intent's fate is
    known on the leaseholder. A transaction must await every outstanding
    [applied] — and check it is [`Applied] — before (or concurrently with)
    committing. *)

val lock_key :
  t ->
  ?span:Crdb_obs.Trace.span ->
  ?phases:Crdb_obs.Phase.ctx ->
  ?pri:Ts.t ->
  ?anchor:string ->
  ?fate:(unit -> fate) ->
  gateway:Crdb_net.Topology.node_id ->
  txn:int ->
  key:string ->
  ts:Ts.t ->
  strength:Lock_table.strength ->
  unit ->
  write_result
(** SELECT FOR UPDATE / FOR SHARE: take an unreplicated
    [Lock_table.strength] lock on [key] at the leaseholder without laying an
    intent. Blocks (through the same wound-wait push protocol as writes)
    while a conflicting holder or intent exists; a [Shared] request only
    conflicts with [Exclusive] holders, and an [Exclusive] request over the
    caller's own [Shared] grip upgrades it once other holders are pushed
    away. The lock is leaseholder-local (dropped on lease transfer or node
    restart) — a contention-avoidance hint; serializability remains
    guaranteed by commit-time read refreshes. Released by {!resolve} along
    with the transaction's write intents. *)

val write_and_commit :
  t ->
  ?span:Crdb_obs.Trace.span ->
  ?phases:Crdb_obs.Phase.ctx ->
  ?pri:Ts.t ->
  ?fate:(unit -> fate) ->
  gateway:Crdb_net.Topology.node_id ->
  txn:int ->
  key:string ->
  value:string option ->
  ts:Ts.t ->
  unit ->
  (Ts.t, string) result
(** One-phase commit (CRDB's 1PC fast path): lay the intent and resolve it
    as committed in one consensus round; the intermediate lock is never
    observable. Only valid for transactions whose entire effect is this
    single write; commit-wait (if the returned timestamp is in the future)
    remains the caller's responsibility. *)

val resolve :
  t ->
  ?span:Crdb_obs.Trace.span ->
  ?phases:Crdb_obs.Phase.ctx ->
  gateway:Crdb_net.Topology.node_id ->
  txn:int ->
  commit:Ts.t option ->
  keys:string list ->
  sync_all:bool ->
  unit ->
  unit
(** Commit ([Some ts]) or abort ([None]) the transaction's intents on the
    given keys. The resolution on the range holding the first key — the
    transaction's commit record — is always awaited (that consensus round is
    the commit point); the rest are awaited only when [sync_all]. *)

val refresh :
  t ->
  ?span:Crdb_obs.Trace.span ->
  ?phases:Crdb_obs.Phase.ctx ->
  gateway:Crdb_net.Topology.node_id ->
  txn:int ->
  key:string ->
  from_ts:Ts.t ->
  to_ts:Ts.t ->
  unit ->
  bool
(** Read refresh (§5.1): [true] iff no committed version or foreign intent
    appeared on [key] in [(from_ts, to_ts]]. On success the read is
    re-recorded at [to_ts] in the timestamp cache. *)

val refresh_span :
  t ->
  ?span:Crdb_obs.Trace.span ->
  ?phases:Crdb_obs.Phase.ctx ->
  gateway:Crdb_net.Topology.node_id ->
  txn:int ->
  start_key:string ->
  end_key:string ->
  from_ts:Ts.t ->
  to_ts:Ts.t ->
  unit ->
  bool
(** Span version of {!refresh}, validating a previous scan (including the
    absence of phantom rows with live conflicts in the window). Like
    {!scan}, the span is re-resolved into its current covering ranges, so
    refreshes stay sound across concurrent splits and merges. *)

val negotiate :
  t -> at:Crdb_net.Topology.node_id -> keys:string list -> Ts.t
(** Bounded-staleness negotiation (§5.3.2): the highest timestamp at which
    all [keys] can be served by [at]'s local replicas without blocking —
    the minimum over ranges of the local closed timestamp and of any
    conflicting intent timestamps. *)

val local_closed : t -> at:Crdb_net.Topology.node_id -> range_id -> Ts.t
(** The closed timestamp of the replica of this range at node [at]
    ([Ts.zero] if the node holds no replica). *)

(** {2 Transaction records (wound-wait + parallel commits)}

    A transaction's record lives in the range holding its {e anchor key}
    (its first write) — replicated state of that range, not a cluster-global
    table — and every record operation below is an ordinary routed RPC
    against the anchor leaseholder, proposing a transition through the
    range's Raft log. Transitions are first-decision-wins, and the log's
    apply order is the total order that decides commit-vs-wound races; each
    call returns the {e applied} status, which may reflect a racing
    decision rather than the requested one.

    Registration piggybacks on the first write ({!write} with
    [key = anchor]); the coordinator heartbeats the record every
    [txn_heartbeat_interval]. Waiters blocked on the transaction's locks or
    intents push the record every [push_delay] at its anchor range: an
    older pusher wounds a Pending record, a younger pusher queues, a record
    silent for 3x [txn_heartbeat_interval] is aborted as abandoned, and a
    stale STAGING record triggers commit-status recovery ({!recover_txn}).
    Raw writers ({!write} without [anchor], {!write_and_commit}) have no
    record and are only ever reclaimed by abandonment of the pusher-created
    stub. *)

val heartbeat_txn :
  t ->
  ?span:Crdb_obs.Trace.span ->
  ?phases:Crdb_obs.Phase.ctx ->
  gateway:Crdb_net.Topology.node_id ->
  txn:int ->
  key:string ->
  unit ->
  Txnrec.status option
(** Ratchet the record's heartbeat; the applied status tells the
    coordinator when it has been wounded or aborted while running. [None]
    when the record does not exist (first write not yet applied) or the
    anchor range is unreachable. *)

val stage_txn :
  t ->
  ?span:Crdb_obs.Trace.span ->
  ?phases:Crdb_obs.Phase.ctx ->
  gateway:Crdb_net.Topology.node_id ->
  txn:int ->
  key:string ->
  pri:Ts.t ->
  ts:Ts.t ->
  inflight:string list ->
  unit ->
  Txnrec.status option
(** Parallel commit: move the record to [Staging] with the commit
    timestamp and the keys of still-unacknowledged intent writes,
    concurrently with those writes' replication. The transaction is
    implicitly committed once this returns [Staging] {e and} every declared
    write acked [`Applied]; the coordinator then acks its client and
    finalizes the record asynchronously with {!commit_txn}. Creates the
    record if the registering write has not applied yet. *)

val commit_txn :
  t ->
  ?span:Crdb_obs.Trace.span ->
  ?phases:Crdb_obs.Phase.ctx ->
  gateway:Crdb_net.Topology.node_id ->
  txn:int ->
  key:string ->
  ts:Ts.t ->
  unit ->
  Txnrec.status option
(** Explicit commit (the non-parallel path, and the asynchronous
    finalization after an implicit parallel commit). The transaction is
    committed iff the applied status comes back [Committed]; [Aborted]
    means a wound or recovery won the race and the transaction must
    restart. *)

val abort_txn :
  t ->
  ?span:Crdb_obs.Trace.span ->
  ?phases:Crdb_obs.Phase.ctx ->
  gateway:Crdb_net.Topology.node_id ->
  txn:int ->
  key:string ->
  reason:string ->
  unit ->
  Txnrec.status option
(** Coordinator rollback; creates an aborted stub if no record exists, so
    late writes stay rejected. *)

val txn_status :
  t ->
  ?span:Crdb_obs.Trace.span ->
  ?phases:Crdb_obs.Phase.ctx ->
  gateway:Crdb_net.Topology.node_id ->
  txn:int ->
  key:string ->
  unit ->
  Txnrec.status option
(** Read the applied record at the anchor leaseholder. [None] when the
    transaction never registered (and was never pushed) or the range is
    unreachable. *)

val query_intent :
  t ->
  gateway:Crdb_net.Topology.node_id ->
  ?span:Crdb_obs.Trace.span ->
  ?phases:Crdb_obs.Phase.ctx ->
  txn:int ->
  key:string ->
  ts:Ts.t ->
  unit ->
  [ `Found | `Missing | `Unknown ]
(** QueryIntent with prevention (parallel-commit recovery): did [txn]'s
    declared write on [key] at [ts] replicate? The probe is proposed
    through the key's own Raft log, totally ordering it against the write
    it races: [`Missing] additionally bars the write from ever applying.
    Routing or proposal failures answer [`Unknown] — recovery must treat
    them as inconclusive, never as evidence of a missing write. *)

val recover_txn :
  t ->
  gateway:Crdb_net.Topology.node_id ->
  ?span:Crdb_obs.Trace.span ->
  ?phases:Crdb_obs.Phase.ctx ->
  txn:int ->
  anchor_key:string ->
  ts:Ts.t ->
  inflight:string list ->
  unit ->
  Ts.t option option
(** Commit-status recovery against a STAGING record: verify every declared
    in-flight write with {!query_intent}, then finalize the record —
    [Committed] when all landed (the implicit commit had succeeded),
    [Aborted] when one is proven missing. [Some commit] means the record is
    now finalized and the caller may resolve the transaction's intents with
    [commit]; [None] means recovery was inconclusive and the caller should
    keep waiting. Runs automatically from conflict waits; exposed for
    tests. *)

(** {2 Introspection for tests and benchmarks} *)

val messages_sent : t -> int

(** Counters of conflict waits/timeouts, leaseholder misses and RPC
    timeouts, for debugging workloads. *)
val diagnostics : t -> string
val storage_of : t -> range_id -> Crdb_net.Topology.node_id -> Crdb_storage.Mvcc.t option
val debug_dump : t -> range_id -> string
(** Human-readable per-replica Raft/lease state (debugging aid). *)

val raft_of :
  t -> range_id -> Crdb_net.Topology.node_id ->
  (unit -> int) option
(** Returns a function giving that replica's applied Raft index. *)
