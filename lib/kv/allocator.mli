(** Replica placement.

    Turns a {!Zoneconfig.t} into a concrete assignment of replicas to nodes,
    following CRDB's allocator heuristics (§3.2): satisfy the per-region
    constraints, spread replicas across distinct failure domains (zones, then
    regions — the diversity score), and break remaining ties by load (fewest
    replicas already on the node). Unconstrained voters go to the regions
    closest to the leaseholder so that quorums are cheap, matching the
    paper's [L_raft] = "RTT to the nearest quorum". *)

type placement = (Crdb_net.Topology.node_id * Crdb_raft.Raft.peer_kind) list

val place :
  topology:Crdb_net.Topology.t ->
  latency:Crdb_net.Latency.t ->
  load:(Crdb_net.Topology.node_id -> int) ->
  zone:Zoneconfig.t ->
  placement
(** @raise Failure if the topology cannot satisfy the configuration (for
    example, a voter constraint on a region with no nodes). *)

val placement_score :
  topology:Crdb_net.Topology.t ->
  live:(Crdb_net.Topology.node_id -> bool) ->
  load:(Crdb_net.Topology.node_id -> int) ->
  zone:Zoneconfig.t ->
  placement ->
  int * int * int
(** [(constraint violations, diversity penalty, total load)] — lexicographic,
    lower is better. Violations include dead replicas; the diversity penalty
    is pairwise, with a shared zone costing more than a shared region. *)

type move = {
  victim : Crdb_net.Topology.node_id;
  replacement : Crdb_net.Topology.node_id;
  kind : Crdb_raft.Raft.peer_kind;
}

val rebalance_move :
  topology:Crdb_net.Topology.t ->
  live:(Crdb_net.Topology.node_id -> bool) ->
  load:(Crdb_net.Topology.node_id -> int) ->
  zone:Zoneconfig.t ->
  placement ->
  move option
(** The best single-replica substitution that strictly improves
    {!placement_score}, or [None] when the placement is locally optimal.
    The replacement keeps the victim's peer kind; only live nodes not
    already holding a replica are considered. One replica moves at a time
    (add-then-remove), matching CRDB's rebalancer. *)

val preferred_leaseholder :
  topology:Crdb_net.Topology.t ->
  live:(Crdb_net.Topology.node_id -> bool) ->
  zone:Zoneconfig.t ->
  placement ->
  Crdb_net.Topology.node_id option
(** The live voter to pin the lease to: in the first preferred region that
    has one, otherwise any live voter. *)

val lease_preference_rank :
  topology:Crdb_net.Topology.t ->
  zone:Zoneconfig.t ->
  Crdb_net.Topology.node_id ->
  int
(** Index of the node's region in the zone's lease-preference list
    ([max_int] when it appears in none); lower is better. *)

val preferred_leaseholder_by_load :
  topology:Crdb_net.Topology.t ->
  live:(Crdb_net.Topology.node_id -> bool) ->
  load:(Crdb_net.Topology.node_id -> int) ->
  zone:Zoneconfig.t ->
  placement ->
  Crdb_net.Topology.node_id option
(** Load-aware variant of {!preferred_leaseholder}, the autopilot rebalance
    queue's target chooser: among live voters, minimize
    [(lease_preference_rank, load, node id)] lexicographically — lease
    preferences still strictly dominate, load breaks ties within the same
    preference rank, and the node id keeps the choice deterministic. With a
    constant [load] this degrades to a deterministic
    {!preferred_leaseholder}. *)

val satisfies :
  topology:Crdb_net.Topology.t -> zone:Zoneconfig.t -> placement -> bool
(** Check a placement against the configuration (used by tests and by
    [alter] to decide whether to move replicas). *)
