module Sim = Crdb_sim.Sim
module Ivar = Crdb_sim.Ivar
module Proc = Crdb_sim.Proc
module Rng = Crdb_stdx.Rng
module Topology = Crdb_net.Topology
module Latency = Crdb_net.Latency
module Transport = Crdb_net.Transport
module Ts = Crdb_hlc.Timestamp
module Clock = Crdb_hlc.Clock
module Mvcc = Crdb_storage.Mvcc
module Tscache = Crdb_storage.Tscache
module Raft = Crdb_raft.Raft
module Obs = Crdb_obs.Obs
module Trace = Crdb_obs.Trace
module Metrics = Crdb_obs.Metrics
module Events = Crdb_obs.Events
module Phase = Crdb_obs.Phase
module Timeseries = Crdb_obs.Timeseries
module Smap = Map.Make (String)

type policy = Lag of int | Lead

type config = {
  max_offset : int;
  close_lag : int;
  publish_interval : int;
  raft_election_timeout : int;
  raft_heartbeat_interval : int;
  conflict_wait_timeout : int;
  push_delay : int;
  txn_heartbeat_interval : int;
  jitter : float;
  seed : int;
  (* Autopilot background queues (lib/autopilot). The engine itself lives
     above the KV layer and only runs once [Autopilot.start] is called; the
     knobs live here so one config value describes the whole cluster. *)
  autopilot : bool;
  autopilot_scan_interval : int;
  autopilot_split_qps : float;
  autopilot_split_bytes : int;
  autopilot_merge_qps : float;
  autopilot_merge_bytes : int;
  autopilot_cooldown : int;
  autopilot_min_improvement : float;
  cc_mode : [ `Wound_wait | `Epoch_occ ];
      (* which concurrency-control backend Txn.create_manager wires up: the
         pessimistic lock-table/wound-wait protocol (default) or
         epoch-grouped OCC (writes buffered at the gateway, validated and
         flushed at an epoch boundary). The KV layer itself is mode-agnostic;
         the knob lives here so one config value describes the cluster. *)
  epoch_interval : int;
      (* Epoch_occ only: period of the cluster-wide epoch ticker that
         advances the commit boundary (default 25 ms) *)
  unsafe_no_recovery : bool;
      (* deliberately broken mode: pushes treat every STAGING record as
         recoverable immediately (no liveness grace) and recovery aborts
         without verifying the declared in-flight writes — so a transaction
         whose implicit commit already completed can have its writes
         vanish. The serializability checker must catch the fallout. *)
}

let default =
  {
    max_offset = 250_000;
    close_lag = 3_000_000;
    publish_interval = 100_000;
    raft_election_timeout = 3_000_000;
    raft_heartbeat_interval = 1_000_000;
    conflict_wait_timeout = 10_000_000;
    push_delay = 100_000;
    txn_heartbeat_interval = 1_000_000;
    jitter = 0.05;
    seed = 0xC0C;
    autopilot = false;
    autopilot_scan_interval = 500_000;
    (* The split queue cuts at the traffic-weighted median, so a good split
       halves the range's QPS. Keep the trigger well under half of a typical
       hot range's load: at 50.0 any range between 50 and 100 QPS lands in a
       dead zone after one balanced split — both halves hot, neither over
       the bar — and reshaping stops one split early. *)
    autopilot_split_qps = 20.0;
    autopilot_split_bytes = 512_000;
    autopilot_merge_qps = 1.0;
    autopilot_merge_bytes = 128_000;
    autopilot_cooldown = 3_000_000;
    autopilot_min_improvement = 0.25;
    cc_mode = `Wound_wait;
    epoch_interval = 25_000;
    unsafe_no_recovery = false;
  }

let default_config = default

type range_id = int

type op =
  | Op_put of {
      txn : int;
      ts : Ts.t;
      key : string;
      value : string option;
      pri : Ts.t;
          (* the writer's wound-wait priority, stamped onto the intent *)
      anchor : string;
          (* the writer's anchor key; when [key = anchor] the apply also
             registers the transaction record — registration piggybacks on
             the first write instead of costing its own consensus round *)
    }
  | Op_resolve of { txn : int; keys : string list; commit : Ts.t option }
  | Op_txn of { txn : int; tkey : string; upd : Txnrec.update }
      (* one transaction-record transition, anchored at [tkey] *)
  | Op_prevent of { txn : int; key : string; ts : Ts.t }
      (* QueryIntent-with-prevention (parallel-commit recovery): totally
         ordered against the Op_put it races by going through the same log *)

type write_ack = [ `Applied | `Prevented | `Dropped ]

type cmd = {
  closed : Ts.t;
  proposer : int;
  op : op;
  done_ : unit Ivar.t;
  mutable fate : write_ack;
      (* outcome observed at apply (or discard) time, read by the proposer
         once [done_] fills; [`Applied] unless prevention or a log discard
         intervened *)
}

type snap = { snap_store : Mvcc.t; snap_closed : Ts.t; snap_txns : Txnrec.t }

type replica = {
  r_node : int;
  r_range : range;
  r_store : Mvcc.t;
  mutable r_raft : (cmd, snap) Raft.t option;
  mutable r_applied_closed : Ts.t;
  mutable r_side_closed : Ts.t;
  mutable r_pending_side : (int * Ts.t) list;
  r_lt : Lock_table.t;
  r_txns : Txnrec.t;
      (* this range's transaction records — replicated state, mutated only
         by [Op_txn]/[Op_put] applies, snapshotted and split/merged with
         the store *)
}

and range = {
  rg_id : range_id;
  mutable rg_span : string * string;
  mutable rg_zone : Zoneconfig.t;
  mutable rg_policy : policy;
  rg_replicas : (int, replica) Hashtbl.t;
  mutable rg_closed_target : Ts.t;
  rg_tscache : Tscache.t;
  mutable rg_dropped : bool;
}

type t = {
  sim : Sim.t;
  cfg : config;
  topo : Topology.t;
  latency : Latency.t;
  net : Transport.t;
  live : Liveness.t;
  clocks : Clock.t array;
  rng : Rng.t;
  ranges_tbl : (range_id, range) Hashtbl.t;
  mutable routing : range_id Smap.t; (* start_key -> range id *)
  mutable next_range_id : int;
  load : int array; (* replicas per node *)
  diag : diag;
  obs : Obs.t;
  mutable waiting : int; (* parked conflict waiters, mirrors g_waiters *)
  mutable bg_pending : int; (* background tasks {!run} drains before exiting *)
  samples : (range_id, key_samples) Hashtbl.t;
      (* bounded ring of recently served request keys per range — the
         autopilot split queue's load-based split point *)
  (* Cached per-node counters for per-operation paths. *)
  c_fr_hit : Metrics.counter array;
  c_fr_miss : Metrics.counter array;
  c_ct_publish : Metrics.counter array;
  c_conflict_timeout : Metrics.counter array;
  c_push : Metrics.counter array;
  c_wound : Metrics.counter array;
  c_cleanup : Metrics.counter array;
  c_splits : Metrics.counter;
  c_merges : Metrics.counter;
  c_rebalances : Metrics.counter;
  g_ranges : Metrics.gauge;
  g_waiters : Metrics.gauge;
}

and key_samples = { ring : string array; mutable seen : int }

and diag = {
  mutable d_conflict_timeouts : int;
  mutable d_lh_misses : int;
  mutable d_rpc_timeouts : int;
  mutable d_not_leader : int;
  mutable d_lock_waits : int;
  mutable d_intent_waits : int;
  mutable d_pushes : int;
  mutable d_wounds : int;
}

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

let lease_duration = 4_500_000

let create ?(config = default_config) ~topology ~latency () =
  let sim = Sim.create () in
  let obs = Obs.create ~now:(fun () -> Sim.now sim) () in
  let rng = Rng.create ~seed:config.seed in
  let net =
    Transport.create ~jitter:config.jitter ~rng:(Rng.split rng) ~obs ~sim
      ~topology ~latency ()
  in
  let n = Topology.num_nodes topology in
  let m = Obs.metrics obs in
  let clocks =
    Array.init n (fun _ ->
        (* Independent per-node skew. Real deployments keep actual skew well
           below the configured tolerance; a quarter of max_offset per node
           (half pairwise) models a healthy NTP/chrony setup. *)
        let bound = config.max_offset / 4 in
        let skew = if bound = 0 then 0 else Rng.int rng (2 * bound) - bound in
        Clock.create ~skew_micros:skew ~now_micros:(fun () -> Sim.now sim) ())
  in
  {
    sim;
    cfg = config;
    topo = topology;
    latency;
    net;
    live = Liveness.create net;
    clocks;
    rng;
    ranges_tbl = Hashtbl.create 64;
    routing = Smap.empty;
    next_range_id = 1;
    load = Array.make n 0;
    diag =
      {
        d_conflict_timeouts = 0;
        d_lh_misses = 0;
        d_rpc_timeouts = 0;
        d_not_leader = 0;
        d_lock_waits = 0;
        d_intent_waits = 0;
        d_pushes = 0;
        d_wounds = 0;
      };
    obs;
    waiting = 0;
    bg_pending = 0;
    samples = Hashtbl.create 64;
    c_fr_hit = Array.init n (fun i -> Metrics.counter m ~node:i "kv.follower_read_hits");
    c_fr_miss = Array.init n (fun i -> Metrics.counter m ~node:i "kv.follower_read_misses");
    c_ct_publish = Array.init n (fun i -> Metrics.counter m ~node:i "kv.ct_publishes");
    c_conflict_timeout =
      Array.init n (fun i -> Metrics.counter m ~node:i "kv.conflict_timeouts");
    c_push = Array.init n (fun i -> Metrics.counter m ~node:i "kv.txn_pushes");
    c_wound = Array.init n (fun i -> Metrics.counter m ~node:i "kv.txn_wounds");
    c_cleanup = Array.init n (fun i -> Metrics.counter m ~node:i "kv.intent_cleanups");
    c_splits = Metrics.counter m "kv.splits";
    c_merges = Metrics.counter m "kv.merges";
    c_rebalances = Metrics.counter m "kv.rebalances";
    g_ranges = Metrics.gauge m "kv.ranges";
    g_waiters = Metrics.gauge m "kv.conflict_waiters";
  }

let sim t = t.sim
let net t = t.net
let obs t = t.obs
let topology t = t.topo
let config t = t.cfg
let clock t node = t.clocks.(node)
let liveness t = t.live
let rng t = t.rng
let now_ts t node = Clock.now t.clocks.(node)
let set_clock_skew t node skew = Clock.set_skew t.clocks.(node) skew

let range t rid =
  match Hashtbl.find_opt t.ranges_tbl rid with
  | Some rg when not rg.rg_dropped -> rg
  | Some _ | None -> invalid_arg (Printf.sprintf "Cluster: unknown range %d" rid)

let ranges t =
  Hashtbl.fold (fun id rg acc -> if rg.rg_dropped then acc else id :: acc) t.ranges_tbl []
  |> List.sort Int.compare

let span_of t rid = (range t rid).rg_span
let policy_of t rid = (range t rid).rg_policy
let zone_of t rid = (range t rid).rg_zone

(* Request-key sampling: every request served through [with_leaseholder]
   drops its key into a small per-range ring. The ring is cheap, bounded,
   and biased to recent traffic — the sample a load-based split point
   wants. Weighted by request volume (duplicates retained), so the median
   sampled key is the key that halves recent traffic, not the keyspace. *)
let sample_cap = 128

let sample_key t rid key =
  let ks =
    match Hashtbl.find_opt t.samples rid with
    | Some ks -> ks
    | None ->
        let ks = { ring = Array.make sample_cap ""; seen = 0 } in
        Hashtbl.replace t.samples rid ks;
        ks
  in
  ks.ring.(ks.seen mod sample_cap) <- key;
  ks.seen <- ks.seen + 1

let sampled_keys t rid =
  match Hashtbl.find_opt t.samples rid with
  | None -> []
  | Some ks -> List.init (min ks.seen sample_cap) (fun i -> ks.ring.(i))

let clear_samples t rid = Hashtbl.remove t.samples rid

let range_of_key t key =
  match Smap.find_last_opt (fun start -> String.compare start key <= 0) t.routing with
  | Some (_, rid) ->
      let rg = range t rid in
      let _, end_key = rg.rg_span in
      if String.compare key end_key < 0 then rid else raise Not_found
  | None -> raise Not_found

let replica_at rg node = Hashtbl.find_opt rg.rg_replicas node

let replica_nodes t rid =
  let rg = range t rid in
  Hashtbl.fold
    (fun node r acc ->
      match r.r_raft with
      | Some raft -> (
          match List.assoc_opt node (Raft.peers raft) with
          | Some kind -> (node, kind) :: acc
          | None -> acc)
      | None -> acc)
    rg.rg_replicas []
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Closed timestamps                                                   *)

(* L_raft + L_replicate for the current placement (§6.2.1). *)
let lead_components t rg =
  let home =
    match rg.rg_zone.Zoneconfig.lease_preferences with
    | h :: _ -> h
    | [] -> List.hd (Topology.regions t.topo)
  in
  let placements =
    Hashtbl.fold
      (fun node r acc ->
        match r.r_raft with
        | Some raft -> (
            match List.assoc_opt node (Raft.peers raft) with
            | Some kind -> (node, kind) :: acc
            | None -> acc)
        | None -> acc)
      rg.rg_replicas []
  in
  let rtt_to node = Latency.rtt t.latency home (Topology.region_of t.topo node) in
  let voters = List.filter (fun (_, k) -> k = Raft.Voter) placements in
  let quorum = (List.length voters / 2) + 1 in
  let voter_rtts = List.sort Int.compare (List.map (fun (n, _) -> rtt_to n) voters) in
  (* The leader acks itself; it needs [quorum - 1] other acks, and the
     cheapest ones come from the nearest voters (skip the leader's own 0). *)
  let l_raft =
    match voter_rtts with
    | [] -> Latency.intra_region_rtt t.latency
    | _ :: rest ->
        let rec nth i = function
          | [] -> Latency.intra_region_rtt t.latency
          | x :: xs -> if i = 0 then x else nth (i - 1) xs
        in
        if quorum - 1 = 0 then 0 else nth (quorum - 2) rest
  in
  let l_replicate =
    List.fold_left (fun acc (n, _) -> max acc (rtt_to n / 2)) 0 placements
  in
  (l_raft, l_replicate)

(* §6.2.1: the leaseholder must close L_raft + L_replicate + max_offset into
   the future; on top of the paper's formula we budget for the side-channel
   publication period and for reader/leaseholder clock skew (half the
   tolerated maximum), without which skewed readers' uncertainty windows
   would not be fully closed and reads would redirect. *)
let lead_duration_of t ~l_raft ~l_replicate =
  l_raft + l_replicate + t.cfg.max_offset + (t.cfg.max_offset / 2)
  + t.cfg.publish_interval + 25_000

let closed_lead_duration t rid =
  let rg = range t rid in
  let l_raft, l_replicate = lead_components t rg in
  lead_duration_of t ~l_raft ~l_replicate

(* Compute and ratchet the range's closed-timestamp target, as seen by the
   leaseholder clock at [node]. *)
let next_closed_target t rg node =
  let phys = Clock.physical_now t.clocks.(node) in
  let target =
    match rg.rg_policy with
    | Lag d -> Ts.of_wall (max 0 (phys - d))
    | Lead ->
        let l_raft, l_replicate = lead_components t rg in
        Ts.of_wall (phys + lead_duration_of t ~l_raft ~l_replicate)
  in
  rg.rg_closed_target <- Ts.max rg.rg_closed_target target;
  rg.rg_closed_target

let replica_closed r = Ts.max r.r_applied_closed r.r_side_closed

let promote_side r =
  match r.r_raft with
  | None -> ()
  | Some raft ->
      let applied = Raft.applied_index raft in
      let ready, pending =
        List.partition (fun (lai, _) -> lai <= applied) r.r_pending_side
      in
      List.iter
        (fun (_, ts) -> r.r_side_closed <- Ts.max r.r_side_closed ts)
        ready;
      r.r_pending_side <- pending

(* ------------------------------------------------------------------ *)
(* Conflict resolution: lock table waits plus the push/wound protocol  *)

(* Bound on waiting for a proposed command to apply locally. A proposal can
   be lost forever when its leader is deposed or crash-restarts before the
   entry commits (a restart wipes the volatile log tail's completion ivars);
   the waiter must not hang — it errors out and the transaction retries,
   with the outcome reported as ambiguous if retries are exhausted. *)
let propose_timeout = 8_000_000

let in_span rg key =
  let s, e = rg.rg_span in
  String.compare key s >= 0 && String.compare key e < 0

(* How the waiting transaction itself has fared, as known to its own
   gateway (the coordinator learns of a wound from heartbeat responses and
   cancels its in-flight requests). Checked at the head of every evaluation
   and on every wait tick: a wounded writer must not lay new intents after
   a pusher started cleaning up its old ones. *)
type fate = [ `Live | `Wounded of string | `Aborted ]

let live_fate : unit -> fate = fun () -> `Live

(* Fire-and-forget resolution of a finished (wounded / aborted / committed /
   abandoned) blocker's intent on one key. The apply of the Op_resolve both
   removes the intent and wakes the key's waiters, so the pusher simply goes
   back to waiting for that wakeup. Proposing is idempotent: resolving an
   already-resolved intent is a no-op, and a duplicate only occupies one log
   slot. Not proposable when this replica lost leadership — the next wait
   tick notices and re-routes instead. *)
let propose_cleanup t r ~key ~blocker ~commit =
  match r.r_raft with
  | Some raft when Raft.is_leader raft ->
      let target = next_closed_target t r.r_range r.r_node in
      let cmd =
        {
          closed = target;
          proposer = r.r_node;
          op = Op_resolve { txn = blocker; keys = [ key ]; commit };
          done_ = Ivar.create ();
          fate = `Applied;
        }
      in
      ignore (Raft.propose raft cmd : int option)
  | Some _ | None -> ()

(* ------------------------------------------------------------------ *)
(* Command application (the replicated state machine)                  *)

let apply_cmd t r cmd =
  r.r_applied_closed <- Ts.max r.r_applied_closed cmd.closed;
  (* A log entry can predate a split or merge of its range, in which case
     the key no longer belongs to the log owner's span. Route the effect to
     this node's replica of the current owner: the owner's store was seeded
     with the committed prefix at the split, so replay there is idempotent.
     With no owner replica on this node the effect is dropped — the owning
     group carries the authoritative state. *)
  let owner key =
    if (not r.r_range.rg_dropped) && in_span r.r_range key then Some r
    else
      match Smap.find_last_opt (fun s -> String.compare s key <= 0) t.routing with
      | None -> None
      | Some (_, rid) -> (
          match Hashtbl.find_opt t.ranges_tbl rid with
          | Some rg when (not rg.rg_dropped) && in_span rg key ->
              replica_at rg r.r_node
          | Some _ | None -> None)
  in
  (match cmd.op with
  | Op_put { txn; ts; key; value; pri; anchor } -> (
      match owner key with
      | None -> ()
      | Some owner -> (
          (* The transaction record rides the first (anchor) write: every
             replica of the anchor range learns of the transaction when the
             write applies, with no extra consensus round. *)
          if String.equal key anchor then
            Txnrec.apply owner.r_txns ~txn ~key
              (Txnrec.U_register { pri; hb = Sim.now t.sim });
          match
            Mvcc.put_intent owner.r_store ~pri ~anchor ~key ~txn_id:txn ~ts
              ~value ()
          with
          | Mvcc.Written -> ()
          | Mvcc.Write_prevented ->
              (* Commit-status recovery barred this write while it was in
                 the log; the ack must tell the gateway its commit lost. *)
              cmd.fate <- `Prevented
          | Mvcc.Write_blocked _ ->
              (* The leaseholder's lock table serializes writers, so a foreign
                 intent here means replay after a lease transfer; drop it. *)
              ()))
  | Op_resolve { txn; keys; commit } ->
      List.iter
        (fun key ->
          match owner key with
          | None -> ()
          | Some owner ->
              Mvcc.resolve_intent owner.r_store ~key ~txn_id:txn ~commit;
              Lock_table.release owner.r_lt ~key ~txn)
        keys
  | Op_txn { txn; tkey; upd } -> (
      match owner tkey with
      | None -> ()
      | Some owner -> Txnrec.apply owner.r_txns ~txn ~key:tkey upd)
  | Op_prevent { txn; key; ts } -> (
      match owner key with
      | None -> ()
      | Some owner ->
          ignore
            (Mvcc.prevent owner.r_store ~key ~txn_id:txn ~ts
              : [ `Found | `Prevented ])));
  promote_side r;
  if cmd.proposer = r.r_node then ignore (Ivar.try_fill cmd.done_ ())

(* ------------------------------------------------------------------ *)
(* Replica construction and Raft wiring                                *)

let lease_valid t r =
  match r.r_raft with
  | None -> false
  | Some raft ->
      Raft.is_leader raft
      && Transport.is_alive t.net r.r_node
      && (Raft.quiesced raft
         || Sim.now t.sim - Raft.last_quorum_contact raft < lease_duration)

let leaseholder t rid =
  let rg = range t rid in
  Hashtbl.fold
    (fun node r acc ->
      match acc with Some _ -> acc | None -> if lease_valid t r then Some node else acc)
    rg.rg_replicas None

let leaseholder_region t rid =
  Option.map (Topology.region_of t.topo) (leaseholder t rid)

let preferred_leaseholder_node t rg =
  let placement =
    Hashtbl.fold
      (fun node r acc ->
        match r.r_raft with
        | Some raft -> (
            match List.assoc_opt node (Raft.peers raft) with
            | Some kind -> (node, kind) :: acc
            | None -> acc)
        | None -> acc)
      rg.rg_replicas []
  in
  Allocator.preferred_leaseholder ~topology:t.topo
    ~live:(Transport.is_alive t.net) ~zone:rg.rg_zone placement

let note_lease_transfer t ~node ~range ~target =
  Metrics.inc
    (Metrics.counter (Obs.metrics t.obs) ~node ~range "kv.lease_transfers");
  Obs.log_event t.obs ~node ~range
    ~attrs:[ ("target", string_of_int target) ]
    Events.Lease_transfer

let rec make_replica t rg node =
  let r =
    {
      r_node = node;
      r_range = rg;
      r_store = Mvcc.create ();
      r_raft = None;
      r_applied_closed = Ts.zero;
      r_side_closed = Ts.zero;
      r_pending_side = [];
      r_lt = Lock_table.create ();
      r_txns = Txnrec.create ();
    }
  in
  Hashtbl.replace rg.rg_replicas node r;
  t.load.(node) <- t.load.(node) + 1;
  r

and raft_callbacks t rg r =
  {
    Raft.send =
      (fun dst msg ->
        Transport.send t.net ~src:r.r_node ~dst (fun () ->
            match replica_at rg dst with
            | Some peer -> (
                match peer.r_raft with
                | Some raft -> Raft.handle raft ~from:r.r_node msg
                | None -> ())
            | None -> ()));
    on_apply =
      (fun ~index:_ cmd ->
        (* HLC receive rule: a replica observes every replicated write
           timestamp, so no future leaseholder's clock is ever behind an
           applied write — the observed-timestamp uncertainty clamp in
           [eval_read] is sound only under this invariant. Future-time
           (Lead) writes are synthetic timestamps and must not drag clocks
           forward (CRDB's synthetic-timestamp rule); the read clamp
           exempts Lead ranges for the same reason. *)
        (match rg.rg_policy with
        | Lag _ -> (
            match cmd.op with
            | Op_put { ts; _ } -> Clock.update t.clocks.(r.r_node) ts
            | Op_resolve { commit = Some c; _ } ->
                Clock.update t.clocks.(r.r_node) c
            | Op_txn { upd = Txnrec.U_commit { ts } | Txnrec.U_stage { ts; _ }; _ }
              ->
                Clock.update t.clocks.(r.r_node) ts
            | Op_resolve { commit = None; _ } | Op_txn _ | Op_prevent _ -> ())
        | Lead -> ());
        apply_cmd t r cmd);
    on_role =
      (fun role ->
        match role with
        | Raft.Leader ->
            Metrics.inc
              (Metrics.counter (Obs.metrics t.obs) ~node:r.r_node
                 ~range:rg.rg_id "kv.lease_acquired");
            Obs.log_event t.obs ~node:r.r_node ~range:rg.rg_id
              ~attrs:[ ("region", Topology.region_of t.topo r.r_node) ]
              Events.Lease_acquired;
            (* New leaseholder: no write may land below the lease start.
               The hybrid clock reading is ahead of every applied write
               (HLC receive rule at apply) and every read served here is
               recorded exactly in the shared timestamp cache, so this is
               the lease-start lower bound CRDB uses — not physical time
               plus max_offset, which would mint a timestamp above every
               clock in the cluster and defeat hybrid-clock commit-wait. *)
            Tscache.bump_low_water rg.rg_tscache
              (Clock.now t.clocks.(r.r_node));
            (* Honor lease preferences. *)
            let home_ok =
              match rg.rg_zone.Zoneconfig.lease_preferences with
              | [] -> true
              | prefs -> List.mem (Topology.region_of t.topo r.r_node) prefs
            in
            let target_in_prefs target =
              List.mem
                (Topology.region_of t.topo target)
                rg.rg_zone.Zoneconfig.lease_preferences
            in
            if not home_ok then begin
              match preferred_leaseholder_node t rg with
              | Some target when target <> r.r_node && target_in_prefs target -> (
                  match r.r_raft with
                  | Some raft ->
                      (* Defer: transferring synchronously inside the role
                         callback would re-enter Raft. *)
                      Sim.schedule t.sim ~after:1_000 (fun () ->
                          if Raft.is_leader raft then begin
                            note_lease_transfer t ~node:r.r_node
                              ~range:rg.rg_id ~target;
                            Raft.transfer_leadership raft target
                          end)
                  | None -> ())
              | Some _ | None -> ()
            end
        | Raft.Follower | Raft.Candidate -> ());
    on_config =
      (fun change ->
        if not (List.mem_assoc r.r_node change) then begin
          (* May already have been reaped by [rebalance_step] (a dead
             victim never applies its own removal); only account once. *)
          if Hashtbl.mem rg.rg_replicas r.r_node then begin
            Hashtbl.remove rg.rg_replicas r.r_node;
            t.load.(r.r_node) <- max 0 (t.load.(r.r_node) - 1)
          end
        end
        else begin
          match r.r_raft with
          | Some raft when Raft.is_leader raft ->
              (* Materialize replicas for newly added peers. *)
              List.iter
                (fun (node, _) ->
                  match replica_at rg node with
                  | Some _ -> ()
                  | None -> add_replica t rg node ~preferred:(Some r.r_node))
                change
          | Some _ | None -> ()
        end);
    take_snapshot =
      (fun () ->
        {
          snap_store = Mvcc.copy r.r_store;
          snap_closed = r.r_applied_closed;
          snap_txns = Txnrec.copy r.r_txns;
        });
    install_snapshot =
      (fun s ->
        Lock_table.clear_locks r.r_lt;
        r.r_applied_closed <- Ts.max r.r_applied_closed s.snap_closed;
        Mvcc.replace_with r.r_store s.snap_store;
        Txnrec.replace_with r.r_txns s.snap_txns);
    is_node_live = (fun node -> Liveness.believed_live t.live node);
    node_epoch = (fun node -> Liveness.epoch t.live node);
    on_discard =
      (fun cmd ->
        (* The proposer's copy of an uncommitted entry was dropped (log
           truncation by a new leader, or a snapshot covering the tail).
           Fail the pipelined waiter fast — as indeterminate, since in rare
           interleavings another surviving copy can still commit. *)
        if cmd.proposer = r.r_node && not (Ivar.is_full cmd.done_) then begin
          cmd.fate <- `Dropped;
          ignore (Ivar.try_fill cmd.done_ () : bool)
        end);
  }

and add_replica t rg node ~preferred =
  let r = make_replica t rg node in
  let peers =
    (* Peer set comes from the leader's current config via snapshot/appends;
       start with just enough to participate. *)
    match
      Hashtbl.fold
        (fun _ peer acc ->
          match acc with
          | Some _ -> acc
          | None -> (
              match peer.r_raft with
              | Some raft when Raft.is_leader raft -> Some (Raft.peers raft)
              | Some _ | None -> acc))
        rg.rg_replicas None
    with
    | Some ps -> ps
    | None -> [ (node, Raft.Learner) ]
  in
  let peers =
    if List.mem_assoc node peers then peers else (node, Raft.Learner) :: peers
  in
  let raft =
    Raft.create ~sim:t.sim ~rng:(Rng.split t.rng) ~id:node ~peers
      ~callbacks:(raft_callbacks t rg r) ~obs:t.obs ~range:rg.rg_id
      ~election_timeout:t.cfg.raft_election_timeout
      ~heartbeat_interval:t.cfg.raft_heartbeat_interval ()
  in
  r.r_raft <- Some raft;
  match preferred with
  | Some p -> Raft.start ~preferred:p raft
  | None -> Raft.start raft

(* ------------------------------------------------------------------ *)
(* Range administration                                                *)

let note_range_count t =
  Metrics.set t.g_ranges
    (Hashtbl.fold
       (fun _ rg n -> if rg.rg_dropped then n else n + 1)
       t.ranges_tbl 0)

let add_range t ~span ~zone ~policy =
  let start_key, end_key = span in
  if String.compare start_key end_key >= 0 then
    invalid_arg "Cluster.add_range: empty span";
  Smap.iter
    (fun other_start rid ->
      let rg = Hashtbl.find t.ranges_tbl rid in
      if not rg.rg_dropped then begin
        let _, other_end = rg.rg_span in
        if
          String.compare other_start end_key < 0
          && String.compare start_key other_end < 0
        then invalid_arg "Cluster.add_range: overlapping span"
      end)
    t.routing;
  let rid = t.next_range_id in
  t.next_range_id <- rid + 1;
  let rg =
    {
      rg_id = rid;
      rg_span = span;
      rg_zone = zone;
      rg_policy = policy;
      rg_replicas = Hashtbl.create 8;
      rg_closed_target = Ts.zero;
      rg_tscache = Tscache.create ~low_water:Ts.zero;
      rg_dropped = false;
    }
  in
  Hashtbl.replace t.ranges_tbl rid rg;
  t.routing <- Smap.add start_key rid t.routing;
  let placement =
    Allocator.place ~topology:t.topo ~latency:t.latency
      ~load:(fun n -> t.load.(n))
      ~zone
  in
  let preferred =
    Allocator.preferred_leaseholder ~topology:t.topo
      ~live:(Transport.is_alive t.net) ~zone placement
  in
  List.iter (fun (node, _) -> ignore (make_replica t rg node : replica)) placement;
  List.iter
    (fun (node, _) ->
      let r = Hashtbl.find rg.rg_replicas node in
      let raft =
        (* The boundary places the group's (possibly out-of-band seeded)
           initial state behind a snapshot index, so replicas added later
           are seeded with a store snapshot rather than replaying a log
           that does not contain it (bulk loads, split forks). *)
        Raft.create ~sim:t.sim ~rng:(Rng.split t.rng) ~id:node ~peers:placement
          ~callbacks:(raft_callbacks t rg r) ~obs:t.obs ~range:rg.rg_id
          ~election_timeout:t.cfg.raft_election_timeout
          ~heartbeat_interval:t.cfg.raft_heartbeat_interval ~boundary:(1, 0) ()
      in
      r.r_raft <- Some raft)
    placement;
  List.iter
    (fun (node, _) ->
      let r = Hashtbl.find rg.rg_replicas node in
      match r.r_raft with
      | Some raft -> (
          match preferred with
          | Some p -> Raft.start ~preferred:p raft
          | None -> Raft.start raft)
      | None -> ())
    placement;
  note_range_count t;
  rid

let range_opt t rid =
  match Hashtbl.find_opt t.ranges_tbl rid with
  | Some rg when not rg.rg_dropped -> Some rg
  | Some _ | None -> None

let leader_replica t rid =
  let rg = range t rid in
  Hashtbl.fold
    (fun _ r acc ->
      match acc with
      | Some _ -> acc
      | None -> (
          match r.r_raft with
          | Some raft when Raft.is_leader raft && Transport.is_alive t.net r.r_node ->
              Some r
          | Some _ | None -> acc))
    rg.rg_replicas None

let alter_range t rid ~zone ~policy =
  let rg = range t rid in
  rg.rg_zone <- zone;
  rg.rg_policy <- policy;
  let current =
    Hashtbl.fold
      (fun node r acc ->
        match r.r_raft with
        | Some raft -> (
            match List.assoc_opt node (Raft.peers raft) with
            | Some kind -> (node, kind) :: acc
            | None -> acc)
        | None -> acc)
      rg.rg_replicas []
  in
  let needs_move = not (Allocator.satisfies ~topology:t.topo ~zone current) in
  if needs_move then begin
    (* Bias the allocator towards nodes that already host a replica so the
       reconfiguration moves as little data as possible. *)
    let load n =
      if Hashtbl.mem rg.rg_replicas n then t.load.(n) - 1_000_000 else t.load.(n)
    in
    let placement =
      Allocator.place ~topology:t.topo ~latency:t.latency ~load ~zone
    in
    let rec try_propose attempts =
      if range_opt t rid = None then () (* dropped while scheduled *)
      else
      match leader_replica t rid with
      | Some r -> (
          match r.r_raft with
          | Some raft ->
              (* The leader must stay a peer for the handoff; if the new
                 placement drops it, keep it as a learner and let a later
                 rebalance remove it. *)
              let placement =
                if List.mem_assoc r.r_node placement then placement
                else (r.r_node, Raft.Learner) :: placement
              in
              ignore (Raft.propose_config raft placement : int option)
          | None -> ())
      | None ->
          if attempts > 0 then
            Sim.schedule t.sim ~after:500_000 (fun () -> try_propose (attempts - 1))
    in
    try_propose 20
  end;
  (* Move the lease into the (possibly new) preferred region. *)
  let rec try_lease attempts =
    if range_opt t rid = None then () (* dropped while scheduled *)
    else
    match (leader_replica t rid, preferred_leaseholder_node t rg) with
    | Some r, Some target when r.r_node <> target -> (
        match (r.r_raft, replica_at rg target) with
        | Some raft, Some _ ->
            note_lease_transfer t ~node:r.r_node ~range:rid ~target;
            Raft.transfer_leadership raft target
        | (Some _ | None), (Some _ | None) ->
            if attempts > 0 then
              Sim.schedule t.sim ~after:500_000 (fun () -> try_lease (attempts - 1)))
    | (Some _ | None), (Some _ | None) -> ()
  in
  Sim.schedule t.sim ~after:1_000_000 (fun () -> try_lease 20)

let drop_range t rid =
  let rg = range t rid in
  rg.rg_dropped <- true;
  Hashtbl.iter
    (fun node r ->
      (match r.r_raft with Some raft -> Raft.stop raft | None -> ());
      t.load.(node) <- max 0 (t.load.(node) - 1))
    rg.rg_replicas;
  let start_key, _ = rg.rg_span in
  t.routing <- Smap.remove start_key t.routing;
  Hashtbl.remove t.ranges_tbl rid;
  clear_samples t rid;
  note_range_count t

(* ------------------------------------------------------------------ *)
(* Range lifecycle: splits, merges, rebalancing                        *)

(* Split [rid] at key [at], forking its state into a new right-hand range
   covering [at, end). Runs synchronously (no simulated time passes), so
   the handoff is atomic with respect to every other process:

   - MVCC state: every replica's store drops its records at or above [at];
     every right-hand replica is seeded from the leaseholder's fork, which
     reflects every committed write (the leader applies on commit). A
     lagging follower re-learns any delta by replaying the left log, whose
     entries are routed to the current owner at apply time.
   - Timestamp cache: the right range's low water is the left cache's
     maximum read over [at, end), so no write the right leaseholder admits
     can invalidate a read the left one served.
   - Closed timestamps: the right range inherits the left's closed target,
     and each right replica its co-located left replica's closed timestamp;
     writes the right leaseholder admits are pushed above the inherited
     target, so follower reads stay safe across the split.
   - Locks and parked intent waiters at or above [at] move to the right
     replicas; waiters re-resolve their key when woken and retry there.
   - The right Raft group reuses the left peer set, starts behind a
     snapshot boundary covering the seeded state, and campaigns first on
     the left leaseholder's node (lease handoff).

   Returns the new right-hand range id, or [None] when the left range has
   no leaseholder to fork from. *)
let split_range t rid ~at =
  let rg = range t rid in
  let s, e = rg.rg_span in
  if not (String.compare at s > 0 && String.compare at e < 0) then
    invalid_arg "Cluster.split_range: split key outside span";
  match leader_replica t rid with
  | None -> None
  | Some lr ->
      let peers =
        match lr.r_raft with Some raft -> Raft.peers raft | None -> []
      in
      let seed = ref (Mvcc.create ()) in
      Hashtbl.iter
        (fun node r ->
          let part = Mvcc.split_off r.r_store ~key:at in
          if node = lr.r_node then seed := part)
        rg.rg_replicas;
      let seed = !seed in
      let new_rid = t.next_range_id in
      t.next_range_id <- new_rid + 1;
      let right =
        {
          rg_id = new_rid;
          rg_span = (at, e);
          rg_zone = rg.rg_zone;
          rg_policy = rg.rg_policy;
          rg_replicas = Hashtbl.create 8;
          rg_closed_target = rg.rg_closed_target;
          rg_tscache =
            Tscache.create
              ~low_water:
                (Tscache.max_read_span rg.rg_tscache ~for_txn:None
                   ~start_key:at ~end_key:e);
          rg_dropped = false;
        }
      in
      Hashtbl.replace t.ranges_tbl new_rid right;
      rg.rg_span <- (s, at);
      t.routing <- Smap.add at new_rid t.routing;
      Hashtbl.iter
        (fun node lrep ->
          if List.mem_assoc node peers then begin
            let rrep = make_replica t right node in
            Mvcc.replace_with rrep.r_store seed;
            rrep.r_applied_closed <- replica_closed lrep;
            Lock_table.split_move lrep.r_lt ~into:rrep.r_lt ~at;
            Txnrec.split_move lrep.r_txns ~into:rrep.r_txns ~at
          end)
        rg.rg_replicas;
      Hashtbl.iter
        (fun node rrep ->
          let raft =
            Raft.create ~sim:t.sim ~rng:(Rng.split t.rng) ~id:node ~peers
              ~callbacks:(raft_callbacks t right rrep) ~obs:t.obs
              ~range:new_rid ~election_timeout:t.cfg.raft_election_timeout
              ~heartbeat_interval:t.cfg.raft_heartbeat_interval
              ~boundary:(1, 0) ()
          in
          rrep.r_raft <- Some raft)
        right.rg_replicas;
      Hashtbl.iter
        (fun _ rrep ->
          match rrep.r_raft with
          | Some raft -> Raft.start ~preferred:lr.r_node raft
          | None -> ())
        right.rg_replicas;
      Metrics.inc t.c_splits;
      (* Pre-split samples straddle both halves; restart sampling so the
         next load-based split point reflects post-split traffic only. *)
      clear_samples t rid;
      Obs.log_event t.obs ~node:lr.r_node ~range:rid
        ~attrs:[ ("at", at); ("right", string_of_int new_rid) ]
        Events.Split;
      note_range_count t;
      Some new_rid

(* Merge [rid] with its right-hand neighbor (the range starting exactly at
   its end key), subsuming the neighbor. Requires structurally equal zone
   configs and policies and a live leaseholder on both sides. Also runs
   synchronously:

   - MVCC state: the right leaseholder's store — complete for every
     committed right-span write — is absorbed into every left replica.
   - Timestamp cache: the left cache's low water ratchets over the right
     cache's maximum read, so writes admitted after the merge cannot
     invalidate reads the right leaseholder served.
   - Closed timestamps: the merged target is the max of both sides; new
     writes are pushed above it, so an old left closed timestamp never
     exposes a torn view of the absorbed span.
   - The right leaseholder's locks move to the left leaseholder replica;
     every waiter parked on the dying range is woken and re-resolves.
   - In-flight right-range proposals die with the group: never committed,
     never acked, and their transactions retry against the merged range.

   Returns [false] (leaving the ranges untouched) when the neighbor is
   missing or incompatible, or either side lacks a leaseholder. *)
let merge_range t rid =
  match range_opt t rid with
  | None -> false
  | Some rg -> (
      let s, e = rg.rg_span in
      match Smap.find_opt e t.routing with
      | None -> false
      | Some right_rid -> (
          match range_opt t right_rid with
          | None -> false
          | Some right -> (
              if
                not
                  (rg.rg_zone = right.rg_zone && rg.rg_policy = right.rg_policy)
              then false
              else
                match (leader_replica t rid, leader_replica t right_rid) with
                | Some ll, Some rl ->
                    let _, re = right.rg_span in
                    Hashtbl.iter
                      (fun _ lrep ->
                        Mvcc.absorb lrep.r_store rl.r_store;
                        Txnrec.absorb lrep.r_txns ~from:rl.r_txns)
                      rg.rg_replicas;
                    Lock_table.absorb ll.r_lt ~from:rl.r_lt;
                    Hashtbl.iter
                      (fun _ rrep -> Lock_table.wake_all rrep.r_lt)
                      right.rg_replicas;
                    Tscache.bump_low_water rg.rg_tscache
                      (Tscache.max_read_span right.rg_tscache ~for_txn:None
                         ~start_key:e ~end_key:re);
                    rg.rg_closed_target <-
                      Ts.max rg.rg_closed_target right.rg_closed_target;
                    right.rg_dropped <- true;
                    Hashtbl.iter
                      (fun node rrep ->
                        (match rrep.r_raft with
                        | Some raft -> Raft.stop raft
                        | None -> ());
                        t.load.(node) <- max 0 (t.load.(node) - 1))
                      right.rg_replicas;
                    t.routing <- Smap.remove e t.routing;
                    Hashtbl.remove t.ranges_tbl right_rid;
                    rg.rg_span <- (s, re);
                    clear_samples t right_rid;
                    Metrics.inc t.c_merges;
                    Obs.log_event t.obs ~node:ll.r_node ~range:rid
                      ~attrs:[ ("subsumed", string_of_int right_rid) ]
                      Events.Merge;
                    note_range_count t;
                    true
                | (Some _ | None), (Some _ | None) -> false)))

(* A reasonable split point: the median live key of the leaseholder's
   store, or [None] when the range holds too few keys to split. *)
let split_point t rid =
  match range_opt t rid with
  | None -> None
  | Some rg -> (
      match leader_replica t rid with
      | None -> None
      | Some lr ->
          let keys =
            Mvcc.fold_latest lr.r_store ~init:[] ~f:(fun acc k _ -> k :: acc)
          in
          let keys = List.rev keys in
          let n = List.length keys in
          if n < 2 then None
          else
            let at = List.nth keys (n / 2) in
            let s, _ = rg.rg_span in
            if String.compare at s > 0 then Some at else None)

(* Live size of a range: key + latest live value bytes of the leaseholder
   store. [None] when the range has no live leader. *)
let live_bytes t rid =
  match leader_replica t rid with
  | None -> None
  | Some lr -> Some (Mvcc.live_bytes lr.r_store)

(* Load-based split point: the weighted median of the recently sampled
   request keys (duplicates retained, so the median is the key that splits
   recent *traffic* in half, not the keyspace). Falls back to the
   median-live-key [split_point] when the sample is too thin, and always
   returns a key strictly inside the span so the split cannot degenerate. *)
let load_split_point t rid =
  match range_opt t rid with
  | None -> None
  | Some rg -> (
      let s, e = rg.rg_span in
      let in_span k = String.compare k s >= 0 && String.compare k e < 0 in
      let keys =
        sampled_keys t rid |> List.filter in_span |> List.sort String.compare
      in
      let n = List.length keys in
      if n < 2 then split_point t rid
      else
        let at = List.nth keys (n / 2) in
        if String.compare at s > 0 then Some at
        else
          (* The median equals the span start (one key dominates the
             sample): split just after it if any other key was seen. *)
          match List.find_opt (fun k -> String.compare k s > 0) keys with
          | Some at -> Some at
          | None -> split_point t rid)

let ranges_in_span t ~start_key ~end_key =
  Smap.fold
    (fun _ rid acc ->
      match Hashtbl.find_opt t.ranges_tbl rid with
      | Some rg when not rg.rg_dropped ->
          let s, e = rg.rg_span in
          if String.compare s end_key < 0 && String.compare start_key e < 0
          then rid :: acc
          else acc
      | Some _ | None -> acc)
    t.routing []
  |> List.rev

(* One allocator-driven rebalance step: if the current placement can be
   improved, add the replacement replica via a single-step Raft config
   change and remove the victim once the replacement has caught up. The
   leaseholder is never removed out from under itself — when it is the
   victim, the lease moves to another live voter first and a later pass
   moves the replica. Returns [true] iff a step was initiated. *)
let rebalance_step t rid =
  match range_opt t rid with
  | None -> false
  | Some rg -> (
      match leader_replica t rid with
      | None -> false
      | Some lr -> (
          match lr.r_raft with
          | None -> false
          | Some raft -> (
              let placement = Raft.peers raft in
              (* Score candidates by the load a node carries *besides* this
                 range: a member's own replica must not make every empty
                 node look like an improvement, or the allocator ping-pongs
                 replicas between idle nodes forever. *)
              let other_load n =
                if List.mem_assoc n placement then max 0 (t.load.(n) - 1)
                else t.load.(n)
              in
              match
                Allocator.rebalance_move ~topology:t.topo
                  ~live:(Transport.is_alive t.net)
                  ~load:other_load ~zone:rg.rg_zone placement
              with
              | None -> false
              | Some { Allocator.victim; replacement; kind } ->
                  if victim = lr.r_node then begin
                    match
                      List.find_opt
                        (fun (n, k) ->
                          k = Raft.Voter && n <> lr.r_node
                          && Transport.is_alive t.net n)
                        placement
                    with
                    | None -> false
                    | Some (target, _) ->
                        note_lease_transfer t ~node:lr.r_node ~range:rid
                          ~target;
                        Raft.transfer_leadership raft target;
                        true
                  end
                  else begin
                    match Raft.add_peer raft replacement kind with
                    | None -> false
                    | Some _ ->
                        Metrics.inc t.c_rebalances;
                        Obs.log_event t.obs ~node:lr.r_node ~range:rid
                          ~attrs:
                            [
                              ("victim", string_of_int victim);
                              ("replacement", string_of_int replacement);
                            ]
                          Events.Rebalance;
                        let goal = Raft.commit_index raft in
                        (* A dead victim never applies its own removal, so
                           its replica object must be reaped here; a live
                           one removes itself in [on_config] first, making
                           this a no-op (guarded by presence). *)
                        let reap_victim rg =
                          match replica_at rg victim with
                          | Some vr ->
                              (match vr.r_raft with
                              | Some vraft -> Raft.stop vraft
                              | None -> ());
                              Hashtbl.remove rg.rg_replicas victim;
                              t.load.(victim) <- max 0 (t.load.(victim) - 1)
                          | None -> ()
                        in
                        let rec finish attempts =
                          match range_opt t rid with
                          | None -> ()
                          | Some rg ->
                              let caught_up =
                                match replica_at rg replacement with
                                | Some rr -> (
                                    match rr.r_raft with
                                    | Some rraft ->
                                        Raft.applied_index rraft >= goal
                                    | None -> false)
                                | None -> false
                              in
                              let removed =
                                match leader_replica t rid with
                                | Some l2 -> (
                                    match l2.r_raft with
                                    | Some raft2 ->
                                        (not
                                           (List.mem_assoc victim
                                              (Raft.peers raft2)))
                                        || (caught_up && l2.r_node <> victim
                                           && Raft.remove_peer raft2 victim
                                              <> None)
                                    | None -> false)
                                | None -> false
                              in
                              if removed then
                                (* Give a live victim time to apply its own
                                   removal, then reap whatever is left. *)
                                Sim.schedule t.sim ~after:2_000_000 (fun () ->
                                    match range_opt t rid with
                                    | Some rg -> reap_victim rg
                                    | None -> ())
                              else if attempts > 0 then
                                Sim.schedule t.sim ~after:500_000 (fun () ->
                                    finish (attempts - 1))
                        in
                        Sim.schedule t.sim ~after:500_000 (fun () ->
                            finish 40);
                        true
                  end)))

let rebalance_leases t =
  Hashtbl.iter
    (fun _ rg ->
      if not rg.rg_dropped then
        match (leader_replica t rg.rg_id, preferred_leaseholder_node t rg) with
        | Some r, Some target when r.r_node <> target -> (
            match r.r_raft with
            | Some raft ->
                note_lease_transfer t ~node:r.r_node ~range:rg.rg_id ~target;
                Raft.transfer_leadership raft target
            | None -> ())
        | (Some _ | None), (Some _ | None) -> ())
    t.ranges_tbl

let transfer_lease t rid ~target =
  match leader_replica t rid with
  | Some r when r.r_node <> target -> (
      match (r.r_raft, replica_at (range t rid) target) with
      | Some raft, Some _ ->
          note_lease_transfer t ~node:r.r_node ~range:rid ~target;
          Raft.transfer_leadership raft target
      | (Some _ | None), (Some _ | None) -> ())
  | Some _ | None -> ()

let restart_node t node =
  Transport.revive_node t.net node;
  Hashtbl.iter
    (fun _ rg ->
      if not rg.rg_dropped then
        match replica_at rg node with
        | Some r ->
            (* A restart loses everything held only in process memory: the
               lock table and parked waiters (connections are gone), and the
               side-channel closed-timestamp state, which is re-learned from
               the next publications. Applied MVCC data and the Raft log are
               disk-backed and survive. *)
            Lock_table.reset r.r_lt;
            r.r_side_closed <- Ts.zero;
            r.r_pending_side <- [];
            (match r.r_raft with Some raft -> Raft.restart raft | None -> ())
        | None -> ())
    t.ranges_tbl

let run_for t d = Sim.run ~until:(Sim.now t.sim + d) t.sim

let settle t =
  let attempts = ref 0 in
  let all_have_lease () =
    List.for_all (fun rid -> leaseholder t rid <> None) (ranges t)
  in
  run_for t 200_000;
  while (not (all_have_lease ())) && !attempts < 40 do
    incr attempts;
    run_for t 500_000
  done;
  (* Let initial closed timestamps propagate to all replicas. *)
  run_for t ((3 * t.cfg.publish_interval) + 200_000)

(* Post-ack work (e.g. making a parallel commit explicit and resolving its
   intents) runs in the background after the client already has its answer.
   {!run} drains these before returning so that tests and tools inspecting
   raw replica state between [run] calls observe a quiescent cluster. *)
let spawn_background t f =
  t.bg_pending <- t.bg_pending + 1;
  Proc.spawn t.sim (fun () ->
      Fun.protect ~finally:(fun () -> t.bg_pending <- t.bg_pending - 1) f)

let run t f =
  let horizon = Sim.now t.sim + 3_600_000_000 in
  let iv = Proc.async t.sim f in
  while
    (not (Ivar.is_full iv && t.bg_pending = 0))
    && Sim.now t.sim < horizon && Sim.step t.sim
  do
    ()
  done;
  match Ivar.peek iv with
  | Some v -> v
  | None -> failwith "Cluster.run: process did not complete (deadlock?)"

let bulk_load t ?ts kvs =
  (* Install safely in the past so no clock in the cluster can still read
     below the load timestamp (versions normally acquire their timestamp
     from the leaseholder clock; this backdoor must not produce "future"
     values). *)
  let ts =
    match ts with
    | Some ts -> ts
    | None -> Ts.of_wall (max 1 (Sim.now t.sim - (2 * t.cfg.max_offset)))
  in
  List.iter
    (fun (key, value) ->
      match range_of_key t key with
      | rid ->
          let rg = range t rid in
          Hashtbl.iter
            (fun _ r -> Mvcc.put_version r.r_store ~key ~ts ~value:(Some value))
            rg.rg_replicas
      | exception Not_found ->
          invalid_arg (Printf.sprintf "Cluster.bulk_load: no range for %s" key))
    kvs

let nearest_replica t rid ~from =
  let rg = range t rid in
  let from_region = Topology.region_of t.topo from in
  let score node =
    if node = from then -1
    else if Transport.is_alive t.net node then
      Latency.rtt t.latency from_region (Topology.region_of t.topo node)
    else max_int
  in
  let best =
    Hashtbl.fold
      (fun node _ acc ->
        match acc with
        | None -> if score node < max_int then Some node else None
        | Some b -> if score node < score b then Some node else acc)
      rg.rg_replicas None
  in
  best

(* ------------------------------------------------------------------ *)
(* Closed-timestamp side channel (node-level transport)                *)

let publish t node =
  let batches : (int, (range * int * Ts.t) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let add dst item =
    match Hashtbl.find_opt batches dst with
    | Some l -> l := item :: !l
    | None -> Hashtbl.replace batches dst (ref [ item ])
  in
  Hashtbl.iter
    (fun _ rg ->
      if not rg.rg_dropped then
        match replica_at rg node with
        | Some r -> (
            match r.r_raft with
            | Some raft when Raft.is_leader raft ->
                let target = next_closed_target t rg node in
                let lai = Raft.last_index raft in
                List.iter
                  (fun (peer, _) -> if peer <> node then add peer (rg, lai, target))
                  (Raft.peers raft)
            | Some _ | None -> ())
        | None -> ())
    t.ranges_tbl;
  if Hashtbl.length batches > 0 then Metrics.inc t.c_ct_publish.(node);
  Hashtbl.iter
    (fun dst items ->
      let items = !items in
      Transport.send t.net ~src:node ~dst (fun () ->
          List.iter
            (fun (rg, lai, ts) ->
              match replica_at rg dst with
              | Some r ->
                  r.r_pending_side <- (lai, ts) :: r.r_pending_side;
                  promote_side r
              | None -> ())
            items))
    batches

let start_publishers t =
  for node = 0 to Topology.num_nodes t.topo - 1 do
    let rec tick () =
      if Transport.is_alive t.net node then publish t node;
      Sim.schedule t.sim ~after:t.cfg.publish_interval tick
    in
    (* Stagger the first publication per node. *)
    Sim.schedule t.sim
      ~after:(1 + (node * 7919 mod t.cfg.publish_interval))
      tick
  done

(* ------------------------------------------------------------------ *)
(* Operations                                                          *)

type read_result =
  | Read_value of { value : string option; ts : Ts.t }
  | Read_uncertain of { value_ts : Ts.t }
  | Read_redirect
  | Read_wounded of string
  | Read_err of string

type scan_result =
  | Scan_rows of (string * string) list
  | Scan_uncertain of { value_ts : Ts.t }
  | Scan_redirect
  | Scan_wounded of string
  | Scan_err of string

type write_result =
  | Write_ok of Ts.t
  | Write_wounded of string
  | Write_err of string

(* Reply-wait bound before a routed op re-resolves and re-sends. Must
   cover a full failover (election timeout 3-6s + lease acquisition) so a
   healthy-but-slow reply is not duplicated, but no longer: every extra
   second a lost reply waits is a second the client-visible op stays open,
   and the chaos history checkers pay for long-open ops combinatorially. *)
let rpc_timeout = 8_000_000
let op_deadline = 120_000_000

(* Route [op] for [key] to the current leaseholder of the key's range. The
   key → range binding is re-resolved on every attempt, never cached, so an
   operation survives splits, merges, and rebalances landing while it is
   queued, waiting on a conflict, or in flight: an eval that finds its
   replica no longer owns the key answers [`Range_mismatch] and the gateway
   immediately retries against the new owner. *)
let with_leaseholder t ~gateway ?(span = Trace.nil) ?(phases = Phase.nil) ~op
    ~key ~(on_fail : string -> 'a)
    (eval :
      replica -> Trace.span -> [ `Done of 'a | `Not_leader | `Range_mismatch ])
    : 'a =
  let tr = Obs.trace t.obs in
  let sp =
    let range =
      match range_of_key t key with
      | rid -> Some rid
      | exception Not_found -> None
    in
    Trace.span tr ~parent:span ~node:gateway ?range op
  in
  let op_start = Sim.now t.sim in
  (* Server-side waiting (conflicts, replication) is attributed by the eval
     itself; the remainder of each gateway-side RPC wait — request/response
     travel and queueing — is routing. *)
  let attributed () =
    Phase.total phases Phase.Lock_wait + Phase.total phases Phase.Replication
  in
  let record_done rid =
    let ts = Obs.timeseries t.obs in
    Timeseries.observe ts ~range:rid "kv.range.qps" 1;
    Timeseries.record_sample ts ~range:rid "kv.range.latency"
      (Sim.now t.sim - op_start);
    sample_key t rid key
  in
  let deadline = Sim.now t.sim + op_deadline in
  let rec go () =
    if Sim.now t.sim > deadline then begin
      Trace.annotate sp "error" "deadline exceeded";
      Trace.finish tr sp;
      on_fail "range unavailable: no leaseholder"
    end
    else
      match range_of_key t key with
      | exception Not_found ->
          Trace.annotate sp "error" "no range";
          Trace.finish tr sp;
          on_fail ("no range for key " ^ key)
      | rid -> (
          match leaseholder t rid with
          | None ->
              t.diag.d_lh_misses <- t.diag.d_lh_misses + 1;
              Proc.sleep t.sim 250_000;
              Phase.add phases Phase.Lease_wait 250_000;
              go ()
          | Some lh -> (
              let rg = range t rid in
              match replica_at rg lh with
              | None ->
                  Proc.sleep t.sim 250_000;
                  Phase.add phases Phase.Lease_wait 250_000;
                  go ()
              | Some r -> (
                  let rpc_start = Sim.now t.sim in
                  let attributed_before = attributed () in
                  let reply =
                    Transport.rpc ~span:sp ~phases t.net ~src:gateway ~dst:lh
                      (fun out ->
                        Proc.spawn t.sim (fun () ->
                            ignore (Ivar.try_fill out (eval r sp) : bool)))
                  in
                  let note_routing () =
                    let waited = Sim.now t.sim - rpc_start in
                    let nested = attributed () - attributed_before in
                    Phase.add phases Phase.Routing (max 0 (waited - nested))
                  in
                  match Proc.await_timeout t.sim reply ~timeout:rpc_timeout with
                  | Some (`Done res) ->
                      note_routing ();
                      Phase.annotate phases sp;
                      Trace.finish tr sp;
                      record_done rid;
                      res
                  | Some `Range_mismatch ->
                      (* The range split, merged, or was dropped while the
                         request was in flight; re-resolve and retry now. *)
                      note_routing ();
                      go ()
                  | Some `Not_leader ->
                      t.diag.d_not_leader <- t.diag.d_not_leader + 1;
                      note_routing ();
                      Proc.sleep t.sim 100_000;
                      Phase.add phases Phase.Lease_wait 100_000;
                      go ()
                  | None ->
                      t.diag.d_rpc_timeouts <- t.diag.d_rpc_timeouts + 1;
                      note_routing ();
                      go ())))
  in
  go ()

let is_leader_now r =
  match r.r_raft with Some raft -> Raft.is_leader raft | None -> false

(* Time one conflict wait and charge it to the operation's lock_wait
   phase. *)
let timed_wait t ~phases f =
  let t0 = Sim.now t.sim in
  let out = f () in
  Phase.add phases Phase.Lock_wait (Sim.now t.sim - t0);
  out

(* ------------------------------------------------------------------ *)
(* Transaction-record transitions, pushes, commit-status recovery      *)

(* Propose one record transition through this replica's Raft log and await
   its local apply. First-decision-wins is enforced at apply time, so the
   caller must re-read the applied record to learn which decision actually
   won — its own proposal may have lost the race. *)
let propose_txn_update t r ~txn ~key upd =
  match r.r_raft with
  | Some raft when Raft.is_leader raft -> (
      let target = next_closed_target t r.r_range r.r_node in
      let done_ = Ivar.create () in
      let cmd =
        {
          closed = target;
          proposer = r.r_node;
          op = Op_txn { txn; tkey = key; upd };
          done_;
          fate = `Applied;
        }
      in
      match Raft.propose raft cmd with
      | None -> `Not_leader
      | Some _ -> (
          match Proc.await_timeout t.sim done_ ~timeout:propose_timeout with
          | Some () -> `Applied
          | None -> `Lost))
  | Some _ | None -> `Not_leader

let eval_txn_update t r ~txn ~key upd =
  if r.r_range.rg_dropped || not (in_span r.r_range key) then `Range_mismatch
  else if not (is_leader_now r) then `Not_leader
  else
    match propose_txn_update t r ~txn ~key upd with
    | `Applied -> `Done (Txnrec.status r.r_txns ~txn)
    | `Lost -> `Done None
    | `Not_leader -> `Not_leader

(* One record transition as an ordinary routed RPC: resolve the anchor
   key's leaseholder, propose, await apply, return the applied status. *)
let txn_update t ~gateway ?span ?(phases = Phase.nil) ~op ~txn ~key upd =
  with_leaseholder t ~gateway ?span ~phases ~op ~key
    ~on_fail:(fun _ -> None)
    (fun r _sp -> eval_txn_update t r ~txn ~key upd)

let eval_query_intent t r ~txn ~key ~ts =
  if r.r_range.rg_dropped || not (in_span r.r_range key) then `Range_mismatch
  else if not (is_leader_now r) then `Not_leader
  else
    match r.r_raft with
    | None -> `Not_leader
    | Some raft -> (
        let target = next_closed_target t r.r_range r.r_node in
        let done_ = Ivar.create () in
        let cmd =
          {
            closed = target;
            proposer = r.r_node;
            op = Op_prevent { txn; key; ts };
            done_;
            fate = `Applied;
          }
        in
        match Raft.propose raft cmd with
        | None -> `Not_leader
        | Some _ -> (
            match Proc.await_timeout t.sim done_ ~timeout:propose_timeout with
            | None -> `Done `Unknown
            | Some () ->
                if Mvcc.is_prevented r.r_store ~key ~txn_id:txn then
                  `Done `Missing
                else `Done `Found))

(* QueryIntent with prevention (parallel-commit recovery, CRDB §3): did the
   staged transaction's declared write on [key] replicate? The probe goes
   through the key's own Raft log, so it is totally ordered against the
   Op_put it races: [`Found] means the write landed (or already resolved),
   [`Missing] means it had not — and now never will, the apply barred it.
   Routing or proposal failures are [`Unknown]: recovery must stay
   inconclusive rather than abort on indeterminate evidence. *)
let query_intent t ~gateway ?span ?(phases = Phase.nil) ~txn ~key ~ts () =
  with_leaseholder t ~gateway ?span ~phases ~op:"kv.query_intent" ~key
    ~on_fail:(fun _ -> `Unknown)
    (fun r _sp -> eval_query_intent t r ~txn ~key ~ts)

(* Commit-status recovery against someone else's STAGING record. Verify
   every declared in-flight write; all present ⇒ the commit implicitly
   succeeded, finalize Committed; any proven missing ⇒ it cannot have been
   acked, finalize Aborted (the probe also bars the write from landing
   late). Either finalization races the coordinator's own transition, so
   the applied record — not our proposal — is the verdict we report.
   Returns [Some commit] (finalized; resolve intents with [commit]) or
   [None] (inconclusive: a probe or the finalization was indeterminate —
   the pusher just keeps waiting). *)
let recover_txn t ~gateway ?span ?(phases = Phase.nil) ~txn ~anchor_key ~ts
    ~inflight () =
  let t0 = Sim.now t.sim in
  let verdict =
    if t.cfg.unsafe_no_recovery then `Abort
    else
      let rec probe = function
        | [] -> `Commit
        | key :: rest -> (
            match query_intent t ~gateway ?span ~phases ~txn ~key ~ts () with
            | `Found -> probe rest
            | `Missing -> `Abort
            | `Unknown -> `Inconclusive)
      in
      probe inflight
  in
  let finalize upd =
    match
      txn_update t ~gateway ?span ~phases ~op:"kv.txn_recover" ~txn
        ~key:anchor_key upd
    with
    | Some (Txnrec.Committed cts) -> Some (Some cts)
    | Some (Txnrec.Aborted _) -> Some None
    | Some (Txnrec.Pending | Txnrec.Staging _) | None -> None
  in
  let out =
    match verdict with
    | `Inconclusive -> None
    | `Commit -> finalize (Txnrec.U_commit { ts })
    | `Abort ->
        finalize (Txnrec.U_recover_abort { reason = "commit recovery" })
  in
  Phase.add phases Phase.Recovery (Sim.now t.sim - t0);
  (match out with
  | Some commit ->
      Obs.log_event t.obs ~node:gateway ~txn
        ~attrs:
          [ ("result", match commit with Some _ -> "committed" | None -> "aborted") ]
        Events.Txn_recovered
  | None -> ());
  out

type push_verdict =
  | Push_wait
  | Push_wound of string
  | Push_cleanup of Ts.t option
  | Push_recover of { ts : Ts.t; inflight : string list }

(* One push evaluation at the blocker's anchor-range leaseholder. Proposed
   transitions (wound, abandon, stub registration) go through the anchor
   log; the applied record decides. *)
let eval_push t r ~blocker ~anchor_key ~blocker_pri ~pusher =
  if r.r_range.rg_dropped || not (in_span r.r_range anchor_key) then
    `Range_mismatch
  else if not (is_leader_now r) then `Not_leader
  else
    let now = Sim.now t.sim in
    let liveness = 3 * t.cfg.txn_heartbeat_interval in
    let reread () =
      match Txnrec.status r.r_txns ~txn:blocker with
      | Some (Txnrec.Committed ts) -> Push_cleanup (Some ts)
      | Some (Txnrec.Aborted { reason; wound = true }) -> Push_wound reason
      | Some (Txnrec.Aborted _) -> Push_cleanup None
      | Some (Txnrec.Pending | Txnrec.Staging _) | None -> Push_wait
    in
    match Txnrec.find r.r_txns ~txn:blocker with
    | None ->
        (* No record yet: the blocker left an intent (or lock) but its
           registering write hasn't applied here, or it never registers
           (raw writer). Create an unwoundable stub so abandonment can
           reclaim the key if no coordinator ever shows up. *)
        ignore
          (propose_txn_update t r ~txn:blocker ~key:anchor_key
             (Txnrec.U_register { pri = blocker_pri; hb = now })
            : [ `Applied | `Lost | `Not_leader ]);
        `Done Push_wait
    | Some rec_ -> (
        match rec_.Txnrec.tr_status with
        | Txnrec.Committed ts -> `Done (Push_cleanup (Some ts))
        | Txnrec.Aborted { reason; wound = true } -> `Done (Push_wound reason)
        | Txnrec.Aborted _ -> `Done (Push_cleanup None)
        | Txnrec.Staging { ts; inflight } ->
            (* A staging record is never wounded: the transaction holds no
               future lock acquisitions, so waiting for it is deadlock-free.
               Recovery only fires once the coordinator looks dead (or
               immediately in the deliberately broken mode). *)
            if t.cfg.unsafe_no_recovery || now - rec_.Txnrec.tr_hb > liveness
            then `Done (Push_recover { ts; inflight })
            else `Done Push_wait
        | Txnrec.Pending ->
            if now - rec_.Txnrec.tr_hb > liveness then begin
              ignore
                (propose_txn_update t r ~txn:blocker ~key:anchor_key
                   (Txnrec.U_abandon
                      {
                        reason = "abandoned (stale heartbeat)";
                        if_hb_before = rec_.Txnrec.tr_hb;
                      })
                  : [ `Applied | `Lost | `Not_leader ]);
              `Done (reread ())
            end
            else
              let wound =
                match pusher with
                | Some (p_pri, p_id) ->
                    Txnrec.older (p_pri, p_id)
                      (rec_.Txnrec.tr_pri, rec_.Txnrec.tr_id)
                | None -> false
              in
              if wound then begin
                ignore
                  (propose_txn_update t r ~txn:blocker ~key:anchor_key
                     (Txnrec.U_wound { reason = "wounded by older txn" })
                    : [ `Applied | `Lost | `Not_leader ]);
                `Done (reread ())
              end
              else `Done Push_wait)

(* Pushes are latency-bound, not reliability-bound: a push that cannot
   reach the anchor leaseholder right now simply reports Wait and the next
   tick retries, so it uses a short timeout and a single routing attempt
   instead of [with_leaseholder]'s full retry loop. *)
let push_rpc_timeout = 3_000_000

let push_once t ~src ~blocker ~anchor_key ~blocker_pri ~pusher =
  match range_of_key t anchor_key with
  | exception Not_found -> Push_wait
  | rid -> (
      match range_opt t rid with
      | None -> Push_wait
      | Some rg -> (
          match leaseholder t rid with
          | None -> Push_wait
          | Some lh -> (
              match replica_at rg lh with
              | None -> Push_wait
              | Some r -> (
                  let reply =
                    Transport.rpc t.net ~src ~dst:lh (fun out ->
                        Proc.spawn t.sim (fun () ->
                            ignore
                              (Ivar.try_fill out
                                 (eval_push t r ~blocker ~anchor_key
                                    ~blocker_pri ~pusher)
                                : bool)))
                  in
                  match
                    Proc.await_timeout t.sim reply ~timeout:push_rpc_timeout
                  with
                  | Some (`Done v) -> v
                  | Some (`Not_leader | `Range_mismatch) | None -> Push_wait))))

(* Park on the conflicting key and periodically push the blocker's record
   at its anchor range — a genuine RPC now that records live with their
   anchor key rather than in a cluster-global table. The wait ends when the
   key's waiters are woken (intent resolved / lock released), when routing
   moves, or when a push verdict lets this waiter clean up the blocker. *)
let wait_on_conflict t r ~phases ~key ~kind ~blocker ~blocker_pri
    ~blocker_anchor ~waiter ~waiter_pri ~fate =
  (match kind with
  | `Lock -> t.diag.d_lock_waits <- t.diag.d_lock_waits + 1
  | `Intent -> t.diag.d_intent_waits <- t.diag.d_intent_waits + 1);
  let iv = Lock_table.park r.r_lt ~key in
  t.waiting <- t.waiting + 1;
  Metrics.set t.g_waiters t.waiting;
  (* A raw (transaction-less) writer leaves no anchor; its record — if a
     pusher ever creates the stub — lives at the conflicted key itself. *)
  let anchor_key = if String.equal blocker_anchor "" then key else blocker_anchor in
  let pusher =
    match (waiter, waiter_pri) with
    | Some w, Some p -> Some (p, w)
    | _ -> None
  in
  let deadline = ref (Sim.now t.sim + t.cfg.conflict_wait_timeout) in
  let progressed () =
    deadline := Sim.now t.sim + t.cfg.conflict_wait_timeout
  in
  let finish outcome =
    Lock_table.unpark r.r_lt ~key iv;
    t.waiting <- t.waiting - 1;
    Metrics.set t.g_waiters t.waiting;
    (match outcome with
    | Lock_table.Timed_out ->
        t.diag.d_conflict_timeouts <- t.diag.d_conflict_timeouts + 1;
        Metrics.inc t.c_conflict_timeout.(r.r_node)
    | Lock_table.Acquired | Lock_table.Wounded _ | Lock_table.Pusher_aborted ->
        ());
    outcome
  in
  let cleanup commit =
    Metrics.inc t.c_cleanup.(r.r_node);
    propose_cleanup t r ~key ~blocker ~commit
  in
  let rec loop () =
    let now = Sim.now t.sim in
    if now >= !deadline then finish Lock_table.Timed_out
    else
      let slice = min t.cfg.push_delay (!deadline - now) in
      match Proc.await_timeout t.sim iv ~timeout:slice with
      | Some () -> finish Lock_table.Acquired
      | None ->
          if
            r.r_range.rg_dropped
            || (not (is_leader_now r))
            || not (in_span r.r_range key)
          then
            (* Routing moved while we were parked; force a re-evaluation,
               which redirects to the current leaseholder. *)
            finish Lock_table.Acquired
          else begin
            match (fate () : fate) with
            | `Wounded reason -> finish (Lock_table.Wounded reason)
            | `Aborted -> finish Lock_table.Pusher_aborted
            | `Live -> (
                t.diag.d_pushes <- t.diag.d_pushes + 1;
                Metrics.inc t.c_push.(r.r_node);
                match
                  push_once t ~src:r.r_node ~blocker ~anchor_key ~blocker_pri
                    ~pusher
                with
                | Push_wait -> loop ()
                | Push_wound _reason ->
                    progressed ();
                    t.diag.d_wounds <- t.diag.d_wounds + 1;
                    Metrics.inc t.c_wound.(r.r_node);
                    Obs.log_event t.obs ~node:r.r_node ~range:r.r_range.rg_id
                      ~txn:blocker
                      ~attrs:
                        [
                          ("blocker", string_of_int blocker);
                          ("key", key);
                          ( "pusher",
                            match waiter with
                            | Some w -> string_of_int w
                            | None -> "-" );
                        ]
                      Events.Wound;
                    cleanup None;
                    loop ()
                | Push_cleanup commit ->
                    progressed ();
                    (match commit with
                    | None ->
                        Obs.log_event t.obs ~node:r.r_node
                          ~range:r.r_range.rg_id ~txn:blocker
                          ~attrs:[ ("key", key) ]
                          Events.Abandoned_cleanup
                    | Some _ -> ());
                    cleanup commit;
                    loop ()
                | Push_recover { ts; inflight } -> (
                    progressed ();
                    match
                      recover_txn t ~gateway:r.r_node ~phases ~txn:blocker
                        ~anchor_key ~ts ~inflight ()
                    with
                    | Some commit ->
                        cleanup commit;
                        loop ()
                    | None -> loop ()))
          end
  in
  loop ()

let rec eval_read t r ~inline_bump ~phases ~txn ~pri ~fate ~key ~ts ~max_ts =
  if r.r_range.rg_dropped || not (in_span r.r_range key) then `Range_mismatch
  else if not (is_leader_now r) then `Not_leader
  else
    match (fate () : fate) with
    | `Wounded reason -> `Done (Read_wounded reason)
    | `Aborted -> `Done (Read_err "transaction aborted")
    | `Live ->
    (* Observed timestamps: values above the leaseholder's own clock cannot
       have committed before this request arrived, so they are outside the
       real-time ordering obligation and the uncertainty window shrinks to
       the leaseholder's now. Sound only because of the HLC receive rule:
       replicas ratchet their clock over every write timestamp they evaluate
       or apply, so an acked write is never above the serving clock (a write
       can carry a faster gateway clock's timestamp). Future-time (Lead)
       ranges are exempt: their committed writes are synthetic timestamps
       that legitimately sit above every clock (§6.2). *)
    let max_ts =
      match r.r_range.rg_policy with
      | Lag _ -> Ts.max ts (Ts.min max_ts (Clock.now t.clocks.(r.r_node)))
      | Lead -> max_ts
    in
    let wait ~kind ~blocker ~blocker_pri ~blocker_anchor =
      match
        timed_wait t ~phases (fun () ->
            wait_on_conflict t r ~phases ~key ~kind ~blocker ~blocker_pri
              ~blocker_anchor ~waiter:txn ~waiter_pri:pri ~fate)
      with
      | Lock_table.Acquired ->
          eval_read t r ~inline_bump ~phases ~txn ~pri ~fate ~key ~ts ~max_ts
      | Lock_table.Wounded reason -> `Done (Read_wounded reason)
      | Lock_table.Pusher_aborted -> `Done (Read_err "transaction aborted")
      | Lock_table.Timed_out -> `Done (Read_err "conflict timeout")
    in
    match Lock_table.foreign r.r_lt ~key ~txn ~max_ts with
    | Some l ->
        wait ~kind:`Lock ~blocker:(Lock_table.holder l)
          ~blocker_pri:(Lock_table.lock_pri l)
          ~blocker_anchor:(Lock_table.lock_anchor l)
    | None -> (
        match Mvcc.read r.r_store ~key ~ts ~max_ts ~for_txn:txn with
        | Mvcc.Intent_blocked i ->
            wait ~kind:`Intent ~blocker:i.Mvcc.txn_id ~blocker_pri:i.Mvcc.pri
              ~blocker_anchor:i.Mvcc.anchor
        | Mvcc.Value { value; ts = vts } ->
            Tscache.record_read r.r_range.rg_tscache ~txn ~key ~ts;
            `Done (Read_value { value; ts = vts })
        | Mvcc.Uncertain { value_ts } ->
            (* Server-side retry: when the transaction has no prior reads to
               refresh, ratchet the timestamp in place instead of bouncing
               the uncertainty error back across the network. *)
            if inline_bump then
              eval_read t r ~inline_bump ~phases ~txn ~pri ~fate ~key
                ~ts:value_ts ~max_ts
            else `Done (Read_uncertain { value_ts }))

let read t ?(inline_bump = false) ?span ?(phases = Phase.nil) ?pri
    ?(fate = live_fate) ~gateway ~txn ~key ~ts ~max_ts () =
  with_leaseholder t ~gateway ?span ~phases ~op:"kv.read" ~key
    ~on_fail:(fun msg -> Read_err msg)
    (fun r _sp ->
      eval_read t r ~inline_bump ~phases ~txn ~pri ~fate ~key ~ts ~max_ts)

let read_follower t ?(span = Trace.nil) ?(phases = Phase.nil) ~at ~txn ~key
    ~ts ~max_ts () =
  match range_of_key t key with
  | exception Not_found -> Read_err ("no range for key " ^ key)
  | rid -> (
      let tr = Obs.trace t.obs in
      let sp =
        Trace.span tr ~parent:span ~node:at ~range:rid "kv.follower_read"
      in
      let fr_start = Sim.now t.sim in
      let note res =
        (match res with
        | Read_value _ | Read_uncertain _ ->
            Metrics.inc t.c_fr_hit.(at);
            let ts = Obs.timeseries t.obs in
            Timeseries.observe ts ~range:rid "kv.range.qps" 1;
            Timeseries.record_sample ts ~range:rid "kv.range.latency"
              (Sim.now t.sim - fr_start)
        | Read_redirect ->
            Trace.annotate sp "redirect" "true";
            Metrics.inc t.c_fr_miss.(at)
        | Read_wounded _ | Read_err _ -> ());
        Trace.finish tr sp;
        res
      in
      let rg = range t rid in
      let eval r =
        (* A split or merge may land between resolution and evaluation;
           redirect to the gateway path, which re-resolves the key. *)
        if r.r_range.rg_dropped || not (in_span r.r_range key) then
          Read_redirect
        else if Ts.(replica_closed r >= max_ts) then
          match Mvcc.read r.r_store ~key ~ts ~max_ts ~for_txn:txn with
          | Mvcc.Value { value; ts = vts } -> Read_value { value; ts = vts }
          | Mvcc.Uncertain { value_ts } -> Read_uncertain { value_ts }
          | Mvcc.Intent_blocked _ -> Read_redirect
        else Read_redirect
      in
      match replica_at rg at with
      | Some r ->
          (* Collocated replica: local storage access. *)
          Proc.sleep t.sim 50;
          note (eval r)
      | None -> (
          match nearest_replica t rid ~from:at with
          | None -> note (Read_err "no live replica")
          | Some node -> (
              let rg = range t rid in
              match replica_at rg node with
              | None -> note (Read_err "no live replica")
              | Some r -> (
                  let reply =
                    Transport.rpc ~span:sp ~phases t.net ~src:at ~dst:node
                      (fun out -> Ivar.fill out (eval r))
                  in
                  match Proc.await_timeout t.sim reply ~timeout:rpc_timeout with
                  | Some res -> note res
                  | None -> note (Read_err "follower read timeout")))))

let clamp_span rg ~start_key ~end_key =
  let s, e = rg.rg_span in
  let lo = if String.compare start_key s > 0 then start_key else s in
  let hi = if String.compare end_key e < 0 then end_key else e in
  (lo, hi)

let rec eval_scan t r ~phases ~txn ~pri ~fate ~start_key ~end_key ~ts ~max_ts
    ~limit =
  if r.r_range.rg_dropped || not (in_span r.r_range start_key) then
    `Range_mismatch
  else if not (is_leader_now r) then `Not_leader
  else begin
    match (fate () : fate) with
    | `Wounded reason -> `Done (Scan_wounded reason)
    | `Aborted -> `Done (Scan_err "transaction aborted")
    | `Live ->
    (* A scan covers at most one range: clamp to the replica's current span
       (re-clamped on every retry, since a split may have shrunk it). *)
    let start_key, end_key = clamp_span r.r_range ~start_key ~end_key in
    let max_ts =
      match r.r_range.rg_policy with
      | Lag _ -> Ts.max ts (Ts.min max_ts (Clock.now t.clocks.(r.r_node)))
      | Lead -> max_ts
    in
    let rows =
      Mvcc.scan r.r_store ~start_key ~end_key ~ts ~max_ts ~for_txn:txn ~limit
    in
    let blocked =
      List.find_opt
        (fun (_, o) -> match o with Mvcc.Intent_blocked _ -> true | _ -> false)
        rows
    in
    let locked =
      (* A scan must also respect locks on keys it covers. *)
      Lock_table.foreign_in_span r.r_lt ~start_key ~end_key ~txn ~max_ts
    in
    let wait ~key ~kind ~blocker ~blocker_pri ~blocker_anchor =
      match
        timed_wait t ~phases (fun () ->
            wait_on_conflict t r ~phases ~key ~kind ~blocker ~blocker_pri
              ~blocker_anchor ~waiter:txn ~waiter_pri:pri ~fate)
      with
      | Lock_table.Acquired ->
          eval_scan t r ~phases ~txn ~pri ~fate ~start_key ~end_key ~ts
            ~max_ts ~limit
      | Lock_table.Wounded reason -> `Done (Scan_wounded reason)
      | Lock_table.Pusher_aborted -> `Done (Scan_err "transaction aborted")
      | Lock_table.Timed_out -> `Done (Scan_err "conflict timeout")
    in
    match (locked, blocked) with
    | Some (key, l), _ ->
        wait ~key ~kind:`Lock ~blocker:(Lock_table.holder l)
          ~blocker_pri:(Lock_table.lock_pri l)
          ~blocker_anchor:(Lock_table.lock_anchor l)
    | None, Some (key, Mvcc.Intent_blocked i) ->
        wait ~key ~kind:`Intent ~blocker:i.Mvcc.txn_id ~blocker_pri:i.Mvcc.pri
          ~blocker_anchor:i.Mvcc.anchor
    | None, Some _ -> assert false
    | None, None -> (
        let uncertain =
          List.fold_left
            (fun acc (_, o) ->
              match o with
              | Mvcc.Uncertain { value_ts } -> (
                  match acc with
                  | None -> Some value_ts
                  | Some best -> Some (Ts.max best value_ts))
              | Mvcc.Value _ | Mvcc.Intent_blocked _ -> acc)
            None rows
        in
        match uncertain with
        | Some value_ts -> `Done (Scan_uncertain { value_ts })
        | None ->
            Tscache.record_read_span r.r_range.rg_tscache ~txn ~start_key
              ~end_key ~ts;
            let out =
              List.filter_map
                (fun (key, o) ->
                  match o with
                  | Mvcc.Value { value = Some v; _ } -> Some (key, v)
                  | Mvcc.Value { value = None; _ }
                  | Mvcc.Uncertain _ | Mvcc.Intent_blocked _ -> None)
                rows
            in
            `Done (Scan_rows out))
  end

(* Position [cursor] on a key some live range owns: [cursor] itself, the
   start of the next range if [cursor] falls in a routing gap and that
   start is still below [end_key], or [None] when the rest of the request
   span is uncovered. *)
let next_covered t ~cursor ~end_key =
  match range_of_key t cursor with
  | _ -> Some cursor
  | exception Not_found -> (
      match
        Smap.find_first_opt (fun s -> String.compare s cursor > 0) t.routing
      with
      | Some (s, _) when String.compare s end_key < 0 -> Some s
      | Some _ | None -> None)

let scan t ?span ?(phases = Phase.nil) ?pri ?(fate = live_fate) ~gateway ~txn
    ~start_key ~end_key ~ts ~max_ts ~limit () =
  (* The request span may cover several ranges (splits land at any time):
     scan left to right, one leaseholder fragment at a time. Each fragment's
     eval reports the range end it was clamped to, which is where the next
     fragment starts under the routing in force at evaluation time. *)
  let rec go acc cursor remaining =
    let finished () = Scan_rows (List.rev acc) in
    if String.compare cursor end_key >= 0 then finished ()
    else if match remaining with Some n -> n <= 0 | None -> false then
      finished ()
    else
      match next_covered t ~cursor ~end_key with
      | None ->
          if acc = [] then Scan_err ("no range for key " ^ cursor)
          else finished ()
      | Some cursor -> (
          match
            with_leaseholder t ~gateway ?span ~phases ~op:"kv.scan" ~key:cursor
              ~on_fail:(fun msg -> (Scan_err msg, end_key))
              (fun r _sp ->
                match
                  eval_scan t r ~phases ~txn ~pri ~fate ~start_key:cursor
                    ~end_key ~ts ~max_ts ~limit:remaining
                with
                | (`Not_leader | `Range_mismatch) as other -> other
                | `Done res -> `Done (res, snd r.r_range.rg_span))
          with
          | Scan_rows rows, next ->
              let remaining =
                Option.map (fun n -> n - List.length rows) remaining
              in
              go (List.rev_append rows acc) next remaining
          | ((Scan_uncertain _ | Scan_redirect | Scan_wounded _ | Scan_err _) as res), _
            ->
              (* Propagate; the transaction restarts the whole scan. *)
              res)
  in
  go [] start_key limit

let scan_follower t ?(span = Trace.nil) ?(phases = Phase.nil) ~at ~txn
    ~start_key ~end_key ~ts ~max_ts ~limit () =
  match range_of_key t start_key with
  | exception Not_found -> Scan_err ("no range for key " ^ start_key)
  | _ ->
      (* Stitched like {!scan}: one fragment per covering range, each served
         by the local (or nearest) replica, redirecting the whole request if
         any fragment cannot be served locally. *)
      let one_fragment ~cursor =
        match range_of_key t cursor with
        | exception Not_found -> (Scan_err ("no range for key " ^ cursor), end_key)
        | rid -> (
            let tr = Obs.trace t.obs in
            let sp =
              Trace.span tr ~parent:span ~node:at ~range:rid
                "kv.follower_scan"
            in
            let note ((res, _) as out) =
              (match res with
              | Scan_rows _ | Scan_uncertain _ -> Metrics.inc t.c_fr_hit.(at)
              | Scan_redirect ->
                  Trace.annotate sp "redirect" "true";
                  Metrics.inc t.c_fr_miss.(at)
              | Scan_wounded _ | Scan_err _ -> ());
              Trace.finish tr sp;
              out
            in
            let rg = range t rid in
            let eval r =
              if r.r_range.rg_dropped || not (in_span r.r_range cursor) then
                (Scan_redirect, end_key)
              else if not Ts.(replica_closed r >= max_ts) then
                (Scan_redirect, end_key)
              else begin
                let start_key, end_key =
                  clamp_span r.r_range ~start_key:cursor ~end_key
                in
                let rows =
                  Mvcc.scan r.r_store ~start_key ~end_key ~ts ~max_ts
                    ~for_txn:txn ~limit
                in
                let has_block =
                  List.exists
                    (fun (_, o) ->
                      match o with Mvcc.Intent_blocked _ -> true | _ -> false)
                    rows
                in
                let next = snd r.r_range.rg_span in
                if has_block then (Scan_redirect, next)
                else
                  let uncertain =
                    List.fold_left
                      (fun acc (_, o) ->
                        match o with
                        | Mvcc.Uncertain { value_ts } -> (
                            match acc with
                            | None -> Some value_ts
                            | Some best -> Some (Ts.max best value_ts))
                        | Mvcc.Value _ | Mvcc.Intent_blocked _ -> acc)
                      None rows
                  in
                  match uncertain with
                  | Some value_ts -> (Scan_uncertain { value_ts }, next)
                  | None ->
                      ( Scan_rows
                          (List.filter_map
                             (fun (key, o) ->
                               match o with
                               | Mvcc.Value { value = Some v; _ } ->
                                   Some (key, v)
                               | Mvcc.Value { value = None; _ }
                               | Mvcc.Uncertain _ | Mvcc.Intent_blocked _ ->
                                   None)
                             rows),
                        next )
              end
            in
            match replica_at rg at with
            | Some r ->
                Proc.sleep t.sim 50;
                note (eval r)
            | None -> (
                match nearest_replica t rid ~from:at with
                | None -> note (Scan_err "no live replica", end_key)
                | Some node -> (
                    match replica_at rg node with
                    | None -> note (Scan_err "no live replica", end_key)
                    | Some r -> (
                        let reply =
                          Transport.rpc ~span:sp ~phases t.net ~src:at
                            ~dst:node (fun out -> Ivar.fill out (eval r))
                        in
                        match
                          Proc.await_timeout t.sim reply ~timeout:rpc_timeout
                        with
                        | Some res -> note res
                        | None -> note (Scan_err "follower scan timeout", end_key)
                        ))))
      in
      let rec go acc cursor =
        if String.compare cursor end_key >= 0 then Scan_rows (List.rev acc)
        else
          match next_covered t ~cursor ~end_key with
          | None -> Scan_rows (List.rev acc)
          | Some cursor -> (
              match one_fragment ~cursor with
              | Scan_rows rows, next -> go (List.rev_append rows acc) next
              | ( (Scan_uncertain _ | Scan_redirect | Scan_wounded _ | Scan_err _) as
                  res ),
                  _ ->
                  res)
      in
      go [] start_key

(* Whether one consensus round on this replica's group must leave the
   leader's region: the leader acks itself, so a quorum is WAN-free exactly
   when enough voters are co-located with it. Computed from the live
   placement at proposal time — after a rebalance or failover the same range
   can flip between answers, which is the point: the measurement tracks the
   actual placement, not the static model. *)
let replication_needs_wan t r =
  match r.r_raft with
  | None -> false
  | Some raft ->
      let voters =
        List.filter (fun (_, k) -> k = Raft.Voter) (Raft.peers raft)
      in
      let quorum = (List.length voters / 2) + 1 in
      let leader_region = Topology.region_of t.topo r.r_node in
      let local =
        List.length
          (List.filter
             (fun (n, _) ->
               String.equal (Topology.region_of t.topo n) leader_region)
             voters)
      in
      local < quorum

let rec eval_write t r ~applied ~phases ~gateway ~txn ~pri ~anchor ~fate ~key
    ~value ~ts ~span =
  if r.r_range.rg_dropped || not (in_span r.r_range key) then `Range_mismatch
  else if not (is_leader_now r) then `Not_leader
  else
    (* A wounded or aborted writer must not lay new intents: a pusher may
       already have cleaned up its old ones, and nothing would remove a
       late-laid intent until abandonment kicked in. *)
    match (fate () : fate) with
    | `Wounded reason -> `Done (Write_wounded reason)
    | `Aborted -> `Done (Write_err "transaction aborted")
    | `Live -> (
        let wait ~kind ~blocker ~blocker_pri ~blocker_anchor =
          match
            timed_wait t ~phases (fun () ->
                wait_on_conflict t r ~phases ~key ~kind ~blocker ~blocker_pri
                  ~blocker_anchor ~waiter:(Some txn) ~waiter_pri:pri ~fate)
          with
          | Lock_table.Acquired ->
              eval_write t r ~applied ~phases ~gateway ~txn ~pri ~anchor ~fate
                ~key ~value ~ts ~span
          | Lock_table.Wounded reason -> `Done (Write_wounded reason)
          | Lock_table.Pusher_aborted -> `Done (Write_err "transaction aborted")
          | Lock_table.Timed_out -> `Done (Write_err "conflict timeout")
        in
        match
          Lock_table.foreign_for r.r_lt ~key ~txn
            ~strength:Lock_table.Exclusive
        with
        | Some l ->
            wait ~kind:`Lock ~blocker:(Lock_table.holder l)
              ~blocker_pri:(Lock_table.lock_pri l)
              ~blocker_anchor:(Lock_table.lock_anchor l)
        | None -> (
            match Mvcc.intent_on r.r_store ~key with
            | Some i when i.Mvcc.txn_id <> txn ->
                wait ~kind:`Intent ~blocker:i.Mvcc.txn_id
                  ~blocker_pri:i.Mvcc.pri ~blocker_anchor:i.Mvcc.anchor
            | Some _ | None -> (
                match r.r_raft with
                | None -> `Not_leader
                | Some raft ->
                    let rg = r.r_range in
                    let target = next_closed_target t rg r.r_node in
                    let ts =
                      Ts.max ts
                        (Ts.next
                           (Tscache.max_read rg.rg_tscache ~for_txn:(Some txn)
                              ~key))
                    in
                    let ts =
                      let latest = Mvcc.latest_ts r.r_store ~key in
                      if Ts.(latest >= ts) then Ts.next latest else ts
                    in
                    let ts = Ts.max ts (Ts.next target) in
                    (* HLC receive rule at request receipt: the leaseholder's
                       clock must not lag a timestamp it is about to write, or
                       the observed-timestamp clamp would hide the value from
                       reads arriving after the writer's commit ack. *)
                    (match rg.rg_policy with
                    | Lag _ -> Clock.update t.clocks.(r.r_node) ts
                    | Lead -> ());
                    let wpri = Option.value pri ~default:Ts.zero in
                    let created =
                      Lock_table.acquire r.r_lt ~pri:wpri ~anchor ~key ~txn
                        ~ts ()
                    in
                let done_ = Ivar.create () in
                let cmd =
                  {
                    closed = target;
                    proposer = r.r_node;
                    op = Op_put { txn; ts; key; value; pri = wpri; anchor };
                    done_;
                    fate = `Applied;
                  }
                in
                let tr = Obs.trace t.obs in
                let rsp =
                  Trace.span tr ~parent:span ~node:r.r_node ~range:rg.rg_id
                    "raft.replicate"
                in
                let propose_at = Sim.now t.sim in
                (match Raft.propose raft cmd with
                | None ->
                    Trace.annotate rsp "error" "not leader";
                    Trace.finish tr rsp;
                    if created then Lock_table.release r.r_lt ~key ~txn;
                    `Not_leader
                | Some _ -> (
                    Ivar.on_fill done_ (fun () -> Trace.finish tr rsp);
                    if replication_needs_wan t r then Phase.add_wan phases;
                    Timeseries.observe (Obs.timeseries t.obs) ~range:rg.rg_id
                      "kv.range.write_bytes"
                      (String.length key
                      + match value with Some v -> String.length v | None -> 0);
                    (* One replication round; with pipelining the quorum wait
                       overlaps the transaction's other work, so the phase is
                       attributed when the local apply lands. *)
                    Ivar.on_fill done_ (fun () ->
                        Phase.add phases Phase.Replication
                          (Sim.now t.sim - propose_at));
                    match applied with
                    | Some ack ->
                        (* Pipelined write (CRDB write pipelining): reply as
                           soon as the intent is in the log; confirm its
                           application — and its fate — to the gateway
                           asynchronously. The transaction awaits all
                           confirmations at commit. *)
                        Ivar.on_fill done_ (fun () ->
                            Transport.send t.net ~src:r.r_node ~dst:gateway
                              (fun () ->
                                ignore (Ivar.try_fill ack cmd.fate : bool)));
                        `Done (Write_ok ts)
                    | None -> (
                        match
                          Proc.await_timeout t.sim done_ ~timeout:propose_timeout
                        with
                        | Some () -> (
                            match cmd.fate with
                            | `Applied -> `Done (Write_ok ts)
                            | `Prevented ->
                                `Done (Write_err "write prevented by recovery")
                            | `Dropped ->
                                `Done (Write_err "proposal lost (leader gone)"))
                        | None ->
                            `Done (Write_err "proposal lost (leader gone)")))))))

(* One-phase commit: evaluate, then propose the intent and its commit
   resolution back to back in the same Raft log. The lock exists only
   between the two proposals (no simulated time passes), so concurrent
   readers never observe it — CRDB's 1PC fast path for transactions whose
   writes all land on one range. *)
let eval_write_and_commit t r ~gateway ~phases ~txn ~pri ~fate ~key ~value ~ts
    ~span =
  match
    eval_write t r ~applied:(Some (Ivar.create ())) ~phases ~gateway ~txn ~pri
      ~anchor:"" ~fate ~key ~value ~ts ~span
  with
  | (`Not_leader | `Range_mismatch) as other -> other
  | `Done (Write_wounded reason) -> `Done (Error reason)
  | `Done (Write_err e) -> `Done (Error e)
  | `Done (Write_ok final_ts) -> (
      match r.r_raft with
      | None -> `Not_leader
      | Some raft -> (
          let rg = r.r_range in
          let target = next_closed_target t rg r.r_node in
          let done_ = Ivar.create () in
          let cmd =
            {
              closed = target;
              proposer = r.r_node;
              op = Op_resolve { txn; keys = [ key ]; commit = Some final_ts };
              done_;
              fate = `Applied;
            }
          in
          let tr = Obs.trace t.obs in
          let rsp =
            Trace.span tr ~parent:span ~node:r.r_node ~range:rg.rg_id
              "raft.replicate"
          in
          let propose_at = Sim.now t.sim in
          match Raft.propose raft cmd with
          | None ->
              Trace.annotate rsp "error" "not leader";
              Trace.finish tr rsp;
              Lock_table.release r.r_lt ~key ~txn;
              `Not_leader
          | Some _ ->
              Ivar.on_fill done_ (fun () -> Trace.finish tr rsp);
              if replication_needs_wan t r then Phase.add_wan phases;
              Ivar.on_fill done_ (fun () ->
                  Phase.add phases Phase.Replication
                    (Sim.now t.sim - propose_at));
              match Proc.await_timeout t.sim done_ ~timeout:propose_timeout with
              | Some () -> `Done (Ok final_ts)
              | None -> `Done (Error "proposal lost (leader gone)")))

let write_and_commit t ?span ?(phases = Phase.nil) ?pri ?(fate = live_fate)
    ~gateway ~txn ~key ~value ~ts () =
  with_leaseholder t ~gateway ?span ~phases ~op:"kv.write_1pc" ~key
    ~on_fail:(fun msg -> Error msg)
    (fun r sp ->
      eval_write_and_commit t r ~gateway ~phases ~txn ~pri ~fate ~key ~value
        ~ts ~span:sp)

let write t ?applied ?span ?(phases = Phase.nil) ?pri ?(anchor = "")
    ?(fate = live_fate) ~gateway ~txn ~key ~value ~ts () =
  with_leaseholder t ~gateway ?span ~phases ~op:"kv.write" ~key
    ~on_fail:(fun msg -> Write_err msg)
    (fun r sp ->
      eval_write t r ~applied ~phases ~gateway ~txn ~pri ~anchor ~fate ~key
        ~value ~ts ~span:sp)

(* SELECT FOR UPDATE / FOR SHARE: take an unreplicated lock on [key] without
   laying an intent. Like CRDB's unreplicated lock table, the lock is
   leaseholder-local state — dropped on lease transfer or node restart — so
   it is a contention-avoidance hint, not a correctness anchor:
   serializability stays guaranteed by the commit-time read refresh.
   Conflicts resolve through the same wound-wait push protocol as
   write-write conflicts (the waiter pushes the holder's record at its
   anchor). *)
let rec eval_lock t r ~phases ~txn ~pri ~anchor ~fate ~strength ~key ~ts =
  if r.r_range.rg_dropped || not (in_span r.r_range key) then `Range_mismatch
  else if not (is_leader_now r) then `Not_leader
  else
    match (fate () : fate) with
    | `Wounded reason -> `Done (Write_wounded reason)
    | `Aborted -> `Done (Write_err "transaction aborted")
    | `Live -> (
        let wait ~kind ~blocker ~blocker_pri ~blocker_anchor =
          match
            timed_wait t ~phases (fun () ->
                wait_on_conflict t r ~phases ~key ~kind ~blocker ~blocker_pri
                  ~blocker_anchor ~waiter:(Some txn) ~waiter_pri:pri ~fate)
          with
          | Lock_table.Acquired ->
              eval_lock t r ~phases ~txn ~pri ~anchor ~fate ~strength ~key ~ts
          | Lock_table.Wounded reason -> `Done (Write_wounded reason)
          | Lock_table.Pusher_aborted -> `Done (Write_err "transaction aborted")
          | Lock_table.Timed_out -> `Done (Write_err "conflict timeout")
        in
        match Lock_table.foreign_for r.r_lt ~key ~txn ~strength with
        | Some l ->
            wait ~kind:`Lock ~blocker:(Lock_table.holder l)
              ~blocker_pri:(Lock_table.lock_pri l)
              ~blocker_anchor:(Lock_table.lock_anchor l)
        | None -> (
            match Mvcc.intent_on r.r_store ~key with
            | Some i when i.Mvcc.txn_id <> txn ->
                wait ~kind:`Intent ~blocker:i.Mvcc.txn_id ~blocker_pri:i.Mvcc.pri
                  ~blocker_anchor:i.Mvcc.anchor
            | Some _ | None ->
                let wpri = Option.value pri ~default:Ts.zero in
                ignore
                  (Lock_table.acquire r.r_lt ~pri:wpri ~anchor ~strength ~key
                     ~txn ~ts ()
                    : bool);
                `Done (Write_ok ts)))

let lock_key t ?span ?(phases = Phase.nil) ?pri ?(anchor = "")
    ?(fate = live_fate) ~gateway ~txn ~key ~ts ~strength () =
  with_leaseholder t ~gateway ?span ~phases ~op:"kv.lock" ~key
    ~on_fail:(fun msg -> Write_err msg)
    (fun r _sp -> eval_lock t r ~phases ~txn ~pri ~anchor ~fate ~strength ~key ~ts)

(* Resolve the subset of [keys] this replica's range owns; the rest — keys
   stranded on the wrong leaseholder by a split racing the resolution — are
   handed back for the gateway to re-group. *)
let eval_resolve t r ~phases ~txn ~keys ~commit ~span =
  if r.r_range.rg_dropped then `Range_mismatch
  else
    let mine, leftover = List.partition (in_span r.r_range) keys in
    if mine = [] then `Range_mismatch
    else if not (is_leader_now r) then `Not_leader
    else
      match r.r_raft with
      | None -> `Not_leader
      | Some raft -> (
          let rg = r.r_range in
          let target = next_closed_target t rg r.r_node in
          let done_ = Ivar.create () in
          let cmd =
            {
              closed = target;
              proposer = r.r_node;
              op = Op_resolve { txn; keys = mine; commit };
              done_;
              fate = `Applied;
            }
          in
          let tr = Obs.trace t.obs in
          let rsp =
            Trace.span tr ~parent:span ~node:r.r_node ~range:rg.rg_id
              "raft.replicate"
          in
          let propose_at = Sim.now t.sim in
          match Raft.propose raft cmd with
          | None ->
              Trace.annotate rsp "error" "not leader";
              Trace.finish tr rsp;
              `Not_leader
          | Some _ ->
              Ivar.on_fill done_ (fun () -> Trace.finish tr rsp);
              if replication_needs_wan t r then Phase.add_wan phases;
              Ivar.on_fill done_ (fun () ->
                  Phase.add phases Phase.Replication
                    (Sim.now t.sim - propose_at));
              (* Resolution has no error channel: on a lost proposal, give up
                 and let readers clean up the orphaned intents lazily. *)
              ignore
                (Proc.await_timeout t.sim done_ ~timeout:propose_timeout
                  : unit option);
              `Done leftover)

let resolve t ?span ?(phases = Phase.nil) ~gateway ~txn ~commit ~keys
    ~sync_all () =
  match keys with
  | [] -> ()
  | anchor_key :: _ ->
      (* Resolve one group of keys, chasing keys that end up owned by a
         different range than the one the group was formed against (splits
         and merges race resolution). Each round re-resolves the remaining
         keys' leaseholder; a few rounds bound pathological churn. *)
      let resolve_group ~phases ks =
        let rec go ks rounds =
          match ks with
          | [] -> ()
          | key :: _ ->
              let leftover =
                with_leaseholder t ~gateway ?span ~phases ~op:"kv.resolve" ~key
                  ~on_fail:(fun _ -> [])
                  (fun r sp ->
                    eval_resolve t r ~phases ~txn ~keys:ks ~commit ~span:sp)
              in
              if rounds > 0 then go leftover (rounds - 1)
        in
        go ks 4
      in
      (* Group keys by range, preserving the anchor first. *)
      let groups = Hashtbl.create 4 in
      let order = ref [] in
      List.iter
        (fun key ->
          match range_of_key t key with
          | rid -> (
              match Hashtbl.find_opt groups rid with
              | Some l -> l := key :: !l
              | None ->
                  Hashtbl.replace groups rid (ref [ key ]);
                  order := rid :: !order)
          | exception Not_found -> ())
        keys;
      let order = List.rev !order in
      let anchor_rid =
        match range_of_key t anchor_key with
        | rid -> rid
        | exception Not_found -> ( match order with [] -> -1 | rid :: _ -> rid)
      in
      let results =
        List.map
          (fun rid ->
            let ks = !(Hashtbl.find groups rid) in
            (* Only awaited resolutions may charge the operation's phase
               context: a fire-and-forget group completes after the caller
               has moved on (and possibly flushed the context). *)
            let phases =
              if rid = anchor_rid || sync_all then phases else Phase.nil
            in
            (rid, Proc.async t.sim (fun () -> resolve_group ~phases ks)))
          order
      in
      List.iter
        (fun (rid, iv) ->
          if rid = anchor_rid || sync_all then ignore (Proc.await iv))
        results

let eval_refresh t r ~txn ~key ~from_ts ~to_ts =
  ignore t;
  if r.r_range.rg_dropped || not (in_span r.r_range key) then `Range_mismatch
  else if not (is_leader_now r) then `Not_leader
  else begin
    let lock_conflict =
      match Lock_table.foreign r.r_lt ~key ~txn:(Some txn) ~max_ts:to_ts with
      | Some _ -> true
      | None -> false
    in
    let intent_conflict =
      match Mvcc.intent_on r.r_store ~key with
      | Some i when i.Mvcc.txn_id <> txn && Ts.(i.Mvcc.ts <= to_ts) -> true
      | Some _ | None -> false
    in
    if lock_conflict || intent_conflict then `Done false
    else if Mvcc.has_committed_after r.r_store ~key ~after:from_ts ~upto:to_ts
    then `Done false
    else begin
      Tscache.record_read r.r_range.rg_tscache ~txn:(Some txn) ~key ~ts:to_ts;
      `Done true
    end
  end

let refresh t ?span ?(phases = Phase.nil) ~gateway ~txn ~key ~from_ts ~to_ts
    () =
  with_leaseholder t ~gateway ?span ~phases ~op:"kv.refresh" ~key
    ~on_fail:(fun _ -> false)
    (fun r _sp -> eval_refresh t r ~txn ~key ~from_ts ~to_ts)

let eval_refresh_span t r ~txn ~start_key ~end_key ~from_ts ~to_ts =
  ignore t;
  if r.r_range.rg_dropped || not (in_span r.r_range start_key) then
    `Range_mismatch
  else if not (is_leader_now r) then `Not_leader
  else begin
    let start_key, end_key = clamp_span r.r_range ~start_key ~end_key in
    let lock_conflict =
      Lock_table.foreign_in_span r.r_lt ~start_key ~end_key ~txn:(Some txn)
        ~max_ts:to_ts
      <> None
    in
    let version_conflict =
      Mvcc.span_has_writes_in_window r.r_store ~start_key ~end_key
        ~after:from_ts ~upto:to_ts ~ignore_txn:(Some txn)
    in
    if lock_conflict || version_conflict then `Done false
    else begin
      Tscache.record_read_span r.r_range.rg_tscache ~txn:(Some txn) ~start_key
        ~end_key ~ts:to_ts;
      `Done true
    end
  end

let refresh_span t ?span ?(phases = Phase.nil) ~gateway ~txn ~start_key
    ~end_key ~from_ts ~to_ts () =
  (* Stitched like {!scan}: every range covering part of the request span
     must confirm the absence of conflicting writes in the window, however
     the span is carved up at validation time. *)
  let rec go cursor =
    if String.compare cursor end_key >= 0 then true
    else
      match next_covered t ~cursor ~end_key with
      | None -> true
      | Some cursor ->
          let ok, next =
            with_leaseholder t ~gateway ?span ~phases ~op:"kv.refresh_span"
              ~key:cursor
              ~on_fail:(fun _ -> (false, end_key))
              (fun r _sp ->
                match
                  eval_refresh_span t r ~txn ~start_key:cursor ~end_key
                    ~from_ts ~to_ts
                with
                | (`Not_leader | `Range_mismatch) as other -> other
                | `Done ok -> `Done (ok, snd r.r_range.rg_span))
          in
          if ok then go next else false
  in
  go start_key

let local_closed t ~at rid =
  let rg = range t rid in
  match replica_at rg at with
  | Some r -> replica_closed r
  | None -> Ts.zero

let negotiate t ~at ~keys =
  (* Group keys by range and query the nearest replica of each. *)
  let groups = Hashtbl.create 4 in
  List.iter
    (fun key ->
      match range_of_key t key with
      | rid -> (
          match Hashtbl.find_opt groups rid with
          | Some l -> l := key :: !l
          | None -> Hashtbl.replace groups rid (ref [ key ]))
      | exception Not_found -> ())
    keys;
  Hashtbl.fold
    (fun rid ks acc ->
      let rg = range t rid in
      let eval r =
        (* A valid leaseholder can serve any timestamp up to the present;
           followers are bounded by their closed timestamp. *)
        let base =
          if lease_valid t r then
            Ts.of_wall (Clock.physical_now t.clocks.(r.r_node))
          else replica_closed r
        in
        List.fold_left
          (fun safe key ->
            match Mvcc.intent_on r.r_store ~key with
            | Some i when Ts.(i.Mvcc.ts <= safe) -> Ts.prev i.Mvcc.ts
            | Some _ | None -> safe)
          base !ks
      in
      let result =
        match replica_at rg at with
        | Some r -> Some (eval r)
        | None -> (
            match nearest_replica t rid ~from:at with
            | None -> None
            | Some node -> (
                match replica_at rg node with
                | None -> None
                | Some r -> (
                    let reply =
                      Transport.rpc t.net ~src:at ~dst:node (fun out ->
                          Ivar.fill out (eval r))
                    in
                    Proc.await_timeout t.sim reply ~timeout:rpc_timeout)))
      in
      match result with None -> Ts.zero | Some ts -> Ts.min acc ts)
    groups Ts.max_value

(* ------------------------------------------------------------------ *)
(* Transaction record RPCs (coordinator side)                          *)

(* Every record operation is an ordinary routed RPC against the anchor
   key's leaseholder; the record lives in that range's replicated state and
   every transition returns the *applied* record status, which may differ
   from the requested transition when a racing decision won the log. *)

let heartbeat_txn t ?span ?phases ~gateway ~txn ~key () =
  txn_update t ~gateway ?span ?phases ~op:"kv.txn_heartbeat" ~txn ~key
    (Txnrec.U_heartbeat { hb = Sim.now t.sim })

let stage_txn t ?span ?phases ~gateway ~txn ~key ~pri ~ts ~inflight () =
  let st =
    txn_update t ~gateway ?span ?phases ~op:"kv.txn_stage" ~txn ~key
      (Txnrec.U_stage { pri; ts; inflight; hb = Sim.now t.sim })
  in
  (match st with
  | Some (Txnrec.Staging _) ->
      Obs.log_event t.obs ~node:gateway ~txn
        ~attrs:[ ("inflight", string_of_int (List.length inflight)) ]
        Events.Txn_staged
  | Some _ | None -> ());
  st

let commit_txn t ?span ?phases ~gateway ~txn ~key ~ts () =
  txn_update t ~gateway ?span ?phases ~op:"kv.txn_commit" ~txn ~key
    (Txnrec.U_commit { ts })

let abort_txn t ?span ?phases ~gateway ~txn ~key ~reason () =
  txn_update t ~gateway ?span ?phases ~op:"kv.txn_abort" ~txn ~key
    (Txnrec.U_coord_abort { reason })

let txn_status t ?span ?phases ~gateway ~txn ~key () =
  with_leaseholder t ~gateway ?span
    ~phases:(Option.value phases ~default:Phase.nil)
    ~op:"kv.txn_status" ~key
    ~on_fail:(fun _ -> None)
    (fun r _sp ->
      if r.r_range.rg_dropped || not (in_span r.r_range key) then
        `Range_mismatch
      else if not (is_leader_now r) then `Not_leader
      else `Done (Txnrec.status r.r_txns ~txn))

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)

let messages_sent t = Transport.messages_sent t.net

let diagnostics t =
  Printf.sprintf
    "lock_waits=%d intent_waits=%d pushes=%d wounds=%d conflict_timeouts=%d      lh_misses=%d rpc_timeouts=%d not_leader=%d"
    t.diag.d_lock_waits t.diag.d_intent_waits t.diag.d_pushes t.diag.d_wounds
    t.diag.d_conflict_timeouts t.diag.d_lh_misses t.diag.d_rpc_timeouts
    t.diag.d_not_leader

let storage_of t rid node =
  let rg = range t rid in
  Option.map (fun r -> r.r_store) (replica_at rg node)

let raft_of t rid node =
  let rg = range t rid in
  match replica_at rg node with
  | Some r -> (
      match r.r_raft with
      | Some raft -> Some (fun () -> Raft.applied_index raft)
      | None -> None)
  | None -> None

(* Shadow [create] so every cluster starts its closed-timestamp publishers. *)
let create ?config ~topology ~latency () =
  let t = create ?config ~topology ~latency () in
  start_publishers t;
  t

let debug_dump t rid =
  let rg = range t rid in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "range %d now=%d\n" rid (Sim.now t.sim));
  Hashtbl.iter
    (fun node r ->
      match r.r_raft with
      | None -> Buffer.add_string buf (Printf.sprintf "  n%d: no raft\n" node)
      | Some raft ->
          Buffer.add_string buf
            (Printf.sprintf
               "  n%d(%s) role=%s term=%d quiesced=%b alive=%b contact=%d                 lease_valid=%b commit=%d applied=%d\n"
               node
               (Topology.region_of t.topo node)
               (match Raft.role raft with
               | Raft.Leader -> "L"
               | Raft.Follower -> "F"
               | Raft.Candidate -> "C")
               (Raft.term raft) (Raft.quiesced raft)
               (Transport.is_alive t.net node)
               (Raft.last_quorum_contact raft)
               (lease_valid t r) (Raft.commit_index raft)
               (Raft.applied_index raft)))
    rg.rg_replicas;
  Buffer.contents buf
