(** Per-range transaction record table: the replicated commit arbiter.

    One [Txnrec.t] lives on every replica of every Range, holding the
    transaction records anchored in that range's span — a record is keyed to
    the transaction's {e anchor key} (its first write), so it lives exactly
    where that key lives and follows it through splits, merges, snapshots
    and restarts, like the MVCC store itself.

    Records are {e replicated state}: every transition is proposed into the
    range's Raft log (as an [Op_txn] command) and applied here, on every
    replica, through {!apply}. Transitions are first-decision-wins — once a
    record is [Committed] or [Aborted] no later update moves it — and the
    apply order of the anchor range's log is the total order that decides
    commit-vs-wound races. Callers (the anchor leaseholder's push/commit
    RPCs) propose an update, await its local apply, then re-read the record
    to learn which decision actually won.

    The [Staging] status implements parallel commits (§3 of the paper, after
    CRDB): the coordinator writes the record as [Staging] with its commit
    timestamp and the keys of still-in-flight intent writes, concurrently
    with those writes' replication. The transaction is {e implicitly
    committed} once the staging record and every declared write have
    replicated; an explicit [Committed] record is written asynchronously
    afterwards. A pusher finding a [Staging] record past its liveness
    threshold runs status recovery: verify every declared key (preventing
    unreplicated ones from ever applying), then finalize the record. *)

module Ts = Crdb_hlc.Timestamp

type status =
  | Pending
  | Staging of { ts : Ts.t; inflight : string list }
      (** parallel commit in progress: commit timestamp plus the keys whose
          intent writes were still unacknowledged when staging began *)
  | Committed of Ts.t  (** commit timestamp, for resolving leftover intents *)
  | Aborted of { reason : string; wound : bool }
      (** [wound] distinguishes a wound-wait abort (restartable, surfaced as
          [Wounded]) from other aborts (abandonment, explicit rollback). *)

type record = {
  tr_id : int;
  tr_key : string;  (** anchor key: the record lives where this key lives *)
  tr_pri : Ts.t;  (** wound-wait priority (first-attempt start timestamp) *)
  mutable tr_status : status;
  mutable tr_hb : int;  (** last coordinator heartbeat, simulated micros *)
}

(** One record transition, carried inside the anchor range's Raft log and
    applied deterministically on every replica. *)
type update =
  | U_register of { pri : Ts.t; hb : int }
      (** create a Pending record (first write / first push); no-op if the
          record already exists *)
  | U_heartbeat of { hb : int }  (** Pending/Staging only; ratchets [tr_hb] *)
  | U_stage of { pri : Ts.t; ts : Ts.t; inflight : string list; hb : int }
      (** Pending→Staging (or refresh an existing Staging); no-op once the
          record is Committed or Aborted *)
  | U_commit of { ts : Ts.t }  (** Pending/Staging→Committed *)
  | U_wound of { reason : string }
      (** Pending→Aborted[wound]; a Staging record can no longer be wounded
          — its fate belongs to status recovery *)
  | U_abandon of { reason : string; if_hb_before : int }
      (** Pending→Aborted iff [tr_hb <= if_hb_before]: the staleness check
          re-runs at apply time so a heartbeat that raced ahead of the
          abandonment in the log wins *)
  | U_recover_abort of { reason : string }
      (** Staging→Aborted[wound]: status recovery proved a declared write
          never replicated (and prevented it from ever applying) *)
  | U_coord_abort of { reason : string }
      (** coordinator rollback: Pending/Staging→Aborted; creates an aborted
          stub if no record exists, so late writes stay rejected *)

type t

val create : unit -> t

val apply : t -> txn:int -> key:string -> update -> unit
(** Apply one replicated transition for [txn] anchored at [key]. Must be
    called from the state-machine apply path only. *)

val find : t -> txn:int -> record option
val status : t -> txn:int -> status option
val priority : t -> txn:int -> (Ts.t * int) option
(** The wound-wait priority pair [(priority_ts, txn id)], if recorded. *)

val older : Ts.t * int -> Ts.t * int -> bool
(** [older a b]: does priority pair [a] beat (predate) [b]? Lexicographic on
    (timestamp, txn id); lower = older = wins. *)

val pending : t -> int
(** Number of Pending or Staging records (diagnostics). *)

val records : t -> record list
(** All records, unordered (introspection for tests). *)

(** {1 Range lifecycle} — mirrors [Mvcc]/[Lock_table] so records travel with
    their anchor key. *)

val copy : t -> t
(** Deep copy (Raft snapshot transfer). *)

val replace_with : t -> t -> unit
(** Snapshot install: make [t]'s contents a deep copy of the source. *)

val split_move : t -> into:t -> at:string -> unit
(** Move records anchored at keys [>= at] into the right-hand table. *)

val absorb : t -> from:t -> unit
(** Merge: deep-copy the subsumed right-hand table's records into [t]. *)

val clear : t -> unit
