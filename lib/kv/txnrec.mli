(** Transaction record registry: the commit arbiter for wound-wait.

    One registry per cluster models CRDB's replicated transaction records in
    simplified form: a record per transaction holding its status, wound-wait
    priority and last coordinator heartbeat. Status transitions are
    synchronous in simulated time (no yield between read and write), so the
    [try_commit] Pending→Committed transition is atomic with respect to every
    concurrent [push]: a transaction that has been wounded can never commit
    afterwards, and a committed transaction can never be wounded.

    Priorities order transactions for wound-wait: the pair
    [(priority timestamp, txn id)] compared lexicographically, lower = older =
    wins. A pusher strictly older than a Pending blocker wounds it; a younger
    pusher waits. Transactions that never registered (raw [Cluster.write]
    users, 1PC blind puts) get a stub record on first push with priority
    [Ts.zero] — effectively oldest, so they are never wounded and are only
    cleaned up once abandoned (no heartbeat within the liveness threshold). *)

module Ts = Crdb_hlc.Timestamp

type status =
  | Pending
  | Committed of Ts.t  (** commit timestamp, for resolving leftover intents *)
  | Aborted of { reason : string; wound : bool }
      (** [wound] distinguishes a wound-wait abort (restartable, surfaced as
          [Wounded]) from other aborts (abandonment, explicit rollback). *)

type t

val create : unit -> t

val register : t -> txn:int -> priority:Ts.t -> now:int -> unit
(** Create a Pending record with the given wound-wait priority timestamp.
    No-op if the transaction already has a record (retried registration). *)

val heartbeat : t -> txn:int -> now:int -> unit
(** Refresh the coordinator heartbeat; no-op unless the record is Pending. *)

val status : t -> txn:int -> status option
(** [None] means the transaction never registered and was never pushed. *)

val priority : t -> txn:int -> (Ts.t * int) option
(** The wound-wait priority pair [(priority_ts, txn id)], if registered. *)

val try_commit : t -> txn:int -> ts:Ts.t -> (unit, string) result
(** Atomically move Pending→Committed at [ts]. [Error reason] if the record
    was already Aborted (the caller must restart and must not resolve its
    intents as committed). Idempotent on Committed; [Ok] when no record
    exists (unregistered transactions commit unchecked, as before). *)

val abort : t -> txn:int -> reason:string -> unit
(** Move the record to [Aborted { wound = false }]. No-op on Committed, and
    on an existing abort (the first abort's reason wins). Creates an aborted
    record if none exists, so late writes by the transaction are rejected. *)

type verdict =
  | Wait  (** blocker is live and not younger than the pusher: queue behind *)
  | Wound of string
      (** pusher was strictly older: blocker is now Aborted; clean up its
          intent with [commit = None] *)
  | Cleanup of Ts.t option
      (** blocker already finished (or was abandoned and has now been
          aborted): resolve its intent, committed at [Some ts] or removed *)

val push : t -> blocker:int -> pusher:(Ts.t * int) option -> now:int -> liveness:int -> verdict
(** One push of [blocker] by [pusher] (None for non-transactional waiters,
    which never wound). An unknown blocker gets a stub record (see above)
    whose abandonment grace starts at this first push. A Pending blocker
    whose last heartbeat is older than [liveness] microseconds is declared
    abandoned and aborted. Pushing is idempotent — waiters re-push every
    [push_delay] until the conflict clears. *)

val pending : t -> int
(** Number of Pending records (diagnostics). *)
