(** Autopilot: load-driven background queues (split / merge / rebalance).

    CRDB's store queues in miniature (§3.2): once {!start}ed, every store
    runs a recurring scan over the ranges it currently leads and reshapes
    the cluster under traffic without operator involvement —

    - {e split queue}: a range whose windowed [kv.range.qps] rate exceeds
      [autopilot_split_qps], or whose live size exceeds
      [autopilot_split_bytes], is split at the {e load-based} split point
      ({!Crdb_kv.Cluster.load_split_point} — the weighted median of
      recently sampled request keys, falling back to the median live key);
    - {e merge queue}: adjacent pairs whose combined QPS and live size sit
      under the merge thresholds are merged back (the byte ceiling is kept
      well below the split trigger so the two queues cannot oscillate);
    - {e rebalance queue}: leases move to the least-loaded live voter of
      the best lease-preference rank
      ({!Crdb_kv.Allocator.preferred_leaseholder_by_load}), and the
      allocator moves replicas one step at a time
      ({!Crdb_kv.Cluster.rebalance_step}).

    Anti-thrash hysteresis: every action arms a per-range cooldown
    ([autopilot_cooldown]); a due-but-blocked action is logged as a
    [queue_skipped] event. A lease move must additionally reduce the
    donor's leaseholder load by [autopilot_min_improvement] {e and} by more
    than the moved range's own load, so the recipient can never end up
    hotter than the donor was — on a balanced topology the queues are
    provably no-ops.

    Ticks are plain simulator timers (no coroutine primitives), so the
    queues survive any nemesis interleaving: a killed store simply skips
    its scans until restarted, and every lifecycle call under a vanished
    leaseholder degrades to a no-op. All thresholds and the scan cadence
    come from the cluster's {!Crdb_kv.Cluster.config}. *)

type t

type stats = {
  mutable auto_splits : int;  (** splits decided by the split queue *)
  mutable auto_merges : int;  (** merges decided by the merge queue *)
  mutable lease_moves : int;  (** load-driven lease transfers *)
  mutable replica_moves : int;  (** allocator rebalance steps initiated *)
  mutable skips : int;  (** due actions suppressed by the cooldown *)
}

val start : Crdb_kv.Cluster.t -> t
(** Spawn one staggered recurring scan per store. Callable from outside any
    process context; scans begin within one [autopilot_scan_interval]. *)

val stop : t -> unit
(** Stop all scans after the currently scheduled ticks fire (idempotent;
    the queues take no further actions). *)

val stats : t -> stats
(** Live decision counters (the bench's convergence evidence). *)
