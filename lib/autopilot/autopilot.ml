module Sim = Crdb_sim.Sim
module Transport = Crdb_net.Transport
module Cluster = Crdb_kv.Cluster
module Allocator = Crdb_kv.Allocator
module Obs = Crdb_obs.Obs
module Events = Crdb_obs.Events
module Timeseries = Crdb_obs.Timeseries

(* The autopilot: per-store background queues that reshape the cluster
   under load, CRDB's split/merge/rebalance queues in miniature. Each store
   runs one recurring scan over the ranges it currently leads:

   - the split queue fires when a range's windowed QPS or live size crosses
     the configured thresholds, splitting at the load-based split point
     (the weighted median of recently sampled request keys);
   - the merge queue subsumes a cold right neighbor when the combined pair
     sits well under the split thresholds (the byte ceiling is a fraction
     of the split trigger, so split and merge cannot oscillate);
   - the rebalance queue moves leases toward the least-loaded preferred
     voter and lets the allocator move replicas, one step at a time.

   Every action arms a per-range cooldown; an action that is due but
   blocked by the cooldown is recorded as a [queue_skipped] event — the
   hysteresis that keeps the queues from thrashing. Ticks run as plain
   simulator timers (no coroutine primitives, nothing to await), so a
   killed node, a vanished leaseholder or a range dropped mid-scan can
   never wedge a queue: every lifecycle call degrades to a no-op. *)

type stats = {
  mutable auto_splits : int;
  mutable auto_merges : int;
  mutable lease_moves : int;
  mutable replica_moves : int;
  mutable skips : int;
}

type t = {
  cl : Cluster.t;
  mutable running : bool;
  last_action : (Cluster.range_id, int) Hashtbl.t;
  stats : stats;
}

let stats t = t.stats

(* Decisions react to the last few seconds of traffic, not the full
   retained minute: a shifted hot spot should re-trigger quickly. *)
let rate_window = 5_000_000

let qps t rid =
  let ts = Obs.timeseries (Cluster.obs t.cl) in
  Timeseries.rate ts ~range:rid ~window:rate_window "kv.range.qps"

let in_cooldown t now rid =
  match Hashtbl.find_opt t.last_action rid with
  | Some last -> now - last < (Cluster.config t.cl).Cluster.autopilot_cooldown
  | None -> false

let arm_cooldown t now rid = Hashtbl.replace t.last_action rid now

let skip t ~node ~rid ~queue =
  t.stats.skips <- t.stats.skips + 1;
  Obs.log_event (Cluster.obs t.cl) ~node ~range:rid
    ~attrs:[ ("queue", queue); ("reason", "cooldown") ]
    Events.Queue_skipped

let f1 v = Printf.sprintf "%.1f" v

(* Split queue: hot (QPS) or large (bytes) ranges split at the point that
   halves recent traffic. *)
let split_check t ~node ~now rid =
  let cfg = Cluster.config t.cl in
  let q = qps t rid in
  let bytes = Option.value ~default:0 (Cluster.live_bytes t.cl rid) in
  let reason =
    if q > cfg.Cluster.autopilot_split_qps then Some "qps"
    else if bytes > cfg.Cluster.autopilot_split_bytes then Some "bytes"
    else None
  in
  match reason with
  | None -> false
  | Some _ when in_cooldown t now rid ->
      skip t ~node ~rid ~queue:"split";
      false
  | Some reason -> (
      match Cluster.load_split_point t.cl rid with
      | None -> false
      | Some at -> (
          match Cluster.split_range t.cl rid ~at with
          | None -> false
          | Some new_rid ->
              t.stats.auto_splits <- t.stats.auto_splits + 1;
              arm_cooldown t now rid;
              arm_cooldown t now new_rid;
              Obs.log_event (Cluster.obs t.cl) ~node ~range:rid
                ~attrs:
                  [ ("at", at); ("reason", reason); ("qps", f1 q);
                    ("bytes", string_of_int bytes) ]
                Events.Split_queued;
              true))

(* Merge queue: subsume the right neighbor when the combined pair is cold
   and small. [Cluster.merge_range] itself rejects mismatched configs or a
   dead right leaseholder, so only the load policy lives here. *)
let merge_check t ~node ~now rid =
  let cfg = Cluster.config t.cl in
  let _, e = Cluster.span_of t.cl rid in
  let right =
    List.find_opt
      (fun r -> r <> rid && fst (Cluster.span_of t.cl r) = e)
      (Cluster.ranges t.cl)
  in
  match right with
  | None -> false
  | Some right_rid ->
      let combined_qps = qps t rid +. qps t right_rid in
      let combined_bytes =
        Option.value ~default:0 (Cluster.live_bytes t.cl rid)
        + Option.value ~default:0 (Cluster.live_bytes t.cl right_rid)
      in
      if
        not
          (combined_qps < cfg.Cluster.autopilot_merge_qps
          && combined_bytes < cfg.Cluster.autopilot_merge_bytes)
      then false
      else if in_cooldown t now rid || in_cooldown t now right_rid then begin
        skip t ~node ~rid ~queue:"merge";
        false
      end
      else if Cluster.merge_range t.cl rid then begin
        t.stats.auto_merges <- t.stats.auto_merges + 1;
        arm_cooldown t now rid;
        Obs.log_event (Cluster.obs t.cl) ~node ~range:rid
          ~attrs:
            [ ("right", string_of_int right_rid); ("qps", f1 combined_qps) ]
          Events.Merge_queued;
        true
      end
      else false

(* Lease queue: hand the lease to the least-loaded live voter of the best
   preference rank. A move must clear two bars — it fixes a preference
   violation, or it reduces this store's leaseholder load by the configured
   fraction AND by more than the range's own load (so the recipient cannot
   end up worse than the donor was: no ping-pong). *)
let lease_check t ~node ~now ~load rid =
  let cl = t.cl in
  let cfg = Cluster.config cl in
  let topology = Cluster.topology cl in
  let zone = Cluster.zone_of cl rid in
  let int_load id = int_of_float (1000.0 *. load id) in
  let target =
    Allocator.preferred_leaseholder_by_load ~topology
      ~live:(Transport.is_alive (Cluster.net cl))
      ~load:int_load ~zone
      (Cluster.replica_nodes cl rid)
  in
  match target with
  | None -> None
  | Some tgt when tgt = node -> None
  | Some tgt ->
      let rank = Allocator.lease_preference_rank ~topology ~zone in
      let l = load node and tl = load tgt and q = qps t rid in
      let due =
        rank tgt < rank node
        || l -. tl > cfg.Cluster.autopilot_min_improvement *. l
           && l -. tl > q
      in
      if not due then None
      else if in_cooldown t now rid then begin
        skip t ~node ~rid ~queue:"lease";
        None
      end
      else begin
        Cluster.transfer_lease cl rid ~target:tgt;
        t.stats.lease_moves <- t.stats.lease_moves + 1;
        arm_cooldown t now rid;
        Obs.log_event (Cluster.obs cl) ~node ~range:rid
          ~attrs:[ ("target", string_of_int tgt); ("reason", "load") ]
          Events.Lease_moved;
        Some (tgt, q)
      end

let scan_store t node =
  let cl = t.cl in
  let now = Sim.now (Cluster.sim cl) in
  let ts = Obs.timeseries (Cluster.obs cl) in
  (* Leaseholder load per node, from the same sliding window the split
     queue uses. Kept in a local table and adjusted as this scan moves
     leases, so one tick cannot dump every lease on the same target. *)
  let loads = Hashtbl.create 16 in
  let snapshot = Cluster.ranges cl in
  List.iter
    (fun rid ->
      match Cluster.leaseholder cl rid with
      | Some lh ->
          let cur =
            Option.value ~default:0.0 (Hashtbl.find_opt loads lh)
          in
          Hashtbl.replace loads lh (cur +. qps t rid)
      | None -> ())
    snapshot;
  let load id = Option.value ~default:0.0 (Hashtbl.find_opt loads id) in
  let replica_budget = ref 1 in
  List.iter
    (fun rid ->
      (* Splits and merges earlier in this scan reshape the range set;
         re-check that the snapshot entry is still a range we lead. *)
      if
        List.mem rid (Cluster.ranges cl)
        && Cluster.leaseholder cl rid = Some node
      then begin
        let ts_bytes = Cluster.live_bytes cl rid in
        (match ts_bytes with
        | Some b -> Timeseries.observe ts ~range:rid "kv.range.bytes" b
        | None -> ());
        let acted =
          split_check t ~node ~now rid || merge_check t ~node ~now rid
        in
        if not acted then begin
          (match lease_check t ~node ~now ~load rid with
          | Some (tgt, q) ->
              Hashtbl.replace loads node (load node -. q);
              Hashtbl.replace loads tgt (load tgt +. q)
          | None -> ());
          if
            !replica_budget > 0
            && (not (in_cooldown t now rid))
            && Cluster.rebalance_step cl rid
          then begin
            decr replica_budget;
            t.stats.replica_moves <- t.stats.replica_moves + 1;
            arm_cooldown t now rid
          end
        end
      end)
    snapshot

let rec tick t node =
  if t.running then begin
    let cl = t.cl in
    if Transport.is_alive (Cluster.net cl) node then scan_store t node;
    Sim.schedule (Cluster.sim cl)
      ~after:(Cluster.config cl).Cluster.autopilot_scan_interval
      (fun () -> tick t node)
  end

let start cl =
  let t =
    {
      cl;
      running = true;
      last_action = Hashtbl.create 32;
      stats =
        {
          auto_splits = 0;
          auto_merges = 0;
          lease_moves = 0;
          replica_moves = 0;
          skips = 0;
        };
    }
  in
  let cfg = Cluster.config cl in
  let n = Crdb_net.Topology.num_nodes (Cluster.topology cl) in
  for node = 0 to n - 1 do
    (* Staggered like the closed-timestamp publishers so stores never
       scan in lockstep. *)
    let offset = 1 + ((node * 7919) mod cfg.Cluster.autopilot_scan_interval) in
    Sim.schedule (Cluster.sim cl) ~after:offset (fun () -> tick t node)
  done;
  t

let stop t = t.running <- false
