module Sim = Crdb_sim.Sim
module Ivar = Crdb_sim.Ivar
module Rng = Crdb_stdx.Rng
module Obs = Crdb_obs.Obs
module Trace = Crdb_obs.Trace
module Metrics = Crdb_obs.Metrics

type t = {
  sim : Sim.t;
  topology : Topology.t;
  latency : Latency.t;
  jitter : float;
  rng : Rng.t;
  dead_since : (Topology.node_id, int) Hashtbl.t;
  (* Liveness epoch: bumped on every dead->alive transition (a process
     restart is a new incarnation, per CRDB's epoch-based node liveness). *)
  epochs : (Topology.node_id, int) Hashtbl.t;
  mutable partitions : (string * string) list;
  mutable messages_sent : int;
  obs : Obs.t;
  (* Per-node counters, cached so the per-message cost is an array index. *)
  c_sent : Metrics.counter array;
  c_dropped : Metrics.counter array;
  c_rpcs : Metrics.counter array;
  c_wan_msgs : Metrics.counter array;
  c_wan_rpcs : Metrics.counter array;
  h_delay : Crdb_stats.Hist.t;
}

let create ?(jitter = 0.05) ?rng ?(obs = Obs.null) ~sim ~topology ~latency () =
  let rng = match rng with Some r -> r | None -> Rng.create ~seed:0x5eed in
  let m = Obs.metrics obs in
  let n = Topology.num_nodes topology in
  {
    sim;
    topology;
    latency;
    jitter;
    rng;
    dead_since = Hashtbl.create 16;
    epochs = Hashtbl.create 16;
    partitions = [];
    messages_sent = 0;
    obs;
    c_sent = Array.init n (fun i -> Metrics.counter m ~node:i "net.msgs_sent");
    c_dropped = Array.init n (fun i -> Metrics.counter m ~node:i "net.msgs_dropped");
    c_rpcs = Array.init n (fun i -> Metrics.counter m ~node:i "net.rpcs");
    c_wan_msgs = Array.init n (fun i -> Metrics.counter m ~node:i "net.wan_msgs");
    c_wan_rpcs = Array.init n (fun i -> Metrics.counter m ~node:i "net.wan_rpcs");
    h_delay = Metrics.histogram m "net.delay";
  }

let sim t = t.sim
let obs t = t.obs
let topology t = t.topology
let latency t = t.latency
let is_alive t id = not (Hashtbl.mem t.dead_since id)
let dead_since t id = Hashtbl.find_opt t.dead_since id
let epoch t id = Option.value ~default:0 (Hashtbl.find_opt t.epochs id)

let base_delay t src dst =
  if src = dst then 25
  else
    let a = Topology.node t.topology src and b = Topology.node t.topology dst in
    if String.equal a.Topology.region b.Topology.region then
      if String.equal a.Topology.zone b.Topology.zone then
        Latency.intra_zone_rtt t.latency / 2
      else Latency.intra_region_rtt t.latency / 2
    else Latency.one_way t.latency a.Topology.region b.Topology.region

let delay t src dst =
  let base = base_delay t src dst in
  if t.jitter <= 0.0 then base
  else base + int_of_float (Rng.float t.rng (t.jitter *. float_of_int base))

let cross_region t src dst =
  src <> dst
  && not
       (String.equal
          (Topology.region_of t.topology src)
          (Topology.region_of t.topology dst))

let partitioned t src dst =
  let ra = Topology.region_of t.topology src
  and rb = Topology.region_of t.topology dst in
  List.exists
    (fun (a, b) ->
      (String.equal a ra && String.equal b rb)
      || (String.equal a rb && String.equal b ra))
    t.partitions

let send t ~src ~dst fn =
  if is_alive t src && not (partitioned t src dst) then begin
    t.messages_sent <- t.messages_sent + 1;
    Metrics.inc t.c_sent.(src);
    if cross_region t src dst then Metrics.inc t.c_wan_msgs.(src);
    let d = delay t src dst in
    Crdb_stats.Hist.add t.h_delay d;
    Sim.schedule t.sim ~after:d (fun () ->
        (* Re-check at delivery time: the destination may have died, or a
           partition may have formed, while the message was in flight. *)
        if is_alive t dst && not (partitioned t src dst) then fn ()
        else begin
          Metrics.inc t.c_dropped.(src);
          Trace.event (Obs.trace t.obs) ~node:src "net.drop"
            ~attrs:[ ("dst", string_of_int dst); ("at", "delivery") ]
        end)
  end
  else begin
    Metrics.inc t.c_dropped.(src);
    Trace.event (Obs.trace t.obs) ~node:src "net.drop"
      ~attrs:[ ("dst", string_of_int dst); ("at", "send") ]
  end

let rpc ?span ?(phases = Crdb_obs.Phase.nil) t ~src ~dst handler =
  Metrics.inc t.c_rpcs.(src);
  (* Hop accounting for the §6 latency model: a request/response exchange
     that crosses a region boundary is one WAN round trip charged to the
     issuing operation. *)
  if cross_region t src dst then begin
    Metrics.inc t.c_wan_rpcs.(src);
    Crdb_obs.Phase.add_wan phases
  end;
  let sp =
    Trace.span (Obs.trace t.obs) ?parent:span ~node:src "net.rpc"
  in
  Trace.annotate sp "dst" (string_of_int dst);
  let outer = Ivar.create () in
  Ivar.on_fill outer (fun _ -> Trace.finish (Obs.trace t.obs) sp);
  send t ~src ~dst (fun () ->
      let inner = Ivar.create () in
      Ivar.on_fill inner (fun v ->
          send t ~src:dst ~dst:src (fun () -> ignore (Ivar.try_fill outer v)));
      handler inner);
  outer

let messages_sent t = t.messages_sent
let kill_node t id = if is_alive t id then Hashtbl.replace t.dead_since id (Sim.now t.sim)
let revive_node t id =
  if not (is_alive t id) then begin
    Hashtbl.replace t.epochs id (epoch t id + 1);
    Hashtbl.remove t.dead_since id
  end

let kill_region t region =
  List.iter
    (fun n -> kill_node t n.Topology.id)
    (Topology.nodes_in_region t.topology region)

let revive_region t region =
  List.iter
    (fun n -> revive_node t n.Topology.id)
    (Topology.nodes_in_region t.topology region)

let kill_zone t ~region ~zone =
  List.iter
    (fun n -> kill_node t n.Topology.id)
    (Topology.nodes_in_zone t.topology region zone)

let revive_zone t ~region ~zone =
  List.iter
    (fun n -> revive_node t n.Topology.id)
    (Topology.nodes_in_zone t.topology region zone)

let same_pair a b (x, y) =
  (String.equal x a && String.equal y b) || (String.equal x b && String.equal y a)

let partition_regions t a b =
  if not (List.exists (same_pair a b) t.partitions) then
    t.partitions <- (a, b) :: t.partitions

let heal_partition t a b =
  t.partitions <- List.filter (fun p -> not (same_pair a b p)) t.partitions

let heal_partitions t = t.partitions <- []
