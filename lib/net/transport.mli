(** Simulated message transport with failure injection.

    Delivery of a message from node [a] to node [b] takes the one-way latency
    between their localities (plus optional jitter). A message is dropped —
    silently, as on a real network — when either endpoint is dead or the pair
    is partitioned at delivery time. RPCs are modeled as a request closure
    executed at the destination plus a reply ivar whose fill is delayed by
    the return path; a dropped message simply leaves the reply empty, so
    callers recover with {!Crdb_sim.Proc.await_timeout}. *)

type t

val create :
  ?jitter:float ->
  ?rng:Crdb_stdx.Rng.t ->
  ?obs:Crdb_obs.Obs.t ->
  sim:Crdb_sim.Sim.t ->
  topology:Topology.t ->
  latency:Latency.t ->
  unit ->
  t
(** [jitter] (default [0.05]) adds a uniform [0, jitter × delay) component to
    each one-way delay; pass [0.] for fully deterministic delays. [obs]
    (default {!Crdb_obs.Obs.null}) receives per-node [net.*] counters, the
    sampled-delay histogram, and — when tracing is enabled — send/drop
    events and rpc spans. *)

val sim : t -> Crdb_sim.Sim.t
val obs : t -> Crdb_obs.Obs.t
val topology : t -> Topology.t
val latency : t -> Latency.t

val delay : t -> Topology.node_id -> Topology.node_id -> int
(** Sampled one-way delay in microseconds for a message sent now. *)

val send : t -> src:Topology.node_id -> dst:Topology.node_id -> (unit -> unit) -> unit
(** Deliver the closure at [dst] after the one-way delay, unless dropped. *)

val cross_region : t -> Topology.node_id -> Topology.node_id -> bool
(** Whether the two nodes live in different regions — i.e. whether a message
    between them traverses the WAN. *)

val rpc :
  ?span:Crdb_obs.Trace.span ->
  ?phases:Crdb_obs.Phase.ctx ->
  t ->
  src:Topology.node_id ->
  dst:Topology.node_id ->
  ('a Crdb_sim.Ivar.t -> unit) ->
  'a Crdb_sim.Ivar.t
(** [rpc t ~src ~dst handler] runs [handler reply] at [dst]; when the handler
    fills [reply], the result travels back and fills the returned ivar.
    [span] parents the recorded [net.rpc] span (finished when the reply
    lands; an RPC whose reply is dropped leaves no span). A cross-region RPC
    charges one WAN round trip to [phases] (and the per-node [net.wan_rpcs]
    counter) at issue time. *)

val messages_sent : t -> int

(** {2 Failure injection} *)

val kill_node : t -> Topology.node_id -> unit
(** Stop delivering messages to or from the node. [kill_node] followed by
    {!revive_node} models a {e process restart}: the transport only governs
    reachability, so state that would live on disk in a real node (Raft log
    and term, applied MVCC data) survives, while in-memory state must be
    discarded by the layers that own it (see [Crdb_kv.Cluster.restart_node],
    which pairs the revival with a volatile-state reset). *)

val revive_node : t -> Topology.node_id -> unit
val is_alive : t -> Topology.node_id -> bool
val kill_region : t -> string -> unit
val revive_region : t -> string -> unit
val kill_zone : t -> region:string -> zone:string -> unit
val revive_zone : t -> region:string -> zone:string -> unit

val partition_regions : t -> string -> string -> unit
(** Drop all traffic between the two regions (both directions). Idempotent:
    repeating an existing pair does not stack duplicate entries. *)

val heal_partition : t -> string -> string -> unit
(** Heal the partition between one region pair (order-insensitive); other
    partitions stay in force. *)

val heal_partitions : t -> unit
(** Heal every partition at once. *)

val dead_since : t -> Topology.node_id -> int option
(** Simulation time at which the node died, if currently dead. Used by the
    liveness oracle to model failure-detection delay. *)

val epoch : t -> Topology.node_id -> int
(** Liveness epoch of the node: incremented on every dead->alive transition.
    Models CRDB's epoch-based node liveness — trust placed in a node under an
    earlier incarnation (e.g. a quiesced follower's belief that its leader
    still holds the range) must be revalidated after a restart. *)
