open Cc
module Cluster = Crdb_kv.Cluster
module Ts = Crdb_hlc.Timestamp
module Proc = Crdb_sim.Proc
module Obs = Crdb_obs.Obs
module Trace = Crdb_obs.Trace
module Metrics = Crdb_obs.Metrics
module Phase = Crdb_obs.Phase
module Hist = Crdb_stats.Hist

(* The public transaction API is a thin dispatcher over the
   concurrency-control interface ({!Cc.S}): the backend is chosen
   per-cluster by [Cluster.config.cc_mode] at manager creation, and every
   per-transaction operation routes through it. [run]'s retry loop, the
   read-only transaction paths and the statistics are protocol-independent
   and live here. *)

module Options = Cc.Options

type manager = Cc.manager

type stats = Cc.stats = {
  mutable commits : int;
  mutable restarts : int;
  mutable wounds : int;
  mutable reader_commit_waits : int;
  mutable writer_commit_wait_micros : int;
}

let create_manager cl =
  let obs = Cluster.obs cl in
  let m = Obs.metrics obs in
  let n = Crdb_net.Topology.num_nodes (Cluster.topology cl) in
  let per_node name = Array.init n (fun node -> Metrics.counter m ~node name) in
  let cfg = Cluster.config cl in
  {
    cl;
    mode = cfg.Cluster.cc_mode;
    next_txn_id = 1;
    opts = Options.default;
    stats =
      {
        commits = 0;
        restarts = 0;
        wounds = 0;
        reader_commit_waits = 0;
        writer_commit_wait_micros = 0;
      };
    obs;
    c_attempts = per_node "txn.attempts";
    c_commits = per_node "txn.commits";
    c_restarts = per_node "txn.restarts";
    c_wounds = per_node "txn.wounds";
    c_refreshes = per_node "txn.refreshes";
    c_reader_waits = per_node "txn.reader_waits";
    h_commit_wait = Metrics.histogram m "txn.commit_wait";
    epoch_interval = cfg.Cluster.epoch_interval;
    epoch_waiters = [];
    epoch_running = false;
    c_epoch_ticks = Metrics.counter m "txn.epoch_ticks";
    c_epoch_commits = per_node "txn.epoch_commits";
    c_epoch_validation_failures = per_node "txn.epoch_validation_failures";
  }

let cluster mgr = mgr.cl
let cc_mode mgr = mgr.mode
let stats mgr = mgr.stats
let set_options mgr opts = mgr.opts <- opts
let options mgr = mgr.opts

(* Backend dispatch: both backends share all [Cc.attempt] state, so
   resolving the first-class module per call is pure control flow — no
   allocation of per-transaction closures, no simulated time. *)
let backend mgr : (module Cc.S) =
  match mgr.mode with
  | `Wound_wait -> (module Cc_wound_wait)
  | `Epoch_occ -> (module Cc_epoch_occ)

type t = Cc.attempt

type error = Aborted of string | Unavailable of string

let pp_error ppf = function
  | Aborted m -> Format.fprintf ppf "aborted: %s" m
  | Unavailable m -> Format.fprintf ppf "unavailable: %s" m

exception Restart = Cc.Restart
exception Wounded = Cc.Wounded
exception Fatal = Cc.Fatal
exception Indeterminate = Cc.Indeterminate

let read_ts (t : t) = t.read_ts
let txn_id (t : t) = t.id
let gateway (t : t) = t.gw

let get (t : t) key =
  let (module B : Cc.S) = backend t.mgr in
  B.get t key

let scan (t : t) ~start_key ~end_key ?limit () =
  let (module B : Cc.S) = backend t.mgr in
  B.scan t ~start_key ~end_key ?limit ()

let put (t : t) key value =
  let (module B : Cc.S) = backend t.mgr in
  B.write t key (Some value)

let delete (t : t) key =
  let (module B : Cc.S) = backend t.mgr in
  B.write t key None

let get_for_update (t : t) key =
  let (module B : Cc.S) = backend t.mgr in
  B.get_locked t Exclusive key

let get_for_share (t : t) key =
  let (module B : Cc.S) = backend t.mgr in
  B.get_locked t Shared key

type attempt_outcome =
  | Attempt_committed of Ts.t
  | Attempt_aborted of string
  | Attempt_indeterminate of string * Ts.t

(* The outcome of an attempt the client lost track of: before the commit
   record could have been proposed the abort is authoritative; after, the
   transaction may have committed at the timestamp the commit was initiated
   with. *)
let failed_attempt_outcome (t : t) reason =
  if t.commit_initiated then
    Attempt_indeterminate (reason, Ts.max t.read_ts t.write_ts)
  else Attempt_aborted reason

let report on_attempt t outcome =
  match on_attempt with None -> () | Some f -> f t outcome

let run mgr ~gateway ?(max_attempts = 25) ?phases ?on_attempt body =
  let (module B : Cc.S) = backend mgr in
  let sim = Cluster.sim mgr.cl in
  let tr = Obs.trace mgr.obs in
  (* A caller-supplied phase context is accumulated into but never flushed
     here (the caller owns its lifetime, e.g. to aggregate several
     transactions into one op class); a self-created one is flushed into the
     [phase.txn.*] histograms when the run completes. *)
  let own_ctx = Option.is_none phases in
  let phases =
    match phases with Some p -> p | None -> Phase.make ()
  in
  let backoff n =
    let d = 1_000 * n in
    Phase.add phases Phase.Retry_backoff d;
    Proc.sleep sim d
  in
  let root = Trace.span tr ~node:gateway "txn.run" in
  (* The rollback of a failed attempt uncovered a racing recovery that had
     already committed it: its intents were just resolved as committed, and
     retrying the body would write them a second time. The body's result
     was lost with the exception, so report the commit to the attempt
     observer and fail the call as ambiguous rather than fabricate a
     success. *)
  let recovered_committed (t : t) n reason cts =
    report on_attempt t (Attempt_committed cts);
    Trace.annotate t.sp "committed_by_recovery" (Ts.to_string cts);
    Trace.annotate t.sp "restart" reason;
    Trace.finish tr t.sp;
    (n, Error (Unavailable ("committed by recovery: " ^ reason)))
  in
  let rec attempt n ~pri =
    let t = B.begin_attempt ?priority:pri ~phases mgr ~gateway in
    (* Retries inherit the first attempt's birth timestamp as their
       wound-wait priority, so a restarted transaction keeps aging instead
       of being reborn young and re-wounded (starvation freedom). *)
    let pri = match pri with Some _ -> pri | None -> Some t.read_ts in
    t.sp <- Trace.span tr ~parent:root ~node:gateway ~txn:t.id "txn.attempt";
    match
      let result = body t in
      B.commit t;
      result
    with
    | result ->
        report on_attempt t (Attempt_committed (Ts.max t.read_ts t.write_ts));
        Trace.finish tr t.sp;
        (n, Ok result)
    | exception Restart reason -> (
        match B.abort t with
        | Some cts -> recovered_committed t n reason cts
        | None ->
            report on_attempt t (failed_attempt_outcome t reason);
            mgr.stats.restarts <- mgr.stats.restarts + 1;
            Metrics.inc mgr.c_restarts.(gateway);
            Trace.annotate t.sp "restart" reason;
            Trace.finish tr t.sp;
            if n >= max_attempts then (n, Error (Unavailable reason))
            else begin
              (* Small randomized backoff to break livelocks between
                 retries. *)
              backoff n;
              attempt (n + 1) ~pri
            end)
    | exception Wounded reason -> (
        match B.abort t with
        | Some cts -> recovered_committed t n reason cts
        | None ->
            report on_attempt t (failed_attempt_outcome t reason);
            mgr.stats.restarts <- mgr.stats.restarts + 1;
            mgr.stats.wounds <- mgr.stats.wounds + 1;
            Metrics.inc mgr.c_restarts.(gateway);
            Metrics.inc mgr.c_wounds.(gateway);
            Trace.annotate t.sp "wounded" reason;
            Trace.finish tr t.sp;
            if n >= max_attempts then (n, Error (Unavailable reason))
            else begin
              backoff n;
              attempt (n + 1) ~pri
            end)
    | exception Indeterminate reason ->
        (* The commit's fate could not be learned (the anchor range stayed
           unreachable): the attempt may have committed, so neither
           resolving its intents as aborted nor retrying the body is
           sound. Leave the record and intents alone — pushers will
           eventually recover them — and surface the ambiguity. *)
        t.finished <- true;
        report on_attempt t (failed_attempt_outcome t reason);
        Trace.annotate t.sp "indeterminate" reason;
        Trace.finish tr t.sp;
        (n, Error (Unavailable reason))
    | exception Fatal reason -> (
        match B.abort t with
        | Some cts -> recovered_committed t n reason cts
        | None ->
            report on_attempt t (failed_attempt_outcome t reason);
            Trace.annotate t.sp "fatal" reason;
            Trace.finish tr t.sp;
            (n, Error (Unavailable reason)))
    | exception e ->
        ignore (B.abort t : Ts.t option);
        Trace.finish tr t.sp;
        Trace.finish tr root;
        raise e
  in
  let attempts, result = attempt 1 ~pri:None in
  Trace.annotate root "attempts" (string_of_int attempts);
  Trace.annotate root "result"
    (match result with Ok _ -> "committed" | Error _ -> "failed");
  Phase.annotate phases root;
  Trace.finish tr root;
  if own_ctx then Phase.flush phases ~cls:"txn" (Obs.metrics mgr.obs);
  result

let run_blind_put mgr ~gateway ?(max_attempts = 25) ?phases key value =
  let tr = Obs.trace mgr.obs in
  let own_ctx = Option.is_none phases in
  let phases = match phases with Some p -> p | None -> Phase.make () in
  let root = Trace.span tr ~node:gateway "txn.blind_put" in
  let rec attempt n =
    let id = mgr.next_txn_id in
    mgr.next_txn_id <- id + 1;
    Metrics.inc mgr.c_attempts.(gateway);
    let asp = Trace.span tr ~parent:root ~node:gateway ~txn:id "txn.attempt" in
    let ts = Cluster.now_ts mgr.cl gateway in
    match
      Cluster.write_and_commit mgr.cl ~span:asp ~phases ~gateway ~txn:id ~key
        ~value:(Some value) ~ts ()
    with
    | Ok commit_ts ->
        let wsp =
          Trace.span tr ~parent:asp ~node:gateway ~txn:id "txn.commit_wait"
        in
        let waited = Cc_base.commit_wait mgr ~gw:gateway commit_ts in
        Trace.annotate wsp "waited_us" (string_of_int waited);
        Trace.finish tr wsp;
        Phase.add phases Phase.Commit_wait waited;
        Hist.add mgr.h_commit_wait waited;
        mgr.stats.writer_commit_wait_micros <-
          mgr.stats.writer_commit_wait_micros + waited;
        mgr.stats.commits <- mgr.stats.commits + 1;
        Metrics.inc mgr.c_commits.(gateway);
        Trace.finish tr asp;
        Ok ()
    | Error reason ->
        mgr.stats.restarts <- mgr.stats.restarts + 1;
        Metrics.inc mgr.c_restarts.(gateway);
        Trace.annotate asp "restart" reason;
        Trace.finish tr asp;
        if n >= max_attempts then Error (Unavailable reason)
        else begin
          Phase.add phases Phase.Retry_backoff (1_000 * n);
          Proc.sleep (Cluster.sim mgr.cl) (1_000 * n);
          attempt (n + 1)
        end
  in
  let result = attempt 1 in
  Phase.annotate phases root;
  Trace.finish tr root;
  if own_ctx then Phase.flush phases ~cls:"txn" (Obs.metrics mgr.obs);
  result

(* ------------------------------------------------------------------ *)
(* Read-only transactions                                              *)

type ro =
  | Ro_stale of { mgr : manager; gw : int; ts : Ts.t }
  | Ro_fresh of t

let ro_ts = function Ro_stale { ts; _ } -> ts | Ro_fresh t -> t.read_ts

let stale_get (mgr : manager) ~gw ~ts key =
  match
    Cluster.read_follower mgr.cl ~at:gw ~txn:None ~key ~ts ~max_ts:ts ()
  with
  | Cluster.Read_value { value; _ } -> value
  | Cluster.Read_redirect -> (
      (* Not closed (or blocked by an intent) locally: the leaseholder can
         always serve a read below present time. *)
      match Cluster.read mgr.cl ~gateway:gw ~txn:None ~key ~ts ~max_ts:ts () with
      | Cluster.Read_value { value; _ } -> value
      | Cluster.Read_uncertain _ ->
          (* Impossible: the uncertainty window [ts, ts] is empty. *)
          assert false
      | Cluster.Read_redirect -> raise (Fatal "leaseholder redirected")
      | Cluster.Read_wounded e | Cluster.Read_err e -> raise (Fatal e))
  | Cluster.Read_uncertain _ -> assert false
  | Cluster.Read_wounded e | Cluster.Read_err e -> raise (Fatal e)

let stale_scan (mgr : manager) ~gw ~ts ~start_key ~end_key ~limit =
  match
    Cluster.scan_follower mgr.cl ~at:gw ~txn:None ~start_key ~end_key ~ts
      ~max_ts:ts ~limit ()
  with
  | Cluster.Scan_rows rows -> rows
  | Cluster.Scan_redirect -> (
      match
        Cluster.scan mgr.cl ~gateway:gw ~txn:None ~start_key ~end_key ~ts
          ~max_ts:ts ~limit ()
      with
      | Cluster.Scan_rows rows -> rows
      | Cluster.Scan_uncertain _ -> assert false
      | Cluster.Scan_redirect -> raise (Fatal "leaseholder redirected")
      | Cluster.Scan_wounded e | Cluster.Scan_err e -> raise (Fatal e))
  | Cluster.Scan_uncertain _ -> assert false
  | Cluster.Scan_wounded e | Cluster.Scan_err e -> raise (Fatal e)

let ro_get ro key =
  match ro with
  | Ro_stale { mgr; gw; ts } -> stale_get mgr ~gw ~ts key
  | Ro_fresh t -> get t key

let ro_scan ro ~start_key ~end_key ?limit () =
  match ro with
  | Ro_stale { mgr; gw; ts } ->
      stale_scan mgr ~gw ~ts ~start_key ~end_key ~limit
  | Ro_fresh t -> scan t ~start_key ~end_key ?limit ()

let run_stale_exact mgr ~gateway ~ts body =
  body (Ro_stale { mgr; gw = gateway; ts })

let run_stale_bounded mgr ~gateway ~max_staleness ~keys body =
  let now = Cluster.now_ts mgr.cl gateway in
  let min_ts = Ts.of_wall (max 1 (Ts.wall now - max_staleness)) in
  let negotiated = Cluster.negotiate mgr.cl ~at:gateway ~keys in
  (* Use the freshest locally servable timestamp within the bound; never a
     future one (that would force a commit wait on a read). *)
  let ts =
    if Ts.(negotiated >= min_ts) then Ts.min negotiated now else min_ts
  in
  body (Ro_stale { mgr; gw = gateway; ts })

let run_fresh_read mgr ~gateway ?max_attempts ?phases body =
  run mgr ~gateway ?max_attempts ?phases (fun t -> body (Ro_fresh t))
