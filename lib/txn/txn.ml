module Cluster = Crdb_kv.Cluster
module Txnrec = Crdb_kv.Txnrec
module Ts = Crdb_hlc.Timestamp
module Clock = Crdb_hlc.Clock
module Proc = Crdb_sim.Proc
module Obs = Crdb_obs.Obs
module Trace = Crdb_obs.Trace
module Metrics = Crdb_obs.Metrics
module Phase = Crdb_obs.Phase
module Hist = Crdb_stats.Hist
module Sim = Crdb_sim.Sim

module Options = struct
  type t = {
    hold_locks_during_commit_wait : bool;
        (* Spanner-style ablation: resolve intents only after commit wait *)
    pipelined_writes : bool;
    parallel_commits : bool;
        (* stage the commit record concurrently with the in-flight intent
           writes' replication (CRDB parallel commits); off, the commit
           record is only written after every intent has replicated *)
    unsafe_no_refresh : bool;
        (* deliberately broken mode: timestamp pushes skip read-span
           validation, so stale reads can commit (the serializability checker
           must catch the resulting anti-dependency cycles) *)
  }

  let default =
    {
      hold_locks_during_commit_wait = false;
      pipelined_writes = true;
      parallel_commits = true;
      unsafe_no_refresh = false;
    }
end

type stats = {
  mutable commits : int;
  mutable restarts : int;
  mutable wounds : int;
  mutable reader_commit_waits : int;
  mutable writer_commit_wait_micros : int;
}

type manager = {
  cl : Cluster.t;
  mutable next_txn_id : int;
  stats : stats;
  mutable opts : Options.t;
  obs : Obs.t;
  c_attempts : Metrics.counter array;
  c_commits : Metrics.counter array;
  c_restarts : Metrics.counter array;
  c_wounds : Metrics.counter array;
  c_refreshes : Metrics.counter array;
  c_reader_waits : Metrics.counter array;
  h_commit_wait : Hist.t;
}

let create_manager cl =
  let obs = Cluster.obs cl in
  let m = Obs.metrics obs in
  let n = Crdb_net.Topology.num_nodes (Cluster.topology cl) in
  let per_node name = Array.init n (fun node -> Metrics.counter m ~node name) in
  {
    cl;
    next_txn_id = 1;
    opts = Options.default;
    stats =
      {
        commits = 0;
        restarts = 0;
        wounds = 0;
        reader_commit_waits = 0;
        writer_commit_wait_micros = 0;
      };
    obs;
    c_attempts = per_node "txn.attempts";
    c_commits = per_node "txn.commits";
    c_restarts = per_node "txn.restarts";
    c_wounds = per_node "txn.wounds";
    c_refreshes = per_node "txn.refreshes";
    c_reader_waits = per_node "txn.reader_waits";
    h_commit_wait = Metrics.histogram m "txn.commit_wait";
  }

let cluster mgr = mgr.cl
let stats mgr = mgr.stats
let set_options mgr opts = mgr.opts <- opts
let options mgr = mgr.opts

(* Deprecated shims over {!set_options}; kept so existing callers compile. *)
let set_hold_locks_during_commit_wait mgr v =
  mgr.opts <- { mgr.opts with Options.hold_locks_during_commit_wait = v }

let set_pipelined_writes mgr v =
  mgr.opts <- { mgr.opts with Options.pipelined_writes = v }

let set_parallel_commits mgr v =
  mgr.opts <- { mgr.opts with Options.parallel_commits = v }

let set_unsafe_no_refresh mgr v =
  mgr.opts <- { mgr.opts with Options.unsafe_no_refresh = v }

type read_span = Point of string | Span of string * string

type t = {
  mgr : manager;
  id : int;
  gw : int;
  pri : Ts.t; (* wound-wait priority: first-attempt birth timestamp *)
  mutable read_ts : Ts.t;
  max_ts : Ts.t; (* uncertainty upper bound; never changes (§6.1) *)
  mutable write_ts : Ts.t;
  mutable reads : read_span list;
  mutable writes : string list; (* newest first; the anchor is the oldest *)
  mutable anchor : string option;
      (* first written key: where the transaction record lives; [None]
         until the first write succeeds (read-only txns have no record) *)
  mutable outstanding : (string * Cluster.write_ack Crdb_sim.Ivar.t) list;
      (* pipelined write acks, keyed for read-your-own-writes *)
  mutable fate_ : Cluster.fate;
      (* the coordinator's own view of its fate, fed by heartbeat RPC
         responses; threaded as a closure into every KV op so a wounded
         transaction cancels its in-flight requests *)
  mutable finished : bool; (* stops the heartbeat loop *)
  mutable observed_future : bool;
  mutable commit_initiated : bool;
      (* the commit record may have been proposed: a failure after this
         point leaves the outcome indeterminate, not aborted *)
  mutable sp : Trace.span;  (* this attempt's span; KV ops parent under it *)
  phases : Phase.ctx;
      (* phase-latency accumulator shared by every attempt of one [run];
         KV ops charge Routing/Lease_wait/Lock_wait/Replication into it,
         the coordinator charges Refresh/Commit_wait/Retry_backoff *)
}

let fate_of t () = t.fate_

type error = Aborted of string | Unavailable of string

let pp_error ppf = function
  | Aborted m -> Format.fprintf ppf "aborted: %s" m
  | Unavailable m -> Format.fprintf ppf "unavailable: %s" m

exception Restart of string

exception Wounded of string
(* wound-wait: an older transaction aborted this one to break a deadlock;
   restartable like [Restart], but counted separately *)

exception Fatal of string

exception Indeterminate of string
(* raised only after the commit record may have been proposed, when its
   fate could not be learned from the record either: the attempt may have
   committed, so neither rolling back its intents nor retrying the body is
   sound. Internal: {!run} converts it into an [Unavailable] error and an
   [Attempt_indeterminate] outcome without touching the intents. *)

let read_ts t = t.read_ts
let txn_id t = t.id
let gateway t = t.gw

(* ------------------------------------------------------------------ *)
(* Read refresh (§5.1)                                                 *)

let refresh_all t ~to_ts =
  if t.mgr.opts.Options.unsafe_no_refresh then ()
  else begin
  (* Validate every read span in parallel (CRDB batches the refresh). *)
  let sim = Cluster.sim t.mgr.cl in
  Metrics.inc t.mgr.c_refreshes.(t.gw);
  let start = Sim.now sim in
  let results =
    List.map
      (fun span ->
        Proc.async_catch sim (fun () ->
            match span with
            | Point key ->
                Cluster.refresh t.mgr.cl ~span:t.sp ~phases:t.phases
                  ~gateway:t.gw ~txn:t.id ~key ~from_ts:t.read_ts ~to_ts ()
            | Span (start_key, end_key) ->
                Cluster.refresh_span t.mgr.cl ~span:t.sp ~phases:t.phases
                  ~gateway:t.gw ~txn:t.id ~start_key ~end_key
                  ~from_ts:t.read_ts ~to_ts ()))
      t.reads
  in
  let ok = List.for_all Proc.await_catch results in
  Phase.add t.phases Phase.Refresh (Sim.now sim - start);
  if not ok then raise (Restart "read refresh failed")
  end

let bump_and_refresh t new_ts =
  if Ts.(new_ts > t.read_ts) then begin
    if t.reads <> [] then refresh_all t ~to_ts:new_ts;
    t.read_ts <- new_ts;
    (* A value above the local hybrid clock is a future-time (synthetic)
       write: the reader must commit-wait before completing (§6.2).
       Present-time (Lag) values were already folded into the clock by the
       HLC receive rule at the call site, so they never trip this. *)
    let clock = Cluster.clock t.mgr.cl t.gw in
    if
      Ts.(new_ts > Clock.last clock)
      && Ts.wall new_ts > Clock.physical_now clock
    then t.observed_future <- true
  end

(* ------------------------------------------------------------------ *)
(* Reads                                                               *)

let is_global t key =
  match Cluster.range_of_key t.mgr.cl key with
  | rid -> (
      match Cluster.policy_of t.mgr.cl rid with
      | Cluster.Lead -> true
      | Cluster.Lag _ -> false)
  | exception Not_found -> raise (Fatal ("no range for key " ^ key))

let restartable_read_error e =
  (* Conflict timeouts and unavailability are worth a fresh attempt. *)
  raise (Restart e)

let get t key =
  let rec go attempts =
    if attempts > 20 then raise (Restart "uncertainty loop");
    let own_write = List.mem key t.writes in
    (* Read-your-own-writes under pipelining: wait for in-flight intents on
       this key to apply before reading it. *)
    if own_write then
      List.iter
        (fun (k, ack) ->
          if String.equal k key then
            match
              Proc.await_timeout (Cluster.sim t.mgr.cl) ack ~timeout:8_000_000
            with
            | Some `Applied -> ()
            | Some `Prevented ->
                raise (Wounded ("write prevented by recovery on " ^ key))
            | Some `Dropped | None -> raise (Restart "pipelined write lost"))
        t.outstanding;
    let leaseholder_read () =
      Cluster.read t.mgr.cl ~inline_bump:(t.reads = []) ~span:t.sp
        ~phases:t.phases ~pri:t.pri ~fate:(fate_of t) ~gateway:t.gw
        ~txn:(Some t.id) ~key ~ts:t.read_ts ~max_ts:t.max_ts ()
    in
    let result =
      if is_global t key && not own_write then
        match
          Cluster.read_follower t.mgr.cl ~span:t.sp ~phases:t.phases ~at:t.gw
            ~txn:(Some t.id) ~key ~ts:t.read_ts ~max_ts:t.max_ts ()
        with
        | Cluster.Read_redirect -> leaseholder_read ()
        | r -> r
      else leaseholder_read ()
    in
    match result with
    | Cluster.Read_value { value; _ } ->
        t.reads <- Point key :: t.reads;
        value
    | Cluster.Read_uncertain { value_ts } ->
        (* HLC receive rule on the response: a present-time uncertain value
           ratchets the gateway clock. Synthetic (future-time) timestamps
           from global tables must not — they force a real commit-wait. *)
        if not (is_global t key) then
          Clock.update (Cluster.clock t.mgr.cl t.gw) value_ts;
        bump_and_refresh t value_ts;
        go (attempts + 1)
    | Cluster.Read_redirect -> go (attempts + 1)
    | Cluster.Read_wounded reason -> raise (Wounded reason)
    | Cluster.Read_err e -> restartable_read_error e
  in
  go 0

let scan t ~start_key ~end_key ?limit () =
  let rec go attempts =
    if attempts > 20 then raise (Restart "uncertainty loop");
    let range_is_global =
      match Cluster.range_of_key t.mgr.cl start_key with
      | rid -> (
          match Cluster.policy_of t.mgr.cl rid with
          | Cluster.Lead -> true
          | Cluster.Lag _ -> false)
      | exception Not_found -> raise (Fatal ("no range for key " ^ start_key))
    in
    let leaseholder_scan () =
      Cluster.scan t.mgr.cl ~span:t.sp ~phases:t.phases ~pri:t.pri
        ~fate:(fate_of t) ~gateway:t.gw ~txn:(Some t.id) ~start_key ~end_key
        ~ts:t.read_ts ~max_ts:t.max_ts ~limit ()
    in
    let result =
      if range_is_global && t.writes = [] then
        match
          Cluster.scan_follower t.mgr.cl ~span:t.sp ~phases:t.phases ~at:t.gw
            ~txn:(Some t.id) ~start_key ~end_key ~ts:t.read_ts ~max_ts:t.max_ts
            ~limit ()
        with
        | Cluster.Scan_redirect -> leaseholder_scan ()
        | r -> r
      else leaseholder_scan ()
    in
    match result with
    | Cluster.Scan_rows rows ->
        t.reads <- Span (start_key, end_key) :: t.reads;
        rows
    | Cluster.Scan_uncertain { value_ts } ->
        if not range_is_global then
          Clock.update (Cluster.clock t.mgr.cl t.gw) value_ts;
        bump_and_refresh t value_ts;
        go (attempts + 1)
    | Cluster.Scan_redirect -> go (attempts + 1)
    | Cluster.Scan_wounded reason -> raise (Wounded reason)
    | Cluster.Scan_err e -> restartable_read_error e
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Writes                                                              *)

(* HLC receive rule on the write response: the gateway folds a present-time
   pushed timestamp into its clock, so commit-wait (which waits on the
   hybrid clock) is a no-op for it. Future-time (Lead) writes stay
   synthetic and commit-wait for real. *)
let observe_pushed t key pushed =
  if not (is_global t key) then
    Clock.update (Cluster.clock t.mgr.cl t.gw) pushed

let write_value t key value =
  let provisional = Ts.max t.read_ts t.write_ts in
  (* The first write's key becomes the anchor: its apply registers the
     transaction record in that key's range. *)
  let anchor = match t.anchor with Some a -> a | None -> key in
  let note_written pushed =
    t.write_ts <- Ts.max t.write_ts pushed;
    observe_pushed t key pushed;
    if t.anchor = None then t.anchor <- Some anchor;
    if not (List.mem key t.writes) then t.writes <- key :: t.writes
  in
  if t.mgr.opts.Options.pipelined_writes then begin
    let applied = Crdb_sim.Ivar.create () in
    match
      Cluster.write t.mgr.cl ~applied ~span:t.sp ~phases:t.phases ~pri:t.pri
        ~anchor ~fate:(fate_of t) ~gateway:t.gw ~txn:t.id ~key ~value
        ~ts:provisional ()
    with
    | Cluster.Write_ok pushed ->
        note_written pushed;
        t.outstanding <- (key, applied) :: t.outstanding
    | Cluster.Write_wounded reason -> raise (Wounded reason)
    | Cluster.Write_err e -> raise (Restart e)
  end
  else
    match
      Cluster.write t.mgr.cl ~span:t.sp ~phases:t.phases ~pri:t.pri ~anchor
        ~fate:(fate_of t) ~gateway:t.gw ~txn:t.id ~key ~value ~ts:provisional
        ()
    with
    | Cluster.Write_ok pushed -> note_written pushed
    | Cluster.Write_wounded reason -> raise (Wounded reason)
    | Cluster.Write_err e -> raise (Restart e)

let put t key value = write_value t key (Some value)
let delete t key = write_value t key None

(* ------------------------------------------------------------------ *)
(* Commit protocol                                                     *)

let commit_wait mgr ~gw ts =
  let clock = Cluster.clock mgr.cl gw in
  let sim = Cluster.sim mgr.cl in
  let waited = ref 0 in
  let rec loop () =
    (* CRDB waits on the hybrid clock, not the physical one: a timestamp
       the gateway has already observed (HLC receive rule, e.g. from a
       write response) needs no physical wait. Only synthetic future-time
       timestamps — which never ratchet clocks — force a real wait. *)
    if Ts.(Clock.last clock >= ts) then ()
    else
      let now = Clock.physical_now clock in
      if now < Ts.wall ts then begin
        let d = Ts.wall ts - now + 1 in
        waited := !waited + d;
        Proc.sleep sim d;
        loop ()
      end
  in
  loop ();
  !waited

(* Await every outstanding pipelined write confirmation; all must have
   applied for the commit to be valid. A prevented write means commit-status
   recovery decided against us (restart, same priority); a dropped or silent
   one leaves the write's fate — and hence the commit's — indeterminate. *)
let await_acks t =
  let sim = Cluster.sim t.mgr.cl in
  List.iter
    (fun (key, ack) ->
      match Proc.await_timeout sim ack ~timeout:8_000_000 with
      | Some `Applied -> ()
      | Some `Prevented ->
          raise (Wounded ("write prevented by recovery on " ^ key))
      | Some `Dropped | None -> raise (Restart "pipelined write lost"))
    t.outstanding;
  t.outstanding <- []

(* Commit-time variant of {!await_acks}: once the record may be STAGING, a
   lost ack no longer implies a lost write — the write may have applied
   with only its confirmation dropped, and a concurrent recovery may
   finalize the implicit commit. Classify rather than raise, so the caller
   can learn the fate from the record. A prevention is still decisive: the
   write provably never applied and never will, so the commit is dead. *)
let await_acks_classified t =
  let sim = Cluster.sim t.mgr.cl in
  let out =
    List.fold_left
      (fun acc (key, ack) ->
        match (acc, Proc.await_timeout sim ack ~timeout:8_000_000) with
        | (`Prevented _ as p), _ -> p
        | _, Some `Prevented ->
            `Prevented ("write prevented by recovery on " ^ key)
        | `Lost, _ -> `Lost
        | `Ok, Some `Applied -> `Ok
        | `Ok, (Some `Dropped | None) -> `Lost)
      `Ok t.outstanding
  in
  t.outstanding <- [];
  out

(* Learn the fate of an attempt whose commit became ambiguous (a staging or
   commit reply was lost, or a pipelined write's ack was): run the same
   commit-status recovery a pusher would, against our own record. The
   anchor range's log totally orders our probes and finalization against
   any concurrent recovery, so whatever decision applies first is the one
   we report. A record stuck Pending (the stage proposal itself was lost)
   is aborted in place — first-decision-wins bars a late stage from
   resurrecting it. Only if the anchor range stays unreachable throughout
   do we give up and surface indeterminacy. *)
let determine_fate t ~akey ~commit_ts ~inflight reason =
  let sim = Cluster.sim t.mgr.cl in
  let rec go n =
    if n > 6 then raise (Indeterminate reason)
    else
      match
        Cluster.recover_txn t.mgr.cl ~gateway:t.gw ~span:t.sp ~phases:t.phases
          ~txn:t.id ~anchor_key:akey ~ts:commit_ts ~inflight ()
      with
      | Some (Some cts) -> `Committed cts
      | Some None -> `Aborted
      | None -> (
          match
            Cluster.txn_status t.mgr.cl ~span:t.sp ~phases:t.phases
              ~gateway:t.gw ~txn:t.id ~key:akey ()
          with
          | Some (Txnrec.Committed cts) -> `Committed cts
          | Some (Txnrec.Aborted _) -> `Aborted
          | Some Txnrec.Pending | None -> (
              match
                Cluster.abort_txn t.mgr.cl ~span:t.sp ~gateway:t.gw ~txn:t.id
                  ~key:akey ~reason:"ambiguous commit" ()
              with
              | Some (Txnrec.Aborted _) -> `Aborted
              | Some (Txnrec.Committed cts) -> `Committed cts
              | Some (Txnrec.Pending | Txnrec.Staging _) | None ->
                  Proc.sleep sim (200_000 * n);
                  go (n + 1))
          | Some (Txnrec.Staging _) ->
              Proc.sleep sim (200_000 * n);
              go (n + 1))
  in
  go 1

let commit t =
  let sim = Cluster.sim t.mgr.cl in
  let commit_ts = Ts.max t.read_ts t.write_ts in
  (match t.fate_ with
  | `Wounded reason -> raise (Wounded reason)
  | `Aborted -> raise (Restart "transaction aborted")
  | `Live -> ());
  if t.writes <> [] && Ts.(commit_ts > t.read_ts) then begin
    (* The provisional timestamp was pushed (timestamp cache, closed
       timestamp target, or newer committed version): validate reads at
       the commit timestamp before committing. *)
    refresh_all t ~to_ts:commit_ts;
    t.read_ts <- commit_ts
  end;
  if t.writes <> [] then begin
    let akey = match t.anchor with Some a -> a | None -> assert false in
    (* Reach the commit point. The record transition races concurrent
       wound-wait pushes in the anchor range's log, and whichever side
       applies first is authoritative: [Aborted] here means an older
       transaction (or a recovery) got there first. *)
    let explicitly_committed =
      if t.mgr.opts.Options.parallel_commits then begin
        (* Parallel commit: write the record as STAGING — declaring the
           still-unacknowledged writes — concurrently with those writes'
           replication. Implicit commit = staging applied ∧ every declared
           write applied; only then may the client be acked. *)
        let tr = Obs.trace t.mgr.obs in
        let ssp = Trace.span tr ~parent:t.sp ~node:t.gw ~txn:t.id "txn.stage" in
        let stage_start = Sim.now sim in
        let inflight =
          List.sort_uniq String.compare
            (List.filter_map
               (fun (k, ack) ->
                 if Crdb_sim.Ivar.peek ack = Some `Applied then None
                 else Some k)
               t.outstanding)
        in
        t.commit_initiated <- true;
        let staged =
          Proc.async sim (fun () ->
              Cluster.stage_txn t.mgr.cl ~span:ssp ~phases:t.phases
                ~gateway:t.gw ~txn:t.id ~key:akey ~pri:t.pri ~ts:commit_ts
                ~inflight ())
        in
        let acks = await_acks_classified t in
        let st = Proc.await staged in
        Phase.add t.phases Phase.Staging (Sim.now sim - stage_start);
        Trace.finish tr ssp;
        match (st, acks) with
        | Some (Txnrec.Committed _), _ -> true (* a recovery finalized us *)
        | Some (Txnrec.Aborted { reason; _ }), _ -> raise (Wounded reason)
        | Some (Txnrec.Staging _), `Ok -> false (* implicitly committed *)
        | _, `Prevented reason -> raise (Wounded reason)
        | (Some (Txnrec.Staging _ | Txnrec.Pending) | None), (`Ok | `Lost)
          -> (
            (* The staging reply or a pipelined write's confirmation was
               lost: the implicit commit may have gone through, and a
               concurrent recovery may already have finalized — and
               resolved — it. A blind restart here would re-run a possibly
               committed body (a duplicate write); the fate must come from
               the record. *)
            match
              determine_fate t ~akey ~commit_ts ~inflight
                "commit status indeterminate"
            with
            | `Committed _ -> true
            | `Aborted -> raise (Wounded "ambiguous commit aborted"))
      end
      else begin
        (* Sequential commit: every intent replicates first, then the
           record flips to Committed in its own consensus round. *)
        await_acks t;
        t.commit_initiated <- true;
        match
          Cluster.commit_txn t.mgr.cl ~span:t.sp ~phases:t.phases
            ~gateway:t.gw ~txn:t.id ~key:akey ~ts:commit_ts ()
        with
        | Some (Txnrec.Committed _) -> true
        | Some (Txnrec.Aborted { reason; _ }) -> raise (Wounded reason)
        | Some (Txnrec.Pending | Txnrec.Staging _) | None -> (
            (* The commit reply was lost; the record may have flipped to
               Committed. With no in-flight writes declared, recovery
               degenerates to re-issuing the (idempotent) commit decision. *)
            match
              determine_fate t ~akey ~commit_ts ~inflight:[]
                "commit status indeterminate"
            with
            | `Committed _ -> true
            | `Aborted -> raise (Wounded "ambiguous commit aborted"))
      end
    in
    (* Post-commit bookkeeping: make the commit explicit (so pushers stop
       running recovery against the staging record) and resolve intents.
       [attributed] distinguishes work the client waits for — charged to
       the attempt's span and phases — from work spawned after the ack. *)
    let resolve_now ~attributed () =
      t.finished <- true;
      if not explicitly_committed then
        ignore
          (if attributed then
             Cluster.commit_txn t.mgr.cl ~span:t.sp ~phases:t.phases
               ~gateway:t.gw ~txn:t.id ~key:akey ~ts:commit_ts ()
           else
             Cluster.commit_txn t.mgr.cl ~gateway:t.gw ~txn:t.id ~key:akey
               ~ts:commit_ts ()
            : Txnrec.status option);
      if attributed then
        Cluster.resolve t.mgr.cl ~span:t.sp ~phases:t.phases ~gateway:t.gw
          ~txn:t.id ~commit:(Some commit_ts) ~keys:(List.rev t.writes)
          ~sync_all:false ()
      else
        Cluster.resolve t.mgr.cl ~gateway:t.gw ~txn:t.id
          ~commit:(Some commit_ts) ~keys:(List.rev t.writes) ~sync_all:false
          ()
    in
    if not t.mgr.opts.Options.hold_locks_during_commit_wait then
      (* The client is acked at the commit point — the implicit commit
         under parallel commits, the record's consensus round otherwise.
         Making the commit explicit and resolving intents is cleanup the
         coordinator runs after the ack (§6.2 releases locks concurrently
         with the commit wait, minimizing how long readers observe them). *)
      Cluster.spawn_background t.mgr.cl (fun () ->
          resolve_now ~attributed:false ())
  end;
  let must_wait = t.writes <> [] || t.observed_future in
  if must_wait then begin
    let tr = Obs.trace t.mgr.obs in
    let wsp =
      Trace.span tr ~parent:t.sp ~node:t.gw ~txn:t.id "txn.commit_wait"
    in
    let waited = commit_wait t.mgr ~gw:t.gw commit_ts in
    Trace.annotate wsp "waited_us" (string_of_int waited);
    Trace.finish tr wsp;
    Phase.add t.phases Phase.Commit_wait waited;
    Hist.add t.mgr.h_commit_wait waited;
    if t.writes <> [] then
      t.mgr.stats.writer_commit_wait_micros <-
        t.mgr.stats.writer_commit_wait_micros + waited
    else if waited > 0 then begin
      t.mgr.stats.reader_commit_waits <- t.mgr.stats.reader_commit_waits + 1;
      Metrics.inc t.mgr.c_reader_waits.(t.gw)
    end
  end;
  if t.writes <> [] && t.mgr.opts.Options.hold_locks_during_commit_wait then begin
    (* Spanner-style ablation: locks persist through the commit wait. *)
    let akey = match t.anchor with Some a -> a | None -> assert false in
    t.finished <- true;
    ignore
      (Cluster.commit_txn t.mgr.cl ~span:t.sp ~phases:t.phases ~gateway:t.gw
         ~txn:t.id ~key:akey ~ts:commit_ts ()
        : Txnrec.status option);
    Cluster.resolve t.mgr.cl ~span:t.sp ~phases:t.phases ~gateway:t.gw
      ~txn:t.id ~commit:(Some commit_ts) ~keys:(List.rev t.writes)
      ~sync_all:false ()
  end;
  t.finished <- true;
  t.mgr.stats.commits <- t.mgr.stats.commits + 1;
  Metrics.inc t.mgr.c_commits.(t.gw)

let abort t =
  t.finished <- true;
  (* Finalize the record first so concurrent pushers see Aborted; no-op if
     a wound already aborted it. The applied status is authoritative: a
     racing recovery may already have committed a staged attempt
     (first-decision-wins), in which case the intents must resolve as
     committed — removing them would erase a commit concurrent readers may
     have observed. Read-only transactions (no anchor) never had a
     record. *)
  let committed_at =
    match t.anchor with
    | Some key -> (
        match
          Cluster.abort_txn t.mgr.cl ~span:t.sp ~gateway:t.gw ~txn:t.id ~key
            ~reason:"client abort" ()
        with
        | Some (Txnrec.Committed cts) -> Some cts
        | Some (Txnrec.Aborted _ | Txnrec.Pending | Txnrec.Staging _) | None
          ->
            None)
    | None -> None
  in
  if t.writes <> [] then
    Cluster.resolve t.mgr.cl ~span:t.sp ~gateway:t.gw ~txn:t.id
      ~commit:committed_at ~keys:(List.rev t.writes) ~sync_all:false ();
  committed_at

(* Keep the transaction record live while the coordinator (gateway node) is
   up: pushers treat a record whose heartbeat is stale as abandoned (or, for
   STAGING records, as recoverable) and clean up its intents. Heartbeats
   only start once the first write establishes the anchor — before that
   there is no record to maintain. The responses double as the coordinator's
   wound notifications: an [Aborted] status cancels the transaction's
   in-flight requests through its [fate] closure. The loop stops
   heartbeating while the gateway is down — exactly the abandonment signal
   wound-wait relies on — and exits once the transaction finishes. *)
let start_heartbeat t =
  let mgr = t.mgr in
  let sim = Cluster.sim mgr.cl in
  let interval = (Cluster.config mgr.cl).Cluster.txn_heartbeat_interval in
  Proc.spawn sim (fun () ->
      let rec loop () =
        Proc.sleep sim interval;
        if t.finished then ()
        else
          match t.anchor with
          | None -> loop ()
          | Some key ->
              if Crdb_net.Transport.is_alive (Cluster.net mgr.cl) t.gw then
                match
                  Cluster.heartbeat_txn mgr.cl ~gateway:t.gw ~txn:t.id ~key ()
                with
                | Some (Txnrec.Aborted { reason; wound = true }) ->
                    t.fate_ <- `Wounded reason
                | Some (Txnrec.Aborted _) -> t.fate_ <- `Aborted
                | Some (Txnrec.Committed _) -> ()
                | Some (Txnrec.Pending | Txnrec.Staging _) | None -> loop ()
              else loop ()
      in
      loop ())

let fresh_txn ?priority ?(phases = Phase.nil) mgr ~gateway =
  let id = mgr.next_txn_id in
  mgr.next_txn_id <- id + 1;
  Metrics.inc mgr.c_attempts.(gateway);
  let read_ts = Cluster.now_ts mgr.cl gateway in
  (* Wound-wait priority: the first attempt's birth timestamp, carried
     across retries so a transaction only ever gets older. The record
     itself is registered by the first write's apply at the anchor range —
     no upfront registration RPC. *)
  let pri = match priority with Some p -> p | None -> read_ts in
  let t =
    {
      mgr;
      id;
      gw = gateway;
      pri;
      read_ts;
      max_ts = Ts.add_wall read_ts (Cluster.config mgr.cl).Cluster.max_offset;
      write_ts = Ts.zero;
      reads = [];
      writes = [];
      anchor = None;
      outstanding = [];
      fate_ = `Live;
      finished = false;
      observed_future = false;
      commit_initiated = false;
      sp = Trace.nil;
      phases;
    }
  in
  start_heartbeat t;
  t

type attempt_outcome =
  | Attempt_committed of Ts.t
  | Attempt_aborted of string
  | Attempt_indeterminate of string * Ts.t

(* The outcome of an attempt the client lost track of: before the commit
   record could have been proposed the abort is authoritative; after, the
   transaction may have committed at the timestamp the commit was initiated
   with. *)
let failed_attempt_outcome t reason =
  if t.commit_initiated then
    Attempt_indeterminate (reason, Ts.max t.read_ts t.write_ts)
  else Attempt_aborted reason

let report on_attempt t outcome =
  match on_attempt with None -> () | Some f -> f t outcome

let run mgr ~gateway ?(max_attempts = 25) ?phases ?on_attempt body =
  let sim = Cluster.sim mgr.cl in
  let tr = Obs.trace mgr.obs in
  (* A caller-supplied phase context is accumulated into but never flushed
     here (the caller owns its lifetime, e.g. to aggregate several
     transactions into one op class); a self-created one is flushed into the
     [phase.txn.*] histograms when the run completes. *)
  let own_ctx = Option.is_none phases in
  let phases =
    match phases with Some p -> p | None -> Phase.make ()
  in
  let backoff n =
    let d = 1_000 * n in
    Phase.add phases Phase.Retry_backoff d;
    Proc.sleep sim d
  in
  let root = Trace.span tr ~node:gateway "txn.run" in
  (* The rollback of a failed attempt uncovered a racing recovery that had
     already committed it: its intents were just resolved as committed, and
     retrying the body would write them a second time. The body's result
     was lost with the exception, so report the commit to the attempt
     observer and fail the call as ambiguous rather than fabricate a
     success. *)
  let recovered_committed t n reason cts =
    report on_attempt t (Attempt_committed cts);
    Trace.annotate t.sp "committed_by_recovery" (Ts.to_string cts);
    Trace.annotate t.sp "restart" reason;
    Trace.finish tr t.sp;
    (n, Error (Unavailable ("committed by recovery: " ^ reason)))
  in
  let rec attempt n ~pri =
    let t = fresh_txn ?priority:pri ~phases mgr ~gateway in
    (* Retries inherit the first attempt's birth timestamp as their
       wound-wait priority, so a restarted transaction keeps aging instead
       of being reborn young and re-wounded (starvation freedom). *)
    let pri = match pri with Some _ -> pri | None -> Some t.read_ts in
    t.sp <- Trace.span tr ~parent:root ~node:gateway ~txn:t.id "txn.attempt";
    match
      let result = body t in
      commit t;
      result
    with
    | result ->
        report on_attempt t (Attempt_committed (Ts.max t.read_ts t.write_ts));
        Trace.finish tr t.sp;
        (n, Ok result)
    | exception Restart reason -> (
        match abort t with
        | Some cts -> recovered_committed t n reason cts
        | None ->
            report on_attempt t (failed_attempt_outcome t reason);
            mgr.stats.restarts <- mgr.stats.restarts + 1;
            Metrics.inc mgr.c_restarts.(gateway);
            Trace.annotate t.sp "restart" reason;
            Trace.finish tr t.sp;
            if n >= max_attempts then (n, Error (Unavailable reason))
            else begin
              (* Small randomized backoff to break livelocks between
                 retries. *)
              backoff n;
              attempt (n + 1) ~pri
            end)
    | exception Wounded reason -> (
        match abort t with
        | Some cts -> recovered_committed t n reason cts
        | None ->
            report on_attempt t (failed_attempt_outcome t reason);
            mgr.stats.restarts <- mgr.stats.restarts + 1;
            mgr.stats.wounds <- mgr.stats.wounds + 1;
            Metrics.inc mgr.c_restarts.(gateway);
            Metrics.inc mgr.c_wounds.(gateway);
            Trace.annotate t.sp "wounded" reason;
            Trace.finish tr t.sp;
            if n >= max_attempts then (n, Error (Unavailable reason))
            else begin
              backoff n;
              attempt (n + 1) ~pri
            end)
    | exception Indeterminate reason ->
        (* The commit's fate could not be learned (the anchor range stayed
           unreachable): the attempt may have committed, so neither
           resolving its intents as aborted nor retrying the body is
           sound. Leave the record and intents alone — pushers will
           eventually recover them — and surface the ambiguity. *)
        t.finished <- true;
        report on_attempt t (failed_attempt_outcome t reason);
        Trace.annotate t.sp "indeterminate" reason;
        Trace.finish tr t.sp;
        (n, Error (Unavailable reason))
    | exception Fatal reason -> (
        match abort t with
        | Some cts -> recovered_committed t n reason cts
        | None ->
            report on_attempt t (failed_attempt_outcome t reason);
            Trace.annotate t.sp "fatal" reason;
            Trace.finish tr t.sp;
            (n, Error (Unavailable reason)))
    | exception e ->
        ignore (abort t : Ts.t option);
        Trace.finish tr t.sp;
        Trace.finish tr root;
        raise e
  in
  let attempts, result = attempt 1 ~pri:None in
  Trace.annotate root "attempts" (string_of_int attempts);
  Trace.annotate root "result"
    (match result with Ok _ -> "committed" | Error _ -> "failed");
  Phase.annotate phases root;
  Trace.finish tr root;
  if own_ctx then Phase.flush phases ~cls:"txn" (Obs.metrics mgr.obs);
  result

let run_blind_put mgr ~gateway ?(max_attempts = 25) ?phases key value =
  let tr = Obs.trace mgr.obs in
  let own_ctx = Option.is_none phases in
  let phases = match phases with Some p -> p | None -> Phase.make () in
  let root = Trace.span tr ~node:gateway "txn.blind_put" in
  let rec attempt n =
    let id = mgr.next_txn_id in
    mgr.next_txn_id <- id + 1;
    Metrics.inc mgr.c_attempts.(gateway);
    let asp = Trace.span tr ~parent:root ~node:gateway ~txn:id "txn.attempt" in
    let ts = Cluster.now_ts mgr.cl gateway in
    match
      Cluster.write_and_commit mgr.cl ~span:asp ~phases ~gateway ~txn:id ~key
        ~value:(Some value) ~ts ()
    with
    | Ok commit_ts ->
        let wsp =
          Trace.span tr ~parent:asp ~node:gateway ~txn:id "txn.commit_wait"
        in
        let waited = commit_wait mgr ~gw:gateway commit_ts in
        Trace.annotate wsp "waited_us" (string_of_int waited);
        Trace.finish tr wsp;
        Phase.add phases Phase.Commit_wait waited;
        Hist.add mgr.h_commit_wait waited;
        mgr.stats.writer_commit_wait_micros <-
          mgr.stats.writer_commit_wait_micros + waited;
        mgr.stats.commits <- mgr.stats.commits + 1;
        Metrics.inc mgr.c_commits.(gateway);
        Trace.finish tr asp;
        Ok ()
    | Error reason ->
        mgr.stats.restarts <- mgr.stats.restarts + 1;
        Metrics.inc mgr.c_restarts.(gateway);
        Trace.annotate asp "restart" reason;
        Trace.finish tr asp;
        if n >= max_attempts then Error (Unavailable reason)
        else begin
          Phase.add phases Phase.Retry_backoff (1_000 * n);
          Proc.sleep (Cluster.sim mgr.cl) (1_000 * n);
          attempt (n + 1)
        end
  in
  let result = attempt 1 in
  Phase.annotate phases root;
  Trace.finish tr root;
  if own_ctx then Phase.flush phases ~cls:"txn" (Obs.metrics mgr.obs);
  result

(* ------------------------------------------------------------------ *)
(* Read-only transactions                                              *)

type ro =
  | Ro_stale of { mgr : manager; gw : int; ts : Ts.t }
  | Ro_fresh of t

let ro_ts = function Ro_stale { ts; _ } -> ts | Ro_fresh t -> t.read_ts

let stale_get mgr ~gw ~ts key =
  match
    Cluster.read_follower mgr.cl ~at:gw ~txn:None ~key ~ts ~max_ts:ts ()
  with
  | Cluster.Read_value { value; _ } -> value
  | Cluster.Read_redirect -> (
      (* Not closed (or blocked by an intent) locally: the leaseholder can
         always serve a read below present time. *)
      match Cluster.read mgr.cl ~gateway:gw ~txn:None ~key ~ts ~max_ts:ts () with
      | Cluster.Read_value { value; _ } -> value
      | Cluster.Read_uncertain _ ->
          (* Impossible: the uncertainty window [ts, ts] is empty. *)
          assert false
      | Cluster.Read_redirect -> raise (Fatal "leaseholder redirected")
      | Cluster.Read_wounded e | Cluster.Read_err e -> raise (Fatal e))
  | Cluster.Read_uncertain _ -> assert false
  | Cluster.Read_wounded e | Cluster.Read_err e -> raise (Fatal e)

let stale_scan mgr ~gw ~ts ~start_key ~end_key ~limit =
  match
    Cluster.scan_follower mgr.cl ~at:gw ~txn:None ~start_key ~end_key ~ts
      ~max_ts:ts ~limit ()
  with
  | Cluster.Scan_rows rows -> rows
  | Cluster.Scan_redirect -> (
      match
        Cluster.scan mgr.cl ~gateway:gw ~txn:None ~start_key ~end_key ~ts
          ~max_ts:ts ~limit ()
      with
      | Cluster.Scan_rows rows -> rows
      | Cluster.Scan_uncertain _ -> assert false
      | Cluster.Scan_redirect -> raise (Fatal "leaseholder redirected")
      | Cluster.Scan_wounded e | Cluster.Scan_err e -> raise (Fatal e))
  | Cluster.Scan_uncertain _ -> assert false
  | Cluster.Scan_wounded e | Cluster.Scan_err e -> raise (Fatal e)

let ro_get ro key =
  match ro with
  | Ro_stale { mgr; gw; ts } -> stale_get mgr ~gw ~ts key
  | Ro_fresh t -> get t key

let ro_scan ro ~start_key ~end_key ?limit () =
  match ro with
  | Ro_stale { mgr; gw; ts } ->
      stale_scan mgr ~gw ~ts ~start_key ~end_key ~limit
  | Ro_fresh t -> scan t ~start_key ~end_key ?limit ()

let run_stale_exact mgr ~gateway ~ts body =
  body (Ro_stale { mgr; gw = gateway; ts })

let run_stale_bounded mgr ~gateway ~max_staleness ~keys body =
  let now = Cluster.now_ts mgr.cl gateway in
  let min_ts = Ts.of_wall (max 1 (Ts.wall now - max_staleness)) in
  let negotiated = Cluster.negotiate mgr.cl ~at:gateway ~keys in
  (* Use the freshest locally servable timestamp within the bound; never a
     future one (that would force a commit wait on a read). *)
  let ts =
    if Ts.(negotiated >= min_ts) then Ts.min negotiated now else min_ts
  in
  body (Ro_stale { mgr; gw = gateway; ts })

let run_fresh_read mgr ~gateway ?max_attempts ?phases body =
  run mgr ~gateway ?max_attempts ?phases (fun t -> body (Ro_fresh t))
