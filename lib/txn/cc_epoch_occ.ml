(* Epoch-grouped optimistic concurrency control (PAPERS.md: epoch-based OCC
   in geo-replicated databases, GeoGauss): the transaction body runs
   without taking locks or laying intents — writes buffer locally at the
   gateway — and commits are grouped at epoch boundaries advanced by a
   recurring per-cluster ticker. At its boundary a transaction flushes its
   write buffer as ordinary intents through the existing Raft/parallel
   commit path with a commit timestamp forced to (or above) the boundary,
   which makes [Cc_base.commit]'s read refresh unconditional for writers:
   that refresh IS the OCC validation. Conflicting transactions inside one
   epoch serialize by validation order — whoever flushes first wins the
   timestamp race; the loser's refresh fails and it restarts ([Restart],
   counted in [txn.epoch_validation_failures]).

   Recovery is unchanged from wound-wait: once the buffer is flushed the
   transaction has an ordinary record and intents, so an ambiguous commit
   runs the same record-based commit-status recovery, and crashed
   validators are cleaned up by abandonment like any other writer. *)

open Cc
module Cluster = Crdb_kv.Cluster
module Clock = Crdb_hlc.Clock
module Ts = Crdb_hlc.Timestamp
module Proc = Crdb_sim.Proc
module Sim = Crdb_sim.Sim
module Metrics = Crdb_obs.Metrics
module Phase = Crdb_obs.Phase
module Ivar = Crdb_sim.Ivar

let mode : mode = `Epoch_occ
let begin_attempt = Cc_base.fresh_txn

(* The epoch ticker: one recurring scheduled tick per cluster, started
   lazily by the first committer of an epoch and stopped by an idle tick
   (no waiters), so a quiet cluster leaves the simulator's queue alone.
   The boundary is the simulator's wall clock at the tick; every waiter of
   the epoch receives the same boundary, batching their commit replication
   into the same window. *)
let rec tick mgr =
  let sim = Cluster.sim mgr.cl in
  match mgr.epoch_waiters with
  | [] -> mgr.epoch_running <- false
  | ws ->
      mgr.epoch_waiters <- [];
      Metrics.inc mgr.c_epoch_ticks;
      let boundary = Ts.of_wall (Sim.now sim) in
      (* Parking prepends, so release oldest-first: within an epoch,
         earlier arrivals validate first. *)
      List.iter (fun iv -> Ivar.fill iv boundary) (List.rev ws);
      Sim.schedule sim ~after:mgr.epoch_interval (fun () -> tick mgr)

let await_epoch t =
  let mgr = t.mgr in
  let sim = Cluster.sim mgr.cl in
  let iv = Ivar.create () in
  mgr.epoch_waiters <- iv :: mgr.epoch_waiters;
  if not mgr.epoch_running then begin
    mgr.epoch_running <- true;
    Sim.schedule sim ~after:mgr.epoch_interval (fun () -> tick mgr)
  end;
  let start = Sim.now sim in
  let boundary = Proc.await iv in
  Phase.add t.phases Phase.Epoch_wait (Sim.now sim - start);
  boundary

(* Reads never block on the transaction's own buffered writes — they are
   served from the buffer — and see the cluster through the ordinary MVCC
   read path otherwise (foreign *flushed* intents of validating
   transactions still conflict; that window is the epoch commit itself). *)
let get t key =
  match List.assoc_opt key t.wbuf with
  | Some v -> v (* newest buffered write, [None] = buffered delete *)
  | None -> Cc_base.get t key

let scan t ~start_key ~end_key ?limit () =
  (* Fetch unbounded, overlay the buffer, then re-apply the limit: a
     buffered delete may drop a fetched row (opening a slot) and a buffered
     insert may displace one. *)
  let rows = Cc_base.scan t ~start_key ~end_key () in
  let tbl = Hashtbl.create 16 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) rows;
  List.iter
    (fun (k, v) ->
      if k >= start_key && k < end_key then
        match v with
        | Some v -> Hashtbl.replace tbl k v
        | None -> Hashtbl.remove tbl k)
    (List.rev t.wbuf) (* oldest-first, so the newest write wins *);
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) rows in
  match limit with
  | Some n -> List.filteri (fun i _ -> i < n) rows
  | None -> rows

(* OCC takes no locks: a FOR UPDATE/FOR SHARE read is an ordinary read, and
   the protection the caller asked for is delivered by commit-time
   validation instead (any conflicting write moves the key's timestamp and
   fails this transaction's refresh). *)
let get_locked t _strength key = get t key

let write t key value = t.wbuf <- (key, value) :: t.wbuf

(* The buffer, deduplicated to the newest value per key, in first-write
   order (so the anchor — the first flushed key — is stable). *)
let flush_order t =
  let newest = Hashtbl.create 8 in
  List.iter
    (fun (k, v) -> if not (Hashtbl.mem newest k) then Hashtbl.add newest k v)
    t.wbuf;
  let keys =
    List.rev
      (List.fold_left
         (fun acc (k, _) -> if List.mem k acc then acc else k :: acc)
         [] (List.rev t.wbuf))
  in
  List.map (fun k -> (k, Hashtbl.find newest k)) keys

let commit t =
  if t.wbuf = [] then Cc_base.commit t
    (* read-only: valid at its snapshot, no epoch coordination needed *)
  else begin
    let boundary = await_epoch t in
    (* HLC receive rule on the tick: fold the boundary into the gateway
       clock so the commit wait on a present-time boundary is a no-op. *)
    Clock.update (Cluster.clock t.mgr.cl t.gw) boundary;
    Metrics.inc t.mgr.c_epoch_commits.(t.gw);
    (* Flush: lay every buffered write as an intent through the ordinary
       (pipelined) write path, then run the standard parallel-commit with
       the commit timestamp pinned at or above the boundary. commit_ts >
       read_ts always holds here, so the read refresh — the OCC validation
       of every read against the epoch boundary — is unconditional. *)
    List.iter (fun (k, v) -> Cc_base.write_value t k v) (flush_order t);
    Cc_base.commit ~min_commit_ts:boundary t
  end

let abort = Cc_base.abort
