module Cluster = Crdb_kv.Cluster
module Lock_table = Crdb_kv.Lock_table
module Ts = Crdb_hlc.Timestamp
module Obs = Crdb_obs.Obs
module Trace = Crdb_obs.Trace
module Metrics = Crdb_obs.Metrics
module Phase = Crdb_obs.Phase
module Hist = Crdb_stats.Hist
module Ivar = Crdb_sim.Ivar

type mode = [ `Wound_wait | `Epoch_occ ]
type strength = Lock_table.strength = Shared | Exclusive

module Options = struct
  type t = {
    hold_locks_during_commit_wait : bool;
        (* Spanner-style ablation: resolve intents only after commit wait *)
    pipelined_writes : bool;
    parallel_commits : bool;
        (* stage the commit record concurrently with the in-flight intent
           writes' replication (CRDB parallel commits); off, the commit
           record is only written after every intent has replicated *)
    unsafe_no_refresh : bool;
        (* deliberately broken mode: timestamp pushes skip read-span
           validation, so stale reads can commit (the serializability checker
           must catch the resulting anti-dependency cycles) *)
  }

  let default =
    {
      hold_locks_during_commit_wait = false;
      pipelined_writes = true;
      parallel_commits = true;
      unsafe_no_refresh = false;
    }
end

type stats = {
  mutable commits : int;
  mutable restarts : int;
  mutable wounds : int;
  mutable reader_commit_waits : int;
  mutable writer_commit_wait_micros : int;
}

type manager = {
  cl : Cluster.t;
  mode : mode;
  mutable next_txn_id : int;
  stats : stats;
  mutable opts : Options.t;
  obs : Obs.t;
  c_attempts : Metrics.counter array;
  c_commits : Metrics.counter array;
  c_restarts : Metrics.counter array;
  c_wounds : Metrics.counter array;
  c_refreshes : Metrics.counter array;
  c_reader_waits : Metrics.counter array;
  h_commit_wait : Hist.t;
  (* Epoch_occ state: the recurring ticker that advances the commit
     boundary, and the committing transactions parked on the next tick.
     The ticker only runs while someone is waiting — an idle tick shuts it
     down and the next [await_epoch] respawns it — so a drained cluster
     does not keep the simulator's event queue warm. *)
  epoch_interval : int;
  mutable epoch_waiters : Ts.t Ivar.t list; (* newest-first *)
  mutable epoch_running : bool;
  c_epoch_ticks : Metrics.counter;
  c_epoch_commits : Metrics.counter array;
  c_epoch_validation_failures : Metrics.counter array;
}

type read_span = Point of string | Span of string * string

type attempt = {
  mgr : manager;
  id : int;
  gw : int;
  pri : Ts.t; (* wound-wait priority: first-attempt birth timestamp *)
  mutable read_ts : Ts.t;
  max_ts : Ts.t; (* uncertainty upper bound; never changes (§6.1) *)
  mutable write_ts : Ts.t;
  mutable reads : read_span list;
  mutable writes : string list; (* newest first; the anchor is the oldest *)
  mutable anchor : string option;
      (* first written key: where the transaction record lives; [None]
         until the first write succeeds (read-only txns have no record) *)
  mutable outstanding : (string * Cluster.write_ack Ivar.t) list;
      (* pipelined write acks, keyed for read-your-own-writes *)
  mutable fate_ : Cluster.fate;
      (* the coordinator's own view of its fate, fed by heartbeat RPC
         responses; threaded as a closure into every KV op so a wounded
         transaction cancels its in-flight requests *)
  mutable finished : bool; (* stops the heartbeat loop *)
  mutable observed_future : bool;
  mutable commit_initiated : bool;
      (* the commit record may have been proposed: a failure after this
         point leaves the outcome indeterminate, not aborted *)
  mutable sp : Trace.span;  (* this attempt's span; KV ops parent under it *)
  phases : Phase.ctx;
      (* phase-latency accumulator shared by every attempt of one [run];
         KV ops charge Routing/Lease_wait/Lock_wait/Replication into it,
         the coordinator charges Refresh/Commit_wait/Retry_backoff *)
  mutable wbuf : (string * string option) list;
      (* Epoch_occ: locally buffered writes, newest first; flushed as
         intents only at commit, after the epoch boundary *)
  mutable rlocks : string list;
      (* keys this attempt explicitly locked (FOR UPDATE / FOR SHARE)
         without writing; released alongside the write intents *)
}

let fate_of t () = t.fate_

exception Restart of string

exception Wounded of string
(* wound-wait: an older transaction aborted this one to break a deadlock;
   restartable like [Restart], but counted separately *)

exception Fatal of string

exception Indeterminate of string
(* raised only after the commit record may have been proposed, when its
   fate could not be learned from the record either: the attempt may have
   committed, so neither rolling back its intents nor retrying the body is
   sound. Internal: [Txn.run] converts it into an [Unavailable] error and an
   [Attempt_indeterminate] outcome without touching the intents. *)

(* The concurrency-control backend interface: everything [Txn.run] and the
   SQL engine need from a protocol. Backends share the [attempt] state and
   the generic machinery in [Cc_base]; they differ in when conflicts are
   detected (lock acquisition at write time vs validation at commit) and in
   what commit must do first (nothing vs epoch wait + write-buffer flush).
   Each operation may raise [Restart]/[Wounded] (restartable),
   [Indeterminate] (ambiguous commit) or [Fatal]. *)
module type S = sig
  val mode : mode

  val begin_attempt :
    ?priority:Ts.t -> ?phases:Phase.ctx -> manager -> gateway:int -> attempt
  (* One physical attempt: fresh id and read timestamp, heartbeat loop
     started. [priority] carries the first attempt's birth timestamp across
     retries (wound-wait aging). *)

  val get : attempt -> string -> string option
  val scan :
    attempt -> start_key:string -> end_key:string -> ?limit:int -> unit ->
    (string * string) list

  val get_locked : attempt -> strength -> string -> string option
  (* SELECT FOR UPDATE ([Exclusive]) / FOR SHARE ([Shared]): read the key
     while protecting it against conflicting writers until commit. The
     pessimistic backend takes a lock-table lock (conflicts resolve by
     wound-wait, upgrades included); the OCC backend reads optimistically
     and relies on commit-time validation instead. *)

  val write : attempt -> string -> string option -> unit
  (* [None] deletes. The pessimistic backend lays a replicated intent
     immediately; the OCC backend buffers locally until commit. *)

  val commit : attempt -> unit
  (* Reach the commit point (parallel or sequential), resolve intents and
     commit-wait as needed. For [`Epoch_occ] this first waits out the epoch
     boundary, flushes the write buffer as intents and validates every read
     at the boundary (a failed validation raises [Restart] — the
     validation-order loser of the epoch retries). Recovery of an ambiguous
     commit runs the same record-based commit-status recovery in both
     modes. *)

  val abort : attempt -> Ts.t option
  (* Roll back; [Some cts] when a racing recovery had already committed the
     attempt (first-decision-wins) and the rollback turned into a commit. *)
end
