(* The paper's protocol: pessimistic per-range lock tables with wound-wait
   deadlock resolution, pipelined intent writes and parallel commits. All
   machinery lives in [Cc_base]; this backend only adds the locking read
   (a lock-table acquisition ahead of the ordinary read). *)

let mode : Cc.mode = `Wound_wait
let begin_attempt = Cc_base.fresh_txn
let get = Cc_base.get
let scan = Cc_base.scan
let write = Cc_base.write_value

let get_locked t strength key =
  Cc_base.acquire_lock t strength key;
  Cc_base.get t key

let commit t = Cc_base.commit t
let abort = Cc_base.abort
