(** Transaction coordination.

    The public transaction API. Everything here programs against the
    concurrency-control interface {!Cc.S}; the backend is selected
    per-cluster by [Cluster.config.cc_mode] at {!create_manager} time:

    - [`Wound_wait] ({!Cc_wound_wait}) — the paper's protocol, described
      below: pessimistic lock tables, pipelined intents, wound-wait;
    - [`Epoch_occ] ({!Cc_epoch_occ}) — epoch-grouped optimistic concurrency
      control: the body buffers writes locally and takes no locks; commit
      waits for the next epoch boundary (a recurring per-cluster ticker),
      flushes the buffer as intents and validates every read against the
      boundary via the ordinary read-refresh machinery. Conflicting
      transactions within an epoch are resolved by validation order.

    Under [`Wound_wait], implements CRDB's transaction model on top of
    {!Crdb_kv.Cluster}:

    - {b Serializable read-write transactions} with uncertainty intervals and
      read refreshes (§6.1, [60 §3]). Reads go to leaseholders; reads of
      GLOBAL (future-closing) ranges are served by the nearest replica at
      present time. Writes pipeline intents at the provisional commit
      timestamp; commit refreshes reads if the timestamp was pushed, then
      resolves intents, then {b commit-waits} until the coordinator's HLC
      passes the commit timestamp (§6.2) — concurrently with lock release,
      unlike Spanner.
    - {b Reader-side commit waits}: a transaction that observed a value with
      a future timestamp inside its uncertainty window waits out the
      remainder before completing, preserving single-key linearizability
      (§6.2, Fig. 2).
    - {b Stale read-only transactions}: exact staleness ([AS OF SYSTEM
      TIME]) and bounded staleness ([with_max_staleness]) with timestamp
      negotiation (§5.3); both served by nearby replicas whenever closed
      timestamps allow.

    Restartable conditions (failed refresh after a timestamp push, wounds
    from older transactions, conflict timeouts) are retried internally with
    a fresh transaction id and timestamp, like CRDB's automatic
    per-statement retries. Each transaction's record lives in the range
    holding its first written key (the {e anchor}), is created by that
    write's replicated apply, and is heartbeated while its gateway is
    alive; wound-wait conflict resolution (see [DESIGN.md]) pushes the
    record through ordinary routed RPCs to wound, recover, or clean up
    after blockers. *)

module Cluster = Crdb_kv.Cluster
module Ts = Crdb_hlc.Timestamp

type manager

val create_manager : Cluster.t -> manager
(** Reads the cluster's [cc_mode] (and, for [`Epoch_occ], the
    [epoch_interval]) once; all transactions of this manager run under that
    backend. *)

val cluster : manager -> Cluster.t

val cc_mode : manager -> Cc.mode
(** The concurrency-control backend this manager dispatches to. *)

(** {2 Options} *)

module Options : sig
  type t = {
    hold_locks_during_commit_wait : bool;
        (** Ablation: Spanner-style commit waits that hold locks for their
            duration (§6.2 contrasts CRDB's concurrent lock release).
            Default [false]. *)
    pipelined_writes : bool;
        (** Disable to make every intent write await its consensus round
            (ablation of CRDB-style write pipelining). Default [true]. *)
    parallel_commits : bool;
        (** Commit by writing a STAGING transaction record in parallel with
            the final batch of intent writes; the transaction is implicitly
            committed once all have replicated (one consensus round of
            client-visible commit latency). Disable to flip the record to
            COMMITTED only after every intent has replicated (ablation of
            CRDB-style parallel commits). Default [true]. *)
    unsafe_no_refresh : bool;
        (** Deliberately broken mode for checker validation: skip read-span
            refreshes when a transaction's timestamp is pushed, silently
            advancing [read_ts] without validating reads. The
            serializability checker must flag the resulting anti-dependency
            cycles. Default [false]. *)
  }

  val default : t
end

val set_options : manager -> Options.t -> unit
(** Replace the manager's options wholesale; use
    [{ Txn.Options.default with pipelined_writes = false }] to tweak one
    knob. *)

val options : manager -> Options.t

(** {2 Read-write transactions} *)

type t
(** One transaction attempt. Valid only inside the callback of {!run}. *)

type error = Aborted of string | Unavailable of string

val pp_error : Format.formatter -> error -> unit

exception Restart of string
(** Raised internally on restartable conditions; user code may also raise it
    to force a retry with a new timestamp. *)

exception Wounded of string
(** Raised when an older transaction wounded this one to break a deadlock
    (wound-wait). Restartable: {!run} retries with a fresh id and timestamp
    but the {e same} wound-wait priority, so the retried transaction keeps
    aging toward the front of the queue. *)

exception Fatal of string
(** Raised by read-only transactions when no replica can serve them (for
    example, a bounded-staleness read whose bound is not locally closed and
    whose leaseholder is unavailable). *)

type attempt_outcome =
  | Attempt_committed of Ts.t  (** committed at this MVCC timestamp *)
  | Attempt_aborted of string  (** definitely had no effect *)
  | Attempt_indeterminate of string * Ts.t
      (** the commit record may have been proposed before the failure: the
          attempt either aborted or committed at exactly this timestamp *)

val run :
  manager ->
  gateway:Crdb_net.Topology.node_id ->
  ?max_attempts:int ->
  ?phases:Crdb_obs.Phase.ctx ->
  ?on_attempt:(t -> attempt_outcome -> unit) ->
  (t -> 'a) ->
  ('a, error) result
(** Execute the body as a serializable transaction; commits on return,
    aborts if the body raises. Automatically retried (fresh timestamp and
    txn id) on restartable errors, [max_attempts] times (default 25). The
    result is returned only after the commit point {e and} any commit wait,
    so client-observed latency is faithful.

    [phases] receives the phase-latency decomposition of the whole run —
    routing, lease and lock waits, replication rounds, read refreshes,
    commit wait, retry backoff — plus the WAN round-trip count, summed
    across every attempt. When omitted, the run allocates its own context
    and flushes it into the manager's [phase.txn.*] and [wan_rtts.txn]
    histograms on completion; a caller-supplied context is accumulated into
    but left unflushed, so the caller can aggregate several transactions
    into one op class (see {!Crdb_obs.Phase.flush}).

    [on_attempt] is called once per physical attempt, after it committed or
    failed but before any retry, with the attempt's handle (so [txn_id] and
    [read_ts] remain readable) and its precise fate — the hook history
    recorders use to log every attempt, including ones whose commit record
    raced a failure and whose outcome the client never learned. *)

val get : t -> string -> string option
val put : t -> string -> string -> unit
val delete : t -> string -> unit

val get_for_update : t -> string -> string option
(** SELECT FOR UPDATE: read the key and protect it against concurrent
    writers until commit. Under [`Wound_wait] this takes an [Exclusive]
    lock-table lock (conflicts with readers' locks and other writers
    resolve by wound-wait; upgrading an own [Shared] grip is supported);
    under [`Epoch_occ] it is an ordinary optimistic read — commit-time
    validation provides the protection instead. *)

val get_for_share : t -> string -> string option
(** SELECT FOR SHARE: like {!get_for_update} with a [Shared] lock, which
    coexists with other [Shared] holders and blocks only writers. *)

val scan : t -> start_key:string -> end_key:string -> ?limit:int -> unit -> (string * string) list
(** Range scan (single range per call; the SQL layer stitches ranges). *)

val read_ts : t -> Ts.t
val txn_id : t -> int
val gateway : t -> Crdb_net.Topology.node_id

val run_blind_put :
  manager ->
  gateway:Crdb_net.Topology.node_id ->
  ?max_attempts:int ->
  ?phases:Crdb_obs.Phase.ctx ->
  string ->
  string ->
  (unit, error) result
(** A single-key blind-write auto-commit transaction using the one-phase
    commit fast path: one consensus round, no observable lock window, plus
    the commit wait when the range closes future timestamps. *)

(** {2 Read-only transactions} *)

type ro
(** Read-only context for stale and present-time follower reads. *)

val ro_get : ro -> string -> string option
val ro_scan : ro -> start_key:string -> end_key:string -> ?limit:int -> unit -> (string * string) list
val ro_ts : ro -> Ts.t

val run_stale_exact :
  manager ->
  gateway:Crdb_net.Topology.node_id ->
  ts:Ts.t ->
  (ro -> 'a) ->
  'a
(** [AS OF SYSTEM TIME <ts>] (§5.3.1): reads at exactly [ts], served from
    the closest replica whose closed timestamp covers it, else from the
    leaseholder. *)

val run_stale_bounded :
  manager ->
  gateway:Crdb_net.Topology.node_id ->
  max_staleness:int ->
  keys:string list ->
  (ro -> 'a) ->
  'a
(** [with_max_staleness] (§5.3.2): negotiates the highest timestamp at which
    all [keys] can be served locally without blocking; falls back to the
    staleness bound (and thus possibly the leaseholder) if negotiation
    yields an older timestamp. *)

val run_fresh_read :
  manager ->
  gateway:Crdb_net.Topology.node_id ->
  ?max_attempts:int ->
  ?phases:Crdb_obs.Phase.ctx ->
  (ro -> 'a) ->
  ('a, error) result
(** Present-time read-only transaction. Reads of GLOBAL ranges are served
    by the nearest replica; reads of REGIONAL ranges go to leaseholders.
    Commit-waits if a future-time value was observed. *)

(** {2 Statistics} *)

type stats = {
  mutable commits : int;
  mutable restarts : int;
  mutable wounds : int;  (** restarts caused by wound-wait (subset) *)
  mutable reader_commit_waits : int;
  mutable writer_commit_wait_micros : int;
}

val stats : manager -> stats
