(* Protocol-independent transaction machinery shared by both concurrency
   control backends: reads with uncertainty restarts, intent writes, read
   refreshes, the parallel/sequential commit protocol, commit-status
   recovery and record heartbeats. [Cc_wound_wait] is a thin veneer over
   this module; [Cc_epoch_occ] reuses it for everything after its
   write-buffer flush. *)

open Cc
module Cluster = Crdb_kv.Cluster
module Txnrec = Crdb_kv.Txnrec
module Ts = Crdb_hlc.Timestamp
module Clock = Crdb_hlc.Clock
module Proc = Crdb_sim.Proc
module Obs = Crdb_obs.Obs
module Trace = Crdb_obs.Trace
module Metrics = Crdb_obs.Metrics
module Phase = Crdb_obs.Phase
module Hist = Crdb_stats.Hist
module Sim = Crdb_sim.Sim

(* ------------------------------------------------------------------ *)
(* Read refresh (§5.1)                                                 *)

let refresh_all t ~to_ts =
  if t.mgr.opts.Options.unsafe_no_refresh then ()
  else begin
  (* Validate every read span in parallel (CRDB batches the refresh). *)
  let sim = Cluster.sim t.mgr.cl in
  Metrics.inc t.mgr.c_refreshes.(t.gw);
  let start = Sim.now sim in
  let results =
    List.map
      (fun span ->
        Proc.async_catch sim (fun () ->
            match span with
            | Point key ->
                Cluster.refresh t.mgr.cl ~span:t.sp ~phases:t.phases
                  ~gateway:t.gw ~txn:t.id ~key ~from_ts:t.read_ts ~to_ts ()
            | Span (start_key, end_key) ->
                Cluster.refresh_span t.mgr.cl ~span:t.sp ~phases:t.phases
                  ~gateway:t.gw ~txn:t.id ~start_key ~end_key
                  ~from_ts:t.read_ts ~to_ts ()))
      t.reads
  in
  let ok = List.for_all Proc.await_catch results in
  Phase.add t.phases Phase.Refresh (Sim.now sim - start);
  if not ok then begin
    if t.mgr.mode = `Epoch_occ then
      Metrics.inc t.mgr.c_epoch_validation_failures.(t.gw);
    raise (Restart "read refresh failed")
  end
  end

let bump_and_refresh t new_ts =
  if Ts.(new_ts > t.read_ts) then begin
    if t.reads <> [] then refresh_all t ~to_ts:new_ts;
    t.read_ts <- new_ts;
    (* A value above the local hybrid clock is a future-time (synthetic)
       write: the reader must commit-wait before completing (§6.2).
       Present-time (Lag) values were already folded into the clock by the
       HLC receive rule at the call site, so they never trip this. *)
    let clock = Cluster.clock t.mgr.cl t.gw in
    if
      Ts.(new_ts > Clock.last clock)
      && Ts.wall new_ts > Clock.physical_now clock
    then t.observed_future <- true
  end

(* ------------------------------------------------------------------ *)
(* Reads                                                               *)

let is_global t key =
  match Cluster.range_of_key t.mgr.cl key with
  | rid -> (
      match Cluster.policy_of t.mgr.cl rid with
      | Cluster.Lead -> true
      | Cluster.Lag _ -> false)
  | exception Not_found -> raise (Fatal ("no range for key " ^ key))

let restartable_read_error e =
  (* Conflict timeouts and unavailability are worth a fresh attempt. *)
  raise (Restart e)

let get t key =
  let rec go attempts =
    if attempts > 20 then raise (Restart "uncertainty loop");
    let own_write = List.mem key t.writes in
    (* Read-your-own-writes under pipelining: wait for in-flight intents on
       this key to apply before reading it. *)
    if own_write then
      List.iter
        (fun (k, ack) ->
          if String.equal k key then
            match
              Proc.await_timeout (Cluster.sim t.mgr.cl) ack ~timeout:8_000_000
            with
            | Some `Applied -> ()
            | Some `Prevented ->
                raise (Wounded ("write prevented by recovery on " ^ key))
            | Some `Dropped | None -> raise (Restart "pipelined write lost"))
        t.outstanding;
    let leaseholder_read () =
      Cluster.read t.mgr.cl ~inline_bump:(t.reads = []) ~span:t.sp
        ~phases:t.phases ~pri:t.pri ~fate:(fate_of t) ~gateway:t.gw
        ~txn:(Some t.id) ~key ~ts:t.read_ts ~max_ts:t.max_ts ()
    in
    let result =
      if is_global t key && not own_write then
        match
          Cluster.read_follower t.mgr.cl ~span:t.sp ~phases:t.phases ~at:t.gw
            ~txn:(Some t.id) ~key ~ts:t.read_ts ~max_ts:t.max_ts ()
        with
        | Cluster.Read_redirect -> leaseholder_read ()
        | r -> r
      else leaseholder_read ()
    in
    match result with
    | Cluster.Read_value { value; _ } ->
        t.reads <- Point key :: t.reads;
        value
    | Cluster.Read_uncertain { value_ts } ->
        (* HLC receive rule on the response: a present-time uncertain value
           ratchets the gateway clock. Synthetic (future-time) timestamps
           from global tables must not — they force a real commit-wait. *)
        if not (is_global t key) then
          Clock.update (Cluster.clock t.mgr.cl t.gw) value_ts;
        bump_and_refresh t value_ts;
        go (attempts + 1)
    | Cluster.Read_redirect -> go (attempts + 1)
    | Cluster.Read_wounded reason -> raise (Wounded reason)
    | Cluster.Read_err e -> restartable_read_error e
  in
  go 0

let scan t ~start_key ~end_key ?limit () =
  let rec go attempts =
    if attempts > 20 then raise (Restart "uncertainty loop");
    let range_is_global =
      match Cluster.range_of_key t.mgr.cl start_key with
      | rid -> (
          match Cluster.policy_of t.mgr.cl rid with
          | Cluster.Lead -> true
          | Cluster.Lag _ -> false)
      | exception Not_found -> raise (Fatal ("no range for key " ^ start_key))
    in
    let leaseholder_scan () =
      Cluster.scan t.mgr.cl ~span:t.sp ~phases:t.phases ~pri:t.pri
        ~fate:(fate_of t) ~gateway:t.gw ~txn:(Some t.id) ~start_key ~end_key
        ~ts:t.read_ts ~max_ts:t.max_ts ~limit ()
    in
    let result =
      if range_is_global && t.writes = [] then
        match
          Cluster.scan_follower t.mgr.cl ~span:t.sp ~phases:t.phases ~at:t.gw
            ~txn:(Some t.id) ~start_key ~end_key ~ts:t.read_ts ~max_ts:t.max_ts
            ~limit ()
        with
        | Cluster.Scan_redirect -> leaseholder_scan ()
        | r -> r
      else leaseholder_scan ()
    in
    match result with
    | Cluster.Scan_rows rows ->
        t.reads <- Span (start_key, end_key) :: t.reads;
        rows
    | Cluster.Scan_uncertain { value_ts } ->
        if not range_is_global then
          Clock.update (Cluster.clock t.mgr.cl t.gw) value_ts;
        bump_and_refresh t value_ts;
        go (attempts + 1)
    | Cluster.Scan_redirect -> go (attempts + 1)
    | Cluster.Scan_wounded reason -> raise (Wounded reason)
    | Cluster.Scan_err e -> restartable_read_error e
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Locking reads (SELECT FOR UPDATE / FOR SHARE)                       *)

let acquire_lock t strength key =
  match
    Cluster.lock_key t.mgr.cl ~span:t.sp ~phases:t.phases ~pri:t.pri
      ~anchor:(Option.value t.anchor ~default:"")
      ~fate:(fate_of t) ~gateway:t.gw ~txn:t.id ~key ~ts:t.read_ts ~strength ()
  with
  | Cluster.Write_ok _ ->
      if not (List.mem key t.rlocks) then t.rlocks <- key :: t.rlocks
  | Cluster.Write_wounded reason -> raise (Wounded reason)
  | Cluster.Write_err e -> raise (Restart e)

(* ------------------------------------------------------------------ *)
(* Writes                                                              *)

(* HLC receive rule on the write response: the gateway folds a present-time
   pushed timestamp into its clock, so commit-wait (which waits on the
   hybrid clock) is a no-op for it. Future-time (Lead) writes stay
   synthetic and commit-wait for real. *)
let observe_pushed t key pushed =
  if not (is_global t key) then
    Clock.update (Cluster.clock t.mgr.cl t.gw) pushed

let write_value t key value =
  let provisional = Ts.max t.read_ts t.write_ts in
  (* The first write's key becomes the anchor: its apply registers the
     transaction record in that key's range. *)
  let anchor = match t.anchor with Some a -> a | None -> key in
  let note_written pushed =
    t.write_ts <- Ts.max t.write_ts pushed;
    observe_pushed t key pushed;
    if t.anchor = None then t.anchor <- Some anchor;
    if not (List.mem key t.writes) then t.writes <- key :: t.writes
  in
  if t.mgr.opts.Options.pipelined_writes then begin
    let applied = Crdb_sim.Ivar.create () in
    match
      Cluster.write t.mgr.cl ~applied ~span:t.sp ~phases:t.phases ~pri:t.pri
        ~anchor ~fate:(fate_of t) ~gateway:t.gw ~txn:t.id ~key ~value
        ~ts:provisional ()
    with
    | Cluster.Write_ok pushed ->
        note_written pushed;
        t.outstanding <- (key, applied) :: t.outstanding
    | Cluster.Write_wounded reason -> raise (Wounded reason)
    | Cluster.Write_err e -> raise (Restart e)
  end
  else
    match
      Cluster.write t.mgr.cl ~span:t.sp ~phases:t.phases ~pri:t.pri ~anchor
        ~fate:(fate_of t) ~gateway:t.gw ~txn:t.id ~key ~value ~ts:provisional
        ()
    with
    | Cluster.Write_ok pushed -> note_written pushed
    | Cluster.Write_wounded reason -> raise (Wounded reason)
    | Cluster.Write_err e -> raise (Restart e)

(* ------------------------------------------------------------------ *)
(* Commit protocol                                                     *)

let commit_wait mgr ~gw ts =
  let clock = Cluster.clock mgr.cl gw in
  let sim = Cluster.sim mgr.cl in
  let waited = ref 0 in
  let rec loop () =
    (* CRDB waits on the hybrid clock, not the physical one: a timestamp
       the gateway has already observed (HLC receive rule, e.g. from a
       write response) needs no physical wait. Only synthetic future-time
       timestamps — which never ratchet clocks — force a real wait. *)
    if Ts.(Clock.last clock >= ts) then ()
    else
      let now = Clock.physical_now clock in
      if now < Ts.wall ts then begin
        let d = Ts.wall ts - now + 1 in
        waited := !waited + d;
        Proc.sleep sim d;
        loop ()
      end
  in
  loop ();
  !waited

(* Await every outstanding pipelined write confirmation; all must have
   applied for the commit to be valid. A prevented write means commit-status
   recovery decided against us (restart, same priority); a dropped or silent
   one leaves the write's fate — and hence the commit's — indeterminate. *)
let await_acks t =
  let sim = Cluster.sim t.mgr.cl in
  List.iter
    (fun (key, ack) ->
      match Proc.await_timeout sim ack ~timeout:8_000_000 with
      | Some `Applied -> ()
      | Some `Prevented ->
          raise (Wounded ("write prevented by recovery on " ^ key))
      | Some `Dropped | None -> raise (Restart "pipelined write lost"))
    t.outstanding;
  t.outstanding <- []

(* Commit-time variant of {!await_acks}: once the record may be STAGING, a
   lost ack no longer implies a lost write — the write may have applied
   with only its confirmation dropped, and a concurrent recovery may
   finalize the implicit commit. Classify rather than raise, so the caller
   can learn the fate from the record. A prevention is still decisive: the
   write provably never applied and never will, so the commit is dead. *)
let await_acks_classified t =
  let sim = Cluster.sim t.mgr.cl in
  let out =
    List.fold_left
      (fun acc (key, ack) ->
        match (acc, Proc.await_timeout sim ack ~timeout:8_000_000) with
        | (`Prevented _ as p), _ -> p
        | _, Some `Prevented ->
            `Prevented ("write prevented by recovery on " ^ key)
        | `Lost, _ -> `Lost
        | `Ok, Some `Applied -> `Ok
        | `Ok, (Some `Dropped | None) -> `Lost)
      `Ok t.outstanding
  in
  t.outstanding <- [];
  out

(* Learn the fate of an attempt whose commit became ambiguous (a staging or
   commit reply was lost, or a pipelined write's ack was): run the same
   commit-status recovery a pusher would, against our own record. The
   anchor range's log totally orders our probes and finalization against
   any concurrent recovery, so whatever decision applies first is the one
   we report. A record stuck Pending (the stage proposal itself was lost)
   is aborted in place — first-decision-wins bars a late stage from
   resurrecting it. Only if the anchor range stays unreachable throughout
   do we give up and surface indeterminacy. *)
let determine_fate t ~akey ~commit_ts ~inflight reason =
  let sim = Cluster.sim t.mgr.cl in
  let rec go n =
    if n > 6 then raise (Indeterminate reason)
    else
      match
        Cluster.recover_txn t.mgr.cl ~gateway:t.gw ~span:t.sp ~phases:t.phases
          ~txn:t.id ~anchor_key:akey ~ts:commit_ts ~inflight ()
      with
      | Some (Some cts) -> `Committed cts
      | Some None -> `Aborted
      | None -> (
          match
            Cluster.txn_status t.mgr.cl ~span:t.sp ~phases:t.phases
              ~gateway:t.gw ~txn:t.id ~key:akey ()
          with
          | Some (Txnrec.Committed cts) -> `Committed cts
          | Some (Txnrec.Aborted _) -> `Aborted
          | Some Txnrec.Pending | None -> (
              match
                Cluster.abort_txn t.mgr.cl ~span:t.sp ~gateway:t.gw ~txn:t.id
                  ~key:akey ~reason:"ambiguous commit" ()
              with
              | Some (Txnrec.Aborted _) -> `Aborted
              | Some (Txnrec.Committed cts) -> `Committed cts
              | Some (Txnrec.Pending | Txnrec.Staging _) | None ->
                  Proc.sleep sim (200_000 * n);
                  go (n + 1))
          | Some (Txnrec.Staging _) ->
              Proc.sleep sim (200_000 * n);
              go (n + 1))
  in
  go 1

(* Intent resolution covers explicitly locked keys too: [Op_resolve]'s
   apply releases the lock-table grip and intent resolution on a key the
   transaction never wrote is a no-op. *)
let resolve_keys t =
  List.rev t.writes
  @ List.filter (fun k -> not (List.mem k t.writes)) (List.rev t.rlocks)

let commit ?(min_commit_ts = Ts.zero) t =
  let sim = Cluster.sim t.mgr.cl in
  let commit_ts = Ts.max (Ts.max t.read_ts t.write_ts) min_commit_ts in
  (match t.fate_ with
  | `Wounded reason -> raise (Wounded reason)
  | `Aborted -> raise (Restart "transaction aborted")
  | `Live -> ());
  if t.writes <> [] && Ts.(commit_ts > t.read_ts) then begin
    (* The provisional timestamp was pushed (timestamp cache, closed
       timestamp target, or newer committed version — or, under Epoch_occ,
       the epoch boundary): validate reads at the commit timestamp before
       committing. *)
    refresh_all t ~to_ts:commit_ts;
    t.read_ts <- commit_ts
  end;
  if t.writes <> [] then begin
    let akey = match t.anchor with Some a -> a | None -> assert false in
    (* Reach the commit point. The record transition races concurrent
       wound-wait pushes in the anchor range's log, and whichever side
       applies first is authoritative: [Aborted] here means an older
       transaction (or a recovery) got there first. *)
    let explicitly_committed =
      if t.mgr.opts.Options.parallel_commits then begin
        (* Parallel commit: write the record as STAGING — declaring the
           still-unacknowledged writes — concurrently with those writes'
           replication. Implicit commit = staging applied ∧ every declared
           write applied; only then may the client be acked. *)
        let tr = Obs.trace t.mgr.obs in
        let ssp = Trace.span tr ~parent:t.sp ~node:t.gw ~txn:t.id "txn.stage" in
        let stage_start = Sim.now sim in
        let inflight =
          List.sort_uniq String.compare
            (List.filter_map
               (fun (k, ack) ->
                 if Crdb_sim.Ivar.peek ack = Some `Applied then None
                 else Some k)
               t.outstanding)
        in
        t.commit_initiated <- true;
        let staged =
          Proc.async sim (fun () ->
              Cluster.stage_txn t.mgr.cl ~span:ssp ~phases:t.phases
                ~gateway:t.gw ~txn:t.id ~key:akey ~pri:t.pri ~ts:commit_ts
                ~inflight ())
        in
        let acks = await_acks_classified t in
        let st = Proc.await staged in
        Phase.add t.phases Phase.Staging (Sim.now sim - stage_start);
        Trace.finish tr ssp;
        match (st, acks) with
        | Some (Txnrec.Committed _), _ -> true (* a recovery finalized us *)
        | Some (Txnrec.Aborted { reason; _ }), _ -> raise (Wounded reason)
        | Some (Txnrec.Staging _), `Ok -> false (* implicitly committed *)
        | _, `Prevented reason -> raise (Wounded reason)
        | (Some (Txnrec.Staging _ | Txnrec.Pending) | None), (`Ok | `Lost)
          -> (
            (* The staging reply or a pipelined write's confirmation was
               lost: the implicit commit may have gone through, and a
               concurrent recovery may already have finalized — and
               resolved — it. A blind restart here would re-run a possibly
               committed body (a duplicate write); the fate must come from
               the record. *)
            match
              determine_fate t ~akey ~commit_ts ~inflight
                "commit status indeterminate"
            with
            | `Committed _ -> true
            | `Aborted -> raise (Wounded "ambiguous commit aborted"))
      end
      else begin
        (* Sequential commit: every intent replicates first, then the
           record flips to Committed in its own consensus round. *)
        await_acks t;
        t.commit_initiated <- true;
        match
          Cluster.commit_txn t.mgr.cl ~span:t.sp ~phases:t.phases
            ~gateway:t.gw ~txn:t.id ~key:akey ~ts:commit_ts ()
        with
        | Some (Txnrec.Committed _) -> true
        | Some (Txnrec.Aborted { reason; _ }) -> raise (Wounded reason)
        | Some (Txnrec.Pending | Txnrec.Staging _) | None -> (
            (* The commit reply was lost; the record may have flipped to
               Committed. With no in-flight writes declared, recovery
               degenerates to re-issuing the (idempotent) commit decision. *)
            match
              determine_fate t ~akey ~commit_ts ~inflight:[]
                "commit status indeterminate"
            with
            | `Committed _ -> true
            | `Aborted -> raise (Wounded "ambiguous commit aborted"))
      end
    in
    (* Post-commit bookkeeping: make the commit explicit (so pushers stop
       running recovery against the staging record) and resolve intents.
       [attributed] distinguishes work the client waits for — charged to
       the attempt's span and phases — from work spawned after the ack. *)
    let resolve_now ~attributed () =
      t.finished <- true;
      if not explicitly_committed then
        ignore
          (if attributed then
             Cluster.commit_txn t.mgr.cl ~span:t.sp ~phases:t.phases
               ~gateway:t.gw ~txn:t.id ~key:akey ~ts:commit_ts ()
           else
             Cluster.commit_txn t.mgr.cl ~gateway:t.gw ~txn:t.id ~key:akey
               ~ts:commit_ts ()
            : Txnrec.status option);
      if attributed then
        Cluster.resolve t.mgr.cl ~span:t.sp ~phases:t.phases ~gateway:t.gw
          ~txn:t.id ~commit:(Some commit_ts) ~keys:(resolve_keys t)
          ~sync_all:false ()
      else
        Cluster.resolve t.mgr.cl ~gateway:t.gw ~txn:t.id
          ~commit:(Some commit_ts) ~keys:(resolve_keys t) ~sync_all:false
          ()
    in
    if not t.mgr.opts.Options.hold_locks_during_commit_wait then
      (* The client is acked at the commit point — the implicit commit
         under parallel commits, the record's consensus round otherwise.
         Making the commit explicit and resolving intents is cleanup the
         coordinator runs after the ack (§6.2 releases locks concurrently
         with the commit wait, minimizing how long readers observe them). *)
      Cluster.spawn_background t.mgr.cl (fun () ->
          resolve_now ~attributed:false ())
  end
  else if t.rlocks <> [] then
    (* Read-only but explicitly locked: nothing to commit, but the
       lock-table grips must go. *)
    Cluster.spawn_background t.mgr.cl (fun () ->
        Cluster.resolve t.mgr.cl ~gateway:t.gw ~txn:t.id ~commit:None
          ~keys:(List.rev t.rlocks) ~sync_all:false ());
  let must_wait = t.writes <> [] || t.observed_future in
  if must_wait then begin
    let tr = Obs.trace t.mgr.obs in
    let wsp =
      Trace.span tr ~parent:t.sp ~node:t.gw ~txn:t.id "txn.commit_wait"
    in
    let waited = commit_wait t.mgr ~gw:t.gw commit_ts in
    Trace.annotate wsp "waited_us" (string_of_int waited);
    Trace.finish tr wsp;
    Phase.add t.phases Phase.Commit_wait waited;
    Hist.add t.mgr.h_commit_wait waited;
    if t.writes <> [] then
      t.mgr.stats.writer_commit_wait_micros <-
        t.mgr.stats.writer_commit_wait_micros + waited
    else if waited > 0 then begin
      t.mgr.stats.reader_commit_waits <- t.mgr.stats.reader_commit_waits + 1;
      Metrics.inc t.mgr.c_reader_waits.(t.gw)
    end
  end;
  if t.writes <> [] && t.mgr.opts.Options.hold_locks_during_commit_wait then begin
    (* Spanner-style ablation: locks persist through the commit wait. *)
    let akey = match t.anchor with Some a -> a | None -> assert false in
    t.finished <- true;
    ignore
      (Cluster.commit_txn t.mgr.cl ~span:t.sp ~phases:t.phases ~gateway:t.gw
         ~txn:t.id ~key:akey ~ts:commit_ts ()
        : Txnrec.status option);
    Cluster.resolve t.mgr.cl ~span:t.sp ~phases:t.phases ~gateway:t.gw
      ~txn:t.id ~commit:(Some commit_ts) ~keys:(resolve_keys t)
      ~sync_all:false ()
  end;
  t.finished <- true;
  t.mgr.stats.commits <- t.mgr.stats.commits + 1;
  Metrics.inc t.mgr.c_commits.(t.gw)

let abort t =
  t.finished <- true;
  (* Finalize the record first so concurrent pushers see Aborted; no-op if
     a wound already aborted it. The applied status is authoritative: a
     racing recovery may already have committed a staged attempt
     (first-decision-wins), in which case the intents must resolve as
     committed — removing them would erase a commit concurrent readers may
     have observed. Read-only transactions (no anchor) never had a
     record. *)
  let committed_at =
    match t.anchor with
    | Some key -> (
        match
          Cluster.abort_txn t.mgr.cl ~span:t.sp ~gateway:t.gw ~txn:t.id ~key
            ~reason:"client abort" ()
        with
        | Some (Txnrec.Committed cts) -> Some cts
        | Some (Txnrec.Aborted _ | Txnrec.Pending | Txnrec.Staging _) | None
          ->
            None)
    | None -> None
  in
  if t.writes <> [] || t.rlocks <> [] then
    Cluster.resolve t.mgr.cl ~span:t.sp ~gateway:t.gw ~txn:t.id
      ~commit:committed_at ~keys:(resolve_keys t) ~sync_all:false ();
  committed_at

(* Keep the transaction record live while the coordinator (gateway node) is
   up: pushers treat a record whose heartbeat is stale as abandoned (or, for
   STAGING records, as recoverable) and clean up its intents. Heartbeats
   only start once the first write establishes the anchor — before that
   there is no record to maintain. The responses double as the coordinator's
   wound notifications: an [Aborted] status cancels the transaction's
   in-flight requests through its [fate] closure. The loop stops
   heartbeating while the gateway is down — exactly the abandonment signal
   wound-wait relies on — and exits once the transaction finishes. *)
let start_heartbeat t =
  let mgr = t.mgr in
  let sim = Cluster.sim mgr.cl in
  let interval = (Cluster.config mgr.cl).Cluster.txn_heartbeat_interval in
  Proc.spawn sim (fun () ->
      let rec loop () =
        Proc.sleep sim interval;
        if t.finished then ()
        else
          match t.anchor with
          | None -> loop ()
          | Some key ->
              if Crdb_net.Transport.is_alive (Cluster.net mgr.cl) t.gw then
                match
                  Cluster.heartbeat_txn mgr.cl ~gateway:t.gw ~txn:t.id ~key ()
                with
                | Some (Txnrec.Aborted { reason; wound = true }) ->
                    t.fate_ <- `Wounded reason
                | Some (Txnrec.Aborted _) -> t.fate_ <- `Aborted
                | Some (Txnrec.Committed _) -> ()
                | Some (Txnrec.Pending | Txnrec.Staging _) | None -> loop ()
              else loop ()
      in
      loop ())

let fresh_txn ?priority ?(phases = Phase.nil) mgr ~gateway =
  let id = mgr.next_txn_id in
  mgr.next_txn_id <- id + 1;
  Metrics.inc mgr.c_attempts.(gateway);
  let read_ts = Cluster.now_ts mgr.cl gateway in
  (* Wound-wait priority: the first attempt's birth timestamp, carried
     across retries so a transaction only ever gets older. The record
     itself is registered by the first write's apply at the anchor range —
     no upfront registration RPC. *)
  let pri = match priority with Some p -> p | None -> read_ts in
  let t =
    {
      mgr;
      id;
      gw = gateway;
      pri;
      read_ts;
      max_ts = Ts.add_wall read_ts (Cluster.config mgr.cl).Cluster.max_offset;
      write_ts = Ts.zero;
      reads = [];
      writes = [];
      anchor = None;
      outstanding = [];
      fate_ = `Live;
      finished = false;
      observed_future = false;
      commit_initiated = false;
      sp = Trace.nil;
      phases;
      wbuf = [];
      rlocks = [];
    }
  in
  start_heartbeat t;
  t
