(** Multi-version concurrency control storage.

    One [Mvcc.t] is the state machine of one replica of one Range: an ordered
    map from keys to version chains plus at most one provisional {e write
    intent} per key. Committed versions are immutable; an intent is the
    uncommitted write of an in-flight transaction and blocks conflicting
    readers and writers until resolved.

    Timestamps follow CRDB semantics: a read at timestamp [ts] observes the
    latest committed version with timestamp [<= ts], unless a committed
    version or intent falls inside the reader's uncertainty window
    [(ts, max_ts]], in which case the reader must ratchet its timestamp
    (§6.1). *)

type ts = Crdb_hlc.Timestamp.t

type intent = {
  txn_id : int;
  ts : ts;
  value : string option;
  pri : ts;
      (** the writer's wound-wait priority timestamp, so a pusher blocked on
          the intent can address the writer's record without a registry *)
  anchor : string;
      (** the writer's anchor key — where its transaction record lives;
          [""] for raw (recordless) writers *)
}

type read_outcome =
  | Value of { value : string option; ts : ts }
      (** Latest committed version at or below the read timestamp; [value =
          None] and [ts = Timestamp.zero] when the key has never been
          written; [value = None] with a non-zero [ts] is a tombstone. *)
  | Uncertain of { value_ts : ts }
      (** A committed version exists inside the uncertainty window; the
          reader must bump its timestamp to [value_ts] and refresh. *)
  | Intent_blocked of intent
      (** A foreign intent at or below [max_ts] blocks this read. *)

type write_outcome =
  | Written
  | Write_blocked of intent  (** A foreign intent occupies the key. *)
  | Write_prevented
      (** Commit-status recovery barred this transaction from ever writing
          the key (see {!prevent}); the write must not take effect and the
          writer's commit must fail. *)

type t

val create : unit -> t

val read : t -> key:string -> ts:ts -> max_ts:ts -> for_txn:int option -> read_outcome
(** [read t ~key ~ts ~max_ts ~for_txn] per the rules above. A transaction
    always observes its own intent regardless of timestamps. [max_ts] is the
    upper bound of the uncertainty interval ([ts] itself for stale reads,
    which have no uncertainty). *)

val put_intent :
  t ->
  ?pri:ts ->
  ?anchor:string ->
  key:string ->
  txn_id:int ->
  ts:ts ->
  value:string option ->
  unit ->
  write_outcome
(** Lay or update (same transaction, e.g. after a timestamp bump) an intent.
    [pri]/[anchor] stamp the writer's wound-wait priority and record
    location onto the intent for pushers to find. *)

val prevent : t -> key:string -> txn_id:int -> ts:ts -> [ `Found | `Prevented ]
(** The QueryIntent-with-prevention step of parallel-commit status recovery
    (applied through the key's Raft log, so it is totally ordered against
    the write it races). [`Found] iff the transaction's intent is present or
    a committed version exists at exactly [ts] (the intent was already
    resolved); otherwise the transaction is barred from ever writing this
    key ({!put_intent} returns [Write_prevented] from now on) and the
    recovery may abort it. *)

val is_prevented : t -> key:string -> txn_id:int -> bool

val resolve_intent : t -> key:string -> txn_id:int -> commit:ts option -> unit
(** [commit = Some ts] promotes the intent to a committed version at [ts];
    [None] discards it. No-op if the key holds no intent of [txn_id]. *)

val intent_on : t -> key:string -> intent option

val latest_ts : t -> key:string -> ts
(** Timestamp of the newest committed version ([Timestamp.zero] if none). *)

val has_committed_after : t -> key:string -> after:ts -> upto:ts -> bool
(** True iff a committed version exists with timestamp in [(after, upto]].
    This is the read-refresh validation check (§5.1, Read Refresh). *)

val span_has_writes_in_window :
  t ->
  start_key:string ->
  end_key:string ->
  after:ts ->
  upto:ts ->
  ignore_txn:int option ->
  bool
(** True iff any key in [\[start_key, end_key)] has a committed version in
    [(after, upto]] or a foreign intent at or below [upto] (span refresh
    validation — catches phantoms and deletions alike). *)

val scan :
  t ->
  start_key:string ->
  end_key:string ->
  ts:ts ->
  max_ts:ts ->
  for_txn:int option ->
  limit:int option ->
  (string * read_outcome) list
(** Visit keys in [\[start_key, end_key)] in order. Keys whose outcome is
    [Value {value = None; _}] (never written or deleted) are skipped; the
    scan stops after [limit] live rows if given. Uncertain / blocked
    outcomes are returned in place so the caller can react. *)

val keys_with_intents : t -> string list
val num_keys : t -> int

val live_bytes : t -> int
(** Key + value bytes of the latest live committed version of every key
    (tombstoned and never-written keys contribute nothing). Computed by a
    fold over the record map, so it is trivially carried through
    {!split_off} and {!absorb} — the size feed the split/merge queues
    threshold on ([kv.range.bytes]). *)

val fold_latest : t -> init:'a -> f:('a -> string -> string -> 'a) -> 'a
(** Fold over the latest live committed value of every key (testing aid). *)

val copy : t -> t
(** Deep copy (Raft snapshot transfer). *)

val split_off : t -> key:string -> t
(** [split_off t ~key] removes every record with key [>= key] from [t] and
    returns them as a fresh store. Records are moved, not copied — the
    caller owns the returned store (range split). *)

val absorb : t -> t -> unit
(** [absorb t src] deep-copies every record of [src] into [t], replacing
    any record [t] already holds for the same key (range merge: the
    subsumed right-hand store wins for its own span). *)

val replace_with : t -> t -> unit
(** [replace_with t src] makes [t]'s contents a deep copy of [src]
    (snapshot installation on a follower). *)

val put_version : t -> key:string -> ts:ts -> value:string option -> unit
(** Install a committed version directly, bypassing the intent protocol.
    Used only for administrative bulk loading of benchmark datasets. *)
