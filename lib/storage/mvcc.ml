module Ts = Crdb_hlc.Timestamp
module Smap = Map.Make (String)

type ts = Ts.t

type intent = {
  txn_id : int;
  ts : ts;
  value : string option;
  pri : ts;
  anchor : string;
}

type read_outcome =
  | Value of { value : string option; ts : ts }
  | Uncertain of { value_ts : ts }
  | Intent_blocked of intent

type write_outcome = Written | Write_blocked of intent | Write_prevented

(* Versions are kept newest-first. [prevented] holds transaction ids whose
   future intent writes on this key were barred by commit-status recovery
   (the QueryIntent "prevention" of parallel commits). *)
type record = {
  mutable versions : (ts * string option) list;
  mutable intent : intent option;
  mutable prevented : int list;
}

type t = { mutable records : record Smap.t }

let create () = { records = Smap.empty }

let find t key = Smap.find_opt key t.records

let find_or_add t key =
  match Smap.find_opt key t.records with
  | Some r -> r
  | None ->
      let r = { versions = []; intent = None; prevented = [] } in
      t.records <- Smap.add key r t.records;
      r

let version_at versions ts =
  List.find_opt (fun (vts, _) -> Ts.(vts <= ts)) versions

(* Newest committed version with timestamp in (lo, hi]. *)
let version_in_window versions ~lo ~hi =
  List.find_opt (fun (vts, _) -> Ts.(vts > lo) && Ts.(vts <= hi)) versions

let read_record record ~ts ~max_ts ~for_txn =
  let own_intent =
    match (record.intent, for_txn) with
    | Some i, Some txn when i.txn_id = txn -> Some i
    | Some _, (Some _ | None) | None, (Some _ | None) -> None
  in
  match own_intent with
  | Some i -> Value { value = i.value; ts = i.ts }
  | None -> (
      let foreign_blocking =
        match record.intent with
        | Some i when Ts.(i.ts <= max_ts) -> Some i
        | Some _ | None -> None
      in
      match foreign_blocking with
      | Some i -> Intent_blocked i
      | None -> (
          match version_in_window record.versions ~lo:ts ~hi:max_ts with
          | Some (vts, _) -> Uncertain { value_ts = vts }
          | None -> (
              match version_at record.versions ts with
              | Some (vts, v) -> Value { value = v; ts = vts }
              | None -> Value { value = None; ts = Ts.zero })))

let read t ~key ~ts ~max_ts ~for_txn =
  match find t key with
  | None -> Value { value = None; ts = Ts.zero }
  | Some record -> read_record record ~ts ~max_ts ~for_txn

let put_intent t ?(pri = Ts.zero) ?(anchor = "") ~key ~txn_id ~ts ~value () =
  let record = find_or_add t key in
  if List.mem txn_id record.prevented then Write_prevented
  else
    match record.intent with
    | Some i when i.txn_id <> txn_id -> Write_blocked i
    | Some _ | None ->
        record.intent <- Some { txn_id; ts; value; pri; anchor };
        Written

let prevent t ~key ~txn_id ~ts =
  let record = find_or_add t key in
  let intent_present =
    match record.intent with Some i -> i.txn_id = txn_id | None -> false
  in
  let committed_at_ts =
    List.exists (fun (vts, _) -> Ts.equal vts ts) record.versions
  in
  if intent_present || committed_at_ts then `Found
  else begin
    if not (List.mem txn_id record.prevented) then
      record.prevented <- txn_id :: record.prevented;
    `Prevented
  end

let is_prevented t ~key ~txn_id =
  match find t key with
  | None -> false
  | Some r -> List.mem txn_id r.prevented

let resolve_intent t ~key ~txn_id ~commit =
  match find t key with
  | None -> ()
  | Some record -> (
      match record.intent with
      | Some i when i.txn_id = txn_id ->
          record.intent <- None;
          (match commit with
          | Some commit_ts ->
              let versions =
                (commit_ts, i.value) :: record.versions
                |> List.stable_sort (fun (a, _) (b, _) -> Ts.compare b a)
              in
              record.versions <- versions
          | None -> ())
      | Some _ | None -> ())

let intent_on t ~key =
  match find t key with None -> None | Some r -> r.intent

let latest_ts t ~key =
  match find t key with
  | None -> Ts.zero
  | Some { versions = []; _ } -> Ts.zero
  | Some { versions = (ts, _) :: _; _ } -> ts

let has_committed_after t ~key ~after ~upto =
  match find t key with
  | None -> false
  | Some record ->
      (match version_in_window record.versions ~lo:after ~hi:upto with
      | Some _ -> true
      | None -> false)

let span_has_writes_in_window t ~start_key ~end_key ~after ~upto ~ignore_txn =
  Smap.exists
    (fun key record ->
      String.compare key start_key >= 0
      && String.compare key end_key < 0
      && ((match version_in_window record.versions ~lo:after ~hi:upto with
          | Some _ -> true
          | None -> false)
         ||
         match record.intent with
         | Some i ->
             (match ignore_txn with Some x -> i.txn_id <> x | None -> true)
             && Ts.(i.ts <= upto)
         | None -> false))
    t.records

let scan t ~start_key ~end_key ~ts ~max_ts ~for_txn ~limit =
  let exception Done of (string * read_outcome) list in
  let count = ref 0 in
  let within_limit () = match limit with None -> true | Some l -> !count < l in
  try
    let acc =
      Smap.fold
        (fun key record acc ->
          if String.compare key start_key < 0 || String.compare key end_key >= 0
          then acc
          else begin
            if not (within_limit ()) then raise (Done acc);
            match read_record record ~ts ~max_ts ~for_txn with
            | Value { value = None; _ } -> acc
            | Value _ as outcome ->
                incr count;
                (key, outcome) :: acc
            | (Uncertain _ | Intent_blocked _) as outcome ->
                incr count;
                (key, outcome) :: acc
          end)
        t.records []
    in
    List.rev acc
  with Done acc -> List.rev acc

let keys_with_intents t =
  Smap.fold
    (fun key record acc ->
      match record.intent with Some _ -> key :: acc | None -> acc)
    t.records []
  |> List.rev

let num_keys t = Smap.cardinal t.records

let live_bytes t =
  Smap.fold
    (fun key record acc ->
      match record.versions with
      | (_, Some v) :: _ -> acc + String.length key + String.length v
      | (_, None) :: _ | [] -> acc)
    t.records 0

let fold_latest t ~init ~f =
  Smap.fold
    (fun key record acc ->
      match record.versions with
      | (_, Some v) :: _ -> f acc key v
      | (_, None) :: _ | [] -> acc)
    t.records init

let copy t =
  {
    records =
      Smap.map
        (fun r ->
          { versions = r.versions; intent = r.intent; prevented = r.prevented })
        t.records;
  }

let split_off t ~key =
  let left, at, right = Smap.split key t.records in
  let right = match at with None -> right | Some r -> Smap.add key r right in
  t.records <- left;
  { records = right }

let absorb t src =
  Smap.iter
    (fun key r ->
      t.records <-
        Smap.add key
          { versions = r.versions; intent = r.intent; prevented = r.prevented }
          t.records)
    src.records

let replace_with t src = t.records <- (copy src).records

let put_version t ~key ~ts ~value =
  let record = find_or_add t key in
  record.versions <-
    (ts, value) :: record.versions
    |> List.stable_sort (fun (a, _) (b, _) -> Ts.compare b a)
