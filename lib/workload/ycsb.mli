(** YCSB workloads adapted for multi-region evaluation (§7.1–7.3).

    The single [usertable] gets a locality variant matching each experiment:
    automatic or computed REGIONAL BY ROW (Fig. 4), REGIONAL BY TABLE and
    GLOBAL (Fig. 3, 5), and the legacy duplicate-indexes baseline (Fig. 5).
    Keys are integers rendered as [user%010d]; each key has a {e home
    region} [key mod (number of regions)] assigned at load time, which is
    what "locality of access" refers to (§7.2). *)

module Crdb = Crdb_core.Crdb
module Hist = Crdb_stats.Hist

type variant =
  | Rbr_default  (** automatic [crdb_region], LOS per database setting *)
  | Rbr_computed  (** [crdb_region] computed from the key (§2.3.2) *)
  | Rbr_rehoming  (** automatic region + ON UPDATE rehome_row() *)
  | Regional_table  (** REGIONAL BY TABLE IN PRIMARY REGION *)
  | Global_table
  | Dup_indexes  (** legacy duplicate-indexes topology *)

val table_name : string

val schema : variant -> regions:string list -> Crdb.Schema.table

val ddl : variant -> db:string -> regions:string list -> Crdb.Ddl.stmt list
(** The new-syntax statements to create the multi-region usertable —
    Table 2's YCSB "after" column. *)

val key_of : int -> Crdb.Value.t
val home_region : regions:string list -> int -> string

val load : Crdb.t -> Crdb.Engine.db -> variant -> keyspace:int -> unit
(** Populate [keyspace] keys, round-robin homed across the database
    regions (administrative load). *)

type workload = A | B | D
(** A = 50/50 read/update; B = 95/5 read/update; D = 95/5 read/insert. *)

type read_mode =
  | Latest  (** consistent present-time reads *)
  | Bounded_stale of int  (** [with_max_staleness] in microseconds *)

type results = {
  read_local : Hist.t;
  read_remote : Hist.t;
  write_local : Hist.t;
  write_remote : Hist.t;
  by_region_read : (string * Hist.t) list;
  by_region_write : (string * Hist.t) list;
  mutable ops : int;
  mutable errors : int;
  mutable elapsed : int;  (** simulated microseconds for the whole run *)
}

val reads : results -> Hist.t
(** All reads merged. *)

val writes : results -> Hist.t

val run :
  Crdb.t ->
  Crdb.Engine.db ->
  ?clients_per_region:int ->
  ?ops_per_client:int ->
  ?distribution:[ `Zipf | `Uniform ] ->
  ?hot_shift_every:int ->
  ?locality:float ->
  ?remote_pool:int ->
  ?sharing:int ->
  ?read_mode:read_mode ->
  ?seed:int ->
  workload:workload ->
  keyspace:int ->
  unit ->
  results
(** Drive the workload with closed-loop clients in every database region.

    [locality] (default 1.0): probability that an operation targets a key
    homed in the client's region. Remote operations draw from a
    [remote_pool]-sized per-client key pool when set; a pool is shared by
    the same-index clients of the first [sharing] regions (default 1 =
    disjoint pools, §7.2.1; 2-3 reproduce Fig. 4c's contention). Without
    [remote_pool], remote keys come from the whole keyspace.

    [hot_shift_every] (simulated microseconds): under [`Zipf], rotate the
    zipf ranks by one position each period, so the hot set of keys drifts
    through the keyspace over simulated time — the moving-hot-spot workload
    the autopilot's convergence is judged against. The rotation is a pure
    function of simulated time, so runs stay deterministic per seed.

    Defaults: 10 clients per region, 200 ops per client, Zipf. *)
