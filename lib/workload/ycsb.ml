module Crdb = Crdb_core.Crdb
module Hist = Crdb_stats.Hist
module Value = Crdb.Value
module Schema = Crdb.Schema
module Ddl = Crdb.Ddl
module Engine = Crdb.Engine
module Cluster = Crdb.Cluster
module Sim = Crdb_sim.Sim
module Proc = Crdb_sim.Proc
module Rng = Crdb_stdx.Rng

type variant =
  | Rbr_default
  | Rbr_computed
  | Rbr_rehoming
  | Regional_table
  | Global_table
  | Dup_indexes

let table_name = "usertable"
let key_of i = Value.V_string (Printf.sprintf "user%010d" i)

let key_index v =
  match v with
  | Value.V_string s when String.length s > 4 ->
      int_of_string (String.sub s 4 (String.length s - 4))
  | _ -> invalid_arg "Ycsb.key_index"

let home_region ~regions i = List.nth regions (i mod List.length regions)

let computed_region_column regions =
  Schema.column ~hidden:true
    ~default:
      (Schema.D_computed
         ( [ "ycsb_key" ],
           fun vs ->
             match vs with
             | [ v ] -> Value.V_region (home_region ~regions (key_index v))
             | _ -> Value.V_region (List.hd regions) ))
    Schema.region_column Schema.T_region

let schema variant ~regions =
  let base_columns =
    [ Schema.column "ycsb_key" Schema.T_string; Schema.column "field0" Schema.T_string ]
  in
  let make ?(columns = base_columns) ?(auto_rehome = false)
      ?(duplicate_indexes = false) locality =
    Schema.table ~name:table_name ~columns ~pkey:[ "ycsb_key" ] ~locality
      ~auto_rehome ~duplicate_indexes ()
  in
  match variant with
  | Rbr_default -> make Schema.Regional_by_row
  | Rbr_rehoming -> make ~auto_rehome:true Schema.Regional_by_row
  | Rbr_computed ->
      make
        ~columns:(base_columns @ [ computed_region_column regions ])
        Schema.Regional_by_row
  | Regional_table -> make (Schema.Regional_by_table None)
  | Global_table -> make Schema.Global
  | Dup_indexes -> make ~duplicate_indexes:true (Schema.Regional_by_table None)

let ddl variant ~db ~regions =
  (* The YCSB schema is a single table: converting it to multi-region takes
     exactly one statement once the database exists (Table 2). *)
  [ Ddl.N_create_table { db; table = schema variant ~regions } ]

let load t db variant ~keyspace =
  let regions = Engine.regions db in
  let rows_for region =
    List.filter_map
      (fun i ->
        if String.equal (home_region ~regions i) region then
          Some
            [
              ("ycsb_key", key_of i);
              ("field0", Value.V_string (Printf.sprintf "value-%d" i));
            ]
        else None)
      (List.init keyspace Fun.id)
  in
  List.iter
    (fun region -> Engine.bulk_insert db ~table:table_name ~region (rows_for region))
    regions;
  (match variant with
  | Rbr_default | Rbr_computed | Rbr_rehoming | Regional_table | Global_table
  | Dup_indexes ->
      ());
  Crdb.settle t

type workload = A | B | D
type read_mode = Latest | Bounded_stale of int

type results = {
  read_local : Hist.t;
  read_remote : Hist.t;
  write_local : Hist.t;
  write_remote : Hist.t;
  by_region_read : (string * Hist.t) list;
  by_region_write : (string * Hist.t) list;
  mutable ops : int;
  mutable errors : int;
  mutable elapsed : int;
}

let reads r =
  let h = Hist.create () in
  Hist.merge_into ~dst:h r.read_local;
  Hist.merge_into ~dst:h r.read_remote;
  h

let writes r =
  let h = Hist.create () in
  Hist.merge_into ~dst:h r.write_local;
  Hist.merge_into ~dst:h r.write_remote;
  h

let write_ratio = function A -> 0.5 | B -> 0.05 | D -> 0.05

let blind_update_variant db =
  (* Non-partitioned tables can treat YCSB updates as blind full-row writes
     (the YCSB semantics); partitioned variants must locate the row first. *)
  match (Engine.table_schema db table_name).Crdb.Schema.tbl_locality with
  | Crdb.Schema.Regional_by_table _ | Crdb.Schema.Global -> true
  | Crdb.Schema.Regional_by_row -> false

let run t db ?(clients_per_region = 10) ?(ops_per_client = 200)
    ?(distribution = `Zipf) ?hot_shift_every ?(locality = 1.0) ?remote_pool
    ?(sharing = 1) ?(read_mode = Latest) ?(seed = 0xBEEF) ~workload ~keyspace
    () =
  let regions = Engine.regions db in
  let nregions = List.length regions in
  let sim = Cluster.sim (Crdb.cluster t) in
  let results =
    {
      read_local = Hist.create ();
      read_remote = Hist.create ();
      write_local = Hist.create ();
      write_remote = Hist.create ();
      by_region_read = List.map (fun r -> (r, Hist.create ())) regions;
      by_region_write = List.map (fun r -> (r, Hist.create ())) regions;
      ops = 0;
      errors = 0;
      elapsed = 0;
    }
  in
  let master_rng = Rng.create ~seed in
  let blind_update = blind_update_variant in
  (* Fresh keys for workload D inserts start above the loaded keyspace and
     are congruent to the inserting client's region index, so that computed
     partitioning also homes them locally (100% locality of access). *)
  let insert_counter = ref (1 + (keyspace / nregions)) in
  let per_region_keys = keyspace / nregions in
  let zipf = Rng.Zipf.create ~n:(max 1 per_region_keys) () in
  let zipf_all = Rng.Zipf.create ~n:(max 1 keyspace) () in
  (* Moving hot spot: rotate the zipf ranks by one position every
     [hot_shift_every] simulated microseconds, so the hot set of keys
     drifts through the keyspace over the run. Purely a function of
     simulated time, so determinism per seed is preserved. *)
  let rotate ~n j =
    match hot_shift_every with
    | None -> j
    | Some period -> (j + (Sim.now sim / period)) mod max 1 n
  in
  let start = Sim.now sim in
  let remaining = ref (nregions * clients_per_region) in
  let finished = Crdb_sim.Ivar.create () in
  List.iteri
    (fun ri region ->
      for c = 0 to clients_per_region - 1 do
        let rng = Rng.split master_rng in
        let gateway = Crdb.gateway t ~region ~index:c () in
        let pick_local () =
          (* The j-th key homed in region ri is ri + j * nregions. *)
          let j =
            match distribution with
            | `Zipf -> rotate ~n:per_region_keys (Rng.Zipf.scrambled_sample zipf rng)
            | `Uniform -> Rng.int rng (max 1 per_region_keys)
          in
          ri + (j * nregions)
        in
        let pick_remote () =
          match remote_pool with
          | Some pool_size ->
              (* Each client's remote traffic targets a small fixed pool of
                 keys. A pool is shared by the same-index clients of the
                 first [sharing] regions (§7.2.3's "c contending clients");
                 with [sharing = 1] — and for clients of non-contending
                 regions — pools are private (§7.2.1's "disjoint sets"). *)
              let pool_id =
                if ri < sharing then c
                else clients_per_region + (ri * clients_per_region) + c
              in
              let base = pool_id * pool_size in
              let rec draw tries =
                let k = (base + Rng.int rng pool_size) mod keyspace in
                if String.equal (home_region ~regions k) region && tries < 8 then
                  draw (tries + 1)
                else k
              in
              draw 0
          | None ->
              (* Remote keys drawn from the whole keyspace, strided so
                 clients do not collide. *)
              let stride = (clients_per_region * nregions) + 1 in
              let j =
                match distribution with
                | `Zipf -> rotate ~n:keyspace (Rng.Zipf.scrambled_sample zipf_all rng)
                | `Uniform -> Rng.int rng (max 1 keyspace)
              in
              let base = (j / stride * stride) + ((ri + (c * nregions)) mod stride) in
              let k = base mod keyspace in
              if String.equal (home_region ~regions k) region then (k + 1) mod keyspace
              else k
        in
        let pick_key () =
          if Rng.bernoulli rng locality then (pick_local (), true)
          else (pick_remote (), false)
        in
        let hist_for ~is_read ~local =
          match (is_read, local) with
          | true, true -> results.read_local
          | true, false -> results.read_remote
          | false, true -> results.write_local
          | false, false -> results.write_remote
        in
        Proc.spawn sim (fun () ->
            for _ = 1 to ops_per_client do
              let is_write = Rng.bernoulli rng (write_ratio workload) in
              let t0 = Sim.now sim in
              let outcome =
                if is_write && workload = D then begin
                  (* Insert a fresh key (workload D). *)
                  let base = !insert_counter in
                  insert_counter := base + 1;
                  let id = (base * nregions) + ri in
                  match
                    Engine.insert db ~gateway ~table:table_name
                      [
                        ("ycsb_key", key_of id);
                        ("field0", Value.V_string "inserted");
                      ]
                  with
                  | Ok () -> Some (false, true)
                  | Error _ -> None
                end
                else begin
                  let key, local = pick_key () in
                  if is_write then
                    if blind_update db then
                      match
                        Engine.upsert db ~gateway ~table:table_name
                          [
                            ("ycsb_key", key_of key);
                            ("field0", Value.V_string "updated");
                          ]
                      with
                      | Ok () -> Some (false, local)
                      | Error _ -> None
                    else
                      match
                        Engine.update_by_pk db ~gateway ~table:table_name
                          [ key_of key ]
                          ~set:[ ("field0", Value.V_string "updated") ]
                      with
                      | Ok _ -> Some (false, local)
                      | Error _ -> None
                  else
                    match read_mode with
                    | Latest -> (
                        match
                          Engine.select_by_pk db ~gateway ~table:table_name
                            [ key_of key ]
                        with
                        | Ok _ -> Some (true, local)
                        | Error _ -> None)
                    | Bounded_stale staleness -> (
                        match
                          Engine.select_by_pk_stale db ~gateway
                            ~table:table_name ~max_staleness:staleness
                            [ key_of key ]
                        with
                        | Ok _ -> Some (true, local)
                        | Error _ -> None)
                end
              in
              let latency = Sim.now sim - t0 in
              results.ops <- results.ops + 1;
              (match outcome with
              | Some (is_read, local) ->
                  Hist.add (hist_for ~is_read ~local) latency;
                  let per_region =
                    if is_read then results.by_region_read
                    else results.by_region_write
                  in
                  Hist.add (List.assoc region per_region) latency
              | None -> results.errors <- results.errors + 1)
            done;
            remaining := !remaining - 1;
            if !remaining = 0 then Crdb_sim.Ivar.fill finished ())
      done)
    regions;
  Crdb.run t (fun () -> Proc.await finished);
  results.elapsed <- Sim.now sim - start;
  results
