(** Raft consensus for one Range replica group.

    Faithful to the Raft paper (leader election with randomized timeouts,
    log matching, commit rules) with the extensions CRDB's replication layer
    requires:

    - {b learners} (non-voting replicas, §5.2): receive the log and apply
      committed entries but are excluded from quorums and elections;
    - {b quiescence}: an idle leader stops heartbeating after telling its
      followers, and followers of a quiesced range only campaign if a node
      liveness oracle reports the leader's node dead — this is what makes
      simulating hundreds of mostly-idle ranges cheap, and mirrors CRDB's
      epoch-based leases;
    - {b pre-vote}: timed-out followers probe for electability before
      bumping terms, so a rejoining replica with a stale log cannot depose
      a healthy leader;
    - {b leadership transfer}: [transfer_leadership] implements lease
      preference placement (§3.2), deferred until the target's log is
      caught up;
    - {b joint-free reconfiguration}: a replicated configuration entry swaps
      the peer set; new replicas are seeded with a state snapshot.

    The module is network-agnostic: it emits messages through a [send]
    callback and receives them via {!handle}. One instance exists per
    (range, node) pair; transport and state-machine wiring live in
    [Crdb_kv]. *)

type peer_kind = Voter | Learner

type config_change = (int * peer_kind) list
(** New peer set, replacing the old one wholesale when applied. *)

type 'cmd payload =
  | Command of 'cmd
  | Config of config_change
  | Noop  (** appended by a fresh leader to commit entries from prior terms *)

type 'cmd entry = { term : int; index : int; payload : 'cmd payload }

type ('cmd, 'snap) message =
  | Pre_vote of { term : int; last_log_index : int; last_log_term : int }
      (** electability probe; grants change no state (Raft pre-vote) *)
  | Pre_vote_reply of { term : int; granted : bool }
  | Request_vote of { term : int; last_log_index : int; last_log_term : int }
  | Vote of { term : int; granted : bool }
  | Append of {
      term : int;
      prev_index : int;
      prev_term : int;
      entries : 'cmd entry list;
      commit : int;
    }
  | Append_reply of { term : int; success : bool; match_index : int }
  | Install_snapshot of {
      term : int;
      last_index : int;
      last_term : int;
      peers : config_change;
      snap : 'snap;
    }
  | Quiesce of { term : int; commit : int }
  | Timeout_now of { term : int }

type role = Leader | Follower | Candidate

type ('cmd, 'snap) callbacks = {
  send : int -> ('cmd, 'snap) message -> unit;
      (** deliver a message to a peer (asynchronously, may drop) *)
  on_apply : index:int -> 'cmd -> unit;
      (** a committed command reached this replica's state machine *)
  on_role : role -> unit;  (** role transitions, for lease maintenance *)
  on_config : config_change -> unit;
      (** a configuration entry was applied on this replica *)
  take_snapshot : unit -> 'snap;
      (** leader-side: capture state machine for a lagging/new peer *)
  install_snapshot : 'snap -> unit;  (** follower-side: replace state *)
  is_node_live : int -> bool;
      (** liveness oracle: may this node's leader still be alive? Campaigns
          are suppressed while the current leader's node is reported live. *)
  node_epoch : int -> int;
      (** liveness epoch (incarnation counter) of a node; bumped by restarts.
          A quiesced follower only trusts [is_node_live] for the leader
          incarnation it quiesced under — a restarted leader is a follower
          again, and must not keep suppressing elections. *)
  on_discard : 'cmd -> unit;
      (** a log entry was discarded from this replica's log without having
          been committed here — overwritten by a new leader's conflicting
          suffix, or dropped by a snapshot install covering uncommitted
          tail entries. Fired on every replica that drops a copy, in
          particular the proposer's, so pipelined callers waiting on the
          command's completion can fail fast instead of timing out. This is
          a strong hint, not a verdict: callers must treat a discarded
          proposal as indeterminate (it is overwhelmingly likely lost, but
          another surviving copy can in principle still commit). *)
}

type ('cmd, 'snap) t

val create :
  sim:Crdb_sim.Sim.t ->
  rng:Crdb_stdx.Rng.t ->
  id:int ->
  peers:config_change ->
  callbacks:('cmd, 'snap) callbacks ->
  ?obs:Crdb_obs.Obs.t ->
  ?range:int ->
  ?election_timeout:int ->
  ?heartbeat_interval:int ->
  ?boundary:int * int ->
  unit ->
  ('cmd, 'snap) t
(** [peers] must include [id] itself. Timeouts in microseconds; defaults:
    election 3s (randomized up to 2x), heartbeat 1s. [obs] receives
    [raft.*] counters (elections, leadership changes, append/snapshot
    rounds, quiescence) scoped to this node and [range], plus election
    spans and leadership-change events when tracing is enabled.
    [boundary] is an [(index, term)] snapshot boundary the log starts
    after (default [(0, 0)]): replicas of a group whose initial state was
    installed out-of-band (e.g. the right half of a range split) are
    created with a non-zero boundary so that replicas added later are
    seeded with a state snapshot instead of replaying a log that does not
    contain that initial state. All initial replicas of a group must use
    the same boundary. *)

val id : _ t -> int
val role : _ t -> role
val is_leader : _ t -> bool
val leader_id : _ t -> int option
val term : _ t -> int
val commit_index : _ t -> int
val last_index : _ t -> int
val applied_index : _ t -> int
val peers : _ t -> config_change
val voters : _ t -> int list
val quiesced : _ t -> bool

val last_quorum_contact : _ t -> int
(** Simulation time of the last successful contact with a follower (or of
    assuming leadership). A leader whose contact is stale cannot be sure it
    still holds the lease; the KV layer refuses to serve consistent reads
    from it unless the range is quiesced (in which case followers are
    gated on the liveness oracle instead and cannot have elected another
    leader). *)

val propose : ('cmd, 'snap) t -> 'cmd -> int option
(** Append a command (leader only; [None] otherwise). The returned log index
    is applied on this replica via [on_apply] once committed. *)

val propose_config : ('cmd, 'snap) t -> config_change -> int option

val add_peer : ('cmd, 'snap) t -> int -> peer_kind -> int option
(** Single-step membership change: propose the current peer set plus one
    new replica. [None] if not leader or the node is already a peer. The
    new replica is materialized (and snapshot-seeded) once the entry
    commits and [on_config] fires. *)

val remove_peer : ('cmd, 'snap) t -> int -> int option
(** Single-step membership change: propose the current peer set minus one
    replica. [None] if not leader or the node is not a peer. Raises
    [Invalid_argument] if asked to remove the leader itself — transfer
    leadership first. *)

val handle : ('cmd, 'snap) t -> from:int -> ('cmd, 'snap) message -> unit

val campaign : _ t -> unit
(** Start an election immediately (testing / explicit failover). *)

val transfer_leadership : _ t -> int -> unit
(** Ask the given voter to take over (no-op if not leader). *)

val start : ?preferred:int -> _ t -> unit
(** Arm the initial election machinery. Call once after all replicas of the
    group exist. The replica whose id is [preferred] (default: the smallest
    voter id) campaigns immediately so groups start with a deterministic
    leader in the desired locality. *)

val stop : _ t -> unit
(** Halt all timers (replica removed or node decommissioned). *)

val restart : _ t -> unit
(** Model a process restart after a crash: durable state (term, vote, log,
    snapshot boundary, commit/applied indices) is retained, volatile state
    (role, known leader, quiescence, vote tallies, per-peer replication
    progress, pending leadership transfer, timers) is discarded. The replica
    resumes as a follower and waits a full election timeout before
    campaigning. Also reverses {!stop}. *)

