module Sim = Crdb_sim.Sim
module Rng = Crdb_stdx.Rng
module Vec = Crdb_stdx.Vec
module Obs = Crdb_obs.Obs
module Trace = Crdb_obs.Trace
module Metrics = Crdb_obs.Metrics

type peer_kind = Voter | Learner
type config_change = (int * peer_kind) list
type 'cmd payload = Command of 'cmd | Config of config_change | Noop
type 'cmd entry = { term : int; index : int; payload : 'cmd payload }

type ('cmd, 'snap) message =
  | Pre_vote of { term : int; last_log_index : int; last_log_term : int }
  | Pre_vote_reply of { term : int; granted : bool }
  | Request_vote of { term : int; last_log_index : int; last_log_term : int }
  | Vote of { term : int; granted : bool }
  | Append of {
      term : int;
      prev_index : int;
      prev_term : int;
      entries : 'cmd entry list;
      commit : int;
    }
  | Append_reply of { term : int; success : bool; match_index : int }
  | Install_snapshot of {
      term : int;
      last_index : int;
      last_term : int;
      peers : config_change;
      snap : 'snap;
    }
  | Quiesce of { term : int; commit : int }
  | Timeout_now of { term : int }

type role = Leader | Follower | Candidate


type ('cmd, 'snap) callbacks = {
  send : int -> ('cmd, 'snap) message -> unit;
  on_apply : index:int -> 'cmd -> unit;
  on_role : role -> unit;
  on_config : config_change -> unit;
  take_snapshot : unit -> 'snap;
  install_snapshot : 'snap -> unit;
  is_node_live : int -> bool;
  node_epoch : int -> int;
  on_discard : 'cmd -> unit;
}

type ('cmd, 'snap) t = {
  sim : Sim.t;
  rng : Rng.t;
  id : int;
  cb : ('cmd, 'snap) callbacks;
  election_timeout : int;
  heartbeat_interval : int;
  mutable peers : config_change;
  mutable term : int;
  mutable voted_for : int option;
  (* The log proper starts at [first_index]; entries before it have been
     folded into the snapshot boundary (snap_index, snap_term). *)
  log : 'cmd entry Vec.t;
  mutable snap_index : int;
  mutable snap_term : int;
  mutable commit : int;
  mutable applied : int;
  mutable role : role;
  mutable leader : int option;
  next_index : (int, int) Hashtbl.t;
  match_index : (int, int) Hashtbl.t;
  (* Per-peer flow control: a bounded window of appends/snapshots in
     flight (append pipelining). One-at-a-time would serialize every
     proposal behind the previous append's full round trip — a WAN RTT per
     entry on geo-replicated ranges; unbounded would let every proposal
     start another self-sustaining append/reply chain to each follower.
     Heartbeats clear stuck counts (lost replies). *)
  inflight : (int, int) Hashtbl.t;
  (* Followers whose log diverged from ours (a rejected append): while
     probing for the common prefix, sends do not optimistically advance
     next_index — each rejection must regress it monotonically, which the
     re-advance would undo, probing the same index forever. A success
     reply returns the peer to pipelined replication. *)
  probing : (int, unit) Hashtbl.t;
  (* Last commit index communicated to each peer, to close the window where
     a fully caught-up follower still lacks the final commit index. *)
  sent_commit : (int, int) Hashtbl.t;
  mutable votes : int list;
  mutable prevotes : int list;
  mutable election_timer : Sim.timer option;
  mutable heartbeat_timer : Sim.timer option;
  mutable quiesced : bool;
  (* The leader's liveness epoch captured when this follower quiesced. If the
     leader restarts (epoch bump), its old incarnation's claim to the range
     dies with it: suppression of campaigns must end, or a quiesced range
     whose leader crash-restarts stays leaderless forever. *)
  mutable quiesce_epoch : int;
  mutable last_heartbeat : int;
  mutable last_quorum_contact : int;
  mutable pending_transfer : int option;
  mutable stopped : bool;
  obs : Obs.t;
  range : int option;
  c_elections : Metrics.counter;
  c_leader_elected : Metrics.counter;
  c_stepdowns : Metrics.counter;
  c_appends_sent : Metrics.counter;
  c_snapshots_sent : Metrics.counter;
  c_quiesces : Metrics.counter;
  (* Leader-side replication-round latency: sim time from propose to commit
     for each proposal committed under this leadership. *)
  h_commit_latency : Crdb_stats.Hist.t;
  pending_propose : (int, int) Hashtbl.t;
  mutable election_span : Trace.span;
}

let create ~sim ~rng ~id ~peers ~callbacks ?(obs = Obs.null) ?range
    ?(election_timeout = 3_000_000) ?(heartbeat_interval = 1_000_000)
    ?(boundary = (0, 0)) () =
  if not (List.mem_assoc id peers) then
    invalid_arg "Raft.create: id must be among peers";
  let snap_index, snap_term = boundary in
  let m = Obs.metrics obs in
  {
    sim;
    rng;
    id;
    cb = callbacks;
    election_timeout;
    heartbeat_interval;
    peers;
    term = 0;
    voted_for = None;
    log = Vec.create ();
    snap_index;
    snap_term;
    commit = snap_index;
    applied = snap_index;
    role = Follower;
    leader = None;
    next_index = Hashtbl.create 8;
    match_index = Hashtbl.create 8;
    inflight = Hashtbl.create 8;
    probing = Hashtbl.create 8;
    sent_commit = Hashtbl.create 8;
    votes = [];
    prevotes = [];
    election_timer = None;
    heartbeat_timer = None;
    quiesced = false;
    quiesce_epoch = 0;
    last_heartbeat = 0;
    last_quorum_contact = 0;
    pending_transfer = None;
    stopped = false;
    obs;
    range;
    c_elections = Metrics.counter m ~node:id ?range "raft.elections";
    c_leader_elected = Metrics.counter m ~node:id ?range "raft.leader_elected";
    c_stepdowns = Metrics.counter m ~node:id ?range "raft.stepdowns";
    c_appends_sent = Metrics.counter m ~node:id ?range "raft.appends_sent";
    c_snapshots_sent = Metrics.counter m ~node:id ?range "raft.snapshots_sent";
    c_quiesces = Metrics.counter m ~node:id ?range "raft.quiesces";
    h_commit_latency = Metrics.histogram m ~node:id ?range "raft.commit_latency";
    pending_propose = Hashtbl.create 8;
    election_span = Trace.nil;
  }

let id t = t.id
let role t = t.role
let is_leader t = match t.role with Leader -> true | Follower | Candidate -> false
let leader_id t = t.leader
let term t = t.term
let commit_index t = t.commit
let applied_index t = t.applied
let peers t = t.peers
let quiesced t = t.quiesced
let last_quorum_contact t = t.last_quorum_contact

let voters t =
  List.filter_map
    (fun (p, kind) -> match kind with Voter -> Some p | Learner -> None)
    t.peers

let is_voter t node = List.mem node (voters t)
let other_peers t = List.filter (fun (p, _) -> p <> t.id) t.peers
let first_index t = t.snap_index + 1
let last_index t = t.snap_index + Vec.length t.log

let entry_at t i =
  if i < first_index t || i > last_index t then None
  else Some (Vec.get t.log (i - first_index t))

let term_at t i =
  if i = t.snap_index then Some t.snap_term
  else match entry_at t i with Some e -> Some e.term | None -> None

let last_term t =
  match Vec.last t.log with Some e -> e.term | None -> t.snap_term

(* ------------------------------------------------------------------ *)
(* Timers                                                              *)

let cancel_timer = function Some tm -> Sim.cancel tm | None -> ()

(* May this quiesced replica keep trusting its leader in place of heartbeats?
   Only while the oracle reports the leader live under the same incarnation
   it quiesced under — a crash-restarted leader comes back a follower, so its
   liveness must not keep suppressing elections. *)
let quiesced_leader_live t =
  t.quiesced
  &&
  match t.leader with
  | Some l ->
      l <> t.id && t.cb.is_node_live l && t.cb.node_epoch l = t.quiesce_epoch
  | None -> false

(* Append-pipelining window per follower. Large enough that a burst of
   proposals (a pipelined transaction's intents plus its STAGING record,
   commit-index pushes) never waits out a WAN round trip; small enough to
   bound retransmission work after a lost reply. *)
let max_inflight_appends = 8

let rec arm_election_timer t =
  cancel_timer t.election_timer;
  if not t.stopped then begin
    let timeout =
      t.election_timeout + Rng.int t.rng t.election_timeout
    in
    t.election_timer <- Some (Sim.timer t.sim ~after:timeout (fun () -> election_tick t))
  end

and election_tick t =
  if t.stopped then ()
  else begin
    match t.role with
    | Leader -> ()
    | Follower | Candidate ->
        let heard_recently =
          Sim.now t.sim - t.last_heartbeat < t.election_timeout
        in
        (* A quiesced follower trusts the liveness oracle instead of
           heartbeats (epoch-lease behaviour). *)
        let suppressed = heard_recently || quiesced_leader_live t in
        if suppressed || not (is_voter t t.id) then arm_election_timer t
        else pre_campaign t
  end

(* Pre-vote (Raft §9.6 / 4.2.3): probe for electability without bumping any
   term. A node with a stale log, or one whose peers still hear from a live
   leader, cannot disrupt the group. *)
and pre_campaign t =
  if t.stopped || not (is_voter t t.id) then ()
  else begin
    t.prevotes <- [ t.id ];
    let lli = last_index t and llt = last_term t in
    List.iter
      (fun p ->
        if p <> t.id then
          t.cb.send p
            (Pre_vote { term = t.term + 1; last_log_index = lli; last_log_term = llt }))
      (voters t);
    arm_election_timer t;
    maybe_prewin t
  end

and maybe_prewin t =
  let quorum = (List.length (voters t) / 2) + 1 in
  if List.length t.prevotes >= quorum then campaign t

and campaign t =
  if t.stopped || not (is_voter t t.id) then ()
  else begin
    t.term <- t.term + 1;
    Metrics.inc t.c_elections;
    (match t.election_span with
    | sp when sp == Trace.nil ->
        let sp =
          Trace.span (Obs.trace t.obs) ~node:t.id ?range:t.range "raft.election"
        in
        Trace.annotate sp "term" (string_of_int t.term);
        t.election_span <- sp
    | _ -> ());
    t.role <- Candidate;
    t.voted_for <- Some t.id;
    t.leader <- None;
    t.quiesced <- false;
    t.votes <- [ t.id ];
    t.cb.on_role Candidate;
    let lli = last_index t and llt = last_term t in
    List.iter
      (fun p ->
        if p <> t.id then
          t.cb.send p (Request_vote { term = t.term; last_log_index = lli; last_log_term = llt }))
      (voters t);
    arm_election_timer t;
    maybe_win t
  end

and maybe_win t =
  let quorum = (List.length (voters t) / 2) + 1 in
  if List.length t.votes >= quorum then become_leader t

and become_leader t =
  t.role <- Leader;
  Hashtbl.reset t.pending_propose;
  Metrics.inc t.c_leader_elected;
  Trace.annotate t.election_span "won" "true";
  Trace.finish (Obs.trace t.obs) t.election_span;
  t.election_span <- Trace.nil;
  Trace.event (Obs.trace t.obs) ~node:t.id ?range:t.range "raft.leader_elected"
    ~attrs:[ ("term", string_of_int t.term) ];
  t.pending_transfer <- None;
  t.leader <- Some t.id;
  t.quiesced <- false;
  Hashtbl.reset t.next_index;
  Hashtbl.reset t.match_index;
  Hashtbl.reset t.inflight;
  Hashtbl.reset t.probing;
  List.iter
    (fun (p, _) ->
      if p <> t.id then begin
        Hashtbl.replace t.next_index p (last_index t + 1);
        Hashtbl.replace t.match_index p 0
      end)
    t.peers;
  cancel_timer t.election_timer;
  t.election_timer <- None;
  t.last_quorum_contact <- Sim.now t.sim;
  t.cb.on_role Leader;
  (* Commit entries from previous terms by committing one of our own. *)
  ignore (append_local t Noop : int);
  broadcast t;
  maybe_advance_commit t;
  arm_heartbeat t

and arm_heartbeat t =
  cancel_timer t.heartbeat_timer;
  if not t.stopped then
    t.heartbeat_timer <-
      Some (Sim.timer t.sim ~after:t.heartbeat_interval (fun () -> heartbeat_tick t))

and heartbeat_tick t =
  match t.role with
  | Follower | Candidate -> ()
  | Leader ->
      let all_caught_up =
        List.for_all
          (fun (p, _) ->
            p = t.id
            || (match Hashtbl.find_opt t.match_index p with
               | Some m -> m = last_index t
               | None -> false))
          t.peers
        && t.commit = last_index t
      in
      if all_caught_up && not (Vec.is_empty t.log) then begin
        (* Quiesce: tell followers to stop expecting heartbeats. *)
        Metrics.inc t.c_quiesces;
        t.quiesced <- true;
        List.iter
          (fun (p, _) ->
            Hashtbl.replace t.sent_commit p t.commit;
            t.cb.send p (Quiesce { term = t.term; commit = t.commit }))
          (other_peers t);
        t.heartbeat_timer <- None
      end
      else begin
        (* Periodic heartbeat: also recover from lost replies by clearing
           the in-flight flags before resending. *)
        Hashtbl.reset t.inflight;
        broadcast t;
        arm_heartbeat t
      end

and append_local t payload =
  let e = { term = t.term; index = last_index t + 1; payload } in
  Vec.push t.log e;
  e.index

and broadcast t = List.iter (fun (p, _) -> replicate_to t p) (other_peers t)

and replicate_to t peer =
  let inflight =
    match Hashtbl.find_opt t.inflight peer with Some n -> n | None -> 0
  in
  if inflight >= max_inflight_appends then ()
  else begin
    Hashtbl.replace t.inflight peer (inflight + 1);
    replicate_to_now t peer
  end

and replicate_to_now t peer =
  let next =
    match Hashtbl.find_opt t.next_index peer with
    | Some n -> n
    | None -> last_index t + 1
  in
  if next < first_index t then begin
    Metrics.inc t.c_snapshots_sent;
    let snap = t.cb.take_snapshot () in
    (* The copied state machine reflects exactly the entries applied so far,
       so that is the boundary the snapshot must be stamped with. Stamping
       [last_index t] would cover entries still in flight: the receiver
       marks them applied without ever seeing their effects, and — worse —
       counts uncommitted tail entries as committed. The gap
       (applied, last] is replicated by ordinary appends right after. *)
    let boundary = t.applied in
    let boundary_term =
      match term_at t boundary with Some tt -> tt | None -> t.snap_term
    in
    t.cb.send peer
      (Install_snapshot
         {
           term = t.term;
           last_index = boundary;
           last_term = boundary_term;
           peers = t.peers;
           snap;
         })
  end
  else begin
    let prev_index = next - 1 in
    let prev_term =
      match term_at t prev_index with Some tt -> tt | None -> 0
    in
    let entries = Vec.sub_list t.log ~pos:(next - first_index t) in
    Metrics.inc t.c_appends_sent;
    Hashtbl.replace t.sent_commit peer t.commit;
    (* Optimistically advance next_index past the entries just sent, so a
       pipelined follow-up append carries only newer entries. A rejection
       (gap from a lost or reordered message) regresses it via the
       follower's hint and retransmits. Not while probing a diverged log:
       the regression must stick until a success reply. *)
    if entries <> [] && not (Hashtbl.mem t.probing peer) then
      Hashtbl.replace t.next_index peer (last_index t + 1);
    t.cb.send peer
      (Append { term = t.term; prev_index; prev_term; entries; commit = t.commit })
  end

and maybe_advance_commit t =
  match t.role with
  | Follower | Candidate -> ()
  | Leader ->
      let voters_list = voters t in
      let quorum = (List.length voters_list / 2) + 1 in
      let matched v =
        if v = t.id then last_index t
        else match Hashtbl.find_opt t.match_index v with Some m -> m | None -> 0
      in
      let n = ref t.commit in
      for candidate = t.commit + 1 to last_index t do
        let count = List.length (List.filter (fun v -> matched v >= candidate) voters_list) in
        let current_term =
          match term_at t candidate with Some tt -> tt = t.term | None -> false
        in
        if count >= quorum && current_term then n := candidate
      done;
      if !n > t.commit then begin
        let now = Sim.now t.sim in
        for i = t.commit + 1 to !n do
          match Hashtbl.find_opt t.pending_propose i with
          | Some at ->
              Crdb_stats.Hist.add t.h_commit_latency (now - at);
              Hashtbl.remove t.pending_propose i
          | None -> ()
        done;
        t.commit <- !n;
        apply_committed t;
        (* Push the new commit index to followers promptly so closed
           timestamps and follower reads advance with low latency. *)
        broadcast t
      end

and apply_committed t =
  while t.applied < t.commit do
    t.applied <- t.applied + 1;
    match entry_at t t.applied with
    | None -> () (* covered by a snapshot; state already reflects it *)
    | Some e -> (
        match e.payload with
        | Command c -> t.cb.on_apply ~index:e.index c
        | Noop -> ()
        | Config change -> apply_config t change)
  done

and apply_config t change =
  let removed =
    List.filter (fun (p, _) -> not (List.mem_assoc p change)) t.peers
  in
  t.peers <- change;
  (match t.role with
  | Leader ->
      List.iter
        (fun (p, _) ->
          if p <> t.id && not (Hashtbl.mem t.next_index p) then begin
            Hashtbl.replace t.next_index p (last_index t + 1);
            Hashtbl.replace t.match_index p 0;
            replicate_to t p
          end)
        change;
      (* Removed peers must still learn about their removal: send them the
         suffix containing the (now committed) configuration entry. *)
      List.iter (fun (p, _) -> if p <> t.id then replicate_to t p) removed
  | Follower | Candidate -> ());
  t.cb.on_config change;
  if not (List.mem_assoc t.id change) then stop t

and step_down t new_term =
  t.pending_transfer <- None;
  Hashtbl.reset t.pending_propose;
  let was_leader = is_leader t in
  t.term <- new_term;
  t.voted_for <- None;
  t.role <- Follower;
  t.quiesced <- false;
  (* An election lost to a higher term: close the span unannotated. *)
  Trace.finish (Obs.trace t.obs) t.election_span;
  t.election_span <- Trace.nil;
  if was_leader then begin
    Metrics.inc t.c_stepdowns;
    Trace.event (Obs.trace t.obs) ~node:t.id ?range:t.range "raft.step_down"
      ~attrs:[ ("term", string_of_int new_term) ];
    cancel_timer t.heartbeat_timer;
    t.heartbeat_timer <- None;
    t.cb.on_role Follower
  end;
  arm_election_timer t

and stop t =
  t.stopped <- true;
  cancel_timer t.election_timer;
  cancel_timer t.heartbeat_timer;
  t.election_timer <- None;
  t.heartbeat_timer <- None

(* ------------------------------------------------------------------ *)
(* Message handling                                                    *)

let handle_pre_vote t ~from ~pterm ~last_log_index ~last_log_term =
  let up_to_date =
    last_log_term > last_term t
    || (last_log_term = last_term t && last_log_index >= last_index t)
  in
  let heard_recently = Sim.now t.sim - t.last_heartbeat < t.election_timeout in
  let granted =
    pterm > t.term && up_to_date
    && (not (is_leader t))
    && (not heard_recently)
    && not (quiesced_leader_live t)
  in
  t.cb.send from (Pre_vote_reply { term = pterm; granted })

let handle_pre_vote_reply t ~from ~pterm ~granted =
  match t.role with
  | Follower when granted && pterm = t.term + 1 ->
      if not (List.mem from t.prevotes) then t.prevotes <- from :: t.prevotes;
      maybe_prewin t
  | Follower | Candidate | Leader -> ()

let handle_request_vote t ~from ~vterm ~last_log_index ~last_log_term =
  if vterm > t.term then step_down t vterm;
  let up_to_date =
    last_log_term > last_term t
    || (last_log_term = last_term t && last_log_index >= last_index t)
  in
  let granted =
    vterm = t.term && up_to_date
    && (match t.voted_for with None -> true | Some v -> v = from)
    && not (is_leader t)
  in
  if granted then begin
    t.voted_for <- Some from;
    t.last_heartbeat <- Sim.now t.sim;
    arm_election_timer t
  end;
  t.cb.send from (Vote { term = t.term; granted })

let handle_vote t ~from ~vterm ~granted =
  if vterm > t.term then step_down t vterm
  else
    match t.role with
    | Candidate when vterm = t.term && granted ->
        if not (List.mem from t.votes) then t.votes <- from :: t.votes;
        maybe_win t
    | Candidate | Leader | Follower -> ()

let discard_entries t ~from_index =
  (* Notify the state machine of every uncommitted command copy being
     dropped, so pipelined proposers can fail their completion promptly
     instead of waiting out a timeout. Entries at or below the commit index
     are never passed here (committed entries are never overwritten). *)
  for i = max from_index (first_index t) to last_index t do
    match entry_at t i with
    | Some { payload = Command c; _ } -> t.cb.on_discard c
    | Some { payload = Config _ | Noop; _ } | None -> ()
  done

let truncate_from t index =
  (* Drop local entries at [index] and beyond. *)
  if index <= last_index t then begin
    discard_entries t ~from_index:index;
    Vec.truncate t.log (index - first_index t)
  end

let handle_append t ~from ~aterm ~prev_index ~prev_term ~entries ~commit =
  if aterm < t.term then
    t.cb.send from (Append_reply { term = t.term; success = false; match_index = 0 })
  else begin
    if aterm > t.term || (match t.role with Candidate -> true | Leader | Follower -> false)
    then step_down t aterm;
    t.leader <- Some from;
    t.last_heartbeat <- Sim.now t.sim;
    t.quiesced <- false;
    arm_election_timer t;
    let log_matches =
      prev_index <= last_index t
      &&
      match term_at t prev_index with
      | Some tt -> tt = prev_term
      | None -> prev_index < first_index t (* already snapshotted: matches *)
    in
    if not log_matches then
      t.cb.send from
        (Append_reply { term = t.term; success = false; match_index = last_index t })
    else begin
      List.iter
        (fun (e : _ entry) ->
          if e.index <= t.snap_index then ()
          else
            match term_at t e.index with
            | Some tt when tt = e.term -> ()
            | Some _ ->
                truncate_from t e.index;
                Vec.push t.log e
            | None ->
                if e.index = last_index t + 1 then Vec.push t.log e)
        entries;
      let last_new =
        match entries with
        | [] -> prev_index
        | es -> (List.nth es (List.length es - 1)).index
      in
      let new_commit = min commit (max last_new t.commit) in
      if new_commit > t.commit then begin
        t.commit <- new_commit;
        apply_committed t
      end;
      t.cb.send from
        (Append_reply { term = t.term; success = true; match_index = max last_new t.commit })
    end
  end

let handle_append_reply t ~from ~rterm ~success ~match_index =
  (match Hashtbl.find_opt t.inflight from with
  | Some n when n > 1 -> Hashtbl.replace t.inflight from (n - 1)
  | Some _ | None -> Hashtbl.remove t.inflight from);
  if rterm > t.term then step_down t rterm
  else
    match t.role with
    | Follower | Candidate -> ()
    | Leader when rterm <> t.term -> ()
    | Leader ->
        if success then begin
          Hashtbl.remove t.probing from;
          t.last_quorum_contact <- Sim.now t.sim;
          let old = match Hashtbl.find_opt t.match_index from with Some m -> m | None -> 0 in
          if match_index > old then Hashtbl.replace t.match_index from match_index;
          (* A success reply for an older pipelined append must not regress
             the optimistically advanced next_index (which would retransmit
             the still-in-flight newer entries). *)
          let cur =
            match Hashtbl.find_opt t.next_index from with Some n -> n | None -> 1
          in
          Hashtbl.replace t.next_index from (max (match_index + 1) cur);
          maybe_advance_commit t;
          (* Keep pushing until this follower has all entries and knows the
             final commit index. *)
          let known_commit =
            match Hashtbl.find_opt t.sent_commit from with
            | Some c -> c
            | None -> 0
          in
          if match_index < last_index t || known_commit < t.commit then
            replicate_to t from
          else if t.pending_transfer = Some from then begin
            (* Deferred leadership transfer: the target is now caught up. *)
            t.pending_transfer <- None;
            t.cb.send from (Timeout_now { term = t.term })
          end
        end
        else begin
          Hashtbl.replace t.probing from ();
          let next =
            match Hashtbl.find_opt t.next_index from with Some n -> n | None -> last_index t + 1
          in
          (* [match_index] carries the follower's last index as a hint. *)
          let new_next = max 1 (min (next - 1) (match_index + 1)) in
          Hashtbl.replace t.next_index from new_next;
          replicate_to t from
        end

let handle_install_snapshot t ~from ~sterm ~slast_index ~slast_term ~speers ~snap =
  if sterm < t.term then
    t.cb.send from (Append_reply { term = t.term; success = false; match_index = 0 })
  else begin
    if sterm > t.term || (match t.role with Candidate -> true | Leader | Follower -> false)
    then step_down t sterm;
    t.leader <- Some from;
    t.last_heartbeat <- Sim.now t.sim;
    arm_election_timer t;
    if slast_index > t.snap_index then begin
      t.cb.install_snapshot snap;
      (* Tail entries beyond both the snapshot boundary and the local
         commit index die uncommitted with the log. *)
      discard_entries t ~from_index:(max slast_index t.commit + 1);
      Vec.clear t.log;
      t.snap_index <- slast_index;
      t.snap_term <- slast_term;
      t.commit <- slast_index;
      t.applied <- slast_index;
      t.peers <- speers
    end;
    t.cb.send from
      (Append_reply { term = t.term; success = true; match_index = last_index t })
  end

let handle_quiesce t ~from ~qterm ~commit =
  if qterm >= t.term then begin
    if qterm > t.term then step_down t qterm;
    t.leader <- Some from;
    t.last_heartbeat <- Sim.now t.sim;
    t.quiesced <- true;
    t.quiesce_epoch <- t.cb.node_epoch from;
    let new_commit = min commit (last_index t) in
    if new_commit > t.commit then begin
      t.commit <- new_commit;
      apply_committed t
    end
  end

let handle t ~from msg =
  if t.stopped then ()
  else
    match msg with
    | Pre_vote { term; last_log_index; last_log_term } ->
        handle_pre_vote t ~from ~pterm:term ~last_log_index ~last_log_term
    | Pre_vote_reply { term; granted } ->
        handle_pre_vote_reply t ~from ~pterm:term ~granted
    | Request_vote { term; last_log_index; last_log_term } ->
        handle_request_vote t ~from ~vterm:term ~last_log_index ~last_log_term
    | Vote { term; granted } -> handle_vote t ~from ~vterm:term ~granted
    | Append { term; prev_index; prev_term; entries; commit } ->
        handle_append t ~from ~aterm:term ~prev_index ~prev_term ~entries ~commit
    | Append_reply { term; success; match_index } ->
        handle_append_reply t ~from ~rterm:term ~success ~match_index
    | Install_snapshot { term; last_index; last_term; peers; snap } ->
        handle_install_snapshot t ~from ~sterm:term ~slast_index:last_index
          ~slast_term:last_term ~speers:peers ~snap
    | Quiesce { term; commit } -> handle_quiesce t ~from ~qterm:term ~commit
    | Timeout_now { term } ->
        if term >= t.term then begin
          t.term <- max t.term term;
          campaign t
        end

(* ------------------------------------------------------------------ *)
(* Public operations                                                   *)

let propose t cmd =
  match t.role with
  | Follower | Candidate -> None
  | Leader ->
      let index = append_local t (Command cmd) in
      Hashtbl.replace t.pending_propose index (Sim.now t.sim);
      if t.quiesced then t.quiesced <- false;
      if t.heartbeat_timer = None then arm_heartbeat t;
      broadcast t;
      maybe_advance_commit t;
      Some index

let propose_config t change =
  match t.role with
  | Follower | Candidate -> None
  | Leader ->
      if not (List.mem_assoc t.id change) then
        invalid_arg "Raft.propose_config: leader must remain a peer";
      let index = append_local t (Config change) in
      if t.quiesced then t.quiesced <- false;
      if t.heartbeat_timer = None then arm_heartbeat t;
      broadcast t;
      maybe_advance_commit t;
      Some index

(* Single-step membership changes: one replica added or removed at a time,
   so any old-config quorum and any new-config quorum intersect and joint
   consensus is unnecessary. *)
let add_peer t node kind =
  if List.mem_assoc node t.peers then None
  else propose_config t (t.peers @ [ (node, kind) ])

let remove_peer t node =
  if node = t.id then
    invalid_arg "Raft.remove_peer: leader cannot remove itself";
  if not (List.mem_assoc node t.peers) then None
  else propose_config t (List.filter (fun (p, _) -> p <> node) t.peers)

let transfer_leadership t target =
  match t.role with
  | Follower | Candidate -> ()
  | Leader ->
      if target <> t.id && is_voter t target then begin
        let caught_up =
          match Hashtbl.find_opt t.match_index target with
          | Some m -> m = last_index t
          | None -> false
        in
        if caught_up then t.cb.send target (Timeout_now { term = t.term })
        else begin
          (* Transfer once the target's log is complete, per the Raft
             leadership-transfer extension; otherwise its election would be
             rejected and would only disrupt the group. *)
          t.pending_transfer <- Some target;
          if t.quiesced then begin
            t.quiesced <- false;
            if t.heartbeat_timer = None then arm_heartbeat t
          end;
          replicate_to t target
        end
      end

let start ?preferred t =
  let first =
    match preferred with
    | Some p when is_voter t p -> p
    | Some _ | None -> List.fold_left min max_int (voters t)
  in
  if t.id = first then campaign t else arm_election_timer t

let restart t =
  (* Process restart: durable state (term, vote, log, snapshot boundary,
     commit/applied indices — all fsynced before acknowledgement in a real
     node) survives; everything held only in memory does not. The replica
     comes back as a follower with no known leader and re-learns peer
     progress, exactly as if recovered from its on-disk state. *)
  t.stopped <- false;
  t.role <- Follower;
  t.leader <- None;
  t.quiesced <- false;
  t.votes <- [];
  t.prevotes <- [];
  t.pending_transfer <- None;
  Hashtbl.reset t.next_index;
  Hashtbl.reset t.match_index;
  Hashtbl.reset t.inflight;
  Hashtbl.reset t.probing;
  Hashtbl.reset t.sent_commit;
  Trace.finish (Obs.trace t.obs) t.election_span;
  t.election_span <- Trace.nil;
  cancel_timer t.heartbeat_timer;
  t.heartbeat_timer <- None;
  (* A freshly booted node waits out a full election timeout before
     campaigning, giving an incumbent leader the chance to re-assert. *)
  t.last_heartbeat <- Sim.now t.sim;
  t.cb.on_role Follower;
  arm_election_timer t
